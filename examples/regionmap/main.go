// Regionmap: pick the right algorithm for your machine. Renders one
// panel of the paper's Figure 13 region map and then uses the analytic
// model to answer "which algorithm should I run?" for a few concrete
// (n, p) deployments.
package main

import (
	"fmt"

	"hypermm"
)

func main() {
	fmt.Println(hypermm.RegionMap(hypermm.OnePort, 150, 3, 5, 13, 48, 3, 18, 24))

	fmt.Println("algorithm picker (one-port, t_s=150, t_w=3):")
	for _, q := range []struct{ n, p float64 }{
		{4096, 64},   // huge matrix, small machine
		{1024, 4096}, // p just under n^1.5
		{256, 65536}, // n^1.5 < p <= n^2
		{64, 262144}, // n^2 < p <= n^3
	} {
		if alg, ok := hypermm.BestAlgorithm(q.n, q.p, 150, 3, hypermm.OnePort); ok {
			t, _ := hypermm.CommTime(alg, q.n, q.p, 150, 3, hypermm.OnePort)
			fmt.Printf("  n=%-6.0f p=%-7.0f -> %-12v (comm time %.3g)\n", q.n, q.p, alg, t)
		} else {
			fmt.Printf("  n=%-6.0f p=%-7.0f -> no algorithm applicable (p > n^3)\n", q.n, q.p)
		}
	}
}

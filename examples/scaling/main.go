// Scaling: a strong-scaling study on the simulated machine. A fixed
// n x n multiplication runs on growing hypercubes with Cannon's
// algorithm and the paper's 3-D All algorithm; the table shows how
// 3-D All's lower communication overhead translates into better
// speedups at scale — the paper's core claim.
package main

import (
	"fmt"
	"log"

	"hypermm"
)

func main() {
	const n = 256
	const ts, tw, tc = 150.0, 3.0, 0.5

	serial := 2 * float64(n) * float64(n) * float64(n) * tc
	fmt.Printf("strong scaling at n=%d (t_s=%g t_w=%g t_c=%g); serial time %.3g\n", n, ts, tw, tc, serial)
	fmt.Printf("%-8s %-12s %-12s %-10s %-12s %-12s %-10s\n",
		"p", "cannon", "speedup", "eff", "3dall", "speedup", "eff")

	A := hypermm.RandomMatrix(n, n, 1)
	B := hypermm.RandomMatrix(n, n, 2)

	for _, p := range []int{64, 512, 4096} {
		cfg := hypermm.Config{P: p, Ports: hypermm.OnePort, Ts: ts, Tw: tw, Tc: tc}

		// Cannon needs a square processor count; use the analytic model
		// where the mesh does not fit, the emulator where it does.
		cannonT := analyticOrMeasured(hypermm.Cannon, cfg, A, B)
		allT := analyticOrMeasured(hypermm.ThreeAll, cfg, A, B)

		fmt.Printf("%-8d %-12s %-12s %-10s %-12s %-12s %-10s\n", p,
			fmtT(cannonT), fmtSpeedup(serial, cannonT), fmtEff(serial, cannonT, p),
			fmtT(allT), fmtSpeedup(serial, allT), fmtEff(serial, allT, p))
	}
	fmt.Println("\n(cells marked * are analytic Table 2 values where the grid shape")
	fmt.Println(" does not fit the processor count; all others are simulated runs)")
}

type timing struct {
	t        float64
	ok       bool
	analytic bool
}

func analyticOrMeasured(alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) timing {
	if res, err := hypermm.Run(alg, cfg, A, B); err == nil {
		if err := hypermm.Verify(A, B, res.C, 1e-6); err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		return timing{t: res.Elapsed, ok: true}
	}
	if t, ok := hypermm.TotalTime(alg, float64(A.Rows), float64(cfg.P), cfg.Ts, cfg.Tw, cfg.Tc, cfg.Ports); ok {
		return timing{t: t, ok: true, analytic: true}
	}
	return timing{}
}

func fmtT(x timing) string {
	if !x.ok {
		return "-"
	}
	s := fmt.Sprintf("%.3g", x.t)
	if x.analytic {
		s += "*"
	}
	return s
}

func fmtSpeedup(serial float64, x timing) string {
	if !x.ok {
		return "-"
	}
	return fmt.Sprintf("%.1fx", serial/x.t)
}

func fmtEff(serial float64, x timing, p int) string {
	if !x.ok {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*serial/x.t/float64(p))
}

// Scalability: the isoefficiency view of the paper's result. For each
// algorithm, print the matrix size needed to sustain 50% parallel
// efficiency as the machine grows — the scalability metric of Gupta &
// Kumar, which the paper's introduction cites. 3-D All's lower
// communication overhead shows up as the flattest curve. A traced run
// then shows where Cannon loses its time compared with 3-D All on the
// same machine.
package main

import (
	"fmt"
	"log"

	"hypermm"
)

func main() {
	const ts, tw, tc, target = 150.0, 3.0, 0.5, 0.5
	algs := []hypermm.Algorithm{hypermm.Cannon, hypermm.Berntsen, hypermm.DNS, hypermm.ThreeDiag, hypermm.ThreeAll}
	ps := []float64{8, 64, 512, 4096, 32768}

	fmt.Printf("matrix size n needed for %.0f%% efficiency (t_s=%g t_w=%g t_c=%g, one-port)\n",
		100*target, ts, tw, tc)
	fmt.Printf("%-12s", "p")
	for _, a := range algs {
		fmt.Printf(" %12s", a.Name())
	}
	fmt.Println()
	for _, p := range ps {
		fmt.Printf("%-12.0f", p)
		for _, a := range algs {
			if n, ok := hypermm.IsoefficiencyN(a, p, target, ts, tw, tc, hypermm.OnePort); ok {
				fmt.Printf(" %12.0f", n)
			} else {
				fmt.Printf(" %12s", "-")
			}
		}
		fmt.Println()
	}

	// Where does Cannon's time go? Trace both on one machine.
	fmt.Println("\nutilization at n=128, p=64 (one-port):")
	A := hypermm.RandomMatrix(128, 128, 1)
	B := hypermm.RandomMatrix(128, 128, 2)
	cfg := hypermm.Config{P: 64, Ports: hypermm.OnePort, Ts: ts, Tw: tw, Tc: tc}
	for _, a := range []hypermm.Algorithm{hypermm.Cannon, hypermm.ThreeAll} {
		res, tr, err := hypermm.RunTraced(a, cfg, A, B)
		if err != nil {
			log.Fatal(err)
		}
		if err := hypermm.Verify(A, B, res.C, 1e-6); err != nil {
			log.Fatal(err)
		}
		// Last line of the summary is the overall split.
		sum := tr.Summary()
		fmt.Printf("  %-8s elapsed %9.0f   %s", a.Name(), res.Elapsed, lastLine(sum))
	}
}

func lastLine(s string) string {
	lines := []byte(s)
	// find start of last non-empty line
	end := len(lines)
	for end > 0 && lines[end-1] == '\n' {
		end--
	}
	start := end
	for start > 0 && lines[start-1] != '\n' {
		start--
	}
	return string(lines[start:end]) + "\n"
}

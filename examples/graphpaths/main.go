// Graphpaths: transitive closure by repeated distributed matrix
// squaring — the decomposition of graph algorithms into matrix products
// that the paper's introduction cites as a core motivation (Dekel,
// Nassimi and Sahni's "Parallel matrix and graph algorithms").
//
// A random directed graph's boolean adjacency matrix (with self loops)
// is squared ceil(log2 n) times on a simulated hypercube using the 3-D
// Diagonal algorithm — the paper's choice for large p relative to n —
// clamping entries to {0,1} between rounds. The result is the
// reachability matrix, verified against a serial BFS from every vertex.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hypermm"
)

const (
	nVerts = 64
	nProcs = 64
	degree = 2 // average out-degree of the random graph
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Random digraph with self loops (so A^k accumulates paths <= k).
	adj := hypermm.NewMatrix(nVerts, nVerts)
	edges := 0
	for v := 0; v < nVerts; v++ {
		adj.Set(v, v, 1)
		for e := 0; e < degree; e++ {
			w := rng.Intn(nVerts)
			if adj.At(v, w) == 0 {
				adj.Set(v, w, 1)
				edges++
			}
		}
	}
	fmt.Printf("random digraph: %d vertices, %d edges (+ self loops)\n", nVerts, edges)

	cfg := hypermm.Config{P: nProcs, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5}
	reach := adj
	rounds := 0
	var totalTime float64
	for span := 1; span < nVerts; span *= 2 {
		res, err := hypermm.Run(hypermm.ThreeDiag, cfg, reach, reach)
		if err != nil {
			log.Fatal(err)
		}
		reach = clamp01(res.C)
		rounds++
		totalTime += res.Elapsed
	}
	fmt.Printf("transitive closure via %d distributed squarings on %d processors\n", rounds, nProcs)
	fmt.Printf("total simulated time: %.0f\n", totalTime)

	// Verify against serial BFS.
	want := bfsClosure(adj)
	for i := 0; i < nVerts; i++ {
		for j := 0; j < nVerts; j++ {
			if reach.At(i, j) != want.At(i, j) {
				log.Fatalf("closure mismatch at (%d,%d): got %g want %g", i, j, reach.At(i, j), want.At(i, j))
			}
		}
	}
	reachable := 0
	for _, v := range reach.Data {
		if v != 0 {
			reachable++
		}
	}
	fmt.Printf("verified against serial BFS: %d/%d vertex pairs reachable\n", reachable, nVerts*nVerts)
}

// clamp01 maps positive path counts back to boolean adjacency.
func clamp01(m *hypermm.Matrix) *hypermm.Matrix {
	out := hypermm.NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0.5 {
			out.Data[i] = 1
		}
	}
	return out
}

// bfsClosure computes reachability serially.
func bfsClosure(adj *hypermm.Matrix) *hypermm.Matrix {
	n := adj.Rows
	out := hypermm.NewMatrix(n, n)
	for s := 0; s < n; s++ {
		seen := make([]bool, n)
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out.Set(s, v, 1)
			for w := 0; w < n; w++ {
				if !seen[w] && adj.At(v, w) != 0 {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return out
}

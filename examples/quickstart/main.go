// Quickstart: multiply two matrices on a simulated 64-node one-port
// hypercube with the paper's 3-D All algorithm, verify the result
// against a serial product, and compare the simulated time with the
// analytic Table 2 prediction.
package main

import (
	"fmt"
	"log"

	"hypermm"
)

func main() {
	const n, p = 256, 64

	A := hypermm.RandomMatrix(n, n, 1)
	B := hypermm.RandomMatrix(n, n, 2)

	cfg := hypermm.DefaultConfig(p) // one-port, t_s=150, t_w=3, t_c=0.5
	res, err := hypermm.Run(hypermm.ThreeAll, cfg, A, B)
	if err != nil {
		log.Fatal(err)
	}
	if err := hypermm.Verify(A, B, res.C, 1e-6); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("3D All multiplied two %dx%d matrices on a %d-node %v hypercube\n",
		n, n, p, cfg.Ports)
	fmt.Printf("  simulated time: %.0f (t_s=%g, t_w=%g, t_c=%g)\n",
		res.Elapsed, cfg.Ts, cfg.Tw, cfg.Tc)
	if t, ok := hypermm.TotalTime(hypermm.ThreeAll, n, p, cfg.Ts, cfg.Tw, cfg.Tc, cfg.Ports); ok {
		fmt.Printf("  analytic time:  %.0f (Table 2 + 2n^3 t_c / p)\n", t)
	}
	fmt.Printf("  moved %d words in %d messages; result verified.\n",
		res.Comm.Words, res.Comm.Msgs)

	// How does the paper's algorithm compare to Cannon's on the same job?
	cannon, err := hypermm.Run(hypermm.Cannon, cfg, A, B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Cannon on the same machine: %.0f (%.1fx slower)\n",
		cannon.Elapsed, cannon.Elapsed/res.Elapsed)
}

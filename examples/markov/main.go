// Markov: steady-state analysis of a random walk by repeated squaring
// of the transition matrix on a simulated hypercube — the "sequence of
// matrix multiplications" decomposition of scientific kernels that the
// paper's introduction motivates. P^(2^k) converges to the stationary
// distribution on every row; each squaring runs distributed with the
// algorithm the analytic model picks for this machine.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"hypermm"
)

const (
	states = 64
	procs  = 64
	ts, tw = 150.0, 3.0
)

func main() {
	// A random ergodic transition matrix: a ring with random shortcuts,
	// rows normalized.
	rng := rand.New(rand.NewSource(7))
	P := hypermm.NewMatrix(states, states)
	for i := 0; i < states; i++ {
		P.Set(i, (i+1)%states, 1)
		P.Set(i, i, 0.5)
		for k := 0; k < 3; k++ {
			P.Set(i, rng.Intn(states), rng.Float64())
		}
		var row float64
		for j := 0; j < states; j++ {
			row += P.At(i, j)
		}
		for j := 0; j < states; j++ {
			P.Set(i, j, P.At(i, j)/row)
		}
	}

	// Let the model choose the algorithm for this (n, p).
	alg, ok := hypermm.BestAlgorithm(states, procs, ts, tw, hypermm.OnePort)
	if !ok {
		log.Fatal("no applicable algorithm")
	}
	fmt.Printf("machine: %d-node one-port hypercube; model selects %v\n", procs, alg)

	cfg := hypermm.Config{P: procs, Ports: hypermm.OnePort, Ts: ts, Tw: tw, Tc: 0.5}
	pk := P
	var total float64
	rounds := 0
	for {
		res, err := hypermm.Run(alg, cfg, pk, pk)
		if err != nil {
			log.Fatal(err)
		}
		if err := hypermm.Verify(pk, pk, res.C, 1e-9); err != nil {
			log.Fatal(err)
		}
		total += res.Elapsed
		rounds++
		next := res.C
		if converged(pk, next, 1e-12) || rounds > 12 {
			pk = next
			break
		}
		pk = next
	}
	fmt.Printf("converged after %d distributed squarings (simulated time %.0f)\n", rounds, total)

	// The stationary distribution is any row of the limit; check it is
	// a fixed point of P and sums to 1.
	pi := make([]float64, states)
	var sum float64
	for j := 0; j < states; j++ {
		pi[j] = pk.At(0, j)
		sum += pi[j]
	}
	var residual float64
	for j := 0; j < states; j++ {
		var v float64
		for i := 0; i < states; i++ {
			v += pi[i] * P.At(i, j)
		}
		residual = math.Max(residual, math.Abs(v-pi[j]))
	}
	fmt.Printf("stationary distribution: sum=%.6f, fixed-point residual=%.2e\n", sum, residual)
	if math.Abs(sum-1) > 1e-6 || residual > 1e-6 {
		log.Fatal("stationary distribution check failed")
	}
	fmt.Println("verified: pi * P == pi")
}

// converged reports row-wise convergence of successive powers.
func converged(a, b *hypermm.Matrix, tol float64) bool {
	return hypermm.MaxAbsDiff(a, b) < tol
}

package hypermm

import (
	"fmt"

	"hypermm/internal/simnet"
)

// CommStats aggregates the communication and computation counters of a
// simulated run.
type CommStats struct {
	Msgs     int64 // messages sent
	Words    int64 // payload words sent (end to end)
	Startups int64 // per-hop message start-ups charged
	WordHops int64 // payload words times hops traveled
	Flops    int64 // floating-point operations across all nodes
	// Retries counts lost transmission attempts that the acknowledged
	// retry protocol recovered (always 0 without a fault plan).
	Retries int64
	// PeakWordsTotal is the aggregate peak storage across processors
	// (the paper's Table 3 "overall space used").
	PeakWordsTotal int
	// PeakWordsMax is the largest single-processor peak.
	PeakWordsMax int
}

// Result is the outcome of one distributed multiplication.
type Result struct {
	C       *Matrix   // the product, assembled
	Elapsed float64   // simulated makespan (comm + compute)
	Comm    CommStats // aggregate counters
}

// Run multiplies A by B with the given algorithm on a simulated
// hypercube. The initial distribution the paper assumes is materialized
// for free; communication and computation inside the algorithm are
// charged to the simulated clock; the result is collected for free.
func Run(alg Algorithm, cfg Config, A, B *Matrix) (*Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	return runOn(m, alg, A, B)
}

// runOn executes one multiplication on an existing machine — freshly
// built by Run or checked out warm by MachinePool.RunOn; the two paths
// produce identical results.
func runOn(m *simnet.Machine, alg Algorithm, A, B *Matrix) (*Result, error) {
	c, rs, err := alg.runner()(m, A.internal(), B.internal())
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

func validateConfig(cfg Config) error {
	if cfg.P <= 0 || cfg.P&(cfg.P-1) != 0 {
		return fmt.Errorf("hypermm: P=%d is not a positive power of two", cfg.P)
	}
	if cfg.Ts < 0 || cfg.Tw < 0 || cfg.Tc < 0 {
		return fmt.Errorf("hypermm: negative cost parameter in %+v", cfg)
	}
	if cfg.Deadline < 0 {
		return fmt.Errorf("hypermm: negative deadline %g", cfg.Deadline)
	}
	return nil
}

func newMachine(cfg Config) (*simnet.Machine, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	return simnet.NewMachine(simnet.Config{
		P: cfg.P, Ports: cfg.Ports.internal(), Ts: cfg.Ts, Tw: cfg.Tw, Tc: cfg.Tc,
		Faults: cfg.Faults.internal(), Deadline: cfg.Deadline,
	}), nil
}

func commStats(rs simnet.RunStats) CommStats {
	return CommStats{
		Msgs: rs.TotalMsgs, Words: rs.TotalWords, Startups: rs.TotalStartups,
		WordHops: rs.TotalWordHops, Flops: rs.TotalFlops, Retries: rs.TotalRetries,
		PeakWordsTotal: rs.TotalPeak, PeakWordsMax: rs.MaxPeak,
	}
}

// Verify checks C against the serial product A*B within tol and returns
// a descriptive error on mismatch.
func Verify(A, B, C *Matrix, tol float64) error {
	want := MatMul(A, B)
	if C.Rows != want.Rows || C.Cols != want.Cols {
		return fmt.Errorf("hypermm: result is %dx%d, want %dx%d", C.Rows, C.Cols, want.Rows, want.Cols)
	}
	if d := MaxAbsDiff(C, want); d > tol {
		return fmt.Errorf("hypermm: result differs from serial product by %g (tol %g)", d, tol)
	}
	return nil
}

// MeasuredOverhead runs the algorithm twice — with (t_s, t_w) = (1, 0)
// and (0, 1), computation free — and returns the measured communication
// overhead coefficients (a, b), directly comparable to the paper's
// Table 2 expressions (see Overhead).
func MeasuredOverhead(alg Algorithm, p, n int, ports PortModel) (a, b float64, err error) {
	A := RandomMatrix(n, n, 101)
	B := RandomMatrix(n, n, 102)
	for i, pair := range [][2]float64{{1, 0}, {0, 1}} {
		res, e := Run(alg, Config{P: p, Ports: ports, Ts: pair[0], Tw: pair[1], Tc: 0}, A, B)
		if e != nil {
			return 0, 0, e
		}
		if i == 0 {
			a = res.Elapsed
		} else {
			b = res.Elapsed
		}
	}
	return a, b, nil
}

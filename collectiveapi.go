package hypermm

import (
	"fmt"

	"hypermm/internal/collective"
	"hypermm/internal/cost"
	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Collective identifies a collective communication pattern of the
// paper's Table 1.
type Collective int

// The Table 1 patterns, plus the two reductions the paper uses (which
// are the communication inverses of the broadcasts).
const (
	OneToAllBcast Collective = iota
	OneToAllPersonalized
	AllToAllBcast
	AllToAllPersonalized
	AllToOneReduce
	AllToAllReduce
)

// Collectives lists the Table 1 rows in order.
var Collectives = []Collective{
	OneToAllBcast, OneToAllPersonalized, AllToAllBcast, AllToAllPersonalized,
	AllToOneReduce, AllToAllReduce,
}

// String implements fmt.Stringer with the paper's names.
func (c Collective) String() string { return c.internal().String() }

func (c Collective) internal() cost.Collective {
	switch c {
	case OneToAllBcast:
		return cost.OneToAllBcast
	case OneToAllPersonalized:
		return cost.OneToAllPersonalized
	case AllToAllBcast:
		return cost.AllToAllBcast
	case AllToAllPersonalized:
		return cost.AllToAllPersonalized
	case AllToOneReduce:
		return cost.AllToOneReduce
	case AllToAllReduce:
		return cost.AllToAllReduce
	default:
		panic(fmt.Sprintf("hypermm: invalid Collective(%d)", int(c)))
	}
}

// CollectiveCost returns Table 1's optimal cost coefficients (a, b) —
// time = t_s*a + t_w*b — for the pattern on an N-processor hypercube
// with M-word messages. The multi-port figures assume M >= log N.
func CollectiveCost(c Collective, N, M float64, ports PortModel) (a, b float64) {
	return cost.CollectiveCost(c.internal(), N, M, ports.internal())
}

// MeasuredCollective runs the pattern on the channel-level emulator
// (N-node subcube, M-word messages) with (t_s, t_w) = (1, 0) and (0, 1)
// and returns the measured coefficients — the empirical counterpart of
// CollectiveCost.
func MeasuredCollective(c Collective, N, M int, ports PortModel) (a, b float64, err error) {
	if N <= 0 || N&(N-1) != 0 {
		return 0, 0, fmt.Errorf("hypermm: N=%d is not a positive power of two", N)
	}
	if M <= 0 {
		return 0, 0, fmt.Errorf("hypermm: M=%d must be positive", M)
	}
	d := hypercube.Log2(N)
	ds := make([]int, d)
	for i := range ds {
		ds[i] = i
	}
	ch := hypercube.NewChain(0, ds)
	blockFor := func(pos int) *matrix.Dense {
		blk := matrix.New(1, M)
		for i := range blk.Data {
			blk.Data[i] = float64(pos*1000 + i)
		}
		return blk
	}
	prog := func(nd *simnet.Node) {
		cm := collective.On(nd, ch)
		switch c {
		case OneToAllBcast:
			var blk *matrix.Dense
			if cm.Pos() == 0 {
				blk = blockFor(0)
			}
			cm.Bcast(1, 0, 1, M, blk)
		case OneToAllPersonalized:
			var blocks []*matrix.Dense
			if cm.Pos() == 0 {
				blocks = make([]*matrix.Dense, N)
				for j := range blocks {
					blocks[j] = blockFor(j)
				}
			}
			cm.Scatter(1, 0, 1, M, blocks)
		case AllToAllBcast:
			cm.AllGather(1, blockFor(cm.Pos()))
		case AllToAllPersonalized:
			blocks := make([]*matrix.Dense, N)
			for j := range blocks {
				blocks[j] = blockFor(j)
			}
			cm.AllToAll(1, blocks)
		case AllToOneReduce:
			cm.Reduce(1, 0, blockFor(cm.Pos()))
		case AllToAllReduce:
			blocks := make([]*matrix.Dense, N)
			for j := range blocks {
				blocks[j] = blockFor(j)
			}
			cm.ReduceScatter(1, blocks)
		}
	}
	for i, pair := range [][2]float64{{1, 0}, {0, 1}} {
		m := simnet.NewMachine(simnet.Config{P: N, Ports: ports.internal(), Ts: pair[0], Tw: pair[1]})
		rs, err := m.RunErr(prog)
		if err != nil {
			return 0, 0, err
		}
		if i == 0 {
			a = rs.Elapsed
		} else {
			b = rs.Elapsed
		}
	}
	return a, b, nil
}

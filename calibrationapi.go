package hypermm

import (
	"fmt"

	"hypermm/internal/cost"
)

// CalibratedModel is an empirically corrected Table 2 cost model:
// the analytic expressions with fitted effective machine parameters
// (t_s, t_w scale factors) and per-algorithm multiplicative residual
// corrections. Build one from a calibration profile (internal/calibrate
// or cmd/calibrate) via NewCalibratedModel. A nil *CalibratedModel is
// the identity: every method falls back to the uncalibrated analytic
// model.
type CalibratedModel struct {
	inner *cost.CalibratedModel
}

// NewCalibratedModel returns a model that predicts
// corr[alg] * (t_s*tsScale*a + t_w*twScale*b) with (a, b) from Table 2.
// Scale factors and corrections must be positive; algorithms absent
// from corr use 1.
func NewCalibratedModel(tsScale, twScale float64, corr map[Algorithm]float64) (*CalibratedModel, error) {
	if !(tsScale > 0) || !(twScale > 0) {
		return nil, fmt.Errorf("hypermm: calibration scales must be positive, got ts=%g tw=%g", tsScale, twScale)
	}
	inner := &cost.CalibratedModel{TsScale: tsScale, TwScale: twScale, Corr: map[cost.Alg]float64{}}
	for alg, c := range corr {
		if !(c > 0) {
			return nil, fmt.Errorf("hypermm: calibration correction for %v must be positive, got %g", alg, c)
		}
		inner.Corr[alg.costAlg()] = c
	}
	return &CalibratedModel{inner: inner}, nil
}

func (m *CalibratedModel) costModel() *cost.CalibratedModel {
	if m == nil {
		return nil
	}
	return m.inner
}

// CommTime is the calibrated communication time at (n, p); ok is false
// if the algorithm is inapplicable (the analytic Table 3 conditions are
// unchanged by calibration).
func (m *CalibratedModel) CommTime(alg Algorithm, n, p, ts, tw float64, ports PortModel) (float64, bool) {
	return m.costModel().Time(alg.costAlg(), n, p, ts, tw, ports.internal())
}

// TotalTime is the calibrated communication time plus the perfectly
// parallel computation time 2 n^3 t_c / p.
func (m *CalibratedModel) TotalTime(alg Algorithm, n, p, ts, tw, tc float64, ports PortModel) (float64, bool) {
	return m.costModel().TotalTime(alg.costAlg(), n, p, ts, tw, tc, ports.internal())
}

// BestAlgorithm returns the algorithm with the least calibrated
// communication time at (n, p) over the same candidate set as
// hypermm.BestAlgorithm, or ok=false if none applies.
func (m *CalibratedModel) BestAlgorithm(n, p, ts, tw float64, ports PortModel) (Algorithm, bool) {
	pm := ports.internal()
	best, ok := m.costModel().Best(n, p, ts, tw, pm, cost.DefaultCandidates(pm))
	if !ok {
		return 0, false
	}
	return fromCostAlg(best), true
}

package hypermm

import (
	"hypermm/internal/cost"
)

// Analytic cost model (the paper's Tables 1-3 and the region-map
// program behind Figures 13 and 14). n and p are continuous, as in the
// paper's analysis.

// Applicable reports whether the algorithm can run an n x n problem on
// p processors at all (Table 3's conditions: p <= n^2 for the 2-D
// algorithms, p <= n^(3/2) for Berntsen and the 3-D All family,
// p <= n^3 for DNS and 3DD).
func Applicable(alg Algorithm, n, p float64) bool {
	return cost.Applicable(alg.costAlg(), n, p)
}

// Overhead returns Table 2's communication-overhead coefficients
// (a, b), where communication time is t_s*a + t_w*b; ok is false if the
// algorithm is inapplicable at (n, p).
func Overhead(alg Algorithm, n, p float64, ports PortModel) (a, b float64, ok bool) {
	return cost.Overhead(alg.costAlg(), n, p, ports.internal())
}

// CommTime evaluates the analytic communication time t_s*a + t_w*b.
func CommTime(alg Algorithm, n, p, ts, tw float64, ports PortModel) (float64, bool) {
	return cost.Time(alg.costAlg(), n, p, ts, tw, ports.internal())
}

// TotalTime is the analytic communication time plus the perfectly
// parallel computation time 2 n^3 t_c / p.
func TotalTime(alg Algorithm, n, p, ts, tw, tc float64, ports PortModel) (float64, bool) {
	return cost.TotalTime(alg.costAlg(), n, p, ts, tw, tc, ports.internal())
}

// Space returns Table 3's aggregate storage in words.
func Space(alg Algorithm, n, p float64) (float64, bool) {
	return cost.Space(alg.costAlg(), n, p)
}

// RegionMap computes a Figure 13/14-style best-algorithm map over
// logN (columns) and logP (rows) and returns its ASCII rendering. The
// candidate set is the paper's: Cannon, Berntsen, 3DD and 3D All, plus
// Ho-Johnsson-Edelman on multi-port machines.
func RegionMap(ports PortModel, ts, tw float64,
	logNMin, logNMax float64, nSteps int,
	logPMin, logPMax float64, pSteps int) string {
	pm := ports.internal()
	rm := cost.NewRegionMap(pm, ts, tw, cost.DefaultCandidates(pm),
		logNMin, logNMax, nSteps, logPMin, logPMax, pSteps)
	return rm.Render()
}

// Candidates returns the algorithm set BestAlgorithm and RegionMap
// choose from on the given machine model (the paper's Section 5
// comparison set).
func Candidates(ports PortModel) []Algorithm {
	cas := cost.DefaultCandidates(ports.internal())
	out := make([]Algorithm, len(cas))
	for i, ca := range cas {
		out[i] = fromCostAlg(ca)
	}
	return out
}

// ComputeTime is the perfectly parallel computation time 2 n^3 t_c / p —
// the compute half of TotalTime.
func ComputeTime(n, p, tc float64) float64 {
	return cost.ComputeTime(n, p, tc)
}

// BestAlgorithm returns the algorithm with the least analytic
// communication time at (n, p), or ok=false if none applies. The
// candidate set matches RegionMap's.
func BestAlgorithm(n, p, ts, tw float64, ports PortModel) (Algorithm, bool) {
	pm := ports.internal()
	best, bestT, found := Algorithm(0), 0.0, false
	for _, ca := range cost.DefaultCandidates(pm) {
		t, ok := cost.Time(ca, n, p, ts, tw, pm)
		if !ok {
			continue
		}
		if !found || t < bestT {
			best, bestT, found = fromCostAlg(ca), t, true
		}
	}
	return best, found
}

func fromCostAlg(ca cost.Alg) Algorithm {
	for _, a := range Algorithms {
		if a.costAlg() == ca {
			return a
		}
	}
	panic("hypermm: unmapped cost algorithm")
}

// Efficiency returns the analytic parallel efficiency
// E = 2 n^3 t_c / (p * T_total) at (n, p).
func Efficiency(alg Algorithm, n, p, ts, tw, tc float64, ports PortModel) (float64, bool) {
	return cost.Efficiency(alg.costAlg(), n, p, ts, tw, tc, ports.internal())
}

// IsoefficiencyN returns the smallest matrix size sustaining the target
// efficiency on p processors — the scalability metric of Gupta & Kumar
// (the paper's reference [5]). Lower growth with p means a more
// scalable algorithm.
func IsoefficiencyN(alg Algorithm, p, target, ts, tw, tc float64, ports PortModel) (float64, bool) {
	return cost.IsoefficiencyN(alg.costAlg(), p, target, ts, tw, tc, ports.internal())
}

// CrossoverP finds the smallest machine size in [pLo, pHi] at which
// algorithm b becomes at least as cheap (in analytic communication
// time) as algorithm a, or ok=false if none exists in the bracket.
func CrossoverP(a, b Algorithm, n, ts, tw float64, ports PortModel, pLo, pHi float64) (float64, bool) {
	return cost.CrossoverP(a.costAlg(), b.costAlg(), n, ts, tw, ports.internal(), pLo, pHi)
}

// Aligned reports whether the algorithm's result matrix is distributed
// exactly like its operands — the paper's chaining property (true for
// Simple, Cannon, HJE, Fox, DNS, 3DD and 3D All; false for Berntsen,
// whose result layout is its stated drawback, and for the
// transpose-mismatched operands of 3D All_Trans and 2-D Diagonal).
func Aligned(alg Algorithm) bool {
	switch alg {
	case Simple, Cannon, HJE, Fox, DNS, ThreeDiag, ThreeAll:
		return true
	default:
		return false
	}
}

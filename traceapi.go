package hypermm

import (
	"io"

	"hypermm/internal/simnet"
	"hypermm/internal/trace"
)

// Trace is the recorded event timeline of a traced run.
type Trace struct {
	log *trace.Log
}

// RunTraced is Run with event tracing enabled: every send, receive and
// compute span is recorded in simulated time. Tracing does not change
// the simulated clocks.
func RunTraced(alg Algorithm, cfg Config, A, B *Matrix) (*Result, *Trace, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, nil, err
	}
	return runTracedOn(m, alg, A, B)
}

// runTracedOn is runOn with event tracing attached to the machine for
// the duration of the run (MachinePool strips the trace at return).
func runTracedOn(m *simnet.Machine, alg Algorithm, A, B *Matrix) (*Result, *Trace, error) {
	log := trace.New()
	m.Cfg.Trace = log
	res, err := runOn(m, alg, A, B)
	if err != nil {
		return nil, nil, err
	}
	return res, &Trace{log: log}, nil
}

// Gantt renders the timeline as one text row per node, width columns
// wide ('#' compute, 's' send, 'r' receive, '.' idle). Widths below a
// small minimum — including zero and negative values — are clamped to
// that minimum rather than misrendering.
func (t *Trace) Gantt(width int) string { return t.log.Gantt(width) }

// Summary returns per-node busy-time totals and the overall
// compute/communication split.
func (t *Trace) Summary() string { return t.log.Summary() }

// Events returns the number of recorded events.
func (t *Trace) Events() int { return t.log.Len() }

// ChromeJSON writes the timeline in the Chrome trace-event format
// (loadable in chrome://tracing or Perfetto): one B/E pair per
// send/receive/compute span, nodes rendered as threads. Simulated time
// maps to the format's microsecond unit.
func (t *Trace) ChromeJSON(w io.Writer) error { return t.log.ChromeJSON(w) }

// TimelineEvents returns a copy of the recorded per-node events sorted
// by (node, start). The element type lives in hypermm/internal/trace,
// so only packages inside this module can name it — it exists for the
// observability layer's merged exports (internal/obs), not for public
// consumption.
func (t *Trace) TimelineEvents() []trace.Event { return t.log.Events() }

package hypermm_test

import (
	"errors"
	"testing"

	"hypermm"
)

// Error-path coverage for the public Run API: every algorithm must
// surface the typed faults (ErrLinkDown on an exhausted retry budget,
// ErrDeadline on a missed deadline) with a nil result — never a partial
// product — and the same inputs must multiply correctly once the fault
// source is removed.

// faultShape picks an (n, p) at which alg is runnable, mirroring the
// runners' shape preconditions.
func faultShape(alg hypermm.Algorithm) (n, p int) {
	for _, p := range []int{4, 8, 16, 64} {
		for _, n := range []int{12, 24, 48} {
			cfg := hypermm.Config{P: p, Ts: 1, Tw: 1}
			A := hypermm.RandomMatrix(n, n, 1)
			if _, err := hypermm.Run(alg, cfg, A, A); err == nil {
				return n, p
			}
		}
	}
	return 0, 0
}

func TestRunLinkDownEveryAlgorithm(t *testing.T) {
	for _, alg := range hypermm.Algorithms {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			n, p := faultShape(alg)
			if n == 0 {
				t.Fatalf("no runnable shape for %v", alg)
			}
			A := hypermm.RandomMatrix(n, n, 11)
			B := hypermm.RandomMatrix(n, n, 12)
			cfg := hypermm.Config{
				P: p, Ts: 1, Tw: 1, Tc: 0.1,
				Faults: &hypermm.FaultPlan{
					Down:       []hypermm.Window{{Src: -1, Dst: -1, From: 0, To: hypermm.Forever}},
					MaxRetries: 1,
				},
			}
			res, err := hypermm.Run(alg, cfg, A, B)
			if !errors.Is(err, hypermm.ErrLinkDown) {
				t.Fatalf("total outage: got err %v, want ErrLinkDown", err)
			}
			if res != nil {
				t.Fatalf("partial result leaked past the failure: %+v", res)
			}

			// Same inputs, fault plan removed: the product must be right.
			cfg.Faults = nil
			res, err = hypermm.Run(alg, cfg, A, B)
			if err != nil {
				t.Fatalf("clean rerun failed: %v", err)
			}
			if err := hypermm.Verify(A, B, res.C, 1e-9*float64(n)); err != nil {
				t.Fatalf("clean rerun product wrong: %v", err)
			}
			if res.Comm.Retries != 0 {
				t.Errorf("clean run charged %d retries", res.Comm.Retries)
			}
		})
	}
}

func TestRunDeadlineEveryAlgorithm(t *testing.T) {
	for _, alg := range hypermm.Algorithms {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			n, p := faultShape(alg)
			if n == 0 {
				t.Fatalf("no runnable shape for %v", alg)
			}
			A := hypermm.RandomMatrix(n, n, 21)
			B := hypermm.RandomMatrix(n, n, 22)
			cfg := hypermm.Config{P: p, Ts: 1, Tw: 1, Tc: 0.1, Deadline: 0.5}
			res, err := hypermm.Run(alg, cfg, A, B)
			if !errors.Is(err, hypermm.ErrDeadline) {
				t.Fatalf("deadline 0.5: got err %v, want ErrDeadline", err)
			}
			if res != nil {
				t.Fatalf("partial result leaked past the deadline: %+v", res)
			}

			cfg.Deadline = 0
			res, err = hypermm.Run(alg, cfg, A, B)
			if err != nil {
				t.Fatalf("rerun without deadline failed: %v", err)
			}
			if err := hypermm.Verify(A, B, res.C, 1e-9*float64(n)); err != nil {
				t.Fatalf("rerun product wrong: %v", err)
			}
		})
	}
}

// TestRunRejectsBadConfigs: config validation errors are plain errors,
// not typed faults, and never produce a result.
func TestRunRejectsBadConfigs(t *testing.T) {
	A := hypermm.RandomMatrix(8, 8, 1)
	for name, cfg := range map[string]hypermm.Config{
		"p-zero":            {P: 0, Ts: 1, Tw: 1},
		"p-not-pow2":        {P: 6, Ts: 1, Tw: 1},
		"negative-ts":       {P: 4, Ts: -1, Tw: 1},
		"negative-deadline": {P: 4, Ts: 1, Tw: 1, Deadline: -2},
	} {
		res, err := hypermm.Run(hypermm.Cannon, cfg, A, A)
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
		if errors.Is(err, hypermm.ErrLinkDown) || errors.Is(err, hypermm.ErrDeadline) {
			t.Errorf("%s: config error reported as a runtime fault: %v", name, err)
		}
		if res != nil {
			t.Errorf("%s: result on error: %+v", name, res)
		}
	}
}

package hypermm

import (
	"fmt"
	"testing"

	"hypermm/internal/layout"
)

// TestCorrectnessSweep runs every algorithm across a grid of machine
// sizes, matrix sizes, port models and operand seeds, verifying the
// product against the serial reference each time. This is the broad
// net; the per-package tests pin the sharp edges.
func TestCorrectnessSweep(t *testing.T) {
	type shape struct{ p, n int }
	squares := []shape{{4, 8}, {16, 32}, {64, 48}}
	cubes := []shape{{8, 16}, {64, 32}}
	if testing.Short() {
		squares = squares[:2]
		cubes = cubes[:1]
	}
	shapesFor := func(alg Algorithm) []shape {
		switch alg {
		case Simple, Cannon, HJE, TwoDiag, Fox:
			return squares
		default:
			return cubes
		}
	}
	for _, alg := range Algorithms {
		for _, pm := range []PortModel{OnePort, MultiPort} {
			for _, sh := range shapesFor(alg) {
				for seed := int64(0); seed < 3; seed++ {
					name := fmt.Sprintf("%s/%v/p=%d/n=%d/seed=%d", alg.Name(), pm, sh.p, sh.n, seed)
					t.Run(name, func(t *testing.T) {
						A := RandomMatrix(sh.n, sh.n, seed*31+1)
						B := RandomMatrix(sh.n, sh.n, seed*31+2)
						res, err := Run(alg, Config{P: sh.p, Ports: pm, Ts: 25, Tw: 2, Tc: 0.25}, A, B)
						if err != nil {
							t.Fatal(err)
						}
						if err := Verify(A, B, res.C, 1e-8); err != nil {
							t.Fatal(err)
						}
						// Basic stat sanity on every configuration.
						if sh.p > 1 && (res.Elapsed <= 0 || res.Comm.Words <= 0) {
							t.Errorf("implausible run stats: %+v", res.Comm)
						}
					})
				}
			}
		}
	}
}

// TestSpecialOperandsSweep: structured operands with exact expected
// results (identity, zero, permutation-ish) across the algorithm set.
func TestSpecialOperandsSweep(t *testing.T) {
	cfgSq := Config{P: 16, Ports: OnePort, Ts: 5, Tw: 1, Tc: 0}
	cfgCu := Config{P: 8, Ports: OnePort, Ts: 5, Tw: 1, Tc: 0}
	for _, alg := range Algorithms {
		cfg := cfgSq
		switch alg {
		case Berntsen, DNS, ThreeDiag, AllTrans, ThreeAll:
			cfg = cfgCu
		}
		n := 16
		t.Run(alg.Name(), func(t *testing.T) {
			A := RandomMatrix(n, n, 5)
			// A * I == A exactly (no rounding: one term per entry).
			res, err := Run(alg, cfg, A, IdentityMatrix(n))
			if err != nil {
				t.Fatal(err)
			}
			if MaxAbsDiff(res.C, A) > 1e-12 {
				t.Error("A*I != A")
			}
			// A * 0 == 0 exactly.
			res, err = Run(alg, cfg, A, NewMatrix(n, n))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.C.Data {
				if v != 0 {
					t.Fatal("A*0 != 0")
					break
				}
			}
		})
	}
}

// TestAlignedMatchesLayouts ties the facade's Aligned() answers to the
// declarative distribution descriptors in internal/layout.
func TestAlignedMatchesLayouts(t *testing.T) {
	pFor := func(alg Algorithm) int {
		switch alg {
		case Simple, Cannon, HJE, TwoDiag, Fox:
			return 16
		default:
			return 64
		}
	}
	for _, alg := range Algorithms {
		d, err := layout.For(alg.Name(), pFor(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got, want := Aligned(alg), d.Aligned(); got != want {
			t.Errorf("%v: facade Aligned()=%v, layout descriptors say %v", alg, got, want)
		}
	}
}

// TestTimingIndependentOfValues: the simulated clock is a function of
// shapes and schedules only — operand values must not change it.
func TestTimingIndependentOfValues(t *testing.T) {
	cfg := Config{P: 64, Ports: MultiPort, Ts: 37, Tw: 3, Tc: 0.5}
	var first float64
	for seed := int64(1); seed <= 3; seed++ {
		A := RandomMatrix(32, 32, seed)
		B := RandomMatrix(32, 32, seed+100)
		res, err := Run(ThreeAll, cfg, A, B)
		if err != nil {
			t.Fatal(err)
		}
		if seed == 1 {
			first = res.Elapsed
		} else if res.Elapsed != first {
			t.Fatalf("seed %d: elapsed %g != %g", seed, res.Elapsed, first)
		}
	}
}

// TestNumericalToleranceScale: distributed reduction orders differ from
// the serial product's, so agreement is within a scale-aware tolerance,
// not bitwise. Exercise operands spanning 12 orders of magnitude.
func TestNumericalToleranceScale(t *testing.T) {
	const n, p = 16, 8
	A := RandomMatrix(n, n, 1)
	B := RandomMatrix(n, n, 2)
	for i := range A.Data {
		if i%3 == 0 {
			A.Data[i] *= 1e6
		}
		if i%7 == 0 {
			B.Data[i] *= 1e-6
		}
	}
	res, err := Run(ThreeAll, Config{P: p, Ports: OnePort, Ts: 1, Tw: 1}, A, B)
	if err != nil {
		t.Fatal(err)
	}
	// Scale-aware check: |diff| <= eps * n * max|A| * max|B|.
	var maxA, maxB float64
	for _, v := range A.Data {
		if v < 0 {
			v = -v
		}
		if v > maxA {
			maxA = v
		}
	}
	for _, v := range B.Data {
		if v < 0 {
			v = -v
		}
		if v > maxB {
			maxB = v
		}
	}
	tol := 1e-14 * float64(n) * maxA * maxB
	if err := Verify(A, B, res.C, tol); err != nil {
		t.Error(err)
	}
}

package hypermm

import (
	"fmt"

	"hypermm/internal/algorithms"
	"hypermm/internal/core"
	"hypermm/internal/cost"
	"hypermm/internal/simnet"
)

// The rectangular-grid 3-D All variant (the paper's closing remark in
// Section 4.2.2): running 3-D All on a Q x qy x Q virtual grid with
// p = Q^2*qy extends applicability from p <= n^(3/2) up to ~n^2/2
// processors, trading replication space (which grows like n^2*sqrt(p)).
// qy = cbrt(p) recovers the standard algorithm.

// RunThreeAllGrid multiplies A by B with the grid 3-D All variant.
func RunThreeAllGrid(cfg Config, A, B *Matrix, qy int) (*Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	c, rs, err := core.ThreeAllGrid(m, A.internal(), B.internal(), qy)
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

// OverheadThreeAllGrid returns the analytic (a, b) communication
// coefficients of the grid variant; ok is false for infeasible shapes.
func OverheadThreeAllGrid(n, p, qy float64, ports PortModel) (a, b float64, ok bool) {
	return cost.OverheadThreeAllGrid(n, p, qy, ports.internal())
}

// BestGridQy returns the communication-optimal qy for the grid variant
// at (n, p), or ok=false if no power-of-two shape fits.
func BestGridQy(n, p, ts, tw float64, ports PortModel) (qy float64, ok bool) {
	return cost.BestGridQy(n, p, ts, tw, ports.internal())
}

// RunDNSCannon multiplies A by B with the DNS+Cannon combination of the
// paper's Section 3.5: s supernodes (a power of eight), each a
// p/s-processor Cannon mesh. It trades DNS's cbrt(p)-fold space
// replication down to cbrt(s)-fold.
func RunDNSCannon(cfg Config, A, B *Matrix, s int) (*Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	c, rs, err := algorithms.DNSCannon(m, A.internal(), B.internal(), s)
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

// OverheadDNSCannon returns the analytic (a, b) communication
// coefficients of the DNS+Cannon combination.
func OverheadDNSCannon(n, p, s float64, ports PortModel) (a, b float64, ok bool) {
	return cost.OverheadDNSCannon(n, p, s, ports.internal())
}

// RunThreeDiagCannon multiplies A by B with the 3DD+Cannon combination:
// the 3-D Diagonal algorithm at supernode granularity with Cannon's
// algorithm computing each supernode's block product. It beats the
// DNS+Cannon combination in both start-ups and transmission (the
// paper's Section 3.5 argument), with the same space savings.
func RunThreeDiagCannon(cfg Config, A, B *Matrix, s int) (*Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	c, rs, err := core.ThreeDiagCannon(m, A.internal(), B.internal(), s)
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

// RunCannonTorus multiplies A by B with Cannon's algorithm on a native
// 2-D torus machine (p must be a perfect square, not necessarily a
// power of two). Reproduces the paper's Section 3.2 observation that
// the shift-multiply-add phase performs identically on tori and
// hypercubes, while the skew phase pays torus distances.
func RunCannonTorus(cfg Config, A, B *Matrix) (*Result, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("hypermm: P=%d must be positive", cfg.P)
	}
	if cfg.Ts < 0 || cfg.Tw < 0 || cfg.Tc < 0 {
		return nil, fmt.Errorf("hypermm: negative cost parameter in %+v", cfg)
	}
	if cfg.Deadline < 0 {
		return nil, fmt.Errorf("hypermm: negative deadline %g", cfg.Deadline)
	}
	m := simnet.NewMachine(simnet.Config{
		P: cfg.P, Ports: cfg.Ports.internal(), Ts: cfg.Ts, Tw: cfg.Tw, Tc: cfg.Tc,
		Topology: simnet.Torus2D,
		Faults:   cfg.Faults.internal(), Deadline: cfg.Deadline,
	})
	c, rs, err := algorithms.CannonTorus(m, A.internal(), B.internal())
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

// RunRepeatedSquaring computes A^(2^rounds) by chained 3-D All rounds
// in a single machine session: because 3-D All's result comes out
// distributed exactly like its operands (the alignment property the
// paper emphasizes), no redistribution happens between rounds.
func RunRepeatedSquaring(cfg Config, A *Matrix, rounds int) (*Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	c, rs, err := core.ThreeAllRepeated(m, A.internal(), rounds)
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

// RunThreeDiagTrans multiplies A by B with the Section 4.1.1 stepping
// stone: the 2-D Diagonal scheme extended to 3-D with B distributed as
// A's transpose. Same cost as ThreeDiag, which supersedes it by
// accepting identical distributions.
func RunThreeDiagTrans(cfg Config, A, B *Matrix) (*Result, error) {
	m, err := newMachine(cfg)
	if err != nil {
		return nil, err
	}
	c, rs, err := core.ThreeDiagTrans(m, A.internal(), B.internal())
	if err != nil {
		return nil, err
	}
	return &Result{C: fromInternal(c), Elapsed: rs.Elapsed, Comm: commStats(rs)}, nil
}

package hypermm

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestMachinePoolRunOnMatchesRun pins the pool's core contract: a warm
// run is indistinguishable from a cold one — same product bytes, same
// simulated Elapsed, same CommStats — across algorithms and repeated
// reuse of the same machine.
func TestMachinePoolRunOnMatchesRun(t *testing.T) {
	pool := NewMachinePool(4)
	defer pool.Close()
	cfg := DefaultConfig(16)
	A := RandomMatrix(16, 16, 1)
	B := RandomMatrix(16, 16, 2)
	for round := 0; round < 3; round++ {
		for _, alg := range []Algorithm{Simple, Cannon, TwoDiag} {
			want, err := Run(alg, cfg, A, B)
			if err != nil {
				t.Fatalf("%v cold: %v", alg, err)
			}
			got, err := pool.RunOn(alg, cfg, A, B)
			if err != nil {
				t.Fatalf("%v warm: %v", alg, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%v round %d: warm result diverged from cold:\ncold: Elapsed=%g Comm=%+v\nwarm: Elapsed=%g Comm=%+v",
					alg, round, want.Elapsed, want.Comm, got.Elapsed, got.Comm)
			}
		}
	}
	st := pool.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

// TestMachinePoolTracedAndFaulted checks per-run configuration (traces,
// fault plans, deadlines) is applied at checkout and stripped at
// return: a faulted run on a pooled machine surfaces its typed error,
// and the next clean run on the same warm machine is unaffected.
func TestMachinePoolTracedAndFaulted(t *testing.T) {
	pool := NewMachinePool(1)
	defer pool.Close()
	cfg := Config{P: 4, Ports: OnePort, Ts: 1, Tw: 1}
	A := RandomMatrix(8, 8, 3)
	B := RandomMatrix(8, 8, 4)

	res, tr, err := pool.RunOnTraced(Cannon, cfg, A, B)
	if err != nil {
		t.Fatalf("traced warm run: %v", err)
	}
	if tr.Events() == 0 {
		t.Fatal("traced warm run recorded no events")
	}
	want, _, err := RunTraced(Cannon, cfg, A, B)
	if err != nil {
		t.Fatalf("traced cold run: %v", err)
	}
	if res.Elapsed != want.Elapsed {
		t.Fatalf("traced warm Elapsed %g != cold %g", res.Elapsed, want.Elapsed)
	}

	hostile := cfg
	hostile.Faults = &FaultPlan{Seed: 1, Down: []Window{{Src: -1, Dst: -1, From: 0, To: Forever}}, MaxRetries: 1}
	if _, err := pool.RunOn(Cannon, hostile, A, B); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("hostile warm run: got %v, want ErrLinkDown", err)
	}

	got, err := pool.RunOn(Cannon, cfg, A, B)
	if err != nil {
		t.Fatalf("clean run after faulted reuse: %v", err)
	}
	cold, err := Run(Cannon, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, got) {
		t.Fatalf("clean run after faulted reuse diverged: Elapsed %g vs %g", got.Elapsed, cold.Elapsed)
	}
}

// TestMachinePoolLRUEviction checks the capacity bound: distinct
// machine shapes beyond the capacity evict the least-recently-used
// idle machine, and evicted shapes miss on their next checkout.
func TestMachinePoolLRUEviction(t *testing.T) {
	pool := NewMachinePool(2)
	defer pool.Close()
	A := RandomMatrix(8, 8, 5)
	B := RandomMatrix(8, 8, 6)
	cfgs := []Config{
		{P: 4, Ts: 1, Tw: 1},
		{P: 4, Ts: 2, Tw: 1}, // same P, different ts: distinct machine
		{P: 16, Ts: 1, Tw: 1},
	}
	for _, cfg := range cfgs {
		if _, err := pool.RunOn(Simple, cfg, A, B); err != nil {
			t.Fatal(err)
		}
	}
	st := pool.Stats()
	if st.Size != 2 || st.Evictions != 1 || st.Misses != 3 {
		t.Fatalf("after 3 distinct shapes at capacity 2: %+v", st)
	}
	// cfgs[0] was evicted (LRU); cfgs[1] and cfgs[2] are warm.
	if _, err := pool.RunOn(Simple, cfgs[1], A, B); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Hits; got != 1 {
		t.Fatalf("warm shape missed: hits = %d, want 1", got)
	}
	if _, err := pool.RunOn(Simple, cfgs[0], A, B); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().Misses; got != 4 {
		t.Fatalf("evicted shape hit: misses = %d, want 4", got)
	}
}

// TestMachinePoolRejectsBadConfig checks validation runs before any
// machine is built or checked out.
func TestMachinePoolRejectsBadConfig(t *testing.T) {
	pool := NewMachinePool(1)
	defer pool.Close()
	A := RandomMatrix(4, 4, 1)
	if _, err := pool.RunOn(Simple, Config{P: 3}, A, A); err == nil {
		t.Fatal("P=3 accepted")
	}
	if _, err := pool.RunOn(Simple, Config{P: 4, Ts: -1}, A, A); err == nil {
		t.Fatal("negative ts accepted")
	}
	if st := pool.Stats(); st.Size != 0 || st.Hits+st.Misses != 0 {
		t.Fatalf("rejected configs touched the pool: %+v", st)
	}
}

// TestMachinePoolConcurrent hammers one pool from many goroutines with
// mixed shapes, faulted runs and interleaved Stats — the -race target
// for the checkout/return/eviction paths. A tiny capacity keeps
// eviction constantly racing runs in flight on checked-out machines.
func TestMachinePoolConcurrent(t *testing.T) {
	pool := NewMachinePool(2)
	defer pool.Close()
	cfgs := []Config{
		{P: 4, Ts: 1, Tw: 1},
		{P: 4, Ts: 150, Tw: 3, Tc: 0.5},
		{P: 16, Ts: 10, Tw: 3},
	}
	hostile := Config{P: 4, Ts: 1, Tw: 1,
		Faults: &FaultPlan{Seed: 7, Down: []Window{{Src: -1, Dst: -1, From: 0, To: Forever}}, MaxRetries: 1}}
	rushed := Config{P: 4, Ts: 1, Tw: 1, Deadline: 1e-9}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			A := RandomMatrix(8, 8, int64(g))
			B := RandomMatrix(8, 8, int64(g)+100)
			for i := 0; i < 20; i++ {
				switch rng.Intn(10) {
				case 0:
					if _, err := pool.RunOn(Cannon, hostile, A, B); !errors.Is(err, ErrLinkDown) {
						t.Errorf("goroutine %d: hostile run: %v", g, err)
						return
					}
					continue
				case 1:
					if _, err := pool.RunOn(Cannon, rushed, A, B); !errors.Is(err, ErrDeadline) {
						t.Errorf("goroutine %d: rushed run: %v", g, err)
						return
					}
					continue
				}
				cfg := cfgs[rng.Intn(len(cfgs))]
				res, err := pool.RunOn(Simple, cfg, A, B)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if err := Verify(A, B, res.C, 1e-9); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				pool.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := pool.Stats(); st.Size > 2 {
		t.Fatalf("pool over capacity: %+v", st)
	}
}

// TestMachinePoolCloseDuringUse checks closing the pool while machines
// are checked out: in-flight runs finish normally and their machines
// are closed on return instead of parked.
func TestMachinePoolCloseDuringUse(t *testing.T) {
	pool := NewMachinePool(4)
	cfg := Config{P: 4, Ts: 1, Tw: 1}
	A := RandomMatrix(8, 8, 9)
	B := RandomMatrix(8, 8, 10)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := pool.RunOn(Simple, cfg, A, B); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	pool.Close()
	wg.Wait()
	pool.Close() // idempotent
	if st := pool.Stats(); st.Size != 0 {
		t.Fatalf("closed pool holds machines: %+v", st)
	}
}

// TestArenaMatricesMatchHeapMatrices pins arena determinism: pooled
// slabs are fully overwritten, so arena matrices equal their heap
// counterparts element for element even when slabs are recycled dirty.
func TestArenaMatricesMatchHeapMatrices(t *testing.T) {
	a := NewArena()
	for round := 0; round < 3; round++ {
		r1 := a.RandomMatrix(13, 17, 42)
		want := RandomMatrix(13, 17, 42)
		if !reflect.DeepEqual(r1.Data, want.Data) {
			t.Fatalf("round %d: arena RandomMatrix diverged from heap", round)
		}
		z := a.Matrix(13, 17)
		for i, v := range z.Data {
			if v != 0 {
				t.Fatalf("round %d: arena Matrix not zeroed at %d: %g", round, i, v)
			}
		}
		// Dirty the slabs so the next round catches any missing rewrite.
		for i := range r1.Data {
			r1.Data[i] = 1e9
		}
		for i := range z.Data {
			z.Data[i] = -1e9
		}
		a.Release()
	}
}

// TestArenaAdoptRecyclesProduct checks an adopted product slab re-enters
// the pool and a full warm-serving round trip (arena operands, pooled
// machine, adopted product) matches the cold path.
func TestArenaAdoptRecyclesProduct(t *testing.T) {
	pool := NewMachinePool(1)
	defer pool.Close()
	cfg := DefaultConfig(4)
	want, err := Run(Cannon, cfg, RandomMatrix(16, 16, 7), RandomMatrix(16, 16, 8))
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for round := 0; round < 3; round++ {
		A := a.RandomMatrix(16, 16, 7)
		B := a.RandomMatrix(16, 16, 8)
		res, err := pool.RunOn(Cannon, cfg, A, B)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("round %d: warm arena run diverged from cold heap run", round)
		}
		a.Adopt(res.C)
		a.Release()
	}
}

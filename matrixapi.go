package hypermm

import (
	"fmt"

	"hypermm/internal/matrix"
)

// Matrix is a dense row-major float64 matrix — the public operand type.
// Data has length Rows*Cols; element (i, j) is Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	d := matrix.New(r, c)
	return &Matrix{Rows: r, Cols: c, Data: d.Data}
}

// RandomMatrix returns an r x c matrix with entries uniform in [-1, 1),
// deterministic in the seed.
func RandomMatrix(r, c int, seed int64) *Matrix {
	d := matrix.Random(r, c, seed)
	return &Matrix{Rows: r, Cols: c, Data: d.Data}
}

// IdentityMatrix returns the n x n identity.
func IdentityMatrix(n int) *Matrix {
	d := matrix.Identity(n)
	return &Matrix{Rows: n, Cols: n, Data: d.Data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.internal().At(i, j) }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.internal().Set(i, j, v) }

// internal views the Matrix as the implementation type without copying.
func (m *Matrix) internal() *matrix.Dense {
	if m.Rows*m.Cols != len(m.Data) {
		panic(fmt.Sprintf("hypermm: Matrix %dx%d does not cover %d data words", m.Rows, m.Cols, len(m.Data)))
	}
	return matrix.FromSlice(m.Rows, m.Cols, m.Data)
}

func fromInternal(d *matrix.Dense) *Matrix {
	return &Matrix{Rows: d.Rows, Cols: d.Cols, Data: d.Data}
}

// Transpose returns a new matrix holding m transposed.
func (m *Matrix) Transpose() *Matrix {
	return fromInternal(m.internal().Transpose())
}

// MatMul returns the serial (single-machine) product a*b — the
// reference the distributed results are verified against.
func MatMul(a, b *Matrix) *Matrix {
	return fromInternal(matrix.Mul(a.internal(), b.internal()))
}

// SetKernelParallelism sets the number of OS-level workers the local
// GEMM kernel may use (minimum 1) and returns the previous setting.
// Results are bitwise identical at every level; parallelism only
// changes wall-clock speed, never simulated times.
func SetKernelParallelism(n int) int { return matrix.SetParallelism(n) }

// KernelParallelism returns the kernel worker budget.
func KernelParallelism() int { return matrix.Parallelism() }

// MaxAbsDiff returns the largest absolute element-wise difference of
// two equal-shaped matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	return matrix.MaxAbsDiff(a.internal(), b.internal())
}

// AlmostEqual reports whether a and b agree element-wise within tol.
func AlmostEqual(a, b *Matrix, tol float64) bool {
	return matrix.AlmostEqual(a.internal(), b.internal(), tol)
}

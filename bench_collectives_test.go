package hypermm

import "testing"

// BenchmarkCollective_* is the machine-scaling companion to
// BenchmarkTable1_*: the same measured (t_s, t_w) coefficients, but
// swept over machine sizes p=8 and p=64 for the three collectives the
// matmul algorithms lean on hardest (broadcast and all-gather carry
// the 2D/3D input distribution, reduce-scatter the 3D combine). The
// bench trajectory persists these as BENCH_collectives.json so
// regressions in the collective schedules show up as sim_a/sim_b
// jumps between commits.

func benchCollectiveP(b *testing.B, c Collective, p int) {
	// M scales with p so per-node payloads stay comparable across
	// machine sizes.
	m := 12 * p
	var a, bw float64
	for i := 0; i < b.N; i++ {
		var err error
		a, bw, err = MeasuredCollective(c, p, m, OnePort)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a, "sim_a")
	b.ReportMetric(bw, "sim_b")
}

func BenchmarkCollective_Bcast_P8(b *testing.B)  { benchCollectiveP(b, OneToAllBcast, 8) }
func BenchmarkCollective_Bcast_P64(b *testing.B) { benchCollectiveP(b, OneToAllBcast, 64) }

func BenchmarkCollective_AllGather_P8(b *testing.B)  { benchCollectiveP(b, AllToAllBcast, 8) }
func BenchmarkCollective_AllGather_P64(b *testing.B) { benchCollectiveP(b, AllToAllBcast, 64) }

func BenchmarkCollective_ReduceScatter_P8(b *testing.B)  { benchCollectiveP(b, AllToAllReduce, 8) }
func BenchmarkCollective_ReduceScatter_P64(b *testing.B) { benchCollectiveP(b, AllToAllReduce, 64) }

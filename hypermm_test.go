package hypermm

import (
	"errors"
	"strings"
	"testing"
)

func TestRunAllAlgorithms(t *testing.T) {
	// Every algorithm, on a machine size where it is runnable, must
	// reproduce the serial product through the public API.
	cases := []struct {
		alg  Algorithm
		p, n int
	}{
		{Simple, 16, 16}, {Cannon, 16, 16}, {HJE, 16, 16},
		{Berntsen, 8, 16}, {DNS, 8, 16}, {TwoDiag, 16, 16},
		{ThreeDiag, 8, 16}, {AllTrans, 8, 16}, {ThreeAll, 8, 16},
	}
	for _, pm := range []PortModel{OnePort, MultiPort} {
		for _, c := range cases {
			A := RandomMatrix(c.n, c.n, 1)
			B := RandomMatrix(c.n, c.n, 2)
			res, err := Run(c.alg, Config{P: c.p, Ports: pm, Ts: 100, Tw: 2, Tc: 0.5}, A, B)
			if err != nil {
				t.Fatalf("%v p=%d: %v", c.alg, c.p, err)
			}
			if err := Verify(A, B, res.C, 1e-9); err != nil {
				t.Errorf("%v %v: %v", c.alg, pm, err)
			}
			if res.Elapsed <= 0 || res.Comm.Msgs <= 0 || res.Comm.Flops <= 0 {
				t.Errorf("%v: implausible stats %+v", c.alg, res.Comm)
			}
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	A := RandomMatrix(8, 8, 1)
	if _, err := Run(Cannon, Config{P: 12}, A, A); err == nil {
		t.Error("accepted non-power-of-two P")
	}
	if _, err := Run(Cannon, Config{P: 0}, A, A); err == nil {
		t.Error("accepted P=0")
	}
	if _, err := Run(Cannon, Config{P: 4, Ts: -1}, A, A); err == nil {
		t.Error("accepted negative Ts")
	}
	if _, err := Run(ThreeAll, Config{P: 16, Ts: 1}, A, A); err == nil {
		t.Error("accepted non-cube P for 3D All")
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range Algorithms {
		got, err := ParseAlgorithm(a.Name())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.Name(), got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("accepted bogus algorithm name")
	}
}

func TestParsePortModelRoundTrip(t *testing.T) {
	for _, pm := range []PortModel{OnePort, MultiPort} {
		got, err := ParsePortModel(pm.String())
		if err != nil || got != pm {
			t.Errorf("ParsePortModel(%q) = %v, %v", pm.String(), got, err)
		}
	}
	for _, s := range []string{"one", "oneport", "multi", "multiport"} {
		if _, err := ParsePortModel(s); err != nil {
			t.Errorf("ParsePortModel(%q): %v", s, err)
		}
	}
	if _, err := ParsePortModel("zero"); err == nil {
		t.Error("accepted bogus port model name")
	}
}

func TestMatrixHelpers(t *testing.T) {
	a := RandomMatrix(4, 4, 9)
	i := IdentityMatrix(4)
	if MaxAbsDiff(MatMul(a, i), a) != 0 {
		t.Error("A*I != A")
	}
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("Set/At broken")
	}
	if !AlmostEqual(a, a, 0) {
		t.Error("AlmostEqual self")
	}
}

func TestVerifyFailsOnWrongResult(t *testing.T) {
	A := RandomMatrix(4, 4, 1)
	B := RandomMatrix(4, 4, 2)
	bad := RandomMatrix(4, 4, 3)
	if err := Verify(A, B, bad, 1e-9); err == nil {
		t.Error("Verify accepted a wrong product")
	}
	if err := Verify(A, B, NewMatrix(3, 3), 1e-9); err == nil {
		t.Error("Verify accepted a wrong shape")
	}
}

func TestMeasuredOverheadMatchesAnalytic(t *testing.T) {
	// Simple is phase-synchronous: measured == analytic exactly.
	a, b, err := MeasuredOverhead(Simple, 16, 32, OnePort)
	if err != nil {
		t.Fatal(err)
	}
	wantA, wantB, ok := Overhead(Simple, 32, 16, OnePort)
	if !ok || a != wantA || b != wantB {
		t.Errorf("measured (%g,%g) vs analytic (%g,%g)", a, b, wantA, wantB)
	}
}

func TestCostAPISanity(t *testing.T) {
	if !Applicable(ThreeAll, 100, 512) || Applicable(ThreeAll, 16, 512) {
		t.Error("Applicable wrong")
	}
	tm, ok := CommTime(ThreeAll, 256, 64, 150, 3, OnePort)
	if !ok || tm <= 0 {
		t.Error("CommTime wrong")
	}
	tt, ok := TotalTime(ThreeAll, 256, 64, 150, 3, 0.5, OnePort)
	if !ok || tt <= tm {
		t.Error("TotalTime must exceed CommTime")
	}
	sp, ok := Space(Cannon, 256, 64)
	if !ok || sp != 3*256*256 {
		t.Errorf("Space = %g", sp)
	}
}

func TestBestAlgorithm(t *testing.T) {
	// Where 3D All applies it must be selected (one-port, p >= 8).
	if alg, ok := BestAlgorithm(1024, 512, 150, 3, OnePort); !ok || alg != ThreeAll {
		t.Errorf("best at (1024,512) = %v, want 3D All", alg)
	}
	// Beyond n^2 only 3DD applies.
	if alg, ok := BestAlgorithm(16, 4096, 150, 3, OnePort); !ok || alg != ThreeDiag {
		t.Errorf("best at (16,4096) = %v, want 3DD", alg)
	}
	// Beyond n^3 nothing applies.
	if _, ok := BestAlgorithm(4, 4096, 150, 3, OnePort); ok {
		t.Error("found an algorithm beyond p = n^3")
	}
}

func TestRegionMapAPI(t *testing.T) {
	s := RegionMap(OnePort, 150, 3, 5, 13, 17, 3, 18, 16)
	if !strings.Contains(s, "legend:") || !strings.Contains(s, "A=3D All") {
		t.Error("region map rendering incomplete")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(64)
	if cfg.P != 64 || cfg.Ts != 150 || cfg.Tw != 3 || cfg.Ports != OnePort {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

func TestPortModelStrings(t *testing.T) {
	if OnePort.String() != "one-port" || MultiPort.String() != "multi-port" {
		t.Error("port model names wrong")
	}
}

func TestRunFoxViaFacade(t *testing.T) {
	A := RandomMatrix(16, 16, 1)
	B := RandomMatrix(16, 16, 2)
	res, err := Run(Fox, Config{P: 16, Ports: OnePort, Ts: 10, Tw: 1, Tc: 0.1}, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestRunThreeAllGridFacade(t *testing.T) {
	A := RandomMatrix(16, 16, 1)
	B := RandomMatrix(16, 16, 2)
	// p = 128 > n^1.5 = 64: beyond the cube algorithm's limit.
	res, err := RunThreeAllGrid(Config{P: 128, Ports: OnePort, Ts: 10, Tw: 1, Tc: 0.1}, A, B, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
	a, b, ok := OverheadThreeAllGrid(16, 128, 2, OnePort)
	if !ok || a <= 0 || b <= 0 {
		t.Errorf("grid overhead = (%g,%g,%v)", a, b, ok)
	}
	if qy, ok := BestGridQy(1024, 512, 150, 3, OnePort); !ok || qy <= 0 {
		t.Errorf("BestGridQy = (%g,%v)", qy, ok)
	}
}

func TestRunTraced(t *testing.T) {
	A := RandomMatrix(16, 16, 1)
	B := RandomMatrix(16, 16, 2)
	cfg := Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Tc: 0.1}
	res, tr, err := RunTraced(ThreeAll, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
	if tr.Events() == 0 {
		t.Error("no events recorded")
	}
	if g := tr.Gantt(60); !strings.Contains(g, "node") {
		t.Error("gantt rendering empty")
	}
	if s := tr.Summary(); !strings.Contains(s, "overall:") {
		t.Error("summary empty")
	}
	// Tracing must not perturb the clock.
	plain, err := Run(ThreeAll, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != res.Elapsed {
		t.Errorf("traced elapsed %g != plain %g", res.Elapsed, plain.Elapsed)
	}
}

func TestCrossoverPFacade(t *testing.T) {
	p, ok := CrossoverP(Cannon, ThreeDiag, 512, 20, 3, OnePort, 8, 1<<17)
	if !ok || p <= 8 {
		t.Errorf("crossover = (%g,%v)", p, ok)
	}
}

func TestRunDNSCannonFacade(t *testing.T) {
	A := RandomMatrix(32, 32, 1)
	B := RandomMatrix(32, 32, 2)
	res, err := RunDNSCannon(Config{P: 32, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0}, A, B, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
	if a, b, ok := OverheadDNSCannon(32, 32, 8, OnePort); !ok || a <= 0 || b <= 0 {
		t.Errorf("OverheadDNSCannon = (%g,%g,%v)", a, b, ok)
	}
}

func TestRunThreeDiagCannonFacade(t *testing.T) {
	A := RandomMatrix(32, 32, 1)
	B := RandomMatrix(32, 32, 2)
	res, err := RunThreeDiagCannon(Config{P: 32, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0}, A, B, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
}

// TestVerificationCatchesCorruptedTransport: failure injection — if the
// network flips values in flight, the end-to-end Verify must fail. This
// proves the correctness checks in this repository are sensitive to
// transport-level corruption rather than vacuously passing.
func TestVerificationCatchesCorruptedTransport(t *testing.T) {
	A := RandomMatrix(16, 16, 1)
	B := RandomMatrix(16, 16, 2)
	m, err := newMachine(Config{P: 8, Ports: OnePort, Ts: 1, Tw: 1})
	if err != nil {
		t.Fatal(err)
	}
	m.Cfg.Corrupt = func(src, dst int, tag uint64, data []float64) {
		if len(data) > 0 {
			data[0] += 0.5
		}
	}
	c, _, err := ThreeAll.runner()(m, A.internal(), B.internal())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, fromInternal(c), 1e-6); err == nil {
		t.Fatal("verification passed despite corrupted transport")
	}
}

func TestRunRepeatedSquaringFacade(t *testing.T) {
	A := RandomMatrix(16, 16, 9)
	for i := range A.Data {
		A.Data[i] *= 0.2
	}
	res, err := RunRepeatedSquaring(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Tc: 0}, A, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMul(MatMul(A, A), MatMul(A, A)) // A^4
	if MaxAbsDiff(res.C, want) > 1e-8 {
		t.Error("repeated squaring wrong")
	}
}

func TestRunCannonTorusFacade(t *testing.T) {
	// 9 processors: impossible on a hypercube, natural on a torus.
	A := RandomMatrix(9, 9, 1)
	B := RandomMatrix(9, 9, 2)
	res, err := RunCannonTorus(Config{P: 9, Ports: OnePort, Ts: 10, Tw: 1, Tc: 0}, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
	if _, err := RunCannonTorus(Config{P: -1}, A, B); err == nil {
		t.Error("accepted negative P")
	}
}

func TestRunCannonTorusUnderFaults(t *testing.T) {
	// The torus facade must honor fault plans and deadlines like Run.
	A := RandomMatrix(9, 9, 1)
	B := RandomMatrix(9, 9, 2)
	cfg := Config{P: 9, Ports: OnePort, Ts: 10, Tw: 1,
		Faults: &FaultPlan{Seed: 6, Drop: 0.2, MaxRetries: 30}}
	res, err := RunCannonTorus(cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
	if res.Comm.Retries == 0 {
		t.Error("torus run under 20% drop never retried")
	}
	cfg.Faults = &FaultPlan{Seed: 6, Down: []Window{{Src: -1, Dst: -1, From: 0, To: Forever}}, MaxRetries: 1}
	if _, err := RunCannonTorus(cfg, A, B); !errors.Is(err, ErrLinkDown) {
		t.Errorf("torus outage: err = %v, want ErrLinkDown", err)
	}
	if _, err := RunCannonTorus(Config{P: 9, Deadline: -1}, A, B); err == nil {
		t.Error("accepted negative deadline")
	}
}

func TestAligned(t *testing.T) {
	if !Aligned(ThreeAll) || !Aligned(ThreeDiag) || !Aligned(Cannon) {
		t.Error("aligned algorithms misreported")
	}
	if Aligned(Berntsen) || Aligned(AllTrans) || Aligned(TwoDiag) {
		t.Error("misaligned algorithms misreported")
	}
}

func TestCollectiveAPIBasics(t *testing.T) {
	for _, c := range Collectives {
		if c.String() == "" {
			t.Errorf("collective %d has no name", int(c))
		}
	}
	if _, _, err := MeasuredCollective(AllToAllBcast, 3, 8, OnePort); err == nil {
		t.Error("accepted non-power-of-two N")
	}
	if _, _, err := MeasuredCollective(AllToAllBcast, 4, 0, OnePort); err == nil {
		t.Error("accepted zero M")
	}
	a, b, err := MeasuredCollective(AllToOneReduce, 4, 8, MultiPort)
	if err != nil || a <= 0 || b <= 0 {
		t.Errorf("measured reduce = (%g,%g,%v)", a, b, err)
	}
}

func TestEfficiencyFacade(t *testing.T) {
	e, ok := Efficiency(ThreeAll, 256, 64, 150, 3, 0.5, OnePort)
	if !ok || e <= 0 || e > 1 {
		t.Errorf("Efficiency = (%g,%v)", e, ok)
	}
}

func TestExtensionRunnersErrorPaths(t *testing.T) {
	A := RandomMatrix(8, 8, 1)
	// Bad machine config propagates.
	if _, err := RunThreeAllGrid(Config{P: 3}, A, A, 1); err == nil {
		t.Error("grid accepted bad P")
	}
	if _, err := RunDNSCannon(Config{P: 3}, A, A, 1); err == nil {
		t.Error("dnscannon accepted bad P")
	}
	if _, err := RunThreeDiagCannon(Config{P: 3}, A, A, 1); err == nil {
		t.Error("3ddcannon accepted bad P")
	}
	if _, err := RunRepeatedSquaring(Config{P: 3}, A, 1); err == nil {
		t.Error("repeated squaring accepted bad P")
	}
	// Bad algorithm shape propagates.
	if _, err := RunThreeAllGrid(Config{P: 16, Ts: 1}, A, A, 2); err == nil {
		t.Error("grid accepted 16/2 non-square")
	}
	if _, err := RunDNSCannon(Config{P: 16, Ts: 1}, A, A, 5); err == nil {
		t.Error("dnscannon accepted s=5")
	}
	if _, err := RunThreeDiagCannon(Config{P: 16, Ts: 1}, A, A, 5); err == nil {
		t.Error("3ddcannon accepted s=5")
	}
	if _, err := RunRepeatedSquaring(Config{P: 8, Ts: 1}, A, -1); err == nil {
		t.Error("repeated squaring accepted negative rounds")
	}
}

func TestMeasuredCollectiveAllKinds(t *testing.T) {
	for _, c := range Collectives {
		for _, pm := range []PortModel{OnePort, MultiPort} {
			a, b, err := MeasuredCollective(c, 8, 24, pm)
			if err != nil || a <= 0 || b <= 0 {
				t.Errorf("%v %v: (%g,%g,%v)", c, pm, a, b, err)
			}
		}
	}
}

func TestMatrixInternalPanicsOnCorruptShape(t *testing.T) {
	m := &Matrix{Rows: 2, Cols: 2, Data: make([]float64, 3)}
	defer func() {
		if recover() == nil {
			t.Error("corrupt Matrix shape not caught")
		}
	}()
	m.At(0, 0)
}

// TestDifferentialAllAlgorithms is the differential golden test: every
// algorithm, on every shape its grid embedding admits, on both port
// models, must reproduce the serial product. The shape lists mirror the
// runners' preconditions (square mesh, cube grid, HJE's log sqrt(p)
// strip slicing), so a skip can never hide a regression — an entry that
// stops running is a test failure, not a skip.
func TestDifferentialAllAlgorithms(t *testing.T) {
	meshShapes := [][2]int{{4, 16}, {4, 24}, {16, 16}, {16, 24}, {64, 48}}
	shapes := map[Algorithm][][2]int{ // {p, n}
		Simple:  meshShapes,
		Cannon:  meshShapes,
		TwoDiag: meshShapes,
		Fox:     meshShapes,
		// HJE at p=64 also needs log sqrt(p)=3 to divide n/8.
		HJE:       {{4, 16}, {4, 24}, {16, 16}, {16, 24}, {64, 24}, {64, 48}},
		DNS:       {{8, 16}, {8, 24}, {64, 16}, {64, 48}},
		ThreeDiag: {{8, 16}, {8, 24}, {64, 16}, {64, 48}},
		Berntsen:  {{8, 16}, {8, 24}, {64, 16}, {64, 48}},
		AllTrans:  {{8, 16}, {8, 24}, {64, 16}, {64, 48}},
		ThreeAll:  {{8, 16}, {8, 24}, {64, 16}, {64, 48}},
	}
	for _, alg := range Algorithms {
		if len(shapes[alg]) == 0 {
			t.Errorf("%v: no differential shapes", alg)
		}
	}
	for _, pm := range []PortModel{OnePort, MultiPort} {
		for alg, list := range shapes {
			for _, pn := range list {
				p, n := pn[0], pn[1]
				A := RandomMatrix(n, n, int64(97*p+n))
				B := RandomMatrix(n, n, int64(89*p+n))
				res, err := Run(alg, Config{P: p, Ports: pm, Ts: 150, Tw: 3, Tc: 0.5}, A, B)
				if err != nil {
					t.Errorf("%v %v p=%d n=%d: %v", alg, pm, p, n, err)
					continue
				}
				if err := Verify(A, B, res.C, 1e-9); err != nil {
					t.Errorf("%v %v p=%d n=%d: %v", alg, pm, p, n, err)
				}
			}
		}
	}
}

// TestRunDeterministicUnderFaults is the determinism regression: the
// same (algorithm, config, seed, fault plan) must reproduce identical
// simulated clocks and communication counters, run after run — fault
// decisions may never leak goroutine scheduling into the clock.
func TestRunDeterministicUnderFaults(t *testing.T) {
	A := RandomMatrix(24, 24, 1)
	B := RandomMatrix(24, 24, 2)
	plans := []*FaultPlan{
		nil,
		{Seed: 13, Drop: 0.15, MaxRetries: 30},
		{Seed: 13, Drop: 0.1, Dup: 0.1, DelayProb: 0.2, DelayTime: 33, MaxRetries: 30},
	}
	for _, alg := range []Algorithm{Cannon, ThreeAll} {
		for pi, plan := range plans {
			cfg := Config{P: 16, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0.5, Faults: plan}
			if alg == ThreeAll {
				cfg.P = 8
			}
			var elapsed float64
			var comm CommStats
			for run := 0; run < 3; run++ {
				res, err := Run(alg, cfg, A, B)
				if err != nil {
					t.Fatalf("%v plan %d run %d: %v", alg, pi, run, err)
				}
				if run == 0 {
					elapsed, comm = res.Elapsed, res.Comm
				} else if res.Elapsed != elapsed || res.Comm != comm {
					t.Fatalf("%v plan %d run %d diverged: (%g, %+v) vs (%g, %+v)",
						alg, pi, run, res.Elapsed, res.Comm, elapsed, comm)
				}
			}
			if pi > 0 && comm.Retries == 0 {
				t.Errorf("%v plan %d: fault plan never exercised the retry path", alg, pi)
			}
		}
	}
}

func TestRunThreeDiagTransFacade(t *testing.T) {
	A := RandomMatrix(16, 16, 1)
	B := RandomMatrix(16, 16, 2)
	res, err := RunThreeDiagTrans(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Tc: 0}, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(A, B, res.C, 1e-9); err != nil {
		t.Error(err)
	}
}

package hypermm

import (
	"math/rand"
	"sync"
)

// Arena is a request-scoped matrix allocator: every Matrix it hands out
// is backed by a slab drawn from a process-wide size-class pool, and
// Release returns all of them at once. A serving loop that decodes
// operands, runs the block distribution and assembles a product on
// every request allocates the same few large slabs over and over —
// arenas recycle them instead of churning the garbage collector.
//
// Contents are deterministic regardless of reuse: a zeroed matrix is
// explicitly zeroed, a random matrix is fully overwritten by its seeded
// fill, so a recycled slab is indistinguishable from a fresh one.
//
// An Arena is not safe for concurrent use; give each request its own.
// After Release the arena's matrices must no longer be used.
type Arena struct {
	slabs [][]float64
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// slabClass bounds pooled slabs at 2^26 words (512 MiB); larger
// requests fall through to plain allocation.
const maxSlabClass = 26

var slabPools [maxSlabClass + 1]sync.Pool

// getSlab returns a length-n slab from the size-class pool (capacity
// rounded up to the next power of two). Contents are arbitrary; callers
// must fully overwrite.
func getSlab(n int) []float64 {
	if n == 0 {
		return nil
	}
	c := 0
	for 1<<c < n {
		c++
	}
	if c > maxSlabClass {
		return make([]float64, n)
	}
	if s, _ := slabPools[c].Get().(*[]float64); s != nil {
		return (*s)[:n]
	}
	return make([]float64, n, 1<<c)
}

// putSlab recycles a slab into the largest class its capacity fully
// covers (floor class). getSlab draws from the ceiling class of the
// requested length, so every slab parked in class c is guaranteed to
// fit any request that class serves — which lets adopted slabs of
// arbitrary capacity (e.g. a product matrix assembled by an algorithm)
// re-enter the pool, not just slabs the pool itself minted.
func putSlab(s []float64) {
	n := cap(s)
	if n == 0 {
		return
	}
	c := 0
	for 1<<(c+1) <= n {
		c++
	}
	if c > maxSlabClass {
		c = maxSlabClass
	}
	s = s[:cap(s)]
	slabPools[c].Put(&s)
}

// Matrix returns a zeroed r x c matrix backed by a pooled slab owned by
// the arena.
func (a *Arena) Matrix(r, c int) *Matrix {
	d := getSlab(r * c)
	for i := range d {
		d[i] = 0
	}
	a.slabs = append(a.slabs, d)
	return &Matrix{Rows: r, Cols: c, Data: d}
}

// RandomMatrix is RandomMatrix on a pooled slab: entries uniform in
// [-1, 1), element-for-element identical to the package-level
// RandomMatrix for the same seed.
func (a *Arena) RandomMatrix(r, c int, seed int64) *Matrix {
	d := getSlab(r * c)
	rng := rand.New(rand.NewSource(seed))
	for i := range d {
		d[i] = 2*rng.Float64() - 1
	}
	a.slabs = append(a.slabs, d)
	return &Matrix{Rows: r, Cols: c, Data: d}
}

// Adopt takes ownership of m's backing slab: Release will recycle it
// alongside the arena's own allocations. Use it on a product matrix
// after the response is encoded, so the assembly buffer feeds the next
// request's operands. Adopting nil is a no-op.
func (a *Arena) Adopt(m *Matrix) {
	if m == nil || m.Data == nil {
		return
	}
	a.slabs = append(a.slabs, m.Data)
}

// Release returns every slab the arena owns to the pool. The arena is
// reusable (empty) afterwards; matrices previously handed out must no
// longer be touched.
func (a *Arena) Release() {
	for i, s := range a.slabs {
		putSlab(s)
		a.slabs[i] = nil
	}
	a.slabs = a.slabs[:0]
}

package hypermm

import (
	"math"

	"hypermm/internal/simnet"
)

// Typed failure causes surfaced by Run when a fault plan or deadline is
// configured. Test with errors.Is:
//
//	_, err := hypermm.Run(alg, cfg, A, B)
//	if errors.Is(err, hypermm.ErrLinkDown) { ... }
var (
	// ErrLinkDown reports a transfer that exhausted its retry budget
	// (persistent drops or a link-down window).
	ErrLinkDown = simnet.ErrLinkDown
	// ErrDeadline reports a node whose simulated clock passed the
	// configured Deadline.
	ErrDeadline = simnet.ErrDeadline
)

// Window is a transient link outage: transfers departing Src toward Dst
// within [From, To) simulated time are lost and must be retried. Src or
// Dst of -1 matches every node.
type Window struct {
	Src, Dst int
	From, To float64
}

// Forever is a convenience upper bound for Window.To.
var Forever = math.Inf(1)

// FaultPlan is a seeded, deterministic description of link-level
// failures, plus the recovery budget of the acknowledged-transfer
// protocol the emulator switches to while a plan is active. The same
// (algorithm, config, seed, plan) always produces the same simulated
// clocks, counters and verdict — fault injection never depends on
// goroutine scheduling.
//
// An empty plan (no drop/dup/delay probability, no windows) is inert:
// the machine stays byte-for-byte on its fault-free path, so the
// measured communication counters still reconcile with the paper's
// Table 2 analytic model.
type FaultPlan struct {
	Seed uint64 // decision seed; same seed, same failures

	Drop      float64  // per-attempt drop probability in [0, 1)
	Dup       float64  // probability a delivered payload arrives twice
	DelayProb float64  // probability a delivered payload is delayed
	DelayTime float64  // extra in-flight latency when delayed (simulated time)
	Down      []Window // transient link-down windows

	// MaxRetries bounds retransmissions after the first attempt:
	// 0 means the default of 4, negative means no retries at all.
	// Exhausting the budget surfaces ErrLinkDown from Run.
	MaxRetries int
	// AckTimeout is the simulated time a sender waits on a lost attempt
	// before retransmitting; 0 means twice the attempt's round trip.
	AckTimeout float64
	// Backoff scales the exponential backoff added after the k-th lost
	// attempt (Backoff * 2^k); 0 means the machine's Ts.
	Backoff float64
}

// Empty reports whether the plan injects no faults at all.
func (fp *FaultPlan) Empty() bool { return fp.internal().Empty() }

func (fp *FaultPlan) internal() *simnet.FaultPlan {
	if fp == nil {
		return nil
	}
	sp := &simnet.FaultPlan{
		Seed: fp.Seed, Drop: fp.Drop, Dup: fp.Dup,
		DelayProb: fp.DelayProb, DelayTime: fp.DelayTime,
		MaxRetries: fp.MaxRetries, AckTimeout: fp.AckTimeout, Backoff: fp.Backoff,
	}
	for _, w := range fp.Down {
		sp.Down = append(sp.Down, simnet.Window{Src: w.Src, Dst: w.Dst, From: w.From, To: w.To})
	}
	return sp
}

package hypermm

import "testing"

// TestGoldenSimulatedTimes pins the exact simulated makespan of every
// algorithm at one reference configuration (p=64, n=48, t_s=150,
// t_w=3, t_c=0.5) under both port models. The emulator's clocks are
// deterministic, so any drift here means the cost accounting changed —
// deliberately or not.
func TestGoldenSimulatedTimes(t *testing.T) {
	golden := []struct {
		alg       Algorithm
		onePort   float64
		multiPort float64
	}{
		{Simple, 4140, 2430},
		{Cannon, 6888, 4092},
		{HJE, 11088, 3804},
		{Berntsen, 4986, 3426},
		{DNS, 7692, 4764},
		{TwoDiag, 9450, 5298},
		{ThreeDiag, 5946, 4032},
		{AllTrans, 4818, 3438},
		{ThreeAll, 4062, 3066},
		{Fox, 9726, 6264},
	}
	A := RandomMatrix(48, 48, 1)
	B := RandomMatrix(48, 48, 2)
	for _, g := range golden {
		r1, err := Run(g.alg, Config{P: 64, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0.5}, A, B)
		if err != nil {
			t.Fatalf("%v one-port: %v", g.alg, err)
		}
		if r1.Elapsed != g.onePort {
			t.Errorf("%v one-port elapsed = %v, golden %v", g.alg, r1.Elapsed, g.onePort)
		}
		r2, err := Run(g.alg, Config{P: 64, Ports: MultiPort, Ts: 150, Tw: 3, Tc: 0.5}, A, B)
		if err != nil {
			t.Fatalf("%v multi-port: %v", g.alg, err)
		}
		if r2.Elapsed != g.multiPort {
			t.Errorf("%v multi-port elapsed = %v, golden %v", g.alg, r2.Elapsed, g.multiPort)
		}
		// The golden list itself re-verifies the paper's one-port
		// ordering: 3D All is the fastest of the paper's candidates.
	}
	// Cross-check the headline ordering directly from the table.
	if !(4062 < 4986 && 4062 < 5946 && 4062 < 6888) {
		t.Error("golden table violates the paper's ordering")
	}
}

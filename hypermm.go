// Package hypermm is a Go reproduction of "Communication Efficient
// Matrix Multiplication on Hypercubes" (Gupta and Sadayappan, SPAA 1994).
//
// It provides:
//
//   - the paper's two new algorithms — the 3-D Diagonal (ThreeDiag) and
//     3-D All (ThreeAll) algorithms — together with their stepping
//     stones (TwoDiag, AllTrans) and every baseline the paper compares
//     against (Simple, Cannon, Ho-Johnsson-Edelman, Berntsen, DNS),
//     all runnable on a simulated hypercube multicomputer built from
//     goroutines and channels (one goroutine per processor, one
//     buffered channel per link) with a deterministic logical clock
//     that charges the paper's t_s + t_w*m communication model under
//     either the one-port or the multi-port machine model;
//   - the paper's analytic cost model: Table 1 collective costs,
//     Table 2 per-algorithm communication overheads, Table 3 space and
//     applicability, and the region maps of Figures 13-14.
//
// Quick start:
//
//	A := hypermm.RandomMatrix(256, 256, 1)
//	B := hypermm.RandomMatrix(256, 256, 2)
//	res, err := hypermm.Run(hypermm.ThreeAll, hypermm.Config{
//		P: 64, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5,
//	}, A, B)
//	// res.C is A*B; res.Elapsed is the simulated time;
//	// res.Comm holds message/word/start-up counters.
package hypermm

import (
	"fmt"

	"hypermm/internal/algorithms"
	"hypermm/internal/core"
	"hypermm/internal/cost"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// PortModel selects the paper's machine model.
type PortModel int

const (
	// OnePort machines drive at most one send and one receive at a time
	// per node.
	OnePort PortModel = iota
	// MultiPort machines drive all log p links of a node concurrently.
	MultiPort
)

// String implements fmt.Stringer.
func (pm PortModel) String() string { return pm.internal().String() }

func (pm PortModel) internal() simnet.PortModel {
	switch pm {
	case OnePort:
		return simnet.OnePort
	case MultiPort:
		return simnet.MultiPort
	default:
		panic(fmt.Sprintf("hypermm: invalid PortModel(%d)", int(pm)))
	}
}

// Algorithm identifies one of the paper's distributed
// matrix-multiplication algorithms.
type Algorithm int

// The algorithms of the paper, in its order of presentation. ThreeDiag
// and ThreeAll are the paper's contributions; TwoDiag and AllTrans are
// their published stepping stones; the rest are the baselines of
// Section 3.
const (
	Simple Algorithm = iota
	Cannon
	HJE
	Berntsen
	DNS
	TwoDiag
	ThreeDiag
	AllTrans
	ThreeAll
	// Fox is the Fox-Otto-Hey broadcast-multiply-roll algorithm — an
	// extra baseline beyond the paper's Table 2 (its reference [4]).
	Fox
)

// Algorithms lists every runnable algorithm.
var Algorithms = []Algorithm{Simple, Cannon, HJE, Berntsen, DNS, TwoDiag, ThreeDiag, AllTrans, ThreeAll, Fox}

// String implements fmt.Stringer with the paper's names.
func (a Algorithm) String() string { return a.costAlg().String() }

func (a Algorithm) costAlg() cost.Alg {
	switch a {
	case Simple:
		return cost.Simple
	case Cannon:
		return cost.Cannon
	case HJE:
		return cost.HJE
	case Berntsen:
		return cost.Berntsen
	case DNS:
		return cost.DNS
	case TwoDiag:
		return cost.TwoDiag
	case ThreeDiag:
		return cost.ThreeDiag
	case AllTrans:
		return cost.AllTrans
	case ThreeAll:
		return cost.ThreeAll
	case Fox:
		return cost.Fox
	default:
		panic(fmt.Sprintf("hypermm: invalid Algorithm(%d)", int(a)))
	}
}

// ParseAlgorithm resolves a command-line name ("3dall", "cannon", ...)
// to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "simple":
		return Simple, nil
	case "cannon":
		return Cannon, nil
	case "hje":
		return HJE, nil
	case "berntsen":
		return Berntsen, nil
	case "dns":
		return DNS, nil
	case "2dd", "2ddiag", "twodiag":
		return TwoDiag, nil
	case "3dd", "3ddiag", "threediag":
		return ThreeDiag, nil
	case "3dalltrans", "alltrans":
		return AllTrans, nil
	case "3dall", "threeall":
		return ThreeAll, nil
	case "fox":
		return Fox, nil
	default:
		return 0, fmt.Errorf("hypermm: unknown algorithm %q (try simple, cannon, hje, berntsen, dns, fox, 2dd, 3dd, alltrans, 3dall)", s)
	}
}

// ParsePortModel resolves a command-line or request name ("one",
// "multi", "one-port", ...) to a PortModel, mirroring ParseAlgorithm.
func ParsePortModel(s string) (PortModel, error) {
	switch s {
	case "one", "oneport", "one-port":
		return OnePort, nil
	case "multi", "multiport", "multi-port":
		return MultiPort, nil
	default:
		return 0, fmt.Errorf("hypermm: unknown port model %q (try one or multi)", s)
	}
}

// Name returns the short command-line name of the algorithm.
func (a Algorithm) Name() string {
	switch a {
	case Simple:
		return "simple"
	case Cannon:
		return "cannon"
	case HJE:
		return "hje"
	case Berntsen:
		return "berntsen"
	case DNS:
		return "dns"
	case TwoDiag:
		return "2dd"
	case ThreeDiag:
		return "3dd"
	case AllTrans:
		return "alltrans"
	case ThreeAll:
		return "3dall"
	case Fox:
		return "fox"
	default:
		return "?"
	}
}

// Letter returns the single-letter key used in region maps and
// calibration diff reports (matches the legend of RegionMap).
func (a Algorithm) Letter() byte { return a.costAlg().Letter() }

// runner returns the SPMD implementation of the algorithm.
func (a Algorithm) runner() func(*simnet.Machine, *matrix.Dense, *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	switch a {
	case Simple:
		return algorithms.Simple
	case Cannon:
		return algorithms.Cannon
	case HJE:
		return algorithms.HJE
	case Berntsen:
		return algorithms.Berntsen
	case DNS:
		return algorithms.DNS
	case TwoDiag:
		return core.TwoDiag
	case ThreeDiag:
		return core.ThreeDiag
	case AllTrans:
		return core.AllTrans
	case ThreeAll:
		return core.ThreeAll
	case Fox:
		return algorithms.Fox
	default:
		panic(fmt.Sprintf("hypermm: invalid Algorithm(%d)", int(a)))
	}
}

// Config describes the simulated hypercube multicomputer.
type Config struct {
	P     int       // processors; must be a power of two (square for 2-D algorithms, cube for 3-D ones)
	Ports PortModel // one-port or multi-port nodes
	Ts    float64   // message start-up time (per hop)
	Tw    float64   // transfer time per word
	Tc    float64   // compute time per floating-point operation

	// Faults, when non-empty, injects deterministic link failures and
	// switches every transfer to the acknowledged retry protocol; see
	// FaultPlan. Run surfaces ErrLinkDown when a transfer exhausts its
	// retry budget.
	Faults *FaultPlan

	// Deadline, when positive, bounds the simulated time any node may
	// consume; Run surfaces ErrDeadline when a node's clock passes it.
	Deadline float64
}

// DefaultConfig returns the paper's headline parameter set
// (t_s = 150, t_w = 3) on a one-port machine with p processors.
func DefaultConfig(p int) Config {
	return Config{P: p, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0.5}
}

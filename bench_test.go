package hypermm

import (
	"fmt"
	"testing"
)

// Benchmark harness: one benchmark family per paper artifact.
//
//   - BenchmarkTable1_*  regenerate Table 1 (collective costs): each
//     iteration runs the collective on the emulator; the reported
//     custom metrics sim_a / sim_b are the measured t_s and t_w
//     coefficients, directly comparable to Table 1's rows.
//   - BenchmarkTable2_*  regenerate Table 2 (algorithm communication
//     overheads) the same way, per algorithm per port model.
//   - BenchmarkTable3_*  regenerate Table 3: sim_space is the measured
//     aggregate peak storage in words.
//   - BenchmarkFig13/BenchmarkFig14 regenerate the region maps; the
//     metric share_3dall is the fraction of the applicable parameter
//     space won by 3D All.
//
// ns/op always measures the real cost of the emulation itself.

func benchCollective(b *testing.B, c Collective, ports PortModel) {
	const N, M = 8, 96
	var a, bw float64
	for i := 0; i < b.N; i++ {
		var err error
		a, bw, err = MeasuredCollective(c, N, M, ports)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a, "sim_a")
	b.ReportMetric(bw, "sim_b")
}

func BenchmarkTable1_Bcast_OnePort(b *testing.B)   { benchCollective(b, OneToAllBcast, OnePort) }
func BenchmarkTable1_Bcast_MultiPort(b *testing.B) { benchCollective(b, OneToAllBcast, MultiPort) }
func BenchmarkTable1_Scatter_OnePort(b *testing.B) { benchCollective(b, OneToAllPersonalized, OnePort) }
func BenchmarkTable1_Scatter_MultiPort(b *testing.B) {
	benchCollective(b, OneToAllPersonalized, MultiPort)
}
func BenchmarkTable1_AllGather_OnePort(b *testing.B) { benchCollective(b, AllToAllBcast, OnePort) }
func BenchmarkTable1_AllGather_MultiPort(b *testing.B) {
	benchCollective(b, AllToAllBcast, MultiPort)
}
func BenchmarkTable1_AllToAll_OnePort(b *testing.B) {
	benchCollective(b, AllToAllPersonalized, OnePort)
}
func BenchmarkTable1_AllToAll_MultiPort(b *testing.B) {
	benchCollective(b, AllToAllPersonalized, MultiPort)
}
func BenchmarkTable1_Reduce_OnePort(b *testing.B) { benchCollective(b, AllToOneReduce, OnePort) }
func BenchmarkTable1_ReduceScatter_OnePort(b *testing.B) {
	benchCollective(b, AllToAllReduce, OnePort)
}

// benchAlgorithm measures one Table 2 row: it runs the algorithm on the
// emulator each iteration and reports the measured overhead
// coefficients plus the analytic prediction.
func benchAlgorithm(b *testing.B, alg Algorithm, p, n int, ports PortModel) {
	A := RandomMatrix(n, n, 1)
	B := RandomMatrix(n, n, 2)
	cfg := Config{P: p, Ports: ports, Ts: 150, Tw: 3, Tc: 0}
	var elapsed float64
	for i := 0; i < b.N; i++ {
		res, err := Run(alg, cfg, A, B)
		if err != nil {
			b.Fatal(err)
		}
		elapsed = res.Elapsed
	}
	b.ReportMetric(elapsed, "sim_time")
	if t, ok := CommTime(alg, float64(n), float64(p), cfg.Ts, cfg.Tw, ports); ok {
		b.ReportMetric(t, "analytic_time")
	}
}

func BenchmarkTable2_Simple_OnePort(b *testing.B)     { benchAlgorithm(b, Simple, 64, 48, OnePort) }
func BenchmarkTable2_Simple_MultiPort(b *testing.B)   { benchAlgorithm(b, Simple, 64, 48, MultiPort) }
func BenchmarkTable2_Cannon_OnePort(b *testing.B)     { benchAlgorithm(b, Cannon, 64, 48, OnePort) }
func BenchmarkTable2_Cannon_MultiPort(b *testing.B)   { benchAlgorithm(b, Cannon, 64, 48, MultiPort) }
func BenchmarkTable2_HJE_MultiPort(b *testing.B)      { benchAlgorithm(b, HJE, 64, 48, MultiPort) }
func BenchmarkTable2_Berntsen_OnePort(b *testing.B)   { benchAlgorithm(b, Berntsen, 64, 48, OnePort) }
func BenchmarkTable2_Berntsen_MultiPort(b *testing.B) { benchAlgorithm(b, Berntsen, 64, 48, MultiPort) }
func BenchmarkTable2_DNS_OnePort(b *testing.B)        { benchAlgorithm(b, DNS, 64, 48, OnePort) }
func BenchmarkTable2_DNS_MultiPort(b *testing.B)      { benchAlgorithm(b, DNS, 64, 48, MultiPort) }
func BenchmarkTable2_ThreeDiag_OnePort(b *testing.B)  { benchAlgorithm(b, ThreeDiag, 64, 48, OnePort) }
func BenchmarkTable2_ThreeDiag_MultiPort(b *testing.B) {
	benchAlgorithm(b, ThreeDiag, 64, 48, MultiPort)
}
func BenchmarkTable2_AllTrans_OnePort(b *testing.B)   { benchAlgorithm(b, AllTrans, 64, 48, OnePort) }
func BenchmarkTable2_AllTrans_MultiPort(b *testing.B) { benchAlgorithm(b, AllTrans, 64, 48, MultiPort) }
func BenchmarkTable2_ThreeAll_OnePort(b *testing.B)   { benchAlgorithm(b, ThreeAll, 64, 48, OnePort) }
func BenchmarkTable2_ThreeAll_MultiPort(b *testing.B) { benchAlgorithm(b, ThreeAll, 64, 48, MultiPort) }

// benchSpace measures one Table 3 row.
func benchSpace(b *testing.B, alg Algorithm, p, n int) {
	A := RandomMatrix(n, n, 1)
	B := RandomMatrix(n, n, 2)
	cfg := Config{P: p, Ports: OnePort, Ts: 1, Tw: 1, Tc: 0}
	var peak int
	for i := 0; i < b.N; i++ {
		res, err := Run(alg, cfg, A, B)
		if err != nil {
			b.Fatal(err)
		}
		peak = res.Comm.PeakWordsTotal
	}
	b.ReportMetric(float64(peak), "sim_space_words")
	if s, ok := Space(alg, float64(n), float64(p)); ok {
		b.ReportMetric(s, "analytic_space_words")
	}
}

func BenchmarkTable3_Simple(b *testing.B)    { benchSpace(b, Simple, 64, 48) }
func BenchmarkTable3_Cannon(b *testing.B)    { benchSpace(b, Cannon, 64, 48) }
func BenchmarkTable3_HJE(b *testing.B)       { benchSpace(b, HJE, 64, 48) }
func BenchmarkTable3_Berntsen(b *testing.B)  { benchSpace(b, Berntsen, 64, 48) }
func BenchmarkTable3_DNS(b *testing.B)       { benchSpace(b, DNS, 64, 48) }
func BenchmarkTable3_ThreeDiag(b *testing.B) { benchSpace(b, ThreeDiag, 64, 48) }
func BenchmarkTable3_AllTrans(b *testing.B)  { benchSpace(b, AllTrans, 64, 48) }
func BenchmarkTable3_ThreeAll(b *testing.B)  { benchSpace(b, ThreeAll, 64, 48) }

// benchRegion regenerates one region-map panel per iteration.
func benchRegion(b *testing.B, ports PortModel, ts float64) {
	var out string
	for i := 0; i < b.N; i++ {
		out = RegionMap(ports, ts, 3, 5, 14, 64, 3, 20, 32)
	}
	if len(out) == 0 {
		b.Fatal("empty region map")
	}
	// Report 3D All's share of the winning regions.
	wins, cells := 0, 0
	for _, ch := range out {
		switch ch {
		case 'A':
			wins++
			cells++
		case 'C', 'B', 'D', 'H', '.':
			cells++
		}
	}
	b.ReportMetric(float64(wins)/float64(cells), "share_3dall")
}

func BenchmarkFig13_PanelA_Ts150(b *testing.B) { benchRegion(b, OnePort, 150) }
func BenchmarkFig13_PanelB_Ts50(b *testing.B)  { benchRegion(b, OnePort, 50) }
func BenchmarkFig13_PanelC_Ts10(b *testing.B)  { benchRegion(b, OnePort, 10) }
func BenchmarkFig13_PanelD_Ts2(b *testing.B)   { benchRegion(b, OnePort, 2) }
func BenchmarkFig14_PanelA_Ts150(b *testing.B) { benchRegion(b, MultiPort, 150) }
func BenchmarkFig14_PanelB_Ts50(b *testing.B)  { benchRegion(b, MultiPort, 50) }
func BenchmarkFig14_PanelC_Ts10(b *testing.B)  { benchRegion(b, MultiPort, 10) }
func BenchmarkFig14_PanelD_Ts2(b *testing.B)   { benchRegion(b, MultiPort, 2) }

// Real-machine kernel benchmarks: the local block multiply every
// simulated processor executes.
func BenchmarkLocalMatMul(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			A := RandomMatrix(n, n, 1)
			B := RandomMatrix(n, n, 2)
			// Three n x n operands move through the kernel per product.
			b.SetBytes(int64(3 * 8 * n * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(A, B)
			}
		})
	}
}

// BenchmarkEmulatorThroughput: how fast the goroutine machine itself
// runs a full 3D All multiplication, end to end.
func BenchmarkEmulatorThroughput(b *testing.B) {
	for _, c := range []struct{ p, n int }{{8, 32}, {64, 64}, {512, 128}} {
		b.Run(fmt.Sprintf("p=%d_n=%d", c.p, c.n), func(b *testing.B) {
			A := RandomMatrix(c.n, c.n, 1)
			B := RandomMatrix(c.n, c.n, 2)
			cfg := Config{P: c.p, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0.5}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(ThreeAll, cfg, A, B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblation_GridShape sweeps the rectangular 3-D All variant's
// y extent at fixed p: qy = cbrt(p) is the paper's cube; flatter grids
// trade communication structure for applicability.
func BenchmarkAblation_GridShape(b *testing.B) {
	const p, n = 64, 64
	A := RandomMatrix(n, n, 1)
	B := RandomMatrix(n, n, 2)
	for _, qy := range []int{16, 4, 1} { // Q = 2, 4, 8
		b.Run(fmt.Sprintf("qy=%d", qy), func(b *testing.B) {
			cfg := Config{P: p, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0}
			var elapsed float64
			var space int
			for i := 0; i < b.N; i++ {
				res, err := RunThreeAllGrid(cfg, A, B, qy)
				if err != nil {
					b.Fatal(err)
				}
				elapsed, space = res.Elapsed, res.Comm.PeakWordsTotal
			}
			b.ReportMetric(elapsed, "sim_time")
			b.ReportMetric(float64(space), "sim_space_words")
		})
	}
}

// BenchmarkAblation_SupernodeSplit sweeps the DNS+Cannon combination's
// supernode count at fixed p: s = p is pure DNS (fast, space-hungry),
// small s approaches Cannon (slow, lean).
func BenchmarkAblation_SupernodeSplit(b *testing.B) {
	const p, n = 512, 64
	A := RandomMatrix(n, n, 1)
	B := RandomMatrix(n, n, 2)
	for _, s := range []int{512, 8} { // r = 1 (pure DNS) and r = 64 (8x8 Cannon meshes)
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			cfg := Config{P: p, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0}
			var elapsed float64
			var space int
			for i := 0; i < b.N; i++ {
				res, err := RunDNSCannon(cfg, A, B, s)
				if err != nil {
					b.Fatal(err)
				}
				elapsed, space = res.Elapsed, res.Comm.PeakWordsTotal
			}
			b.ReportMetric(elapsed, "sim_time")
			b.ReportMetric(float64(space), "sim_space_words")
		})
	}
}

// BenchmarkTable2Ext_Fox covers the extension baseline.
func BenchmarkTable2Ext_Fox_OnePort(b *testing.B)   { benchAlgorithm(b, Fox, 64, 48, OnePort) }
func BenchmarkTable2Ext_Fox_MultiPort(b *testing.B) { benchAlgorithm(b, Fox, 64, 48, MultiPort) }

// BenchmarkCollectiveScaling: emulator cost and simulated cost of the
// all-gather as the chain grows — how the harness itself scales.
func BenchmarkCollectiveScaling(b *testing.B) {
	for _, N := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			var simB float64
			for i := 0; i < b.N; i++ {
				_, bb, err := MeasuredCollective(AllToAllBcast, N, 256, OnePort)
				if err != nil {
					b.Fatal(err)
				}
				simB = bb
			}
			b.ReportMetric(simB, "sim_b")
		})
	}
}

// BenchmarkRepeatedSquaring: chained rounds in one machine session.
func BenchmarkRepeatedSquaring(b *testing.B) {
	A := RandomMatrix(64, 64, 1)
	for i := range A.Data {
		A.Data[i] *= 0.1
	}
	cfg := Config{P: 64, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0.5}
	for _, rounds := range []int{1, 4} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			var elapsed float64
			for i := 0; i < b.N; i++ {
				res, err := RunRepeatedSquaring(cfg, A, rounds)
				if err != nil {
					b.Fatal(err)
				}
				elapsed = res.Elapsed
			}
			b.ReportMetric(elapsed, "sim_time")
		})
	}
}

# Tier-1 gate: everything `make check` runs must stay green. CI and
# pre-merge verification use this target verbatim.

GO ?= go

.PHONY: check build test race vet fuzz chaos bench serve-smoke calibrate-smoke cluster-smoke obs-smoke qos-smoke soak soak-smoke clean

check: vet build test race server-race

build:
	$(GO) build ./...
	$(GO) build -o /dev/null ./cmd/hmmd

# The serving subsystem is concurrency-heavy; run its tests under the
# race detector even in quick local loops (check also runs the full
# -race sweep).
.PHONY: server-race
server-race:
	$(GO) test -race ./internal/server ./cmd/hmmd

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Short fuzz pass over the collective and matrix targets (seed corpus +
# 10s of exploration each); not part of check, run before touching the
# collectives.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/collective -run XXX -fuzz FuzzAllGatherShapes -fuzztime $(FUZZTIME)
	$(GO) test ./internal/collective -run XXX -fuzz FuzzAllToAllShapes -fuzztime $(FUZZTIME)
	$(GO) test ./internal/collective -run XXX -fuzz FuzzReduceShapes -fuzztime $(FUZZTIME)
	$(GO) test ./internal/collective -run XXX -fuzz FuzzReduceScatterShapes -fuzztime $(FUZZTIME)
	$(GO) test ./internal/matrix -run XXX -fuzz FuzzGridBlockRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/calibrate -run XXX -fuzz FuzzProfileParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run XXX -fuzz FuzzTraceContext -fuzztime $(FUZZTIME)
	$(GO) test ./internal/qos -run XXX -fuzz FuzzQoSConfigParse -fuzztime $(FUZZTIME)

# Differential verification harness under fault injection; deterministic
# for a fixed -seed.
chaos:
	$(GO) run ./cmd/chaos -seed 1 -cases 12

# Boot hmmd, fire one request through the stress client's load-generator
# mode, and assert a 200 plus a non-empty /metrics scrape.
SMOKE_ADDR ?= 127.0.0.1:17117
serve-smoke:
	$(GO) build -o /tmp/hmmd-smoke ./cmd/hmmd
	@/tmp/hmmd-smoke -addr $(SMOKE_ADDR) & pid=$$!; \
	$(GO) run ./cmd/stress -url http://$(SMOKE_ADDR) -requests 1 -c 1 -n 64 -p 64 -smoke; rc=$$?; \
	kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/hmmd-smoke; exit $$rc

# Cluster smoke: boot a coordinator and two worker processes, push a
# concurrent batch through the coordinator's HTTP front-end with the
# stress client's cluster mode (which first pins one response
# byte-identical to a local run), SIGKILL one worker mid-batch, and
# require every request to still answer 200 with at least one recorded
# failover and the worker gauge down to 1.
CLUSTER_HTTP ?= 127.0.0.1:17217
CLUSTER_ADDR ?= 127.0.0.1:17218
cluster-smoke:
	$(GO) build -o /tmp/hmmd-cluster ./cmd/hmmd
	@/tmp/hmmd-cluster -role coordinator -addr $(CLUSTER_HTTP) -cluster-addr $(CLUSTER_ADDR) & cpid=$$!; \
	/tmp/hmmd-cluster -role worker -join $(CLUSTER_ADDR) -addr 127.0.0.1:0 -name w1 -workers 2 & w1pid=$$!; \
	/tmp/hmmd-cluster -role worker -join $(CLUSTER_ADDR) -addr 127.0.0.1:0 -name w2 -workers 2 & w2pid=$$!; \
	$(GO) run ./cmd/stress -url http://$(CLUSTER_HTTP) -requests 12 -c 6 -n 192 -p 64 \
		-cluster 2 -kill-after 1 -kill-pid $$w1pid -smoke; rc=$$?; \
	kill -TERM $$cpid $$w2pid 2>/dev/null; kill -KILL $$w1pid 2>/dev/null; \
	wait $$cpid 2>/dev/null; wait $$w2pid 2>/dev/null; \
	rm -f /tmp/hmmd-cluster; exit $$rc

# Observability smoke: boot hmmd with profiling on, serve one traced
# request, follow its X-Trace-Id to GET /v1/trace/{id}, validate the
# merged Chrome trace-event JSON (handler span + simulated timeline)
# and keep it as an artifact, and require /debug/pprof to answer. CI
# uploads OBS_TRACE so a failing run ships the evidence.
OBS_ADDR ?= 127.0.0.1:17317
OBS_TRACE ?= /tmp/hmmd-obs-trace.json
obs-smoke:
	$(GO) build -o /tmp/hmmd-obs ./cmd/hmmd
	@/tmp/hmmd-obs -addr $(OBS_ADDR) -pprof & pid=$$!; \
	$(GO) run ./cmd/stress -url http://$(OBS_ADDR) -requests 1 -c 1 -n 64 -p 64 \
		-smoke -trace-out $(OBS_TRACE) -pprof-check; rc=$$?; \
	kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/hmmd-obs; exit $$rc

# QoS smoke: boot a coordinator (with the sample multi-tenant policy)
# and two workers, then race a paced interactive tenant against an
# unpaced best-effort flood with the stress client's tenants mode. The
# paced tenant must keep at least a 95% success rate while the flood is
# queued, shed or both, and /metrics must expose the hmmd_qos_* family.
QOS_HTTP ?= 127.0.0.1:17417
QOS_ADDR ?= 127.0.0.1:17418
QOS_CONF ?= cmd/hmmd/testdata/qos.json
qos-smoke:
	$(GO) build -o /tmp/hmmd-qos ./cmd/hmmd
	@/tmp/hmmd-qos -role coordinator -addr $(QOS_HTTP) -cluster-addr $(QOS_ADDR) \
		-qos $(QOS_CONF) -workers 2 -queue 8 & cpid=$$!; \
	/tmp/hmmd-qos -role worker -join $(QOS_ADDR) -addr 127.0.0.1:0 -name w1 -workers 2 -qos $(QOS_CONF) & w1pid=$$!; \
	/tmp/hmmd-qos -role worker -join $(QOS_ADDR) -addr 127.0.0.1:0 -name w2 -workers 2 -qos $(QOS_CONF) & w2pid=$$!; \
	$(GO) run ./cmd/stress -url http://$(QOS_HTTP) -requests 24 -c 8 -n 192 -p 64 \
		-tenants "paced:interactive:20,flood:best-effort:0" -assert-success paced:0.95 -smoke; rc=$$?; \
	kill -TERM $$cpid $$w1pid $$w2pid 2>/dev/null; \
	wait $$cpid 2>/dev/null; wait $$w1pid 2>/dev/null; wait $$w2pid 2>/dev/null; \
	rm -f /tmp/hmmd-qos; exit $$rc

# Run the calibration pipeline end to end on a small grid and require
# a valid, assertion-clean profile: the fit must stay within a generous
# error bound and the empirical region maps must agree with the
# analytic ones on at least half the cells at both paper settings.
CALIBRATE_OUT ?= /tmp/hmmd-calibration-smoke.json
calibrate-smoke:
	$(GO) run ./cmd/calibrate -ns 16,32 -ps 4,16,64 \
		-assert-maxerr 0.5 -assert-maxdiff 0.5 -o $(CALIBRATE_OUT)
	@test -s $(CALIBRATE_OUT) || { echo "calibrate-smoke: empty profile"; exit 1; }
	@rm -f $(CALIBRATE_OUT)

# Conformance smoke: a short deterministic soak run, executed twice with
# the same seed, whose transcripts must be byte-identical and clean.
# This is the PR-gate slice of the nightly soak job.
SOAK_SEED ?= 1
soak-smoke:
	$(GO) build -o /tmp/hmm-soak ./cmd/soak
	/tmp/hmm-soak -seed $(SOAK_SEED) -iters 8 > /tmp/hmm-soak-1.txt
	/tmp/hmm-soak -seed $(SOAK_SEED) -iters 8 > /tmp/hmm-soak-2.txt
	cmp /tmp/hmm-soak-1.txt /tmp/hmm-soak-2.txt
	@rm -f /tmp/hmm-soak /tmp/hmm-soak-1.txt /tmp/hmm-soak-2.txt

# Full soak: run the conformance engine under a wall-clock budget,
# writing any minimized repros (and Chrome traces of the failing
# schedules) into SOAK_DIR for upload as CI artifacts. Nightly CI calls
# this with a date-derived seed so each night explores new cases while
# staying replayable.
SOAK_BUDGET ?= 10m
SOAK_DIR ?= soak-artifacts
soak:
	$(GO) run ./cmd/soak -seed $(SOAK_SEED) -budget $(SOAK_BUDGET) -repros $(SOAK_DIR)

# Performance snapshot: the hot-path benchmark families (local GEMM
# kernel, emulator throughput, region-map sweeps, packed-kernel micro
# benches) into BENCH_kernel.json, plus the collective scaling
# trajectory (broadcast / all-gather / reduce-scatter at p=8 and p=64)
# into BENCH_collectives.json, plus the steady-state serving trajectory
# (warm machine pool vs cold per-request machines at p=64, HTTP and
# scheduler-direct, with req/s metrics) into BENCH_serving.json.
# BENCHTIME=1x gives a cheap CI smoke; the default gives stable numbers.
BENCHTIME ?= 0.5s
bench:
	( $(GO) test -run XXX -bench '^BenchmarkLocalMatMul$$|^BenchmarkEmulatorThroughput$$|^BenchmarkFig13|^BenchmarkFig14' \
		-benchmem -benchtime $(BENCHTIME) . ; \
	  $(GO) test -run XXX -bench '^BenchmarkMulAdd|^BenchmarkTranspose' \
		-benchmem -benchtime $(BENCHTIME) ./internal/matrix ) \
	| $(GO) run ./cmd/bench2json -o BENCH_kernel.json
	$(GO) test -run XXX -bench '^BenchmarkCollective_' -benchtime $(BENCHTIME) . \
	| $(GO) run ./cmd/bench2json -o BENCH_collectives.json
	$(GO) test -run XXX -bench '^BenchmarkServe_' -benchtime $(BENCHTIME) ./internal/server \
	| $(GO) run ./cmd/bench2json -o BENCH_serving.json
	$(GO) test -run XXX -bench '^BenchmarkCluster_' -benchtime $(BENCHTIME) ./internal/cluster \
	| $(GO) run ./cmd/bench2json -o BENCH_cluster.json

clean:
	$(GO) clean ./...

package hypermm

import (
	"container/list"
	"sync"
	"time"

	"hypermm/internal/simnet"
)

// MachinePool keeps warm simulated machines for reuse across runs. The
// paper's algorithms assume a standing hypercube; cold Run pays for
// building one — P node goroutines, inbox channels, a barrier — on every
// call, which dominates steady-state serving once the kernel is fast.
// A pool checks machines out by their identity (P, ports, t_s, t_w,
// t_c), resets them between runs (the reset is byte-identical to a
// fresh machine: same simulated clocks, counters and results — pinned
// by the poolequiv conformance oracle) and evicts least-recently-used
// idle machines beyond the capacity bound.
//
// Per-run configuration that does not shape the machine — fault plans,
// deadlines, tracing — is applied at checkout and stripped at return,
// so one warm machine serves faulted and clean runs alike.
//
// A MachinePool is safe for concurrent use. Runs on distinct checked-out
// machines proceed in parallel; a machine is never shared by two runs.
type MachinePool struct {
	mu        sync.Mutex
	cap       int
	idle      map[poolKey][]*list.Element // per-key idle machines, LIFO (warmest last)
	order     *list.List                  // global LRU of idle machines; front = most recent
	hits      int64
	misses    int64
	evictions int64
	closed    bool
	observe   func(hit bool, wait time.Duration) // nil: no checkout observer
}

// poolKey is the machine-shaping part of a Config: two configs with the
// same key can reuse the same warm machine.
type poolKey struct {
	p          int
	ports      PortModel
	ts, tw, tc float64
}

// poolEntry is one idle machine parked in the LRU.
type poolEntry struct {
	key poolKey
	m   *simnet.Machine
}

// NewMachinePool returns a pool holding at most capacity idle machines
// (capacity < 1 is treated as 1). Checked-out machines do not count
// against the bound.
func NewMachinePool(capacity int) *MachinePool {
	if capacity < 1 {
		capacity = 1
	}
	return &MachinePool{
		cap:   capacity,
		idle:  make(map[poolKey][]*list.Element),
		order: list.New(),
	}
}

// PoolStats is a snapshot of a pool's counters.
type PoolStats struct {
	Hits      int64 // checkouts served by a warm machine
	Misses    int64 // checkouts that had to build a machine
	Evictions int64 // idle machines closed to respect the capacity bound
	Size      int   // idle machines currently parked
}

// Stats returns the pool's counters.
func (p *MachinePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Hits: p.hits, Misses: p.misses, Evictions: p.evictions, Size: p.order.Len()}
}

// SetObserver registers fn to run after every checkout with whether a
// warm machine was reused and how long the checkout took (lock wait
// plus machine construction on a miss) — the hook behind the serving
// tier's hmmd_stage_seconds{stage="pool_checkout"} histogram. One
// observer; nil clears it. Set before the pool sees concurrent use.
func (p *MachinePool) SetObserver(fn func(hit bool, wait time.Duration)) {
	p.mu.Lock()
	p.observe = fn
	p.mu.Unlock()
}

// RunOn is Run on a pooled machine: it checks a warm machine out (or
// builds one on a miss), runs the multiplication, and returns the
// machine to the pool. Results — product bytes, simulated Elapsed,
// CommStats — are identical to Run's.
func (p *MachinePool) RunOn(alg Algorithm, cfg Config, A, B *Matrix) (*Result, error) {
	m, err := p.checkout(cfg)
	if err != nil {
		return nil, err
	}
	defer p.checkin(m)
	return runOn(m, alg, A, B)
}

// RunOnTraced is RunTraced on a pooled machine.
func (p *MachinePool) RunOnTraced(alg Algorithm, cfg Config, A, B *Matrix) (*Result, *Trace, error) {
	m, err := p.checkout(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer p.checkin(m)
	return runTracedOn(m, alg, A, B)
}

// checkout returns a machine matching cfg — warm when one is parked,
// freshly built otherwise — with cfg's per-run fields (faults, deadline)
// applied. The caller must hand the machine back with checkin.
func (p *MachinePool) checkout(cfg Config) (*simnet.Machine, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	start := time.Now()
	key := poolKey{p: cfg.P, ports: cfg.Ports, ts: cfg.Ts, tw: cfg.Tw, tc: cfg.Tc}
	p.mu.Lock()
	var m *simnet.Machine
	if q := p.idle[key]; len(q) > 0 {
		el := q[len(q)-1] // warmest
		p.idle[key] = q[:len(q)-1]
		p.order.Remove(el)
		m = el.Value.(poolEntry).m
		p.hits++
	} else {
		p.misses++
	}
	observe := p.observe
	p.mu.Unlock()
	hit := m != nil
	if m == nil {
		m = simnet.NewMachine(simnet.Config{
			P: cfg.P, Ports: cfg.Ports.internal(), Ts: cfg.Ts, Tw: cfg.Tw, Tc: cfg.Tc,
			Persistent: true,
		})
	}
	m.Cfg.Faults = cfg.Faults.internal()
	m.Cfg.Deadline = cfg.Deadline
	if observe != nil {
		observe(hit, time.Since(start))
	}
	return m, nil
}

// checkin parks the machine for reuse, stripping its per-run
// configuration, and evicts the least-recently-used idle machine when
// the capacity bound is exceeded. A machine returned to a closed pool
// is closed instead of parked.
func (p *MachinePool) checkin(m *simnet.Machine) {
	m.Cfg.Faults = nil
	m.Cfg.Deadline = 0
	m.Cfg.Trace = nil
	key := poolKey{p: m.Cfg.P, ports: PortModel(m.Cfg.Ports), ts: m.Cfg.Ts, tw: m.Cfg.Tw, tc: m.Cfg.Tc}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		m.Close()
		return
	}
	el := p.order.PushFront(poolEntry{key: key, m: m})
	p.idle[key] = append(p.idle[key], el)
	var evicted *simnet.Machine
	if p.order.Len() > p.cap {
		back := p.order.Back()
		p.order.Remove(back)
		ent := back.Value.(poolEntry)
		q := p.idle[ent.key]
		for i, e := range q {
			if e == back {
				copy(q[i:], q[i+1:])
				p.idle[ent.key] = q[:len(q)-1]
				break
			}
		}
		evicted = ent.m
		p.evictions++
	}
	p.mu.Unlock()
	if evicted != nil {
		evicted.Close()
	}
}

// Close shuts the pool: every idle machine's worker goroutines exit and
// further checkouts build disposable machines (returned machines are
// closed, not parked). Runs in flight on checked-out machines are
// unaffected. Idempotent.
func (p *MachinePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	machines := make([]*simnet.Machine, 0, p.order.Len())
	for el := p.order.Front(); el != nil; el = el.Next() {
		machines = append(machines, el.Value.(poolEntry).m)
	}
	p.order.Init()
	p.idle = make(map[poolKey][]*list.Element)
	p.mu.Unlock()
	for _, m := range machines {
		m.Close()
	}
}

package hypermm

import "testing"

// Edge cases of the analytic cost API that the hmmd planner relies on:
// every "no answer" path must report ok=false instead of a bogus number.

func TestCrossoverPNoCrossover(t *testing.T) {
	// Cannon's shifting rounds never undercut Simple's single all-to-all
	// broadcast in pure communication time (Simple loses on space,
	// Table 3, not on Table 2 time), so no crossover exists.
	if p, ok := CrossoverP(Simple, Cannon, 256, 150, 3, OnePort, 4, 1024); ok {
		t.Errorf("CrossoverP(Simple, Cannon) = %g, ok=true; want no crossover", p)
	}
	// Endpoints where the challenger is inapplicable also yield ok=false:
	// Cannon needs p <= n^2, violated at pHi for n=16.
	if _, ok := CrossoverP(Simple, Cannon, 16, 150, 3, OnePort, 4, 4096); ok {
		t.Error("CrossoverP with inapplicable endpoint reported a crossover")
	}
}

func TestCrossoverPExisting(t *testing.T) {
	// Sanity bracket: ThreeAll overtakes Cannon as p grows at fixed n
	// (the Figure 13 story), so the searched crossover must be inside.
	p, ok := CrossoverP(Cannon, ThreeAll, 512, 150, 3, OnePort, 4, 1<<16)
	if !ok {
		t.Fatal("expected a Cannon -> 3D All crossover for n=512")
	}
	if p < 4 || p > 1<<16 {
		t.Errorf("crossover p=%g escaped the bracket", p)
	}
}

func TestEfficiencyInapplicable(t *testing.T) {
	// Berntsen requires p <= n^1.5; (n=16, p=1024) violates it.
	if e, ok := Efficiency(Berntsen, 16, 1024, 150, 3, 0.5, OnePort); ok {
		t.Errorf("Efficiency on inapplicable (n, p) = %g, ok=true", e)
	}
	// t_c = 0 leaves efficiency undefined everywhere.
	if _, ok := Efficiency(Cannon, 256, 16, 150, 3, 0, OnePort); ok {
		t.Error("Efficiency with t_c=0 reported ok")
	}
}

func TestIsoefficiencyNInvalid(t *testing.T) {
	for _, tc := range []struct {
		name              string
		p, target, tcCost float64
	}{
		{"target=0", 64, 0, 0.5},
		{"target=1", 64, 1, 0.5},
		{"tc=0", 64, 0.5, 0},
		{"p=0", 0, 0.5, 0.5},
	} {
		if n, ok := IsoefficiencyN(ThreeAll, tc.p, tc.target, 150, 3, tc.tcCost, OnePort); ok {
			t.Errorf("%s: IsoefficiencyN = %g, ok=true; want ok=false", tc.name, n)
		}
	}
}

func TestBestAlgorithmNoneApplicable(t *testing.T) {
	// p > n^3 rules out every candidate (the loosest Table 3 bound).
	if alg, ok := BestAlgorithm(4, 128, 150, 3, OnePort); ok {
		t.Errorf("BestAlgorithm(4, 128) = %v, ok=true; want none applicable", alg)
	}
	if alg, ok := BestAlgorithm(4, 128, 150, 3, MultiPort); ok {
		t.Errorf("BestAlgorithm(4, 128) multi-port = %v, ok=true", alg)
	}
}

func TestCandidatesMatchBestAlgorithm(t *testing.T) {
	// Candidates exposes exactly the set BestAlgorithm searches: the
	// winner must always be a member.
	for _, pm := range []PortModel{OnePort, MultiPort} {
		cands := Candidates(pm)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %v", pm)
		}
		if pm == MultiPort {
			found := false
			for _, c := range cands {
				found = found || c == HJE
			}
			if !found {
				t.Error("multi-port candidate set is missing HJE")
			}
		}
		alg, ok := BestAlgorithm(1024, 64, 150, 3, pm)
		if !ok {
			t.Fatal("BestAlgorithm failed on an easy point")
		}
		member := false
		for _, c := range cands {
			member = member || c == alg
		}
		if !member {
			t.Errorf("winner %v not in Candidates(%v)", alg, pm)
		}
	}
}

func TestComputeTime(t *testing.T) {
	// 2 n^3 t_c / p, exactly.
	if got := ComputeTime(64, 8, 0.5); got != 2*64*64*64*0.5/8 {
		t.Errorf("ComputeTime = %g", got)
	}
}

package hypermm_test

import (
	"fmt"

	"hypermm"
)

// Multiply two matrices with the paper's 3-D All algorithm on a
// simulated 64-node one-port hypercube and verify the product.
func ExampleRun() {
	A := hypermm.RandomMatrix(64, 64, 1)
	B := hypermm.RandomMatrix(64, 64, 2)
	cfg := hypermm.Config{P: 64, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0}
	res, err := hypermm.Run(hypermm.ThreeAll, cfg, A, B)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", hypermm.Verify(A, B, res.C, 1e-6) == nil)
	fmt.Println("simulated communication time:", res.Elapsed)
	// Output:
	// verified: true
	// simulated communication time: 3120
}

// Table 2 coefficients: communication time is t_s*a + t_w*b.
func ExampleOverhead() {
	a, b, ok := hypermm.Overhead(hypermm.ThreeAll, 256, 64, hypermm.OnePort)
	fmt.Printf("ok=%v a=%.0f b=%.0f\n", ok, a, b)
	// The measured coefficients from the emulator agree.
	am, bm, _ := hypermm.MeasuredOverhead(hypermm.ThreeAll, 64, 256, hypermm.OnePort)
	fmt.Printf("measured a=%.0f b=%.0f\n", am, bm)
	// Output:
	// ok=true a=8 b=10240
	// measured a=8 b=10240
}

// Which algorithm should a given machine run?
func ExampleBestAlgorithm() {
	for _, q := range []struct{ n, p float64 }{{4096, 64}, {256, 65536}} {
		alg, _ := hypermm.BestAlgorithm(q.n, q.p, 150, 3, hypermm.OnePort)
		fmt.Printf("n=%.0f p=%.0f -> %v\n", q.n, q.p, alg)
	}
	// Output:
	// n=4096 p=64 -> 3D All
	// n=256 p=65536 -> 3DD
}

// Table 1: the optimal collective costs the algorithms build on.
func ExampleCollectiveCost() {
	a, b := hypermm.CollectiveCost(hypermm.AllToAllBcast, 8, 96, hypermm.OnePort)
	fmt.Printf("all-to-all broadcast, one-port: a=%.0f b=%.0f\n", a, b)
	a, b = hypermm.CollectiveCost(hypermm.AllToAllBcast, 8, 96, hypermm.MultiPort)
	fmt.Printf("all-to-all broadcast, multi-port: a=%.0f b=%.0f\n", a, b)
	// Output:
	// all-to-all broadcast, one-port: a=3 b=672
	// all-to-all broadcast, multi-port: a=3 b=224
}

// The rectangular-grid 3-D All variant runs where the cube cannot:
// p = 128 processors on a 16 x 16 problem exceeds n^1.5 = 64.
func ExampleRunThreeAllGrid() {
	A := hypermm.RandomMatrix(16, 16, 1)
	B := hypermm.RandomMatrix(16, 16, 2)
	cfg := hypermm.Config{P: 128, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0}
	res, err := hypermm.RunThreeAllGrid(cfg, A, B, 2) // 8 x 2 x 8 grid
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", hypermm.Verify(A, B, res.C, 1e-6) == nil)
	// Output:
	// verified: true
}

// Isoefficiency: the problem size needed to keep 3-D All at 50%
// efficiency grows slowly with the machine.
func ExampleIsoefficiencyN() {
	for _, p := range []float64{64, 4096} {
		n, _ := hypermm.IsoefficiencyN(hypermm.ThreeAll, p, 0.5, 150, 3, 0.5, hypermm.OnePort)
		fmt.Printf("p=%.0f needs n>=%.0f\n", p, n)
	}
	// Output:
	// p=64 needs n>=55
	// p=4096 needs n>=273
}

package hypermm

import (
	"runtime"
	"testing"
)

// TestKernelParallelismInvariance pins the tentpole invariant of the
// parallel GEMM kernel: changing the worker budget changes wall-clock
// speed only. Simulated makespans and every result byte must be
// identical at parallelism 1, 2 and GOMAXPROCS.
func TestKernelParallelismInvariance(t *testing.T) {
	A := RandomMatrix(64, 64, 1)
	B := RandomMatrix(64, 64, 2)
	cfg := Config{P: 64, Ports: OnePort, Ts: 150, Tw: 3, Tc: 0.5}

	type run struct {
		level   int
		elapsed float64
		c       []float64
	}
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	var runs []run
	prev := SetKernelParallelism(1)
	defer SetKernelParallelism(prev)
	for _, lv := range levels {
		SetKernelParallelism(lv)
		if got := KernelParallelism(); got != lv {
			t.Fatalf("KernelParallelism() = %d after SetKernelParallelism(%d)", got, lv)
		}
		res, err := Run(ThreeAll, cfg, A, B)
		if err != nil {
			t.Fatalf("level %d: %v", lv, err)
		}
		runs = append(runs, run{lv, res.Elapsed, res.C.Data})
	}
	for _, r := range runs[1:] {
		if r.elapsed != runs[0].elapsed {
			t.Errorf("level %d: simulated time %g differs from level %d's %g",
				r.level, r.elapsed, runs[0].level, runs[0].elapsed)
		}
		for i := range r.c {
			if r.c[i] != runs[0].c[i] {
				t.Fatalf("level %d: C[%d] = %v differs from level %d's %v — kernel not bitwise deterministic",
					r.level, i, r.c[i], runs[0].level, runs[0].c[i])
			}
		}
	}
}

// TestSetKernelParallelismRestore checks the previous-value return that
// makes scoped overrides possible.
func TestSetKernelParallelismRestore(t *testing.T) {
	orig := SetKernelParallelism(3)
	if got := SetKernelParallelism(orig); got != 3 {
		t.Errorf("SetKernelParallelism returned %d, want 3", got)
	}
	if got := KernelParallelism(); got != orig {
		t.Errorf("KernelParallelism() = %d, want restored %d", got, orig)
	}
}

// TestRegionMapRepeatable pins the parallel sweep determinism at the
// public API: repeated renders of the same panel are byte-identical.
func TestRegionMapRepeatable(t *testing.T) {
	ref := RegionMap(OnePort, 150, 3, 5, 14, 32, 3, 20, 16)
	if len(ref) == 0 {
		t.Fatal("empty region map")
	}
	for trial := 0; trial < 3; trial++ {
		if got := RegionMap(OnePort, 150, 3, 5, 14, 32, 3, 20, 16); got != ref {
			t.Fatalf("trial %d: region map differs across repeated renders", trial)
		}
	}
}

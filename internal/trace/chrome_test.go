package trace

import (
	"bytes"
	"strings"
	"testing"
)

func chromeFixture() *Log {
	l := New()
	l.Add(Event{Node: 1, Kind: Recv, Start: 3, End: 7, Peer: 0, Words: 16, Tag: 2})
	l.Add(Event{Node: 0, Kind: Send, Start: 0, End: 4, Peer: 1, Words: 16, Tag: 2})
	l.Add(Event{Node: 0, Kind: Compute, Start: 4, End: 10, Peer: -1, Words: 64})
	return l
}

func TestChromeJSONRoundTrip(t *testing.T) {
	l := chromeFixture()
	var buf bytes.Buffer
	if err := l.ChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseChromeJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	evs := l.Events()
	if len(got) != 2*len(evs) {
		t.Fatalf("got %d chrome events for %d log events, want %d", len(got), len(evs), 2*len(evs))
	}
	// Events() sorts; ChromeJSON emits a B/E pair per event in that
	// order, so pair i corresponds to evs[i].
	for i, e := range evs {
		b, end := got[2*i], got[2*i+1]
		if b.Ph != "B" || end.Ph != "E" {
			t.Fatalf("pair %d: phases %q/%q, want B/E", i, b.Ph, end.Ph)
		}
		if b.Tid != e.Node || end.Tid != e.Node {
			t.Errorf("pair %d: tids %d/%d, want node %d", i, b.Tid, end.Tid, e.Node)
		}
		if b.Ts != e.Start || end.Ts != e.End {
			t.Errorf("pair %d: ts %g..%g, want %g..%g", i, b.Ts, end.Ts, e.Start, e.End)
		}
		if b.Ts > end.Ts {
			t.Errorf("pair %d: begin after end", i)
		}
		if b.Cat != e.Kind.String() {
			t.Errorf("pair %d: cat %q, want %q", i, b.Cat, e.Kind)
		}
		if e.Kind != Compute && !strings.Contains(b.Name, "peer=") {
			t.Errorf("pair %d: comm event name %q lacks peer", i, b.Name)
		}
	}
}

func TestChromeJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := chromeFixture().ChromeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := chromeFixture().ChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("ChromeJSON output differs across identical logs")
	}
}

func TestParseChromeJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseChromeJSON([]byte("not json")); err == nil {
		t.Error("ParseChromeJSON accepted garbage")
	}
}

package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndEventsSorted(t *testing.T) {
	l := New()
	l.Add(Event{Node: 1, Kind: Compute, Start: 5, End: 9})
	l.Add(Event{Node: 0, Kind: Send, Start: 2, End: 3, Peer: 1, Words: 4})
	l.Add(Event{Node: 0, Kind: Recv, Start: 0, End: 1, Peer: 1, Words: 4})
	evs := l.Events()
	if len(evs) != 3 || l.Len() != 3 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Node != 0 || evs[0].Start != 0 || evs[2].Node != 1 {
		t.Errorf("events not sorted: %+v", evs)
	}
}

func TestSpan(t *testing.T) {
	l := New()
	if l.Span() != 0 {
		t.Error("empty span not zero")
	}
	l.Add(Event{Node: 0, Kind: Compute, Start: 1, End: 7})
	l.Add(Event{Node: 1, Kind: Send, Start: 2, End: 4})
	if l.Span() != 7 {
		t.Errorf("span = %g", l.Span())
	}
}

func TestGanttRendering(t *testing.T) {
	l := New()
	l.Add(Event{Node: 0, Kind: Compute, Start: 0, End: 50})
	l.Add(Event{Node: 1, Kind: Send, Start: 0, End: 25, Peer: 0})
	l.Add(Event{Node: 1, Kind: Recv, Start: 25, End: 50, Peer: 0})
	g := l.Gantt(20)
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 3 { // header + 2 nodes
		t.Fatalf("gantt lines = %d:\n%s", len(lines), g)
	}
	if !strings.Contains(lines[1], "####################") {
		t.Errorf("node 0 row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "ssssssssss") || !strings.Contains(lines[2], "rrrrrrrrrr") {
		t.Errorf("node 1 row wrong: %q", lines[2])
	}
}

func TestGanttNarrowWidthClamped(t *testing.T) {
	// Regression: width < 1 (and anything below the minimum) must clamp
	// to minGanttWidth instead of panicking in strings.Repeat or
	// misrendering a zero-column chart.
	l := New()
	l.Add(Event{Node: 0, Kind: Compute, Start: 0, End: 10})
	l.Add(Event{Node: 1, Kind: Send, Start: 0, End: 10, Peer: 0})
	want := l.Gantt(minGanttWidth)
	for _, w := range []int{0, -1, -100, 1, minGanttWidth - 1} {
		got := l.Gantt(w)
		if got != want {
			t.Errorf("Gantt(%d) differs from Gantt(%d):\n%s", w, minGanttWidth, got)
		}
		row := strings.Split(got, "\n")[1]
		if !strings.Contains(row, strings.Repeat("#", minGanttWidth)) {
			t.Errorf("Gantt(%d) node 0 row not clamped: %q", w, row)
		}
	}
}

func TestGanttPrecedence(t *testing.T) {
	// Overlapping compute wins over send over recv.
	l := New()
	l.Add(Event{Node: 0, Kind: Recv, Start: 0, End: 10})
	l.Add(Event{Node: 0, Kind: Send, Start: 0, End: 10})
	l.Add(Event{Node: 0, Kind: Compute, Start: 0, End: 5})
	g := l.Gantt(10)
	row := strings.Split(strings.TrimSpace(g), "\n")[1]
	if !strings.Contains(row, "#####sssss") {
		t.Errorf("precedence row = %q", row)
	}
}

func TestGanttEmpty(t *testing.T) {
	if g := New().Gantt(10); !strings.Contains(g, "no events") {
		t.Errorf("empty gantt = %q", g)
	}
}

func TestSummaryAndPerNode(t *testing.T) {
	l := New()
	l.Add(Event{Node: 0, Kind: Compute, Start: 0, End: 60})
	l.Add(Event{Node: 0, Kind: Send, Start: 60, End: 100})
	l.Add(Event{Node: 1, Kind: Recv, Start: 0, End: 100})
	s := l.Summary()
	if !strings.Contains(s, "compute") || !strings.Contains(s, "overall:") {
		t.Errorf("summary = %q", s)
	}
	per := l.PerNode()
	if len(per) != 2 {
		t.Fatalf("per-node entries = %d", len(per))
	}
	if per[0].ComputeTime != 60 || per[0].SendTime != 40 {
		t.Errorf("node 0 stats = %+v", per[0])
	}
	if per[1].RecvTime != 100 || per[1].Events != 1 {
		t.Errorf("node 1 stats = %+v", per[1])
	}
}

func TestReset(t *testing.T) {
	l := New()
	l.Add(Event{Node: 0, Kind: Compute, Start: 0, End: 1})
	l.Reset()
	if l.Len() != 0 {
		t.Error("reset left events")
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(Event{Node: g, Kind: Compute, Start: float64(i), End: float64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("events = %d, want 800", l.Len())
	}
}

func TestKindStrings(t *testing.T) {
	if Send.String() != "send" || Recv.String() != "recv" || Compute.String() != "compute" {
		t.Error("kind strings wrong")
	}
}

func TestGanttOverlapUnderMultiPort(t *testing.T) {
	// Two simultaneous sends on one node (multi-port) overlay in its
	// Gantt row rather than appearing sequential.
	l := New()
	l.Add(Event{Node: 0, Kind: Send, Start: 0, End: 10, Peer: 1})
	l.Add(Event{Node: 0, Kind: Send, Start: 0, End: 10, Peer: 2})
	row := strings.Split(strings.TrimSpace(l.Gantt(10)), "\n")[1]
	if !strings.Contains(row, "ssssssssss") {
		t.Errorf("overlapped sends row = %q", row)
	}
}

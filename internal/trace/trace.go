// Package trace records per-node event timelines of a simulated run —
// sends, receives and compute spans in simulated time — and renders
// them as text Gantt charts and utilization summaries. It is the
// observability layer of the emulator: attach a Log to a
// simnet.Config, run, and render.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	Send Kind = iota
	Recv
	Compute
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// glyph is the Gantt bar character per kind.
func (k Kind) glyph() byte {
	switch k {
	case Send:
		return 's'
	case Recv:
		return 'r'
	case Compute:
		return '#'
	default:
		return '?'
	}
}

// Event is one timed action on one node.
type Event struct {
	Node       int
	Kind       Kind
	Start, End float64
	Peer       int // other endpoint for send/recv, -1 for compute
	Words      int
	Tag        uint64
}

// Log accumulates events from concurrently running node goroutines.
// The zero value is not usable; use New.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Add appends an event; safe for concurrent use.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Reset drops all recorded events.
func (l *Log) Reset() {
	l.mu.Lock()
	l.events = l.events[:0]
	l.mu.Unlock()
}

// Events returns a copy of the recorded events sorted by (node, start).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Span returns the latest event end time.
func (l *Log) Span() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var span float64
	for _, e := range l.events {
		if e.End > span {
			span = e.End
		}
	}
	return span
}

// minGanttWidth is the narrowest rendering Gantt accepts. Anything
// narrower — including zero and negative widths, which would otherwise
// panic in strings.Repeat or index out of range — is clamped up to it.
const minGanttWidth = 8

// Gantt renders one timeline row per node, width columns wide:
// '#' compute, 's' port busy sending, 'r' port busy receiving,
// '.' idle. Overlapping events (multi-port machines) are overlaid with
// compute taking precedence, then send, then recv. Widths below
// minGanttWidth (including width < 1) are clamped, never an error.
func (l *Log) Gantt(width int) string {
	if width < minGanttWidth {
		width = minGanttWidth
	}
	evs := l.Events()
	if len(evs) == 0 {
		return "(no events)\n"
	}
	span := l.Span()
	if span <= 0 {
		return "(zero-length run)\n"
	}
	maxNode := 0
	for _, e := range evs {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	rows := make([][]byte, maxNode+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	prec := func(g byte) int {
		switch g {
		case '#':
			return 3
		case 's':
			return 2
		case 'r':
			return 1
		default:
			return 0
		}
	}
	for _, e := range evs {
		lo := int(e.Start / span * float64(width))
		hi := int(e.End / span * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		g := e.Kind.glyph()
		for x := lo; x < hi; x++ {
			if prec(g) > prec(rows[e.Node][x]) {
				rows[e.Node][x] = g
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline over [0, %.1f] (#=compute s=send r=recv .=idle)\n", span)
	for id, row := range rows {
		fmt.Fprintf(&sb, "node %4d |%s|\n", id, row)
	}
	return sb.String()
}

// NodeStats summarizes one node's utilization.
type NodeStats struct {
	Node               int
	SendTime, RecvTime float64
	ComputeTime        float64
	Events             int
}

// Summary returns per-node busy-time totals and the overall
// compute/communication split.
func (l *Log) Summary() string {
	evs := l.Events()
	if len(evs) == 0 {
		return "(no events)\n"
	}
	per := map[int]*NodeStats{}
	for _, e := range evs {
		s, okk := per[e.Node]
		if !okk {
			s = &NodeStats{Node: e.Node}
			per[e.Node] = s
		}
		d := e.End - e.Start
		switch e.Kind {
		case Send:
			s.SendTime += d
		case Recv:
			s.RecvTime += d
		case Compute:
			s.ComputeTime += d
		}
		s.Events++
	}
	ids := make([]int, 0, len(per))
	for id := range per {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	span := l.Span()
	var sb strings.Builder
	var totC, totM float64
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %8s\n", "node", "compute", "send", "recv", "busy%")
	for _, id := range ids {
		s := per[id]
		busy := 0.0
		if span > 0 {
			busy = 100 * (s.ComputeTime + s.SendTime + s.RecvTime) / span
		}
		fmt.Fprintf(&sb, "%-8d %10.1f %10.1f %10.1f %7.1f%%\n", id, s.ComputeTime, s.SendTime, s.RecvTime, busy)
		totC += s.ComputeTime
		totM += s.SendTime + s.RecvTime
	}
	if totC+totM > 0 {
		fmt.Fprintf(&sb, "overall: %.1f%% compute, %.1f%% communication (of busy time)\n",
			100*totC/(totC+totM), 100*totM/(totC+totM))
	}
	return sb.String()
}

// PerNode returns the utilization records sorted by node id.
func (l *Log) PerNode() []NodeStats {
	evs := l.Events()
	per := map[int]*NodeStats{}
	for _, e := range evs {
		s, okk := per[e.Node]
		if !okk {
			s = &NodeStats{Node: e.Node}
			per[e.Node] = s
		}
		d := e.End - e.Start
		switch e.Kind {
		case Send:
			s.SendTime += d
		case Recv:
			s.RecvTime += d
		case Compute:
			s.ComputeTime += d
		}
		s.Events++
	}
	out := make([]NodeStats, 0, len(per))
	for _, s := range per {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one record of the Chrome trace-event format
// (chrome://tracing, Perfetto): a B/E duration pair per recorded span.
type ChromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object flavor of the format; viewers accept
// either a bare array or this wrapper, and the wrapper lets us name the
// time unit.
type chromeFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON writes the log in the Chrome trace-event format: one
// B(egin)/E(nd) pair per send/recv/compute span, nodes as threads
// (tid) of a single process. Simulated time units are written as
// microseconds, the format's native unit, so a span of simulated
// length 150 displays as 150us. Output is deterministic: events are
// emitted in the sorted order of Events.
func (l *Log) ChromeJSON(w io.Writer) error {
	evs := l.Events()
	out := chromeFile{TraceEvents: make([]ChromeEvent, 0, 2*len(evs)), DisplayTimeUnit: "ms"}
	for _, e := range evs {
		name := e.Kind.String()
		args := map[string]any{"words": e.Words, "tag": e.Tag}
		if e.Kind != Compute {
			name = fmt.Sprintf("%s peer=%d %dw", e.Kind, e.Peer, e.Words)
			args["peer"] = e.Peer
		}
		out.TraceEvents = append(out.TraceEvents,
			ChromeEvent{Name: name, Cat: e.Kind.String(), Ph: "B", Ts: e.Start, Pid: 0, Tid: e.Node, Args: args},
			ChromeEvent{Ph: "E", Ts: e.End, Pid: 0, Tid: e.Node})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ParseChromeJSON decodes a ChromeJSON document back into its events —
// the round-trip half used by tests and tooling.
func ParseChromeJSON(data []byte) ([]ChromeEvent, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return f.TraceEvents, nil
}

package core

import (
	"math"
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

type algo func(*simnet.Machine, *matrix.Dense, *matrix.Dense) (*matrix.Dense, simnet.RunStats, error)

func newM(p int, pm simnet.PortModel, ts, tw, tc float64) *simnet.Machine {
	return simnet.NewMachine(simnet.Config{P: p, Ports: pm, Ts: ts, Tw: tw, Tc: tc})
}

func checkProduct(t *testing.T, name string, alg algo, p, n int, pm simnet.PortModel) simnet.RunStats {
	t.Helper()
	A := matrix.Random(n, n, int64(p*1000+n))
	B := matrix.Random(n, n, int64(p*1000+n+1))
	C, stats, err := alg(newM(p, pm, 10, 1, 0.1), A, B)
	if err != nil {
		t.Fatalf("%s p=%d n=%d %v: %v", name, p, n, pm, err)
	}
	if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
		t.Fatalf("%s p=%d n=%d %v: result off by %g", name, p, n, pm, d)
	}
	return stats
}

var ports = []simnet.PortModel{simnet.OnePort, simnet.MultiPort}

func TestTwoDiagCorrect(t *testing.T) {
	for _, pm := range ports {
		for _, c := range []struct{ p, n int }{{4, 8}, {16, 16}, {16, 32}, {64, 32}} {
			checkProduct(t, "TwoDiag", TwoDiag, c.p, c.n, pm)
		}
	}
}

func TestThreeDiagCorrect(t *testing.T) {
	for _, pm := range ports {
		for _, c := range []struct{ p, n int }{{8, 8}, {8, 16}, {64, 16}, {64, 32}, {512, 64}} {
			checkProduct(t, "ThreeDiag", ThreeDiag, c.p, c.n, pm)
		}
	}
}

func TestAllTransCorrect(t *testing.T) {
	for _, pm := range ports {
		for _, c := range []struct{ p, n int }{{8, 8}, {8, 16}, {64, 16}, {64, 32}, {512, 64}} {
			checkProduct(t, "AllTrans", AllTrans, c.p, c.n, pm)
		}
	}
}

func TestThreeAllCorrect(t *testing.T) {
	for _, pm := range ports {
		for _, c := range []struct{ p, n int }{{8, 8}, {8, 16}, {64, 16}, {64, 32}, {512, 64}} {
			checkProduct(t, "ThreeAll", ThreeAll, c.p, c.n, pm)
		}
	}
}

func TestTrivialP1(t *testing.T) {
	for name, alg := range map[string]algo{"TwoDiag": TwoDiag, "ThreeDiag": ThreeDiag, "AllTrans": AllTrans, "ThreeAll": ThreeAll} {
		A := matrix.Random(4, 4, 1)
		B := matrix.Random(4, 4, 2)
		C, _, err := alg(newM(1, simnet.OnePort, 1, 1, 0), A, B)
		if err != nil {
			t.Fatalf("%s p=1: %v", name, err)
		}
		if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-10 {
			t.Errorf("%s wrong on p=1", name)
		}
	}
}

func TestShapeErrors(t *testing.T) {
	m := newM(8, simnet.OnePort, 1, 1, 0)
	bad := matrix.New(6, 6) // 6 not divisible by cbrt(8)^2 = 4
	if _, _, err := ThreeAll(m, bad, bad); err == nil {
		t.Error("ThreeAll accepted n not divisible by cbrt(p)^2")
	}
	if _, _, err := AllTrans(m, bad, bad); err == nil {
		t.Error("AllTrans accepted n not divisible by cbrt(p)^2")
	}
	m4 := newM(4, simnet.OnePort, 1, 1, 0)
	sq := matrix.New(8, 8)
	if _, _, err := ThreeDiag(m4, sq, sq); err == nil {
		t.Error("ThreeDiag accepted non-cube p")
	}
	rect := matrix.New(4, 8)
	if _, _, err := TwoDiag(m4, rect, rect); err == nil {
		t.Error("TwoDiag accepted rectangular operands")
	}
}

// measureAB returns the measured (t_s, t_w) cost coefficients of an
// algorithm run, isolating communication (t_c = 0).
func measureAB(t *testing.T, alg algo, p, n int, pm simnet.PortModel) (a, b float64) {
	t.Helper()
	A := matrix.Random(n, n, 5)
	B := matrix.Random(n, n, 6)
	_, sa, err := alg(newM(p, pm, 1, 0, 0), A, B)
	if err != nil {
		t.Fatal(err)
	}
	_, sb, err := alg(newM(p, pm, 0, 1, 0), A, B)
	if err != nil {
		t.Fatal(err)
	}
	return sa.Elapsed, sb.Elapsed
}

func approx(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if math.Abs(got-want) > tolFrac*want+1e-9 {
		t.Errorf("%s = %g, want %g (±%.0f%%)", name, got, want, tolFrac*100)
	}
}

// TestThreeDiagCostMatchesTable2 verifies 3DD's one-port overhead
// against Table 2: a = (4/3) log p, b = (n^2/p^(2/3)) (4/3) log p.
// Table 2 charges the phases as strictly sequential worst cases; the
// emulator lets the point-to-point first phase pipeline into the
// broadcast phase, so the measured cost may undercut the paper's bound
// by up to one phase-1 term — but never exceed it.
func TestThreeDiagCostMatchesTable2(t *testing.T) {
	const p, n = 64, 32
	logp, logq := 6.0, 2.0
	blk := float64(n*n) / 16 // n^2/p^(2/3)
	a, b := measureAB(t, ThreeDiag, p, n, simnet.OnePort)
	if hi := 4.0 / 3 * logp; a > hi || a < hi-logq {
		t.Errorf("3DD one-port a = %g, want in [%g,%g]", a, hi-logq, hi)
	}
	if hi := blk * 4.0 / 3 * logp; b > hi || b < hi-logq*blk {
		t.Errorf("3DD one-port b = %g, want in [%g,%g]", b, hi-logq*blk, hi)
	}
}

// TestThreeAllCostMatchesTable2 verifies 3D All's one-port overhead:
// a = (4/3) log p, b = (n^2/p^(2/3)) (3(1-1/cbrt p) + log p/(6 cbrt p)).
func TestThreeAllCostMatchesTable2(t *testing.T) {
	const p, n = 64, 32
	logp := 6.0
	cbrt := 4.0
	blk := float64(n*n) / 16
	a, b := measureAB(t, ThreeAll, p, n, simnet.OnePort)
	approx(t, "3D All one-port a", a, 4.0/3*logp, 0)
	approx(t, "3D All one-port b", b, blk*(3*(1-1/cbrt)+logp/(6*cbrt)), 0)
}

// TestAllTransCostMatchesTable2 verifies 3D All_Trans's one-port
// overhead: a = (4/3) log p, b = (n^2/p^(2/3)) (3(1-1/cbrt p) + log p/3).
func TestAllTransCostMatchesTable2(t *testing.T) {
	const p, n = 64, 32
	logp := 6.0
	cbrt := 4.0
	blk := float64(n*n) / 16
	a, b := measureAB(t, AllTrans, p, n, simnet.OnePort)
	approx(t, "All_Trans one-port a", a, 4.0/3*logp, 0)
	approx(t, "All_Trans one-port b", b, blk*(3*(1-1/cbrt)+logp/3), 0)
}

// TestThreeAllBeatsAllTrans is the paper's dominance claim: 3D All has
// lower communication overhead than 3D All_Trans for the same machine
// and operands, on both port models.
func TestThreeAllBeatsAllTrans(t *testing.T) {
	for _, pm := range ports {
		for _, c := range []struct{ p, n int }{{8, 16}, {64, 32}, {512, 64}} {
			_, bAll := measureAB(t, ThreeAll, c.p, c.n, pm)
			_, bTrans := measureAB(t, AllTrans, c.p, c.n, pm)
			if bAll > bTrans {
				t.Errorf("%v p=%d n=%d: 3D All b=%g > All_Trans b=%g", pm, c.p, c.n, bAll, bTrans)
			}
		}
	}
}

// TestThreeDiagBeatsDNS: 3DD needs at most (4/3) log p start-ups versus
// DNS's (5/3) log p (one-port Table 2) — the dominance the paper claims.
func TestThreeDiagBeatsDNS(t *testing.T) {
	const p, n = 64, 32
	aDD, _ := measureAB(t, ThreeDiag, p, n, simnet.OnePort)
	if hi := 4.0 / 3 * 6; aDD > hi {
		t.Errorf("3DD a = %g exceeds Table 2 bound %g", aDD, hi)
	}
	if dnsA := 5.0 / 3 * 6; aDD >= dnsA {
		t.Errorf("3DD a = %g not below DNS's %g", aDD, dnsA)
	}
}

// TestMultiPortCheaper: every core algorithm's t_w coefficient shrinks
// when moving from one-port to multi-port hardware.
func TestMultiPortCheaper(t *testing.T) {
	for name, alg := range map[string]algo{"ThreeDiag": ThreeDiag, "AllTrans": AllTrans, "ThreeAll": ThreeAll} {
		_, b1 := measureAB(t, alg, 64, 32, simnet.OnePort)
		_, bm := measureAB(t, alg, 64, 32, simnet.MultiPort)
		if bm >= b1 {
			t.Errorf("%s: multi-port b=%g not cheaper than one-port b=%g", name, bm, b1)
		}
	}
}

// TestResultAlignment3DAll: the paper stresses that 3D All leaves C
// distributed exactly like A and B. Verify the per-node output block
// equals the corresponding Figure-8 block of the serial product.
func TestResultAlignment3DAll(t *testing.T) {
	const p, n = 8, 8
	A := matrix.Random(n, n, 11)
	B := matrix.Random(n, n, 12)
	C, _, err := ThreeAll(newM(p, simnet.OnePort, 1, 1, 0), A, B)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(A, B)
	// The collection already re-assembles via the Figure-8 layout, so a
	// correct full product plus the layout test in the collection loop
	// implies alignment; verify block extraction round-trips too.
	q := 2
	for k := 0; k < q; k++ {
		for f := 0; f < q*q; f++ {
			if !matrix.AlmostEqual(C.GridBlock(q, q*q, k, f), want.GridBlock(q, q*q, k, f), 1e-9) {
				t.Fatalf("block (%d,%d) misaligned", k, f)
			}
		}
	}
}

// TestSpaceShape: 3-D algorithms hold ~2 n^2 cbrt(p) aggregate words
// (Table 3).
func TestSpaceShape(t *testing.T) {
	const p, n = 64, 32
	A := matrix.Random(n, n, 1)
	B := matrix.Random(n, n, 2)
	_, rs, err := ThreeAll(newM(p, simnet.OnePort, 1, 1, 0), A, B)
	if err != nil {
		t.Fatal(err)
	}
	agg := float64(rs.TotalPeak)
	want := 2 * float64(n*n) * 4 // 2 n^2 cbrt(p)
	if agg < 0.8*want || agg > 1.5*want {
		t.Errorf("3D All aggregate space %g, Table 3 says ~%g", agg, want)
	}
}

func TestDeterministic(t *testing.T) {
	A := matrix.Random(16, 16, 3)
	B := matrix.Random(16, 16, 4)
	var last simnet.RunStats
	for trial := 0; trial < 3; trial++ {
		_, rs, err := ThreeAll(newM(8, simnet.MultiPort, 7, 3, 0.01), A, B)
		if err != nil {
			t.Fatal(err)
		}
		if trial > 0 && rs.Elapsed != last.Elapsed {
			t.Fatalf("nondeterministic elapsed %g vs %g", rs.Elapsed, last.Elapsed)
		}
		last = rs
	}
}

// TestThreeAllRepeated: repeated squaring with zero redistribution —
// the concrete payoff of 3-D All's aligned output distribution.
func TestThreeAllRepeated(t *testing.T) {
	const p, n = 8, 16
	A := matrix.Random(n, n, 77).Scale(0.2) // keep powers bounded
	for rounds := 0; rounds <= 3; rounds++ {
		C, stats, err := ThreeAllRepeated(newM(p, simnet.OnePort, 10, 1, 0.1), A, rounds)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.Identity(n)
		for r := 0; r < 1<<rounds; r++ {
			want = matrix.Mul(want, A)
		}
		if d := matrix.MaxAbsDiff(C, want); d > 1e-8 {
			t.Fatalf("rounds=%d: A^%d off by %g", rounds, 1<<rounds, d)
		}
		if rounds > 0 && stats.Elapsed <= 0 {
			t.Error("no time elapsed")
		}
	}
}

// TestThreeAllRepeatedSingleSession: all rounds run in one machine
// session — message counts scale linearly with rounds and no
// redistribution traffic appears between rounds.
func TestThreeAllRepeatedSingleSession(t *testing.T) {
	const p, n = 8, 16
	A := matrix.Random(n, n, 78).Scale(0.2)
	_, one, err := ThreeAllRepeated(newM(p, simnet.OnePort, 10, 1, 0), A, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, three, err := ThreeAllRepeated(newM(p, simnet.OnePort, 10, 1, 0), A, 3)
	if err != nil {
		t.Fatal(err)
	}
	if three.TotalMsgs != 3*one.TotalMsgs {
		t.Errorf("messages for 3 rounds = %d, want exactly 3x one round (%d)", three.TotalMsgs, 3*one.TotalMsgs)
	}
	if three.Elapsed != 3*one.Elapsed {
		t.Errorf("elapsed for 3 rounds = %g, want 3x %g", three.Elapsed, one.Elapsed)
	}
}

// TestThreeDiagTransCorrect: the Section 4.1.1 stepping stone (3-D
// extension of the 2-D Diagonal scheme with B transposed).
func TestThreeDiagTransCorrect(t *testing.T) {
	for _, pm := range ports {
		for _, c := range []struct{ p, n int }{{8, 8}, {8, 16}, {64, 16}, {64, 32}} {
			checkProduct(t, "ThreeDiagTrans", ThreeDiagTrans, c.p, c.n, pm)
		}
	}
}

// TestThreeDiagTransSameCostAsThreeDiag: the paper's point — the 3-D
// Diagonal variant with identical distributions costs no more than the
// transposed-B stepping stone ("without any additional communication
// overhead").
func TestThreeDiagTransSameCostAsThreeDiag(t *testing.T) {
	const p, n = 64, 32
	logq, blk := 2.0, float64(n*n)/16
	aT, bT := measureAB(t, ThreeDiagTrans, p, n, simnet.OnePort)
	aD, bD := measureAB(t, ThreeDiag, p, n, simnet.OnePort)
	// Both share Table 2's 3DD bound (a = 4 log q); the emulator's
	// phase pipelining may undercut it by up to one phase for either
	// variant, so assert the bound and closeness rather than ordering.
	for _, v := range []struct {
		name string
		a, b float64
	}{{"transposed", aT, bT}, {"identical", aD, bD}} {
		if v.a > 4*logq || v.b > 4*logq*blk {
			t.Errorf("%s variant (a=%g,b=%g) exceeds the shared bound (%g,%g)", v.name, v.a, v.b, 4*logq, 4*logq*blk)
		}
	}
	if d := aD - aT; d > logq || d < -logq {
		t.Errorf("variants' start-up costs differ by more than a phase: %g vs %g", aD, aT)
	}
}

package core

import (
	"hypermm/internal/algorithms"
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// ThreeDiagTrans is the intermediate algorithm of Section 4.1.1: the
// 2-D Diagonal scheme extended to a 3-D mesh, *before* the paper fixes
// its distribution mismatch. Matrices are distributed along z with
// processor p_{i,i,k} holding A_{k,i} and B_{i,k} — i.e. B transposed
// relative to A, which is the variant's drawback ("the initial
// distribution assumed is not the same for matrices A and B"); the
// 3-D Diagonal algorithm (ThreeDiag) removes it at no extra cost.
//
// Phases, per the paper's prose: the one-to-all personalized broadcast
// of the 2-D scheme is replaced by point-to-point communication of
// B_{i,k} from p_{i,i,k} to p_{k,i,k}, followed by a one-to-all
// broadcast of B_{i,k} along z to p_{k,i,*}; A broadcasts along x as
// in the 2-D scheme; the reduction runs along y onto the diagonal.
func ThreeDiagTrans(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := algorithms.Grid3DFor(m, n, false)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q
	blk := n / q

	// Initial distribution: p_{i,i,k} holds A_{k,i} and B_{i,k} —
	// B distributed as A's transpose.
	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for k := 0; k < q; k++ {
			id := g.Node(i, i, k)
			aIn[id] = A.GridBlock(q, q, k, i)
			bIn[id] = B.GridBlock(q, q, i, k)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j, k := g.Coords(nd.ID)

		// Phase 1: point-to-point along x: B_{i,k} from p_{i,i,k} to
		// p_{k,i,k}.
		if i == j {
			nd.SendM(g.Node(k, i, k), 1, bIn[nd.ID])
		}
		var bRoot *matrix.Dense
		if i == k {
			// p_{k,i,k} in the paper's naming: our x == z here; we
			// receive B_{j,i} from p_{j,j,i} (the diagonal node whose
			// y matches ours).
			bRoot = nd.RecvM(g.Node(j, j, i), 1)
		}

		// Phase 2: broadcast A_{k,j} along x (root x-pos j, a diagonal
		// node) and the lifted B along z (root z-pos i... the chain
		// p_{i,j,*} is rooted at the node whose z equals its x).
		opA := collective.On(nd, g.XChain(j, k)).NewBcast(2, j, blk, blk, aIn[nd.ID])
		opB := collective.On(nd, g.ZChain(i, j)).NewBcast(3, i, blk, blk, bRoot)
		collective.Run(opA, opB)
		a, b := opA.Result(), opB.Result() // A_{k,j}, B_{j,i}

		nd.NoteWords(2 * a.Words())

		// Compute and reduce along y onto the diagonal plane.
		i3 := nd.Mul(a, b)
		c := collective.On(nd, g.YChain(i, k)).Reduce(4, i, i3)
		if i == j {
			out[nd.ID] = c // C_{k,i}, aligned like A (not like B)
		}
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for k := 0; k < q; k++ {
			C.SetGridBlock(q, q, k, i, out[g.Node(i, i, k)])
		}
	}
	return C, stats, nil
}

package core

import (
	"hypermm/internal/algorithms"
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// ThreeDiag is the 3-D Diagonal algorithm (Section 4.1.2, Algorithm 3)
// on a cbrt(p)^3 virtual grid, applicable for p <= n^3. Both operands
// start identically distributed on the diagonal plane x = y: processor
// p_{i,i,k} holds blocks A_{k,i} and B_{k,i} of the
// cbrt(p) x cbrt(p) block partition.
//
// Phase 1: p_{i,i,k} sends B_{k,i} point-to-point to p_{i,k,k}.
// Phase 2: p_{i,i,k} broadcasts A_{k,i} along x while p_{i,k,k}
// broadcasts the received B block along z (overlapped on multi-port).
// Every p_{i,j,k} then holds A_{k,j} and B_{j,i} and multiplies.
// Phase 3: all-to-one reduction along y onto the diagonal plane:
// C_{k,i} = sum_j A_{k,j} B_{j,i} lands on p_{i,i,k}, aligned exactly
// like the operands.
//
// One-port cost: t_s (4/3) log p + t_w (n^2/p^(2/3)) (4/3) log p — the
// fewest start-ups of any algorithm in the paper, and the only
// algorithm applicable in the region n^2 < p <= n^3 other than DNS,
// which it dominates.
func ThreeDiag(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := algorithms.Grid3DFor(m, n, false)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q
	blk := n / q

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for k := 0; k < q; k++ {
			id := g.Node(i, i, k)
			aIn[id] = A.GridBlock(q, q, k, i)
			bIn[id] = B.GridBlock(q, q, k, i)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j, k := g.Coords(nd.ID)

		// Phase 1: diagonal plane forwards B_{k,i} to p_{i,k,k}
		// (point-to-point within the y dimensions).
		if i == j {
			nd.SendM(g.Node(i, k, k), 1, bIn[nd.ID])
		}
		var bRoot *matrix.Dense
		if j == k {
			bRoot = nd.RecvM(g.Node(i, i, j), 1) // B_{j,i}
		}

		// Phase 2: broadcast A_{k,j} along x (root: diagonal node at
		// x-position j) and B_{j,i} along z (root: z-position j).
		opA := collective.On(nd, g.XChain(j, k)).NewBcast(2, j, blk, blk, aIn[nd.ID])
		opB := collective.On(nd, g.ZChain(i, j)).NewBcast(3, j, blk, blk, bRoot)
		collective.Run(opA, opB)
		a, b := opA.Result(), opB.Result() // A_{k,j}, B_{j,i}

		nd.NoteWords(2 * a.Words())

		// Compute I_{k,i} = A_{k,j} x B_{j,i} and reduce along y onto
		// the diagonal plane (y-position i).
		i3 := nd.Mul(a, b)
		c := collective.On(nd, g.YChain(i, k)).Reduce(4, i, i3)
		if i == j {
			out[nd.ID] = c // C_{k,i}
		}
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for k := 0; k < q; k++ {
			C.SetGridBlock(q, q, k, i, out[g.Node(i, i, k)])
		}
	}
	return C, stats, nil
}

package core

import (
	"fmt"

	"hypermm/internal/algorithms"
	"hypermm/internal/collective"
	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// ThreeDiagCannon is the 3DD+Cannon combination the paper's Section 3.5
// implies: "the combination of any proposed new algorithm with Cannon's
// algorithm would yield an algorithm better than the combination
// algorithm of the DNS and Cannon". The hypercube is viewed as a
// cbrt(s)^3 grid of supernodes, each a sqrt(r) x sqrt(r) Cannon mesh
// (p = s*r); the 3-D Diagonal algorithm runs at supernode granularity
// (point-to-point lift of B, broadcasts of A along x and B along z,
// all-to-one reduction along y) with every mesh processor carrying its
// own sub-block, and each supernode's block product is computed by
// Cannon's algorithm.
//
// Space drops from 3DD's 2n^2*cbrt(p) to ~3n^2*cbrt(s)/... per the same
// argument as DNS+Cannon, while keeping 3DD's (4/3) log s supernode
// start-up structure — which is what makes it beat DNS+Cannon
// (asserted in tests).
func ThreeDiagCannon(m *simnet.Machine, A, B *matrix.Dense, s int) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	p := m.P()
	if s <= 0 || p%s != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("core: supernode count %d does not divide p=%d", s, p)
	}
	r := p / s
	if !hypercube.IsPow2(s) || hypercube.Log2(s)%3 != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("core: s=%d is not a perfect cube power of two", s)
	}
	if !hypercube.IsPow2(r) || hypercube.Log2(r)%2 != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("core: r=p/s=%d is not a perfect square power of two", r)
	}
	qs := 1 << (hypercube.Log2(s) / 3)
	qr := 1 << (hypercube.Log2(r) / 2)
	if n%(qs*qr) != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("core: n=%d not divisible by cbrt(s)*sqrt(r)=%d", n, qs*qr)
	}
	dr := hypercube.Log2(r)
	ds := hypercube.Log2(qs)

	intra := func(i, j int) int { return hypercube.Gray(i)<<(dr/2) | hypercube.Gray(j) }
	node := func(I, J, K, i, j int) int {
		return hypercube.Gray(I)<<(2*ds+dr) | hypercube.Gray(J)<<(ds+dr) | hypercube.Gray(K)<<dr | intra(i, j)
	}
	coords := func(id int) (I, J, K, i, j int) {
		mi := 1<<(dr/2) - 1
		ms := 1<<ds - 1
		return hypercube.GrayRank(id >> (2*ds + dr) & ms),
			hypercube.GrayRank(id >> (ds + dr) & ms),
			hypercube.GrayRank(id >> dr & ms),
			hypercube.GrayRank(id >> (dr / 2) & mi),
			hypercube.GrayRank(id & mi)
	}

	// Initial distribution: diagonal-plane supernode (I,I,K) holds
	// A_{K,I} and B_{K,I} of the cbrt(s) x cbrt(s) partition, spread
	// qr x qr over its mesh.
	aIn := make([]*matrix.Dense, p)
	bIn := make([]*matrix.Dense, p)
	for I := 0; I < qs; I++ {
		for K := 0; K < qs; K++ {
			aBlk := A.GridBlock(qs, qs, K, I)
			bBlk := B.GridBlock(qs, qs, K, I)
			for i := 0; i < qr; i++ {
				for j := 0; j < qr; j++ {
					id := node(I, I, K, i, j)
					aIn[id] = aBlk.GridBlock(qr, qr, i, j)
					bIn[id] = bBlk.GridBlock(qr, qr, i, j)
				}
			}
		}
	}

	blk := n / (qs * qr)

	out := make([]*matrix.Dense, p)
	stats, err := m.RunErr(func(nd *simnet.Node) {
		I, J, K, i, j := coords(nd.ID)
		io := intra(i, j)

		xCh := hypercube.NewChain(hypercube.Gray(J)<<(ds+dr)|hypercube.Gray(K)<<dr|io, dimRange(2*ds+dr, ds))
		yCh := hypercube.NewChain(hypercube.Gray(I)<<(2*ds+dr)|hypercube.Gray(K)<<dr|io, dimRange(ds+dr, ds))
		zCh := hypercube.NewChain(hypercube.Gray(I)<<(2*ds+dr)|hypercube.Gray(J)<<(ds+dr)|io, dimRange(dr, ds))

		// Phase 1: the diagonal plane forwards its B sub-block to the
		// supernode (I,K,K), processor-wise.
		if I == J {
			nd.SendM(node(I, K, K, i, j), 1, bIn[nd.ID])
		}
		var bRoot *matrix.Dense
		if J == K {
			bRoot = nd.RecvM(node(I, I, J, i, j), 1)
		}

		// Phase 2: broadcast A along x (root supernode x-pos J) and the
		// lifted B along z (root z-pos J), fused.
		opA := collective.On(nd, xCh).NewBcast(2, J, blk, blk, aIn[nd.ID])
		opB := collective.On(nd, zCh).NewBcast(3, J, blk, blk, bRoot)
		collective.Run(opA, opB)
		a, b := opA.Result(), opB.Result() // sub-blocks of A_{K,J}, B_{J,I}

		nd.NoteWords(3 * blk * blk)

		// Phase 3: supernode block product by Cannon on the mesh.
		rowCh := hypercube.NewChain(nd.ID&^(1<<(dr/2)-1), dimRange(0, dr/2))
		colCh := hypercube.NewChain(nd.ID&^((1<<(dr/2)-1)<<(dr/2)), dimRange(dr/2, dr/2))
		c := algorithms.CannonRun(nd, rowCh, colCh, i, j, qr, a, b, 9)

		// Phase 4: reduce along y onto the diagonal plane (y-pos I).
		red := collective.On(nd, yCh).Reduce(6, I, c)
		if I == J {
			out[nd.ID] = red // sub-block of C_{K,I}
		}
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for I := 0; I < qs; I++ {
		for K := 0; K < qs; K++ {
			cBlk := matrix.New(n/qs, n/qs)
			for i := 0; i < qr; i++ {
				for j := 0; j < qr; j++ {
					cBlk.SetGridBlock(qr, qr, i, j, out[node(I, I, K, i, j)])
				}
			}
			C.SetGridBlock(qs, qs, K, I, cBlk)
		}
	}
	return C, stats, nil
}

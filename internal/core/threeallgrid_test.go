package core

import (
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func runGrid(t *testing.T, p, n, qy int, pm simnet.PortModel) simnet.RunStats {
	t.Helper()
	A := matrix.Random(n, n, int64(7*p+n+qy))
	B := matrix.Random(n, n, int64(7*p+n+qy+1))
	C, stats, err := ThreeAllGrid(newM(p, pm, 10, 1, 0.1), A, B, qy)
	if err != nil {
		t.Fatalf("p=%d n=%d qy=%d %v: %v", p, n, qy, pm, err)
	}
	if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
		t.Fatalf("p=%d n=%d qy=%d %v: off by %g", p, n, qy, pm, d)
	}
	return stats
}

func TestThreeAllGridMatchesCube(t *testing.T) {
	// qy = cbrt(p) is exactly the paper's cube algorithm; times agree
	// with ThreeAll.
	A := matrix.Random(32, 32, 1)
	B := matrix.Random(32, 32, 2)
	cube, s1, err := ThreeAll(newM(64, simnet.OnePort, 10, 1, 0), A, B)
	if err != nil {
		t.Fatal(err)
	}
	rect, s2, err := ThreeAllGrid(newM(64, simnet.OnePort, 10, 1, 0), A, B, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.AlmostEqual(cube, rect, 1e-9) {
		t.Error("cube and grid results differ")
	}
	if s1.Elapsed != s2.Elapsed {
		t.Errorf("cube elapsed %g != grid elapsed %g", s1.Elapsed, s2.Elapsed)
	}
}

func TestThreeAllGridShapes(t *testing.T) {
	cases := []struct{ p, n, qy int }{
		{8, 8, 2},    // cube
		{8, 16, 2},   // cube, larger blocks
		{32, 16, 2},  // rectangular: 4 x 2 x 4
		{32, 32, 2},  // rectangular, larger n
		{16, 16, 4},  // flat: 2 x 4 x 2 (more planes than Q)
		{128, 32, 8}, // 4 x 8 x 4
		{128, 32, 2}, // 8 x 2 x 8
		{256, 64, 4}, // 8 x 4 x 8
	}
	for _, pm := range ports {
		for _, c := range cases {
			runGrid(t, c.p, c.n, c.qy, pm)
		}
	}
}

// TestThreeAllGridExtendsApplicability: the paper's remark — the
// rectangular grid runs where the cube cannot. p = 128 exceeds
// n^(3/2) = 64 for n = 16, yet the 8 x 2 x 8 grid handles it.
func TestThreeAllGridExtendsApplicability(t *testing.T) {
	A := matrix.Random(16, 16, 3)
	B := matrix.Random(16, 16, 4)
	C, _, err := ThreeAllGrid(newM(128, simnet.OnePort, 10, 1, 0), A, B, 2)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-9 {
		t.Error("wrong product beyond the cube's applicability limit")
	}
}

// TestThreeAllGridSpaceTrade: the paper warns the rectangular variant
// pays for its extended applicability with replication space growing
// like n^2 sqrt(p). At qy = 2 the aggregate is 2n^2(Q+1) words with
// Q = sqrt(p/2); check the measured values against that closed form.
func TestThreeAllGridSpaceTrade(t *testing.T) {
	const n = 64
	A := matrix.Random(n, n, 5)
	B := matrix.Random(n, n, 6)
	prev := 0
	for _, c := range []struct{ p, Q int }{{8, 2}, {32, 4}, {128, 8}} {
		_, stats, err := ThreeAllGrid(newM(c.p, simnet.OnePort, 1, 1, 0), A, B, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := 2 * n * n * (c.Q + 1)
		if stats.TotalPeak != want {
			t.Errorf("p=%d: aggregate space %d, want 2n^2(Q+1) = %d", c.p, stats.TotalPeak, want)
		}
		if stats.TotalPeak <= prev {
			t.Errorf("p=%d: space %d did not grow beyond %d", c.p, stats.TotalPeak, prev)
		}
		prev = stats.TotalPeak
	}
}

func TestThreeAllGridRejectsBadShapes(t *testing.T) {
	A := matrix.New(16, 16)
	if _, _, err := ThreeAllGrid(newM(16, simnet.OnePort, 1, 1, 0), A, A, 2); err == nil {
		t.Error("accepted p/qy not a square (16/2 = 8)")
	}
	if _, _, err := ThreeAllGrid(newM(16, simnet.OnePort, 1, 1, 0), A, A, 3); err == nil {
		t.Error("accepted non-power-of-two qy")
	}
	if _, _, err := ThreeAllGrid(newM(32, simnet.OnePort, 1, 1, 0), matrix.New(12, 12), matrix.New(12, 12), 2); err == nil {
		t.Error("accepted n not divisible by Q*qy")
	}
}

package core

import (
	"fmt"

	"hypermm/internal/algorithms"
	"hypermm/internal/collective"
	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// This file implements the generalization of the 3-D All algorithm that
// the paper sketches at the end of Section 4.2.2: mapping a
// non-uniform 3-D grid onto the hypercube to push the processor limit
// beyond p = n^(3/2), at the price of more replication space.
//
// The correctness proof of Algorithm 5 requires the A column groups
// gathered along x to pair exactly with the B row slabs gathered along
// z, which pins the x and z extents to a common Q; the y extent (the
// number of outer-product planes) is free. We therefore use a
// Q x qy x Q grid with p = Q^2 * qy:
//
//   - qy = Q reproduces the paper's cube (p <= n^(3/2));
//   - shrinking qy grows Q and admits up to p = n^2/2 processors
//     (Q*qy <= n with qy = 2), which is the paper's "can allow us to
//     use upto n^2 processors" remark, reached with the quoted
//     O(n^2 sqrt(p)) space blow-up.
//
// Operands are partitioned into Q row groups x (Q*qy) column groups;
// processor p_{i,j,k} holds A_{k,f(i,j)} and B_{k,f(i,j)} with
// f(i,j) = i*qy + j, exactly as in Figure 8 with the axes reinterpreted.

// rectGrid embeds a Q x qy x Q virtual grid: Gray(i) in the top bits
// (x), Gray(j) in the middle (y), Gray(k) in the low bits (z).
type rectGrid struct {
	Q, Qy  int
	dq, dy int // log2 Q, log2 Qy
}

func newRectGrid(p, qy int) (rectGrid, error) {
	if !hypercube.IsPow2(p) || !hypercube.IsPow2(qy) {
		return rectGrid{}, fmt.Errorf("core: p=%d and qy=%d must be powers of two", p, qy)
	}
	if p%qy != 0 {
		return rectGrid{}, fmt.Errorf("core: qy=%d does not divide p=%d", qy, p)
	}
	q2 := p / qy
	dq2 := hypercube.Log2(q2)
	if dq2%2 != 0 {
		return rectGrid{}, fmt.Errorf("core: p/qy=%d is not a square power of two", q2)
	}
	g := rectGrid{Q: 1 << (dq2 / 2), Qy: qy, dq: dq2 / 2, dy: hypercube.Log2(qy)}
	return g, nil
}

func (g rectGrid) node(i, j, k int) int {
	return hypercube.Gray(i)<<(g.dq+g.dy) | hypercube.Gray(j)<<g.dq | hypercube.Gray(k)
}

func (g rectGrid) coords(id int) (i, j, k int) {
	return hypercube.GrayRank(id >> (g.dq + g.dy)),
		hypercube.GrayRank((id >> g.dq) & (1<<g.dy - 1)),
		hypercube.GrayRank(id & (1<<g.dq - 1))
}

func (g rectGrid) xChain(j, k int) hypercube.Chain {
	return hypercube.NewChain(hypercube.Gray(j)<<g.dq|hypercube.Gray(k), dimRange(g.dq+g.dy, g.dq))
}

func (g rectGrid) yChain(i, k int) hypercube.Chain {
	return hypercube.NewChain(hypercube.Gray(i)<<(g.dq+g.dy)|hypercube.Gray(k), dimRange(g.dq, g.dy))
}

func (g rectGrid) zChain(i, j int) hypercube.Chain {
	return hypercube.NewChain(hypercube.Gray(i)<<(g.dq+g.dy)|hypercube.Gray(j)<<g.dq, dimRange(0, g.dq))
}

func dimRange(lo, n int) []int {
	ds := make([]int, n)
	for s := range ds {
		ds[s] = lo + s
	}
	return ds
}

// ThreeAllGrid runs the 3-D All algorithm on a Q x qy x Q virtual grid
// with p = Q^2*qy. qy = cbrt(p) reproduces ThreeAll; smaller qy trades
// space for applicability up to p ~ n^2/2.
func ThreeAllGrid(m *simnet.Machine, A, B *matrix.Dense, qy int) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := newRectGrid(m.P(), qy)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	Q, qyy := g.Q, g.Qy
	cols := Q * qyy // number of column groups
	if n%cols != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("core: n=%d not divisible by Q*qy=%d", n, cols)
	}
	aBlocks := A.GridBlocks(Q, cols)
	bBlocks := B.GridBlocks(Q, cols)
	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < Q; i++ {
		for j := 0; j < qyy; j++ {
			for k := 0; k < Q; k++ {
				id := g.node(i, j, k)
				f := matrix.F(qyy, i, j)
				aIn[id] = aBlocks[k][f]
				bIn[id] = bBlocks[k][f]
			}
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		out[nd.ID] = threeAllGridRound(nd, g, aIn[nd.ID], bIn[nd.ID], 0)
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < Q; i++ {
		for j := 0; j < qyy; j++ {
			for k := 0; k < Q; k++ {
				C.SetGridBlock(Q, cols, k, matrix.F(qyy, i, j), out[g.node(i, j, k)])
			}
		}
	}
	return C, stats, nil
}

// threeAllGridRound executes one 3-D All multiplication on a Q x qy x Q
// grid from the view of one node holding aBlk = A_{k,f(i,j)} and
// bBlk = B_{k,f(i,j)}; it returns C_{k,f(i,j)}, distributed exactly
// like the operands, which lets rounds chain with no redistribution.
// tagBase must differ across successive rounds.
func threeAllGridRound(nd *simnet.Node, g rectGrid, aBlk, bBlk *matrix.Dense, tagBase uint64) *matrix.Dense {
	Q, qy := g.Q, g.Qy
	big, small := aBlk.Rows, aBlk.Cols
	i, j, k := g.coords(nd.ID)
	yc := collective.On(nd, g.yChain(i, k))

	// Phase 1: all-to-all personalized along y — row group l of our B
	// block goes to y-position l; the received pieces assemble into
	// B_{f(k,j),i} of the (Q*qy x Q) partition (the paper's proof of
	// correctness, Section 4.2.2).
	bPieces := bBlk.RowGroups(qy)
	got := yc.AllToAll(tagBase+1, bPieces)
	bMine := matrix.ConcatCols(got...)

	// Phase 2: all-to-all broadcasts along z and x, fused for
	// multi-port overlap.
	opB := collective.On(nd, g.zChain(i, j)).NewAllGather(tagBase+2, bMine)
	opA := collective.On(nd, g.xChain(j, k)).NewAllGather(tagBase+3, aBlk)
	collective.Run(opB, opA)
	bAll, aAll := opB.Result(), opA.Result()

	nd.NoteWords(2*Q*big*small + big*big)

	// Compute I_{k,i} = sum_{m<Q} A_{k,f(m,j)} B_{f(m,j),i}: the A
	// slab's global columns and the B slab's global rows coincide
	// because the x and z extents are both Q.
	islab := matrix.New(big, big)
	for mm := 0; mm < Q; mm++ {
		nd.MulAdd(islab, aAll[mm], bAll[mm])
	}

	// Phase 3: all-to-all reduction along y.
	return yc.ReduceScatter(tagBase+4, islab.ColGroups(qy))
}

package core

import (
	"testing"

	"hypermm/internal/algorithms"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func TestThreeDiagCannonCorrect(t *testing.T) {
	cases := []struct{ p, s, n int }{
		{32, 8, 16},  // 2x2x2 supernodes of 2x2 meshes
		{32, 8, 32},  // larger blocks
		{128, 8, 32}, // 2x2x2 supernodes of 4x4 meshes
		{512, 8, 32}, // 2x2x2 supernodes of 8x8 meshes
		{8, 8, 8},    // r=1: pure 3DD
	}
	for _, pm := range ports {
		for _, c := range cases {
			A := matrix.Random(c.n, c.n, int64(3*c.p+c.n))
			B := matrix.Random(c.n, c.n, int64(3*c.p+c.n+1))
			C, _, err := ThreeDiagCannon(newM(c.p, pm, 10, 1, 0.1), A, B, c.s)
			if err != nil {
				t.Fatalf("p=%d s=%d n=%d %v: %v", c.p, c.s, c.n, pm, err)
			}
			if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
				t.Fatalf("p=%d s=%d n=%d %v: off by %g", c.p, c.s, c.n, pm, d)
			}
		}
	}
}

// TestThreeDiagCannonBeatsDNSCannon verifies the paper's Section 3.5
// claim: the combination of the new 3DD algorithm with Cannon is better
// than the combination of DNS with Cannon, at the same supernode split,
// in both start-ups and transmission (measured with unit cost vectors).
func TestThreeDiagCannonBeatsDNSCannon(t *testing.T) {
	const p, s, n = 128, 8, 32
	A := matrix.Random(n, n, 5)
	B := matrix.Random(n, n, 6)
	measure := func(run func(*simnet.Machine) (simnet.RunStats, error), ts, tw float64) float64 {
		m := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: ts, Tw: tw})
		rs, err := run(m)
		if err != nil {
			t.Fatal(err)
		}
		return rs.Elapsed
	}
	run3dd := func(m *simnet.Machine) (simnet.RunStats, error) {
		_, rs, err := ThreeDiagCannon(m, A, B, s)
		return rs, err
	}
	runDNS := func(m *simnet.Machine) (simnet.RunStats, error) {
		_, rs, err := algorithms.DNSCannon(m, A, B, s)
		return rs, err
	}
	a3, aD := measure(run3dd, 1, 0), measure(runDNS, 1, 0)
	b3, bD := measure(run3dd, 0, 1), measure(runDNS, 0, 1)
	if a3 >= aD {
		t.Errorf("3DD+Cannon a=%g not below DNS+Cannon a=%g", a3, aD)
	}
	if b3 >= bD {
		t.Errorf("3DD+Cannon b=%g not below DNS+Cannon b=%g", b3, bD)
	}
}

// TestThreeDiagCannonSpace: like DNS+Cannon, the combination avoids
// 3DD's full cbrt(p)-fold replication.
func TestThreeDiagCannonSpace(t *testing.T) {
	const n = 32
	A := matrix.Random(n, n, 1)
	B := matrix.Random(n, n, 2)
	_, pure, err := ThreeDiag(newM(512, simnet.OnePort, 1, 1, 0), A, B)
	if err != nil {
		t.Fatal(err)
	}
	_, combo, err := ThreeDiagCannon(newM(512, simnet.OnePort, 1, 1, 0), A, B, 8)
	if err != nil {
		t.Fatal(err)
	}
	if combo.TotalPeak >= pure.TotalPeak {
		t.Errorf("combination space %d not below pure 3DD %d", combo.TotalPeak, pure.TotalPeak)
	}
}

func TestThreeDiagCannonRejectsBadShapes(t *testing.T) {
	A := matrix.New(16, 16)
	if _, _, err := ThreeDiagCannon(newM(32, simnet.OnePort, 1, 1, 0), A, A, 16); err == nil {
		t.Error("accepted non-cube s")
	}
	if _, _, err := ThreeDiagCannon(newM(64, simnet.OnePort, 1, 1, 0), A, A, 8); err == nil {
		t.Error("accepted non-square r")
	}
}

package core

import (
	"hypermm/internal/algorithms"
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// AllTrans is the 3-D All_Trans algorithm (Section 4.2.1, Algorithm 4)
// on a cbrt(p)^3 grid, applicable for p <= n^(3/2). It is the 2-D
// Diagonal algorithm extended to the third dimension with the operand
// groups on every processor column, not just the diagonal: processor
// p_{i,j,k} starts with A_{k,f(i,j)} (Figure 8) and B_{f(i,j),k}
// (Figure 9) where f(i,j) = i*cbrt(p)+j — i.e. the transpose of B is
// distributed identically to A.
//
// Phase 1: each x-line gathers its B blocks at p_{k,j,k} (all-to-one,
// the inverse of a scatter). Phase 2: that node broadcasts the gathered
// B_{f(*,j),k} along z while every x-line all-to-all broadcasts its A
// blocks (overlapped on multi-port). Each processor then computes its
// block of the plane's outer product, I_{k,i} = sum_l A_{k,f(l,j)}
// B_{f(l,j),i}. Phase 3: all-to-all reduction along y delivers
// C_{k,f(i,j)} aligned exactly like A.
func AllTrans(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := algorithms.Grid3DFor(m, n, true)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q
	big := n / q         // block edge along the coarse axis
	small := n / (q * q) // block edge along the fine axis

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < q; k++ {
				id := g.Node(i, j, k)
				f := matrix.F(q, i, j)
				aIn[id] = A.GridBlock(q, q*q, k, f) // big x small
				bIn[id] = B.GridBlock(q*q, q, f, k) // small x big
			}
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j, k := g.Coords(nd.ID)
		xc := collective.On(nd, g.XChain(j, k))

		// Phase 1: gather B blocks of the x-line at x-position k.
		gathered := xc.Gather(1, k, bIn[nd.ID]) // at p_{k,j,k}: B_{f(l,j),k} by l

		// The z-root (k == i on its chain... the root of ZChain(i,j) at
		// z-position i is p_{i,j,i}, which as an x-gather root (k==i)
		// holds B_{f(*,j),i}. Stack the gathered blocks into one
		// (n/q x n/q) slab for the broadcast.
		var bSlab *matrix.Dense
		if i == k {
			bSlab = matrix.ConcatRows(gathered...)
		}

		// Phase 2: broadcast B_{f(*,j),i} along z from z-position i,
		// fused with the all-to-all broadcast of A along x.
		opB := collective.On(nd, g.ZChain(i, j)).NewBcast(2, i, big, big, bSlab)
		opA := xc.NewAllGather(3, aIn[nd.ID])
		collective.Run(opB, opA)
		bAll, aAll := opB.Result(), opA.Result()

		nd.NoteWords(bAll.Words() + big*small*q + big*big)

		// Compute I_{k,i} = sum_l A_{k,f(l,j)} x B_{f(l,j),i}.
		islab := matrix.New(big, big)
		for l := 0; l < q; l++ {
			nd.MulAdd(islab, aAll[l], bAll.RowGroup(q, l))
		}

		// Phase 3: all-to-all reduction along y: send column group l of
		// I_{k,i} toward y-position l; receive and sum the pieces for
		// our own y-position, yielding C_{k,f(i,j)}.
		pieces := make([]*matrix.Dense, q)
		for l := 0; l < q; l++ {
			pieces[l] = islab.ColGroup(q, l)
		}
		out[nd.ID] = collective.On(nd, g.YChain(i, k)).ReduceScatter(4, pieces)
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < q; k++ {
				C.SetGridBlock(q, q*q, k, matrix.F(q, i, j), out[g.Node(i, j, k)])
			}
		}
	}
	return C, stats, nil
}

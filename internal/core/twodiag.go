package core

import (
	"hypermm/internal/algorithms"
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// TwoDiag is the 2-D Diagonal algorithm (Section 4.1.1, Algorithm 2) on
// a q x q mesh with p = q^2. The diagonal processor p_{j,j} initially
// holds the j-th column group of A and the j-th row group of B; the
// processor column p_{*,j} computes their outer product.
//
// Phase 1: p_{j,j} scatters its B rows by column groups down processor
// column j (one-to-all personalized broadcast) and broadcasts its A
// column group (one-to-all broadcast); on a multi-port machine the two
// overlap. Each p_{k,j} then computes the k-th column group of the
// outer product. Phase 2 reduces along processor rows onto the
// diagonal, leaving C distributed exactly like A — column group k on
// p_{k,k}.
func TwoDiag(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := algorithms.Grid2DFor(m, n)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q

	// Initial distribution (free): diagonal processor p_{j,j} holds
	// A's and B's j-th groups.
	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for j := 0; j < q; j++ {
		id := g.Node(j, j)
		aIn[id] = A.ColGroup(q, j) // n x n/q
		bIn[id] = B.RowGroup(q, j) // n/q x n
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := g.Coords(nd.ID)
		col := collective.On(nd, g.ColChain(j))

		// Phase 1 (down column j, root = diagonal position j):
		// scatter B_{j,*} by column groups and broadcast A_{*,j}.
		var bPieces []*matrix.Dense
		if i == j {
			bPieces = make([]*matrix.Dense, q)
			for k := 0; k < q; k++ {
				bPieces[k] = bIn[nd.ID].ColGroup(q, k) // B_{j,k}: n/q x n/q
			}
		}
		scat := col.NewScatter(1, j, n/q, n/q, bPieces)
		bc := col.NewBcast(2, j, n, n/q, aIn[nd.ID])
		collective.Run(scat, bc)
		bPiece, aCol := scat.Result(), bc.Result()

		nd.NoteWords(aCol.Words() + bPiece.Words() + aCol.Words())

		// Local outer-product slice: column group i of A_{*,j} B_{j,*}.
		islice := nd.Mul(aCol, bPiece) // n x n/q

		// Phase 2: reduce along row i onto the diagonal p_{i,i}.
		row := collective.On(nd, g.RowChain(i))
		c := row.Reduce(3, i, islice)
		if i == j {
			out[nd.ID] = c // column group i of C
		}
	})
	if err != nil {
		return nil, stats, err
	}

	cols := make([]*matrix.Dense, q)
	for j := 0; j < q; j++ {
		cols[j] = out[g.Node(j, j)]
	}
	return matrix.ConcatCols(cols...), stats, nil
}

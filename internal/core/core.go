// Package core implements the paper's contribution: the new
// communication-efficient matrix-multiplication algorithms of Section 4
// — the 2-D Diagonal algorithm (Algorithm 2), the 3-D Diagonal
// algorithm (Algorithm 3), the 3-D All_Trans algorithm (Algorithm 4),
// and the 3-D All algorithm (Algorithm 5).
//
// All four follow the same contract as the baselines in
// internal/algorithms: the initial distribution the paper assumes is
// materialized for free, the algorithm's communication and computation
// run on the simulated hypercube and are charged to its clock, and the
// result is collected for free and returned assembled.
//
// Headline results (the paper's Table 2, one-port):
//
//	3DD:    t_s (4/3) log p + t_w (n^2/p^(2/3)) (4/3) log p
//	3D All: t_s (4/3) log p + t_w (n^2/p^(2/3)) (3(1-1/cbrt p) + log p/(6 cbrt p))
//
// making 3D All the cheapest algorithm wherever it applies
// (p <= n^(3/2), p >= 8) and 3DD the only algorithm for n^2 < p <= n^3.
package core

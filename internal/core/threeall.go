package core

import (
	"fmt"

	"hypermm/internal/algorithms"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// ThreeAll is the 3-D All algorithm (Section 4.2.2, Algorithm 5) — the
// paper's headline contribution, applicable for p <= n^(3/2). Unlike
// 3-D All_Trans it starts from *identical* distributions of A and B:
// processor p_{i,j,k} holds A_{k,f(i,j)} and B_{k,f(i,j)} with both
// operands partitioned as in Figure 8, and it finishes with even lower
// communication overhead.
//
// Phase 1 is an all-to-all personalized communication along y: p_{i,j,k}
// sends the l-th row group of its B block to p_{i,l,k}. The pieces each
// node receives assemble (the paper's proof of correctness, verified in
// this package's tests) into B_{f(k,j),i} of the Figure-9 partition.
// Phase 2 all-to-all broadcasts the new B blocks along z and the A
// blocks along x (overlapped on multi-port). Each processor computes
// I_{k,i} = sum_m A_{k,f(m,j)} B_{f(m,j),i}, and phase 3 is an
// all-to-all reduction along y that leaves C_{k,f(i,j)} distributed
// exactly like the operands.
//
// One-port cost (Table 2):
//
//	t_s (4/3) log p + t_w (n^2/p^(2/3)) (3(1-1/cbrt p) + log p/(6 cbrt p))
//
// the least communication overhead of all algorithms wherever it
// applies, for every p >= 8.
func ThreeAll(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := algorithms.CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := algorithms.Grid3DFor(m, n, true)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	// The cube is the Q x qy x Q grid with qy = Q = cbrt(p); the grid
	// implementation with that shape is bit-for-bit the paper's
	// Algorithm 5 (asserted in tests).
	return ThreeAllGrid(m, A, B, g.Q)
}

// ThreeAllRepeated computes A^(2^rounds) by repeated squaring entirely
// on the machine: because 3-D All leaves its result distributed exactly
// like its operands (the property the paper emphasizes), successive
// rounds chain with zero redistribution — the output blocks of one
// round are the input blocks of the next.
func ThreeAllRepeated(m *simnet.Machine, A *matrix.Dense, rounds int) (*matrix.Dense, simnet.RunStats, error) {
	if rounds < 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("core: negative round count %d", rounds)
	}
	n, err := algorithms.CheckSquareOperands(A, A)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g3, err := algorithms.Grid3DFor(m, n, true)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := newRectGrid(m.P(), g3.Q)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g3.Q

	in := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < q; k++ {
				in[g.node(i, j, k)] = A.GridBlock(q, q*q, k, matrix.F(q, i, j))
			}
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		x := in[nd.ID]
		for r := 0; r < rounds; r++ {
			// A and B are the same distributed matrix: squaring.
			x = threeAllGridRound(nd, g, x, x, uint64(r)*16)
		}
		out[nd.ID] = x
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			for k := 0; k < q; k++ {
				C.SetGridBlock(q, q*q, k, matrix.F(q, i, j), out[g.node(i, j, k)])
			}
		}
	}
	return C, stats, nil
}

package server

import (
	"errors"
	"testing"

	"hypermm"
)

func TestPlanAutoMatchesBestAlgorithm(t *testing.T) {
	pl := NewPlanner(64)
	for _, pm := range []hypermm.PortModel{hypermm.OnePort, hypermm.MultiPort} {
		for _, n := range []float64{32, 256, 4096} {
			for _, p := range []float64{8, 64, 1024} {
				plan, err := pl.Plan(PlanRequest{N: n, P: p, Ts: 150, Tw: 3, Tc: 0.5, Ports: pm})
				want, ok := hypermm.BestAlgorithm(n, p, 150, 3, pm)
				if !ok {
					if err == nil {
						t.Errorf("n=%g p=%g %v: planner found %s where BestAlgorithm found none", n, p, pm, plan.AlgorithmName)
					}
					continue
				}
				if err != nil {
					t.Errorf("n=%g p=%g %v: %v", n, p, pm, err)
					continue
				}
				if plan.Algorithm != want || !plan.Auto {
					t.Errorf("n=%g p=%g %v: plan chose %s, BestAlgorithm says %s", n, p, pm, plan.AlgorithmName, want.Name())
				}
				if plan.PredictedTime != plan.CommTime+plan.ComputeTime {
					t.Errorf("predicted time %g != comm %g + compute %g", plan.PredictedTime, plan.CommTime, plan.ComputeTime)
				}
				if len(plan.Candidates) == 0 {
					t.Error("plan has no candidate diagnostics")
				}
			}
		}
	}
}

func TestPlanExplicitAlgorithm(t *testing.T) {
	pl := NewPlanner(8)
	alg := hypermm.Cannon
	plan, err := pl.Plan(PlanRequest{N: 64, P: 16, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort, Alg: &alg})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != hypermm.Cannon || plan.Auto {
		t.Errorf("explicit plan = %s auto=%v", plan.AlgorithmName, plan.Auto)
	}
	a, b, _ := hypermm.Overhead(hypermm.Cannon, 64, 16, hypermm.OnePort)
	if plan.A != a || plan.B != b {
		t.Errorf("overheads (%g, %g), want Table 2's (%g, %g)", plan.A, plan.B, a, b)
	}

	// Inapplicable explicit algorithm: Berntsen needs p <= n^1.5.
	bern := hypermm.Berntsen
	if _, err := pl.Plan(PlanRequest{N: 16, P: 1024, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort, Alg: &bern}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("inapplicable explicit plan: err = %v, want ErrInapplicable", err)
	}
}

func TestPlanNoneApplicable(t *testing.T) {
	pl := NewPlanner(8)
	if _, err := pl.Plan(PlanRequest{N: 4, P: 128, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort}); !errors.Is(err, ErrInapplicable) {
		t.Errorf("err = %v, want ErrInapplicable", err)
	}
}

func TestPlanBadRequest(t *testing.T) {
	pl := NewPlanner(8)
	for _, req := range []PlanRequest{
		{N: 0, P: 16, Ts: 150, Tw: 3},
		{N: 64, P: -1, Ts: 150, Tw: 3},
		{N: 64, P: 16, Ts: -1, Tw: 3},
	} {
		if _, err := pl.Plan(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Plan(%+v): err = %v, want ErrBadRequest", req, err)
		}
	}
}

func TestPlanAutoMachineSize(t *testing.T) {
	// P = 0: the planner also picks the machine size with the least
	// predicted total time; the choice must beat (or match) every other
	// power of two in range.
	pl := NewPlanner(8)
	plan, err := pl.Plan(PlanRequest{N: 256, P: 0, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort})
	if err != nil {
		t.Fatal(err)
	}
	if plan.P < 2 || plan.P > MaxAutoP {
		t.Fatalf("auto-p chose p=%g outside [2, %d]", plan.P, MaxAutoP)
	}
	for p := 2.0; p <= MaxAutoP; p *= 2 {
		if alg, ok := hypermm.BestAlgorithm(256, p, 150, 3, hypermm.OnePort); ok {
			comm, _ := hypermm.CommTime(alg, 256, p, 150, 3, hypermm.OnePort)
			total := comm + hypermm.ComputeTime(256, p, 0.5)
			if total < plan.PredictedTime {
				t.Errorf("p=%g beats the planner's p=%g (%g < %g)", p, plan.P, total, plan.PredictedTime)
			}
		}
	}
}

func TestPlanCacheLRU(t *testing.T) {
	pl := NewPlanner(2)
	req := func(n float64) PlanRequest {
		return PlanRequest{N: n, P: 64, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort}
	}
	for _, n := range []float64{64, 64, 64} {
		if _, err := pl.Plan(req(n)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, entries := pl.CacheStats()
	if entries != 1 {
		t.Errorf("entries=%d, want 1", entries)
	}
	if hits != 2 || misses != 1 {
		t.Errorf("after 3 identical plans: hits=%d misses=%d, want 2/1", hits, misses)
	}
	// Two new keys evict n=64 from a capacity-2 cache.
	if _, err := pl.Plan(req(128)); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(req(256)); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Plan(req(64)); err != nil {
		t.Fatal(err)
	}
	hits, misses, entries = pl.CacheStats()
	if entries != 2 {
		t.Errorf("entries=%d, want 2 (capacity)", entries)
	}
	if hits != 2 || misses != 4 {
		t.Errorf("after eviction: hits=%d misses=%d, want 2/4", hits, misses)
	}
	// The cached plan must be a copy: mutating a returned plan cannot
	// poison later reads.
	p1, _ := pl.Plan(req(64))
	p1.AlgorithmName = "mutated"
	p1.Candidates[0].Algorithm = "mutated"
	p2, _ := pl.Plan(req(64))
	if p2.AlgorithmName == "mutated" || p2.Candidates[0].Algorithm == "mutated" {
		t.Error("cache returned a shared, mutable plan")
	}
}

func TestPlanConcurrent(t *testing.T) {
	// Hammer one planner from many goroutines; the race detector vets
	// the locking, we vet the answers.
	pl := NewPlanner(4)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				n := float64(int(32) << (i % 3))
				plan, err := pl.Plan(PlanRequest{N: n, P: 64, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort})
				if err != nil {
					done <- err
					return
				}
				if want, _ := hypermm.BestAlgorithm(n, 64, 150, 3, hypermm.OnePort); plan.Algorithm != want {
					done <- errors.New("concurrent plan mismatch")
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

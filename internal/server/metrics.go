package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hypermm"
	"hypermm/internal/cluster"
	"hypermm/internal/qos"
)

// Metrics is the hmmd observability registry. It is hand-rolled — the
// container carries no Prometheus client library — but renders the
// standard text exposition format, so any Prometheus scraper can
// consume /metrics. Safe for concurrent use.
type Metrics struct {
	mu          sync.Mutex
	queueDepth  int64
	inflight    int64
	calibration int64 // 1 when a calibration profile is loaded
	jobsByAlg   map[string]int64
	rejects     int64
	errsByKind  map[string]int64
	latency     *Histogram            // wall-clock seconds per job
	ratio       *Histogram            // simulated elapsed / predicted time
	stages      map[string]*Histogram // per-stage wall seconds (hmmd_stage_seconds)
}

// stageBuckets suit the per-stage breakdown: plan-cache lookups run in
// microseconds, pool checkouts and queue waits in micro-to-milliseconds,
// simulated runs and cluster dispatches up to seconds.
var stageBuckets = []float64{1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, .01, .05, .1, .5, 1, 5}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		jobsByAlg:  map[string]int64{},
		errsByKind: map[string]int64{},
		// Wall-clock latency: sub-millisecond small jobs through
		// multi-second big ones.
		latency: NewHistogram([]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}),
		// Simulated-vs-predicted time: centered on 1.0 (model exact).
		ratio:  NewHistogram([]float64{.5, .75, .9, .95, 1, 1.05, 1.1, 1.25, 1.5, 2, 4}),
		stages: map[string]*Histogram{},
	}
}

// StageObserve records one request's time in a named pipeline stage
// ("handler", "plan", "admission", "queue", "pool_checkout", "run",
// "dispatch", ...) for the hmmd_stage_seconds histogram family — the
// per-stage decomposition of job latency.
func (m *Metrics) StageObserve(stage string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		h = NewHistogram(stageBuckets)
		m.stages[stage] = h
	}
	h.Observe(d.Seconds())
	m.mu.Unlock()
}

// StageCount reads the sample count of one stage histogram (0 when the
// stage has never been observed).
func (m *Metrics) StageCount(stage string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.stages[stage]; ok {
		return h.Count()
	}
	return 0
}

// QueueAdd shifts the queue-depth gauge by d.
func (m *Metrics) QueueAdd(d int64) { m.mu.Lock(); m.queueDepth += d; m.mu.Unlock() }

// InflightAdd shifts the in-flight gauge by d.
func (m *Metrics) InflightAdd(d int64) { m.mu.Lock(); m.inflight += d; m.mu.Unlock() }

// QueueDepth reads the queue-depth gauge.
func (m *Metrics) QueueDepth() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.queueDepth }

// SetCalibrationLoaded records whether a calibration profile is
// driving the planner (the hmmd_calibration_loaded gauge).
func (m *Metrics) SetCalibrationLoaded(loaded bool) {
	m.mu.Lock()
	if loaded {
		m.calibration = 1
	} else {
		m.calibration = 0
	}
	m.mu.Unlock()
}

// JobDone records one completed job: its algorithm, wall-clock latency
// and simulated-vs-predicted time ratio.
func (m *Metrics) JobDone(alg string, wall time.Duration, ratio float64) {
	m.mu.Lock()
	m.jobsByAlg[alg]++
	m.latency.Observe(wall.Seconds())
	if ratio > 0 {
		m.ratio.Observe(ratio)
	}
	m.mu.Unlock()
}

// Reject records one admission-control rejection.
func (m *Metrics) Reject() { m.mu.Lock(); m.rejects++; m.mu.Unlock() }

// Rejects reads the rejection counter.
func (m *Metrics) Rejects() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.rejects }

// JobError records one failed job by error kind ("link_down",
// "deadline", "run", ...).
func (m *Metrics) JobError(kind string) { m.mu.Lock(); m.errsByKind[kind]++; m.mu.Unlock() }

// Jobs returns the per-algorithm completion counts (a copy).
func (m *Metrics) Jobs() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.jobsByAlg))
	for k, v := range m.jobsByAlg {
		out[k] = v
	}
	return out
}

// LatencyQuantile returns the approximate q-quantile (0 < q < 1) of job
// wall-clock latency in seconds.
func (m *Metrics) LatencyQuantile(q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.latency.Quantile(q)
}

// Render writes the Prometheus text exposition. The cache counters
// come from the planner, the machine-pool counters from the pool, the
// cluster family from the coordinator (cl nil when serving standalone),
// and the hmmd_qos_* family from the scheduler's tenant registry (qs
// nil when no QoS policy is loaded), so the registry stays a passive
// sink.
func (m *Metrics) Render(cacheHits, cacheMisses, cacheEntries int64, pool hypermm.PoolStats, cl *cluster.Stats, qs []qos.TenantStats) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sb strings.Builder

	fmt.Fprintf(&sb, "# HELP hmmd_queue_depth Jobs waiting in the scheduler queue.\n# TYPE hmmd_queue_depth gauge\nhmmd_queue_depth %d\n", m.queueDepth)
	fmt.Fprintf(&sb, "# HELP hmmd_inflight_jobs Jobs currently executing.\n# TYPE hmmd_inflight_jobs gauge\nhmmd_inflight_jobs %d\n", m.inflight)
	fmt.Fprintf(&sb, "# HELP hmmd_calibration_loaded Whether a measurement-fitted calibration profile drives the planner.\n# TYPE hmmd_calibration_loaded gauge\nhmmd_calibration_loaded %d\n", m.calibration)

	sb.WriteString("# HELP hmmd_jobs_total Completed jobs by algorithm.\n# TYPE hmmd_jobs_total counter\n")
	for _, alg := range sortedKeys(m.jobsByAlg) {
		fmt.Fprintf(&sb, "hmmd_jobs_total{algorithm=%q} %d\n", alg, m.jobsByAlg[alg])
	}

	fmt.Fprintf(&sb, "# HELP hmmd_rejects_total Jobs rejected by admission control.\n# TYPE hmmd_rejects_total counter\nhmmd_rejects_total %d\n", m.rejects)

	sb.WriteString("# HELP hmmd_job_errors_total Failed jobs by error kind.\n# TYPE hmmd_job_errors_total counter\n")
	for _, kind := range sortedKeys(m.errsByKind) {
		fmt.Fprintf(&sb, "hmmd_job_errors_total{kind=%q} %d\n", kind, m.errsByKind[kind])
	}

	fmt.Fprintf(&sb, "# HELP hmmd_plan_cache_hits_total Planner LRU cache hits.\n# TYPE hmmd_plan_cache_hits_total counter\nhmmd_plan_cache_hits_total %d\n", cacheHits)
	fmt.Fprintf(&sb, "# HELP hmmd_plan_cache_misses_total Planner LRU cache misses.\n# TYPE hmmd_plan_cache_misses_total counter\nhmmd_plan_cache_misses_total %d\n", cacheMisses)
	fmt.Fprintf(&sb, "# HELP hmmd_plan_cache_entries Plans currently resident in the LRU cache.\n# TYPE hmmd_plan_cache_entries gauge\nhmmd_plan_cache_entries %d\n", cacheEntries)

	fmt.Fprintf(&sb, "# HELP hmmd_machine_pool_hits_total Jobs served by a warm pooled machine.\n# TYPE hmmd_machine_pool_hits_total counter\nhmmd_machine_pool_hits_total %d\n", pool.Hits)
	fmt.Fprintf(&sb, "# HELP hmmd_machine_pool_misses_total Jobs that had to build a machine.\n# TYPE hmmd_machine_pool_misses_total counter\nhmmd_machine_pool_misses_total %d\n", pool.Misses)
	fmt.Fprintf(&sb, "# HELP hmmd_machine_pool_size Idle warm machines currently pooled.\n# TYPE hmmd_machine_pool_size gauge\nhmmd_machine_pool_size %d\n", pool.Size)

	if cl != nil {
		live := 0
		for _, w := range cl.Workers {
			if !w.Draining {
				live++
			}
		}
		fmt.Fprintf(&sb, "# HELP hmmd_cluster_workers Registered non-draining cluster workers.\n# TYPE hmmd_cluster_workers gauge\nhmmd_cluster_workers %d\n", live)
		fmt.Fprintf(&sb, "# HELP hmmd_cluster_dispatches_total Job frames sent to workers.\n# TYPE hmmd_cluster_dispatches_total counter\nhmmd_cluster_dispatches_total %d\n", cl.Dispatched)
		fmt.Fprintf(&sb, "# HELP hmmd_cluster_completed_total Jobs answered cleanly by workers.\n# TYPE hmmd_cluster_completed_total counter\nhmmd_cluster_completed_total %d\n", cl.Completed)
		fmt.Fprintf(&sb, "# HELP hmmd_cluster_failovers_total Re-dispatches after a worker died mid-job.\n# TYPE hmmd_cluster_failovers_total counter\nhmmd_cluster_failovers_total %d\n", cl.Failovers)
		fmt.Fprintf(&sb, "# HELP hmmd_cluster_busy_retries_total Re-dispatches after a busy answer.\n# TYPE hmmd_cluster_busy_retries_total counter\nhmmd_cluster_busy_retries_total %d\n", cl.BusyRetries)
		sb.WriteString("# HELP hmmd_cluster_worker_jobs_total Cleanly completed jobs by worker.\n# TYPE hmmd_cluster_worker_jobs_total counter\n")
		for _, w := range cl.Workers {
			fmt.Fprintf(&sb, "hmmd_cluster_worker_jobs_total{worker=%q} %d\n", w.Name, w.Jobs)
		}
		sb.WriteString("# HELP hmmd_cluster_worker_inflight Dispatched, unanswered jobs by worker.\n# TYPE hmmd_cluster_worker_inflight gauge\n")
		for _, w := range cl.Workers {
			fmt.Fprintf(&sb, "hmmd_cluster_worker_inflight{worker=%q} %d\n", w.Name, w.Inflight)
		}
		sb.WriteString("# HELP hmmd_cluster_worker_breaker_open Circuit breaker state by worker (1 open or half-open, 0 closed).\n# TYPE hmmd_cluster_worker_breaker_open gauge\n")
		for _, w := range cl.Workers {
			open := 0
			if w.Breaker != cluster.BreakerClosed {
				open = 1
			}
			fmt.Fprintf(&sb, "hmmd_cluster_worker_breaker_open{worker=%q} %d\n", w.Name, open)
		}
	}

	if len(qs) > 0 {
		qosGauge := func(name, help string, val func(qos.TenantStats) string) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, t := range qs {
				fmt.Fprintf(&sb, "%s{tenant=%q} %s\n", name, t.Name, val(t))
			}
		}
		qosCounter := func(name, help string, val func(qos.TenantStats) int64) {
			fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, t := range qs {
				fmt.Fprintf(&sb, "%s{tenant=%q} %d\n", name, t.Name, val(t))
			}
		}
		qosGauge("hmmd_qos_queue_depth", "Queued jobs by tenant.",
			func(t qos.TenantStats) string { return strconv.Itoa(t.Queued) })
		qosGauge("hmmd_qos_inflight", "Executing jobs by tenant.",
			func(t qos.TenantStats) string { return strconv.Itoa(t.Inflight) })
		qosCounter("hmmd_qos_jobs_total", "Completed jobs by tenant.",
			func(t qos.TenantStats) int64 { return t.Jobs })
		qosCounter("hmmd_qos_sheds_total", "Queued jobs evicted under overload by tenant.",
			func(t qos.TenantStats) int64 { return t.Sheds })
		qosCounter("hmmd_qos_quota_rejects_total", "Jobs refused on an exhausted token bucket by tenant.",
			func(t qos.TenantStats) int64 { return t.QuotaRejects })
		qosCounter("hmmd_qos_infeasible_total", "Jobs refused because predicted time exceeded their deadline, by tenant.",
			func(t qos.TenantStats) int64 { return t.Infeasible })
		qosGauge("hmmd_qos_tokens", "Token-bucket balance in predicted-cost units by tenant.",
			func(t qos.TenantStats) string { return formatFloat(t.Tokens) })
		qosGauge("hmmd_qos_debt", "Token-bucket overdraft in predicted-cost units by tenant.",
			func(t qos.TenantStats) string { return formatFloat(t.Debt) })
	}

	if len(m.stages) > 0 {
		sb.WriteString("# HELP hmmd_stage_seconds Per-stage wall-clock latency decomposition of the serving path.\n# TYPE hmmd_stage_seconds histogram\n")
		stageNames := make([]string, 0, len(m.stages))
		for name := range m.stages {
			stageNames = append(stageNames, name)
		}
		sort.Strings(stageNames)
		for _, stage := range stageNames {
			m.stages[stage].renderLabeled(&sb, "hmmd_stage_seconds", "stage", stage)
		}
	}

	m.latency.render(&sb, "hmmd_job_latency_seconds", "Job wall-clock latency in seconds.")
	fmt.Fprintf(&sb, "# HELP hmmd_job_latency_quantile_seconds Approximate latency quantiles from the histogram.\n# TYPE hmmd_job_latency_quantile_seconds gauge\n")
	for _, q := range []float64{0.5, 0.99} {
		fmt.Fprintf(&sb, "hmmd_job_latency_quantile_seconds{q=%q} %s\n",
			strconv.FormatFloat(q, 'g', -1, 64), formatFloat(m.latency.Quantile(q)))
	}

	m.ratio.render(&sb, "hmmd_sim_predicted_ratio", "Simulated elapsed time over the planner's predicted time.")
	return sb.String()
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative bucket counts plus sum and count. Not safe for concurrent
// use on its own; Metrics serializes access.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []int64   // per-bucket (non-cumulative), len(bounds)+1
	sum    float64
	count  int64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Quantile returns the approximate q-quantile, interpolated within the
// bucket that contains it. Returns 0 with no samples; samples beyond
// the last bound report that bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i == len(h.bounds) { // overflow bucket: report last bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(prev)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) render(sb *strings.Builder, name, help string) {
	fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(sb, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(sb, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(sb, "%s_sum %s\n", name, formatFloat(h.sum))
	fmt.Fprintf(sb, "%s_count %d\n", name, h.count)
}

// renderLabeled is render for one series of a labeled histogram family;
// HELP/TYPE headers are the caller's job (emitted once per family).
func (h *Histogram) renderLabeled(sb *strings.Builder, name, labelKey, labelVal string) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(sb, "%s_bucket{%s=%q,le=%q} %d\n", name, labelKey, labelVal, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(sb, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, labelKey, labelVal, cum)
	fmt.Fprintf(sb, "%s_sum{%s=%q} %s\n", name, labelKey, labelVal, formatFloat(h.sum))
	fmt.Fprintf(sb, "%s_count{%s=%q} %d\n", name, labelKey, labelVal, h.count)
}

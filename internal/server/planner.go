// Package server is the hmmd serving subsystem: a planner that wraps
// the paper's Table-2 cost model behind an LRU plan cache, a bounded
// job scheduler with admission control that executes multiplications on
// the simulated hypercube, Prometheus-text metrics, and the HTTP/JSON
// handlers that tie them together. cmd/hmmd is the thin daemon around
// it.
package server

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"hypermm"
)

// Typed planner errors, mapped to HTTP statuses by the handlers.
var (
	// ErrInapplicable reports that no candidate algorithm (or the
	// explicitly requested one) can run the problem at (n, p) under the
	// paper's Table 3 conditions.
	ErrInapplicable = errors.New("server: no applicable algorithm at (n, p)")
	// ErrBadRequest reports invalid planning parameters.
	ErrBadRequest = errors.New("server: invalid plan parameters")
)

// PlanRequest asks the planner which algorithm to run and what it will
// cost. P = 0 asks the planner to also pick the cheapest power-of-two
// machine size.
type PlanRequest struct {
	N     float64
	P     float64 // 0: search powers of two up to MaxAutoP
	Ts    float64
	Tw    float64
	Tc    float64
	Ports hypermm.PortModel
	// Alg, when non-nil, forces the algorithm instead of choosing the
	// Table-2 winner.
	Alg *hypermm.Algorithm
}

// Candidate is the per-algorithm diagnostic row of a plan: why each
// member of the comparison set was or was not chosen.
type Candidate struct {
	Algorithm  string  `json:"algorithm"`
	Applicable bool    `json:"applicable"`
	A          float64 `json:"a,omitempty"`
	B          float64 `json:"b,omitempty"`
	CommTime   float64 `json:"comm_time,omitempty"`
	TotalTime  float64 `json:"total_time,omitempty"`
}

// Plan is the planner's verdict: the chosen algorithm, its predicted
// Table-2 overheads and times, and applicability diagnostics for the
// whole candidate set.
type Plan struct {
	Algorithm     hypermm.Algorithm `json:"-"`
	AlgorithmName string            `json:"algorithm"`
	Auto          bool              `json:"auto"`
	N             float64           `json:"n"`
	P             float64           `json:"p"`
	Ports         string            `json:"ports"`
	A             float64           `json:"a"`
	B             float64           `json:"b"`
	CommTime      float64           `json:"comm_time"`
	ComputeTime   float64           `json:"compute_time"`
	PredictedTime float64           `json:"predicted_time"`
	Efficiency    float64           `json:"efficiency,omitempty"`
	SpaceWords    float64           `json:"space_words,omitempty"`
	Aligned       bool              `json:"aligned"`
	// Calibrated reports whether PredictedTime (and the algorithm
	// choice) came from a measurement-fitted calibration profile; when
	// true, UncalibratedTime preserves the raw Table-2 prediction for
	// comparison.
	Calibrated       bool        `json:"calibrated"`
	UncalibratedTime float64     `json:"uncalibrated_time,omitempty"`
	Candidates       []Candidate `json:"candidates,omitempty"`
}

// MaxAutoP bounds the planner's machine-size search when P = 0.
const MaxAutoP = 1 << 16

// planKey is the comparable cache key; alg is -1 for auto.
type planKey struct {
	n, p, ts, tw, tc float64
	ports            hypermm.PortModel
	alg              int
}

// Planner evaluates plans and caches them. Safe for concurrent use.
type Planner struct {
	// model, when non-nil, is the loaded calibration: predicted times
	// come from the measurement-fitted model instead of the raw Table 2
	// expressions, and plans are marked Calibrated. Set before serving
	// (WithCalibration); immutable afterwards, so cache entries never
	// mix models.
	model *hypermm.CalibratedModel

	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recent; values are *planEntry
	index map[planKey]*list.Element
	hits  int64
	miss  int64
}

type planEntry struct {
	key  planKey
	plan *Plan
}

// NewPlanner returns a planner with an LRU cache of the given capacity
// (minimum 1).
func NewPlanner(cacheSize int) *Planner {
	if cacheSize < 1 {
		cacheSize = 1
	}
	return &Planner{cap: cacheSize, lru: list.New(), index: map[planKey]*list.Element{}}
}

// WithCalibration installs a measurement-fitted cost model: every
// subsequent plan predicts with it and is marked Calibrated. Call
// before serving; the planner does not support swapping models under a
// warm cache.
func (pl *Planner) WithCalibration(m *hypermm.CalibratedModel) *Planner {
	pl.model = m
	return pl
}

// Calibrated reports whether a calibration model is installed.
func (pl *Planner) Calibrated() bool { return pl.model != nil }

// CacheStats returns cumulative hit and miss counts plus the current
// number of cached entries.
func (pl *Planner) CacheStats() (hits, misses, entries int64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.hits, pl.miss, int64(pl.lru.Len())
}

// Plan answers the request, from cache when possible. The returned Plan
// is a copy the caller may keep.
func (pl *Planner) Plan(req PlanRequest) (*Plan, error) {
	if req.N < 1 || req.P < 0 || req.Ts < 0 || req.Tw < 0 || req.Tc < 0 {
		return nil, fmt.Errorf("%w: n=%g p=%g ts=%g tw=%g tc=%g",
			ErrBadRequest, req.N, req.P, req.Ts, req.Tw, req.Tc)
	}
	key := planKey{n: req.N, p: req.P, ts: req.Ts, tw: req.Tw, tc: req.Tc, ports: req.Ports, alg: -1}
	if req.Alg != nil {
		key.alg = int(*req.Alg)
	}

	pl.mu.Lock()
	if el, ok := pl.index[key]; ok {
		pl.lru.MoveToFront(el)
		pl.hits++
		plan := clonePlan(el.Value.(*planEntry).plan)
		pl.mu.Unlock()
		return plan, nil
	}
	pl.miss++
	pl.mu.Unlock()

	plan, err := pl.evaluate(req)
	if err != nil {
		return nil, err
	}

	pl.mu.Lock()
	if el, ok := pl.index[key]; ok {
		pl.lru.MoveToFront(el) // raced with another evaluator; keep theirs
	} else {
		pl.index[key] = pl.lru.PushFront(&planEntry{key: key, plan: clonePlan(plan)})
		for pl.lru.Len() > pl.cap {
			old := pl.lru.Back()
			delete(pl.index, old.Value.(*planEntry).key)
			pl.lru.Remove(old)
		}
	}
	pl.mu.Unlock()
	return plan, nil
}

func clonePlan(p *Plan) *Plan {
	cp := *p
	cp.Candidates = append([]Candidate(nil), p.Candidates...)
	return &cp
}

// evaluate computes a plan from the cost model — calibrated when the
// planner has a profile loaded — uncached.
func (pl *Planner) evaluate(req PlanRequest) (*Plan, error) {
	if req.P == 0 {
		return pl.evaluateAutoP(req)
	}
	n, p := req.N, req.P
	var chosen hypermm.Algorithm
	auto := req.Alg == nil
	if auto {
		// A nil model's BestAlgorithm is exactly hypermm.BestAlgorithm,
		// so the calibrated and uncalibrated paths share one call.
		best, ok := pl.model.BestAlgorithm(n, p, req.Ts, req.Tw, req.Ports)
		if !ok {
			return nil, fmt.Errorf("%w: n=%g p=%g", ErrInapplicable, n, p)
		}
		chosen = best
	} else {
		chosen = *req.Alg
		if !hypermm.Applicable(chosen, n, p) {
			return nil, fmt.Errorf("%w: %v at n=%g p=%g", ErrInapplicable, chosen, n, p)
		}
	}

	a, b, _ := hypermm.Overhead(chosen, n, p, req.Ports)
	comm, _ := pl.model.CommTime(chosen, n, p, req.Ts, req.Tw, req.Ports)
	comp := hypermm.ComputeTime(n, p, req.Tc)
	plan := &Plan{
		Algorithm:     chosen,
		AlgorithmName: chosen.Name(),
		Auto:          auto,
		N:             n,
		P:             p,
		Ports:         req.Ports.String(),
		A:             a,
		B:             b,
		CommTime:      comm,
		ComputeTime:   comp,
		PredictedTime: comm + comp,
		Aligned:       hypermm.Aligned(chosen),
		Calibrated:    pl.model != nil,
	}
	if pl.model != nil {
		raw, _ := hypermm.CommTime(chosen, n, p, req.Ts, req.Tw, req.Ports)
		plan.UncalibratedTime = raw + comp
	}
	if e, ok := hypermm.Efficiency(chosen, n, p, req.Ts, req.Tw, req.Tc, req.Ports); ok {
		plan.Efficiency = e
	}
	if s, ok := hypermm.Space(chosen, n, p); ok {
		plan.SpaceWords = s
	}
	for _, c := range hypermm.Candidates(req.Ports) {
		d := Candidate{Algorithm: c.Name(), Applicable: hypermm.Applicable(c, n, p)}
		if d.Applicable {
			d.A, d.B, _ = hypermm.Overhead(c, n, p, req.Ports)
			d.CommTime, _ = pl.model.CommTime(c, n, p, req.Ts, req.Tw, req.Ports)
			d.TotalTime = d.CommTime + hypermm.ComputeTime(n, p, req.Tc)
		}
		plan.Candidates = append(plan.Candidates, d)
	}
	return plan, nil
}

// evaluateAutoP searches machine sizes p = 2, 4, ..., MaxAutoP for the
// plan with the least predicted total time.
func (pl *Planner) evaluateAutoP(req PlanRequest) (*Plan, error) {
	var best *Plan
	for p := 2.0; p <= MaxAutoP; p *= 2 {
		sub := req
		sub.P = p
		plan, err := pl.evaluate(sub)
		if err != nil {
			continue
		}
		if best == nil || plan.PredictedTime < best.PredictedTime {
			best = plan
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: n=%g over p in [2, %d]", ErrInapplicable, req.N, MaxAutoP)
	}
	return best, nil
}

package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypermm"
	"hypermm/internal/obs"
)

// BenchmarkServe_* measures steady-state serving throughput over the
// full HTTP path (JSON decode, plan, arena operands, simulated run,
// JSON encode) at the paper's p=64 machine size with a small operand,
// so per-request emulator setup — not arithmetic — dominates. The warm
// variant reuses pooled persistent machines; the cold variant builds a
// 64-goroutine machine per request (PoolSize < 0 disables pooling).
// make bench persists both as BENCH_serving.json; the warm req/s must
// stay well ahead of cold.
func benchServe(b *testing.B, poolSize int) {
	srv, err := New(Config{Workers: 1, QueueDepth: 4, PoolSize: poolSize})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			b.Error(err)
		}
	}()

	client := ts.Client()
	post := func() {
		resp, err := client.Post(ts.URL+"/v1/matmul", "application/json",
			strings.NewReader(`{"n": 16, "p": 64}`))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post() // prime the plan cache and (when enabled) the machine pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkServe_WarmPool_P64(b *testing.B)     { benchServe(b, 2) }
func BenchmarkServe_ColdMachines_P64(b *testing.B) { benchServe(b, -1) }

// benchSched measures the same steady state below the HTTP layer:
// planner + scheduler + simulated run, so the pool's setup amortization
// is not diluted by TCP round-trips. A non-nil tracer adds the
// sched.queue and sched.run spans plus ring recording to every job —
// the Traced/Untraced pair pins that overhead under 5%.
func benchSched(b *testing.B, poolSize int, tracer *obs.Tracer) {
	m := NewMetrics()
	var pool *hypermm.MachinePool
	if poolSize > 0 {
		pool = hypermm.NewMachinePool(poolSize)
		defer pool.Close()
	}
	s := NewScheduler(1, 4, pool, m)
	s.tracer = tracer
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			b.Error(err)
		}
	}()

	pl := NewPlanner(8)
	plan, err := pl.Plan(PlanRequest{N: 16, P: 64, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort})
	if err != nil {
		b.Fatal(err)
	}
	job := Job{
		Plan: plan,
		Cfg:  hypermm.Config{P: 64, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5},
		A:    hypermm.RandomMatrix(16, 16, 1),
		B:    hypermm.RandomMatrix(16, 16, 2),
	}
	if _, err := s.Submit(context.Background(), job); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

func BenchmarkServe_SchedWarmPool_P64(b *testing.B)     { benchSched(b, 2, nil) }
func BenchmarkServe_SchedColdMachines_P64(b *testing.B) { benchSched(b, 0, nil) }

// The observability overhead pair: identical warm-pool scheduling, with
// and without span recording. Every traced job opens two spans whose
// trace rotates through a 256-trace ring, the worst realistic case.
func BenchmarkServe_SchedTraced_P64(b *testing.B) {
	benchSched(b, 2, obs.NewTracer("bench", 256))
}
func BenchmarkServe_SchedUntraced_P64(b *testing.B) { benchSched(b, 2, nil) }

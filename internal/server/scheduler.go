package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hypermm"
	"hypermm/internal/cluster"
	"hypermm/internal/obs"
	"hypermm/internal/qos"
)

// Typed scheduler errors, mapped to HTTP statuses by the handlers.
var (
	// ErrSaturated reports that the bounded queue is full (admission
	// control); the handlers answer 429.
	ErrSaturated = errors.New("server: scheduler saturated, try again later")
	// ErrDraining reports that the scheduler has stopped accepting work
	// for shutdown; the handlers answer 503.
	ErrDraining = errors.New("server: scheduler draining")
	// ErrQuota reports that the tenant's token bucket is in debt; the
	// handlers answer 429 with a Retry-After that pays the debt off.
	ErrQuota = errors.New("server: tenant quota exhausted")
	// ErrShed reports that a queued job was evicted to admit more
	// important work under overload; the handlers answer 429.
	ErrShed = errors.New("server: job shed under overload")
	// ErrInfeasible reports that the cost model predicts the job cannot
	// finish inside its own deadline, so it is refused up front instead
	// of burning a worker slot on a guaranteed 504.
	ErrInfeasible = errors.New("server: predicted time exceeds deadline")
)

// RetryAfterError decorates a rejection with how long the client
// should wait before retrying; the handlers surface it as a
// Retry-After header. Unwrap exposes the underlying rejection so
// errors.Is sees through the decoration.
type RetryAfterError struct {
	After time.Duration
	Err   error
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After.Round(time.Millisecond))
}

func (e *RetryAfterError) Unwrap() error { return e.Err }

// Job is one multiplication to execute on the simulated hypercube.
type Job struct {
	Plan   *Plan
	Cfg    hypermm.Config
	A, B   *hypermm.Matrix
	Trace  bool // capture a per-node timeline
	Verify bool // check against the serial product

	// QoS attribution. Tenant nil means "unattributed": Submit resolves
	// it to the registry's default tenant. Class orders the job across
	// tenants; EDFDeadline (simulated seconds, 0 = none) orders it
	// within the class; Cost is the predicted simulated run time the
	// tenant is charged (0 falls back to Plan.PredictedTime, then 1).
	Tenant      *qos.Tenant
	Class       qos.Class
	EDFDeadline float64
	Cost        float64
	// PreAdmitted marks a job whose quota was already debited upstream
	// (a coordinator forwarding to this worker), so the bucket is not
	// charged twice.
	PreAdmitted bool
}

// JobResult is the outcome of one executed Job.
type JobResult struct {
	Res   *hypermm.Result
	Trace *hypermm.Trace
	// Ratio is simulated elapsed time over the plan's predicted time —
	// the cost model's accuracy on this very job (0 when undefined).
	Ratio float64
	Wall  time.Duration
	Err   error
}

type task struct {
	ctx      context.Context
	job      Job
	done     chan *JobResult // buffered(1); worker posts exactly once
	enqueued time.Time       // when the task entered the queue
	qspan    *obs.Span       // queue-wait span; ended when a worker picks it up
}

// Scheduler is a bounded worker pool with QoS-aware admission: at most
// queueDepth jobs wait in a weighted-fair priority queue while workers
// execute. Submit is synchronous; Drain stops intake and finishes
// everything already admitted.
type Scheduler struct {
	stopped chan struct{} // closed when every worker has exited
	metrics *Metrics
	pool    *hypermm.MachinePool // warm machines; nil falls back to cold runs

	mu       sync.Mutex // guards queue, draining; cond is signalled under it
	cond     *sync.Cond // wakes workers on push, release, and drain
	queue    *qos.Queue
	draining bool

	// reg resolves tenants and holds their buckets and counters. It
	// defaults to a disabled registry (one default tenant, no quotas),
	// under which the queue degenerates to the pre-QoS FIFO; server.New
	// swaps in a configured registry.
	reg *qos.Registry

	// cluster, when non-nil, routes non-trace jobs to remote workers
	// instead of executing them here; the queue and worker pool still
	// bound how many cluster submissions are in flight. Trace jobs run
	// locally — per-node timelines don't travel the wire.
	cluster *cluster.Coordinator

	// tracer, when non-nil, wraps every pipeline stage — queue wait,
	// local run, cluster dispatch — in a span joined to the submitting
	// request's trace.
	tracer *obs.Tracer

	// onExec, when non-nil, runs at the start of every job execution.
	// Tests use it to hold a worker in place and make saturation and
	// drain scenarios deterministic; production leaves it nil.
	onExec func()
}

// NewScheduler starts workers goroutines consuming a priority queue of
// depth queueDepth (both forced to at least 1). Jobs execute on
// machines checked out of pool; a nil pool builds a cold machine per
// job.
func NewScheduler(workers, queueDepth int, pool *hypermm.MachinePool, m *Metrics) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &Scheduler{
		stopped: make(chan struct{}),
		metrics: m,
		pool:    pool,
		queue:   qos.NewQueue(queueDepth),
		reg:     qos.NewRegistry(nil, nil),
	}
	s.cond = sync.NewCond(&s.mu)
	workerDone := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go s.worker(workerDone)
	}
	go func() {
		for i := 0; i < workers; i++ {
			<-workerDone
		}
		close(s.stopped)
	}()
	return s
}

// worker loops popping the next eligible task. It exits once draining
// has begun and the queue is empty; a Pop that returns nil while not
// draining means every backlogged tenant is at its concurrency cap, so
// the worker waits for a Release.
func (s *Scheduler) worker(done chan<- struct{}) {
	defer func() { done <- struct{}{} }()
	for {
		s.mu.Lock()
		var it *qos.Item
		for {
			it = s.queue.Pop()
			if it != nil {
				break
			}
			if s.draining && s.queue.Len() == 0 {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
		}
		s.mu.Unlock()

		t := it.Payload.(*task)
		s.metrics.QueueAdd(-1)
		s.execute(t)

		s.mu.Lock()
		s.queue.Release(it.Tenant)
		s.mu.Unlock()
		// A Release can make a capped tenant eligible again; a finished
		// drain-era job can be the last thing holding other workers in
		// cond.Wait.
		s.cond.Broadcast()
	}
}

// Submit enqueues the job and waits for its result. It returns
// ErrDraining after Drain has begun; ErrQuota (wrapped in a
// RetryAfterError) when the tenant's token bucket is in debt;
// ErrSaturated when the queue is full and nothing queued is less
// important; and ctx.Err() if the caller gives up first (the job
// itself still runs to completion and is recorded in the metrics). A
// queued job can also fail with ErrShed if a more important arrival
// evicts it under overload.
func (s *Scheduler) Submit(ctx context.Context, job Job) (*JobResult, error) {
	admit := time.Now()
	if job.Tenant == nil {
		job.Tenant = s.reg.Default()
		job.Class = job.Tenant.Class
	}
	cost := job.Cost
	if cost <= 0 && job.Plan != nil {
		cost = job.Plan.PredictedTime
	}
	if cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
		cost = 1
	}

	// Quota: the predicted cost debits the tenant's bucket at admission.
	// Jobs forwarded by a coordinator arrive pre-admitted — their quota
	// was debited where the client connected.
	if s.reg.Enabled() && !job.PreAdmitted && job.Tenant.Bucket != nil {
		if ok, wait := job.Tenant.Bucket.Take(cost); !ok {
			job.Tenant.QuotaRejects.Add(1)
			s.metrics.Reject()
			return nil, &RetryAfterError{After: wait, Err: ErrQuota}
		}
	}

	t := &task{ctx: ctx, job: job, done: make(chan *JobResult, 1), enqueued: admit}
	// The queue span starts before the enqueue attempt: once the task is
	// in the queue a worker may read it concurrently, so every field is
	// final by then. A rejected task's span is simply never ended (and so
	// never recorded).
	t.ctx, t.qspan = s.tracer.StartSpan(ctx, "sched.queue",
		obs.String("tenant", job.Tenant.Name), obs.String("class", job.Class.String()))

	it := &qos.Item{
		Tenant: job.Tenant, Class: job.Class,
		Deadline: job.EDFDeadline, Cost: cost, Payload: t,
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	// Shedding only applies under a QoS config; without one a full queue
	// rejects the arrival, exactly the pre-QoS behavior.
	evicted, err := s.queue.Push(it, s.reg.Enabled())
	if err != nil {
		s.mu.Unlock()
		s.metrics.Reject()
		return nil, &RetryAfterError{After: s.drainEstimate(), Err: ErrSaturated}
	}
	s.metrics.QueueAdd(1)
	if evicted != nil {
		s.metrics.QueueAdd(-1)
	}
	s.mu.Unlock()
	s.cond.Broadcast()

	if evicted != nil {
		// The victim's submitter is parked on its done channel; fail it
		// there so the eviction surfaces as a 429, not a hang.
		v := evicted.Payload.(*task)
		v.job.Tenant.Sheds.Add(1)
		s.metrics.Reject()
		s.metrics.JobError("shed")
		v.done <- &JobResult{Err: &RetryAfterError{After: s.drainEstimate(), Err: ErrShed}}
	}
	s.metrics.StageObserve("admission", time.Since(admit))

	select {
	case r := <-t.done:
		if r.Err != nil {
			return r, r.Err
		}
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// drainEstimate predicts how long the current backlog needs to clear:
// the p50 job wall time times the queue depth, floored at one second.
// It is the Retry-After hint on saturation and shed rejections.
func (s *Scheduler) drainEstimate() time.Duration {
	p50 := s.metrics.LatencyQuantile(0.5)
	depth := float64(s.metrics.QueueDepth())
	if p50 <= 0 || depth <= 0 {
		return time.Second
	}
	d := time.Duration(p50 * depth * float64(time.Second))
	if d < time.Second {
		return time.Second
	}
	return d
}

// Registry exposes the tenant registry (never nil).
func (s *Scheduler) Registry() *qos.Registry { return s.reg }

// QoSStats snapshots per-tenant accounting with live queue depths
// overlaid.
func (s *Scheduler) QoSStats() []qos.TenantStats {
	stats := s.reg.Stats()
	s.mu.Lock()
	depths := s.queue.Depths()
	s.mu.Unlock()
	for i := range stats {
		d := depths[stats[i].Name]
		stats[i].Queued, stats[i].Inflight = d[0], d[1]
	}
	return stats
}

// Drain stops intake, lets the workers finish every admitted job, and
// waits for them (bounded by ctx). Safe to call more than once.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.cond.Broadcast()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// execute runs one task and posts its result.
func (s *Scheduler) execute(t *task) {
	t.qspan.End()
	queueWait := time.Since(t.enqueued)
	s.metrics.StageObserve("queue", queueWait)
	if err := t.ctx.Err(); err != nil {
		t.done <- &JobResult{Err: err}
		return
	}
	if s.onExec != nil {
		s.onExec()
	}
	s.metrics.InflightAdd(1)
	defer s.metrics.InflightAdd(-1)

	var (
		res *hypermm.Result
		tr  *hypermm.Trace
		err error
	)
	remote := s.cluster != nil && !t.job.Trace
	spanName, stage := "sched.run", "run"
	if remote {
		spanName, stage = "cluster.dispatch", "dispatch"
	}
	rctx, rspan := s.tracer.StartSpan(t.ctx, spanName,
		obs.String("algorithm", t.job.Plan.AlgorithmName),
		obs.Int("n", t.job.A.Rows), obs.Int("p", t.job.Cfg.P),
		obs.String("tenant", t.job.Tenant.Name),
		obs.String("class", t.job.Class.String()),
		obs.Float64("queue_wait_s", queueWait.Seconds()))
	// Taken after the span opens so the sim timeline, anchored to
	// [start, start+wall], always nests inside the rendered run span.
	start := time.Now()
	switch {
	case remote:
		res, err = s.cluster.SubmitMeta(rctx, cluster.JobMeta{
			Tenant:   t.job.Tenant.Name,
			Class:    t.job.Class.String(),
			Priority: int(t.job.Class),
		}, t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	case t.job.Trace && s.pool != nil:
		res, tr, err = s.pool.RunOnTraced(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	case t.job.Trace:
		res, tr, err = hypermm.RunTraced(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	case s.pool != nil:
		res, err = s.pool.RunOn(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	default:
		res, err = hypermm.Run(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	}
	wall := time.Since(start)
	rspan.Set(obs.Bool("ok", err == nil))
	rspan.End()
	s.metrics.StageObserve(stage, wall)
	if err == nil && tr != nil {
		// Anchor the simulated timeline of a traced run to the wall
		// interval it executed in, so the merged Chrome export can place
		// simulated node activity under the server spans.
		if sc, ok := obs.FromContext(rctx); ok && sc.Valid() {
			s.tracer.AttachSim(sc.TraceID, obs.SimTimeline{
				Events: tr.TimelineEvents(), Elapsed: res.Elapsed, P: t.job.Cfg.P,
				Start: start.UnixNano(), End: start.Add(wall).UnixNano(),
			})
		}
	}

	if err == nil && t.job.Verify {
		tol := 1e-8 * float64(t.job.A.Rows)
		if verr := hypermm.Verify(t.job.A, t.job.B, res.C, tol); verr != nil {
			err = verr
			s.metrics.JobError("verify")
		}
	} else if err != nil {
		s.metrics.JobError(errKind(err))
	}

	r := &JobResult{Res: res, Trace: tr, Wall: wall, Err: err}
	if err == nil {
		t.job.Tenant.Jobs.Add(1)
		if pt := t.job.Plan.PredictedTime; pt > 0 {
			r.Ratio = res.Elapsed / pt
		}
		s.metrics.JobDone(t.job.Plan.AlgorithmName, wall, r.Ratio)
	}
	t.done <- r
}

// errKind buckets a job error for the hmmd_job_errors_total metric.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrSaturated):
		return "saturated"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrQuota):
		return "quota"
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrInfeasible):
		return "infeasible"
	case errors.Is(err, hypermm.ErrLinkDown):
		return "link_down"
	case errors.Is(err, hypermm.ErrDeadline):
		return "deadline"
	case errors.Is(err, cluster.ErrWorkerLost):
		return "worker_lost"
	case errors.Is(err, cluster.ErrNoWorkers):
		return "no_workers"
	case errors.Is(err, cluster.ErrBusy):
		return "cluster_busy"
	default:
		return "run"
	}
}

package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"hypermm"
	"hypermm/internal/cluster"
	"hypermm/internal/obs"
)

// Typed scheduler errors, mapped to HTTP statuses by the handlers.
var (
	// ErrSaturated reports that the bounded queue is full (admission
	// control); the handlers answer 429.
	ErrSaturated = errors.New("server: scheduler saturated, try again later")
	// ErrDraining reports that the scheduler has stopped accepting work
	// for shutdown; the handlers answer 503.
	ErrDraining = errors.New("server: scheduler draining")
)

// Job is one multiplication to execute on the simulated hypercube.
type Job struct {
	Plan   *Plan
	Cfg    hypermm.Config
	A, B   *hypermm.Matrix
	Trace  bool // capture a per-node timeline
	Verify bool // check against the serial product
}

// JobResult is the outcome of one executed Job.
type JobResult struct {
	Res   *hypermm.Result
	Trace *hypermm.Trace
	// Ratio is simulated elapsed time over the plan's predicted time —
	// the cost model's accuracy on this very job (0 when undefined).
	Ratio float64
	Wall  time.Duration
	Err   error
}

type task struct {
	ctx      context.Context
	job      Job
	done     chan *JobResult // buffered(1); worker posts exactly once
	enqueued time.Time       // when the task entered the queue
	qspan    *obs.Span       // queue-wait span; ended when a worker picks it up
}

// Scheduler is a bounded worker pool with admission control: at most
// queueDepth jobs wait while workers execute. Submit is synchronous;
// Drain stops intake and finishes everything already admitted.
type Scheduler struct {
	queue    chan *task
	stopped  chan struct{} // closed when every worker has exited
	metrics  *Metrics
	pool     *hypermm.MachinePool // warm machines; nil falls back to cold runs
	mu       sync.Mutex           // guards draining and the queue send
	draining bool

	// cluster, when non-nil, routes non-trace jobs to remote workers
	// instead of executing them here; the queue and worker pool still
	// bound how many cluster submissions are in flight. Trace jobs run
	// locally — per-node timelines don't travel the wire.
	cluster *cluster.Coordinator

	// tracer, when non-nil, wraps every pipeline stage — queue wait,
	// local run, cluster dispatch — in a span joined to the submitting
	// request's trace.
	tracer *obs.Tracer

	// onExec, when non-nil, runs at the start of every job execution.
	// Tests use it to hold a worker in place and make saturation and
	// drain scenarios deterministic; production leaves it nil.
	onExec func()
}

// NewScheduler starts workers goroutines consuming a queue of depth
// queueDepth (both forced to at least 1). Jobs execute on machines
// checked out of pool; a nil pool builds a cold machine per job.
func NewScheduler(workers, queueDepth int, pool *hypermm.MachinePool, m *Metrics) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &Scheduler{
		queue:   make(chan *task, queueDepth),
		stopped: make(chan struct{}),
		metrics: m,
		pool:    pool,
	}
	workerDone := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer func() { workerDone <- struct{}{} }()
			for t := range s.queue {
				s.metrics.QueueAdd(-1)
				s.execute(t)
			}
		}()
	}
	go func() {
		for i := 0; i < workers; i++ {
			<-workerDone
		}
		close(s.stopped)
	}()
	return s
}

// Submit enqueues the job and waits for its result. It returns
// ErrSaturated immediately when the queue is full, ErrDraining after
// Drain has begun, and ctx.Err() if the caller gives up first (the job
// itself still runs to completion and is recorded in the metrics).
func (s *Scheduler) Submit(ctx context.Context, job Job) (*JobResult, error) {
	admit := time.Now()
	t := &task{ctx: ctx, job: job, done: make(chan *JobResult, 1), enqueued: admit}
	// The queue span starts before the enqueue attempt: once the task is
	// in the channel a worker may read it concurrently, so every field is
	// final by then. A rejected task's span is simply never ended (and so
	// never recorded).
	t.ctx, t.qspan = s.tracer.StartSpan(ctx, "sched.queue")

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case s.queue <- t:
		s.metrics.QueueAdd(1)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.metrics.Reject()
		return nil, ErrSaturated
	}
	s.metrics.StageObserve("admission", time.Since(admit))

	select {
	case r := <-t.done:
		if r.Err != nil {
			return r, r.Err
		}
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Drain stops intake, lets the workers finish every admitted job, and
// waits for them (bounded by ctx). Safe to call more than once.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.stopped:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// execute runs one task and posts its result.
func (s *Scheduler) execute(t *task) {
	t.qspan.End()
	s.metrics.StageObserve("queue", time.Since(t.enqueued))
	if err := t.ctx.Err(); err != nil {
		t.done <- &JobResult{Err: err}
		return
	}
	if s.onExec != nil {
		s.onExec()
	}
	s.metrics.InflightAdd(1)
	defer s.metrics.InflightAdd(-1)

	var (
		res *hypermm.Result
		tr  *hypermm.Trace
		err error
	)
	remote := s.cluster != nil && !t.job.Trace
	spanName, stage := "sched.run", "run"
	if remote {
		spanName, stage = "cluster.dispatch", "dispatch"
	}
	rctx, rspan := s.tracer.StartSpan(t.ctx, spanName,
		obs.String("algorithm", t.job.Plan.AlgorithmName),
		obs.Int("n", t.job.A.Rows), obs.Int("p", t.job.Cfg.P))
	// Taken after the span opens so the sim timeline, anchored to
	// [start, start+wall], always nests inside the rendered run span.
	start := time.Now()
	switch {
	case remote:
		res, err = s.cluster.Submit(rctx, t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	case t.job.Trace && s.pool != nil:
		res, tr, err = s.pool.RunOnTraced(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	case t.job.Trace:
		res, tr, err = hypermm.RunTraced(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	case s.pool != nil:
		res, err = s.pool.RunOn(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	default:
		res, err = hypermm.Run(t.job.Plan.Algorithm, t.job.Cfg, t.job.A, t.job.B)
	}
	wall := time.Since(start)
	rspan.Set(obs.Bool("ok", err == nil))
	rspan.End()
	s.metrics.StageObserve(stage, wall)
	if err == nil && tr != nil {
		// Anchor the simulated timeline of a traced run to the wall
		// interval it executed in, so the merged Chrome export can place
		// simulated node activity under the server spans.
		if sc, ok := obs.FromContext(rctx); ok && sc.Valid() {
			s.tracer.AttachSim(sc.TraceID, obs.SimTimeline{
				Events: tr.TimelineEvents(), Elapsed: res.Elapsed, P: t.job.Cfg.P,
				Start: start.UnixNano(), End: start.Add(wall).UnixNano(),
			})
		}
	}

	if err == nil && t.job.Verify {
		tol := 1e-8 * float64(t.job.A.Rows)
		if verr := hypermm.Verify(t.job.A, t.job.B, res.C, tol); verr != nil {
			err = verr
			s.metrics.JobError("verify")
		}
	} else if err != nil {
		s.metrics.JobError(errKind(err))
	}

	r := &JobResult{Res: res, Trace: tr, Wall: wall, Err: err}
	if err == nil {
		if pt := t.job.Plan.PredictedTime; pt > 0 {
			r.Ratio = res.Elapsed / pt
		}
		s.metrics.JobDone(t.job.Plan.AlgorithmName, wall, r.Ratio)
	}
	t.done <- r
}

// errKind buckets a job error for the hmmd_job_errors_total metric.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrSaturated):
		return "saturated"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, hypermm.ErrLinkDown):
		return "link_down"
	case errors.Is(err, hypermm.ErrDeadline):
		return "deadline"
	case errors.Is(err, cluster.ErrWorkerLost):
		return "worker_lost"
	case errors.Is(err, cluster.ErrNoWorkers):
		return "no_workers"
	case errors.Is(err, cluster.ErrBusy):
		return "cluster_busy"
	default:
		return "run"
	}
}

package server_test

import (
	"fmt"

	"hypermm"
	"hypermm/internal/server"
)

// The planner wraps Table 2's cost model behind a cache: ask it what to
// run for a given problem and machine, and it returns the winning
// algorithm with predicted overheads and per-candidate diagnostics —
// the same selection flow POST /v1/matmul uses for "algorithm": "auto".
func ExamplePlanner_Plan() {
	pl := server.NewPlanner(128)
	plan, err := pl.Plan(server.PlanRequest{
		N: 4096, P: 64, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("chosen: %s (auto=%v)\n", plan.AlgorithmName, plan.Auto)
	fmt.Printf("predicted comm time: %.0f\n", plan.CommTime)
	for _, c := range plan.Candidates {
		if c.Applicable {
			fmt.Printf("  %-8s comm=%.0f\n", c.Algorithm, c.CommTime)
		}
	}
	// A repeated request is a cache hit.
	if _, err := pl.Plan(server.PlanRequest{
		N: 4096, P: 64, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort,
	}); err != nil {
		panic(err)
	}
	hits, misses, _ := pl.CacheStats()
	fmt.Printf("cache: %d hit, %d miss\n", hits, misses)
	// Output:
	// chosen: 3dall (auto=true)
	// predicted comm time: 7865520
	//   cannon   comm=15731640
	//   berntsen comm=10225416
	//   3dd      comm=25167024
	//   3dall    comm=7865520
	// cache: 1 hit, 1 miss
}

package server

import "runtime/debug"

// VersionInfo identifies the running build, read from the information
// the Go linker embeds in every binary — no ldflags stamping required.
type VersionInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`            // module version ("(devel)" for local builds)
	GoVersion string `json:"go_version"`         // toolchain that built the binary
	Revision  string `json:"revision,omitempty"` // VCS commit, when built from a checkout
	Modified  bool   `json:"modified,omitempty"` // VCS tree had local changes
}

// ReadVersion extracts the build identity via debug.ReadBuildInfo.
// Binaries built without module support (go test harnesses never are)
// yield a mostly-empty value rather than an error.
func ReadVersion() VersionInfo {
	v := VersionInfo{Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	v.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.modified":
			v.Modified = s.Value == "true"
		}
	}
	return v
}

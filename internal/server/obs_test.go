package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hypermm/internal/cluster"
	"hypermm/internal/obs"
)

// getBody GETs a path off the test server and returns status + body.
func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestMatmulCarriesTraceIDAndRecordsSpans pins the request-tracing
// contract on the scheduler-direct path: the response names its trace,
// and /v1/trace/{id}?format=spans resolves that name to the full stage
// decomposition with nested monotonic intervals.
func TestMatmulCarriesTraceIDAndRecordsSpans(t *testing.T) {
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postMatmul(t, ts, `{"n": 16, "p": 16, "algorithm": "cannon"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Trace-Id")
	if !obs.ValidTraceID(id) {
		t.Fatalf("X-Trace-Id %q is not a valid trace ID", id)
	}

	code, body := getBody(t, ts, "/v1/trace/"+id+"?format=spans")
	if code != http.StatusOK {
		t.Fatalf("/v1/trace status %d: %s", code, body)
	}
	var td obs.TraceData
	if err := json.Unmarshal(body, &td); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SpanData{}
	for _, s := range td.Spans {
		if s.TraceID != id {
			t.Errorf("span %s carries trace %q, want %q", s.Name, s.TraceID, id)
		}
		byName[s.Name] = s
	}
	for _, name := range []string{"http.matmul", "plan", "sched.queue", "sched.run"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing span %q (got %+v)", name, td.Spans)
		}
	}
	root, run := byName["http.matmul"], byName["sched.run"]
	if run.Parent == "" || root.Parent != "" {
		t.Errorf("root/run parentage wrong: root parent %q, run parent %q", root.Parent, run.Parent)
	}
	if !(root.Start <= run.Start && run.Start <= run.End && run.End <= root.End) {
		t.Errorf("run [%d, %d] does not nest in handler [%d, %d]", run.Start, run.End, root.Start, root.End)
	}
	if got := root.Attrs["outcome"]; got != "ok" {
		t.Errorf("root outcome %v, want ok", got)
	}
}

// TestTracedRunMergesSimTimeline pins the merged Chrome export: a
// trace:true request yields a /v1/trace/{id} document holding both the
// server spans and the simulated per-node events, the latter inside
// the run's wall-clock window.
func TestTracedRunMergesSimTimeline(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postMatmul(t, ts, `{"n": 16, "p": 16, "algorithm": "cannon", "trace": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	id := resp.Header.Get("X-Trace-Id")
	code, body := getBody(t, ts, "/v1/trace/"+id)
	if code != http.StatusOK {
		t.Fatalf("/v1/trace status %d: %s", code, body)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatal(err)
	}
	if chrome.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q, want ms", chrome.DisplayTimeUnit)
	}
	var runStart, runEnd float64
	sims := 0
	for _, ev := range chrome.TraceEvents {
		if ev.Ph == "X" && ev.Name == "sched.run" {
			runStart, runEnd = ev.Ts, ev.Ts+ev.Dur
		}
		if ev.Cat == "sim" {
			sims++
		}
	}
	if sims == 0 {
		t.Fatal("no simulated events merged into the trace")
	}
	for _, ev := range chrome.TraceEvents {
		if ev.Cat != "sim" {
			continue
		}
		const slack = 1e-3 // µs rounding
		if ev.Ts < runStart-slack || ev.Ts+ev.Dur > runEnd+slack {
			t.Fatalf("sim event [%g, %g] outside the run window [%g, %g]",
				ev.Ts, ev.Ts+ev.Dur, runStart, runEnd)
		}
	}
}

// TestStageHistogramRendered pins the hmmd_stage_seconds family: one
// served request populates the pipeline stages and /metrics renders
// them as labeled cumulative-bucket histograms.
func TestStageHistogramRendered(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, data := postMatmul(t, ts, `{"n": 16, "p": 8}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	for _, stage := range []string{"handler", "plan", "admission", "queue", "run", "pool_checkout"} {
		if n := srv.Metrics().StageCount(stage); n < 1 {
			t.Errorf("stage %q never observed", stage)
		}
	}
	_, body := getBody(t, ts, "/metrics")
	for _, want := range []string{
		"# TYPE hmmd_stage_seconds histogram",
		`hmmd_stage_seconds_bucket{stage="handler",le="+Inf"} 1`,
		`hmmd_stage_seconds_count{stage="run"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceEndpointErrors pins the endpoint's failure shapes: unknown
// IDs and disabled tracing are 404s, bad formats 400.
func TestTraceEndpointErrors(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := getBody(t, ts, "/v1/trace/"+strings.Repeat("ab", 16)); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
	resp, data := postMatmul(t, ts, `{"n": 8, "p": 8}`)
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		if code, _ := getBody(t, ts, "/v1/trace/"+id+"?format=bogus"); code != http.StatusBadRequest {
			t.Errorf("bogus format: status %d, want 400", code)
		}
	} else {
		t.Fatalf("no trace id on %s", data)
	}

	off := mustNew(t, Config{Workers: 1, QueueDepth: 2, TraceRing: -1})
	ts2 := httptest.NewServer(off.Handler())
	defer ts2.Close()
	resp2, _ := postMatmul(t, ts2, `{"n": 8, "p": 8}`)
	if got := resp2.Header.Get("X-Trace-Id"); got != "" {
		t.Errorf("tracing disabled but X-Trace-Id %q set", got)
	}
	if code, _ := getBody(t, ts2, "/v1/trace/"+strings.Repeat("ab", 16)); code != http.StatusNotFound {
		t.Errorf("disabled tracing: status %d, want 404", code)
	}
}

// TestVersionEndpoint pins /v1/version: build identity straight from
// the binary, no stamping required.
func TestVersionEndpoint(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := getBody(t, ts, "/v1/version")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var v VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Version == "" {
		t.Errorf("version info incomplete: %+v", v)
	}
}

// TestPprofGating pins the opt-in: profiling endpoints exist only when
// Config.Pprof asks for them.
func TestPprofGating(t *testing.T) {
	off := httptest.NewServer(mustNew(t, Config{Workers: 1, QueueDepth: 2}).Handler())
	defer off.Close()
	if code, _ := getBody(t, off, "/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", code)
	}
	on := httptest.NewServer(mustNew(t, Config{Workers: 1, QueueDepth: 2, Pprof: true}).Handler())
	defer on.Close()
	if code, _ := getBody(t, on, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", code)
	}
}

// TestConcurrentMetricsScrapeDuringFailover hammers /metrics while a
// cluster worker dies holding jobs — the exact moment coordinator
// state, stage histograms and failover counters all churn. Run under
// -race this pins the scrape path data-race-free; every scrape must
// answer 200 regardless.
func TestConcurrentMetricsScrapeDuringFailover(t *testing.T) {
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr:          "127.0.0.1:0",
		ProbeInterval: 20 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	workers := make([]*cluster.Worker, 2)
	for i := range workers {
		w, err := cluster.Join(context.Background(), coord.Addr().String(), cluster.WorkerConfig{
			Name: fmt.Sprintf("w%d", i), Exec: cluster.LocalExec,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(context.Background())
		t.Cleanup(w.Abort)
		workers[i] = w
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 8, Cluster: coord})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/metrics status %d mid-failover", resp.StatusCode)
					return
				}
			}
		}()
	}

	var jobs sync.WaitGroup
	for i := 0; i < 16; i++ {
		jobs.Add(1)
		go func() {
			defer jobs.Done()
			resp, err := http.Post(ts.URL+"/v1/matmul", "application/json",
				strings.NewReader(`{"n": 24, "p": 16, "algorithm": "cannon"}`))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		if i == 4 {
			workers[0].Abort() // die while holding in-flight jobs
		}
	}
	jobs.Wait()
	close(stop)
	wg.Wait()
}

package server

import (
	"math"
	"strings"
	"testing"
	"time"

	"hypermm"
	"hypermm/internal/cluster"
)

func TestMetricsRender(t *testing.T) {
	m := NewMetrics()
	m.QueueAdd(3)
	m.InflightAdd(1)
	m.JobDone("3dall", 2*time.Millisecond, 1.02)
	m.JobDone("3dall", 4*time.Millisecond, 0.98)
	m.JobDone("cannon", 100*time.Millisecond, 1.3)
	m.Reject()
	m.Reject()
	m.JobError("link_down")

	m.SetCalibrationLoaded(true)
	cl := &cluster.Stats{
		Workers: []cluster.WorkerStats{
			{ID: 1, Name: "w0", Jobs: 9, Inflight: 1, Breaker: cluster.BreakerClosed},
			{ID: 2, Name: "w1", Jobs: 4, Breaker: cluster.BreakerOpen},
			{ID: 3, Name: "w2", Draining: true, Breaker: cluster.BreakerClosed},
		},
		Dispatched: 15, Completed: 13, Failovers: 1, BusyRetries: 2,
	}
	out := m.Render(7, 2, 5, hypermm.PoolStats{Hits: 11, Misses: 4, Size: 3}, cl, nil)
	for _, want := range []string{
		"hmmd_queue_depth 3",
		"hmmd_inflight_jobs 1",
		`hmmd_jobs_total{algorithm="3dall"} 2`,
		`hmmd_jobs_total{algorithm="cannon"} 1`,
		"hmmd_rejects_total 2",
		`hmmd_job_errors_total{kind="link_down"} 1`,
		"hmmd_plan_cache_hits_total 7",
		"hmmd_plan_cache_misses_total 2",
		"hmmd_plan_cache_entries 5",
		"hmmd_machine_pool_hits_total 11",
		"hmmd_machine_pool_misses_total 4",
		"hmmd_machine_pool_size 3",
		"hmmd_calibration_loaded 1",
		"hmmd_job_latency_seconds_count 3",
		`hmmd_job_latency_quantile_seconds{q="0.5"}`,
		`hmmd_job_latency_quantile_seconds{q="0.99"}`,
		"hmmd_sim_predicted_ratio_count 3",
		`hmmd_sim_predicted_ratio_bucket{le="+Inf"} 3`,
		"hmmd_cluster_workers 2", // the draining worker is not live
		"hmmd_cluster_dispatches_total 15",
		"hmmd_cluster_completed_total 13",
		"hmmd_cluster_failovers_total 1",
		"hmmd_cluster_busy_retries_total 2",
		`hmmd_cluster_worker_jobs_total{worker="w0"} 9`,
		`hmmd_cluster_worker_inflight{worker="w0"} 1`,
		`hmmd_cluster_worker_breaker_open{worker="w0"} 0`,
		`hmmd_cluster_worker_breaker_open{worker="w1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}

	// Standalone serving renders no cluster family at all.
	if plain := m.Render(7, 2, 5, hypermm.PoolStats{}, nil, nil); strings.Contains(plain, "hmmd_cluster_") {
		t.Error("nil cluster stats still rendered a cluster metric")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	h.render(&sb, "x", "test")
	out := sb.String()
	for _, want := range []string{
		`x_bucket{le="1"} 1`,
		`x_bucket{le="2"} 3`,
		`x_bucket{le="4"} 4`,
		`x_bucket{le="+Inf"} 5`,
		"x_count 5",
		"x_sum 106.7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 100 samples uniform over (0, 4]: the median lands near 2.
	for i := 1; i <= 100; i++ {
		h.Observe(4 * float64(i) / 100)
	}
	if q := h.Quantile(0.5); math.Abs(q-2) > 0.3 {
		t.Errorf("p50 = %g, want ~2", q)
	}
	if q := h.Quantile(0.99); q < 3 || q > 4 {
		t.Errorf("p99 = %g, want in (3, 4]", q)
	}
	// Observations beyond the last bound clamp to it.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(50)
	if q := h2.Quantile(0.5); q != 2 {
		t.Errorf("overflow quantile = %g, want last bound 2", q)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hypermm"
	"hypermm/internal/qos"
)

// twoTenantConfig is the deterministic stress fixture: a paced
// interactive tenant and a flooding best-effort tenant, equal weights,
// no quotas (the tests drive shedding, not buckets).
func twoTenantConfig(t *testing.T) *qos.Config {
	t.Helper()
	c, err := qos.Parse([]byte(`{
	  "version": 1,
	  "tenants": {
	    "paced": {"class": "interactive"},
	    "flood": {"class": "best-effort"}
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// qosScheduler builds a scheduler with a configured registry, the way
// server.New wires it.
func qosScheduler(t *testing.T, workers, depth int, cfg *qos.Config, m *Metrics) *Scheduler {
	t.Helper()
	s := NewScheduler(workers, depth, nil, m)
	s.reg = qos.NewRegistry(cfg, nil)
	return s
}

// qosJob attributes a test job to a registry tenant at its class.
func qosJob(t *testing.T, s *Scheduler, tenant string) Job {
	t.Helper()
	job := testJob(t)
	tn := s.reg.ByName(tenant)
	if tn == nil {
		t.Fatalf("unknown tenant %q", tenant)
	}
	job.Tenant, job.Class = tn, tn.Class
	return job
}

// TestQoSStarvationResistance is the deterministic two-tenant overload
// drill: a flooding best-effort tenant fills the queue, a paced
// interactive tenant keeps submitting. The paced tenant must see every
// job admitted (its arrivals shed the flood), dispatch strictly before
// the surviving flood backlog, and the flood's evictions must be
// visible in its shed counter.
func TestQoSStarvationResistance(t *testing.T) {
	m := NewMetrics()
	s := qosScheduler(t, 1, 4, twoTenantConfig(t), m)
	defer s.Drain(context.Background())
	step := make(chan struct{})
	s.onExec = func() { <-step }

	flood := s.reg.ByName("flood")
	paced := s.reg.ByName("paced")

	type outcome struct {
		tenant string
		err    error
	}
	results := make(chan outcome, 16)
	submit := func(tenant string) {
		job := qosJob(t, s, tenant)
		go func() {
			_, err := s.Submit(context.Background(), job)
			results <- outcome{tenant, err}
		}()
	}

	inflight := func(tenant string) int {
		for _, st := range s.QoSStats() {
			if st.Name == tenant {
				return st.Inflight
			}
		}
		return 0
	}

	// Flood: one job held by the worker plus four filling the queue.
	submit("flood")
	waitFor(t, func() bool { return inflight("flood") == 1 })
	for i := 0; i < 4; i++ {
		submit("flood")
	}
	waitFor(t, func() bool { return m.QueueDepth() == 4 })

	// Paced: three interactive arrivals on the full queue. Each must be
	// admitted by evicting a flood item (newest first).
	for i := 0; i < 3; i++ {
		submit("paced")
	}
	shed := 0
	for shed < 3 {
		o := <-results
		if o.tenant != "flood" {
			t.Fatalf("%s job failed during flood shedding: %v", o.tenant, o.err)
		}
		if !errors.Is(o.err, ErrShed) {
			t.Fatalf("shed flood job: err = %v, want ErrShed", o.err)
		}
		var ra *RetryAfterError
		if !errors.As(o.err, &ra) || ra.After <= 0 {
			t.Fatalf("shed rejection carries no retry hint: %v", o.err)
		}
		shed++
	}
	if got := flood.Sheds.Load(); got != 3 {
		t.Fatalf("flood sheds = %d, want 3", got)
	}
	if got := paced.Sheds.Load(); got != 0 {
		t.Fatalf("paced sheds = %d, want 0", got)
	}

	// Release executions one at a time: after the held flood job, the
	// three paced jobs must all run before the surviving flood job.
	step <- struct{}{} // the flood job the worker already held
	waitFor(t, func() bool { return flood.Jobs.Load() == 1 })
	for i := int64(1); i <= 3; i++ {
		step <- struct{}{}
		waitFor(t, func() bool { return paced.Jobs.Load() == i })
		if flood.Jobs.Load() != 1 {
			t.Fatalf("flood job ran before paced backlog drained (paced done %d)", i)
		}
	}
	step <- struct{}{} // the surviving flood job
	waitFor(t, func() bool { return flood.Jobs.Load() == 2 })

	// Every submitted job resolved: 3 paced + 2 flood succeeded, 3 shed.
	ok := 0
	for i := 0; i < 5; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("%s job failed: %v", o.tenant, o.err)
		}
		ok++
	}
	if ok != 5 {
		t.Fatalf("completed %d jobs, want 5", ok)
	}
}

// TestQoSDrainUnderLoadAcrossClasses pins that Drain with jobs queued
// in every class completes them all and returns — never hangs — and
// that post-drain submissions get ErrDraining.
func TestQoSDrainUnderLoadAcrossClasses(t *testing.T) {
	c, err := qos.Parse([]byte(`{
	  "version": 1,
	  "tenants": {
	    "inter": {"class": "interactive"},
	    "batch": {"class": "batch"},
	    "be":    {"class": "best-effort", "max_concurrency": 1}
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	s := qosScheduler(t, 2, 9, c, m)
	hold := make(chan struct{})
	s.onExec = func() { <-hold }

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for _, tenant := range []string{"inter", "batch", "be"} {
		for i := 0; i < 3; i++ {
			job := qosJob(t, s, tenant)
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, err := s.Submit(context.Background(), job)
				errs <- err
			}()
		}
	}
	// Both workers held, the rest queued across the three classes.
	waitFor(t, func() bool { return m.QueueDepth() == 7 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, s.Draining)
	if _, err := s.Submit(context.Background(), testJob(t)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	close(hold)
	if err := <-drained; err != nil {
		t.Fatalf("drain under cross-class load: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("admitted job failed across drain: %v", err)
		}
	}
}

// TestRetryAfterOnSaturation is the 429 regression: a saturated queue
// must answer 429 with a Retry-After header, QoS configured or not.
func TestRetryAfterOnSaturation(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv.sched.onExec = func() { entered <- struct{}{}; <-hold }

	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postMatmul(t, ts, `{"n": 16, "p": 8}`)
			_ = resp
			done <- struct{}{}
		}()
	}
	<-entered // one running...
	waitFor(t, func() bool { return srv.metrics.QueueDepth() == 1 }) // ...one queued

	resp, data := postMatmul(t, ts, `{"n": 16, "p": 8}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("saturated 429 Retry-After = %q, want a positive whole-second hint", ra)
	}
	close(hold)
	<-done
	<-done
}

// quotaConfig builds a QoS policy whose tenant can afford exactly one
// job of the given predicted cost before its bucket runs dry.
func quotaConfig(t *testing.T, cost float64) *qos.Config {
	t.Helper()
	raw := fmt.Sprintf(`{
	  "version": 1,
	  "tenants": {
	    "acme": {"keys": ["k-acme"], "class": "interactive", "rate": 1e-9, "burst": %g}
	  }
	}`, cost/2)
	c, err := qos.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// predictedCost plans the standard test request and returns its
// predicted simulated time — the amount a submission debits.
func predictedCost(t *testing.T, srv *Server) float64 {
	t.Helper()
	plan, err := srv.planner.Plan(PlanRequest{N: 16, P: 8, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort})
	if err != nil {
		t.Fatal(err)
	}
	return plan.PredictedTime
}

// TestQuotaDebitRejectAndMetrics drives one tenant's bucket into debt:
// the first request is admitted (overdraft), the second answers 429
// with Retry-After, and the hmmd_qos_* metrics expose the debt, the
// reject, and the completed job per tenant.
func TestQuotaDebitRejectAndMetrics(t *testing.T) {
	probe := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	cfg := quotaConfig(t, predictedCost(t, probe))
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, QoS: cfg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := func() (*http.Response, []byte) {
		t.Helper()
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/matmul", strings.NewReader(`{"n": 16, "p": 8}`))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("X-API-Key", "k-acme")
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data
	}

	resp, data := req()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp.StatusCode, data)
	}
	resp, data = req()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: status %d: %s", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	if !strings.Contains(string(data), "quota") {
		t.Fatalf("quota 429 body %s does not name the quota", data)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mdata, _ := io.ReadAll(mresp.Body)
	metrics := string(mdata)
	for _, want := range []string{
		`hmmd_qos_jobs_total{tenant="acme"} 1`,
		`hmmd_qos_quota_rejects_total{tenant="acme"} 1`,
		`hmmd_qos_sheds_total{tenant="acme"} 0`,
		`hmmd_qos_queue_depth{tenant=`,
		`hmmd_qos_debt{tenant="acme"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /v1/qos serves the policy plus the same per-tenant accounting.
	qresp, err := http.Get(ts.URL + "/v1/qos")
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var qbody struct {
		Config  *qos.Config       `json:"config"`
		Tenants []qos.TenantStats `json:"tenants"`
	}
	if err := json.NewDecoder(qresp.Body).Decode(&qbody); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tn := range qbody.Tenants {
		if tn.Name == "acme" && tn.QuotaRejects == 1 && tn.Debt > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("/v1/qos tenants = %+v, want acme with 1 quota reject and debt", qbody.Tenants)
	}
}

// TestInfeasibleDeadlineRejectedUpFront pins cost-model admission: a
// deadline below the predicted time answers 504 before any execution.
func TestInfeasibleDeadlineRejectedUpFront(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2, QoS: twoTenantConfig(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/matmul",
		strings.NewReader(`{"n": 16, "p": 8, "deadline": 0.001}`))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("X-Tenant", "paced")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("infeasible deadline: status %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "predicted") {
		t.Fatalf("infeasible 504 body %s does not explain the prediction", data)
	}
	if got := srv.qosReg.ByName("paced").Infeasible.Load(); got != 1 {
		t.Fatalf("paced infeasible counter = %d, want 1", got)
	}
	// Without a QoS policy the same request executes (and then misses
	// its simulated deadline at run time) — admission stays out of the
	// way, preserving pre-QoS behavior.
	plain := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	resp2, data2 := postMatmul(t, tsPlain, `{"n": 16, "p": 8, "deadline": 0.001}`)
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("no-QoS tiny deadline: status %d: %s", resp2.StatusCode, data2)
	}
	if strings.Contains(string(data2), "predicted time exceeds") {
		t.Fatalf("no-QoS server used admission rejection: %s", data2)
	}
}

// TestClassDemotionOnly pins the class ceiling: a tenant may demote a
// request below its class but cannot claim a higher one.
func TestClassDemotionOnly(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2, QoS: twoTenantConfig(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	send := func(tenant, class string) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"n": 16, "p": 8, "class": %q}`, class)
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/matmul", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := send("paced", "batch"); resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive tenant demoting to batch: status %d", resp.StatusCode)
	}
	if resp := send("flood", "interactive"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("best-effort tenant claiming interactive: status %d, want 400", resp.StatusCode)
	}
}

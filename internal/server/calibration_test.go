package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hypermm/internal/calibrate"
)

// testProfile is a hand-built valid calibration profile whose effective
// parameters differ measurably from the nominal reference, so
// calibrated and uncalibrated predictions cannot coincide.
func testProfile(t *testing.T) *calibrate.Profile {
	t.Helper()
	p := &calibrate.Profile{
		Version:   calibrate.ProfileVersion,
		PortModel: "one",
		RefTs:     150, RefTw: 3,
		TsEff: 120, TwEff: 2.4,
		Ns: []int{16, 32},
		Ps: []int{4, 16},
		Algorithms: map[string]calibrate.AlgCalibration{
			"cannon": {Correction: 0.9, Cells: 4},
			"3dd":    {Correction: 0.85, Cells: 4},
		},
	}
	// Round-trip through Parse so the fixture is exactly what a file
	// load would produce (and stays valid as the schema evolves).
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := calibrate.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func getJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
	}
	return resp.StatusCode, data
}

func TestPlanCalibratedDiffersFromUncalibrated(t *testing.T) {
	plain := httptest.NewServer(mustNew(t, Config{}).Handler())
	defer plain.Close()
	cal := httptest.NewServer(mustNew(t, Config{Calibration: testProfile(t)}).Handler())
	defer cal.Close()

	const query = "/v1/plan?n=256&p=64"
	var base, calibrated Plan
	if code, data := getJSON(t, plain.URL+query, &base); code != http.StatusOK {
		t.Fatalf("uncalibrated plan: status %d: %s", code, data)
	}
	if code, data := getJSON(t, cal.URL+query, &calibrated); code != http.StatusOK {
		t.Fatalf("calibrated plan: status %d: %s", code, data)
	}

	if base.Calibrated {
		t.Error("plan without profile marked calibrated")
	}
	if base.UncalibratedTime != 0 {
		t.Errorf("plan without profile has uncalibrated_time %g", base.UncalibratedTime)
	}
	if !calibrated.Calibrated {
		t.Error("plan with profile not marked calibrated")
	}
	if calibrated.PredictedTime == base.PredictedTime {
		t.Errorf("calibrated prediction %g equals uncalibrated", calibrated.PredictedTime)
	}
	if calibrated.UncalibratedTime != base.PredictedTime {
		t.Errorf("calibrated plan's uncalibrated_time %g, want the plain prediction %g",
			calibrated.UncalibratedTime, base.PredictedTime)
	}
}

func TestCalibrationEndpoint(t *testing.T) {
	plain := httptest.NewServer(mustNew(t, Config{}).Handler())
	defer plain.Close()
	if code, data := getJSON(t, plain.URL+"/v1/calibration", nil); code != http.StatusNotFound {
		t.Errorf("no profile: status %d: %s", code, data)
	}

	profile := testProfile(t)
	cal := httptest.NewServer(mustNew(t, Config{Calibration: profile}).Handler())
	defer cal.Close()
	var got calibrate.Profile
	if code, data := getJSON(t, cal.URL+"/v1/calibration", &got); code != http.StatusOK {
		t.Fatalf("with profile: status %d: %s", code, data)
	}
	if got.TsEff != profile.TsEff || got.TwEff != profile.TwEff || len(got.Algorithms) != len(profile.Algorithms) {
		t.Errorf("served profile %+v does not match loaded %+v", got, profile)
	}

	resp, err := http.Post(cal.URL+"/v1/calibration", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/calibration: status %d, want 405", resp.StatusCode)
	}
}

func TestNewRejectsBadProfile(t *testing.T) {
	p := testProfile(t)
	p.TsEff = -1
	if _, err := New(Config{Calibration: p}); err == nil {
		t.Error("New accepted a poisoned calibration profile")
	}
}

func TestMetricsExposeCalibrationAndCacheGauges(t *testing.T) {
	cal := httptest.NewServer(mustNew(t, Config{Calibration: testProfile(t)}).Handler())
	defer cal.Close()
	// Populate the plan cache: one miss, one hit.
	for i := 0; i < 2; i++ {
		if code, data := getJSON(t, cal.URL+"/v1/plan?n=64&p=16", nil); code != http.StatusOK {
			t.Fatalf("plan: status %d: %s", code, data)
		}
	}
	code, body := getJSON(t, cal.URL+"/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	for _, want := range []string{
		"hmmd_calibration_loaded 1",
		"hmmd_plan_cache_hits_total 1",
		"hmmd_plan_cache_misses_total 1",
		"hmmd_plan_cache_entries 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
}

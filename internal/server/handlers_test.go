package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypermm"
)

// mustNew builds a Server or fails the test (New only errors on a bad
// calibration profile).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func postMatmul(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/matmul", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestMatmulAutoMatchesBestAlgorithmAndReference(t *testing.T) {
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, c := range []struct{ n, p int }{{16, 8}, {32, 8}, {64, 64}} {
		body := fmt.Sprintf(`{"n": %d, "p": %d, "algorithm": "auto", "seed": 7, "verify": true, "return_matrix": true}`, c.n, c.p)
		resp, data := postMatmul(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("n=%d p=%d: status %d: %s", c.n, c.p, resp.StatusCode, data)
		}
		var mr MatmulResponse
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		want, ok := hypermm.BestAlgorithm(float64(c.n), float64(c.p), 150, 3, hypermm.OnePort)
		if !ok {
			t.Fatalf("n=%d p=%d: no best algorithm", c.n, c.p)
		}
		if mr.Algorithm != want.Name() || !mr.Auto {
			t.Errorf("n=%d p=%d: served %s, BestAlgorithm says %s", c.n, c.p, mr.Algorithm, want.Name())
		}
		if mr.Verified == nil || !*mr.Verified {
			t.Errorf("n=%d p=%d: not verified", c.n, c.p)
		}
		// Differential check: the returned matrix must equal the local
		// reference product of the same seeded operands.
		A := hypermm.RandomMatrix(c.n, c.n, 7)
		B := hypermm.RandomMatrix(c.n, c.n, 8)
		ref := hypermm.MatMul(A, B)
		got := &hypermm.Matrix{Rows: c.n, Cols: c.n, Data: mr.C}
		if len(mr.C) != c.n*c.n {
			t.Fatalf("n=%d p=%d: returned matrix has %d values", c.n, c.p, len(mr.C))
		}
		if d := hypermm.MaxAbsDiff(got, ref); d > 1e-8*float64(c.n) {
			t.Errorf("n=%d p=%d: served product differs from reference by %g", c.n, c.p, d)
		}
		if mr.Ratio <= 0.5 || mr.Ratio >= 2 {
			t.Errorf("n=%d p=%d: sim/predicted ratio %g out of sane range", c.n, c.p, mr.Ratio)
		}
	}
}

func TestMatmulExplicitAlgorithmAndTrace(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postMatmul(t, ts, `{"n": 16, "p": 16, "algorithm": "cannon", "verify": true, "trace": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr MatmulResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Algorithm != "cannon" || mr.Auto {
		t.Errorf("served %s auto=%v", mr.Algorithm, mr.Auto)
	}
	if !strings.Contains(mr.Gantt, "timeline") || mr.TraceSum == "" {
		t.Error("trace requested but gantt/summary missing")
	}
}

func TestMatmulValidationAndErrorMapping(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2, MaxN: 64, MaxP: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},                                                                    // broken JSON
		{`{"n": 0, "p": 8}`, http.StatusBadRequest},                                                     // n out of range
		{`{"n": 16, "p": 128}`, http.StatusBadRequest},                                                  // p over MaxP
		{`{"n": 16, "p": 8, "ports": "zero"}`, http.StatusBadRequest},                                   // bad port model
		{`{"n": 16, "p": 8, "algorithm": "nope"}`, http.StatusBadRequest},                               // bad algorithm
		{`{"n": 2, "p": 16, "algorithm": "auto"}`, 422},                                                 // nothing applicable (p > n^3)
		{`{"n": 8, "p": 64, "algorithm": "berntsen"}`, 422},                                             // p > n^1.5
		{`{"n": 16, "p": 8, "a": [1, 2], "b": [3]}`, http.StatusBadRequest},                             // short operands
		{`{"n": 16, "p": 8, "deadline": 10}`, http.StatusGatewayTimeout},                                // simulated deadline
		{`{"n": 16, "p": 8, "fault": {"seed": 1, "drop": 1, "max_retries": 2}}`, http.StatusBadGateway}, // link down
	}
	for _, c := range cases {
		resp, data := postMatmul(t, ts, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("body %s: status %d, want %d (%s)", c.body, resp.StatusCode, c.want, data)
		}
	}

	// GET on a POST-only route.
	resp, err := http.Get(ts.URL + "/v1/matmul")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/matmul: status %d", resp.StatusCode)
	}
}

func TestMatmulFaultInjectionRecovers(t *testing.T) {
	// A light drop rate with the default retry budget: the protocol
	// recovers, the result still matches the reference.
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postMatmul(t, ts,
		`{"n": 16, "p": 8, "verify": true, "fault": {"seed": 42, "drop": 0.05}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr MatmulResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Simulated.Retries == 0 {
		t.Error("drop=0.05 run recorded no retries")
	}
	if mr.Verified == nil || !*mr.Verified {
		t.Error("faulted run not verified")
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/plan?n=256&p=64")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var plan Plan
	if err := json.Unmarshal(data, &plan); err != nil {
		t.Fatal(err)
	}
	want, _ := hypermm.BestAlgorithm(256, 64, 150, 3, hypermm.OnePort)
	if plan.AlgorithmName != want.Name() {
		t.Errorf("plan chose %s, want %s", plan.AlgorithmName, want.Name())
	}
	if len(plan.Candidates) == 0 {
		t.Error("plan endpoint returned no diagnostics")
	}

	// Auto machine size: p omitted.
	resp, err = http.Get(ts.URL + "/v1/plan?n=256&tc=0.5")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto-p status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.P < 2 {
		t.Errorf("auto-p plan chose p=%g", plan.P)
	}

	// Bad input.
	resp, err = http.Get(ts.URL + "/v1/plan?n=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad n: status %d", resp.StatusCode)
	}
}

func TestRegionMapEndpoint(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/regionmap?nsteps=21&psteps=11")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := string(data)
	// The one-port Figure 13 map always contains Cannon and 3D All
	// regions (letters from cost.Alg.Letter).
	if len(body) == 0 || !strings.Contains(body, "log") {
		t.Errorf("suspicious region map:\n%s", body)
	}

	resp, err = http.Get(ts.URL + "/v1/regionmap?nsteps=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nsteps=1: status %d", resp.StatusCode)
	}
}

func TestMetricsEndpointAndAdmissionControl(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv.sched.onExec = func() {
		entered <- struct{}{}
		<-hold
	}

	status := make(chan int, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/matmul", "application/json",
			strings.NewReader(`{"n": 16, "p": 8}`))
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}
	go post()
	<-entered // worker holds request 1
	go post()
	waitFor(t, func() bool { return srv.metrics.QueueDepth() == 1 }) // request 2 queued

	// Saturated: the third request must be rejected with 429.
	resp, data := postMatmul(t, ts, `{"n": 16, "p": 8}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (%s)", resp.StatusCode, data)
	}

	close(hold)
	if s1, s2 := <-status, <-status; s1 != 200 || s2 != 200 {
		t.Fatalf("held requests finished with %d, %d", s1, s2)
	}

	// The scrape must expose queue depth, per-algorithm jobs, rejects
	// and the sim-vs-predicted ratio.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	out := string(mdata)
	for _, want := range []string{
		"hmmd_queue_depth 0",
		`hmmd_jobs_total{algorithm="3dall"} 2`,
		"hmmd_rejects_total 1",
		"hmmd_sim_predicted_ratio_count 2",
		"hmmd_job_latency_seconds_count 2",
		"hmmd_plan_cache_hits_total",
		// One worker ran both jobs back to back: the first builds the
		// machine, the second reuses it warm.
		"hmmd_machine_pool_misses_total 1",
		"hmmd_machine_pool_hits_total 1",
		"hmmd_machine_pool_size 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q\n%s", want, out)
		}
	}
}

func TestHealthzAndDrain(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if s := get("/healthz"); s != http.StatusOK {
		t.Fatalf("/healthz = %d", s)
	}

	// Hold one job in flight, then begin the drain: the in-flight job
	// must complete with 200 while new work is refused with 503.
	hold := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.sched.onExec = func() {
		entered <- struct{}{}
		<-hold
	}
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/matmul", "application/json",
			strings.NewReader(`{"n": 16, "p": 8, "verify": true}`))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	waitFor(t, srv.sched.Draining)

	if s := get("/healthz"); s != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining = %d, want 503", s)
	}
	resp, data := postMatmul(t, ts, `{"n": 16, "p": 8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("matmul while draining = %d, want 503 (%s)", resp.StatusCode, data)
	}

	close(hold)
	if s := <-inflight; s != http.StatusOK {
		t.Errorf("in-flight job across drain finished with %d, want 200", s)
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}

func TestMatmulInlineOperands(t *testing.T) {
	srv := mustNew(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 2x2 identity times a chosen B: C must equal B exactly.
	var buf bytes.Buffer
	req := MatmulRequest{
		N: 2, P: 4, Algorithm: "cannon",
		A: []float64{1, 0, 0, 1}, B: []float64{5, 6, 7, 8},
		ReturnC: true,
	}
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, data := postMatmul(t, ts, buf.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr MatmulResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 7, 8}
	for i, v := range mr.C {
		if v != want[i] {
			t.Fatalf("C = %v, want %v", mr.C, want)
		}
	}
}

package server

import (
	"sync"
	"testing"

	"hypermm"
)

// Concurrency contract of the plan cache, meant to run under -race (the
// server-race make target covers this package): hammer calibrated and
// uncalibrated planners with overlapping keys from many goroutines and
// require (1) hit+miss accounting that reconciles exactly with the call
// count, (2) the LRU bound respected, (3) no cross-profile leakage —
// every plan from the calibrated planner is marked Calibrated with a
// raw Table-2 comparison time, every plan from the uncalibrated one is
// not — and (4) clone isolation: mutating a returned plan never
// corrupts what the cache hands out next.
func TestPlannerConcurrentMixedProfiles(t *testing.T) {
	model, err := hypermm.NewCalibratedModel(1.25, 0.8, map[hypermm.Algorithm]float64{
		hypermm.ThreeAll: 1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const cacheCap = 8
	calibrated := NewPlanner(cacheCap).WithCalibration(model)
	uncalibrated := NewPlanner(cacheCap)

	// More distinct keys than cache capacity, so the run exercises
	// eviction and re-miss, not just warm hits.
	var reqs []PlanRequest
	for _, n := range []float64{64, 128, 256, 512, 1024} {
		for _, p := range []float64{16, 64, 256} {
			reqs = append(reqs, PlanRequest{N: n, P: p, Ts: 150, Tw: 3, Tc: 0.5})
		}
	}

	const (
		workers = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	errs := make(chan string, workers*2)
	hammer := func(pl *Planner, wantCalibrated bool) {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for _, req := range reqs {
				plan, err := pl.Plan(req)
				if err != nil {
					errs <- err.Error()
					return
				}
				if plan.Calibrated != wantCalibrated {
					errs <- "plan crossed calibration profiles"
					return
				}
				if wantCalibrated && plan.UncalibratedTime <= 0 {
					errs <- "calibrated plan lost its raw Table-2 time"
					return
				}
				if !wantCalibrated && plan.UncalibratedTime != 0 {
					errs <- "uncalibrated plan carries a calibration comparison"
					return
				}
				// Clone isolation: scribble over the returned plan; the
				// cache must keep serving pristine copies.
				plan.PredictedTime = -1
				plan.AlgorithmName = "corrupted"
				if len(plan.Candidates) > 0 {
					plan.Candidates[0].Algorithm = "corrupted"
				}
			}
		}
	}
	for w := 0; w < workers/2; w++ {
		wg.Add(2)
		go hammer(calibrated, true)
		go hammer(uncalibrated, false)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	calls := int64(workers / 2 * rounds * len(reqs))
	for name, pl := range map[string]*Planner{"calibrated": calibrated, "uncalibrated": uncalibrated} {
		hits, misses, entries := pl.CacheStats()
		if hits+misses != calls {
			t.Errorf("%s: hits %d + misses %d != %d calls", name, hits, misses, calls)
		}
		if misses < int64(len(reqs)) {
			t.Errorf("%s: %d misses for %d distinct keys", name, misses, len(reqs))
		}
		if entries > cacheCap {
			t.Errorf("%s: %d entries exceed cache cap %d", name, entries, cacheCap)
		}
	}

	// After the scribbling above, a warm hit must still be pristine.
	for name, pl := range map[string]*Planner{"calibrated": calibrated, "uncalibrated": uncalibrated} {
		plan, err := pl.Plan(reqs[len(reqs)-1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plan.PredictedTime <= 0 || plan.AlgorithmName == "corrupted" {
			t.Errorf("%s: cache served a caller-mutated plan: %+v", name, plan)
		}
		for _, c := range plan.Candidates {
			if c.Algorithm == "corrupted" {
				t.Errorf("%s: cached candidate list aliases a caller's copy", name)
			}
		}
	}
}

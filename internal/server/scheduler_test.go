package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"hypermm"
)

// testJob returns a small runnable job: 3D All on p=8, n=16.
func testJob(t *testing.T) Job {
	t.Helper()
	pl := NewPlanner(8)
	plan, err := pl.Plan(PlanRequest{N: 16, P: 8, Ts: 150, Tw: 3, Tc: 0.5, Ports: hypermm.OnePort})
	if err != nil {
		t.Fatal(err)
	}
	return Job{
		Plan: plan,
		Cfg:  hypermm.Config{P: 8, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5},
		A:    hypermm.RandomMatrix(16, 16, 1),
		B:    hypermm.RandomMatrix(16, 16, 2),
	}
}

func TestSchedulerRunsJob(t *testing.T) {
	m := NewMetrics()
	pool := hypermm.NewMachinePool(2)
	defer pool.Close()
	s := NewScheduler(2, 4, pool, m)
	job := testJob(t)
	job.Verify = true
	r, err := s.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if r.Res == nil || r.Res.Elapsed <= 0 {
		t.Fatal("no simulated result")
	}
	if r.Ratio <= 0.5 || r.Ratio >= 2 {
		t.Errorf("sim/predicted ratio %g looks wrong", r.Ratio)
	}
	if jobs := m.Jobs(); jobs["3dall"] != 1 {
		t.Errorf("jobs counter = %v, want 3dall:1", jobs)
	}
	// A second identical job reuses the warm machine and must report the
	// same simulated makespan bit for bit.
	r2, err := s.Submit(context.Background(), testJob(t))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Res.Elapsed != r.Res.Elapsed {
		t.Errorf("warm rerun Elapsed %g != first run %g", r2.Res.Elapsed, r.Res.Elapsed)
	}
	st := pool.Stats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Errorf("pool stats after warm rerun look wrong: %+v", st)
	}
}

func TestSchedulerSaturationAndDrain(t *testing.T) {
	m := NewMetrics()
	s := NewScheduler(1, 1, nil, m)
	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.onExec = func() {
		entered <- struct{}{}
		<-hold
	}

	job1, job2 := testJob(t), testJob(t)
	type outcome struct {
		r   *JobResult
		err error
	}
	res1 := make(chan outcome, 1)
	go func() {
		r, err := s.Submit(context.Background(), job1)
		res1 <- outcome{r, err}
	}()
	<-entered // worker now holds job 1; queue is empty

	res2 := make(chan outcome, 1)
	go func() {
		r, err := s.Submit(context.Background(), job2)
		res2 <- outcome{r, err}
	}()
	waitFor(t, func() bool { return m.QueueDepth() == 1 }) // job 2 queued

	// Queue full, worker busy: admission control rejects job 3.
	if _, err := s.Submit(context.Background(), testJob(t)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit on full queue: err = %v, want ErrSaturated", err)
	}
	if m.Rejects() != 1 {
		t.Errorf("rejects = %d, want 1", m.Rejects())
	}

	// Begin drain with one job running and one queued: intake closes
	// immediately, both admitted jobs still complete.
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, s.Draining)
	if _, err := s.Submit(context.Background(), testJob(t)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err = %v, want ErrDraining", err)
	}

	close(hold) // release the worker
	o1, o2 := <-res1, <-res2
	if o1.err != nil || o2.err != nil {
		t.Fatalf("admitted jobs failed across drain: %v, %v", o1.err, o2.err)
	}
	if o1.r.Res == nil || o2.r.Res == nil {
		t.Fatal("admitted jobs returned no result")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if jobs := m.Jobs(); jobs["3dall"] != 2 {
		t.Errorf("jobs counter = %v, want 3dall:2", jobs)
	}
}

func TestSchedulerCanceledBeforeStart(t *testing.T) {
	m := NewMetrics()
	s := NewScheduler(1, 2, nil, m)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, testJob(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSchedulerFaultErrors(t *testing.T) {
	m := NewMetrics()
	s := NewScheduler(1, 2, nil, m)

	job := testJob(t)
	job.Cfg.Faults = &hypermm.FaultPlan{Seed: 1, Drop: 1, MaxRetries: 2}
	if _, err := s.Submit(context.Background(), job); !errors.Is(err, hypermm.ErrLinkDown) {
		t.Fatalf("total drop: err = %v, want ErrLinkDown", err)
	}

	job = testJob(t)
	job.Cfg.Deadline = 10
	if _, err := s.Submit(context.Background(), job); !errors.Is(err, hypermm.ErrDeadline) {
		t.Fatalf("tiny deadline: err = %v, want ErrDeadline", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hypermm"
	"hypermm/internal/cluster"
)

// clusterServer builds a coordinator-fronted Server with n in-process
// cluster workers, each running jobs through cluster.LocalExec.
func clusterServer(t *testing.T, cfg Config, n int) (*Server, *cluster.Coordinator) {
	t.Helper()
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr:          "127.0.0.1:0",
		ProbeInterval: 50 * time.Millisecond,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	for i := 0; i < n; i++ {
		w, err := cluster.Join(context.Background(), coord.Addr().String(), cluster.WorkerConfig{
			Name: fmt.Sprintf("w%d", i), Exec: cluster.LocalExec,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(context.Background())
		t.Cleanup(w.Abort)
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("worker count stuck at %d", coord.WorkerCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cfg.Cluster = coord
	return mustNew(t, cfg), coord
}

// TestMatmulThroughCluster runs the full HTTP path with jobs routed to
// cluster workers: the response must match a standalone server's, the
// product must verify, and the cluster metrics family must appear.
func TestMatmulThroughCluster(t *testing.T) {
	srv, _ := clusterServer(t, Config{Workers: 2, QueueDepth: 4}, 2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"n": 32, "p": 16, "algorithm": "cannon", "seed": 7, "verify": true, "return_matrix": true}`
	resp, data := postMatmul(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr MatmulResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Verified == nil || !*mr.Verified {
		t.Error("cluster-routed product did not verify")
	}

	// Byte-identical to a local run of the same seeded job.
	local, err := hypermm.Run(hypermm.Cannon,
		hypermm.Config{P: 16, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5},
		hypermm.RandomMatrix(32, 32, 7), hypermm.RandomMatrix(32, 32, 8))
	if err != nil {
		t.Fatal(err)
	}
	if mr.Simulated.Elapsed != local.Elapsed {
		t.Errorf("Elapsed %g != local %g", mr.Simulated.Elapsed, local.Elapsed)
	}
	if len(mr.C) != len(local.C.Data) {
		t.Fatalf("product has %d words, want %d", len(mr.C), len(local.C.Data))
	}
	for i := range local.C.Data {
		if mr.C[i] != local.C.Data[i] {
			t.Fatalf("product word %d differs", i)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hmmd_cluster_workers 2",
		"hmmd_cluster_completed_total 1",
		`hmmd_cluster_worker_jobs_total{worker=`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestTraceJobsRunLocally: per-node timelines don't travel the wire, so
// a trace request must execute in-process even on a coordinator.
func TestTraceJobsRunLocally(t *testing.T) {
	srv, coord := clusterServer(t, Config{Workers: 1, QueueDepth: 2}, 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, data := postMatmul(t, ts, `{"n": 16, "p": 16, "algorithm": "cannon", "trace": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var mr MatmulResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Gantt == "" || mr.TraceSum == "" {
		t.Error("trace request lost its timeline")
	}
	if st := coord.Stats(); st.Dispatched != 0 {
		t.Errorf("trace job went over the wire: %+v", st)
	}
}

// TestClusterDrainAnswers503 pins the drain contract at the HTTP layer:
// while the coordinator drains, new matmul requests get 503 and the
// in-flight one still completes with 200.
func TestClusterDrainAnswers503(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	gated := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		<-release
		return hypermm.Run(alg, cfg, A, B)
	}
	coord, err := cluster.NewCoordinator(cluster.Config{Addr: "127.0.0.1:0", RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	w, err := cluster.Join(context.Background(), coord.Addr().String(), cluster.WorkerConfig{Name: "w0", Exec: gated})
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(context.Background())
	t.Cleanup(w.Abort)
	for coord.WorkerCount() != 1 {
		time.Sleep(2 * time.Millisecond)
	}
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 4, Cluster: coord})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var inflightStatus int
	go func() {
		defer wg.Done()
		resp, _ := postMatmul(t, ts, `{"n": 16, "p": 16, "algorithm": "cannon"}`)
		inflightStatus = resp.StatusCode
	}()
	<-started

	go coord.Drain(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for !coord.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}

	resp, data := postMatmul(t, ts, `{"n": 16, "p": 16, "algorithm": "cannon"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d (%s), want 503", resp.StatusCode, data)
	}

	close(release)
	wg.Wait()
	if inflightStatus != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", inflightStatus)
	}
}

// TestExecuteMatchesRun pins Server.Execute — the worker-side ExecFunc
// adapter — against a direct hypermm.Run.
func TestExecuteMatchesRun(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	A := hypermm.RandomMatrix(16, 16, 3)
	B := hypermm.RandomMatrix(16, 16, 4)
	cfg := hypermm.Config{P: 16, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5}
	local, err := hypermm.Run(hypermm.Cannon, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Execute(context.Background(), hypermm.Cannon, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if got.Elapsed != local.Elapsed || got.Comm != local.Comm {
		t.Errorf("Execute diverged: %+v/%g vs %+v/%g", got.Comm, got.Elapsed, local.Comm, local.Elapsed)
	}
	for i := range local.C.Data {
		if got.C.Data[i] != local.C.Data[i] {
			t.Fatalf("word %d differs", i)
		}
	}

	// A config the planner refuses (p=6 is not a hypercube) must still
	// execute under the bare-plan fallback, exactly like hypermm.Run.
	odd := hypermm.Config{P: 6, Ports: hypermm.OnePort, Ts: 150, Tw: 3}
	wantOdd, wantErr := hypermm.Run(hypermm.Simple, odd, A, B)
	gotOdd, gotErr := srv.Execute(context.Background(), hypermm.Simple, odd, A, B)
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("bare-plan fallback: err %v vs local %v", gotErr, wantErr)
	}
	if wantErr == nil && gotOdd.Elapsed != wantOdd.Elapsed {
		t.Error("bare-plan fallback diverged")
	}
}

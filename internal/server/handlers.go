package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"hypermm"
	"hypermm/internal/calibrate"
	"hypermm/internal/cluster"
	"hypermm/internal/obs"
	"hypermm/internal/qos"
)

// Config sizes the serving subsystem.
type Config struct {
	Workers    int // worker pool size (default 4)
	QueueDepth int // bounded queue (default 2 * Workers)
	CacheSize  int // planner LRU entries (default 1024)
	MaxN       int // largest accepted matrix size (default 1024)
	MaxP       int // largest accepted machine size (default 4096)

	// PoolSize bounds the warm machine pool: at most this many idle
	// simulated machines are kept for reuse across requests (default
	// 2 * Workers; negative disables pooling and every job builds a
	// cold machine).
	PoolSize int

	// Calibration, when non-nil, is a validated measurement-fitted
	// profile (internal/calibrate): the planner predicts with it, plans
	// are marked calibrated, and GET /v1/calibration serves it.
	Calibration *calibrate.Profile

	// QoS, when non-nil, is a validated multi-tenant policy
	// (internal/qos): requests resolve to tenants by API key or
	// X-Tenant header, the scheduler queue becomes weighted-fair with
	// class priorities, token buckets meter admission by predicted
	// cost, and /metrics gains the hmmd_qos_* family. Nil serves every
	// request as one default tenant with the pre-QoS FIFO semantics.
	QoS *qos.Config

	// Cluster, when non-nil, makes this server a coordinator front-end:
	// non-trace jobs are routed to registered cluster workers instead of
	// executing in-process, and /metrics gains the cluster family.
	Cluster *cluster.Coordinator

	// TraceRing bounds the in-memory ring of recently completed request
	// traces behind GET /v1/trace/{id} (default 256; negative disables
	// request tracing entirely).
	TraceRing int

	// Tracer, when non-nil, overrides the ring built from TraceRing.
	// The daemon uses this to share one tracer between the HTTP tier and
	// the cluster tier, so coordinator-side dispatch spans and ingested
	// worker spans land in the same ring as the handler's root span.
	Tracer *obs.Tracer

	// Log receives per-job and lifecycle events as structured records
	// (nil: silent).
	Log *slog.Logger

	// Pprof mounts net/http/pprof's profiling handlers under
	// /debug/pprof/ (opt-in: profiles expose process internals).
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheSize < 1 {
		c.CacheSize = 1024
	}
	if c.MaxN < 1 {
		c.MaxN = 1024
	}
	if c.MaxP < 1 {
		c.MaxP = 4096
	}
	if c.PoolSize == 0 {
		c.PoolSize = 2 * c.Workers
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.Log == nil {
		c.Log = obs.NopLogger()
	}
	return c
}

// Server wires the planner, scheduler, machine pool and metrics behind
// an HTTP API.
type Server struct {
	cfg     Config
	planner *Planner
	sched   *Scheduler
	metrics *Metrics
	pool    *hypermm.MachinePool // nil when pooling is disabled
	cluster *cluster.Coordinator // nil when serving standalone
	tracer  *obs.Tracer          // nil when request tracing is disabled
	qosReg  *qos.Registry        // never nil; disabled without Config.QoS
}

// New builds a ready-to-serve Server. A Config.Calibration profile
// that fails validation or model construction is an error: serving
// traffic with a half-loaded cost model is worse than refusing to
// start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	planner := NewPlanner(cfg.CacheSize)
	if cfg.Calibration != nil {
		model, err := cfg.Calibration.Model()
		if err != nil {
			return nil, fmt.Errorf("server: calibration profile rejected: %w", err)
		}
		planner.WithCalibration(model)
		m.SetCalibrationLoaded(true)
	}
	var pool *hypermm.MachinePool
	if cfg.PoolSize > 0 {
		pool = hypermm.NewMachinePool(cfg.PoolSize)
		pool.SetObserver(func(hit bool, wait time.Duration) {
			m.StageObserve("pool_checkout", wait)
		})
	}
	tracer := cfg.Tracer
	if tracer == nil && cfg.TraceRing > 0 {
		tracer = obs.NewTracer("hmmd", cfg.TraceRing)
	}
	sched := NewScheduler(cfg.Workers, cfg.QueueDepth, pool, m)
	sched.cluster = cfg.Cluster
	sched.tracer = tracer
	if cfg.QoS != nil {
		if err := cfg.QoS.Validate(); err != nil {
			return nil, fmt.Errorf("server: qos config rejected: %w", err)
		}
		sched.reg = qos.NewRegistry(cfg.QoS, nil)
	}
	return &Server{
		cfg:     cfg,
		planner: planner,
		sched:   sched,
		metrics: m,
		pool:    pool,
		cluster: cfg.Cluster,
		tracer:  tracer,
		qosReg:  sched.reg,
	}, nil
}

// Execute plans and runs one multiplication through the scheduler's
// admission control, without the HTTP layer — cluster workers wrap it
// as their ExecFunc. A plannable job keeps its predicted-time ratio in
// the metrics; one the cost model refuses (the planner can be stricter
// than the emulator) still executes, under a bare plan.
func (s *Server) Execute(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
	return s.ExecuteMeta(ctx, cluster.JobMeta{}, alg, cfg, A, B)
}

// ExecuteMeta is Execute with QoS attribution from the wire: the job is
// accounted to the named tenant (or this worker's default) and queued
// at the carried class, but marked pre-admitted — the coordinator that
// accepted the request already debited the tenant's token bucket, and
// a forwarded job must not pay twice.
func (s *Server) ExecuteMeta(ctx context.Context, meta cluster.JobMeta, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
	plan, err := s.planner.Plan(PlanRequest{
		N: float64(A.Rows), P: float64(cfg.P),
		Ts: cfg.Ts, Tw: cfg.Tw, Tc: cfg.Tc, Ports: cfg.Ports, Alg: &alg,
	})
	if err != nil {
		plan = &Plan{Algorithm: alg, AlgorithmName: alg.Name()}
	}
	job := Job{Plan: plan, Cfg: cfg, A: A, B: B, PreAdmitted: true}
	job.Tenant = s.qosReg.Default()
	if meta.Tenant != "" {
		if t := s.qosReg.ByName(meta.Tenant); t != nil {
			job.Tenant = t
		}
	}
	job.Class = job.Tenant.Class
	if c, cerr := qos.ParseClass(meta.Class); cerr == nil && meta.Class != "" {
		job.Class = c
	}
	job.EDFDeadline = cfg.Deadline
	jr, err := s.sched.Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	return jr.Res, nil
}

// Metrics exposes the registry (for tests and the daemon).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the request-trace ring (nil when tracing is disabled);
// the daemon hands it to the cluster tier so one ring holds both halves
// of a cross-process trace.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Planner exposes the planner (for tests and the daemon).
func (s *Server) Planner() *Planner { return s.planner }

// Drain stops job intake and waits (bounded by ctx) for admitted jobs
// to finish; /healthz reports draining and new jobs get 503. The warm
// machine pool is closed afterwards (machines still checked out by
// straggling jobs are closed as they come back).
func (s *Server) Drain(ctx context.Context) error {
	err := s.sched.Drain(ctx)
	if s.pool != nil {
		s.pool.Close()
	}
	return err
}

// PoolStats reports the warm machine pool's counters (zero when pooling
// is disabled).
func (s *Server) PoolStats() hypermm.PoolStats {
	if s.pool == nil {
		return hypermm.PoolStats{}
	}
	return s.pool.Stats()
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/matmul", s.handleMatmul)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/regionmap", s.handleRegionMap)
	mux.HandleFunc("/v1/calibration", s.handleCalibration)
	mux.HandleFunc("/v1/qos", s.handleQoS)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/v1/version", s.handleVersion)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// FaultSpec is the request-level fault plan for chaos-in-prod testing;
// fields mirror hypermm.FaultPlan.
type FaultSpec struct {
	Seed       uint64  `json:"seed"`
	Drop       float64 `json:"drop"`
	Dup        float64 `json:"dup"`
	DelayProb  float64 `json:"delay_prob"`
	DelayTime  float64 `json:"delay_time"`
	MaxRetries int     `json:"max_retries"`
	AckTimeout float64 `json:"ack_timeout"`
	Backoff    float64 `json:"backoff"`
	// Down lists [src, dst, from, to] outage windows; src/dst -1 match
	// every node and to <= 0 means forever.
	Down [][4]float64 `json:"down"`
}

func (f *FaultSpec) plan() *hypermm.FaultPlan {
	if f == nil {
		return nil
	}
	fp := &hypermm.FaultPlan{
		Seed: f.Seed, Drop: f.Drop, Dup: f.Dup,
		DelayProb: f.DelayProb, DelayTime: f.DelayTime,
		MaxRetries: f.MaxRetries, AckTimeout: f.AckTimeout, Backoff: f.Backoff,
	}
	for _, w := range f.Down {
		to := w[3]
		if to <= 0 {
			to = hypermm.Forever
		}
		fp.Down = append(fp.Down, hypermm.Window{Src: int(w[0]), Dst: int(w[1]), From: w[2], To: to})
	}
	return fp
}

// MatmulRequest is the POST /v1/matmul body. Operands come either from
// Seed (deterministic server-side generation) or inline row-major A/B.
type MatmulRequest struct {
	N         int        `json:"n"`
	P         int        `json:"p"`
	Ports     string     `json:"ports"`     // "one" (default) or "multi"
	Ts        *float64   `json:"ts"`        // default 150
	Tw        *float64   `json:"tw"`        // default 3
	Tc        *float64   `json:"tc"`        // default 0.5
	Algorithm string     `json:"algorithm"` // "auto" (default) or a name
	Seed      int64      `json:"seed"`      // operand seed (default 1)
	A         []float64  `json:"a,omitempty"`
	B         []float64  `json:"b,omitempty"`
	Verify    bool       `json:"verify"`
	Trace     bool       `json:"trace"`
	Deadline  float64    `json:"deadline"` // simulated-time budget, 0 = none
	Fault     *FaultSpec `json:"fault,omitempty"`
	ReturnC   bool       `json:"return_matrix"`
	// Class optionally demotes this request below its tenant's default
	// priority class ("interactive", "batch", "best-effort"); claiming a
	// class above the tenant's own is a 400.
	Class string `json:"class,omitempty"`
}

// MatmulResponse is the POST /v1/matmul reply.
type MatmulResponse struct {
	Algorithm string         `json:"algorithm"`
	Auto      bool           `json:"auto"`
	N         int            `json:"n"`
	P         int            `json:"p"`
	Ports     string         `json:"ports"`
	Predicted *Plan          `json:"predicted"`
	Simulated SimulatedStats `json:"simulated"`
	Ratio     float64        `json:"ratio"`
	Verified  *bool          `json:"verified,omitempty"`
	WallMs    float64        `json:"wall_ms"`
	C         []float64      `json:"c,omitempty"`
	Gantt     string         `json:"gantt,omitempty"`
	TraceSum  string         `json:"trace_summary,omitempty"`
}

// SimulatedStats is the emulator's measured side of the response.
type SimulatedStats struct {
	Elapsed  float64 `json:"elapsed"`
	Msgs     int64   `json:"msgs"`
	Words    int64   `json:"words"`
	Startups int64   `json:"startups"`
	Flops    int64   `json:"flops"`
	Retries  int64   `json:"retries"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	// Backpressure rejections carry a drain estimate; surface it as the
	// standard Retry-After header (whole seconds, at least 1) so clients
	// can pace instead of hammering.
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		secs := int(ra.After / time.Second)
		if ra.After%time.Second != 0 {
			secs++
		}
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// errStatus maps subsystem errors to HTTP statuses.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrSaturated):
		return http.StatusTooManyRequests // 429: admission control
	case errors.Is(err, ErrQuota), errors.Is(err, ErrShed):
		return http.StatusTooManyRequests // 429: tenant over quota / shed
	case errors.Is(err, ErrInfeasible):
		return http.StatusGatewayTimeout // 504: predicted to miss its deadline
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable // 503: shutting down
	case errors.Is(err, cluster.ErrDraining), errors.Is(err, cluster.ErrNoWorkers):
		return http.StatusServiceUnavailable // 503: no cluster capacity
	case errors.Is(err, cluster.ErrBusy):
		return http.StatusTooManyRequests // 429: every worker saturated
	case errors.Is(err, cluster.ErrWorkerLost):
		return http.StatusBadGateway // 502: worker died, failover exhausted
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrInapplicable):
		return http.StatusUnprocessableEntity // 422: model says no
	case errors.Is(err, hypermm.ErrLinkDown):
		return http.StatusBadGateway // 502: injected network fault
	case errors.Is(err, hypermm.ErrDeadline):
		return http.StatusGatewayTimeout // 504: simulated deadline
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client gave up (nginx convention)
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleMatmul(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	// Root span for the whole request; every downstream stage (plan,
	// queue, run or dispatch, worker execution) parents under it via the
	// request context. The trace ID goes out as a response header first
	// thing so even failed requests are correlatable.
	hstart := time.Now()
	ctx, span := s.tracer.StartSpan(r.Context(), "http.matmul")
	if id := span.TraceID(); id != "" {
		w.Header().Set("X-Trace-Id", id)
	}
	outcome := "bad_request"
	defer func() {
		span.Set(obs.String("outcome", outcome))
		span.End()
		s.metrics.StageObserve("handler", time.Since(hstart))
	}()

	var req MatmulRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	if req.N < 1 || req.N > s.cfg.MaxN {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("n=%d out of range [1, %d]", req.N, s.cfg.MaxN))
		return
	}
	if req.P < 1 || req.P > s.cfg.MaxP {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("p=%d out of range [1, %d]", req.P, s.cfg.MaxP))
		return
	}
	ports, err := parsePortsDefault(req.Ports)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ts, tw, tc := orDefault(req.Ts, 150), orDefault(req.Tw, 3), orDefault(req.Tc, 0.5)

	preq := PlanRequest{N: float64(req.N), P: float64(req.P), Ts: ts, Tw: tw, Tc: tc, Ports: ports}
	auto := req.Algorithm == "" || req.Algorithm == "auto"
	if !auto {
		alg, perr := hypermm.ParseAlgorithm(req.Algorithm)
		if perr != nil {
			writeErr(w, http.StatusBadRequest, perr)
			return
		}
		preq.Alg = &alg
	}
	pstart := time.Now()
	_, pspan := s.tracer.StartSpan(ctx, "plan")
	plan, err := s.planner.Plan(preq)
	pspan.Set(obs.Bool("ok", err == nil))
	pspan.End()
	s.metrics.StageObserve("plan", time.Since(pstart))
	if err != nil {
		outcome = "plan_error"
		writeErr(w, errStatus(err), err)
		return
	}
	span.Set(obs.String("algorithm", plan.AlgorithmName),
		obs.Int("n", req.N), obs.Int("p", req.P), obs.Bool("auto", plan.Auto))

	// Tenant resolution and deadline admission. The tenant's class is a
	// ceiling: a request may demote itself (an interactive tenant running
	// a backfill as best-effort) but never claim a class above its own.
	tenant := s.qosReg.Resolve(r.Header.Get("X-API-Key"), r.Header.Get("X-Tenant"))
	class := tenant.Class
	if req.Class != "" {
		c, cerr := qos.ParseClass(req.Class)
		if cerr != nil {
			writeErr(w, http.StatusBadRequest, cerr)
			return
		}
		if c < tenant.Class {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("class %q above tenant %q ceiling %q", c.String(), tenant.Name, tenant.Class.String()))
			return
		}
		class = c
	}
	span.Set(obs.String("tenant", tenant.Name), obs.String("class", class.String()))
	if s.qosReg.Enabled() && req.Deadline > 0 && plan.PredictedTime > req.Deadline {
		// The cost model (calibrated when a profile is loaded) says this
		// job cannot make its own deadline: refuse it before it consumes
		// a slot and times out anyway.
		tenant.Infeasible.Add(1)
		outcome = "infeasible"
		writeErr(w, errStatus(ErrInfeasible), fmt.Errorf("%w: predicted %g > deadline %g",
			ErrInfeasible, plan.PredictedTime, req.Deadline))
		return
	}

	// Request-scoped arena: seeded operands are built on pooled slabs
	// and returned when the request is done, so steady-state serving
	// reuses the same few big buffers instead of churning the GC. The
	// arena is only released once the job provably finished — a client
	// that gives up leaves its job running on these very slabs.
	arena := hypermm.NewArena()
	releaseArena := true
	defer func() {
		if releaseArena {
			arena.Release()
		}
	}()
	A, B, err := operands(&req, arena)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}

	job := Job{
		Plan: plan,
		Cfg: hypermm.Config{
			P: req.P, Ports: ports, Ts: ts, Tw: tw, Tc: tc,
			Faults: req.Fault.plan(), Deadline: req.Deadline,
		},
		A: A, B: B, Trace: req.Trace, Verify: req.Verify,
		Tenant: tenant, Class: class,
		EDFDeadline: req.Deadline, Cost: plan.PredictedTime,
	}
	jr, err := s.sched.Submit(ctx, job)
	if err != nil {
		if jr == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The client gave up but the admitted job still runs to
			// completion on the arena's operands: leave the slabs to
			// the garbage collector rather than recycle them under it.
			releaseArena = false
		}
		outcome = errKind(err)
		s.cfg.Log.Warn("matmul failed",
			"trace_id", span.TraceID(), "algorithm", plan.AlgorithmName,
			"tenant", tenant.Name, "class", class.String(),
			"n", req.N, "p", req.P, "outcome", outcome, "error", err.Error())
		writeErr(w, errStatus(err), err)
		return
	}
	outcome = "ok"
	s.cfg.Log.Info("matmul served",
		"trace_id", span.TraceID(), "algorithm", plan.AlgorithmName,
		"tenant", tenant.Name, "class", class.String(),
		"n", req.N, "p", req.P, "outcome", outcome,
		"wall_ms", float64(jr.Wall.Microseconds())/1000, "ratio", jr.Ratio)
	if jr.Res != nil {
		// The product's backing slab feeds the next request's operands.
		defer arena.Adopt(jr.Res.C)
	}

	resp := MatmulResponse{
		Algorithm: plan.AlgorithmName, Auto: plan.Auto,
		N: req.N, P: req.P, Ports: ports.String(),
		Predicted: plan,
		Simulated: SimulatedStats{
			Elapsed: jr.Res.Elapsed, Msgs: jr.Res.Comm.Msgs, Words: jr.Res.Comm.Words,
			Startups: jr.Res.Comm.Startups, Flops: jr.Res.Comm.Flops, Retries: jr.Res.Comm.Retries,
		},
		Ratio:  jr.Ratio,
		WallMs: float64(jr.Wall.Microseconds()) / 1000,
	}
	if req.Verify {
		ok := true
		resp.Verified = &ok
	}
	if req.ReturnC {
		resp.C = jr.Res.C.Data
	}
	if jr.Trace != nil {
		resp.Gantt = jr.Trace.Gantt(100)
		resp.TraceSum = jr.Trace.Summary()
	}
	writeJSON(w, http.StatusOK, resp)
}

// operands builds A and B from inline data or the request seed. Seeded
// operands are allocated on the request's arena (contents are identical
// to hypermm.RandomMatrix); inline operands alias the decoded JSON
// slices and stay off the arena.
func operands(req *MatmulRequest, arena *hypermm.Arena) (A, B *hypermm.Matrix, err error) {
	n := req.N
	if len(req.A) == 0 && len(req.B) == 0 {
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		return arena.RandomMatrix(n, n, seed), arena.RandomMatrix(n, n, seed+1), nil
	}
	if len(req.A) != n*n || len(req.B) != n*n {
		return nil, nil, fmt.Errorf("inline operands must both be n*n=%d values (got %d and %d)",
			n*n, len(req.A), len(req.B))
	}
	return &hypermm.Matrix{Rows: n, Cols: n, Data: req.A},
		&hypermm.Matrix{Rows: n, Cols: n, Data: req.B}, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	n, err := queryFloat(q.Get("n"), 0)
	if err != nil || n < 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("need a numeric n >= 1, got %q", q.Get("n")))
		return
	}
	p, err := queryFloat(q.Get("p"), 0) // 0: planner searches machine sizes
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ts, err1 := queryFloat(q.Get("ts"), 150)
	tw, err2 := queryFloat(q.Get("tw"), 3)
	tc, err3 := queryFloat(q.Get("tc"), 0.5)
	if err := errors.Join(err1, err2, err3); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ports, err := parsePortsDefault(q.Get("ports"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	preq := PlanRequest{N: n, P: p, Ts: ts, Tw: tw, Tc: tc, Ports: ports}
	if alg := q.Get("alg"); alg != "" && alg != "auto" {
		a, perr := hypermm.ParseAlgorithm(alg)
		if perr != nil {
			writeErr(w, http.StatusBadRequest, perr)
			return
		}
		preq.Alg = &a
	}
	plan, err := s.planner.Plan(preq)
	if err != nil {
		writeErr(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, plan)
}

func (s *Server) handleRegionMap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	ports, err := parsePortsDefault(q.Get("ports"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ts, err1 := queryFloat(q.Get("ts"), 150)
	tw, err2 := queryFloat(q.Get("tw"), 3)
	// Figure 13/14 axes by default: logN in [4, 14], logP in [2, 16].
	lnMin, err3 := queryFloat(q.Get("lognmin"), 4)
	lnMax, err4 := queryFloat(q.Get("lognmax"), 14)
	lpMin, err5 := queryFloat(q.Get("logpmin"), 2)
	lpMax, err6 := queryFloat(q.Get("logpmax"), 16)
	nSteps, err7 := queryInt(q.Get("nsteps"), 61)
	pSteps, err8 := queryInt(q.Get("psteps"), 29)
	if err := errors.Join(err1, err2, err3, err4, err5, err6, err7, err8); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if nSteps < 2 || pSteps < 2 || nSteps > 512 || pSteps > 512 ||
		lnMax <= lnMin || lpMax <= lpMin {
		writeErr(w, http.StatusBadRequest, errors.New("region map axes out of range"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, hypermm.RegionMap(ports, ts, tw, lnMin, lnMax, nSteps, lpMin, lpMax, pSteps))
}

// handleCalibration serves the loaded calibration profile, or 404 when
// the daemon plans with the raw analytic model.
func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	if s.cfg.Calibration == nil {
		writeErr(w, http.StatusNotFound, errors.New("no calibration profile loaded (start hmmd with -calibration)"))
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Calibration)
}

// handleQoS serves the loaded QoS policy plus live per-tenant stats, or
// 404 when the daemon serves without one.
func (s *Server) handleQoS(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	if s.cfg.QoS == nil {
		writeErr(w, http.StatusNotFound, errors.New("no QoS policy loaded (start hmmd with -qos)"))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Config  *qos.Config       `json:"config"`
		Tenants []qos.TenantStats `json:"tenants"`
	}{s.cfg.QoS, s.sched.QoSStats()})
}

// handleTrace serves one recorded request trace. The default form is
// the Chrome trace-event JSON (load it in Perfetto or chrome://tracing)
// with server spans and, for traced runs, the simulated per-node
// timeline merged on the request's wall-clock interval; ?format=spans
// returns the raw span records for programmatic assertions.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	if s.tracer == nil {
		writeErr(w, http.StatusNotFound, errors.New("request tracing disabled (TraceRing < 0)"))
		return
	}
	td, ok := s.tracer.Trace(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown trace %q (the ring holds the most recent traces only)", id))
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = td.ChromeJSON(w)
	case "spans":
		writeJSON(w, http.StatusOK, td)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want chrome or spans)", r.URL.Query().Get("format")))
	}
}

// handleVersion serves the build's identity from the binary itself.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, ReadVersion())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.sched.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, entries := s.planner.CacheStats()
	var cl *cluster.Stats
	if s.cluster != nil {
		st := s.cluster.Stats()
		cl = &st
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var qs []qos.TenantStats
	if s.qosReg.Enabled() {
		qs = s.sched.QoSStats()
	}
	fmt.Fprint(w, s.metrics.Render(hits, misses, entries, s.PoolStats(), cl, qs))
}

func parsePortsDefault(s string) (hypermm.PortModel, error) {
	if s == "" {
		return hypermm.OnePort, nil
	}
	return hypermm.ParsePortModel(s)
}

func orDefault(v *float64, def float64) float64 {
	if v == nil {
		return def
	}
	return *v
}

func queryFloat(s string, def float64) (float64, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad numeric parameter %q", s)
	}
	return v, nil
}

func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer parameter %q", s)
	}
	return v, nil
}

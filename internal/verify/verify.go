// Package verify is the differential verification harness behind
// cmd/chaos: for a given (n, p, port model, seed, fault plan) tuple it
// runs every applicable algorithm, cross-checks each distributed product
// against the serial kernel and against every other algorithm
// element-wise, and — when the fault plan is empty — checks that the
// measured communication overhead still reconciles with the paper's
// Table 2 analytic model.
//
// Everything here is deterministic: the operand matrices come from the
// case seed, the emulator's clocks are reproducible, and fault decisions
// are a pure function of the plan seed — so a Report (including
// simulated clocks) is bit-identical across invocations of the same
// case.
package verify

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"

	"hypermm"
)

// Case is one verification tuple.
type Case struct {
	N, P       int
	Ports      hypermm.PortModel
	Seed       int64 // operand content seed
	Ts, Tw, Tc float64
	Plan       *hypermm.FaultPlan // nil or empty: clean run + cost reconciliation
	Deadline   float64            // simulated-time budget (0 = none)
}

// Status classifies one algorithm's outcome on a case.
type Status int

const (
	// OK: ran to completion and matched the serial product.
	OK Status = iota
	// Faulted: failed with a typed injected-fault error (ErrLinkDown or
	// ErrDeadline) — the expected clean failure mode under a hostile
	// plan, never acceptable on a clean case.
	Faulted
	// Failed: wrong product, mismatched counters, or an untyped error.
	Failed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Faulted:
		return "faulted"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Outcome is one algorithm's result on a case.
type Outcome struct {
	Alg     hypermm.Algorithm
	Status  Status
	Err     error   // the typed fault or failure cause (nil when OK)
	Elapsed float64 // simulated makespan (0 when the run errored)
	Retries int64   // lost attempts recovered by the retry protocol
	MaxDiff float64 // max |C - serial| (only when the run completed)
	Note    string  // human-readable detail (reconciliation, fault kind)
}

// Report is the harness verdict for one case.
type Report struct {
	Case      Case
	Tol       float64 // scale-aware element tolerance used
	Outcomes  []Outcome
	CrossDiff float64 // max pairwise element diff between completed algorithms
	OK        bool    // no Outcome Failed, cross-check within tolerance
}

// Runnable reports whether the algorithm's grid embedding and block
// partition exist for an n x n problem on p processors — the shape
// preconditions the runners enforce, mirrored here so the harness can
// distinguish "not applicable" from "unexpectedly failed".
func Runnable(alg hypermm.Algorithm, n, p int) bool {
	if n <= 0 || p <= 0 || p&(p-1) != 0 {
		return false
	}
	d := bits.Len(uint(p)) - 1
	switch alg {
	case hypermm.Simple, hypermm.Cannon, hypermm.HJE, hypermm.TwoDiag, hypermm.Fox:
		// sqrt(p) x sqrt(p) mesh, blocks of n/sqrt(p).
		if d%2 != 0 || n%(1<<(d/2)) != 0 {
			return false
		}
		if alg == hypermm.HJE && d > 2 {
			// HJE additionally slices each block into log sqrt(p) strips.
			return (n / (1 << (d / 2))) % (d / 2) == 0
		}
		return true
	case hypermm.DNS, hypermm.ThreeDiag:
		// cbrt(p)^3 grid, blocks of n/cbrt(p).
		if d%3 != 0 {
			return false
		}
		return n%(1<<(d/3)) == 0
	case hypermm.Berntsen, hypermm.AllTrans, hypermm.ThreeAll:
		// cbrt(p)^3 grid with the finer n/cbrt(p)^2 partition.
		if d%3 != 0 {
			return false
		}
		q := 1 << (d / 3)
		return n%(q*q) == 0
	default:
		return false
	}
}

// Algorithms returns every algorithm runnable at (n, p).
func Algorithms(n, p int) []hypermm.Algorithm {
	var out []hypermm.Algorithm
	for _, alg := range hypermm.Algorithms {
		if Runnable(alg, n, p) {
			out = append(out, alg)
		}
	}
	return out
}

// Check runs the case: every runnable algorithm under the plan, each
// product checked against the serial kernel, all completed products
// cross-checked pairwise, and — on a clean case — measured communication
// overhead reconciled against the Table 2 analytic bound.
func Check(c Case) Report {
	A := hypermm.RandomMatrix(c.N, c.N, c.Seed*31+1)
	B := hypermm.RandomMatrix(c.N, c.N, c.Seed*31+2)
	want := hypermm.MatMul(A, B)
	r := Report{Case: c, Tol: tolFor(A, B, c.N), OK: true}

	clean := c.Plan == nil || c.Plan.Empty()
	cfg := hypermm.Config{
		P: c.P, Ports: c.Ports, Ts: c.Ts, Tw: c.Tw, Tc: c.Tc,
		Faults: c.Plan, Deadline: c.Deadline,
	}

	var completed []struct {
		alg hypermm.Algorithm
		C   *hypermm.Matrix
	}
	for _, alg := range Algorithms(c.N, c.P) {
		o := Outcome{Alg: alg}
		res, err := hypermm.Run(alg, cfg, A, B)
		switch {
		case err == nil:
			o.Elapsed = res.Elapsed
			o.Retries = res.Comm.Retries
			o.MaxDiff = hypermm.MaxAbsDiff(res.C, want)
			if o.MaxDiff > r.Tol {
				o.Status = Failed
				o.Err = fmt.Errorf("product off by %g (tol %g)", o.MaxDiff, r.Tol)
			} else if clean {
				if note, ok := reconcile(alg, c, res); !ok {
					o.Status = Failed
					o.Err = errors.New(note)
				} else {
					o.Note = note
				}
			}
			if o.Status == OK {
				completed = append(completed, struct {
					alg hypermm.Algorithm
					C   *hypermm.Matrix
				}{alg, res.C})
			}
		case errors.Is(err, hypermm.ErrLinkDown) || errors.Is(err, hypermm.ErrDeadline):
			o.Err = err
			if clean {
				// Typed faults must never fire without injection.
				o.Status = Failed
			} else {
				o.Status = Faulted
				o.Note = faultKind(err)
			}
		default:
			o.Status = Failed
			o.Err = err
		}
		if o.Status == Failed {
			r.OK = false
		}
		r.Outcomes = append(r.Outcomes, o)
	}

	// Differential cross-check: every pair of completed products must
	// agree element-wise within twice the serial tolerance (each side
	// may deviate from serial by up to Tol in opposite directions).
	for i := 0; i < len(completed); i++ {
		for j := i + 1; j < len(completed); j++ {
			d := hypermm.MaxAbsDiff(completed[i].C, completed[j].C)
			if d > r.CrossDiff {
				r.CrossDiff = d
			}
			if d > 2*r.Tol {
				r.OK = false
				r.Outcomes = append(r.Outcomes, Outcome{
					Alg:    completed[i].alg,
					Status: Failed,
					Err: fmt.Errorf("differs from %v by %g (tol %g)",
						completed[j].alg, d, 2*r.Tol),
				})
			}
		}
	}
	return r
}

// tolFor is the scale-aware element tolerance: distributed reductions
// reorder the n-term dot products, so agreement with the serial kernel
// is within rounding, not bitwise.
func tolFor(A, B *hypermm.Matrix, n int) float64 {
	return 1e-13 * float64(n) * maxAbs(A) * maxAbs(B)
}

func maxAbs(m *hypermm.Matrix) float64 {
	mx := 0.0
	for _, v := range m.Data {
		if v = math.Abs(v); v > mx {
			mx = v
		}
	}
	return mx
}

// Reconciliation slack against the Table 2 rows. On one-port machines
// the bandwidth term is tight: the emulator pipelines phases the
// analysis charges sequentially, so measured b stays at or below
// analytic. Multi-port rows assume M >= log N so every message splits
// into log N equal slices; with the small blocks the harness samples
// the slices go ragged and measured b can exceed analytic by up to 50%
// (Simple at n=16, p=64: 2x2 blocks cut 6 ways). The start-up term is
// looser on both models: HJE's broadcasts are not pipelined, so its
// measured a exceeds the analytic log-term by a factor growing with p
// (~2.4x at p=64, ~3.4x at p=256); 4x covers every shape the chaos
// harness samples while still catching a phase run twice.
const (
	bandSlackOnePort   = 1 + 1e-9
	bandSlackMultiPort = 1.6
	startupSlack       = 4.0
)

// reconcile checks a clean run's communication against the Table 2
// analytic model (see the slack constants above for what "against"
// means per coefficient); with no plan active the run must also not
// have charged a single retry.
func reconcile(alg hypermm.Algorithm, c Case, res *hypermm.Result) (string, bool) {
	if res.Comm.Retries != 0 {
		return fmt.Sprintf("clean run charged %d retries", res.Comm.Retries), false
	}
	aA, bA, ok := hypermm.Overhead(alg, float64(c.N), float64(c.P), c.Ports)
	if !ok {
		return "no Table 2 row", true // stepping stones have no analytic row
	}
	aM, bM, err := hypermm.MeasuredOverhead(alg, c.P, c.N, c.Ports)
	if err != nil {
		return fmt.Sprintf("measuring overhead: %v", err), false
	}
	if c.P > 1 && (aM <= 0 || bM <= 0) {
		return fmt.Sprintf("measured overhead (%g, %g) not positive", aM, bM), false
	}
	bandSlack := bandSlackOnePort
	if c.Ports == hypermm.MultiPort {
		bandSlack = bandSlackMultiPort
	}
	if bM > bA*bandSlack {
		return fmt.Sprintf("measured bandwidth term %g exceeds analytic %g", bM, bA), false
	}
	if aM > aA*startupSlack {
		return fmt.Sprintf("measured start-up term %g exceeds analytic %g", aM, aA), false
	}
	return fmt.Sprintf("overhead (%.6g, %.6g) vs analytic (%.6g, %.6g)", aM, bM, aA, bA), true
}

func faultKind(err error) string {
	switch {
	case errors.Is(err, hypermm.ErrLinkDown):
		return "link-down"
	case errors.Is(err, hypermm.ErrDeadline):
		return "deadline"
	default:
		return "fault"
	}
}

// String renders the report deterministically — identical cases yield
// byte-identical text, which cmd/chaos relies on for reproducible
// transcripts.
func (r Report) String() string {
	var sb strings.Builder
	plan := "clean"
	if c := r.Case; c.Plan != nil && !c.Plan.Empty() {
		plan = fmt.Sprintf("plan{seed=%d drop=%g dup=%g delay=%g/%g down=%d retries=%d}",
			c.Plan.Seed, c.Plan.Drop, c.Plan.Dup, c.Plan.DelayProb, c.Plan.DelayTime,
			len(c.Plan.Down), c.Plan.MaxRetries)
	}
	fmt.Fprintf(&sb, "case n=%d p=%d %v seed=%d %s", r.Case.N, r.Case.P, r.Case.Ports, r.Case.Seed, plan)
	if r.Case.Deadline > 0 {
		fmt.Fprintf(&sb, " deadline=%g", r.Case.Deadline)
	}
	sb.WriteByte('\n')
	for _, o := range r.Outcomes {
		fmt.Fprintf(&sb, "  %-10s %-8s", o.Alg.Name(), o.Status)
		if o.Status == OK || (o.Elapsed > 0 && o.Status == Failed) {
			fmt.Fprintf(&sb, " clock=%-12g diff=%.3g", o.Elapsed, o.MaxDiff)
			if o.Retries > 0 {
				fmt.Fprintf(&sb, " retries=%d", o.Retries)
			}
		}
		if o.Err != nil {
			fmt.Fprintf(&sb, " err=%v", o.Err)
		}
		if o.Note != "" {
			fmt.Fprintf(&sb, " (%s)", o.Note)
		}
		sb.WriteByte('\n')
	}
	verdict := "PASS"
	if !r.OK {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "  => %s cross-diff=%.3g\n", verdict, r.CrossDiff)
	return sb.String()
}

package verify

import (
	"strings"
	"testing"

	"hypermm"
)

func cleanCase(n, p int, ports hypermm.PortModel) Case {
	return Case{N: n, P: p, Ports: ports, Seed: 11, Ts: 150, Tw: 3, Tc: 0.5}
}

func TestRunnableMatchesRunners(t *testing.T) {
	// The predicate must agree with the actual runners: every runnable
	// combination runs; no combination it rejects is secretly fine is not
	// checked (rejection is conservative by design), but acceptance must
	// never lie.
	A := hypermm.RandomMatrix(24, 24, 1)
	B := hypermm.RandomMatrix(24, 24, 2)
	for _, p := range []int{4, 8, 16, 64} {
		for _, alg := range hypermm.Algorithms {
			if !Runnable(alg, 24, p) {
				continue
			}
			if _, err := hypermm.Run(alg, hypermm.Config{P: p, Ports: hypermm.OnePort, Ts: 1, Tw: 1}, A, B); err != nil {
				t.Errorf("Runnable(%v, 24, %d) said yes but Run failed: %v", alg, p, err)
			}
		}
	}
	if Runnable(hypermm.Cannon, 24, 3) {
		t.Error("accepted non-power-of-two p")
	}
	if Runnable(hypermm.Cannon, 25, 16) {
		t.Error("accepted n not divisible by sqrt(p)")
	}
	if Runnable(hypermm.ThreeAll, 24, 64) {
		t.Error("accepted n=24 for 3dall at p=64 (needs 16 | n)")
	}
	// HJE slices blocks into log sqrt(p) strips: n=32, p=64 gives block
	// edge 4, not divisible by 3.
	if Runnable(hypermm.HJE, 32, 64) {
		t.Error("accepted HJE block edge not divisible by log sqrt(p)")
	}
	if !Runnable(hypermm.HJE, 48, 64) {
		t.Error("rejected HJE at n=48 p=64")
	}
}

func TestCheckCleanPasses(t *testing.T) {
	for _, ports := range []hypermm.PortModel{hypermm.OnePort, hypermm.MultiPort} {
		r := Check(cleanCase(24, 8, ports))
		if !r.OK {
			t.Fatalf("clean case failed:\n%s", r)
		}
		if len(r.Outcomes) == 0 {
			t.Fatal("no algorithm ran at n=24 p=8")
		}
		for _, o := range r.Outcomes {
			if o.Status != OK {
				t.Errorf("%v: %v (%v)", o.Alg, o.Status, o.Err)
			}
			if o.Note == "" {
				t.Errorf("%v: clean outcome missing reconciliation note", o.Alg)
			}
		}
	}
}

func TestCheckCleanCubeReconciles(t *testing.T) {
	// p=64 makes every algorithm (2-D and 3-D) applicable at n=48.
	r := Check(cleanCase(48, 64, hypermm.OnePort))
	if !r.OK {
		t.Fatalf("clean cube case failed:\n%s", r)
	}
	if got, want := len(r.Outcomes), len(hypermm.Algorithms); got != want {
		t.Fatalf("ran %d algorithms, want all %d", got, want)
	}
}

func TestCheckFaultyRecoversOrFaults(t *testing.T) {
	// A light plan: every algorithm either recovers (and must still be
	// correct) or surfaces a typed fault — never a wrong answer.
	c := cleanCase(24, 8, hypermm.OnePort)
	c.Plan = &hypermm.FaultPlan{Seed: 9, Drop: 0.08, MaxRetries: 30}
	r := Check(c)
	if !r.OK {
		t.Fatalf("light plan produced a hard failure:\n%s", r)
	}
	retried := false
	for _, o := range r.Outcomes {
		if o.Retries > 0 {
			retried = true
		}
	}
	if !retried {
		t.Fatal("8% drop never exercised the retry path")
	}
}

func TestCheckHostilePlanFaultsTyped(t *testing.T) {
	c := cleanCase(24, 8, hypermm.OnePort)
	c.Plan = &hypermm.FaultPlan{
		Seed:       2,
		Down:       []hypermm.Window{{Src: -1, Dst: -1, From: 0, To: hypermm.Forever}},
		MaxRetries: 1,
	}
	r := Check(c)
	if !r.OK {
		t.Fatalf("typed faults must not fail the report:\n%s", r)
	}
	for _, o := range r.Outcomes {
		if o.Status != Faulted {
			t.Errorf("%v: %v under a total outage, want faulted", o.Alg, o.Status)
		}
	}
}

func TestReportStringDeterministic(t *testing.T) {
	c := cleanCase(24, 8, hypermm.MultiPort)
	c.Plan = &hypermm.FaultPlan{Seed: 5, Drop: 0.1, DelayProb: 0.2, DelayTime: 40, MaxRetries: 30}
	a, b := Check(c).String(), Check(c).String()
	if a != b {
		t.Fatalf("report text diverged:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "=> PASS") {
		t.Fatalf("unexpected verdict:\n%s", a)
	}
}

package hypercube

import "testing"

// Native fuzz targets; their seed corpora run as ordinary tests.

func FuzzGrayRoundTrip(f *testing.F) {
	for _, seed := range []int{0, 1, 2, 255, 1023, 1 << 20} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, i int) {
		if i < 0 {
			i = -i
		}
		i %= 1 << 30
		if GrayRank(Gray(i)) != i {
			t.Fatalf("round trip failed at %d", i)
		}
		if i > 0 && HammingDist(Gray(i), Gray(i-1)) != 1 {
			t.Fatalf("Gray(%d) and Gray(%d) not adjacent", i, i-1)
		}
	})
}

func FuzzRouteValidity(f *testing.F) {
	f.Add(0, 63)
	f.Add(21, 42)
	f.Fuzz(func(t *testing.T, src, dst int) {
		const p = 256
		src, dst = ((src%p)+p)%p, ((dst%p)+p)%p
		c := New(p)
		path := c.Route(src, dst)
		if len(path) != c.Hops(src, dst) {
			t.Fatalf("route length %d != distance %d", len(path), c.Hops(src, dst))
		}
		cur := src
		for _, nxt := range path {
			if HammingDist(cur, nxt) != 1 {
				t.Fatalf("non-adjacent hop %d -> %d", cur, nxt)
			}
			cur = nxt
		}
		if cur != dst {
			t.Fatalf("route ends at %d, want %d", cur, dst)
		}
	})
}

func FuzzChainEmbedding(f *testing.F) {
	f.Add(uint8(3), uint8(9))
	f.Fuzz(func(t *testing.T, db, baseb uint8) {
		d := 1 + int(db)%5
		// Chain over the low d dims, base in the dims above.
		base := (int(baseb) % 8) << d
		ch := NewChain(base, dimsRange(0, d))
		q := ch.Q()
		for pos := 0; pos < q; pos++ {
			n := ch.NodeAt(pos)
			if ch.PosOf(n) != pos {
				t.Fatalf("pos round trip failed at %d", pos)
			}
			nb := ch.NodeAt((pos + 1) % q)
			if HammingDist(n, nb) != 1 {
				t.Fatalf("ring break between %d and %d", pos, (pos+1)%q)
			}
		}
	})
}

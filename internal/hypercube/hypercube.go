// Package hypercube provides the topology math for a 2-ary n-cube:
// binary-reflected Gray codes, node addressing, e-cube routing, and the
// embeddings of virtual 2-D and 3-D processor grids into a physical
// hypercube used throughout the paper.
//
// Embedding convention: a virtual grid coordinate c in [0, q) with
// q = 2^d occupies d physical cube dimensions and is encoded as the
// Gray code gray(c), so that consecutive grid positions (including the
// ring wrap-around q-1 -> 0) are physical neighbors. Every grid line is
// therefore a d-dimensional subcube of the machine (the paper's Section
// 2), and collective operations on a line can use subcube dimension
// exchanges directly.
package hypercube

import "fmt"

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// Log2 returns log2(x) for a positive power of two, panicking otherwise.
func Log2(x int) int {
	if !IsPow2(x) {
		panic(fmt.Sprintf("hypercube: %d is not a positive power of two", x))
	}
	d := 0
	for x > 1 {
		x >>= 1
		d++
	}
	return d
}

// Gray returns the binary-reflected Gray code of i.
// Gray is a GF(2)-linear bijection: Gray(a^b) == Gray(a)^Gray(b).
func Gray(i int) int { return i ^ (i >> 1) }

// GrayRank inverts Gray: GrayRank(Gray(i)) == i.
func GrayRank(g int) int {
	i := 0
	for ; g != 0; g >>= 1 {
		i ^= g
	}
	return i
}

// GrayStepBit returns the bit position in which Gray(k) and Gray(k+1)
// differ; equivalently the number of trailing zeros of k+1.
func GrayStepBit(k int) int {
	return trailingZeros(k + 1)
}

func trailingZeros(x int) int {
	if x == 0 {
		panic("hypercube: trailingZeros(0)")
	}
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// Bit returns bit d of x (0 or 1).
func Bit(x, d int) int { return (x >> d) & 1 }

// HammingDist returns the number of bit positions in which a and b differ.
func HammingDist(a, b int) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Cube is a hypercube of P = 2^Dim nodes addressed 0..P-1; nodes are
// neighbors iff their addresses differ in exactly one bit.
type Cube struct {
	Dim int
	P   int
}

// New returns the hypercube with p nodes; p must be a power of two.
func New(p int) Cube {
	return Cube{Dim: Log2(p), P: p}
}

// Neighbor returns the node across dimension d from node.
func (c Cube) Neighbor(node, d int) int {
	c.check(node)
	if d < 0 || d >= c.Dim {
		panic(fmt.Sprintf("hypercube: dimension %d out of cube dim %d", d, c.Dim))
	}
	return node ^ (1 << d)
}

func (c Cube) check(node int) {
	if node < 0 || node >= c.P {
		panic(fmt.Sprintf("hypercube: node %d out of range [0,%d)", node, c.P))
	}
}

// Hops returns the routing distance (Hamming distance) between two nodes.
func (c Cube) Hops(src, dst int) int {
	c.check(src)
	c.check(dst)
	return HammingDist(src, dst)
}

// Route returns the e-cube (dimension-ordered, lowest bit first) path
// from src to dst, excluding src and including dst. An empty slice means
// src == dst.
func (c Cube) Route(src, dst int) []int {
	c.check(src)
	c.check(dst)
	var path []int
	cur := src
	for d := 0; d < c.Dim; d++ {
		if (cur^dst)&(1<<d) != 0 {
			cur ^= 1 << d
			path = append(path, cur)
		}
	}
	return path
}

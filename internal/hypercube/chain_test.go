package hypercube

import "testing"

func TestChainRoundTrip(t *testing.T) {
	ch := NewChain(0b110000, []int{0, 1, 2})
	if ch.Q() != 8 || ch.Dim() != 3 {
		t.Fatalf("Q=%d Dim=%d", ch.Q(), ch.Dim())
	}
	for pos := 0; pos < 8; pos++ {
		n := ch.NodeAt(pos)
		if !ch.Contains(n) {
			t.Fatalf("NodeAt(%d)=%d not contained", pos, n)
		}
		if ch.PosOf(n) != pos {
			t.Fatalf("PosOf(NodeAt(%d)) = %d", pos, ch.PosOf(n))
		}
		if ch.NodeAtRank(ch.RankOf(n)) != n {
			t.Fatalf("rank round trip failed at pos %d", pos)
		}
	}
}

func TestChainRingStepsAreNeighbors(t *testing.T) {
	ch := NewChain(0, []int{2, 4, 5, 7})
	q := ch.Q()
	for pos := 0; pos < q; pos++ {
		a := ch.NodeAt(pos)
		b := ch.NodeAt((pos + 1) % q)
		if HammingDist(a, b) != 1 {
			t.Fatalf("ring step %d->%d not neighbors: %b vs %b", pos, (pos+1)%q, a, b)
		}
		if a^b != 1<<ch.RingStepDim(pos) {
			t.Fatalf("RingStepDim(%d) = %d but diff = %b", pos, ch.RingStepDim(pos), a^b)
		}
	}
}

func TestChainRankNeighbors(t *testing.T) {
	// Rank r and r^(1<<s) must be physical neighbors across PhysDim(s).
	ch := NewChain(0b1000, []int{0, 1, 2})
	for r := 0; r < 8; r++ {
		for s := 0; s < 3; s++ {
			a, b := ch.NodeAtRank(r), ch.NodeAtRank(r^(1<<s))
			if a^b != 1<<ch.PhysDim(s) {
				t.Fatalf("rank %d bit %d: %b vs %b", r, s, a, b)
			}
		}
	}
}

func TestChainBaseValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewChain accepted base overlapping dims")
		}
	}()
	NewChain(0b1, []int{0})
}

func TestGrid2DEmbedding(t *testing.T) {
	g := NewGrid2D(64)
	if g.Q != 8 {
		t.Fatalf("Q = %d", g.Q)
	}
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			n := g.Node(i, j)
			if seen[n] {
				t.Fatalf("duplicate node %d", n)
			}
			seen[n] = true
			gi, gj := g.Coords(n)
			if gi != i || gj != j {
				t.Fatalf("Coords(Node(%d,%d)) = (%d,%d)", i, j, gi, gj)
			}
			// Horizontal and vertical grid neighbors are cube neighbors.
			if j+1 < 8 && HammingDist(n, g.Node(i, j+1)) != 1 {
				t.Fatalf("(%d,%d) east neighbor not adjacent", i, j)
			}
			if i+1 < 8 && HammingDist(n, g.Node(i+1, j)) != 1 {
				t.Fatalf("(%d,%d) south neighbor not adjacent", i, j)
			}
		}
	}
	if len(seen) != 64 {
		t.Fatalf("embedding covers %d nodes", len(seen))
	}
}

func TestGrid2DChains(t *testing.T) {
	g := NewGrid2D(16)
	for i := 0; i < 4; i++ {
		row := g.RowChain(i)
		for j := 0; j < 4; j++ {
			if row.NodeAt(j) != g.Node(i, j) {
				t.Fatalf("row %d pos %d mismatch", i, j)
			}
		}
	}
	for j := 0; j < 4; j++ {
		col := g.ColChain(j)
		for i := 0; i < 4; i++ {
			if col.NodeAt(i) != g.Node(i, j) {
				t.Fatalf("col %d pos %d mismatch", j, i)
			}
		}
	}
}

func TestGrid3DEmbedding(t *testing.T) {
	g := NewGrid3D(512)
	if g.Q != 8 {
		t.Fatalf("Q = %d", g.Q)
	}
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			for k := 0; k < 8; k++ {
				n := g.Node(i, j, k)
				if seen[n] {
					t.Fatalf("duplicate node %d", n)
				}
				seen[n] = true
				gi, gj, gk := g.Coords(n)
				if gi != i || gj != j || gk != k {
					t.Fatalf("Coords mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	if len(seen) != 512 {
		t.Fatalf("embedding covers %d nodes", len(seen))
	}
}

func TestGrid3DChains(t *testing.T) {
	g := NewGrid3D(64)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			x, y, z := g.XChain(a, b), g.YChain(a, b), g.ZChain(a, b)
			for c := 0; c < 4; c++ {
				if x.NodeAt(c) != g.Node(c, a, b) {
					t.Fatalf("XChain(%d,%d) pos %d mismatch", a, b, c)
				}
				if y.NodeAt(c) != g.Node(a, c, b) {
					t.Fatalf("YChain(%d,%d) pos %d mismatch", a, b, c)
				}
				if z.NodeAt(c) != g.Node(a, b, c) {
					t.Fatalf("ZChain(%d,%d) pos %d mismatch", a, b, c)
				}
			}
		}
	}
}

func TestGridPanicsOnBadSize(t *testing.T) {
	for _, p := range []int{8, 32} { // odd cube dims
		func() {
			defer func() { recover() }()
			NewGrid2D(p)
			t.Errorf("NewGrid2D(%d) did not panic", p)
		}()
	}
	for _, p := range []int{4, 16, 32} { // dims not divisible by 3
		func() {
			defer func() { recover() }()
			NewGrid3D(p)
			t.Errorf("NewGrid3D(%d) did not panic", p)
		}()
	}
}

func TestChainPanicsAndAccessors(t *testing.T) {
	ch := NewChain(0, []int{0, 1})
	if ch.String() == "" {
		t.Error("empty chain String")
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("PhysDim out of range", func() { ch.PhysDim(5) })
	mustPanic("NodeAtRank out of range", func() { ch.NodeAtRank(4) })
	mustPanic("RankOf off chain", func() { ch.RankOf(0b100) })
	mustPanic("RingStepDim out of range", func() { ch.RingStepDim(4) })
	mustPanic("negative chain dim", func() { NewChain(0, []int{-1}) })
	mustPanic("grid coord out of range", func() { NewGrid2D(16).Node(4, 0) })
	mustPanic("3d coord out of range", func() { NewGrid3D(64).Node(0, 0, 4) })
	mustPanic("neighbor bad dim", func() { New(8).Neighbor(0, 3) })
	mustPanic("node out of range", func() { New(8).Hops(9, 0) })
}

package hypercube

import (
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	yes := []int{1, 2, 4, 8, 1024, 1 << 20}
	no := []int{0, -1, -2, 3, 5, 6, 7, 12, 1000}
	for _, v := range yes {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range no {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	for d := 0; d < 20; d++ {
		if got := Log2(1 << d); got != d {
			t.Errorf("Log2(%d) = %d, want %d", 1<<d, got, d)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(12) did not panic")
		}
	}()
	Log2(12)
}

func TestGrayRoundTrip(t *testing.T) {
	f := func(i uint16) bool {
		return GrayRank(Gray(int(i))) == int(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayIsLinear(t *testing.T) {
	f := func(a, b uint16) bool {
		return Gray(int(a)^int(b)) == Gray(int(a))^Gray(int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayNeighborProperty(t *testing.T) {
	// Consecutive Gray codes differ in exactly one bit, at GrayStepBit.
	for k := 0; k < 4096; k++ {
		diff := Gray(k) ^ Gray(k+1)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("Gray(%d)^Gray(%d) = %b is not a single bit", k, k+1, diff)
		}
		if diff != 1<<GrayStepBit(k) {
			t.Fatalf("GrayStepBit(%d) = %d, but diff = %b", k, GrayStepBit(k), diff)
		}
	}
}

func TestGrayRingWrap(t *testing.T) {
	// Gray(q-1) and Gray(0) differ only in the top bit for q a power of two.
	for d := 1; d <= 12; d++ {
		q := 1 << d
		if Gray(q-1)^Gray(0) != q/2 {
			t.Errorf("d=%d: wrap diff = %b, want %b", d, Gray(q-1)^Gray(0), q/2)
		}
	}
}

func TestGrayIsPermutation(t *testing.T) {
	const q = 1 << 10
	seen := make([]bool, q)
	for i := 0; i < q; i++ {
		g := Gray(i)
		if g < 0 || g >= q || seen[g] {
			t.Fatalf("Gray not a permutation at %d -> %d", i, g)
		}
		seen[g] = true
	}
}

func TestHammingDist(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0b1010, 0b0101, 4}, {7, 0, 3}, {255, 254, 1},
	}
	for _, c := range cases {
		if got := HammingDist(c.a, c.b); got != c.want {
			t.Errorf("HammingDist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCubeNeighbor(t *testing.T) {
	c := New(16)
	for n := 0; n < 16; n++ {
		for d := 0; d < 4; d++ {
			nb := c.Neighbor(n, d)
			if HammingDist(n, nb) != 1 {
				t.Fatalf("neighbor(%d,%d) = %d not adjacent", n, d, nb)
			}
			if c.Neighbor(nb, d) != n {
				t.Fatalf("neighbor not involutive at (%d,%d)", n, d)
			}
		}
	}
}

func TestRoute(t *testing.T) {
	c := New(64)
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst += 5 {
			path := c.Route(src, dst)
			if len(path) != c.Hops(src, dst) {
				t.Fatalf("route %d->%d has %d hops want %d", src, dst, len(path), c.Hops(src, dst))
			}
			cur := src
			for _, nxt := range path {
				if HammingDist(cur, nxt) != 1 {
					t.Fatalf("route %d->%d step %d->%d not adjacent", src, dst, cur, nxt)
				}
				cur = nxt
			}
			if len(path) > 0 && cur != dst {
				t.Fatalf("route %d->%d ends at %d", src, dst, cur)
			}
		}
	}
}

func TestBit(t *testing.T) {
	if Bit(0b1010, 1) != 1 || Bit(0b1010, 0) != 0 || Bit(0b1010, 3) != 1 {
		t.Error("Bit extraction wrong")
	}
}

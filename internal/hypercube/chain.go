package hypercube

import "fmt"

// Chain is a one-dimensional line of q = 2^d grid positions embedded as
// a d-dimensional subcube of the machine. It is the unit on which every
// collective communication pattern in the paper runs ("any collective
// communication pattern ... is along a one-dimensional chain of
// processors", Section 2).
//
// Two coordinate systems coexist on a chain:
//
//   - position: the grid coordinate 0..q-1. Consecutive positions
//     (including the wrap-around) are physical neighbors because
//     positions are embedded by Gray code. Ring shifts (Cannon) use
//     positions.
//   - rank: the d-bit subcube coordinate, i.e. the chain's physical
//     address bits read directly. Rank r and rank r^(1<<s) are physical
//     neighbors across the chain's s-th dimension. Subcube collectives
//     (broadcast, all-gather, ...) use ranks.
//
// rank = Gray(position); position = GrayRank(rank).
type Chain struct {
	dims []int // dims[s] = physical cube dimension carrying rank bit s
	base int   // the fixed address bits outside dims
}

// NewChain builds a chain spanning the given physical dimensions (low
// rank bit first) with the remaining address bits fixed to base. The
// base must have zero bits in all spanned dimensions.
func NewChain(base int, dims []int) Chain {
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("hypercube: negative chain dimension %d", d))
		}
		if base&(1<<d) != 0 {
			panic(fmt.Sprintf("hypercube: chain base %#x has a bit in spanned dimension %d", base, d))
		}
	}
	cp := make([]int, len(dims))
	copy(cp, dims)
	return Chain{dims: cp, base: base}
}

// Q returns the number of nodes on the chain.
func (ch Chain) Q() int { return 1 << len(ch.dims) }

// Dim returns log2(Q), the subcube dimensionality of the chain.
func (ch Chain) Dim() int { return len(ch.dims) }

// PhysDim returns the physical cube dimension carrying rank bit s.
func (ch Chain) PhysDim(s int) int {
	if s < 0 || s >= len(ch.dims) {
		panic(fmt.Sprintf("hypercube: chain bit %d out of %d", s, len(ch.dims)))
	}
	return ch.dims[s]
}

// spread places the low len(dims) bits of rank into the chain's
// physical dimensions.
func (ch Chain) spread(rank int) int {
	a := 0
	for s, d := range ch.dims {
		if rank&(1<<s) != 0 {
			a |= 1 << d
		}
	}
	return a
}

// collect extracts the chain rank from a physical node address.
func (ch Chain) collect(node int) int {
	r := 0
	for s, d := range ch.dims {
		if node&(1<<d) != 0 {
			r |= 1 << s
		}
	}
	return r
}

// NodeAtRank returns the physical address of the node with the given
// subcube rank.
func (ch Chain) NodeAtRank(rank int) int {
	if rank < 0 || rank >= ch.Q() {
		panic(fmt.Sprintf("hypercube: chain rank %d out of %d", rank, ch.Q()))
	}
	return ch.base | ch.spread(rank)
}

// NodeAt returns the physical address of the node at the given grid
// position (Gray-embedded).
func (ch Chain) NodeAt(pos int) int { return ch.NodeAtRank(Gray(pos)) }

// RankOf returns the subcube rank of a physical node on the chain.
func (ch Chain) RankOf(node int) int {
	if !ch.Contains(node) {
		panic(fmt.Sprintf("hypercube: node %d not on chain base %#x", node, ch.base))
	}
	return ch.collect(node)
}

// PosOf returns the grid position of a physical node on the chain.
func (ch Chain) PosOf(node int) int { return GrayRank(ch.RankOf(node)) }

// Contains reports whether the physical node lies on the chain.
func (ch Chain) Contains(node int) bool {
	return node&^ch.mask() == ch.base
}

func (ch Chain) mask() int {
	m := 0
	for _, d := range ch.dims {
		m |= 1 << d
	}
	return m
}

// RingStepDim returns the physical dimension connecting position pos to
// position (pos+1) mod Q — a single dimension by the Gray embedding.
func (ch Chain) RingStepDim(pos int) int {
	q := ch.Q()
	if pos < 0 || pos >= q {
		panic(fmt.Sprintf("hypercube: chain position %d out of %d", pos, q))
	}
	if pos == q-1 { // wrap-around: Gray(q-1) and Gray(0) differ in the top bit
		return ch.dims[len(ch.dims)-1]
	}
	return ch.dims[GrayStepBit(pos)]
}

// String implements fmt.Stringer for debugging.
func (ch Chain) String() string {
	return fmt.Sprintf("Chain{base=%#x dims=%v}", ch.base, ch.dims)
}

// Grid2D embeds a q x q virtual processor mesh into a hypercube of
// p = q^2 nodes: node(i,j) = Gray(i) in the high d dimensions and
// Gray(j) in the low d dimensions, so every row and every column is a
// d-dimensional subcube.
type Grid2D struct {
	Q   int // processors per side
	d   int // log2(Q)
	Cub Cube
}

// NewGrid2D builds the embedding for p = q^2 processors; p must be an
// even power of two.
func NewGrid2D(p int) Grid2D {
	d := Log2(p)
	if d%2 != 0 {
		panic(fmt.Sprintf("hypercube: Grid2D needs an even cube dimension, got p=%d", p))
	}
	return Grid2D{Q: 1 << (d / 2), d: d / 2, Cub: New(p)}
}

// Node returns the physical address of mesh processor (i, j) — row i,
// column j.
func (g Grid2D) Node(i, j int) int {
	g.chk(i)
	g.chk(j)
	return Gray(i)<<g.d | Gray(j)
}

func (g Grid2D) chk(c int) {
	if c < 0 || c >= g.Q {
		panic(fmt.Sprintf("hypercube: grid coordinate %d out of [0,%d)", c, g.Q))
	}
}

// Coords returns the mesh coordinates (i, j) of a physical node.
func (g Grid2D) Coords(node int) (i, j int) {
	return GrayRank(node >> g.d), GrayRank(node & (1<<g.d - 1))
}

// RowChain returns the chain of row i (j varies along the row).
func (g Grid2D) RowChain(i int) Chain {
	g.chk(i)
	return NewChain(Gray(i)<<g.d, dimsRange(0, g.d))
}

// ColChain returns the chain of column j (i varies along the column).
func (g Grid2D) ColChain(j int) Chain {
	g.chk(j)
	return NewChain(Gray(j), dimsRange(g.d, g.d))
}

// Grid3D embeds a q x q x q virtual processor grid into a hypercube of
// p = q^3 nodes: node(i,j,k) carries Gray(i) in the high d dimensions
// (the paper's x axis), Gray(j) in the middle d (y), and Gray(k) in the
// low d (z). Every axis-parallel line is a d-dimensional subcube.
type Grid3D struct {
	Q   int
	d   int
	Cub Cube
}

// NewGrid3D builds the embedding for p = q^3 processors; the cube
// dimension must be a multiple of three.
func NewGrid3D(p int) Grid3D {
	d := Log2(p)
	if d%3 != 0 {
		panic(fmt.Sprintf("hypercube: Grid3D needs a cube dimension divisible by 3, got p=%d", p))
	}
	return Grid3D{Q: 1 << (d / 3), d: d / 3, Cub: New(p)}
}

// Node returns the physical address of grid processor p_{i,j,k}.
func (g Grid3D) Node(i, j, k int) int {
	g.chk(i)
	g.chk(j)
	g.chk(k)
	return Gray(i)<<(2*g.d) | Gray(j)<<g.d | Gray(k)
}

func (g Grid3D) chk(c int) {
	if c < 0 || c >= g.Q {
		panic(fmt.Sprintf("hypercube: grid coordinate %d out of [0,%d)", c, g.Q))
	}
}

// Coords returns the grid coordinates (i, j, k) of a physical node.
func (g Grid3D) Coords(node int) (i, j, k int) {
	m := 1<<g.d - 1
	return GrayRank(node >> (2 * g.d)), GrayRank((node >> g.d) & m), GrayRank(node & m)
}

// XChain returns the line with j, k fixed and i varying (the paper's
// x direction).
func (g Grid3D) XChain(j, k int) Chain {
	g.chk(j)
	g.chk(k)
	return NewChain(Gray(j)<<g.d|Gray(k), dimsRange(2*g.d, g.d))
}

// YChain returns the line with i, k fixed and j varying (y direction).
func (g Grid3D) YChain(i, k int) Chain {
	g.chk(i)
	g.chk(k)
	return NewChain(Gray(i)<<(2*g.d)|Gray(k), dimsRange(g.d, g.d))
}

// ZChain returns the line with i, j fixed and k varying (z direction).
func (g Grid3D) ZChain(i, j int) Chain {
	g.chk(i)
	g.chk(j)
	return NewChain(Gray(i)<<(2*g.d)|Gray(j)<<g.d, dimsRange(0, g.d))
}

// dimsRange returns the physical dimensions lo, lo+1, ..., lo+n-1.
func dimsRange(lo, n int) []int {
	ds := make([]int, n)
	for s := range ds {
		ds[s] = lo + s
	}
	return ds
}

package layout

import (
	"strings"
	"testing"
)

func TestAlignedAlgorithms(t *testing.T) {
	// The paper's alignment statements, as propositions.
	aligned := map[string]int{
		"simple": 16, "cannon": 16, "hje": 16, "fox": 16,
		"dns": 64, "3dd": 64, "3dall": 64,
	}
	for alg, p := range aligned {
		d, err := For(alg, p)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !d.Aligned() {
			t.Errorf("%s: C not aligned with operands, but the paper says it is", alg)
		}
	}
}

func TestBerntsenMisaligned(t *testing.T) {
	// Section 3.4: "the result obtained is not aligned in the same
	// manner as A or B" — the drawback the diagonal algorithms fix.
	d, err := For("berntsen", 64)
	if err != nil {
		t.Fatal(err)
	}
	if d.Aligned() {
		t.Error("Berntsen's C reported aligned; the paper says otherwise")
	}
	if Equal(d.A, d.C) {
		t.Error("Berntsen A and C layouts equal")
	}
}

func TestAllTransOperandsDiffer(t *testing.T) {
	// Section 4.2.1: All_Trans needs B distributed as A's transpose;
	// its C comes out aligned with A (not B).
	d, err := For("alltrans", 64)
	if err != nil {
		t.Fatal(err)
	}
	if Equal(d.A, d.B) {
		t.Error("All_Trans operands reported identically distributed")
	}
	if !Equal(d.A, d.C) {
		t.Error("All_Trans C not aligned with A")
	}
}

func TestTwoDiagLayouts(t *testing.T) {
	d, err := For("2dd", 16)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d.A, d.C) {
		t.Error("2-D Diagonal C not aligned with A")
	}
	if Equal(d.A, d.B) {
		t.Error("2-D Diagonal A and B should differ (columns vs rows)")
	}
}

func TestOwnersCoverEveryBlockOnce(t *testing.T) {
	// Layouts with one block per processor must be bijections onto the
	// node set they claim; diagonal/plane layouts reuse nodes, but the
	// owner must always be a valid address.
	for _, alg := range []string{"simple", "3dall", "3dd", "dns", "berntsen", "alltrans"} {
		p := 64
		d, err := For(alg, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range []Layout{d.A, d.B, d.C} {
			for i := 0; i < l.QR; i++ {
				for j := 0; j < l.QC; j++ {
					if o := l.Owner(i, j); o < 0 || o >= p {
						t.Fatalf("%s/%s: owner(%d,%d)=%d out of range", alg, l.Name, i, j, o)
					}
				}
			}
		}
	}
}

func TestFig8OneBlockPerNode(t *testing.T) {
	l := Fig8("A", 64)
	seen := map[int]int{}
	for i := 0; i < l.QR; i++ {
		for j := 0; j < l.QC; j++ {
			seen[l.Owner(i, j)]++
		}
	}
	if len(seen) != 64 {
		t.Fatalf("Fig8 covers %d nodes, want 64", len(seen))
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("node %d owns %d blocks, want 1", n, c)
		}
	}
}

func TestEqualRejectsShapeMismatch(t *testing.T) {
	a := Block2D("a", 16)
	b := Fig8("b", 64)
	if Equal(a, b) {
		t.Error("layouts of different shapes reported equal")
	}
}

func TestRender(t *testing.T) {
	s := DiagPlane("diag", 8).Render()
	if !strings.Contains(s, "diag") || len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Errorf("render = %q", s)
	}
}

func TestForUnknown(t *testing.T) {
	if _, err := For("nope", 16); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestThreeDiagTransLayouts(t *testing.T) {
	d, err := For("3ddtrans", 64)
	if err != nil {
		t.Fatal(err)
	}
	if Equal(d.A, d.B) {
		t.Error("3DD_Trans operands should differ (B transposed)")
	}
	if !Equal(d.A, d.C) {
		t.Error("3DD_Trans C should align with A")
	}
	if d.Aligned() {
		t.Error("3DD_Trans should not be fully aligned")
	}
}

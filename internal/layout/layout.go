// Package layout describes, declaratively, how each algorithm's
// operand and result matrices are distributed over the machine: which
// processor owns which block of which partition. The paper's alignment
// statements — "the result matrix C is obtained aligned in the same
// manner as the source matrices" for 3DD and 3-D All, versus "the
// result obtained is not aligned in the same manner as A or B" for
// Berntsen — become checkable propositions (Equal) and printable
// ownership maps (Render).
package layout

import (
	"fmt"
	"strings"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
)

// Layout maps every block of a QR x QC block partition of an n x n
// matrix to the physical node owning it.
type Layout struct {
	Name   string
	QR, QC int                  // block-grid shape (rows, cols)
	Owner  func(bi, bj int) int // owning node of block (bi, bj)
}

// Equal reports whether two layouts have the same partition shape and
// the same owner for every block — the paper's notion of two matrices
// being "identically distributed" / "aligned".
func Equal(a, b Layout) bool {
	if a.QR != b.QR || a.QC != b.QC {
		return false
	}
	for i := 0; i < a.QR; i++ {
		for j := 0; j < a.QC; j++ {
			if a.Owner(i, j) != b.Owner(i, j) {
				return false
			}
		}
	}
	return true
}

// Render prints the ownership map, one row per block row (small grids
// only; intended for cmd/layout and documentation).
func (l Layout) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%d x %d blocks; cell = owning node)\n", l.Name, l.QR, l.QC)
	for i := 0; i < l.QR; i++ {
		for j := 0; j < l.QC; j++ {
			fmt.Fprintf(&sb, "%5d", l.Owner(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Distribution bundles an algorithm's operand and result layouts.
type Distribution struct {
	Algorithm string
	A, B, C   Layout
}

// Aligned reports whether the result layout matches both operand
// layouts — the property that lets multiplications chain with zero
// redistribution.
func (d Distribution) Aligned() bool {
	return Equal(d.A, d.C) && Equal(d.B, d.C)
}

// Block2D returns the natural block distribution of the paper's
// Figure 1: block (i, j) of a q x q partition on mesh processor
// p_{i,j} (Gray-embedded 2-D grid, p = q^2).
func Block2D(name string, p int) Layout {
	g := hypercube.NewGrid2D(p)
	return Layout{
		Name: name, QR: g.Q, QC: g.Q,
		Owner: func(bi, bj int) int { return g.Node(bi, bj) },
	}
}

// Fig8 returns the 3-D All family's operand distribution (Figure 8):
// block (k, f(i,j)) of the cbrt(p) x p^(2/3) partition on processor
// p_{i,j,k}.
func Fig8(name string, p int) Layout {
	g := hypercube.NewGrid3D(p)
	q := g.Q
	return Layout{
		Name: name, QR: q, QC: q * q,
		Owner: func(bi, bj int) int {
			i, j := matrix.FInv(q, bj)
			return g.Node(i, j, bi)
		},
	}
}

// DiagPlane returns the 3DD distribution: block (k, i) of the
// cbrt(p) x cbrt(p) partition on diagonal-plane processor p_{i,i,k}.
func DiagPlane(name string, p int) Layout {
	g := hypercube.NewGrid3D(p)
	return Layout{
		Name: name, QR: g.Q, QC: g.Q,
		Owner: func(bk, bi int) int { return g.Node(bi, bi, bk) },
	}
}

// ZPlane returns the DNS distribution: block (i, j) of the
// cbrt(p) x cbrt(p) partition on z=0 processor p_{i,j,0}.
func ZPlane(name string, p int) Layout {
	g := hypercube.NewGrid3D(p)
	return Layout{
		Name: name, QR: g.Q, QC: g.Q,
		Owner: func(bi, bj int) int { return g.Node(bi, bj, 0) },
	}
}

// DiagColumns returns the 2-D Diagonal distribution of A and C: column
// group j (an n x n/q slab, i.e. a 1 x q block grid) on diagonal
// processor p_{j,j}.
func DiagColumns(name string, p int) Layout {
	g := hypercube.NewGrid2D(p)
	return Layout{
		Name: name, QR: 1, QC: g.Q,
		Owner: func(_, bj int) int { return g.Node(bj, bj) },
	}
}

// DiagRows returns the 2-D Diagonal distribution of B: row group j on
// diagonal processor p_{j,j}.
func DiagRows(name string, p int) Layout {
	g := hypercube.NewGrid2D(p)
	return Layout{
		Name: name, QR: g.Q, QC: 1,
		Owner: func(bi, _ int) int { return g.Node(bi, bi) },
	}
}

// BerntsenOperandA returns Berntsen's A distribution: A's column group
// m, block (i, j) of its q x q sub-partition, on processor (m; i, j) of
// subcube m — as a (q, q*q) grid where column m*q+j is column group m's
// j-th block column.
func BerntsenOperandA(p int) Layout {
	q, node := berntsenGeom(p)
	return Layout{
		Name: "Berntsen A", QR: q, QC: q * q,
		Owner: func(bi, bj int) int {
			sub, j := bj/q, bj%q
			return node(sub, bi, j)
		},
	}
}

// BerntsenResultC returns Berntsen's C distribution: block (i, j) of
// the q x q partition is split into q column groups, group m living on
// processor (m; i, j) — a (q, q*q) grid.
func BerntsenResultC(p int) Layout {
	q, node := berntsenGeom(p)
	return Layout{
		Name: "Berntsen C", QR: q, QC: q * q,
		Owner: func(bi, bj int) int {
			j, sub := bj/q, bj%q
			return node(sub, bi, j)
		},
	}
}

func berntsenGeom(p int) (int, func(sub, i, j int) int) {
	d := hypercube.Log2(p)
	if d%3 != 0 {
		panic(fmt.Sprintf("layout: p=%d not a cube", p))
	}
	dd := d / 3
	q := 1 << dd
	return q, func(sub, i, j int) int {
		return hypercube.Gray(sub)<<(2*dd) | hypercube.Gray(i)<<dd | hypercube.Gray(j)
	}
}

// For returns the operand/result distributions of the named algorithm
// ("simple", "cannon", "hje", "fox", "dns", "2dd", "3dd", "alltrans",
// "3dall", "berntsen") on p processors.
func For(alg string, p int) (Distribution, error) {
	switch alg {
	case "simple", "cannon", "fox":
		l := Block2D("block 2-D", p)
		return Distribution{Algorithm: alg, A: l, B: l, C: l}, nil
	case "hje":
		// HJE uses the binary (non-Gray) mesh embedding.
		d := hypercube.Log2(p)
		if d%2 != 0 {
			return Distribution{}, fmt.Errorf("layout: p=%d not a square", p)
		}
		q := 1 << (d / 2)
		l := Layout{Name: "block 2-D (binary)", QR: q, QC: q,
			Owner: func(bi, bj int) int { return bi*q + bj }}
		return Distribution{Algorithm: alg, A: l, B: l, C: l}, nil
	case "dns":
		l := ZPlane("z=0 plane", p)
		return Distribution{Algorithm: alg, A: l, B: l, C: l}, nil
	case "2dd":
		return Distribution{
			Algorithm: alg,
			A:         DiagColumns("diag column groups", p),
			B:         DiagRows("diag row groups", p),
			C:         DiagColumns("diag column groups", p),
		}, nil
	case "3dd":
		l := DiagPlane("diagonal plane", p)
		return Distribution{Algorithm: alg, A: l, B: l, C: l}, nil
	case "3ddtrans":
		// The Section 4.1.1 stepping stone: B distributed as A's
		// transpose on the diagonal plane (p_{i,i,k} holds B_{i,k}).
		a := DiagPlane("diagonal plane", p)
		g := hypercube.NewGrid3D(p)
		b := Layout{Name: "diagonal plane (transposed)", QR: g.Q, QC: g.Q,
			Owner: func(bi, bj int) int { return g.Node(bi, bi, bj) }}
		return Distribution{Algorithm: alg, A: a, B: b, C: a}, nil
	case "3dall":
		l := Fig8("Figure 8", p)
		return Distribution{Algorithm: alg, A: l, B: l, C: l}, nil
	case "alltrans":
		a := Fig8("Figure 8", p)
		// B is distributed as A's transpose (Figure 9): block
		// (f(i,j), k) on p_{i,j,k} — a (p^(2/3), cbrt p) grid.
		g := hypercube.NewGrid3D(p)
		q := g.Q
		b := Layout{Name: "Figure 9", QR: q * q, QC: q,
			Owner: func(bi, bj int) int {
				i, j := matrix.FInv(q, bi)
				return g.Node(i, j, bj)
			}}
		return Distribution{Algorithm: alg, A: a, B: b, C: a}, nil
	case "berntsen":
		g := hypercube.NewGrid3D(p) // validates the cube shape
		_ = g
		a := BerntsenOperandA(p)
		// B mirrors A with rows/columns swapped; for alignment
		// purposes what matters is that C differs from A.
		return Distribution{Algorithm: alg, A: a, B: a, C: BerntsenResultC(p)}, nil
	default:
		return Distribution{}, fmt.Errorf("layout: unknown algorithm %q", alg)
	}
}

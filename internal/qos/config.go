package qos

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// ConfigVersion is the schema version Parse accepts.
const ConfigVersion = 1

// TenantSpec is one tenant's policy in the config file.
type TenantSpec struct {
	// Keys are the API keys (X-API-Key header values) that resolve to
	// this tenant; the tenant's name itself always matches the X-Tenant
	// header. Optional.
	Keys []string `json:"keys,omitempty"`
	// Weight is the tenant's weighted-fair-queueing share; must be
	// positive and finite. Defaults to 1 when omitted.
	Weight float64 `json:"weight,omitempty"`
	// Class is the tenant's default priority class: "interactive",
	// "batch" (default) or "best-effort". A request may demote itself to
	// a lower class but never claim a higher one.
	Class string `json:"class,omitempty"`
	// Rate refills the tenant's token bucket, in predicted-cost units
	// (simulated time) per wall-clock second. 0 disables the quota.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the bucket capacity, in the same units; required (and
	// positive) when Rate is set.
	Burst float64 `json:"burst,omitempty"`
	// MaxConcurrency caps the tenant's in-flight jobs; queued jobs wait
	// (without blocking other tenants) until one finishes. 0: unlimited.
	MaxConcurrency int `json:"max_concurrency,omitempty"`
}

// Config is the versioned multi-tenant QoS policy hmmd loads with
// -qos. Like the calibration profile, Parse rejects — never loads —
// malformed or poisoned input: a daemon must not apportion capacity
// from a config it cannot fully trust.
type Config struct {
	Version int `json:"version"`
	// Tenants is keyed by tenant name.
	Tenants map[string]TenantSpec `json:"tenants"`
	// Default, when present, is the policy for requests that match no
	// configured tenant; otherwise unknown traffic gets weight 1, class
	// best-effort, no quota.
	Default *TenantSpec `json:"default,omitempty"`
}

// Parse decodes and validates a QoS config.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("qos: bad config JSON: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and parses a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("qos: %w", err)
	}
	return Parse(data)
}

// Marshal renders the config as indented JSON with a trailing newline.
func (c *Config) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Validate re-checks a config's invariants; a config built by Parse or
// Load has already passed, but a hand-assembled one may not have.
func (c *Config) Validate() error { return c.validate() }

func (c *Config) validate() error {
	if c.Version != ConfigVersion {
		return fmt.Errorf("qos: unsupported config version %d (want %d)", c.Version, ConfigVersion)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("qos: config has no tenants")
	}
	seenKeys := map[string]string{}
	for name, spec := range c.Tenants {
		if name == "" {
			return fmt.Errorf("qos: tenant with empty name")
		}
		if err := spec.validate(name); err != nil {
			return err
		}
		for _, k := range spec.Keys {
			if k == "" {
				return fmt.Errorf("qos: tenant %q has an empty API key", name)
			}
			if other, dup := seenKeys[k]; dup {
				return fmt.Errorf("qos: API key %q claimed by both %q and %q", k, other, name)
			}
			seenKeys[k] = name
		}
	}
	if c.Default != nil {
		if len(c.Default.Keys) > 0 {
			return fmt.Errorf("qos: the default policy cannot carry API keys")
		}
		if err := c.Default.validate("default"); err != nil {
			return err
		}
	}
	return nil
}

func (s *TenantSpec) validate(name string) error {
	if s.Weight != 0 && !(s.Weight > 0 && !math.IsInf(s.Weight, 0)) {
		return fmt.Errorf("qos: tenant %q weight %g must be positive and finite", name, s.Weight)
	}
	if _, err := ParseClass(s.Class); err != nil {
		return fmt.Errorf("qos: tenant %q: %w", name, err)
	}
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) || s.Rate < 0 {
		return fmt.Errorf("qos: tenant %q rate %g must be finite and non-negative", name, s.Rate)
	}
	if s.Rate > 0 && !(s.Burst > 0 && !math.IsInf(s.Burst, 0)) {
		return fmt.Errorf("qos: tenant %q burst %g must be positive and finite when rate is set", name, s.Burst)
	}
	if s.Rate == 0 && (math.IsNaN(s.Burst) || math.IsInf(s.Burst, 0) || s.Burst < 0) {
		return fmt.Errorf("qos: tenant %q burst %g must be finite and non-negative", name, s.Burst)
	}
	if s.MaxConcurrency < 0 {
		return fmt.Errorf("qos: tenant %q max_concurrency %d must be non-negative", name, s.MaxConcurrency)
	}
	return nil
}

// Package qos is hmmd's multi-tenant quality-of-service layer: a
// tenant registry (API key or X-Tenant header -> weight, priority
// class, token-bucket quota, concurrency cap), token buckets debited by
// the planner's predicted cost, and a weighted-fair priority queue that
// replaces the scheduler's FIFO.
//
// Scheduling model, in three layers:
//
//   - Across tenants: virtual-time weighted fair queueing. Each tenant
//     accumulates virtual time at rate cost/weight as its jobs are
//     dispatched; the queue always serves the backlogged tenant with the
//     least virtual time, so over any busy interval tenant throughput
//     converges to the weight ratio regardless of arrival rates. An
//     idle tenant re-joins at the current global virtual time, so it
//     cannot bank credit and starve others later.
//
//   - Within a tenant: strict class priority (interactive > batch >
//     best-effort), and earliest-deadline-first within a class (jobs
//     without a deadline come after all deadlined jobs, in FIFO order).
//
//   - Under overload: instead of rejecting whoever arrives next, the
//     queue sheds the least important queued job — lowest class first,
//     then the tenant with the deepest backlog — so a flooding
//     best-effort tenant absorbs the 429s while paced interactive
//     traffic keeps being admitted.
//
// Admission happens before a job is queued: the planner's predicted
// run time (calibrated when a profile is loaded) debits the tenant's
// token bucket, and a job whose predicted time already exceeds its
// deadline is refused up front rather than executed to certain failure.
package qos

import "errors"

// Typed admission errors; the server maps them to HTTP statuses.
var (
	// ErrQuota reports that the tenant's token bucket is in debt; the
	// caller should answer 429 with a Retry-After derived from the debt.
	ErrQuota = errors.New("qos: tenant rate quota exhausted")
	// ErrShed reports that a queued job was evicted (or an arriving one
	// refused) to make room for more important work under overload.
	ErrShed = errors.New("qos: shed under overload")
	// ErrInfeasible reports that the cost model predicts the job cannot
	// finish inside its deadline, so it was refused without running.
	ErrInfeasible = errors.New("qos: predicted time exceeds deadline")
)

// Class is a priority class. Lower values are more important.
type Class int

const (
	// Interactive is latency-sensitive traffic: served first.
	Interactive Class = iota
	// Batch is the default class for throughput-oriented work.
	Batch
	// BestEffort is shed first under overload.
	BestEffort
)

var classNames = map[Class]string{
	Interactive: "interactive",
	Batch:       "batch",
	BestEffort:  "best-effort",
}

// String returns the config-file spelling of the class.
func (c Class) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return "unknown"
}

// ParseClass parses a config-file class name. The empty string is
// Batch, the default.
func ParseClass(s string) (Class, error) {
	switch s {
	case "":
		return Batch, nil
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "best-effort", "besteffort":
		return BestEffort, nil
	}
	return 0, errors.New("qos: unknown class " + `"` + s + `" (want interactive, batch or best-effort)`)
}

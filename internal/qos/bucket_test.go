package qos

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic bucket
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func TestBucketDebitAndRefill(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(10, 100, clk.now) // 10 units/s, burst 100

	if ok, _ := b.Take(60); !ok {
		t.Fatal("full bucket refused an affordable job")
	}
	if tok, debt := b.Balance(); tok != 40 || debt != 0 {
		t.Fatalf("balance = (%g, %g), want (40, 0)", tok, debt)
	}
	// Overdraft: balance is positive, so an expensive job is admitted
	// and drives the bucket into debt.
	if ok, _ := b.Take(90); !ok {
		t.Fatal("positive balance refused the overdraft job")
	}
	if tok, debt := b.Balance(); tok != 0 || debt != 50 {
		t.Fatalf("balance = (%g, %g), want (0, 50)", tok, debt)
	}
	// In debt: refused, with a Retry-After that pays the debt off at
	// the refill rate (50 units / 10 per s = 5s).
	ok, wait := b.Take(1)
	if ok {
		t.Fatal("bucket in debt admitted a job")
	}
	if wait < 5*time.Second || wait > 6*time.Second {
		t.Fatalf("retry-after = %v, want ~5s", wait)
	}
	// Advancing past the debt restores admission.
	clk.advance(6 * time.Second)
	if ok, _ := b.Take(1); !ok {
		t.Fatal("refilled bucket still refusing")
	}
}

func TestBucketBurstCap(t *testing.T) {
	clk := newFakeClock()
	b := NewBucket(1000, 50, clk.now)
	clk.advance(time.Hour) // refill must clamp at burst
	if tok, _ := b.Balance(); tok != 50 {
		t.Fatalf("balance after long idle = %g, want burst 50", tok)
	}
}

package qos

import (
	"sync"
	"time"
)

// Bucket is a token bucket with overdraft: a take succeeds whenever the
// balance is positive, debiting the full cost even when that drives the
// balance negative (debt). Further takes then fail until refill pays
// the debt off. The overdraft means a tenant can always afford its
// largest single job once its balance recovers — there is no job too
// expensive to ever admit — while still being throttled to its
// long-term rate.
//
// Costs and the balance are in the planner's predicted-cost units
// (simulated time); rate is units per wall-clock second. Safe for
// concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // units per second
	burst  float64 // balance cap
	tokens float64 // current balance; negative = debt
	last   time.Time
	now    func() time.Time
}

// NewBucket returns a full bucket. now is the clock (nil: time.Now),
// injectable for deterministic tests.
func NewBucket(rate, burst float64, now func() time.Time) *Bucket {
	if now == nil {
		now = time.Now
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// refill advances the balance to the present. Caller holds mu.
func (b *Bucket) refill() {
	t := b.now()
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = t
}

// Take attempts to debit cost. On success it returns ok=true. On
// failure (balance not positive) it returns the wall-clock wait until
// the balance next turns positive — the Retry-After hint.
func (b *Bucket) Take(cost float64) (ok bool, wait time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens > 0 {
		b.tokens -= cost
		return true, 0
	}
	// Time for refill to pay off the debt and produce the first
	// positive token.
	need := -b.tokens
	if b.rate <= 0 {
		// Unreachable via the Registry (rate 0 means no bucket), but a
		// hand-built zero-rate bucket must not divide by zero.
		return false, time.Hour
	}
	return false, time.Duration((need/b.rate)*float64(time.Second)) + time.Millisecond
}

// Balance reports the current balance after refill: (available tokens,
// outstanding debt). Exactly one of the two is non-zero.
func (b *Bucket) Balance() (tokens, debt float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill()
	if b.tokens >= 0 {
		return b.tokens, 0
	}
	return 0, -b.tokens
}

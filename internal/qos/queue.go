package qos

import (
	"errors"
	"math"
	"sort"
)

// ErrFull reports that the queue is at capacity and the arriving item
// is itself the least important work present, so nothing was evicted.
var ErrFull = errors.New("qos: queue full")

// Item is one queued unit of work.
type Item struct {
	Tenant *Tenant
	Class  Class
	// Deadline is the EDF ordering key within a class (simulated-time
	// budget); 0 means none and sorts after every deadlined item.
	Deadline float64
	// Cost is the predicted service (simulated time): the virtual-time
	// advance charged against the tenant's weight at dispatch.
	Cost    float64
	Payload any

	seq uint64 // FIFO tie-break, assigned by Push
}

// edfKey maps "no deadline" after every real deadline.
func (it *Item) edfKey() float64 {
	if it.Deadline <= 0 {
		return math.Inf(1)
	}
	return it.Deadline
}

// less orders items within one (tenant, class) flow: EDF first, then
// arrival.
func (it *Item) less(other *Item) bool {
	if a, b := it.edfKey(), other.edfKey(); a != b {
		return a < b
	}
	return it.seq < other.seq
}

// flowKey identifies one tenant's backlog within one class tier.
type flowKey struct {
	tenant *Tenant
	class  Class
}

// flow is one (tenant, class) backlog plus its fair-queueing state.
type flow struct {
	key   flowKey
	items []*Item // sorted by Item.less
	vtime float64 // accumulated service / weight within this class tier
}

// Queue is the weighted-fair priority queue: strict priority across
// the classes (interactive > batch > best-effort), per-tenant
// virtual-time weighted fair queueing within each class, and EDF
// ordering within one tenant's class backlog. It is NOT safe for
// concurrent use: the scheduler guards it with its own mutex so queue
// transitions and its condition variable stay atomic.
type Queue struct {
	cap   int
	size  int
	seq   uint64
	vtime [BestEffort + 1]float64 // per-class global virtual time
	flows map[flowKey]*flow

	queued   map[*Tenant]int // queued items per tenant, all classes
	inflight map[*Tenant]int // dispatched, unreleased items per tenant
}

// NewQueue returns an empty queue holding at most capacity items
// (minimum 1).
func NewQueue(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{
		cap:      capacity,
		flows:    map[flowKey]*flow{},
		queued:   map[*Tenant]int{},
		inflight: map[*Tenant]int{},
	}
}

// Len reports the number of queued (not in-flight) items.
func (q *Queue) Len() int { return q.size }

// flowFor returns (creating if needed) the (tenant, class) flow. A
// flow that went idle re-joins at its tier's current virtual time, so
// idle periods never bank credit.
func (q *Queue) flowFor(t *Tenant, c Class) *flow {
	k := flowKey{tenant: t, class: c}
	f, ok := q.flows[k]
	if !ok {
		f = &flow{key: k, vtime: q.vtime[c]}
		q.flows[k] = f
		return f
	}
	if len(f.items) == 0 && f.vtime < q.vtime[c] {
		f.vtime = q.vtime[c]
	}
	return f
}

// Push enqueues the item. When the queue is full and shed is true, the
// least important queued item — lowest class first, then the tenant
// with the deepest backlog, then latest deadline, then newest — is
// evicted and returned for the caller to fail; if the arriving item is
// itself the least important, Push returns ErrFull and queues nothing.
// With shed false a full queue always answers ErrFull (the pre-QoS
// behavior).
func (q *Queue) Push(it *Item, shed bool) (evicted *Item, err error) {
	if it.Class < Interactive || it.Class > BestEffort {
		it.Class = Batch
	}
	it.seq = q.seq
	q.seq++
	if q.size >= q.cap {
		if !shed {
			return nil, ErrFull
		}
		victim := it
		var victimFlow *flow
		for _, f := range q.flows {
			for _, cand := range f.items {
				if shedBefore(victim, q.backlog(victim), cand, q.backlog(cand)) {
					victim, victimFlow = cand, f
				}
			}
		}
		if victimFlow == nil {
			return nil, ErrFull
		}
		q.remove(victimFlow, victim)
		evicted = victim
	}
	f := q.flowFor(it.Tenant, it.Class)
	i := sort.Search(len(f.items), func(i int) bool { return it.less(f.items[i]) })
	f.items = append(f.items, nil)
	copy(f.items[i+1:], f.items[i:])
	f.items[i] = it
	q.size++
	q.queued[it.Tenant]++
	return evicted, nil
}

// backlog reports how many items the item's tenant has queued across
// all classes.
func (q *Queue) backlog(it *Item) int { return q.queued[it.Tenant] }

// shedBefore reports whether cand is less important than the current
// victim: lower class first; within a class the tenant with the deeper
// backlog loses (a flooder sheds before a paced tenant of the same
// class); then the later deadline; then the newer arrival. Arrival
// order last means that on full ties the incoming item — the newest —
// stays the victim, preserving reject-the-arrival semantics.
func shedBefore(victim *Item, victimBacklog int, cand *Item, candBacklog int) bool {
	if cand.Class != victim.Class {
		return cand.Class > victim.Class
	}
	if candBacklog != victimBacklog {
		return candBacklog > victimBacklog
	}
	if a, b := cand.edfKey(), victim.edfKey(); a != b {
		return a > b
	}
	return cand.seq > victim.seq
}

// remove deletes one item from a flow.
func (q *Queue) remove(f *flow, it *Item) {
	for i, cand := range f.items {
		if cand == it {
			f.items = append(f.items[:i], f.items[i+1:]...)
			q.size--
			q.queued[it.Tenant]--
			if q.queued[it.Tenant] == 0 {
				delete(q.queued, it.Tenant)
			}
			return
		}
	}
}

// Pop dispatches the next item: the highest backlogged class tier goes
// first; within the tier, among tenants under their concurrency cap,
// the flow with the least virtual time (ties break by tenant name for
// determinism); within the flow, EDF then arrival. The tenant is
// charged cost/weight of virtual time in that tier and one in-flight
// slot; the caller must Release the tenant when the work finishes.
// Returns nil when nothing is eligible (empty, or every backlogged
// tenant is at its cap).
func (q *Queue) Pop() *Item {
	for class := Interactive; class <= BestEffort; class++ {
		var best *flow
		for _, f := range q.flows {
			if f.key.class != class || len(f.items) == 0 {
				continue
			}
			t := f.key.tenant
			if c := t.MaxConcurrency; c > 0 && q.inflight[t] >= c {
				continue
			}
			if best == nil || f.vtime < best.vtime ||
				(f.vtime == best.vtime && t.Name < best.key.tenant.Name) {
				best = f
			}
		}
		if best == nil {
			continue
		}
		it := best.items[0]
		best.items = best.items[1:]
		q.size--
		q.queued[it.Tenant]--
		if q.queued[it.Tenant] == 0 {
			delete(q.queued, it.Tenant)
		}
		if best.vtime > q.vtime[class] {
			q.vtime[class] = best.vtime
		}
		w := it.Tenant.Weight
		if w <= 0 {
			w = 1
		}
		best.vtime += it.Cost / w
		q.inflight[it.Tenant]++
		return it
	}
	return nil
}

// Release returns one of the tenant's in-flight slots.
func (q *Queue) Release(t *Tenant) {
	if q.inflight[t] > 0 {
		q.inflight[t]--
		if q.inflight[t] == 0 {
			delete(q.inflight, t)
		}
	}
}

// Depths reports [queued, in-flight] counts per tenant name.
func (q *Queue) Depths() map[string][2]int {
	out := make(map[string][2]int, len(q.queued)+len(q.inflight))
	for t, n := range q.queued {
		d := out[t.Name]
		d[0] += n
		out[t.Name] = d
	}
	for t, n := range q.inflight {
		d := out[t.Name]
		d[1] += n
		out[t.Name] = d
	}
	return out
}

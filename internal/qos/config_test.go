package qos

import (
	"strings"
	"testing"
	"time"
)

func validConfig() string {
	return `{
  "version": 1,
  "tenants": {
    "acme": {"keys": ["k-acme"], "weight": 4, "class": "interactive", "rate": 1e6, "burst": 5e6, "max_concurrency": 8},
    "bulk": {"weight": 1, "class": "best-effort"}
  },
  "default": {"weight": 1, "class": "batch"}
}`
}

func TestConfigParseValid(t *testing.T) {
	c, err := Parse([]byte(validConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tenants) != 2 || c.Default == nil {
		t.Fatalf("parsed config wrong: %+v", c)
	}
	// Round trip: Marshal output must parse back to a valid config.
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestConfigParseRejectsPoison(t *testing.T) {
	cases := map[string]string{
		"bad JSON":        `{`,
		"wrong version":   `{"version": 2, "tenants": {"a": {}}}`,
		"no tenants":      `{"version": 1, "tenants": {}}`,
		"empty name":      `{"version": 1, "tenants": {"": {}}}`,
		"negative weight": `{"version": 1, "tenants": {"a": {"weight": -1}}}`,
		"unknown class":   `{"version": 1, "tenants": {"a": {"class": "vip"}}}`,
		"negative rate":   `{"version": 1, "tenants": {"a": {"rate": -5}}}`,
		"rate no burst":   `{"version": 1, "tenants": {"a": {"rate": 10}}}`,
		"negative burst":  `{"version": 1, "tenants": {"a": {"burst": -1}}}`,
		"negative conc":   `{"version": 1, "tenants": {"a": {"max_concurrency": -1}}}`,
		"empty key":       `{"version": 1, "tenants": {"a": {"keys": [""]}}}`,
		"duplicate key":   `{"version": 1, "tenants": {"a": {"keys": ["k"]}, "b": {"keys": ["k"]}}}`,
		"default keys":    `{"version": 1, "tenants": {"a": {}}, "default": {"keys": ["k"]}}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("%s: accepted %s", name, data)
		}
	}
}

func TestRegistryResolution(t *testing.T) {
	c, err := Parse([]byte(validConfig()))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry(c, time.Now)
	if !r.Enabled() {
		t.Fatal("registry with config not enabled")
	}
	if tn := r.Resolve("k-acme", ""); tn.Name != "acme" || tn.Class != Interactive || tn.Weight != 4 {
		t.Errorf("by key: got %+v", tn)
	}
	if tn := r.Resolve("", "bulk"); tn.Name != "bulk" || tn.Class != BestEffort {
		t.Errorf("by name: got %+v", tn)
	}
	// API key wins over a conflicting tenant header.
	if tn := r.Resolve("k-acme", "bulk"); tn.Name != "acme" {
		t.Errorf("key precedence: got %q", tn.Name)
	}
	if tn := r.Resolve("nope", "nope"); tn.Name != "default" || tn.Class != Batch {
		t.Errorf("unknown -> default: got %+v", tn)
	}
	if tn := r.ByName("acme"); tn.Name != "acme" {
		t.Errorf("ByName: got %q", tn.Name)
	}
	names := []string{}
	for _, tn := range r.Tenants() {
		names = append(names, tn.Name)
	}
	if strings.Join(names, ",") != "acme,bulk,default" {
		t.Errorf("tenants = %v", names)
	}
	if r.Resolve("k-acme", "").Bucket == nil {
		t.Error("acme should carry a token bucket")
	}
	if r.Resolve("", "bulk").Bucket != nil {
		t.Error("bulk (rate 0) should have no bucket")
	}
}

func TestDisabledRegistry(t *testing.T) {
	r := NewRegistry(nil, nil)
	if r.Enabled() {
		t.Fatal("nil config must disable the registry")
	}
	if tn := r.Resolve("any", "thing"); tn != r.Default() {
		t.Error("disabled registry must resolve everything to the default tenant")
	}
	if got := len(r.Tenants()); got != 1 {
		t.Errorf("disabled registry has %d tenants, want 1", got)
	}
}

func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{
		"": Batch, "batch": Batch, "interactive": Interactive,
		"best-effort": BestEffort, "besteffort": BestEffort,
	} {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	if Interactive.String() != "interactive" || Class(99).String() != "unknown" {
		t.Error("Class.String wrong")
	}
}

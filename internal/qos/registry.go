package qos

import (
	"sort"
	"sync/atomic"
	"time"
)

// Tenant is one resolved tenant: immutable policy plus live counters.
// The scheduler owns queue/in-flight state; the counters here are the
// per-tenant slice of the hmmd_qos_* metrics family.
type Tenant struct {
	Name           string
	Weight         float64
	Class          Class
	MaxConcurrency int
	Bucket         *Bucket // nil: no rate quota

	// Counters, incremented by the scheduler.
	Jobs         atomic.Int64 // completed jobs
	Sheds        atomic.Int64 // jobs shed (evicted or refused) under overload
	QuotaRejects atomic.Int64 // jobs refused by the token bucket
	Infeasible   atomic.Int64 // jobs refused by deadline admission
}

// TenantStats is one tenant's metrics snapshot.
type TenantStats struct {
	Name         string
	Class        string
	Queued       int // jobs waiting in the weighted-fair queue
	Inflight     int // jobs executing
	Jobs         int64
	Sheds        int64
	QuotaRejects int64
	Infeasible   int64
	Tokens       float64 // available bucket balance (0 when no quota)
	Debt         float64 // outstanding bucket debt (0 when no quota)
}

// snapshot fills the counter and bucket fields; queue state is the
// scheduler's to add.
func (t *Tenant) snapshot() TenantStats {
	s := TenantStats{
		Name: t.Name, Class: t.Class.String(),
		Jobs: t.Jobs.Load(), Sheds: t.Sheds.Load(),
		QuotaRejects: t.QuotaRejects.Load(), Infeasible: t.Infeasible.Load(),
	}
	if t.Bucket != nil {
		s.Tokens, s.Debt = t.Bucket.Balance()
	}
	return s
}

// Registry resolves request credentials to tenants. It is immutable
// after construction; the tenants it hands out carry the live state.
type Registry struct {
	enabled bool
	def     *Tenant
	byKey   map[string]*Tenant // API key -> tenant
	byName  map[string]*Tenant // tenant name -> tenant
	all     []*Tenant          // sorted by name, default included
}

// NewRegistry builds a registry from a validated config. A nil config
// returns a disabled registry: every request resolves to one default
// tenant with no quota, which makes the weighted-fair queue degenerate
// to the plain FIFO hmmd always had.
func NewRegistry(cfg *Config, now func() time.Time) *Registry {
	if cfg == nil {
		def := &Tenant{Name: "default", Weight: 1, Class: Batch}
		return &Registry{def: def, byKey: map[string]*Tenant{}, byName: map[string]*Tenant{}, all: []*Tenant{def}}
	}
	r := &Registry{enabled: true, byKey: map[string]*Tenant{}, byName: map[string]*Tenant{}}
	build := func(name string, spec TenantSpec) *Tenant {
		t := &Tenant{Name: name, Weight: spec.Weight, MaxConcurrency: spec.MaxConcurrency}
		if t.Weight == 0 {
			t.Weight = 1
		}
		t.Class, _ = ParseClass(spec.Class) // validated at Parse time
		if spec.Rate > 0 {
			t.Bucket = NewBucket(spec.Rate, spec.Burst, now)
		}
		return t
	}
	for name, spec := range cfg.Tenants {
		t := build(name, spec)
		r.byName[name] = t
		r.all = append(r.all, t)
		for _, k := range spec.Keys {
			r.byKey[k] = t
		}
	}
	if cfg.Default != nil {
		r.def = build("default", *cfg.Default)
	} else {
		r.def = &Tenant{Name: "default", Weight: 1, Class: BestEffort}
	}
	if _, taken := r.byName["default"]; !taken {
		r.byName["default"] = r.def
		r.all = append(r.all, r.def)
	}
	sort.Slice(r.all, func(i, j int) bool { return r.all[i].Name < r.all[j].Name })
	return r
}

// Enabled reports whether a config is loaded. A disabled registry still
// resolves everything to the default tenant so the scheduler has one
// code path.
func (r *Registry) Enabled() bool { return r.enabled }

// Default returns the policy for unmatched traffic.
func (r *Registry) Default() *Tenant { return r.def }

// Resolve maps request credentials to a tenant: the API key first, the
// tenant-name header second, the default policy last.
func (r *Registry) Resolve(apiKey, tenantName string) *Tenant {
	if apiKey != "" {
		if t, ok := r.byKey[apiKey]; ok {
			return t
		}
	}
	if tenantName != "" {
		if t, ok := r.byName[tenantName]; ok {
			return t
		}
	}
	return r.def
}

// ByName resolves a tenant name (cluster job headers carry names, not
// keys); unknown names get the default policy.
func (r *Registry) ByName(name string) *Tenant {
	if t, ok := r.byName[name]; ok {
		return t
	}
	return r.def
}

// Tenants returns every tenant (default included), sorted by name.
func (r *Registry) Tenants() []*Tenant { return r.all }

// Stats snapshots every tenant's counters and bucket state, sorted by
// name. Queue depths are zero; the scheduler overlays them.
func (r *Registry) Stats() []TenantStats {
	out := make([]TenantStats, 0, len(r.all))
	for _, t := range r.all {
		out = append(out, t.snapshot())
	}
	return out
}

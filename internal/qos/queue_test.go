package qos

import (
	"testing"
)

func tenant(name string, weight float64, class Class) *Tenant {
	return &Tenant{Name: name, Weight: weight, Class: class}
}

func push(t *testing.T, q *Queue, tn *Tenant, class Class, deadline, cost float64, label string) {
	t.Helper()
	if _, err := q.Push(&Item{Tenant: tn, Class: class, Deadline: deadline, Cost: cost, Payload: label}, true); err != nil {
		t.Fatalf("push %s: %v", label, err)
	}
}

// drain pops every item, releasing each immediately (no concurrency
// caps in play), and returns the payload labels in dispatch order.
func drain(q *Queue) []string {
	var out []string
	for {
		it := q.Pop()
		if it == nil {
			return out
		}
		q.Release(it.Tenant)
		out = append(out, it.Payload.(string))
	}
}

// TestWFQWeightedShare pins the fairness property: with tenants at
// weights 2:1 and equal-cost backlogs, dispatches interleave so that
// after any prefix the served-work ratio tracks the weights.
func TestWFQWeightedShare(t *testing.T) {
	q := NewQueue(100)
	heavy := tenant("heavy", 2, Batch)
	light := tenant("light", 1, Batch)
	for i := 0; i < 12; i++ {
		push(t, q, heavy, Batch, 0, 1, "H")
		push(t, q, light, Batch, 0, 1, "L")
	}
	order := drain(q)
	if len(order) != 24 {
		t.Fatalf("drained %d items, want 24", len(order))
	}
	// Over the first 18 dispatches (both tenants still backlogged) the
	// 2x tenant must get 2/3 of the service, +-1 for phase.
	h := 0
	for _, s := range order[:18] {
		if s == "H" {
			h++
		}
	}
	if h < 11 || h > 13 {
		t.Fatalf("heavy got %d of first 18 dispatches, want ~12 (order %v)", h, order)
	}
}

// TestWFQCostWeighting pins that virtual time advances by cost/weight:
// a tenant submitting double-cost jobs at equal weight gets half the
// dispatch slots.
func TestWFQCostWeighting(t *testing.T) {
	q := NewQueue(100)
	big := tenant("big", 1, Batch)
	small := tenant("small", 1, Batch)
	for i := 0; i < 8; i++ {
		push(t, q, big, Batch, 0, 2, "B")
	}
	for i := 0; i < 16; i++ {
		push(t, q, small, Batch, 0, 1, "S")
	}
	order := drain(q)
	b := 0
	for _, s := range order[:12] {
		if s == "B" {
			b++
		}
	}
	// Equal virtual rates: 12 dispatches split ~4 big (cost 2) to ~8
	// small (cost 1).
	if b < 3 || b > 5 {
		t.Fatalf("big got %d of first 12 dispatches, want ~4 (order %v)", b, order)
	}
}

// TestClassPriorityWithinTenant pins that one tenant's backlog serves
// interactive before batch before best-effort regardless of arrival
// order, and EDF within a class (no deadline last).
func TestClassPriorityWithinTenant(t *testing.T) {
	q := NewQueue(100)
	tn := tenant("t", 1, Batch)
	push(t, q, tn, BestEffort, 0, 1, "be")
	push(t, q, tn, Batch, 0, 1, "batch-none")
	push(t, q, tn, Batch, 500, 1, "batch-late")
	push(t, q, tn, Batch, 100, 1, "batch-early")
	push(t, q, tn, Interactive, 0, 1, "inter")
	got := drain(q)
	want := []string{"inter", "batch-early", "batch-late", "batch-none", "be"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestIdleTenantCannotBankCredit pins the virtual-time re-join rule: a
// tenant idle while another consumed service re-enters at the current
// virtual time and shares from there, rather than monopolizing the
// queue to "catch up".
func TestIdleTenantCannotBankCredit(t *testing.T) {
	q := NewQueue(100)
	busy := tenant("busy", 1, Batch)
	idle := tenant("idle", 1, Batch)
	for i := 0; i < 10; i++ {
		push(t, q, busy, Batch, 0, 1, "B")
	}
	for i := 0; i < 5; i++ {
		if q.Pop() == nil {
			t.Fatal("unexpected empty queue")
		}
		q.Release(busy)
	}
	// idle arrives late; it must interleave from now on, not drain its
	// whole backlog first.
	for i := 0; i < 5; i++ {
		push(t, q, idle, Batch, 0, 1, "I")
	}
	order := drain(q)
	prefix := order[:4]
	i := 0
	for _, s := range prefix {
		if s == "I" {
			i++
		}
	}
	if i > 3 {
		t.Fatalf("idle tenant monopolized after re-join: %v", order)
	}
}

// TestConcurrencyCapSkipsTenant pins that a tenant at its in-flight cap
// is passed over without blocking other tenants, and becomes eligible
// again on Release.
func TestConcurrencyCapSkipsTenant(t *testing.T) {
	q := NewQueue(100)
	capped := tenant("capped", 10, Interactive)
	capped.MaxConcurrency = 1
	other := tenant("other", 1, BestEffort)
	push(t, q, capped, Interactive, 0, 1, "c1")
	push(t, q, capped, Interactive, 0, 1, "c2")
	push(t, q, other, BestEffort, 0, 1, "o1")

	if it := q.Pop(); it.Payload.(string) != "c1" {
		t.Fatalf("first pop %v, want c1", it.Payload)
	}
	// capped is at its limit: the next dispatch must be other's item
	// even though capped has higher weight and class.
	if it := q.Pop(); it.Payload.(string) != "o1" {
		t.Fatalf("second pop %v, want o1 (capped tenant at limit)", it.Payload)
	}
	if it := q.Pop(); it != nil {
		t.Fatalf("third pop %v, want nil (capped tenant still at limit)", it.Payload)
	}
	q.Release(capped)
	if it := q.Pop(); it == nil || it.Payload.(string) != "c2" {
		t.Fatalf("post-release pop = %v, want c2", it)
	}
}

// TestShedPolicy pins the overload behavior: the least important
// queued item is evicted — best-effort before batch before interactive,
// deepest backlog first within a class — and an arriving item that is
// itself least important is refused without evicting anyone.
func TestShedPolicy(t *testing.T) {
	q := NewQueue(3)
	flood := tenant("flood", 1, BestEffort)
	paced := tenant("paced", 1, Interactive)
	push(t, q, flood, BestEffort, 0, 1, "f1")
	push(t, q, flood, BestEffort, 0, 1, "f2")
	push(t, q, flood, BestEffort, 0, 1, "f3")

	// Interactive arrival on a full queue evicts a flooder item (the
	// newest of the deepest backlog).
	ev, err := q.Push(&Item{Tenant: paced, Class: Interactive, Cost: 1, Payload: "p1"}, true)
	if err != nil {
		t.Fatalf("interactive push on full queue rejected: %v", err)
	}
	if ev == nil || ev.Payload.(string) != "f3" {
		t.Fatalf("evicted %v, want f3", ev)
	}

	// A best-effort arrival ties with queued best-effort work on class;
	// its backlog (including itself) is deepest, so it is refused.
	if _, err := q.Push(&Item{Tenant: flood, Class: BestEffort, Cost: 1, Payload: "f4"}, true); err == nil {
		t.Fatal("flooder arrival on full queue was admitted")
	}

	// With shedding disabled (no QoS config) a full queue refuses every
	// arrival, interactive included.
	if _, err := q.Push(&Item{Tenant: paced, Class: Interactive, Cost: 1, Payload: "p2"}, false); err == nil {
		t.Fatal("shed=false admitted on a full queue")
	}

	// The interactive item must dispatch before the surviving flood.
	if it := q.Pop(); it.Payload.(string) != "p1" {
		t.Fatalf("first pop %v, want p1", it.Payload)
	}
}

func TestQueueDepths(t *testing.T) {
	q := NewQueue(10)
	a := tenant("a", 1, Batch)
	push(t, q, a, Batch, 0, 1, "x")
	push(t, q, a, Batch, 0, 1, "y")
	if q.Pop() == nil {
		t.Fatal("pop failed")
	}
	d := q.Depths()
	if d["a"] != [2]int{1, 1} {
		t.Fatalf("depths = %v, want a:{1,1}", d)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
}

package qos

import (
	"testing"
	"time"
)

// FuzzQoSConfigParse asserts the parser never panics, never accepts a
// config that fails its own validation invariants, and that everything
// accepted round-trips: Marshal output must re-Parse cleanly and build
// a working registry.
func FuzzQoSConfigParse(f *testing.F) {
	f.Add([]byte(validConfig()))
	f.Add([]byte(`{"version": 1, "tenants": {"a": {"rate": 1, "burst": 2}}}`))
	f.Add([]byte(`{"version": 2}`))
	f.Add([]byte(`{"version": 1, "tenants": {"a": {"weight": -1}}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"version": 1, "tenants": {"a": {"class": "interactive", "keys": ["x","x"]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted configs must satisfy the invariants validation claims.
		if c.Version != ConfigVersion || len(c.Tenants) == 0 {
			t.Fatalf("accepted config violates invariants: %+v", c)
		}
		out, err := c.Marshal()
		if err != nil {
			t.Fatalf("accepted config failed to marshal: %v", err)
		}
		c2, err := Parse(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v\n%s", err, out)
		}
		// A registry must build without panicking and resolve something.
		r := NewRegistry(c2, time.Now)
		if r.Resolve("", "") == nil {
			t.Fatal("registry resolved nil tenant")
		}
	})
}

// Package obs is the serving tier's observability layer: request-scoped
// spans with trace/span IDs and typed attributes, a bounded in-memory
// ring of recently completed traces, structured logging helpers over
// log/slog, and a Chrome trace-event export that merges server-side
// spans with the emulator's simulated timeline on a shared clock.
//
// The package is dependency-free (standard library only) and nil-safe:
// every method on a nil *Tracer or nil *Span is a no-op, so the hot
// path can stay unconditionally instrumented and pay nothing when
// tracing is disabled.
//
// Clock model: spans record wall-clock unix nanoseconds from time.Now.
// The coordinator and its workers run on the same host in every
// supported deployment (separate processes, one machine), so their
// clocks are literally the same system clock and span intervals from
// different processes are directly comparable; see DESIGN.md §14 for
// the cross-host caveat.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"hypermm/internal/trace"
)

// ID lengths in hex characters: 16-byte trace IDs and 8-byte span IDs,
// the W3C trace-context sizes.
const (
	TraceIDLen = 32
	SpanIDLen  = 16

	// maxWireID bounds how much of an untrusted wire ID is even
	// inspected; anything longer is rejected before validation walks it.
	maxWireID = 64
)

// newID returns n/2 random bytes as n lowercase hex characters.
func newID(n int) string {
	b := make([]byte, n/2)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a functioning (if colliding) fallback.
		return string(make([]byte, n))
	}
	return hex.EncodeToString(b)
}

// validHexID reports whether s is exactly n lowercase hex characters
// and not all zeros (the invalid sentinel, as in W3C trace-context).
func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// ValidTraceID reports whether s is a well-formed trace ID.
func ValidTraceID(s string) bool { return validHexID(s, TraceIDLen) }

// ValidSpanID reports whether s is a well-formed span ID.
func ValidSpanID(s string) bool { return validHexID(s, SpanIDLen) }

// SpanContext is the propagated part of a span: enough to parent remote
// work to it.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether both IDs are well-formed.
func (sc SpanContext) Valid() bool {
	return ValidTraceID(sc.TraceID) && ValidSpanID(sc.SpanID)
}

// ParseSpanContext validates an untrusted (traceID, spanID) pair from a
// wire header. Malformed or oversized IDs yield ok=false — the caller
// must treat that as "no trace context", never as an error: a bad
// header loses observability, not the job.
func ParseSpanContext(traceID, spanID string) (SpanContext, bool) {
	if len(traceID) > maxWireID || len(spanID) > maxWireID {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

type ctxKey struct{}

// ContextWith returns ctx carrying sc as the current span context.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the current span context, if any.
func FromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// Attr is one typed span attribute. Values are restricted to the JSON
// scalar types by the constructors below.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 returns a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float64 returns a float attribute.
func Float64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// SpanData is one completed span as stored in the ring and shipped over
// the cluster wire inside a Result frame.
type SpanData struct {
	TraceID string         `json:"trace_id"`
	SpanID  string         `json:"span_id"`
	Parent  string         `json:"parent_id,omitempty"`
	Name    string         `json:"name"`
	Process string         `json:"process,omitempty"`
	Start   int64          `json:"start_unix_nano"`
	End     int64          `json:"end_unix_nano"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span is one in-progress timed operation. Spans are not safe for
// concurrent mutation: the goroutine that starts a span sets its
// attributes and ends it.
type Span struct {
	tracer *Tracer
	data   SpanData
	ended  bool
}

// TraceID returns the span's trace ID ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.data.TraceID
}

// SpanID returns the span's own ID ("" on a nil span).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.data.SpanID
}

// Context returns the span's propagation context (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.data.TraceID, SpanID: s.data.SpanID}
}

// Set attaches attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		s.data.Attrs[a.Key] = a.Value
	}
}

// End stamps the span's end time and exports it to the tracer's ring.
// Ending twice exports once.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.data.End = time.Now().UnixNano()
	s.tracer.record(s.data)
}

// SimTimeline anchors one simulated run's event log to the wall-clock
// interval in which it actually executed, so the merged Chrome export
// can place simulated spans under the real ones: simulated time
// [0, Elapsed] maps linearly onto wall nanos [Start, End].
type SimTimeline struct {
	Events  []trace.Event // per-node simulated events, simulated time units
	Elapsed float64       // simulated length of the run
	P       int           // machine size, for labeling
	Start   int64         // wall unix nanos when the run began
	End     int64         // wall unix nanos when the run finished
}

// TraceData is everything the ring holds for one trace ID. The sim
// timeline is export-only (it feeds ChromeJSON); its element type is
// internal to the module, so it stays out of the raw JSON form.
type TraceData struct {
	TraceID string       `json:"trace_id"`
	Spans   []SpanData   `json:"spans"`
	Sim     *SimTimeline `json:"-"`
}

// Tracer hands out spans and keeps the most recent completed traces in
// a bounded ring: when a new trace ID would exceed the capacity, the
// oldest trace is evicted whole. Safe for concurrent use. A nil Tracer
// disables tracing: StartSpan returns a nil span and every other method
// is a no-op.
type Tracer struct {
	process string

	mu     sync.Mutex
	traces map[string]*TraceData
	order  []string // trace IDs, oldest first
	cap    int
}

// maxSpansPerTrace bounds one trace's span list so a pathological
// request (endless failover loop, malicious Ingest) cannot grow a ring
// entry without bound; spans beyond it are dropped.
const maxSpansPerTrace = 512

// NewTracer returns a tracer stamping spans with the given process
// label and retaining the last capacity traces (minimum 1).
func NewTracer(process string, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		process: process,
		traces:  make(map[string]*TraceData),
		cap:     capacity,
	}
}

// StartSpan begins a span named name. If ctx carries a span context the
// new span joins that trace as a child; otherwise it becomes the root
// of a fresh trace. The returned context carries the new span, so
// nested StartSpan calls build the tree.
func (t *Tracer) StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		data: SpanData{
			SpanID:  newID(SpanIDLen),
			Name:    name,
			Process: t.process,
			Start:   time.Now().UnixNano(),
		},
	}
	if parent, ok := FromContext(ctx); ok && parent.Valid() {
		s.data.TraceID = parent.TraceID
		s.data.Parent = parent.SpanID
	} else {
		s.data.TraceID = newID(TraceIDLen)
	}
	s.Set(attrs...)
	return ContextWith(ctx, s.Context()), s
}

// record stores one completed span, evicting the oldest trace when the
// ring is full.
func (t *Tracer) record(sd SpanData) {
	if t == nil || !ValidTraceID(sd.TraceID) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recordLocked(sd)
}

func (t *Tracer) recordLocked(sd SpanData) {
	td, ok := t.traces[sd.TraceID]
	if !ok {
		td = &TraceData{TraceID: sd.TraceID}
		t.traces[sd.TraceID] = td
		t.order = append(t.order, sd.TraceID)
		for len(t.order) > t.cap {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	if len(td.Spans) < maxSpansPerTrace {
		td.Spans = append(td.Spans, sd)
	}
}

// Ingest merges externally produced spans — a worker's half of a
// cross-process trace, arriving in a Result frame — into the ring.
// Spans with malformed IDs are dropped; Ingest never fails.
func (t *Tracer) Ingest(spans []SpanData) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sd := range spans {
		if !ValidTraceID(sd.TraceID) || !ValidSpanID(sd.SpanID) {
			continue
		}
		t.recordLocked(sd)
	}
}

// AttachSim anchors a simulated timeline to traceID for the merged
// Chrome export. The trace entry is created if the run's spans have not
// landed yet.
func (t *Tracer) AttachSim(traceID string, sim SimTimeline) {
	if t == nil || !ValidTraceID(traceID) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	td, ok := t.traces[traceID]
	if !ok {
		td = &TraceData{TraceID: traceID}
		t.traces[traceID] = td
		t.order = append(t.order, traceID)
		for len(t.order) > t.cap {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	td.Sim = &sim
}

// Trace returns a snapshot of one trace, spans sorted by start time
// (ties by end, then span ID, so the order is deterministic).
func (t *Tracer) Trace(id string) (TraceData, bool) {
	if t == nil {
		return TraceData{}, false
	}
	t.mu.Lock()
	td, ok := t.traces[id]
	if !ok {
		t.mu.Unlock()
		return TraceData{}, false
	}
	out := TraceData{TraceID: td.TraceID, Sim: td.Sim}
	out.Spans = make([]SpanData, len(td.Spans))
	copy(out.Spans, td.Spans)
	t.mu.Unlock()
	sortSpans(out.Spans)
	return out, true
}

// Len reports how many traces the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

func sortSpans(spans []SpanData) {
	// Insertion sort: span lists are short (bounded by
	// maxSpansPerTrace, typically < 10) and mostly ordered already.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spanLess(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func spanLess(a, b SpanData) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	return a.SpanID < b.SpanID
}

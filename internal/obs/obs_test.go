package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"hypermm/internal/trace"
)

func TestSpanLifecycleAndNesting(t *testing.T) {
	tr := NewTracer("test", 8)
	ctx, root := tr.StartSpan(context.Background(), "handler", String("algorithm", "cannon"), Int("n", 64))
	if !ValidTraceID(root.TraceID()) || !ValidSpanID(root.SpanID()) {
		t.Fatalf("malformed ids: trace %q span %q", root.TraceID(), root.SpanID())
	}
	_, child := tr.StartSpan(ctx, "plan")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %q != root %q", child.TraceID(), root.TraceID())
	}
	child.End()
	root.Set(Bool("ok", true))
	root.End()

	td, ok := tr.Trace(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(td.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(td.Spans))
	}
	// Sorted by start: root first, child parented to it.
	if td.Spans[0].Name != "handler" || td.Spans[1].Name != "plan" {
		t.Errorf("span order: %s, %s", td.Spans[0].Name, td.Spans[1].Name)
	}
	if td.Spans[1].Parent != root.SpanID() {
		t.Errorf("child parent %q, want %q", td.Spans[1].Parent, root.SpanID())
	}
	if got := td.Spans[0].Attrs["algorithm"]; got != "cannon" {
		t.Errorf("attr algorithm = %v", got)
	}
	if got := td.Spans[0].Attrs["n"]; got != int64(64) {
		t.Errorf("attr n = %v (%T)", got, got)
	}
	for _, sd := range td.Spans {
		if sd.End < sd.Start {
			t.Errorf("span %s ends before it starts", sd.Name)
		}
		if sd.Process != "test" {
			t.Errorf("span %s process %q", sd.Name, sd.Process)
		}
	}
}

func TestDoubleEndExportsOnce(t *testing.T) {
	tr := NewTracer("test", 8)
	_, s := tr.StartSpan(context.Background(), "once")
	s.End()
	s.End()
	td, _ := tr.Trace(s.TraceID())
	if len(td.Spans) != 1 {
		t.Fatalf("double End exported %d spans", len(td.Spans))
	}
}

func TestRingEvictsOldestTrace(t *testing.T) {
	tr := NewTracer("test", 3)
	var ids []string
	for i := 0; i < 5; i++ {
		_, s := tr.StartSpan(context.Background(), "job")
		s.End()
		ids = append(ids, s.TraceID())
	}
	if tr.Len() != 3 {
		t.Fatalf("ring holds %d traces, want 3", tr.Len())
	}
	for _, id := range ids[:2] {
		if _, ok := tr.Trace(id); ok {
			t.Errorf("trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := tr.Trace(id); !ok {
			t.Errorf("trace %s evicted too early", id)
		}
	}
}

func TestSpanCapPerTrace(t *testing.T) {
	tr := NewTracer("test", 2)
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < maxSpansPerTrace+50; i++ {
		_, s := tr.StartSpan(ctx, "child")
		s.End()
	}
	root.End()
	td, _ := tr.Trace(root.TraceID())
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, want cap %d", len(td.Spans), maxSpansPerTrace)
	}
}

func TestIngestDropsMalformedSpans(t *testing.T) {
	tr := NewTracer("coord", 4)
	good := SpanData{
		TraceID: newID(TraceIDLen), SpanID: newID(SpanIDLen),
		Name: "worker.execute", Process: "w1",
		Start: time.Now().UnixNano(), End: time.Now().UnixNano(),
	}
	tr.Ingest([]SpanData{
		good,
		{TraceID: "nope", SpanID: good.SpanID, Name: "bad-trace"},
		{TraceID: good.TraceID, SpanID: "XYZ", Name: "bad-span"},
		{TraceID: strings.Repeat("a", 4096), SpanID: good.SpanID, Name: "oversized"},
	})
	td, ok := tr.Trace(good.TraceID)
	if !ok || len(td.Spans) != 1 || td.Spans[0].Name != "worker.execute" {
		t.Fatalf("ingest kept wrong spans: %+v (ok=%v)", td.Spans, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("malformed spans created ring entries: %d", tr.Len())
	}
}

func TestParseSpanContext(t *testing.T) {
	tid, sid := newID(TraceIDLen), newID(SpanIDLen)
	if sc, ok := ParseSpanContext(tid, sid); !ok || sc.TraceID != tid || sc.SpanID != sid {
		t.Fatalf("valid pair rejected: %v %v", sc, ok)
	}
	bad := []struct{ tid, sid string }{
		{"", ""},
		{tid, ""},
		{"", sid},
		{strings.ToUpper(tid), sid},               // uppercase hex is not ours
		{tid + "00", sid},                         // wrong length
		{tid, sid[:8]},                            // short span
		{strings.Repeat("0", TraceIDLen), sid},    // all-zero sentinel
		{tid, strings.Repeat("0", SpanIDLen)},     // all-zero sentinel
		{strings.Repeat("a", 100000), sid},        // oversized
		{tid[:TraceIDLen-1] + "g", sid},           // non-hex
		{"café0123456789abcdef0123456789ab", sid}, // multibyte
	}
	for _, c := range bad {
		if _, ok := ParseSpanContext(c.tid, c.sid); ok {
			t.Errorf("accepted malformed pair (%q, %q)", c.tid, c.sid)
		}
	}
}

func TestNilTracerAndSpanAreNoops(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "nothing", String("k", "v"))
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	if _, ok := FromContext(ctx); ok {
		t.Fatal("nil tracer polluted the context")
	}
	s.Set(Int("n", 1)) // must not panic
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" {
		t.Error("nil span has ids")
	}
	tr.Ingest([]SpanData{{TraceID: "x"}})
	tr.AttachSim("x", SimTimeline{})
	if _, ok := tr.Trace("x"); ok {
		t.Error("nil tracer returned a trace")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer has length")
	}
}

func TestChromeJSONMergesSimTimeline(t *testing.T) {
	tr := NewTracer("hmmd", 4)
	ctx, root := tr.StartSpan(context.Background(), "http.matmul")
	_, run := tr.StartSpan(ctx, "sched.run")
	start := time.Now()
	time.Sleep(2 * time.Millisecond) // give the sim interval real width
	run.End()
	root.End()
	tr.AttachSim(root.TraceID(), SimTimeline{
		Events: []trace.Event{
			{Node: 0, Kind: trace.Compute, Start: 0, End: 50},
			{Node: 1, Kind: trace.Send, Start: 50, End: 150, Peer: 0, Words: 8},
		},
		Elapsed: 150, P: 4,
		Start: start.UnixNano(), End: start.Add(2 * time.Millisecond).UnixNano(),
	})

	td, ok := tr.Trace(root.TraceID())
	if !ok || td.Sim == nil {
		t.Fatal("trace or sim timeline missing")
	}
	var buf bytes.Buffer
	if err := td.ChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var spans, sims, meta int
	simPid := -1
	for _, e := range f.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "simulated hypercube") {
				simPid = e.Pid
			}
		case e.Cat == "span":
			spans++
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("span %s has negative ts/dur: %v/%v", e.Name, e.Ts, e.Dur)
			}
		case e.Cat == "sim":
			sims++
		}
	}
	if spans != 2 || sims != 2 || meta != 2 {
		t.Fatalf("event mix spans=%d sims=%d meta=%d, want 2/2/2\n%s", spans, sims, meta, buf.String())
	}
	// The simulated events must land inside the wall window of the run
	// on the shared clock: compute [0,50] of 150 over 2ms starts at the
	// sim anchor and spans 2/3ms or less.
	for _, e := range f.TraceEvents {
		if e.Cat != "sim" {
			continue
		}
		if e.Pid != simPid {
			t.Errorf("sim event on pid %d, want %d", e.Pid, simPid)
		}
		if e.Ts < 0 || e.Ts+e.Dur > 2500 { // 2ms window + slack, in us
			t.Errorf("sim event %q escapes the run window: ts=%v dur=%v", e.Name, e.Ts, e.Dur)
		}
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
}

func TestChromeJSONDeterministic(t *testing.T) {
	tr := NewTracer("hmmd", 4)
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < 4; i++ {
		_, s := tr.StartSpan(ctx, fmt.Sprintf("child-%d", i))
		s.End()
	}
	root.End()
	td, _ := tr.Trace(root.TraceID())
	var a, b bytes.Buffer
	if err := td.ChromeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := td.ChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("ChromeJSON is not deterministic for the same trace")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("job done", "trace_id", "abc", "algorithm", "cannon", "n", 64)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "job done" || rec["trace_id"] != "abc" || rec["algorithm"] != "cannon" {
		t.Errorf("fields lost: %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("kept", "worker", "w1")
	if s := buf.String(); !strings.Contains(s, "kept") || strings.Contains(s, "hidden") {
		t.Errorf("level filtering broken: %q", s)
	}

	if _, err := NewLogger(&buf, "loud", "json"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Error("nop logger claims to log errors")
	}
	lg.Error("into the void") // must not panic
}

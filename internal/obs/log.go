package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// ParseLevel maps a -log-level flag value to its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds the daemon's structured logger: format is "json"
// (the default, one JSON object per line) or "text" (logfmt-style
// key=value), level one of debug/info/warn/error.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json", "":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want json or text)", format)
	}
}

var (
	nopOnce   sync.Once
	nopLogger *slog.Logger
)

// NopLogger returns a logger that discards everything — the default
// for library configs whose caller wired no logger.
func NopLogger() *slog.Logger {
	nopOnce.Do(func() {
		nopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	})
	return nopLogger
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one record of the Chrome trace-event format. Spans are
// emitted as complete ("X") events with explicit durations; processes
// are named with metadata ("M") events, so Perfetto shows one track
// group per serving process plus one per simulated hypercube node set.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON writes the trace in the Chrome trace-event format
// (chrome://tracing, Perfetto). Server-side spans appear as complete
// events, one process track per recorded Process label; when a
// simulated timeline is attached, its per-node events are merged in as
// a separate process, with simulated time [0, Elapsed] mapped linearly
// onto the wall-clock interval the run actually occupied — both sides
// therefore share one clock (microseconds since the trace's first
// span) and nest correctly. Output is deterministic for a given trace.
func (td TraceData) ChromeJSON(w io.Writer) error {
	spans := make([]SpanData, len(td.Spans))
	copy(spans, td.Spans)
	sortSpans(spans)

	// t0: the trace's origin on the shared clock.
	var t0 int64
	for i, sd := range spans {
		if i == 0 || sd.Start < t0 {
			t0 = sd.Start
		}
	}
	if td.Sim != nil && (len(spans) == 0 || td.Sim.Start < t0) {
		t0 = td.Sim.Start
	}
	us := func(nanos int64) float64 { return float64(nanos-t0) / 1e3 }

	// Process labels in order of first appearance get pids 1..N.
	pids := map[string]int{}
	var labels []string
	pidOf := func(label string) int {
		if p, ok := pids[label]; ok {
			return p
		}
		p := len(pids) + 1
		pids[label] = p
		labels = append(labels, label)
		return p
	}

	var evs []chromeEvent
	for _, sd := range spans {
		label := sd.Process
		if label == "" {
			label = "unknown"
		}
		args := map[string]any{"trace_id": sd.TraceID, "span_id": sd.SpanID}
		if sd.Parent != "" {
			args["parent_id"] = sd.Parent
		}
		for k, v := range sd.Attrs {
			args[k] = v
		}
		evs = append(evs, chromeEvent{
			Name: sd.Name, Cat: "span", Ph: "X",
			Ts: us(sd.Start), Dur: float64(sd.End-sd.Start) / 1e3,
			Pid: pidOf(label), Tid: 1, Args: args,
		})
	}

	if sim := td.Sim; sim != nil && len(sim.Events) > 0 {
		pid := pidOf(fmt.Sprintf("simulated hypercube (p=%d)", sim.P))
		// Wall nanos spanned by one simulated time unit. A run whose
		// simulated or wall length is degenerate collapses onto its
		// start instant rather than being dropped.
		scale := 0.0
		if sim.Elapsed > 0 && sim.End > sim.Start {
			scale = float64(sim.End-sim.Start) / sim.Elapsed
		}
		for _, e := range sim.Events {
			name := e.Kind.String()
			args := map[string]any{"sim_start": e.Start, "sim_end": e.End, "words": e.Words}
			if name != "compute" {
				name = fmt.Sprintf("%s peer=%d %dw", name, e.Peer, e.Words)
				args["peer"] = e.Peer
			}
			start := float64(sim.Start) + e.Start*scale
			dur := (e.End - e.Start) * scale
			evs = append(evs, chromeEvent{
				Name: name, Cat: "sim", Ph: "X",
				Ts: (start - float64(t0)) / 1e3, Dur: dur / 1e3,
				Pid: pid, Tid: e.Node + 1, Args: args,
			})
		}
	}

	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].Pid != evs[j].Pid {
			return evs[i].Pid < evs[j].Pid
		}
		if evs[i].Tid != evs[j].Tid {
			return evs[i].Tid < evs[j].Tid
		}
		return evs[i].Ts < evs[j].Ts
	})

	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(evs)+len(labels))}
	for _, label := range labels {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[label],
			Args: map[string]any{"name": label},
		})
	}
	out.TraceEvents = append(out.TraceEvents, evs...)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

// naiveMul is the reference O(n^3) triple loop.
func naiveMul(a, b *Dense) *Dense {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("bad shape %dx%d/%d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("not zeroed")
		}
	}
}

func TestIdentityMul(t *testing.T) {
	a := Random(9, 9, 1)
	if !Equal(Mul(a, Identity(9)), a) {
		t.Error("A*I != A")
	}
	if !Equal(Mul(Identity(9), a), a) {
		t.Error("I*A != A")
	}
}

func TestMulMatchesNaive(t *testing.T) {
	shapes := []struct{ n, k, m int }{
		{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {65, 64, 63}, {100, 1, 100},
	}
	for _, s := range shapes {
		a := Random(s.n, s.k, int64(s.n))
		b := Random(s.k, s.m, int64(s.m))
		got, want := Mul(a, b), naiveMul(a, b)
		if MaxAbsDiff(got, want) > 1e-12 {
			t.Errorf("Mul %dx%dx%d differs from naive by %g", s.n, s.k, s.m, MaxAbsDiff(got, want))
		}
	}
}

func TestMulAddAccumulates(t *testing.T) {
	a := Random(8, 8, 2)
	b := Random(8, 8, 3)
	c := Random(8, 8, 4)
	want := Add(c, Mul(a, b))
	MulAdd(c, a, b)
	if MaxAbsDiff(c, want) > 1e-12 {
		t.Error("MulAdd did not accumulate")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on inner mismatch")
		}
	}()
	Mul(New(2, 3), New(4, 2))
}

func TestMulDistributesOverBlocks(t *testing.T) {
	// C = A*B == sum over k of A_col_k * B_row_k (outer products):
	// the identity every algorithm in the paper rests on.
	a := Random(12, 12, 5)
	b := Random(12, 12, 6)
	q := 4
	sum := New(12, 12)
	for k := 0; k < q; k++ {
		sum.AddInto(Mul(a.ColGroup(q, k), b.RowGroup(q, k)))
	}
	if MaxAbsDiff(sum, Mul(a, b)) > 1e-12 {
		t.Error("outer-product decomposition mismatch")
	}
}

func TestTranspose(t *testing.T) {
	a := Random(4, 7, 9)
	at := a.Transpose()
	if at.Rows != 7 || at.Cols != 4 {
		t.Fatalf("transpose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatal("transpose element mismatch")
			}
		}
	}
	if !Equal(at.Transpose(), a) {
		t.Error("double transpose differs")
	}
}

func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := Random(6, 5, seed)
		b := Random(5, 7, seed+1)
		lhs := Mul(a, b).Transpose()
		rhs := Mul(b.Transpose(), a.Transpose())
		return MaxAbsDiff(lhs, rhs) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := Random(5, 5, 10)
	b := Random(5, 5, 11)
	if MaxAbsDiff(Sub(Add(a, b), b), a) > 1e-15 {
		t.Error("(a+b)-b != a")
	}
	c := a.Clone().Scale(2)
	if MaxAbsDiff(c, Add(a, a)) > 1e-15 {
		t.Error("2a != a+a")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Random(3, 3, 1)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) == 42 {
		t.Error("Clone shares storage")
	}
}

func TestMaxAbsDiffAndAlmostEqual(t *testing.T) {
	a := Random(4, 4, 1)
	b := a.Clone()
	b.Set(2, 2, b.At(2, 2)+1e-9)
	if !AlmostEqual(a, b, 1e-8) {
		t.Error("AlmostEqual too strict")
	}
	if AlmostEqual(a, b, 1e-10) {
		t.Error("AlmostEqual too lax")
	}
	if math.Abs(MaxAbsDiff(a, b)-1e-9) > 1e-15 {
		t.Error("MaxAbsDiff wrong")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(2, 3), New(3, 2)) {
		t.Error("Equal ignored shape")
	}
	if AlmostEqual(New(2, 3), New(3, 2), 1) {
		t.Error("AlmostEqual ignored shape")
	}
}

func TestMulFlops(t *testing.T) {
	if MulFlops(10, 20, 30) != 2*10*20*30 {
		t.Error("MulFlops wrong")
	}
}

func TestRandomDeterministic(t *testing.T) {
	if !Equal(Random(6, 6, 99), Random(6, 6, 99)) {
		t.Error("Random not deterministic for a fixed seed")
	}
	if Equal(Random(6, 6, 99), Random(6, 6, 100)) {
		t.Error("Random identical across seeds")
	}
}

func TestZeroInPlace(t *testing.T) {
	m := Random(4, 4, 3)
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}

func TestStringForms(t *testing.T) {
	small := Identity(2)
	if small.String() == "" {
		t.Error("empty String for small matrix")
	}
	big := New(100, 100)
	if big.String() != "Dense(100x100)" {
		t.Errorf("big String = %q", big.String())
	}
}

//go:build amd64

#include "textflag.h"

// AVX 4x4 GEMM microkernels.
//
// Both kernels use VMULPD followed by VADDPD — never fused multiply-add —
// so every lane performs the same two IEEE-754 operations the scalar Go
// microkernel performs, in the same k-ascending order per C element.
// The results are therefore bitwise identical to the pure-Go paths; the
// differential tests assert exact equality on AVX machines too.

// func cpuHasAVX() bool
//
// CPUID.1:ECX must report OSXSAVE (bit 27) and AVX (bit 28), and XCR0
// must have the SSE and AVX state bits (0x6) enabled by the OS.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	CPUID
	MOVL	CX, BX
	ANDL	$0x18000000, BX
	CMPL	BX, $0x18000000
	JNE	noavx
	MOVL	$0, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func micro4x4PackedAVX(c *float64, ldc int, ap, bp *float64, kd int)
//
// C tile (4x4 at c, row stride ldc) += packed A strip (kd x 4, k-major)
// times packed B strip (kd x 4, k-major). Per k step: one 4-wide B row
// load, four A broadcasts, four VMULPD, four VADDPD into the row
// accumulators Y0-Y3, which are loaded from C once and stored once.
TEXT ·micro4x4PackedAVX(SB), NOSPLIT, $0-40
	MOVQ	c+0(FP), DI
	MOVQ	ldc+8(FP), SI
	MOVQ	ap+16(FP), R8
	MOVQ	bp+24(FP), R9
	MOVQ	kd+32(FP), CX

	SHLQ	$3, SI               // row stride in bytes
	VMOVUPD	(DI), Y0             // C row 0
	LEAQ	(DI)(SI*1), DX
	VMOVUPD	(DX), Y1             // C row 1
	VMOVUPD	(DX)(SI*1), Y2       // C row 2
	LEAQ	(DX)(SI*2), BX
	VMOVUPD	(BX), Y3             // C row 3

	TESTQ	CX, CX
	JZ	pdone
ploop:
	VMOVUPD	(R9), Y4             // B step row b0..b3
	VBROADCASTSD	(R8), Y5
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VBROADCASTSD	8(R8), Y6
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VBROADCASTSD	16(R8), Y7
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VBROADCASTSD	24(R8), Y8
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
	ADDQ	$32, R8
	ADDQ	$32, R9
	DECQ	CX
	JNZ	ploop
pdone:
	VMOVUPD	Y0, (DI)
	VMOVUPD	Y1, (DX)
	VMOVUPD	Y2, (DX)(SI*1)
	VMOVUPD	Y3, (BX)
	VZEROUPPER
	RET

// func micro4x4DirectAVX(c *float64, ldc int, a *float64, lda int, b *float64, ldb int, kd int)
//
// Same tile update reading A and B in place (no packing): a points at
// A[i0, 0] with row stride lda, b points at B[0, j0] with row stride
// ldb; each B step row is 4 contiguous doubles.
TEXT ·micro4x4DirectAVX(SB), NOSPLIT, $0-56
	MOVQ	c+0(FP), DI
	MOVQ	ldc+8(FP), SI
	MOVQ	a+16(FP), R8
	MOVQ	lda+24(FP), R10
	MOVQ	b+32(FP), R9
	MOVQ	ldb+40(FP), R11
	MOVQ	kd+48(FP), CX

	SHLQ	$3, SI               // C row stride in bytes
	SHLQ	$3, R10              // A row stride in bytes
	SHLQ	$3, R11              // B row stride in bytes

	VMOVUPD	(DI), Y0             // C row 0
	LEAQ	(DI)(SI*1), DX
	VMOVUPD	(DX), Y1             // C row 1
	VMOVUPD	(DX)(SI*1), Y2       // C row 2
	LEAQ	(DX)(SI*2), BX
	VMOVUPD	(BX), Y3             // C row 3

	LEAQ	(R8)(R10*1), R12     // A row 1
	LEAQ	(R8)(R10*2), R13     // A row 2
	LEAQ	(R12)(R10*2), R14    // A row 3

	TESTQ	CX, CX
	JZ	ddone
dloop:
	VMOVUPD	(R9), Y4             // B step row b0..b3
	VBROADCASTSD	(R8), Y5
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VBROADCASTSD	(R12), Y6
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VBROADCASTSD	(R13), Y7
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VBROADCASTSD	(R14), Y8
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
	ADDQ	$8, R8
	ADDQ	$8, R12
	ADDQ	$8, R13
	ADDQ	$8, R14
	ADDQ	R11, R9
	DECQ	CX
	JNZ	dloop
ddone:
	VMOVUPD	Y0, (DI)
	VMOVUPD	Y1, (DX)
	VMOVUPD	Y2, (DX)(SI*1)
	VMOVUPD	Y3, (BX)
	VZEROUPPER
	RET

package matrix

import "testing"

func FuzzGridBlockRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(3), int64(7))
	f.Fuzz(func(t *testing.T, qrB, qcB uint8, seed int64) {
		qr := 1 + int(qrB)%4
		qc := 1 + int(qcB)%4
		m := Random(qr*3, qc*2, seed)
		re := New(m.Rows, m.Cols)
		for i := 0; i < qr; i++ {
			for j := 0; j < qc; j++ {
				re.SetGridBlock(qr, qc, i, j, m.GridBlock(qr, qc, i, j))
			}
		}
		if !Equal(re, m) {
			t.Fatal("grid round trip mismatch")
		}
	})
}

func FuzzOuterProductDecomposition(f *testing.F) {
	f.Add(uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, qB uint8, seed int64) {
		q := 1 + int(qB)%6
		n := q * 3
		a := Random(n, n, seed)
		b := Random(n, n, seed+1)
		sum := New(n, n)
		for k := 0; k < q; k++ {
			sum.AddInto(Mul(a.ColGroup(q, k), b.RowGroup(q, k)))
		}
		if MaxAbsDiff(sum, Mul(a, b)) > 1e-9 {
			t.Fatal("outer-product decomposition mismatch")
		}
	})
}

func FuzzThreeAllPieceIdentity(f *testing.F) {
	// The Figure 8/9 identity underpinning the 3-D All proof, fuzzed
	// over grid shapes and content.
	f.Add(uint8(2), int64(11))
	f.Fuzz(func(t *testing.T, qB uint8, seed int64) {
		q := 1 + int(qB)%3
		n := q * q * 2
		b := Random(n, n, seed)
		for k := 0; k < q; k++ {
			for j := 0; j < q; j++ {
				for i := 0; i < q; i++ {
					var pieces []*Dense
					for l := 0; l < q; l++ {
						pieces = append(pieces, b.GridBlock(q, q*q, k, F(q, i, l)).RowGroup(q, j))
					}
					got := ConcatCols(pieces...)
					want := b.GridBlock(q*q, q, F(q, k, j), i)
					if !Equal(got, want) {
						t.Fatalf("identity fails at k=%d j=%d i=%d q=%d", k, j, i, q)
					}
				}
			}
		}
	})
}

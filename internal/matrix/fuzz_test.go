package matrix

import (
	"runtime"
	"testing"
)

// FuzzMulAddDifferential pits the packed/tiled kernel against the
// reference triple loop over fuzzer-chosen (possibly empty, odd or
// rectangular) shapes and parallelism levels 1, 2 and GOMAXPROCS.
// Equality is exact: both kernels add each element's terms in the same
// order without fused multiply-add.
func FuzzMulAddDifferential(f *testing.F) {
	f.Add(uint16(4), uint16(4), uint16(4), int64(1))
	f.Add(uint16(0), uint16(3), uint16(5), int64(2))
	f.Add(uint16(65), uint16(300), uint16(67), int64(3))
	f.Fuzz(func(t *testing.T, nB, kB, mB uint16, seed int64) {
		n, k, m := int(nB)%150, int(kB)%310, int(mB)%150
		a := Random(n, k, seed)
		b := Random(k, m, seed+1)
		want := Random(n, m, seed+2)
		start := want.Clone()
		mulAddNaive(want, a, b)
		defer SetParallelism(0)
		for _, lvl := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			SetParallelism(lvl)
			got := start.Clone()
			MulAdd(got, a, b)
			if !Equal(got, want) {
				t.Fatalf("%dx%dx%d parallelism %d: kernel differs from naive by %g",
					n, k, m, lvl, MaxAbsDiff(got, want))
			}
		}
	})
}

func FuzzGridBlockRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(3), int64(7))
	f.Fuzz(func(t *testing.T, qrB, qcB uint8, seed int64) {
		qr := 1 + int(qrB)%4
		qc := 1 + int(qcB)%4
		m := Random(qr*3, qc*2, seed)
		re := New(m.Rows, m.Cols)
		for i := 0; i < qr; i++ {
			for j := 0; j < qc; j++ {
				re.SetGridBlock(qr, qc, i, j, m.GridBlock(qr, qc, i, j))
			}
		}
		if !Equal(re, m) {
			t.Fatal("grid round trip mismatch")
		}
	})
}

func FuzzOuterProductDecomposition(f *testing.F) {
	f.Add(uint8(2), int64(3))
	f.Fuzz(func(t *testing.T, qB uint8, seed int64) {
		q := 1 + int(qB)%6
		n := q * 3
		a := Random(n, n, seed)
		b := Random(n, n, seed+1)
		sum := New(n, n)
		for k := 0; k < q; k++ {
			sum.AddInto(Mul(a.ColGroup(q, k), b.RowGroup(q, k)))
		}
		if MaxAbsDiff(sum, Mul(a, b)) > 1e-9 {
			t.Fatal("outer-product decomposition mismatch")
		}
	})
}

func FuzzThreeAllPieceIdentity(f *testing.F) {
	// The Figure 8/9 identity underpinning the 3-D All proof, fuzzed
	// over grid shapes and content.
	f.Add(uint8(2), int64(11))
	f.Fuzz(func(t *testing.T, qB uint8, seed int64) {
		q := 1 + int(qB)%3
		n := q * q * 2
		b := Random(n, n, seed)
		for k := 0; k < q; k++ {
			for j := 0; j < q; j++ {
				for i := 0; i < q; i++ {
					var pieces []*Dense
					for l := 0; l < q; l++ {
						pieces = append(pieces, b.GridBlock(q, q*q, k, F(q, i, l)).RowGroup(q, j))
					}
					got := ConcatCols(pieces...)
					want := b.GridBlock(q*q, q, F(q, k, j), i)
					if !Equal(got, want) {
						t.Fatalf("identity fails at k=%d j=%d i=%d q=%d", k, j, i, q)
					}
				}
			}
		}
	})
}

//go:build !amd64

package matrix

// Non-amd64 builds always take the pure-Go microkernels.
const useSIMD = false

func micro4x4PackedAVX(c *float64, ldc int, ap, bp *float64, kd int) {
	panic("matrix: SIMD microkernel called on non-amd64 build")
}

func micro4x4DirectAVX(c *float64, ldc int, a *float64, lda int, b *float64, ldb int, kd int) {
	panic("matrix: SIMD microkernel called on non-amd64 build")
}

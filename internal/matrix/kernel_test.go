package matrix

import (
	"runtime"
	"testing"
)

// kernelShapes covers square, odd, rectangular, strip-shaped, tiny and
// empty operands — every edge-kernel combination (row edge, column
// edge, both, k shorter/longer than a panel) plus sizes on both sides
// of the packed-path threshold.
var kernelShapes = []struct{ n, k, m int }{
	{0, 0, 0}, {0, 5, 3}, {3, 0, 5}, {5, 3, 0},
	{1, 1, 1}, {2, 3, 4}, {3, 3, 3}, {4, 4, 4}, {5, 5, 5},
	{7, 11, 13}, {16, 16, 16}, {17, 19, 23},
	{1, 64, 1}, {64, 1, 64}, {4, 300, 4},
	{63, 65, 67}, {64, 64, 64}, {65, 64, 63},
	{96, 257, 70}, {128, 128, 128}, {100, 300, 50},
}

// TestMulAddDifferential pits the dispatching kernel against the
// reference triple loop over every shape and at parallelism levels 1, 2
// and GOMAXPROCS, requiring bitwise-identical results: both kernels
// accumulate each element over k in ascending order with no fused
// multiply-add, so exact equality is the contract, not a tolerance.
func TestMulAddDifferential(t *testing.T) {
	defer SetParallelism(0)
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, sh := range kernelShapes {
		a := Random(sh.n, sh.k, int64(sh.n*1000+sh.k*10+sh.m))
		b := Random(sh.k, sh.m, int64(sh.m*1000+sh.k*10+sh.n))
		want := Random(sh.n, sh.m, 7) // non-zero C: MulAdd accumulates
		got0 := want.Clone()
		mulAddNaive(want, a, b)
		for _, lvl := range levels {
			SetParallelism(lvl)
			got := got0.Clone()
			MulAdd(got, a, b)
			if !Equal(got, want) {
				t.Errorf("shape %dx%dx%d parallelism %d: kernel differs from naive by %g",
					sh.n, sh.k, sh.m, lvl, MaxAbsDiff(got, want))
			}
		}
	}
}

// TestMulAddParallelismBitIdentical runs a large multiply at several
// parallelism levels and requires every result byte-identical to the
// serial one — the invariant the emulator's determinism rests on.
func TestMulAddParallelismBitIdentical(t *testing.T) {
	defer SetParallelism(0)
	const n = 260 // forces the packed path with edge tiles
	a := Random(n, n, 1)
	b := Random(n, n, 2)
	SetParallelism(1)
	ref := New(n, n)
	MulAdd(ref, a, b)
	for _, lvl := range []int{2, 3, runtime.GOMAXPROCS(0) + 2} {
		SetParallelism(lvl)
		got := New(n, n)
		MulAdd(got, a, b)
		if !Equal(got, ref) {
			t.Errorf("parallelism %d: result differs from serial", lvl)
		}
	}
}

// TestMulAddConcurrentCallers exercises the shared worker pool the way
// the emulator does: many goroutines multiplying at once, each bounded
// by the global level. Checked under -race by make check.
func TestMulAddConcurrentCallers(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	const n = 130
	a := Random(n, n, 3)
	b := Random(n, n, 4)
	want := New(n, n)
	mulAddNaive(want, a, b)
	done := make(chan *Dense)
	for g := 0; g < 8; g++ {
		go func() {
			c := New(n, n)
			MulAdd(c, a, b)
			done <- c
		}()
	}
	for g := 0; g < 8; g++ {
		if c := <-done; !Equal(c, want) {
			t.Fatal("concurrent MulAdd diverged from reference")
		}
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(5)
	if got := Parallelism(); got != 5 {
		t.Errorf("Parallelism() = %d, want 5", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallelism() = %d, want GOMAXPROCS", got)
	}
}

// TestTransposeBlocked checks the tiled transpose over shapes that hit
// partial tiles on every edge.
func TestTransposeBlocked(t *testing.T) {
	for _, sh := range []struct{ r, c int }{
		{0, 0}, {1, 1}, {1, 7}, {7, 1}, {31, 33}, {32, 32}, {33, 31}, {100, 65},
	} {
		m := Random(sh.r, sh.c, int64(sh.r*100+sh.c))
		tr := m.Transpose()
		if tr.Rows != sh.c || tr.Cols != sh.r {
			t.Fatalf("Transpose %dx%d has shape %dx%d", sh.r, sh.c, tr.Rows, tr.Cols)
		}
		for i := 0; i < sh.r; i++ {
			for j := 0; j < sh.c; j++ {
				if tr.At(j, i) != m.At(i, j) {
					t.Fatalf("Transpose %dx%d wrong at (%d,%d)", sh.r, sh.c, i, j)
				}
			}
		}
	}
}

//go:build amd64

package matrix

// useSIMD gates the AVX microkernels in kernel_amd64.s. The AVX path
// uses separate VMULPD/VADDPD (never FMA), so each C element sees
// exactly the scalar kernel's operation sequence and results stay
// bitwise identical; the gate is purely a speed switch.
var useSIMD = cpuHasAVX()

// cpuHasAVX reports CPU and OS support for AVX (CPUID + XGETBV).
// Implemented in kernel_amd64.s.
func cpuHasAVX() bool

// micro4x4PackedAVX is micro4x4Packed over the same packed strips.
// Implemented in kernel_amd64.s.
//
//go:noescape
func micro4x4PackedAVX(c *float64, ldc int, ap, bp *float64, kd int)

// micro4x4DirectAVX is micro4x4Direct reading A and B in place.
// Implemented in kernel_amd64.s.
//
//go:noescape
func micro4x4DirectAVX(c *float64, ldc int, a *float64, lda int, b *float64, ldb int, kd int)

package matrix

import "fmt"

// This file implements the block partitioners the paper's algorithms are
// written in terms of:
//
//   - the q x q block grid of Figure 1 (Simple, Cannon, HJE, DNS, 3DD),
//   - row groups and column groups (Berntsen, 2-D Diagonal),
//   - the general qr x qc grid used by the 3-D All family, where A is
//     partitioned into cbrt(p) x p^(2/3) blocks (Figure 8) and B into
//     p^(2/3) x cbrt(p) blocks (Figure 9).
//
// All partitioners require exact divisibility and panic otherwise: the
// algorithms in this repository pad nothing, exactly as in the paper
// (which assumes p | n in the appropriate powers).

// Block returns a copy of the submatrix rows [r0,r1) x cols [c0,c1).
func (m *Dense) Block(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: Block [%d:%d,%d:%d) out of range %dx%d", r0, r1, c0, c1, m.Rows, m.Cols))
	}
	b := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(b.Data[(i-r0)*b.Cols:(i-r0+1)*b.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return b
}

// SetBlock writes blk into m with its top-left corner at (r0, c0).
func (m *Dense) SetBlock(r0, c0 int, blk *Dense) {
	if r0 < 0 || c0 < 0 || r0+blk.Rows > m.Rows || c0+blk.Cols > m.Cols {
		panic(fmt.Sprintf("matrix: SetBlock %dx%d at (%d,%d) out of range %dx%d", blk.Rows, blk.Cols, r0, c0, m.Rows, m.Cols))
	}
	for i := 0; i < blk.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+blk.Cols], blk.Data[i*blk.Cols:(i+1)*blk.Cols])
	}
}

// AddBlock accumulates blk into m at (r0, c0): m[r0:,c0:] += blk.
func (m *Dense) AddBlock(r0, c0 int, blk *Dense) {
	if r0 < 0 || c0 < 0 || r0+blk.Rows > m.Rows || c0+blk.Cols > m.Cols {
		panic(fmt.Sprintf("matrix: AddBlock %dx%d at (%d,%d) out of range %dx%d", blk.Rows, blk.Cols, r0, c0, m.Rows, m.Cols))
	}
	for i := 0; i < blk.Rows; i++ {
		dst := m.Data[(r0+i)*m.Cols+c0 : (r0+i)*m.Cols+c0+blk.Cols]
		src := blk.Data[i*blk.Cols : (i+1)*blk.Cols]
		for j, v := range src {
			dst[j] += v
		}
	}
}

func mustDivide(what string, n, q int) int {
	if q <= 0 || n%q != 0 {
		panic(fmt.Sprintf("matrix: %s: %d not divisible by %d", what, n, q))
	}
	return n / q
}

// GridBlock returns block (i,j) of m partitioned into a qr x qc grid of
// equal blocks (rows split qr ways, columns qc ways).
func (m *Dense) GridBlock(qr, qc, i, j int) *Dense {
	br := mustDivide("GridBlock rows", m.Rows, qr)
	bc := mustDivide("GridBlock cols", m.Cols, qc)
	if i < 0 || i >= qr || j < 0 || j >= qc {
		panic(fmt.Sprintf("matrix: GridBlock index (%d,%d) out of grid %dx%d", i, j, qr, qc))
	}
	return m.Block(i*br, (i+1)*br, j*bc, (j+1)*bc)
}

// SetGridBlock writes blk as block (i,j) of the qr x qc partition of m.
func (m *Dense) SetGridBlock(qr, qc, i, j int, blk *Dense) {
	br := mustDivide("SetGridBlock rows", m.Rows, qr)
	bc := mustDivide("SetGridBlock cols", m.Cols, qc)
	if blk.Rows != br || blk.Cols != bc {
		panic(fmt.Sprintf("matrix: SetGridBlock got %dx%d want %dx%d", blk.Rows, blk.Cols, br, bc))
	}
	m.SetBlock(i*br, j*bc, blk)
}

// AddGridBlock accumulates blk into block (i,j) of the qr x qc partition.
func (m *Dense) AddGridBlock(qr, qc, i, j int, blk *Dense) {
	br := mustDivide("AddGridBlock rows", m.Rows, qr)
	bc := mustDivide("AddGridBlock cols", m.Cols, qc)
	if blk.Rows != br || blk.Cols != bc {
		panic(fmt.Sprintf("matrix: AddGridBlock got %dx%d want %dx%d", blk.Rows, blk.Cols, br, bc))
	}
	m.AddBlock(i*br, j*bc, blk)
}

// RowGroup returns the i-th of q equal horizontal slabs of m.
func (m *Dense) RowGroup(q, i int) *Dense {
	br := mustDivide("RowGroup", m.Rows, q)
	if i < 0 || i >= q {
		panic(fmt.Sprintf("matrix: RowGroup index %d out of %d", i, q))
	}
	return m.Block(i*br, (i+1)*br, 0, m.Cols)
}

// ColGroup returns the j-th of q equal vertical slabs of m.
func (m *Dense) ColGroup(q, j int) *Dense {
	bc := mustDivide("ColGroup", m.Cols, q)
	if j < 0 || j >= q {
		panic(fmt.Sprintf("matrix: ColGroup index %d out of %d", j, q))
	}
	return m.Block(0, m.Rows, j*bc, (j+1)*bc)
}

// NewBatch returns q zeroed r x c matrices carved out of one backing
// allocation: three allocations total instead of 2q. The blocks are
// independent views of disjoint ranges, so they can be filled, sent and
// multiplied like individually allocated matrices; they merely share a
// backing array's lifetime. Hot per-node assembly paths (collective
// results, group splits) use it to keep the emulator's allocation rate
// flat in q.
func NewBatch(q, r, c int) []*Dense {
	if q < 0 {
		panic(fmt.Sprintf("matrix: NewBatch negative count %d", q))
	}
	data := make([]float64, q*r*c)
	ds := make([]Dense, q)
	out := make([]*Dense, q)
	w := r * c
	for i := range ds {
		ds[i] = Dense{Rows: r, Cols: c, Data: data[i*w : (i+1)*w : (i+1)*w]}
		out[i] = &ds[i]
	}
	return out
}

// RowGroups splits m into its q equal horizontal slabs, copied into one
// backing allocation (cheaper than q RowGroup calls).
func (m *Dense) RowGroups(q int) []*Dense {
	br := mustDivide("RowGroups", m.Rows, q)
	out := NewBatch(q, br, m.Cols)
	for i, b := range out {
		copy(b.Data, m.Data[i*br*m.Cols:(i+1)*br*m.Cols])
	}
	return out
}

// ColGroups splits m into its q equal vertical slabs, copied into one
// backing allocation (cheaper than q ColGroup calls).
func (m *Dense) ColGroups(q int) []*Dense {
	bc := mustDivide("ColGroups", m.Cols, q)
	out := NewBatch(q, m.Rows, bc)
	for j, b := range out {
		for i := 0; i < m.Rows; i++ {
			copy(b.Data[i*bc:(i+1)*bc], m.Data[i*m.Cols+j*bc:i*m.Cols+(j+1)*bc])
		}
	}
	return out
}

// GridBlocks partitions m into its full qr x qc grid of equal blocks,
// all carved from one batch allocation (cheaper than qr*qc GridBlock
// calls); out[i][j] is block (i,j).
func (m *Dense) GridBlocks(qr, qc int) [][]*Dense {
	br := mustDivide("GridBlocks rows", m.Rows, qr)
	bc := mustDivide("GridBlocks cols", m.Cols, qc)
	flat := NewBatch(qr*qc, br, bc)
	out := make([][]*Dense, qr)
	for i := range out {
		out[i] = flat[i*qc : (i+1)*qc]
		for j, b := range out[i] {
			for r := 0; r < br; r++ {
				copy(b.Data[r*bc:(r+1)*bc], m.Data[(i*br+r)*m.Cols+j*bc:(i*br+r)*m.Cols+(j+1)*bc])
			}
		}
	}
	return out
}

// ConcatCols lays blocks side by side (same row counts) into one matrix.
func ConcatCols(blocks ...*Dense) *Dense {
	if len(blocks) == 0 {
		return New(0, 0)
	}
	rows, cols := blocks[0].Rows, 0
	for _, b := range blocks {
		if b.Rows != rows {
			panic(fmt.Sprintf("matrix: ConcatCols row mismatch %d vs %d", b.Rows, rows))
		}
		cols += b.Cols
	}
	out := New(rows, cols)
	at := 0
	for _, b := range blocks {
		out.SetBlock(0, at, b)
		at += b.Cols
	}
	return out
}

// ConcatRows stacks blocks vertically (same column counts) into one matrix.
func ConcatRows(blocks ...*Dense) *Dense {
	if len(blocks) == 0 {
		return New(0, 0)
	}
	cols, rows := blocks[0].Cols, 0
	for _, b := range blocks {
		if b.Cols != cols {
			panic(fmt.Sprintf("matrix: ConcatRows col mismatch %d vs %d", b.Cols, cols))
		}
		rows += b.Rows
	}
	out := New(rows, cols)
	at := 0
	for _, b := range blocks {
		out.SetBlock(at, 0, b)
		at += b.Rows
	}
	return out
}

// AssembleGrid reconstructs a matrix from a grid of equal-shaped blocks,
// blocks[i][j] being the block in block-row i, block-column j.
func AssembleGrid(blocks [][]*Dense) *Dense {
	if len(blocks) == 0 || len(blocks[0]) == 0 {
		return New(0, 0)
	}
	br, bc := blocks[0][0].Rows, blocks[0][0].Cols
	qr, qc := len(blocks), len(blocks[0])
	out := New(qr*br, qc*bc)
	for i, row := range blocks {
		if len(row) != qc {
			panic("matrix: AssembleGrid ragged grid")
		}
		for j, b := range row {
			if b.Rows != br || b.Cols != bc {
				panic(fmt.Sprintf("matrix: AssembleGrid block (%d,%d) is %dx%d want %dx%d", i, j, b.Rows, b.Cols, br, bc))
			}
			out.SetBlock(i*br, j*bc, b)
		}
	}
	return out
}

// F is the linear index f(i,j) = i*q + j of the 3-D All partition: block
// column f(i,j) of A (Figure 8) lives on processor column (i,j) of the
// virtual 3-D grid with q processors per axis.
func F(q, i, j int) int { return i*q + j }

// FInv inverts F: given the linear index l, it returns (i, j) with
// l = i*q + j.
func FInv(q, l int) (i, j int) { return l / q, l % q }

package matrix

import (
	"fmt"
	"testing"
)

// BenchmarkMulAdd measures the dispatching kernel (packed above the
// threshold, direct-tiled below); BenchmarkMulAddNaive is the reference
// triple loop for the speedup ratio.
func BenchmarkMulAdd(b *testing.B) {
	for _, n := range []int{16, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := Random(n, n, 1)
			y := Random(n, n, 2)
			c := New(n, n)
			b.SetBytes(int64(3 * 8 * n * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulAdd(c, x, y)
			}
		})
	}
}

func BenchmarkMulAddNaive(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := Random(n, n, 1)
			y := Random(n, n, 2)
			c := New(n, n)
			b.SetBytes(int64(3 * 8 * n * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mulAddNaive(c, x, y)
			}
		})
	}
}

// BenchmarkTranspose: HJE and the transpose-based algorithms call
// Transpose on every block, so its cache behavior matters at 256+.
func BenchmarkTranspose(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := Random(n, n, 1)
			b.SetBytes(int64(2 * 8 * n * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Transpose()
			}
		})
	}
}

// Package matrix provides dense float64 matrices and the block
// partitioners used by the distributed matrix-multiplication algorithms:
// 2-D block grids (Figure 1 of the paper), row/column groups, and the
// f(i,j) partition of the 3-D All algorithm (Figures 8 and 9).
//
// A Dense matrix is stored in row-major order in a single contiguous
// slice. All operations are written for clarity first and use blocked
// loops where it matters for speed (Mul, MulAdd).
package matrix

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a dense row-major matrix of float64.
// The zero value is an empty 0x0 matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed r x c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (row-major, length r*c) in a Dense without copying.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Random returns an r x c matrix with entries drawn uniformly from
// [-1, 1) using the given seed. Deterministic for a fixed seed.
func Random(r, c int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Words returns the number of float64 words m occupies.
func (m *Dense) Words() int { return len(m.Data) }

// Zero sets every element of m to zero in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Add returns a+b. Panics if shapes differ.
func Add(a, b *Dense) *Dense {
	sameShape("Add", a, b)
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v + b.Data[i]
	}
	return c
}

// AddInto accumulates src into dst element-wise (dst += src).
func (dst *Dense) AddInto(src *Dense) {
	sameShape("AddInto", dst, src)
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// Sub returns a-b. Panics if shapes differ.
func Sub(a, b *Dense) *Dense {
	sameShape("Sub", a, b)
	c := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		c.Data[i] = v - b.Data[i]
	}
	return c
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

func sameShape(op string, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Mul returns the product a*b using the packed register-tiled kernel.
func Mul(a, b *Dense) *Dense {
	c := New(a.Rows, b.Cols)
	MulAdd(c, a, b)
	return c
}

// MulAdd computes c += a*b with a packed, register-tiled kernel
// (kernel.go); large multiplies may draw extra workers from the shared
// pool bounded by SetParallelism. The result is bitwise identical to
// the reference triple loop at every parallelism level. Panics on
// inner-dimension or output-shape mismatch.
func MulAdd(c, a, b *Dense) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: MulAdd inner dim %d != %d", a.Cols, b.Rows))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("matrix: MulAdd output %dx%d != %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	mulAddKernel(c, a, b)
}

// MulFlops returns the floating-point operation count (multiply-adds
// counted as 2 flops) of multiplying an rxk by a kxc matrix.
func MulFlops(r, k, c int) int64 {
	return 2 * int64(r) * int64(k) * int64(c)
}

// transposeBlock is the square tile edge for Transpose: 32x32 float64
// tiles (8 KiB source + 8 KiB destination) stay cache-resident, so the
// strided destination writes hit the same lines repeatedly instead of
// thrashing — the naive row sweep misses on every write once a row of
// the destination exceeds the cache (n >= 256 or so).
const transposeBlock = 32

// Transpose returns m transposed, tile by tile.
func (m *Dense) Transpose() *Dense {
	t := New(m.Cols, m.Rows)
	rows, cols := m.Rows, m.Cols
	for i0 := 0; i0 < rows; i0 += transposeBlock {
		iMax := min(i0+transposeBlock, rows)
		for j0 := 0; j0 < cols; j0 += transposeBlock {
			jMax := min(j0+transposeBlock, cols)
			for i := i0; i < iMax; i++ {
				src := m.Data[i*cols+j0 : i*cols+jMax]
				for j, v := range src {
					t.Data[(j0+j)*rows+i] = v
				}
			}
		}
	}
	return t
}

// Equal reports whether a and b have the same shape and identical elements.
func Equal(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between a and b. Panics if shapes differ.
func MaxAbsDiff(a, b *Dense) float64 {
	sameShape("MaxAbsDiff", a, b)
	var d float64
	for i, v := range a.Data {
		if x := math.Abs(v - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}

// AlmostEqual reports whether a and b agree element-wise within tol.
func AlmostEqual(a, b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	return MaxAbsDiff(a, b) <= tol
}

// String renders small matrices for debugging; large matrices are
// summarized by shape only.
func (m *Dense) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

package matrix

// Packed, register-tiled GEMM kernel.
//
// MulAdd dispatches between two paths that produce bit-identical
// results:
//
//   - a direct register-tiled path for small blocks (the emulator's
//     per-node multiplies), which allocates nothing, and
//   - a packed path for large matrices: B is packed once into
//     tile-major panels, A is packed per (row-block, k-panel), and a
//     4x4 register-blocked microkernel runs over contiguous tiles with
//     no per-element branches.
//
// Both paths accumulate every C element over k in ascending order with
// C as the running accumulator (loaded into registers per k-panel,
// stored after), so they are bitwise identical to the reference triple
// loop mulAddNaive — Go does not fuse multiply-add, and the addition
// order is exactly the naive kernel's. The differential tests in
// kernel_test.go assert exact equality, not tolerance.
//
// The optional parallel path splits the M dimension (rows of C) into
// contiguous chunks. Each element is still computed by exactly one
// worker in the same k order, so results are bitwise identical at every
// parallelism level. Workers beyond the caller's goroutine are borrowed
// non-blockingly from a shared token pool bounded by SetParallelism, so
// many emulator nodes multiplying concurrently cannot oversubscribe the
// machine: a node that finds the pool empty simply runs its kernel
// inline. See DESIGN.md §8 for how the tile parameters were chosen.

import (
	"runtime"
	"sync"
)

const (
	mr = 4 // microkernel rows (A-strip height)
	nr = 4 // microkernel cols (B-strip width)

	// kcBlk is the k-panel depth: a packed 4-wide A strip of kcBlk
	// depth is 8 KiB, so strip + B tile + C tile live in L1.
	kcBlk = 256
	// mcBlk rows of packed A per panel: mcBlk*kcBlk words = 512 KiB/4
	// keeps the A pack L2-resident alongside the streamed B panel.
	mcBlk = 128

	// packMinWork is the flop threshold (n*k*m) below which the direct
	// (non-packing, non-allocating) tiled path wins; 64^3 marks where
	// packing starts to pay for itself.
	packMinWork = 1 << 18
)

// mulAddNaive is the reference triple loop (the seed kernel, minus its
// value-dependent zero-skip branch): plain ikj order, k ascending, C as
// the running accumulator. The packed kernel is differentially tested
// for exact equality against it.
func mulAddNaive(c, a, b *Dense) {
	n, k, m := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*m : (i+1)*m]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			brow := b.Data[kk*m : (kk+1)*m]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// --- shared worker pool ---------------------------------------------

var kernelPar struct {
	mu    sync.Mutex
	level int
	sem   chan struct{} // level-1 borrowable worker tokens
}

func init() { SetParallelism(0) }

// SetParallelism bounds the total number of goroutines the kernel may
// use across all concurrent MulAdd calls and returns the previous
// bound. n <= 0 restores the default, GOMAXPROCS. Level 1 disables the
// parallel path. Results are bitwise identical at every level; only
// wall-clock time changes.
func SetParallelism(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	kernelPar.mu.Lock()
	defer kernelPar.mu.Unlock()
	prev := kernelPar.level
	kernelPar.level = n
	kernelPar.sem = nil
	if n > 1 {
		kernelPar.sem = make(chan struct{}, n-1)
		for i := 0; i < n-1; i++ {
			kernelPar.sem <- struct{}{}
		}
	}
	return prev
}

// Parallelism returns the current kernel worker bound.
func Parallelism() int {
	kernelPar.mu.Lock()
	defer kernelPar.mu.Unlock()
	return kernelPar.level
}

// acquireWorkers borrows up to max tokens without blocking; the caller
// must return every token to the same channel when done.
func acquireWorkers(max int) (int, chan struct{}) {
	if max <= 0 {
		return 0, nil
	}
	kernelPar.mu.Lock()
	sem := kernelPar.sem
	kernelPar.mu.Unlock()
	if sem == nil {
		return 0, nil
	}
	got := 0
	for got < max {
		select {
		case <-sem:
			got++
		default:
			return got, sem
		}
	}
	return got, sem
}

// --- pack buffer pool ------------------------------------------------

var packPool = sync.Pool{New: func() any { return new([]float64) }}

func getPackBuf(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPackBuf(p *[]float64) { packPool.Put(p) }

// --- dispatch ---------------------------------------------------------

// mulAddKernel is the MulAdd implementation behind the shape checks.
func mulAddKernel(c, a, b *Dense) {
	n, k, m := a.Rows, a.Cols, b.Cols
	if n == 0 || k == 0 || m == 0 {
		return
	}
	if n*k < packMinWork/m { // n*k*m < packMinWork without overflow risk
		mulAddTiled(c, a, b)
		return
	}

	bpBuf := getPackBuf(k * m)
	defer putPackBuf(bpBuf)
	bp := *bpBuf
	packB(b, bp)

	// Borrow extra workers only when every worker gets at least one
	// full A panel of rows.
	extra, sem := acquireWorkers(min(Parallelism()-1, n/mcBlk))
	if extra == 0 {
		mulAddRange(c, a, b, 0, n, bp)
		return
	}
	workers := extra + 1
	chunk := (n + workers - 1) / workers
	chunk = (chunk + mr - 1) / mr * mr
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		r0 := w * chunk
		if r0 >= n {
			break
		}
		r1 := min(r0+chunk, n)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			defer func() { sem <- struct{}{} }()
			mulAddRange(c, a, b, r0, r1, bp)
		}(r0, r1)
	}
	mulAddRange(c, a, b, 0, min(chunk, n), bp)
	wg.Wait()
	// Return tokens for workers that got an empty range.
	for w := 1; w < workers; w++ {
		if w*chunk >= n {
			sem <- struct{}{}
		}
	}
}

// --- packed path ------------------------------------------------------

// packB lays b out panel-major: the panel at k0 holds kd*m words
// starting at bp[k0*m]; within a panel the nr-wide column strip at j0
// (width w at the right edge) holds its kd x w tile k-major at panel
// offset kd*j0.
func packB(b *Dense, bp []float64) {
	k, m := b.Rows, b.Cols
	for k0 := 0; k0 < k; k0 += kcBlk {
		kd := min(kcBlk, k-k0)
		panel := bp[k0*m:]
		for j0 := 0; j0 < m; j0 += nr {
			w := min(nr, m-j0)
			dst := panel[kd*j0 : kd*j0+kd*w]
			idx := 0
			for kk := k0; kk < k0+kd; kk++ {
				src := b.Data[kk*m+j0 : kk*m+j0+w]
				for _, v := range src {
					dst[idx] = v
					idx++
				}
			}
		}
	}
}

// packA packs rows [i0,i1) of a for the k-panel [k0,k0+kd) into ap:
// mr-high row strips, each strip k-major (strip at relative row ri
// starts at ap[kd*ri]; step kk holds its h row values contiguously).
func packA(a *Dense, i0, i1, k0, kd int, ap []float64) {
	K := a.Cols
	for ri := 0; ri < i1-i0; ri += mr {
		h := min(mr, i1-i0-ri)
		dst := ap[kd*ri : kd*ri+kd*h]
		for r := 0; r < h; r++ {
			arow := a.Data[(i0+ri+r)*K+k0 : (i0+ri+r)*K+k0+kd]
			for kk, v := range arow {
				dst[kk*h+r] = v
			}
		}
	}
}

// mulAddRange runs the packed kernel over C rows [r0,r1) against the
// pre-packed bp. Safe to call concurrently for disjoint row ranges.
func mulAddRange(c, a, b *Dense, r0, r1 int, bp []float64) {
	K, m := a.Cols, b.Cols
	apBuf := getPackBuf(kcBlk * mcBlk)
	defer putPackBuf(apBuf)
	ap := *apBuf
	for k0 := 0; k0 < K; k0 += kcBlk {
		kd := min(kcBlk, K-k0)
		panel := bp[k0*m:]
		for i0 := r0; i0 < r1; i0 += mcBlk {
			ih := min(mcBlk, r1-i0)
			packA(a, i0, i0+ih, k0, kd, ap)
			for ri := 0; ri < ih; ri += mr {
				h := min(mr, ih-ri)
				aStrip := ap[kd*ri:]
				for j0 := 0; j0 < m; j0 += nr {
					w := min(nr, m-j0)
					bStrip := panel[kd*j0:]
					if h == mr && w == nr {
						if useSIMD {
							micro4x4PackedAVX(&c.Data[(i0+ri)*m+j0], m, &aStrip[0], &bStrip[0], kd)
						} else {
							micro4x4Packed(c.Data, i0+ri, j0, m, aStrip, bStrip, kd)
						}
					} else {
						microEdgePacked(c.Data, i0+ri, j0, h, w, m, aStrip, bStrip, kd)
					}
				}
			}
		}
	}
}

// micro4x4Packed updates the 4x4 C tile at (i0,j0) from a packed A
// strip (kd x 4, k-major) and packed B strip (kd x 4, k-major). The 16
// accumulators live in registers; the inner loop is branch-free.
func micro4x4Packed(cd []float64, i0, j0, m int, ap, bp []float64, kd int) {
	c0 := cd[i0*m+j0 : i0*m+j0+4]
	c1 := cd[(i0+1)*m+j0 : (i0+1)*m+j0+4]
	c2 := cd[(i0+2)*m+j0 : (i0+2)*m+j0+4]
	c3 := cd[(i0+3)*m+j0 : (i0+3)*m+j0+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	for kk := 0; kk < kd; kk++ {
		av := ap[kk*4 : kk*4+4]
		bv := bp[kk*4 : kk*4+4]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		a0 := av[0]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		a1 := av[1]
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a2 := av[2]
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		a3 := av[3]
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// microEdgePacked handles partial tiles (h < mr and/or w < nr) at the
// matrix edges, same packed layouts, same k-ascending order.
func microEdgePacked(cd []float64, i0, j0, h, w, m int, ap, bp []float64, kd int) {
	var acc [mr * nr]float64
	for r := 0; r < h; r++ {
		for cc := 0; cc < w; cc++ {
			acc[r*nr+cc] = cd[(i0+r)*m+j0+cc]
		}
	}
	for kk := 0; kk < kd; kk++ {
		as := ap[kk*h : kk*h+h]
		bs := bp[kk*w : kk*w+w]
		for r := 0; r < h; r++ {
			av := as[r]
			for cc, bvv := range bs {
				acc[r*nr+cc] += av * bvv
			}
		}
	}
	for r := 0; r < h; r++ {
		for cc := 0; cc < w; cc++ {
			cd[(i0+r)*m+j0+cc] = acc[r*nr+cc]
		}
	}
}

// --- direct (small-block) path ---------------------------------------

// mulAddTiled is the no-allocation path for small blocks: the same 4x4
// register tiling reading A and B in place (strided B loads are fine
// while everything fits in cache).
func mulAddTiled(c, a, b *Dense) {
	n, k, m := a.Rows, a.Cols, b.Cols
	if k == 0 {
		return
	}
	i := 0
	for ; i+mr <= n; i += mr {
		j := 0
		for ; j+nr <= m; j += nr {
			if useSIMD {
				micro4x4DirectAVX(&c.Data[i*m+j], m, &a.Data[i*k], k, &b.Data[j], m, k)
			} else {
				micro4x4Direct(c.Data, i, j, m, a.Data, k, b.Data)
			}
		}
		if j < m {
			microEdgeDirect(c.Data, i, j, mr, m-j, m, a.Data, k, b.Data)
		}
	}
	for ; i < n; i++ {
		for j := 0; j < m; j += nr {
			w := min(nr, m-j)
			microEdgeDirect(c.Data, i, j, 1, w, m, a.Data, k, b.Data)
		}
	}
}

// micro4x4Direct is micro4x4Packed reading A rows and B rows in place.
func micro4x4Direct(cd []float64, i0, j0, m int, ad []float64, k int, bd []float64) {
	a0 := ad[i0*k : (i0+1)*k]
	a1 := ad[(i0+1)*k : (i0+2)*k]
	a2 := ad[(i0+2)*k : (i0+3)*k]
	a3 := ad[(i0+3)*k : (i0+4)*k]
	c0 := cd[i0*m+j0 : i0*m+j0+4]
	c1 := cd[(i0+1)*m+j0 : (i0+1)*m+j0+4]
	c2 := cd[(i0+2)*m+j0 : (i0+2)*m+j0+4]
	c3 := cd[(i0+3)*m+j0 : (i0+3)*m+j0+4]
	c00, c01, c02, c03 := c0[0], c0[1], c0[2], c0[3]
	c10, c11, c12, c13 := c1[0], c1[1], c1[2], c1[3]
	c20, c21, c22, c23 := c2[0], c2[1], c2[2], c2[3]
	c30, c31, c32, c33 := c3[0], c3[1], c3[2], c3[3]
	for kk := 0; kk < k; kk++ {
		bv := bd[kk*m+j0 : kk*m+j0+4]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		av := a0[kk]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[kk]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[kk]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[kk]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	c0[0], c0[1], c0[2], c0[3] = c00, c01, c02, c03
	c1[0], c1[1], c1[2], c1[3] = c10, c11, c12, c13
	c2[0], c2[1], c2[2], c2[3] = c20, c21, c22, c23
	c3[0], c3[1], c3[2], c3[3] = c30, c31, c32, c33
}

// microEdgeDirect handles partial tiles in place.
func microEdgeDirect(cd []float64, i0, j0, h, w, m int, ad []float64, k int, bd []float64) {
	var acc [mr * nr]float64
	for r := 0; r < h; r++ {
		for cc := 0; cc < w; cc++ {
			acc[r*nr+cc] = cd[(i0+r)*m+j0+cc]
		}
	}
	for kk := 0; kk < k; kk++ {
		bs := bd[kk*m+j0 : kk*m+j0+w]
		for r := 0; r < h; r++ {
			av := ad[(i0+r)*k+kk]
			for cc, bvv := range bs {
				acc[r*nr+cc] += av * bvv
			}
		}
	}
	for r := 0; r < h; r++ {
		for cc := 0; cc < w; cc++ {
			cd[(i0+r)*m+j0+cc] = acc[r*nr+cc]
		}
	}
}

package matrix

import (
	"testing"
	"testing/quick"
)

func TestBlockExtractSet(t *testing.T) {
	m := Random(8, 8, 1)
	b := m.Block(2, 5, 1, 4)
	if b.Rows != 3 || b.Cols != 3 {
		t.Fatalf("block shape %dx%d", b.Rows, b.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b.At(i, j) != m.At(2+i, 1+j) {
				t.Fatal("block content mismatch")
			}
		}
	}
	n := New(8, 8)
	n.SetBlock(2, 1, b)
	if MaxAbsDiff(n.Block(2, 5, 1, 4), b) != 0 {
		t.Fatal("SetBlock round trip failed")
	}
}

func TestBlockIsACopy(t *testing.T) {
	m := Random(4, 4, 2)
	b := m.Block(0, 2, 0, 2)
	b.Set(0, 0, 1234)
	if m.At(0, 0) == 1234 {
		t.Error("Block shares storage with parent")
	}
}

func TestGridBlockRoundTrip(t *testing.T) {
	m := Random(12, 12, 3)
	q := 4
	re := New(12, 12)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			re.SetGridBlock(q, q, i, j, m.GridBlock(q, q, i, j))
		}
	}
	if !Equal(re, m) {
		t.Error("grid decompose/reassemble mismatch")
	}
}

func TestGridBlockRectangular(t *testing.T) {
	m := Random(6, 12, 4)
	b := m.GridBlock(2, 4, 1, 2)
	if b.Rows != 3 || b.Cols != 3 {
		t.Fatalf("rect grid block %dx%d", b.Rows, b.Cols)
	}
	if b.At(0, 0) != m.At(3, 6) {
		t.Error("rect grid block content wrong")
	}
}

func TestAddBlockAndAddGridBlock(t *testing.T) {
	m := New(6, 6)
	one := Identity(3)
	m.AddBlock(0, 0, one)
	m.AddBlock(0, 0, one)
	if m.At(0, 0) != 2 {
		t.Error("AddBlock did not accumulate")
	}
	m.AddGridBlock(2, 2, 1, 1, one)
	if m.At(3, 3) != 1 {
		t.Error("AddGridBlock wrong placement")
	}
}

func TestRowColGroups(t *testing.T) {
	m := Random(8, 8, 5)
	if !Equal(ConcatRows(m.RowGroup(4, 0), m.RowGroup(4, 1), m.RowGroup(4, 2), m.RowGroup(4, 3)), m) {
		t.Error("row groups do not reassemble")
	}
	if !Equal(ConcatCols(m.ColGroup(2, 0), m.ColGroup(2, 1)), m) {
		t.Error("col groups do not reassemble")
	}
}

func TestAssembleGrid(t *testing.T) {
	m := Random(9, 6, 6)
	q := 3
	blocks := make([][]*Dense, q)
	for i := range blocks {
		blocks[i] = make([]*Dense, 2)
		for j := range blocks[i] {
			blocks[i][j] = m.GridBlock(q, 2, i, j)
		}
	}
	if !Equal(AssembleGrid(blocks), m) {
		t.Error("AssembleGrid mismatch")
	}
}

func TestPartitionPanics(t *testing.T) {
	m := New(7, 7)
	for _, f := range []func(){
		func() { m.GridBlock(2, 2, 0, 0) },
		func() { m.RowGroup(3, 0) },
		func() { m.ColGroup(2, 0) },
		func() { m.Block(0, 9, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on bad partition")
				}
			}()
			f()
		}()
	}
}

func TestFAndFInv(t *testing.T) {
	f := func(iq, jq uint8) bool {
		q := int(iq%15) + 1
		i, j := int(jq)%q, int(iq)%q
		gi, gj := FInv(q, F(q, i, j))
		return gi == i && gj == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFCoversAllIndices(t *testing.T) {
	q := 4
	seen := make([]bool, q*q)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			l := F(q, i, j)
			if l < 0 || l >= q*q || seen[l] {
				t.Fatalf("F not a bijection at (%d,%d)", i, j)
			}
			seen[l] = true
		}
	}
}

func TestBlockProductIdentity(t *testing.T) {
	// The paper's Figure 8/9 identity: the l-th row-group piece of
	// B_{k,f(i,l)} over all l assembles to the Figure-9 block
	// B_{f(k,j),i} — exercised here in matrix terms (3-D All proof of
	// correctness, Section 4.2.2).
	q := 2 // cbrt(p) with p = 8
	n := 8
	b := Random(n, n, 7)
	for k := 0; k < q; k++ {
		for jj := 0; jj < q; jj++ {
			for i := 0; i < q; i++ {
				var pieces []*Dense
				for l := 0; l < q; l++ {
					blk := b.GridBlock(q, q*q, k, F(q, i, l)) // B_{k,f(i,l)}
					pieces = append(pieces, blk.RowGroup(q, jj))
				}
				got := ConcatCols(pieces...)
				want := b.GridBlock(q*q, q, F(q, k, jj), i)
				if !Equal(got, want) {
					t.Fatalf("piece identity fails at k=%d j=%d i=%d", k, jj, i)
				}
			}
		}
	}
}

func TestMorePanicPaths(t *testing.T) {
	m := Random(4, 4, 1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetBlock out of range", func() { m.SetBlock(3, 3, Identity(2)) })
	mustPanic("AddBlock out of range", func() { m.AddBlock(3, 3, Identity(2)) })
	mustPanic("GridBlock bad index", func() { m.GridBlock(2, 2, 2, 0) })
	mustPanic("SetGridBlock bad shape", func() { m.SetGridBlock(2, 2, 0, 0, Identity(3)) })
	mustPanic("AddGridBlock bad shape", func() { m.AddGridBlock(2, 2, 0, 0, Identity(3)) })
	mustPanic("RowGroup bad index", func() { m.RowGroup(2, 2) })
	mustPanic("ColGroup bad index", func() { m.ColGroup(2, -1) })
	mustPanic("ConcatCols row mismatch", func() { ConcatCols(Identity(2), Identity(3)) })
	mustPanic("ConcatRows col mismatch", func() { ConcatRows(Identity(2), Identity(3)) })
	mustPanic("AssembleGrid ragged", func() { AssembleGrid([][]*Dense{{Identity(2), Identity(2)}, {Identity(2)}}) })
	mustPanic("AssembleGrid shape", func() { AssembleGrid([][]*Dense{{Identity(2)}, {Identity(3)}}) })
	mustPanic("FromSlice bad len", func() { FromSlice(2, 2, make([]float64, 3)) })
	mustPanic("At out of range", func() { m.At(4, 0) })
	mustPanic("Set out of range", func() { m.Set(0, 4, 1) })
	mustPanic("negative dims", func() { New(-1, 2) })
	mustPanic("MulAdd output shape", func() { MulAdd(New(2, 2), New(2, 3), New(3, 4)) })
}

func TestEmptyConcatAndWords(t *testing.T) {
	if ConcatCols().Rows != 0 || ConcatRows().Cols != 0 {
		t.Error("empty concat not 0x0")
	}
	if AssembleGrid(nil).Rows != 0 {
		t.Error("empty grid not 0x0")
	}
	if Random(3, 5, 1).Words() != 15 {
		t.Error("Words wrong")
	}
	if got := FromSlice(2, 2, []float64{1, 2, 3, 4}); got.At(1, 1) != 4 {
		t.Error("FromSlice wrong")
	}
}

package conformance

import (
	"fmt"
	"io"
	"math/rand"

	"hypermm"
	"hypermm/internal/verify"
)

// Options configures one engine run. The zero value plus a Seed is a
// usable smoke configuration.
type Options struct {
	Seed  int64
	Iters int // generated cases; minimum 1

	// StartIter offsets iteration numbering (and therefore per-iteration
	// seeds), letting cmd/soak chain time-bounded chunks while keeping
	// every iteration's case a pure function of (Seed, iteration index).
	StartIter int

	// Oracles to run; nil means the full catalogue.
	Oracles []Oracle

	// ReproDir, when non-empty, receives a minimized JSON repro per
	// failure.
	ReproDir string

	// MaxFailures stops the run early once this many iterations have
	// failed (0 means 4): soak time is better spent shrinking the first
	// few counterexamples than rediscovering the same bug all night.
	MaxFailures int

	// ShrinkChecks bounds oracle evaluations spent minimizing one
	// failure (0 means 300).
	ShrinkChecks int

	// Logf, when non-nil, receives the deterministic progress
	// transcript (one line per call, no trailing newline needed).
	Logf func(format string, args ...any)

	// OnFailure, when non-nil, is called with each minimized failure
	// after its repro (if any) has been persisted — cmd/soak hangs the
	// Chrome-trace export here.
	OnFailure func(*Failure)
}

// Failure is one failing iteration, minimized.
type Failure struct {
	Iter      int
	Oracle    string
	Orig      Case   // as generated
	Case      Case   // after shrinking
	Err       string // the oracle's message on the minimized case
	Steps     int    // accepted shrink steps
	Checks    int    // oracle evaluations spent shrinking
	ReproPath string // "" when no ReproDir was configured
}

// Summary is the engine verdict.
type Summary struct {
	Iters    int // iterations completed
	Checks   int // oracle evaluations in the main loop (excludes shrinking)
	Skipped  int // oracle/case pairs skipped as not applicable
	Retries  int64
	Failures []*Failure
}

// OK reports whether every iteration passed every applicable oracle.
func (s Summary) OK() bool { return len(s.Failures) == 0 }

// Run executes the engine: Iters generated cases, each checked against
// every applicable oracle; failures are shrunk, persisted and reported.
// The whole run — cases, verdicts, transcript — is a pure function of
// Options (given the emulator's determinism).
func Run(opt Options) (Summary, error) {
	if opt.Iters < 1 {
		opt.Iters = 1
	}
	if opt.MaxFailures == 0 {
		opt.MaxFailures = 4
	}
	if opt.ShrinkChecks == 0 {
		opt.ShrinkChecks = 300
	}
	oracles := opt.Oracles
	if oracles == nil {
		oracles = Oracles()
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	retryCounter = 0
	var sum Summary
	for i := opt.StartIter; i < opt.StartIter+opt.Iters; i++ {
		rng := rand.New(rand.NewSource(mix(opt.Seed, i)))
		c := genCase(rng)
		logf("iter %d: case %v", i, c)
		for _, o := range oracles {
			if o.Applies != nil && !o.Applies(c) {
				sum.Skipped++
				continue
			}
			sum.Checks++
			err := o.Check(c)
			if err == nil {
				continue
			}
			logf("iter %d: FAIL %s: %v", i, o.Name, err)
			f := &Failure{Iter: i, Oracle: o.Name, Orig: c}
			f.Case, f.Steps, f.Checks = Shrink(o, c, opt.ShrinkChecks)
			if minErr := o.Check(f.Case); minErr != nil {
				f.Err = minErr.Error()
			} else {
				// A flaky oracle would be a determinism bug in itself;
				// fall back to the original failure message.
				f.Err = err.Error()
			}
			logf("iter %d: shrunk to %v (%d steps, %d checks)", i, f.Case, f.Steps, f.Checks)
			if opt.ReproDir != "" {
				path, err := Save(opt.ReproDir, &Repro{
					Version: ReproVersion, Oracle: o.Name, Error: f.Err, Case: f.Case,
				})
				if err != nil {
					return sum, fmt.Errorf("conformance: persisting repro: %w", err)
				}
				f.ReproPath = path
				logf("iter %d: repro %s", i, path)
			}
			sum.Failures = append(sum.Failures, f)
			if opt.OnFailure != nil {
				opt.OnFailure(f)
			}
		}
		sum.Iters++
		if len(sum.Failures) >= opt.MaxFailures {
			logf("stopping after %d failures", len(sum.Failures))
			break
		}
	}
	sum.Retries = retryCounter
	return sum, nil
}

// mix derives the per-iteration seed from the master seed with a
// splitmix64 step, so neighboring iterations get unrelated streams.
func mix(seed int64, iter int) int64 {
	z := uint64(seed) + (uint64(iter)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// WriteTrace re-runs the first algorithm runnable on the case, clean,
// with event tracing, and writes the Chrome trace-event JSON — the
// artifact cmd/soak attaches next to a failing repro so the schedule
// that produced the failure can be inspected in chrome://tracing.
func WriteTrace(c Case, w io.Writer) error {
	algs := verify.Algorithms(c.N, c.P)
	if len(algs) == 0 {
		return fmt.Errorf("conformance: no runnable algorithm at n=%d p=%d", c.N, c.P)
	}
	A, B := c.Operands()
	_, tr, err := hypermm.RunTraced(algs[0], c.cleanConfig(), A, B)
	if err != nil {
		return err
	}
	return tr.ChromeJSON(w)
}

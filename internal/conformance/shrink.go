package conformance

import "hypermm"

// Shrink minimizes a failing case greedily: it proposes simplifying
// transformations in a fixed order — halve n, halve p, drop the fault
// plan or its individual ingredients, simplify operand entries toward
// 0/1, canonicalize cost parameters and the scaling constant — and
// accepts any candidate on which the oracle still fails, restarting
// from the accepted case until no candidate fails or the check budget
// is exhausted. Deterministic: same oracle and case, same minimum.
//
// Returns the minimized case, the number of accepted shrink steps and
// the number of oracle evaluations spent.
func Shrink(o Oracle, c Case, maxChecks int) (min Case, steps, checks int) {
	cur := c
	for {
		accepted := false
		for _, cand := range shrinkCandidates(cur) {
			if o.Applies != nil && !o.Applies(cand) {
				continue
			}
			if checks >= maxChecks {
				return cur, steps, checks
			}
			checks++
			if o.Check(cand) != nil {
				cur = cand
				steps++
				accepted = true
				break
			}
		}
		if !accepted {
			return cur, steps, checks
		}
	}
}

// shrinkCandidates proposes the one-step simplifications of c, most
// aggressive first. Every candidate is strictly "smaller" under a
// well-founded order (n, p, plan ingredients, content complexity,
// parameter canonicality), so the greedy loop terminates.
func shrinkCandidates(c Case) []Case {
	var out []Case
	add := func(f func(*Case)) {
		cand := c
		if cand.Plan != nil {
			cp := *c.Plan
			cp.Down = append([]hypermm.Window(nil), c.Plan.Down...)
			cand.Plan = &cp
		}
		f(&cand)
		out = append(out, cand)
	}

	if half := c.N / 2; half >= 1 && half != c.N {
		add(func(d *Case) { d.N = half })
	}
	if half := c.P / 2; half >= 1 && half != c.P {
		add(func(d *Case) { d.P = half })
	}

	if c.Plan != nil {
		add(func(d *Case) { d.Plan, d.PlanKind = nil, PlanClean })
		if c.Plan.Drop != 0 {
			add(func(d *Case) { d.Plan.Drop = 0 })
		}
		if c.Plan.Dup != 0 {
			add(func(d *Case) { d.Plan.Dup = 0 })
		}
		if c.Plan.DelayProb != 0 || c.Plan.DelayTime != 0 {
			add(func(d *Case) { d.Plan.DelayProb, d.Plan.DelayTime = 0, 0 })
		}
		if len(c.Plan.Down) > 0 {
			add(func(d *Case) { d.Plan.Down = nil })
			for i := range c.Plan.Down {
				i := i
				if len(c.Plan.Down) > 1 {
					add(func(d *Case) { d.Plan.Down = append(d.Plan.Down[:i], d.Plan.Down[i+1:]...) })
				}
			}
		}
	}

	switch c.Content {
	case ContentRandom:
		add(func(d *Case) { d.Content = ContentSmallInt })
	case ContentSmallInt:
		add(func(d *Case) { d.Content = ContentZeroOne })
	}
	if c.ContentSeed != 1 {
		add(func(d *Case) { d.ContentSeed = 1 })
	}

	if c.Tc != 0 {
		add(func(d *Case) { d.Tc = 0 })
	}
	if c.Ts != 1 {
		add(func(d *Case) { d.Ts = 1 })
	}
	if c.Tw != 1 {
		add(func(d *Case) { d.Tw = 1 })
	}
	if c.Ports != hypermm.OnePort {
		add(func(d *Case) { d.Ports = hypermm.OnePort })
	}
	if c.Scale != 2 {
		add(func(d *Case) { d.Scale = 2 })
	}
	return out
}

package conformance

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"hypermm"
)

// engineTranscript runs the engine with a capturing logger and returns
// the transcript plus the summary.
func engineTranscript(t *testing.T, opt Options) (string, Summary) {
	t.Helper()
	var sb strings.Builder
	opt.Logf = func(format string, args ...any) {
		fmt.Fprintf(&sb, format+"\n", args...)
	}
	sum, err := Run(opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return sb.String(), sum
}

// TestEngineDeterministic: same seed, same transcript, byte for byte —
// the property cmd/soak's CI contract is built on.
func TestEngineDeterministic(t *testing.T) {
	opt := Options{Seed: 7, Iters: 4}
	t1, s1 := engineTranscript(t, opt)
	t2, s2 := engineTranscript(t, opt)
	if t1 != t2 {
		t.Fatalf("transcripts differ:\n--- first\n%s\n--- second\n%s", t1, t2)
	}
	if s1.Checks != s2.Checks || s1.Iters != s2.Iters || len(s1.Failures) != len(s2.Failures) {
		t.Fatalf("summaries differ: %+v vs %+v", s1, s2)
	}
	if s1.Checks == 0 {
		t.Fatal("engine ran no oracle checks")
	}
}

// TestEngineCleanSeedsPass is the conformance gate proper: a spread of
// seeds must clear every oracle. A failure here is a real bug (or an
// oracle whose tolerance is wrong) — the engine will have shrunk it;
// reproduce with cmd/soak -seed <seed>.
func TestEngineCleanSeedsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{1, 2, 3} {
		_, sum := engineTranscript(t, Options{Seed: seed, Iters: 4})
		for _, f := range sum.Failures {
			t.Errorf("seed %d iter %d: %s failed on %v (shrunk from %v): %s",
				seed, f.Iter, f.Oracle, f.Case, f.Orig, f.Err)
		}
	}
}

// brokenRun wraps hypermm.Run with a deliberately broken kernel: every
// distributed product comes back with its first element perturbed —
// the synthetic bug the engine must find, shrink and persist.
func brokenRun(alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
	res, err := hypermm.Run(alg, cfg, A, B)
	if err != nil {
		return res, err
	}
	res.C.Data[0] += 1000
	return res, nil
}

// TestBrokenKernelYieldsMinimizedRepro: with the broken kernel planted,
// the engine must fail, shrink the case to something smaller than the
// original, persist a repro, and that repro must replay to failure while
// the kernel is broken and replay clean once it is fixed.
func TestBrokenKernelYieldsMinimizedRepro(t *testing.T) {
	restore := SetRunHook(brokenRun)
	defer restore()

	scaling, ok := OracleByName("scaling")
	if !ok {
		t.Fatal("scaling oracle missing")
	}
	dir := t.TempDir()
	_, sum := engineTranscript(t, Options{
		Seed: 11, Iters: 3, Oracles: []Oracle{scaling}, ReproDir: dir, MaxFailures: 1,
	})
	if len(sum.Failures) == 0 {
		t.Fatal("broken kernel not detected")
	}
	f := sum.Failures[0]
	if f.Case.N > f.Orig.N || f.Case.P > f.Orig.P {
		t.Errorf("shrinking grew the case: %v from %v", f.Case, f.Orig)
	}
	if f.Steps == 0 {
		t.Errorf("no shrink steps accepted on %v", f.Orig)
	}
	if f.Case.Plan != nil {
		t.Errorf("shrinking kept an irrelevant fault plan: %v", f.Case)
	}
	if f.ReproPath == "" {
		t.Fatal("no repro persisted")
	}

	r, err := Load(f.ReproPath)
	if err != nil {
		t.Fatalf("loading repro: %v", err)
	}
	if err := r.Replay(); err == nil {
		t.Error("repro replayed clean while the kernel is still broken")
	}
	restore()
	if err := r.Replay(); err != nil {
		t.Errorf("repro still fails after the kernel was fixed: %v", err)
	}
}

// TestShrinkIsDeterministic: the same failing case minimizes to the
// same counterexample every time.
func TestShrinkIsDeterministic(t *testing.T) {
	restore := SetRunHook(brokenRun)
	defer restore()
	o, _ := OracleByName("scaling")
	c := Case{N: 48, P: 16, Ts: 150, Tw: 3, Tc: 0.5, Content: ContentRandom, ContentSeed: 9, Scale: 7,
		PlanKind: PlanLight, Plan: &hypermm.FaultPlan{Seed: 3, Drop: 0.05, MaxRetries: 40}}
	if o.Check(c) == nil {
		t.Fatal("case unexpectedly passes under the broken kernel")
	}
	m1, s1, _ := Shrink(o, c, 300)
	m2, s2, _ := Shrink(o, c, 300)
	if m1.String() != m2.String() || s1 != s2 {
		t.Fatalf("shrink diverged: %v (%d) vs %v (%d)", m1, s1, m2, s2)
	}
	if o.Check(m1) == nil {
		t.Fatal("minimized case no longer fails")
	}
	if m1.N >= c.N {
		t.Errorf("n not reduced: %d -> %d", c.N, m1.N)
	}
	if m1.Plan != nil {
		t.Errorf("irrelevant fault plan survived shrinking: %v", m1)
	}
	if m1.Content == ContentRandom {
		t.Errorf("content not simplified: %v", m1)
	}
}

// TestReproRoundTrip: save -> load -> identical case, deterministic
// filename, version and oracle validation.
func TestReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := &Repro{
		Version: ReproVersion, Oracle: "transpose", Error: "synthetic",
		Case: Case{N: 8, P: 4, Ts: 1, Tw: 1, Content: ContentZeroOne, ContentSeed: 1, Scale: 2,
			PlanKind: PlanHostile, Plan: &hypermm.FaultPlan{
				Down: []hypermm.Window{{Src: -1, Dst: -1, From: 0, To: farFuture}}, MaxRetries: 1}},
	}
	p1, err := Save(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Save(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Errorf("same repro saved to different paths: %s vs %s", p1, p2)
	}
	got, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Case.String() != r.Case.String() || got.Oracle != r.Oracle {
		t.Errorf("round trip mutated the repro: %+v vs %+v", got, r)
	}
	if got.Case.Plan == nil || len(got.Case.Plan.Down) != 1 || got.Case.Plan.Down[0].To != farFuture {
		t.Errorf("fault plan lost in round trip: %+v", got.Case.Plan)
	}

	repros, paths, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 1 || len(paths) != 1 {
		t.Fatalf("LoadDir found %d repros, want 1", len(repros))
	}
	if _, _, err := LoadDir(filepath.Join(dir, "missing")); err != nil {
		t.Errorf("missing dir should be an empty corpus: %v", err)
	}
}

func TestLoadRejectsBadRepros(t *testing.T) {
	dir := t.TempDir()
	for name, r := range map[string]*Repro{
		"bad-version.json": {Version: 99, Oracle: "transpose", Case: Case{N: 8, P: 4}},
		"bad-oracle.json":  {Version: ReproVersion, Oracle: "nope", Case: Case{N: 8, P: 4}},
		"bad-p.json":       {Version: ReproVersion, Oracle: "transpose", Case: Case{N: 8, P: 3}},
	} {
		path, err := Save(dir, r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: Load accepted an invalid repro", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
}

// TestReplayCheckedInRepros replays every repro committed under
// testdata/repros. Checked-in repros document fixed (or synthetic,
// format-pinning) bugs: each must either replay clean or be a
// deliberately hostile case whose typed fault the differential oracle
// classifies as acceptable — a FAIL here means a regression escaped.
func TestReplayCheckedInRepros(t *testing.T) {
	repros, paths, err := LoadDir(filepath.Join("testdata", "repros"))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range repros {
		if err := r.Replay(); err != nil {
			t.Errorf("%s: replay failed: %v", paths[i], err)
		}
	}
}

func TestWriteTrace(t *testing.T) {
	var buf bytes.Buffer
	c := Case{N: 8, P: 4, Ts: 1, Tw: 1, Content: ContentZeroOne, ContentSeed: 1}
	if err := WriteTrace(c, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 || !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Errorf("trace output does not look like Chrome trace JSON: %.80s", buf.String())
	}
	if err := WriteTrace(Case{N: 5, P: 4}, &buf); err == nil {
		t.Error("WriteTrace accepted a case with no runnable algorithm")
	}
}

// TestOracleCatalogueNamed: every oracle resolves by name (the repro
// format depends on it) and documents itself.
func TestOracleCatalogueNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, o := range Oracles() {
		if o.Name == "" || o.Doc == "" || o.Check == nil {
			t.Errorf("oracle %+v incomplete", o.Name)
		}
		if seen[o.Name] {
			t.Errorf("duplicate oracle name %q", o.Name)
		}
		seen[o.Name] = true
		got, ok := OracleByName(o.Name)
		if !ok || got.Name != o.Name {
			t.Errorf("OracleByName(%q) failed", o.Name)
		}
	}
	if _, ok := OracleByName("definitely-not-an-oracle"); ok {
		t.Error("OracleByName accepted an unknown name")
	}
}

// TestPoolEquivOracle exercises the machine-pool equivalence oracle on
// a clean case and on a recoverable faulted one (retry traffic is the
// hardest state for the warm machine's reset to scrub).
func TestPoolEquivOracle(t *testing.T) {
	o, ok := OracleByName("poolequiv")
	if !ok {
		t.Fatal("poolequiv missing from the catalogue")
	}
	clean := Case{N: 16, P: 4, Ts: 10, Tw: 3, Tc: 0.5, Content: ContentRandom, ContentSeed: 21, Scale: 2, PlanKind: PlanClean}
	if err := o.Check(clean); err != nil {
		t.Errorf("clean case: %v", err)
	}
	light := Case{
		N: 16, P: 4, Ts: 1, Tw: 1, Content: ContentSmallInt, ContentSeed: 22, Scale: 2,
		PlanKind: PlanLight,
		Plan:     &hypermm.FaultPlan{Seed: 5, Drop: 0.1, MaxRetries: 40},
	}
	if !light.Recoverable() {
		t.Fatal("light case classified unrecoverable")
	}
	if err := o.Check(light); err != nil {
		t.Errorf("recoverable case: %v", err)
	}
}

// TestFaultEquivRecoversTypedErrors: a hostile case must not reach the
// faultequiv oracle (Applies gates it), and the differential oracle
// must classify its typed faults as acceptable, not failures.
func TestFaultEquivRecoversTypedErrors(t *testing.T) {
	hostile := Case{
		N: 16, P: 4, Ts: 1, Tw: 1, Content: ContentRandom, ContentSeed: 5, Scale: 2,
		PlanKind: PlanHostile,
		Plan: &hypermm.FaultPlan{
			Down:       []hypermm.Window{{Src: -1, Dst: -1, From: 0, To: farFuture}},
			MaxRetries: 1,
		},
	}
	if hostile.Recoverable() {
		t.Fatal("hostile case classified recoverable")
	}
	diff, _ := OracleByName("differential")
	if err := diff.Check(hostile); err != nil {
		t.Errorf("differential rejected a well-behaved hostile case: %v", err)
	}
	// The raw run must surface the typed error the oracle tolerated.
	A, B := hostile.Operands()
	_, err := hypermm.Run(hypermm.Cannon, hostile.faultConfig(), A, B)
	if !errors.Is(err, hypermm.ErrLinkDown) {
		t.Errorf("hostile plan produced %v, want ErrLinkDown", err)
	}
}

// TestClusterEquivOracle exercises the cluster equivalence oracle on a
// clean case and a recoverable faulted one: routing a job through a
// real coordinator/worker pair over loopback TCP must change nothing
// about the result, retries included.
func TestClusterEquivOracle(t *testing.T) {
	o, ok := OracleByName("clusterequiv")
	if !ok {
		t.Fatal("clusterequiv missing from the catalogue")
	}
	clean := Case{N: 16, P: 4, Ts: 10, Tw: 3, Tc: 0.5, Content: ContentRandom, ContentSeed: 31, Scale: 2, PlanKind: PlanClean}
	if err := o.Check(clean); err != nil {
		t.Errorf("clean case: %v", err)
	}
	light := Case{
		N: 16, P: 4, Ts: 1, Tw: 1, Content: ContentSmallInt, ContentSeed: 32, Scale: 2,
		PlanKind: PlanLight,
		Plan:     &hypermm.FaultPlan{Seed: 6, Drop: 0.1, MaxRetries: 40},
	}
	if !light.Recoverable() {
		t.Fatal("light case classified unrecoverable")
	}
	if err := o.Check(light); err != nil {
		t.Errorf("recoverable case: %v", err)
	}
}

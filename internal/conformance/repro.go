package conformance

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// ReproVersion is the current repro file format version. Load rejects
// versions it does not understand rather than misreplaying them.
const ReproVersion = 1

// Repro is a persisted, minimized counterexample: the oracle that
// failed, the shrunken case, and the failure message at the time it was
// captured. Files under testdata/repros/ replay in CI (go test
// ./internal/conformance -run TestReplayCheckedInRepros) and must pass:
// a checked-in repro documents a fixed bug and pins the fix.
type Repro struct {
	Version int    `json:"version"`
	Oracle  string `json:"oracle"`
	Error   string `json:"error,omitempty"`
	Case    Case   `json:"case"`
}

// Replay re-runs the repro's oracle on its case and returns the check's
// verdict (nil means the property now holds).
func (r *Repro) Replay() error {
	o, ok := OracleByName(r.Oracle)
	if !ok {
		return fmt.Errorf("conformance: repro names unknown oracle %q", r.Oracle)
	}
	if o.Applies != nil && !o.Applies(r.Case) {
		return fmt.Errorf("conformance: oracle %q does not apply to case %v", r.Oracle, r.Case)
	}
	return o.Check(r.Case)
}

// Filename is the deterministic name the repro persists under:
// <oracle>-<fnv64a of the canonical JSON>.json. Same minimized repro,
// same file — re-finding a known counterexample never litters the
// corpus with duplicates.
func (r *Repro) Filename() string {
	blob, _ := json.Marshal(r.Case)
	h := fnv.New64a()
	h.Write([]byte(r.Oracle))
	h.Write(blob)
	return fmt.Sprintf("%s-%016x.json", r.Oracle, h.Sum64())
}

// Save writes the repro under dir (created if missing) and returns the
// file path.
func Save(dir string, r *Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Filename())
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads and validates one repro file.
func Load(path string) (*Repro, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", path, err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("conformance: %s: unsupported repro version %d", path, r.Version)
	}
	if _, ok := OracleByName(r.Oracle); !ok {
		return nil, fmt.Errorf("conformance: %s: unknown oracle %q", path, r.Oracle)
	}
	if r.Case.N < 1 || r.Case.P < 1 || r.Case.P&(r.Case.P-1) != 0 {
		return nil, fmt.Errorf("conformance: %s: invalid case n=%d p=%d", path, r.Case.N, r.Case.P)
	}
	return &r, nil
}

// LoadDir loads every *.json repro under dir, sorted by filename. A
// missing directory is an empty corpus, not an error.
func LoadDir(dir string) ([]*Repro, []string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []*Repro
	var paths []string
	for _, name := range names {
		p := filepath.Join(dir, name)
		r, err := Load(p)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, r)
		paths = append(paths, p)
	}
	return out, paths, nil
}

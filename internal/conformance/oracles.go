package conformance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"hypermm"
	"hypermm/internal/cluster"
	"hypermm/internal/cost"
	"hypermm/internal/verify"
)

// runDistributed is the single entry point every oracle uses to run a
// distributed multiplication. Tests swap it out (SetRunHook) to plant a
// deliberately broken kernel and prove the engine finds it, shrinks it
// and persists a repro that replays to failure.
var runDistributed = hypermm.Run

// SetRunHook replaces the oracles' distributed-run entry point and
// returns a func restoring the previous one. Test-only; not safe for
// concurrent use with a running engine.
func SetRunHook(f func(hypermm.Algorithm, hypermm.Config, *hypermm.Matrix, *hypermm.Matrix) (*hypermm.Result, error)) (restore func()) {
	old := runDistributed
	runDistributed = f
	return func() { runDistributed = old }
}

// Oracle is one metamorphic (or differential) property: Check returns
// nil when the case satisfies it, or a descriptive error naming the
// algorithm and the violated relation. Applies, when non-nil, gates the
// oracle to the cases it is meaningful for.
type Oracle struct {
	Name    string
	Doc     string
	Applies func(Case) bool
	Check   func(Case) error
}

// Oracles is the full catalogue, in the order the engine runs them.
func Oracles() []Oracle {
	return []Oracle{
		{
			Name: "differential",
			Doc: "every runnable algorithm matches the serial kernel and every " +
				"other algorithm; clean cases also reconcile measured counters " +
				"with the Table 2 analytic model (internal/verify)",
			Check: checkDifferential,
		},
		{
			Name:  "transpose",
			Doc:   "transpose duality: (A·B)^T = B^T·A^T for every runnable algorithm",
			Check: checkTranspose,
		},
		{
			Name:    "scaling",
			Doc:     "scaling linearity: (c·A)·B = c·(A·B) for every runnable algorithm",
			Applies: func(c Case) bool { return c.Scale != 0 },
			Check:   checkScaling,
		},
		{
			Name: "blockcomp",
			Doc: "block composition: a block-diagonal embedding of two problems " +
				"multiplies to the block-diagonal of their products",
			Applies: func(c Case) bool { return len(verify.Algorithms(2*c.N, c.P)) > 0 },
			Check:   checkBlockComp,
		},
		{
			Name:  "costmono",
			Doc:   "cost-model sanity: analytic comm and total time are nonnegative and nondecreasing in n",
			Check: checkCostMonotone,
		},
		{
			Name: "simtime",
			Doc: "simulated-vs-predicted sanity: the emulated makespan is at least " +
				"the analytic compute time and at most a slack multiple of the " +
				"analytic communication + compute time",
			Check: checkSimVsPredicted,
		},
		{
			Name: "poolequiv",
			Doc: "machine-pool equivalence: repeated runs on one warm pooled " +
				"machine are byte-identical (product bytes, Elapsed, CommStats) " +
				"to the same runs on fresh machines",
			Check: checkPoolEquiv,
		},
		{
			Name: "faultequiv",
			Doc: "fault equivalence: under a recoverable plan the retry protocol " +
				"reproduces the fault-free product exactly",
			Applies: func(c Case) bool { return c.Recoverable() },
			Check:   checkFaultEquiv,
		},
		{
			Name: "clusterequiv",
			Doc: "cluster equivalence: a job routed through a coordinator and " +
				"worker over the TCP RPC protocol returns byte-identical " +
				"product, Elapsed and CommStats to a local run",
			Check: checkClusterEquiv,
		},
	}
}

// OracleByName finds an oracle in the catalogue.
func OracleByName(name string) (Oracle, bool) {
	for _, o := range Oracles() {
		if o.Name == name {
			return o, true
		}
	}
	return Oracle{}, false
}

// tolFor mirrors internal/verify's scale-aware element tolerance:
// distributed reductions reorder the n-term dot products, so agreement
// is within rounding, not bitwise.
func tolFor(A, B *hypermm.Matrix, n int) float64 {
	return 1e-13 * float64(n) * maxAbs(A) * maxAbs(B)
}

func maxAbs(m *hypermm.Matrix) float64 {
	mx := 0.0
	for _, v := range m.Data {
		if v = math.Abs(v); v > mx {
			mx = v
		}
	}
	return mx
}

// checkDifferential delegates to the differential harness: serial
// agreement, pairwise cross-algorithm agreement, typed-fault discipline
// and (clean cases) Table 2 counter reconciliation.
func checkDifferential(c Case) error {
	r := verify.Check(verify.Case{
		N: c.N, P: c.P, Ports: c.Ports, Seed: c.ContentSeed,
		Ts: c.Ts, Tw: c.Tw, Tc: c.Tc, Plan: c.Plan,
	})
	if r.OK {
		return nil
	}
	for _, o := range r.Outcomes {
		if o.Status == verify.Failed {
			return fmt.Errorf("%s: %v", o.Alg.Name(), o.Err)
		}
	}
	return errors.New("verify report not OK with no failed outcome")
}

func checkTranspose(c Case) error {
	A, B := c.Operands()
	At, Bt := A.Transpose(), B.Transpose()
	tol := 2 * tolFor(A, B, c.N)
	cfg := c.cleanConfig()
	for _, alg := range verify.Algorithms(c.N, c.P) {
		res, err := runDistributed(alg, cfg, A, B)
		if err != nil {
			return fmt.Errorf("%s: A·B: %v", alg.Name(), err)
		}
		resT, err := runDistributed(alg, cfg, Bt, At)
		if err != nil {
			return fmt.Errorf("%s: B^T·A^T: %v", alg.Name(), err)
		}
		if d := hypermm.MaxAbsDiff(resT.C.Transpose(), res.C); d > tol {
			return fmt.Errorf("%s: (B^T·A^T)^T differs from A·B by %g (tol %g)", alg.Name(), d, tol)
		}
	}
	return nil
}

func checkScaling(c Case) error {
	A, B := c.Operands()
	s := c.Scale
	As := scaled(A, s)
	tol := 2 * (1 + math.Abs(s)) * tolFor(A, B, c.N)
	cfg := c.cleanConfig()
	for _, alg := range verify.Algorithms(c.N, c.P) {
		res, err := runDistributed(alg, cfg, A, B)
		if err != nil {
			return fmt.Errorf("%s: A·B: %v", alg.Name(), err)
		}
		resS, err := runDistributed(alg, cfg, As, B)
		if err != nil {
			return fmt.Errorf("%s: (c·A)·B: %v", alg.Name(), err)
		}
		if d := hypermm.MaxAbsDiff(resS.C, scaled(res.C, s)); d > tol {
			return fmt.Errorf("%s: (%g·A)·B differs from %g·(A·B) by %g (tol %g)", alg.Name(), s, s, d, tol)
		}
	}
	return nil
}

func scaled(m *hypermm.Matrix, s float64) *hypermm.Matrix {
	out := hypermm.NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = s * v
	}
	return out
}

// blockCompAlgs bounds how many algorithms the (2n-sized, and therefore
// most expensive) block-composition oracle runs per case.
const blockCompAlgs = 3

func checkBlockComp(c Case) error {
	A1, B1 := c.Operands()
	shifted := c
	shifted.ContentSeed = c.ContentSeed + 7717
	A2, B2 := shifted.Operands()

	n := c.N
	DA, DB := hypermm.NewMatrix(2*n, 2*n), hypermm.NewMatrix(2*n, 2*n)
	setBlock(DA, 0, 0, A1)
	setBlock(DA, n, n, A2)
	setBlock(DB, 0, 0, B1)
	setBlock(DB, n, n, B2)

	C1 := hypermm.MatMul(A1, B1)
	C2 := hypermm.MatMul(A2, B2)
	tol := tolFor(DA, DB, 2*n)

	algs := verify.Algorithms(2*n, c.P)
	if len(algs) > blockCompAlgs {
		algs = algs[:blockCompAlgs]
	}
	cfg := c.cleanConfig()
	for _, alg := range algs {
		res, err := runDistributed(alg, cfg, DA, DB)
		if err != nil {
			return fmt.Errorf("%s: diag(A1,A2)·diag(B1,B2): %v", alg.Name(), err)
		}
		for i := 0; i < 2*n; i++ {
			for j := 0; j < 2*n; j++ {
				var want float64
				switch {
				case i < n && j < n:
					want = C1.At(i, j)
				case i >= n && j >= n:
					want = C2.At(i-n, j-n)
				}
				if d := math.Abs(res.C.At(i, j) - want); d > tol {
					return fmt.Errorf("%s: block-diagonal product off by %g at (%d,%d) (tol %g)",
						alg.Name(), d, i, j, tol)
				}
			}
		}
	}
	return nil
}

func setBlock(dst *hypermm.Matrix, r0, c0 int, blk *hypermm.Matrix) {
	for i := 0; i < blk.Rows; i++ {
		for j := 0; j < blk.Cols; j++ {
			dst.Set(r0+i, c0+j, blk.At(i, j))
		}
	}
}

// checkCostMonotone checks the analytic model over the whole algorithm
// set at the case's machine: times are nonnegative, finite and — within
// one port-model regime — nondecreasing in n (communication volume can
// only grow with the problem). Multi-port rows switch to a cheaper
// schedule once the full-bandwidth condition holds, so comm time may
// legitimately drop exactly at a regime boundary; consecutive sizes in
// different regimes are not compared.
func checkCostMonotone(c Case) error {
	const relTol = 1e-9
	for _, alg := range hypermm.Algorithms {
		prevComm, prevTotal := math.Inf(-1), math.Inf(-1)
		prevRegime := -1
		for _, n := range []float64{float64(c.N), 2 * float64(c.N), 4 * float64(c.N)} {
			comm, ok := hypermm.CommTime(alg, n, float64(c.P), c.Ts, c.Tw, c.Ports)
			if !ok {
				continue
			}
			total, _ := hypermm.TotalTime(alg, n, float64(c.P), c.Ts, c.Tw, c.Tc, c.Ports)
			if comm < 0 || math.IsNaN(comm) || math.IsInf(comm, 0) {
				return fmt.Errorf("%s: comm time %g at n=%g not a finite nonnegative number", alg.Name(), comm, n)
			}
			regime := costRegime(alg, n, float64(c.P), c.Ports)
			if regime == prevRegime {
				if comm < prevComm*(1-relTol) {
					return fmt.Errorf("%s: comm time decreases in n: %g then %g at n=%g", alg.Name(), prevComm, comm, n)
				}
				if total < prevTotal*(1-relTol) {
					return fmt.Errorf("%s: total time decreases in n: %g then %g at n=%g", alg.Name(), prevTotal, total, n)
				}
			}
			prevComm, prevTotal, prevRegime = comm, total, regime
		}
	}
	return nil
}

// costRegime identifies which Table 2 expression is in force at (n, p):
// 0 on one-port machines (a single row, monotone in n), and on
// multi-port machines the index of the bandwidth regime — the one-port
// fallback, the intermediate 3D All row, or the full-bandwidth row
// (mirrors the conditions of cost.Overhead).
func costRegime(alg hypermm.Algorithm, n, p float64, ports hypermm.PortModel) int {
	if ports == hypermm.OnePort {
		return 0
	}
	if alg == hypermm.Cannon || alg == hypermm.TwoDiag {
		return 0 // a single multi-port row, no bandwidth branch
	}
	if alg == hypermm.ThreeAll {
		cb := math.Cbrt(p)
		logcb := math.Log2(cb)
		switch {
		case n*n >= math.Pow(p, 4.0/3)*logcb:
			return 2
		case n*n >= p*logcb:
			return 1
		default:
			return 0
		}
	}
	if cost.FullBandwidth(toCostAlg(alg), n, p) {
		return 1
	}
	return 0
}

// toCostAlg maps the public algorithm id onto the cost package's by
// matching names (the sets are identical by construction).
func toCostAlg(alg hypermm.Algorithm) cost.Alg {
	for _, ca := range cost.Algorithms {
		if ca.String() == alg.String() {
			return ca
		}
	}
	panic(fmt.Sprintf("conformance: no cost.Alg for %v", alg))
}

// Slack factors for the simulated-vs-predicted check, matching what
// internal/verify established empirically: one-port bandwidth is tight,
// multi-port slicing can go ragged on small blocks, and HJE's
// unpipelined broadcasts inflate the start-up term by up to ~4x at the
// machine sizes sampled here. The compute term gets 2x because the
// analytic 2 n^3 t_c / p assumes perfect balance and no reduction adds,
// while e.g. TwoDiag charges its row reduction's additions to t_c too.
// An extra startup-term constant absorbs synchronization steps the
// Table 2 rows do not charge.
const (
	simStartupSlack = 4.5
	simBandSlack    = 2.5
	simComputeSlack = 2.0
	simExtraStarts  = 12
)

func checkSimVsPredicted(c Case) error {
	A, B := c.Operands()
	cfg := c.cleanConfig()
	comp := hypermm.ComputeTime(float64(c.N), float64(c.P), c.Tc)
	for _, alg := range verify.Algorithms(c.N, c.P) {
		a, b, ok := hypermm.Overhead(alg, float64(c.N), float64(c.P), c.Ports)
		if !ok {
			continue // stepping stones have no Table 2 row
		}
		res, err := runDistributed(alg, cfg, A, B)
		if err != nil {
			return fmt.Errorf("%s: %v", alg.Name(), err)
		}
		// Lower bound: the perfectly parallel compute time is charged in
		// full on some node, so the makespan can never undercut it.
		if res.Elapsed+1e-9 < comp {
			return fmt.Errorf("%s: elapsed %g below analytic compute time %g", alg.Name(), res.Elapsed, comp)
		}
		bound := simStartupSlack*c.Ts*a + simBandSlack*c.Tw*b + simComputeSlack*comp + simExtraStarts*c.Ts
		if res.Elapsed > bound {
			return fmt.Errorf("%s: elapsed %g exceeds slack bound %g (analytic comm %g, compute %g)",
				alg.Name(), res.Elapsed, bound, c.Ts*a+c.Tw*b, comp)
		}
	}
	return nil
}

// checkFaultEquiv runs each algorithm fault-free and under the case's
// recoverable plan: the retry protocol retransmits identical payloads,
// so the two products must agree exactly — not within tolerance. A plan
// whose seed happens to drop nothing is a vacuous pass, not a failure;
// cmd/soak aggregates retry counts across the whole run to prove the
// mix exercised the recovery path (see Summary.Retries).
func checkFaultEquiv(c Case) error {
	A, B := c.Operands()
	clean, faulty := c.cleanConfig(), c.faultConfig()
	for _, alg := range verify.Algorithms(c.N, c.P) {
		res0, err := runDistributed(alg, clean, A, B)
		if err != nil {
			return fmt.Errorf("%s: clean: %v", alg.Name(), err)
		}
		res1, err := runDistributed(alg, faulty, A, B)
		if err != nil {
			return fmt.Errorf("%s: recoverable plan not recovered: %v", alg.Name(), err)
		}
		if d := hypermm.MaxAbsDiff(res0.C, res1.C); d != 0 {
			return fmt.Errorf("%s: fault-injected product differs from fault-free by %g", alg.Name(), d)
		}
		if res0.Comm.Retries != 0 {
			return fmt.Errorf("%s: clean run charged %d retries", alg.Name(), res0.Comm.Retries)
		}
		observeRetries(res1.Comm.Retries)
	}
	return nil
}

// poolEquivAlgs bounds how many algorithms the pool-equivalence oracle
// runs per case: each algorithm costs four full runs (two fresh, two
// warm).
const poolEquivAlgs = 3

// checkPoolEquiv runs each algorithm twice on one warm pooled machine
// and twice on fresh machines: the pool's reset contract says the
// results must be byte-identical — product bits, simulated Elapsed and
// every CommStats counter — or warm serving would silently drift from
// the cold semantics every other oracle checks. Recoverable fault plans
// are replayed on the warm machine too: retry traffic parks messages
// mid-protocol, the hardest state for the reset to scrub.
//
// Deliberately bypasses the runDistributed hook: this oracle pins the
// pool against hypermm.Run itself, and a test-planted broken kernel
// (SetRunHook) would break both sides equally and hide here.
func checkPoolEquiv(c Case) error {
	A, B := c.Operands()
	cfg := c.cleanConfig()
	pool := hypermm.NewMachinePool(1)
	defer pool.Close()
	algs := verify.Algorithms(c.N, c.P)
	if len(algs) > poolEquivAlgs {
		algs = algs[:poolEquivAlgs]
	}
	for _, alg := range algs {
		for round := 1; round <= 2; round++ {
			fresh, err := hypermm.Run(alg, cfg, A, B)
			if err != nil {
				return fmt.Errorf("%s: fresh run %d: %v", alg.Name(), round, err)
			}
			warm, err := pool.RunOn(alg, cfg, A, B)
			if err != nil {
				return fmt.Errorf("%s: pooled run %d: %v", alg.Name(), round, err)
			}
			if err := equalResults(fresh, warm); err != nil {
				return fmt.Errorf("%s: pooled run %d diverged from fresh machine: %v", alg.Name(), round, err)
			}
		}
		if c.Recoverable() {
			fcfg := c.faultConfig()
			fresh, err := hypermm.Run(alg, fcfg, A, B)
			if err != nil {
				return fmt.Errorf("%s: fresh faulted run: %v", alg.Name(), err)
			}
			warm, err := pool.RunOn(alg, fcfg, A, B)
			if err != nil {
				return fmt.Errorf("%s: pooled faulted run: %v", alg.Name(), err)
			}
			if err := equalResults(fresh, warm); err != nil {
				return fmt.Errorf("%s: pooled faulted run diverged from fresh machine: %v", alg.Name(), err)
			}
		}
	}
	if st := pool.Stats(); st.Hits == 0 {
		return fmt.Errorf("pool reported no hits over repeated same-shape runs: %+v", st)
	}
	return nil
}

// clusterEquivAlgs bounds how many algorithms the cluster-equivalence
// oracle routes per case: each costs two full runs plus a round trip of
// both operands and the product over loopback TCP.
const clusterEquivAlgs = 2

// checkClusterEquiv boots a real coordinator and two workers over
// loopback TCP and routes each algorithm through cluster.Submit: the
// emulator is deterministic in (alg, cfg, A, B) regardless of which
// process hosts it, and the wire codec is bit-exact (raw float64 words,
// not decimal JSON), so the routed result must equal a local run
// byte-for-byte. Recoverable fault plans travel the wire too — the
// retry counters must survive serialization.
//
// Like poolequiv, this deliberately bypasses the runDistributed hook:
// the oracle pins the cluster tier against hypermm.Run itself, and a
// test-planted broken kernel would break both sides equally and hide.
func checkClusterEquiv(c Case) error {
	coord, err := cluster.NewCoordinator(cluster.Config{
		Addr:          "127.0.0.1:0",
		ProbeInterval: 200 * time.Millisecond,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("coordinator: %v", err)
	}
	defer coord.Close()
	for i := 0; i < 2; i++ {
		w, err := cluster.Join(context.Background(), coord.Addr().String(), cluster.WorkerConfig{
			Name: fmt.Sprintf("conf-w%d", i), Exec: cluster.LocalExec,
		})
		if err != nil {
			return fmt.Errorf("worker %d join: %v", i, err)
		}
		go w.Serve(context.Background())
		defer w.Abort()
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() != 2 {
		if time.Now().After(deadline) {
			return fmt.Errorf("worker registrations stuck at %d", coord.WorkerCount())
		}
		time.Sleep(2 * time.Millisecond)
	}

	A, B := c.Operands()
	cfg := c.cleanConfig()
	algs := verify.Algorithms(c.N, c.P)
	if len(algs) > clusterEquivAlgs {
		algs = algs[:clusterEquivAlgs]
	}
	for _, alg := range algs {
		local, err := hypermm.Run(alg, cfg, A, B)
		if err != nil {
			return fmt.Errorf("%s: local run: %v", alg.Name(), err)
		}
		routed, err := coord.Submit(context.Background(), alg, cfg, A, B)
		if err != nil {
			return fmt.Errorf("%s: cluster submit: %v", alg.Name(), err)
		}
		if err := equalResults(local, routed); err != nil {
			return fmt.Errorf("%s: cluster-routed run diverged from local: %v", alg.Name(), err)
		}
		if c.Recoverable() {
			fcfg := c.faultConfig()
			local, err := hypermm.Run(alg, fcfg, A, B)
			if err != nil {
				return fmt.Errorf("%s: local faulted run: %v", alg.Name(), err)
			}
			routed, err := coord.Submit(context.Background(), alg, fcfg, A, B)
			if err != nil {
				return fmt.Errorf("%s: faulted cluster submit: %v", alg.Name(), err)
			}
			if err := equalResults(local, routed); err != nil {
				return fmt.Errorf("%s: faulted cluster-routed run diverged from local: %v", alg.Name(), err)
			}
			observeRetries(routed.Comm.Retries)
		}
	}
	if st := coord.Stats(); st.Failovers != 0 {
		return fmt.Errorf("healthy loopback cluster recorded %d failovers", st.Failovers)
	}
	return nil
}

// equalResults demands bitwise equality: same product bytes, same
// simulated Elapsed, same counters.
func equalResults(a, b *hypermm.Result) error {
	if a.C.Rows != b.C.Rows || a.C.Cols != b.C.Cols {
		return fmt.Errorf("product shape %dx%d vs %dx%d", a.C.Rows, a.C.Cols, b.C.Rows, b.C.Cols)
	}
	for i := range a.C.Data {
		if a.C.Data[i] != b.C.Data[i] {
			return fmt.Errorf("product bytes differ at word %d: %g vs %g", i, a.C.Data[i], b.C.Data[i])
		}
	}
	if a.Elapsed != b.Elapsed {
		return fmt.Errorf("Elapsed %g vs %g", a.Elapsed, b.Elapsed)
	}
	if a.Comm != b.Comm {
		return fmt.Errorf("CommStats %+v vs %+v", a.Comm, b.Comm)
	}
	return nil
}

// retryCounter aggregates retries recovered during faultequiv checks so
// the engine can report whether the sampled mix exercised the retry
// path at all. Reset by Run; not goroutine-safe (the engine is serial).
var retryCounter int64

func observeRetries(n int64) { retryCounter += n }

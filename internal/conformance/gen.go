// Package conformance is a seeded property-based conformance and soak
// engine for the emulator, the algorithm suite and the cost model. It
// generates random but reproducible scenarios (matrix shapes and
// contents, machine configurations, fault plans), checks them against a
// library of metamorphic oracles (oracles.go), shrinks any failing case
// to a minimal counterexample (shrink.go) and persists the result as a
// replayable JSON repro under testdata/repros/ (repro.go). cmd/soak is
// the CLI driver; Run is the library entry point.
//
// Everything is a pure function of the master seed: the same seed
// always generates the same cases, the same verdicts and — because the
// emulator's clocks and fault decisions are themselves deterministic —
// the same failure transcripts, byte for byte.
package conformance

import (
	"fmt"
	"math/rand"
	"strings"

	"hypermm"
	"hypermm/internal/verify"
)

// ContentKind selects how operand entries are generated. The shrinker
// simplifies along random -> smallint -> zeroone: a counterexample that
// still fails with 0/1 entries is far easier to stare at than one full
// of 16-digit fractions.
type ContentKind string

const (
	// ContentRandom draws entries uniform in [-1, 1).
	ContentRandom ContentKind = "random"
	// ContentSmallInt draws entries from the integers {-2..2}.
	ContentSmallInt ContentKind = "smallint"
	// ContentZeroOne draws entries from {0, 1}.
	ContentZeroOne ContentKind = "zeroone"
)

// Plan kinds, recorded on the case so oracles can tell a recoverable
// plan (the retry protocol must hide it) from a hostile one (a typed
// fault is the expected outcome).
const (
	PlanClean   = "clean"
	PlanLight   = "light"
	PlanMessy   = "messy"
	PlanHostile = "hostile"
)

// Case is one generated conformance scenario: a square n x n problem on
// a p-node machine with the given cost parameters, operand content
// recipe, scaling constant (for the linearity oracle) and fault plan.
// Cases marshal to the repro JSON format as-is.
type Case struct {
	N     int               `json:"n"`
	P     int               `json:"p"`
	Ports hypermm.PortModel `json:"ports"` // 0 one-port, 1 multi-port
	Ts    float64           `json:"ts"`
	Tw    float64           `json:"tw"`
	Tc    float64           `json:"tc"`

	ContentSeed int64       `json:"content_seed"`
	Content     ContentKind `json:"content"`
	Scale       float64     `json:"scale"`

	PlanKind string             `json:"plan_kind"`
	Plan     *hypermm.FaultPlan `json:"plan,omitempty"`
}

// farFuture stands in for hypermm.Forever in generated outage windows:
// JSON cannot encode +Inf, and no simulated clock in a bounded run gets
// anywhere near it.
const farFuture = 1e18

// String renders the case on one line, deterministically.
func (c Case) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d p=%d %v ts=%g tw=%g tc=%g content=%s seed=%d scale=%g plan=%s",
		c.N, c.P, c.Ports, c.Ts, c.Tw, c.Tc, c.Content, c.ContentSeed, c.Scale, c.PlanKind)
	if p := c.Plan; p != nil && !p.Empty() {
		fmt.Fprintf(&sb, "{seed=%d drop=%g dup=%g delay=%g/%g down=%d retries=%d}",
			p.Seed, p.Drop, p.Dup, p.DelayProb, p.DelayTime, len(p.Down), p.MaxRetries)
	}
	return sb.String()
}

// Operands materializes the case's operand matrices. Deterministic in
// (N, ContentSeed, Content).
func (c Case) Operands() (A, B *hypermm.Matrix) {
	switch c.Content {
	case ContentSmallInt:
		return intMatrix(c.N, c.ContentSeed*31+1, 5, -2), intMatrix(c.N, c.ContentSeed*31+2, 5, -2)
	case ContentZeroOne:
		return intMatrix(c.N, c.ContentSeed*31+1, 2, 0), intMatrix(c.N, c.ContentSeed*31+2, 2, 0)
	default:
		return hypermm.RandomMatrix(c.N, c.N, c.ContentSeed*31+1),
			hypermm.RandomMatrix(c.N, c.N, c.ContentSeed*31+2)
	}
}

func intMatrix(n int, seed int64, span, lo int) *hypermm.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := hypermm.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = float64(rng.Intn(span) + lo)
	}
	return m
}

// cleanConfig is the case's machine configuration with no fault plan —
// what the metamorphic oracles run under.
func (c Case) cleanConfig() hypermm.Config {
	return hypermm.Config{P: c.P, Ports: c.Ports, Ts: c.Ts, Tw: c.Tw, Tc: c.Tc}
}

// faultConfig is the case's machine configuration with its plan active.
func (c Case) faultConfig() hypermm.Config {
	cfg := c.cleanConfig()
	cfg.Faults = c.Plan
	return cfg
}

// Recoverable reports whether the case's plan is one the retry protocol
// is guaranteed to hide: non-empty, no outage windows, a bounded drop
// rate and a generous retry budget.
func (c Case) Recoverable() bool {
	p := c.Plan
	return p != nil && !p.Empty() && len(p.Down) == 0 && p.Drop <= 0.2 && p.MaxRetries >= 20
}

// Sampling pools. Every n here is paired only with ps where at least
// one algorithm is runnable; genCase re-draws until that holds (and
// falls back to n=48, which every sampled p accepts).
var (
	genPs   = []int{4, 8, 16, 64}
	genNs   = []int{6, 8, 10, 12, 16, 18, 20, 24, 28, 32, 36, 40, 48, 56, 64, 72, 96}
	genTsTw = [][2]float64{
		{150, 3}, // the paper's headline machine
		{10, 3},  // the paper's low-latency machine
		{1, 1}, {500, 10}, {35, 5},
		{1, 0}, {0, 1}, // degenerate corners: free bandwidth / free start-ups
	}
	genTcs    = []float64{0, 0.1, 0.5, 1}
	genScales = []float64{-3, -1, 0.5, 2, 7}
)

// genCase draws one case from the rng. All choices are made through the
// rng in a fixed order, so the case stream is a pure function of the
// rng's seed.
func genCase(rng *rand.Rand) Case {
	p := genPs[rng.Intn(len(genPs))]
	n := genNs[rng.Intn(len(genNs))]
	if len(verify.Algorithms(n, p)) == 0 {
		n = 48 // divisible for every 2-D and 3-D embedding sampled here
	}
	tstw := genTsTw[rng.Intn(len(genTsTw))]
	c := Case{
		N: n, P: p,
		Ports:       hypermm.PortModel(rng.Intn(2)),
		Ts:          tstw[0],
		Tw:          tstw[1],
		Tc:          genTcs[rng.Intn(len(genTcs))],
		ContentSeed: int64(rng.Intn(1 << 16)),
		Content:     []ContentKind{ContentRandom, ContentRandom, ContentSmallInt, ContentZeroOne}[rng.Intn(4)],
		Scale:       genScales[rng.Intn(len(genScales))],
	}
	c.PlanKind, c.Plan = genPlan(rng)
	return c
}

// genPlan draws a fault plan: mostly clean, sometimes recoverable noise
// (light/messy), sometimes a hostile outage that must surface a typed
// ErrLinkDown rather than a hang or a wrong product.
func genPlan(rng *rand.Rand) (string, *hypermm.FaultPlan) {
	switch k := rng.Intn(10); {
	case k < 4:
		return PlanClean, nil
	case k < 6:
		return PlanLight, &hypermm.FaultPlan{
			Seed:       rng.Uint64(),
			Drop:       0.03 + 0.09*rng.Float64(),
			MaxRetries: 40,
		}
	case k < 8:
		return PlanMessy, &hypermm.FaultPlan{
			Seed:       rng.Uint64(),
			Drop:       0.05 + 0.05*rng.Float64(),
			Dup:        0.1 * rng.Float64(),
			DelayProb:  0.2 * rng.Float64(),
			DelayTime:  1 + 50*rng.Float64(),
			MaxRetries: 40,
		}
	default:
		// Permanent outage: total (every link) or single-target. With a
		// tiny retry budget a used link must surface ErrLinkDown.
		dst := -1
		if rng.Intn(2) == 1 {
			dst = rng.Intn(4)
		}
		return PlanHostile, &hypermm.FaultPlan{
			Seed:       rng.Uint64(),
			Down:       []hypermm.Window{{Src: -1, Dst: dst, From: 0, To: farFuture}},
			MaxRetries: 1 + rng.Intn(2),
		}
	}
}

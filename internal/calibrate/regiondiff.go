package calibrate

import (
	"fmt"
	"strings"

	"hypermm"
)

// MapDiff is an empirical best-algorithm region map — the winner at
// every sweep cell by *measured* communication time — diffed cell by
// cell against the analytic Figure 13/14 winner at the same (n, p)
// under the same (t_s, t_w). Only algorithms actually measured at a
// cell compete on either side, so the diff isolates model error from
// emulator coverage.
type MapDiff struct {
	Ts, Tw float64
	Ports  hypermm.PortModel
	Ns, Ps []int
	// Empirical and Analytic hold the winners' letters indexed
	// [pi][ni]; '.' marks cells with no measurement.
	Empirical, Analytic [][]byte
	// Cells counts cells with at least one measurement; Disagreements
	// counts those whose winners differ.
	Cells, Disagreements int
}

// NewMapDiff evaluates the empirical and analytic winner at every
// sweep cell under machine parameters (ts, tw).
func NewMapDiff(s *Sweep, ts, tw float64) *MapDiff {
	d := &MapDiff{Ts: ts, Tw: tw, Ports: s.Spec.Ports,
		Ns: append([]int(nil), s.Spec.Ns...), Ps: append([]int(nil), s.Spec.Ps...)}

	byCell := map[[2]int][]Measurement{}
	for _, m := range s.Cells {
		k := [2]int{m.N, m.P}
		byCell[k] = append(byCell[k], m)
	}

	for _, p := range d.Ps {
		empRow := make([]byte, len(d.Ns))
		anaRow := make([]byte, len(d.Ns))
		for ni, n := range d.Ns {
			empRow[ni], anaRow[ni] = '.', '.'
			ms := byCell[[2]int{n, p}]
			if len(ms) == 0 {
				continue
			}
			var empBest, anaBest hypermm.Algorithm
			empT, anaT := 0.0, 0.0
			first := true
			for _, m := range ms {
				et := m.Time(ts, tw)
				at, ok := hypermm.CommTime(m.Alg, float64(n), float64(p), ts, tw, s.Spec.Ports)
				if !ok {
					continue
				}
				if first || et < empT {
					empBest, empT = m.Alg, et
				}
				if first || at < anaT {
					anaBest, anaT = m.Alg, at
				}
				first = false
			}
			if first {
				continue
			}
			empRow[ni], anaRow[ni] = empBest.Letter(), anaBest.Letter()
			d.Cells++
			if empBest != anaBest {
				d.Disagreements++
			}
		}
		d.Empirical = append(d.Empirical, empRow)
		d.Analytic = append(d.Analytic, anaRow)
	}
	return d
}

// Fraction is the share of measured cells whose empirical winner
// disagrees with the analytic one (0 with no cells).
func (d *MapDiff) Fraction() float64 {
	if d.Cells == 0 {
		return 0
	}
	return float64(d.Disagreements) / float64(d.Cells)
}

// Render draws the two maps side by side, rows p descending like the
// paper's figures, marking disagreeing cells with '!' in a third
// column.
func (d *MapDiff) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Empirical vs. analytic best-algorithm map (%v, t_s=%g, t_w=%g)\n", d.Ports, d.Ts, d.Tw)
	fmt.Fprintf(&sb, "%-10s %-*s  %-*s  %s\n", "", len(d.Ns), "meas", len(d.Ns), "model", "diff")
	for pi := len(d.Ps) - 1; pi >= 0; pi-- {
		diff := make([]byte, len(d.Ns))
		for ni := range d.Ns {
			if d.Empirical[pi][ni] != d.Analytic[pi][ni] {
				diff[ni] = '!'
			} else {
				diff[ni] = ' '
			}
		}
		fmt.Fprintf(&sb, "p=%-7d %s  %s  %s\n", d.Ps[pi], d.Empirical[pi], d.Analytic[pi], diff)
	}
	sb.WriteString("n =        ")
	for _, n := range d.Ns {
		fmt.Fprintf(&sb, "%d ", n)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "disagreement: %d/%d cells (%.1f%%)\n", d.Disagreements, d.Cells, 100*d.Fraction())
	return sb.String()
}

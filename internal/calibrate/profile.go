package calibrate

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"hypermm"
)

// ProfileVersion is the schema version Parse accepts.
const ProfileVersion = 1

// AlgCalibration is one algorithm's fitted correction and prediction
// accuracy, evaluated at the profile's reference parameters.
type AlgCalibration struct {
	// Correction multiplies the effective-parameter analytic time.
	Correction float64 `json:"correction"`
	// Cells is the number of sweep cells the algorithm contributed.
	Cells int `json:"cells"`
	// MaxRelErr / MeanRelErr are the calibrated model's prediction
	// errors; the Uncal pair is the raw analytic model on the same
	// cells. WorstN/WorstP locate the worst calibrated cell.
	MaxRelErr       float64 `json:"max_rel_err"`
	MeanRelErr      float64 `json:"mean_rel_err"`
	UncalMaxRelErr  float64 `json:"uncalibrated_max_rel_err"`
	UncalMeanRelErr float64 `json:"uncalibrated_mean_rel_err"`
	WorstN          int     `json:"worst_n"`
	WorstP          int     `json:"worst_p"`
}

// Profile is the versioned calibration artifact cmd/calibrate writes
// and cmd/hmmd loads: effective machine parameters plus per-algorithm
// corrections, with the sweep grid and accuracy statistics that
// produced them. Marshal output is deterministic (sorted keys, shortest
// round-trip floats), so identical sweeps produce byte-identical
// profiles.
type Profile struct {
	Version   int     `json:"version"`
	PortModel string  `json:"port_model"`
	RefTs     float64 `json:"ref_ts"`
	RefTw     float64 `json:"ref_tw"`
	TsEff     float64 `json:"ts_eff"`
	TwEff     float64 `json:"tw_eff"`
	Ns        []int   `json:"ns"`
	Ps        []int   `json:"ps"`
	// Algorithms is keyed by hypermm.Algorithm.Name().
	Algorithms map[string]AlgCalibration `json:"algorithms"`
}

// Marshal renders the profile as indented JSON with a trailing newline.
func (p *Profile) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Parse decodes and validates a profile. It rejects — never loads —
// malformed JSON, wrong versions, unknown algorithm or port-model
// names, and any non-finite or non-positive coefficient: a daemon must
// not plan traffic with a poisoned cost model.
func Parse(data []byte) (*Profile, error) {
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("calibrate: bad profile JSON: %w", err)
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a profile file.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	return Parse(data)
}

func (p *Profile) validate() error {
	if p.Version != ProfileVersion {
		return fmt.Errorf("calibrate: unsupported profile version %d (want %d)", p.Version, ProfileVersion)
	}
	if _, err := hypermm.ParsePortModel(p.PortModel); err != nil {
		return fmt.Errorf("calibrate: profile: %w", err)
	}
	for name, v := range map[string]float64{
		"ref_ts": p.RefTs, "ref_tw": p.RefTw, "ts_eff": p.TsEff, "tw_eff": p.TwEff,
	} {
		if !positiveFinite(v) {
			return fmt.Errorf("calibrate: profile %s=%g must be positive and finite", name, v)
		}
	}
	if len(p.Algorithms) == 0 {
		return fmt.Errorf("calibrate: profile has no algorithm calibrations")
	}
	for name, ac := range p.Algorithms {
		if _, err := hypermm.ParseAlgorithm(name); err != nil {
			return fmt.Errorf("calibrate: profile: %w", err)
		}
		if !positiveFinite(ac.Correction) {
			return fmt.Errorf("calibrate: profile correction for %s is %g, must be positive and finite", name, ac.Correction)
		}
		if ac.Cells < 1 {
			return fmt.Errorf("calibrate: profile %s has %d cells, need at least 1", name, ac.Cells)
		}
		for label, v := range map[string]float64{
			"max_rel_err": ac.MaxRelErr, "mean_rel_err": ac.MeanRelErr,
			"uncalibrated_max_rel_err": ac.UncalMaxRelErr, "uncalibrated_mean_rel_err": ac.UncalMeanRelErr,
		} {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("calibrate: profile %s %s=%g must be finite and non-negative", name, label, v)
			}
		}
	}
	for _, n := range p.Ns {
		if n < 1 {
			return fmt.Errorf("calibrate: profile sweep n=%d invalid", n)
		}
	}
	for _, q := range p.Ps {
		if q < 2 || q&(q-1) != 0 {
			return fmt.Errorf("calibrate: profile sweep p=%d is not a power of two >= 2", q)
		}
	}
	return nil
}

func positiveFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v)
}

// Ports returns the profile's machine model.
func (p *Profile) Ports() hypermm.PortModel {
	pm, err := hypermm.ParsePortModel(p.PortModel)
	if err != nil {
		// validate() guarantees parseability; a hand-built Profile that
		// skipped Parse gets the conservative default.
		return hypermm.OnePort
	}
	return pm
}

// Model builds the runnable calibrated cost model the profile
// describes: effective-parameter scale factors TsEff/RefTs and
// TwEff/RefTw plus the per-algorithm corrections.
func (p *Profile) Model() (*hypermm.CalibratedModel, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	corr := map[hypermm.Algorithm]float64{}
	for name, ac := range p.Algorithms {
		alg, err := hypermm.ParseAlgorithm(name)
		if err != nil {
			return nil, err
		}
		corr[alg] = ac.Correction
	}
	return hypermm.NewCalibratedModel(p.TsEff/p.RefTs, p.TwEff/p.RefTw, corr)
}

package calibrate

import (
	"bytes"
	"math"
	"testing"

	"hypermm"
)

// testSpec is the small grid the package tests share: big enough to
// exercise every candidate algorithm (p=64 is both a square and a
// cube), small enough to keep the emulations fast.
func testSpec(pm hypermm.PortModel) Spec {
	return Spec{Ports: pm, Ns: []int{16, 32, 48}, Ps: []int{4, 16, 64}}
}

func TestSweepCoversCandidates(t *testing.T) {
	s, err := Run(testSpec(hypermm.OnePort))
	if err != nil {
		t.Fatal(err)
	}
	by := s.ByAlg()
	for _, alg := range hypermm.Candidates(hypermm.OnePort) {
		if len(by[alg]) == 0 {
			t.Errorf("no cells measured for %v", alg)
		}
	}
	for _, m := range s.Cells {
		if m.A <= 0 || m.B <= 0 || m.Words <= 0 {
			t.Errorf("%v n=%d p=%d: non-positive measurement %+v", m.Alg, m.N, m.P, m)
		}
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	for _, spec := range []Spec{
		{Ports: hypermm.OnePort},                              // empty grid
		{Ports: hypermm.OnePort, Ns: []int{16}, Ps: []int{3}}, // p not a power of two
		{Ports: hypermm.OnePort, Ns: []int{0}, Ps: []int{4}},  // bad n
		{Ports: hypermm.OnePort, Ns: []int{16}, Ps: []int{1}}, // p too small
	} {
		if _, err := Run(spec); err == nil {
			t.Errorf("Run(%+v) accepted an invalid spec", spec)
		}
	}
}

// TestDeterministicProfiles pins the determinism regression: two full
// sweep->fit->marshal pipelines with the same spec produce
// byte-identical profiles and reports, regardless of worker count.
func TestDeterministicProfiles(t *testing.T) {
	artifacts := func(workers int) ([]byte, string, string) {
		spec := testSpec(hypermm.OnePort)
		spec.Workers = workers
		s, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Fit(s, 150, 3)
		if err != nil {
			t.Fatal(err)
		}
		data, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data, ErrorReport(p) + VolumeReport(s), NewMapDiff(s, 150, 3).Render()
	}
	p1, r1, d1 := artifacts(1)
	p2, r2, d2 := artifacts(8)
	if !bytes.Equal(p1, p2) {
		t.Errorf("profiles differ between runs:\n%s\nvs\n%s", p1, p2)
	}
	if r1 != r2 {
		t.Errorf("reports differ between runs")
	}
	if d1 != d2 {
		t.Errorf("map diffs differ between runs")
	}
}

// TestFitImprovesPrediction: the calibrated model must predict the
// measured sweep within a generous absolute bound, must not make the
// sweep's worst algorithm worse, and may degrade an individual
// already-near-perfect algorithm by at most 2 points (the shared
// effective parameters trade such algorithms off against the worst
// one; the per-algorithm correction recovers most but not all).
func TestFitImprovesPrediction(t *testing.T) {
	for _, pm := range []hypermm.PortModel{hypermm.OnePort, hypermm.MultiPort} {
		s, err := Run(testSpec(pm))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Fit(s, 150, 3)
		if err != nil {
			t.Fatal(err)
		}
		if p.TsEff <= 0 || p.TwEff <= 0 {
			t.Fatalf("%v: non-positive effective parameters %g/%g", pm, p.TsEff, p.TwEff)
		}
		var worstCal, worstUncal float64
		for name, ac := range p.Algorithms {
			if ac.MeanRelErr > ac.UncalMeanRelErr+0.02 {
				t.Errorf("%v %s: calibration worsened mean error %.3f -> %.3f",
					pm, name, ac.UncalMeanRelErr, ac.MeanRelErr)
			}
			// The emulator stays within Table 2's sequential worst case
			// and above ~45% of it (see cost's cross-validation), so a
			// fitted model outside [0, 0.25] means the fit broke.
			if ac.MaxRelErr > 0.25 {
				t.Errorf("%v %s: calibrated max rel err %.3f above generous bound 0.25", pm, name, ac.MaxRelErr)
			}
			worstCal = math.Max(worstCal, ac.MaxRelErr)
			worstUncal = math.Max(worstUncal, ac.UncalMaxRelErr)
		}
		if worstCal > worstUncal+1e-9 {
			t.Errorf("%v: calibration worsened the sweep's worst prediction %.3f -> %.3f",
				pm, worstUncal, worstCal)
		}
	}
}

// TestMeasuredVolumeRespectsLowerBounds checks every sweep cell moves
// at least the memory-independent per-processor lower bound
// n^2/p^(2/3) of arXiv:1202.3177 — measured traffic below the
// unbeatable floor would mean the emulator drops words.
func TestMeasuredVolumeRespectsLowerBounds(t *testing.T) {
	s, err := Run(testSpec(hypermm.OnePort))
	if err != nil {
		t.Fatal(err)
	}
	rows := VolumeRows(s)
	if len(rows) != len(s.Cells) {
		t.Fatalf("got %d rows for %d cells", len(rows), len(s.Cells))
	}
	for _, r := range rows {
		if r.Ratio < 1 {
			t.Errorf("%v n=%d p=%d: measured %.1f words/proc below lower bound %.1f",
				r.Alg, r.N, r.P, r.WordsPerProc, r.Bound3D)
		}
	}
}

// TestRegionMapDiffUnderThreshold is the acceptance gate for the
// empirical region maps: at two of the paper's Figure 13 settings —
// the headline (t_s=150, t_w=3) and the low-latency panel (t_s=10,
// t_w=3) — the measured best algorithm may disagree with the analytic
// winner on at most 25% of cells (documented in DESIGN.md §10;
// disagreements concentrate on crossover boundaries where the two
// sides are near-ties).
func TestRegionMapDiffUnderThreshold(t *testing.T) {
	const threshold = 0.25
	s, err := Run(testSpec(hypermm.OnePort))
	if err != nil {
		t.Fatal(err)
	}
	for _, setting := range [][2]float64{{150, 3}, {10, 3}} {
		d := NewMapDiff(s, setting[0], setting[1])
		if d.Cells == 0 {
			t.Fatalf("t_s=%g t_w=%g: no cells in diff", setting[0], setting[1])
		}
		if f := d.Fraction(); f > threshold {
			t.Errorf("t_s=%g t_w=%g: disagreement %.1f%% above %.0f%% threshold\n%s",
				setting[0], setting[1], 100*f, 100*threshold, d.Render())
		}
	}
}

func TestFitRejectsBadReference(t *testing.T) {
	s, err := Run(Spec{Ports: hypermm.OnePort, Ns: []int{16}, Ps: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range [][2]float64{{0, 3}, {150, 0}, {-1, 3}} {
		if _, err := Fit(s, ref[0], ref[1]); err == nil {
			t.Errorf("Fit accepted reference ts=%g tw=%g", ref[0], ref[1])
		}
	}
}

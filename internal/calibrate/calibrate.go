// Package calibrate closes the loop between the paper's analytic cost
// model and the channel-level emulator: it runs deterministic
// measurement sweeps over (algorithm, n, p) on the simulated hypercube,
// fits effective (t_s, t_w) machine parameters and per-algorithm
// residual correction factors to the measured simulated times by least
// squares, and packages the result as a versioned JSON calibration
// profile that cmd/hmmd can load so every plan the daemon serves is
// measurement-driven instead of faith-in-Table-2. It also quantifies
// the model: per-algorithm prediction-error reports, measured
// communication volume against the memory-independent lower bounds of
// Ballard/Demmel et al. (arXiv:1202.3177), and empirical best-algorithm
// region maps diffed cell by cell against the analytic Figure 13/14
// maps.
//
// Everything in this package is deterministic: the same Spec always
// produces byte-identical profiles and reports, regardless of worker
// count or goroutine scheduling.
package calibrate

import (
	"fmt"
	"runtime"
	"sync"

	"hypermm"
)

// Spec describes one measurement sweep.
type Spec struct {
	Ports hypermm.PortModel
	// Ns and Ps are the matrix and machine sizes of the grid. Every P
	// must be a power of two; cells an algorithm cannot run (layout or
	// applicability) are skipped, not errors.
	Ns, Ps []int
	// Algs is the candidate set; nil means hypermm.Candidates(Ports),
	// the same set the planner and the region maps choose from.
	Algs []hypermm.Algorithm
	// Workers bounds the number of concurrent cell emulations;
	// 0 means GOMAXPROCS.
	Workers int
}

// Measurement is one successfully emulated sweep cell: the measured
// communication coefficients and volume of one algorithm at one (n, p).
type Measurement struct {
	Alg hypermm.Algorithm
	N   int
	P   int
	// A and B are the measured communication-time coefficients —
	// simulated elapsed time with (t_s, t_w) = (1, 0) and (0, 1),
	// computation free — directly comparable to the analytic Table 2
	// (a, b) from hypermm.Overhead.
	A, B float64
	// Words is the total payload words sent across all processors.
	Words int64
}

// Time is the measured communication time at machine parameters
// (ts, tw): ts*A + tw*B (the emulator's clock is exactly linear in
// them).
func (m *Measurement) Time(ts, tw float64) float64 { return ts*m.A + tw*m.B }

// Sweep is the outcome of one measurement sweep: the cells that ran,
// in deterministic (algorithm, n, p) order.
type Sweep struct {
	Spec  Spec
	Cells []Measurement
}

// Run executes the sweep: for every (algorithm, n, p) cell it runs the
// real SPMD program twice on the emulator — (t_s, t_w) = (1, 0) and
// (0, 1), computation free — to measure the cell's communication
// coefficients, skipping cells the algorithm cannot run. Cells are
// emulated concurrently over a bounded worker pool; the assembled
// result is identical regardless of scheduling.
func Run(spec Spec) (*Sweep, error) {
	if len(spec.Ns) == 0 || len(spec.Ps) == 0 {
		return nil, fmt.Errorf("calibrate: sweep needs at least one n and one p")
	}
	for _, n := range spec.Ns {
		if n < 1 {
			return nil, fmt.Errorf("calibrate: invalid matrix size n=%d", n)
		}
	}
	for _, p := range spec.Ps {
		if p < 2 || p&(p-1) != 0 {
			return nil, fmt.Errorf("calibrate: machine size p=%d is not a power of two >= 2", p)
		}
	}
	if spec.Algs == nil {
		spec.Algs = hypermm.Candidates(spec.Ports)
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type cell struct {
		alg  hypermm.Algorithm
		n, p int
	}
	var cells []cell
	for _, alg := range spec.Algs {
		for _, n := range spec.Ns {
			for _, p := range spec.Ps {
				cells = append(cells, cell{alg, n, p})
			}
		}
	}

	// Each slot is filled independently; compacting in slot order keeps
	// the output deterministic for any worker count.
	results := make([]*Measurement, len(cells))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = measure(c.alg, c.n, c.p, spec.Ports)
		}(i, c)
	}
	wg.Wait()

	sw := &Sweep{Spec: spec}
	for _, m := range results {
		if m != nil {
			sw.Cells = append(sw.Cells, *m)
		}
	}
	if len(sw.Cells) == 0 {
		return nil, fmt.Errorf("calibrate: no cell of the sweep was runnable")
	}
	return sw, nil
}

// measure emulates one cell, or returns nil if the algorithm cannot
// run there (inapplicable or layout-impossible sizes).
func measure(alg hypermm.Algorithm, n, p int, ports hypermm.PortModel) *Measurement {
	if !hypermm.Applicable(alg, float64(n), float64(p)) {
		return nil
	}
	A := hypermm.RandomMatrix(n, n, 7)
	B := hypermm.RandomMatrix(n, n, 8)
	m := &Measurement{Alg: alg, N: n, P: p}
	for i, pair := range [][2]float64{{1, 0}, {0, 1}} {
		res, err := hypermm.Run(alg, hypermm.Config{
			P: p, Ports: ports, Ts: pair[0], Tw: pair[1], Tc: 0,
		}, A, B)
		if err != nil {
			return nil
		}
		if i == 0 {
			m.A = res.Elapsed
			m.Words = res.Comm.Words
		} else {
			m.B = res.Elapsed
		}
	}
	return m
}

// ByAlg groups the sweep's cells by algorithm, preserving order.
func (s *Sweep) ByAlg() map[hypermm.Algorithm][]Measurement {
	out := map[hypermm.Algorithm][]Measurement{}
	for _, m := range s.Cells {
		out[m.Alg] = append(out[m.Alg], m)
	}
	return out
}

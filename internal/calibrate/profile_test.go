package calibrate

import (
	"strings"
	"testing"
)

// goodProfile returns a minimal valid profile for mutation tests.
func goodProfile() *Profile {
	return &Profile{
		Version:   ProfileVersion,
		PortModel: "one",
		RefTs:     150, RefTw: 3,
		TsEff: 148.5, TwEff: 2.9,
		Ns: []int{16, 32},
		Ps: []int{4, 16},
		Algorithms: map[string]AlgCalibration{
			"cannon": {Correction: 1.02, Cells: 4, MaxRelErr: 0.05, MeanRelErr: 0.02,
				UncalMaxRelErr: 0.1, UncalMeanRelErr: 0.04, WorstN: 32, WorstP: 16},
		},
	}
}

func TestProfileRoundTrip(t *testing.T) {
	p := goodProfile()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("round trip changed profile:\n%s\nvs\n%s", data, data2)
	}
	m, err := q.Model()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("valid profile produced nil model")
	}
}

func TestParseRejectsBadProfiles(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Profile)
		want   string
	}{
		{"wrong version", func(p *Profile) { p.Version = 99 }, "version"},
		{"bad port model", func(p *Profile) { p.PortModel = "warp" }, "port model"},
		{"zero ref ts", func(p *Profile) { p.RefTs = 0 }, "ref_ts"},
		{"negative ts eff", func(p *Profile) { p.TsEff = -1 }, "ts_eff"},
		{"no algorithms", func(p *Profile) { p.Algorithms = nil }, "no algorithm"},
		{"unknown algorithm", func(p *Profile) {
			p.Algorithms["hyperwarp"] = p.Algorithms["cannon"]
		}, "algorithm"},
		{"negative correction", func(p *Profile) {
			ac := p.Algorithms["cannon"]
			ac.Correction = -0.5
			p.Algorithms["cannon"] = ac
		}, "correction"},
		{"zero cells", func(p *Profile) {
			ac := p.Algorithms["cannon"]
			ac.Cells = 0
			p.Algorithms["cannon"] = ac
		}, "cells"},
		{"negative error stat", func(p *Profile) {
			ac := p.Algorithms["cannon"]
			ac.MaxRelErr = -0.1
			p.Algorithms["cannon"] = ac
		}, "max_rel_err"},
		{"bad sweep n", func(p *Profile) { p.Ns = []int{0} }, "n=0"},
		{"non-power-of-two p", func(p *Profile) { p.Ps = []int{6} }, "power of two"},
	}
	for _, tc := range cases {
		p := goodProfile()
		tc.mutate(p)
		data, err := p.Marshal()
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse accepted invalid profile", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRejectsMalformedJSON(t *testing.T) {
	for _, data := range []string{
		"",
		"{",
		"[]",
		`{"version": "one"}`,
		`{"version": 1, "ts_eff": "NaN"}`,
	} {
		if _, err := Parse([]byte(data)); err == nil {
			t.Errorf("Parse accepted %q", data)
		}
	}
}

// Non-finite floats cannot be expressed in JSON literals, but a
// hand-edited profile can smuggle huge exponents that overflow to +Inf
// on some paths or omit required fields (Go zero values). Both must be
// rejected.
func TestParseRejectsMissingFields(t *testing.T) {
	if _, err := Parse([]byte(`{"version": 1, "port_model": "one"}`)); err == nil {
		t.Error("Parse accepted profile with zero-valued parameters")
	}
	huge := `{"version":1,"port_model":"one","ref_ts":150,"ref_tw":3,` +
		`"ts_eff":1e999,"tw_eff":3,"ns":[16],"ps":[4],` +
		`"algorithms":{"cannon":{"correction":1,"cells":1}}}`
	if _, err := Parse([]byte(huge)); err == nil {
		t.Error("Parse accepted profile with overflowing ts_eff")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nope.json"); err == nil {
		t.Error("Load of a missing file succeeded")
	}
}

package calibrate

import (
	"math"
	"testing"
)

// FuzzProfileParse checks the profile parser's invariant: whatever
// bytes arrive, Parse either rejects them or returns a profile whose
// every coefficient is safe to plan with — positive, finite, known
// algorithm names, a buildable model. The daemon loads these files at
// startup, so an accepted-but-poisoned profile would corrupt every
// plan it serves.
func FuzzProfileParse(f *testing.F) {
	good, err := goodProfile().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"port_model":"one","ref_ts":150,"ref_tw":3,"ts_eff":-1,"tw_eff":3,"algorithms":{"cannon":{"correction":1,"cells":1}}}`))
	f.Add([]byte(`{"version":1,"port_model":"one","ref_ts":150,"ref_tw":3,"ts_eff":1e999,"tw_eff":3,"algorithms":{"cannon":{"correction":0,"cells":1}}}`))
	f.Add([]byte(`{"version":1,"port_model":"multi","ref_ts":1,"ref_tw":1,"ts_eff":1,"tw_eff":1,"ps":[3],"algorithms":{"3dd":{"correction":1,"cells":2}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return // rejected: fine
		}
		if p.Version != ProfileVersion {
			t.Fatalf("accepted version %d", p.Version)
		}
		for _, v := range []float64{p.RefTs, p.RefTw, p.TsEff, p.TwEff} {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("accepted non-positive/non-finite parameter %g in %s", v, data)
			}
		}
		if len(p.Algorithms) == 0 {
			t.Fatalf("accepted profile without algorithms: %s", data)
		}
		for name, ac := range p.Algorithms {
			if !(ac.Correction > 0) || math.IsInf(ac.Correction, 0) || math.IsNaN(ac.Correction) {
				t.Fatalf("accepted correction %g for %s", ac.Correction, name)
			}
			if ac.Cells < 1 {
				t.Fatalf("accepted cells=%d for %s", ac.Cells, name)
			}
		}
		if _, err := p.Model(); err != nil {
			t.Fatalf("accepted profile does not build a model: %v", err)
		}
	})
}

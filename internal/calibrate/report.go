package calibrate

import (
	"fmt"
	"math"
	"strings"

	"hypermm"
)

// ErrorReport renders the profile's per-algorithm prediction accuracy
// as a text table: the fitted correction, the raw analytic model's
// relative errors, and the calibrated model's, with the worst cell.
func ErrorReport(p *Profile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Calibration fit (%s-port, ref t_s=%g t_w=%g)\n", p.PortModel, p.RefTs, p.RefTw)
	fmt.Fprintf(&sb, "effective t_s=%.6g (x%.4f)  effective t_w=%.6g (x%.4f)\n",
		p.TsEff, p.TsEff/p.RefTs, p.TwEff, p.TwEff/p.RefTw)
	fmt.Fprintf(&sb, "%-10s %6s %10s | %9s %9s | %9s %9s %12s\n",
		"algorithm", "cells", "correction", "ana max", "ana mean", "cal max", "cal mean", "worst cell")
	for _, name := range p.sortedAlgNames() {
		ac := p.Algorithms[name]
		fmt.Fprintf(&sb, "%-10s %6d %10.4f | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% n=%-4d p=%d\n",
			name, ac.Cells, ac.Correction,
			100*ac.UncalMaxRelErr, 100*ac.UncalMeanRelErr,
			100*ac.MaxRelErr, 100*ac.MeanRelErr,
			ac.WorstN, ac.WorstP)
	}
	return sb.String()
}

// VolumeRow compares one cell's measured communication volume against
// the memory-independent communication lower bounds for matrix
// multiplication (Ballard, Demmel, Holtz, Lipshitz, Schwartz,
// arXiv:1202.3177).
type VolumeRow struct {
	Alg  hypermm.Algorithm
	N, P int
	// WordsPerProc is the measured average payload words sent per
	// processor.
	WordsPerProc float64
	// Bound3D is the memory-independent per-processor lower bound
	// n^2 / p^(2/3) that holds for any (even replication-heavy "3D")
	// schedule; Bound2D is the minimal-memory bound n^2 / p^(1/2).
	Bound3D, Bound2D float64
	// Ratio is WordsPerProc / Bound3D: how far above the unbeatable
	// floor the algorithm's measured traffic sits.
	Ratio float64
}

// VolumeRows computes the lower-bound comparison for every sweep cell.
func VolumeRows(s *Sweep) []VolumeRow {
	rows := make([]VolumeRow, 0, len(s.Cells))
	for _, m := range s.Cells {
		n2 := float64(m.N) * float64(m.N)
		b3 := n2 / math.Pow(float64(m.P), 2.0/3)
		b2 := n2 / math.Sqrt(float64(m.P))
		wpp := float64(m.Words) / float64(m.P)
		rows = append(rows, VolumeRow{
			Alg: m.Alg, N: m.N, P: m.P,
			WordsPerProc: wpp, Bound3D: b3, Bound2D: b2, Ratio: wpp / b3,
		})
	}
	return rows
}

// VolumeReport renders the measured-communication-volume table. Every
// ratio must be >= 1 up to rounding: measured traffic below the lower
// bound would mean the emulator is not counting words it moves.
func VolumeReport(s *Sweep) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Measured communication volume vs. memory-independent lower bounds (arXiv:1202.3177)\n")
	fmt.Fprintf(&sb, "%-10s %5s %6s %14s %14s %14s %8s\n",
		"algorithm", "n", "p", "words/proc", "n^2/p^(2/3)", "n^2/p^(1/2)", "ratio")
	for _, r := range VolumeRows(s) {
		fmt.Fprintf(&sb, "%-10s %5d %6d %14.1f %14.1f %14.1f %8.2f\n",
			r.Alg.Name(), r.N, r.P, r.WordsPerProc, r.Bound3D, r.Bound2D, r.Ratio)
	}
	return sb.String()
}

package calibrate

import (
	"fmt"
	"math"
	"sort"

	"hypermm"
)

// Fit fits the calibration profile to a measured sweep at the given
// reference machine parameters (the nominal t_s, t_w the profile will
// mostly serve; they weight the fit).
//
// Stage 1 — effective machine parameters. Every cell contributes one
// observation: the measured time T_i = refTs*A_i + refTw*B_i against
// the analytic prediction ts*a_i + tw*b_i with (a_i, b_i) from Table 2.
// We solve the 2x2 normal equations of the relative least-squares
// problem
//
//	min over (ts, tw) of sum_i ((T_i - ts*a_i - tw*b_i) / R_i)^2
//
// where R_i = refTs*a_i + refTw*b_i is the analytic time at the
// reference parameters. Dividing by R_i makes each cell count equally;
// unweighted least squares would be dominated by the largest (n, p)
// cells, whose absolute times are orders of magnitude bigger.
//
// Stage 2 — per-algorithm residual corrections. With (tsEff, twEff)
// fixed, each algorithm gets the multiplicative factor minimizing its
// own relative squared residual: c = sum(y*q) / sum(q*q) over the
// algorithm's cells, with y = T_i/R_i and q = (tsEff*a_i+twEff*b_i)/R_i.
// The factor absorbs systematic model bias Table 2 cannot express —
// pipelining undercutting sequential phase bounds, ragged multi-port
// slices.
//
// The returned profile also carries per-algorithm prediction-error
// statistics for both the raw analytic model and the calibrated one,
// evaluated at the reference parameters.
func Fit(s *Sweep, refTs, refTw float64) (*Profile, error) {
	if !(refTs > 0) || !(refTw > 0) {
		return nil, fmt.Errorf("calibrate: reference parameters must be positive, got ts=%g tw=%g", refTs, refTw)
	}

	type obs struct {
		m      Measurement
		aA, bA float64 // analytic Table 2 coefficients
		tMeas  float64 // measured time at (refTs, refTw)
		tAna   float64 // analytic time at (refTs, refTw)
	}
	var observations []obs
	for _, m := range s.Cells {
		aA, bA, ok := hypermm.Overhead(m.Alg, float64(m.N), float64(m.P), s.Spec.Ports)
		if !ok {
			continue // emulator ran it but the model calls it inapplicable; don't fit what we can't predict
		}
		tAna := refTs*aA + refTw*bA
		if !(tAna > 0) {
			continue
		}
		observations = append(observations, obs{m: m, aA: aA, bA: bA, tMeas: m.Time(refTs, refTw), tAna: tAna})
	}
	if len(observations) < 2 {
		return nil, fmt.Errorf("calibrate: only %d usable cells, need at least 2", len(observations))
	}

	// Stage 1: 2x2 normal equations in the relative-residual space.
	var saa, sab, sbb, say, sby float64
	for _, o := range observations {
		xa, xb, y := o.aA/o.tAna, o.bA/o.tAna, o.tMeas/o.tAna
		saa += xa * xa
		sab += xa * xb
		sbb += xb * xb
		say += xa * y
		sby += xb * y
	}
	tsEff, twEff := refTs, refTw
	if det := saa*sbb - sab*sab; math.Abs(det) > 1e-12 {
		tsEff = (say*sbb - sby*sab) / det
		twEff = (sby*saa - say*sab) / det
	}
	// A degenerate sweep (e.g. every cell startup-dominated) can drive a
	// parameter nonpositive; clamp to the nominal value rather than
	// emitting a profile no parser would accept.
	if !(tsEff > 0) || math.IsNaN(tsEff) || math.IsInf(tsEff, 0) {
		tsEff = refTs
	}
	if !(twEff > 0) || math.IsNaN(twEff) || math.IsInf(twEff, 0) {
		twEff = refTw
	}

	// Stage 2: per-algorithm ratio fit and error statistics.
	perAlg := map[string]*AlgCalibration{}
	type accum struct{ yq, qq float64 }
	acc := map[string]*accum{}
	for _, o := range observations {
		name := o.m.Alg.Name()
		a, ok := acc[name]
		if !ok {
			a = &accum{}
			acc[name] = a
		}
		q := (tsEff*o.aA + twEff*o.bA) / o.tAna
		y := o.tMeas / o.tAna
		a.yq += y * q
		a.qq += q * q
	}
	for name, a := range acc {
		c := 1.0
		if a.qq > 0 {
			c = a.yq / a.qq
		}
		if !(c > 0) || math.IsNaN(c) || math.IsInf(c, 0) {
			c = 1
		}
		perAlg[name] = &AlgCalibration{Correction: c}
	}
	for _, o := range observations {
		ac := perAlg[o.m.Alg.Name()]
		tCal := ac.Correction * (tsEff*o.aA + twEff*o.bA)
		relCal := math.Abs(tCal-o.tMeas) / o.tMeas
		relAna := math.Abs(o.tAna-o.tMeas) / o.tMeas
		ac.Cells++
		ac.MeanRelErr += relCal
		ac.UncalMeanRelErr += relAna
		if relCal > ac.MaxRelErr {
			ac.MaxRelErr = relCal
			ac.WorstN, ac.WorstP = o.m.N, o.m.P
		}
		if relAna > ac.UncalMaxRelErr {
			ac.UncalMaxRelErr = relAna
		}
	}
	algs := map[string]AlgCalibration{}
	for name, ac := range perAlg {
		ac.MeanRelErr /= float64(ac.Cells)
		ac.UncalMeanRelErr /= float64(ac.Cells)
		algs[name] = *ac
	}

	return &Profile{
		Version:    ProfileVersion,
		PortModel:  portName(s.Spec.Ports),
		RefTs:      refTs,
		RefTw:      refTw,
		TsEff:      tsEff,
		TwEff:      twEff,
		Ns:         append([]int(nil), s.Spec.Ns...),
		Ps:         append([]int(nil), s.Spec.Ps...),
		Algorithms: algs,
	}, nil
}

// MaxRelErr returns the largest calibrated per-cell relative error in
// the profile across all algorithms.
func (p *Profile) MaxRelErr() float64 {
	var worst float64
	for _, ac := range p.Algorithms {
		if ac.MaxRelErr > worst {
			worst = ac.MaxRelErr
		}
	}
	return worst
}

// sortedAlgNames returns the profile's algorithm names in stable order.
func (p *Profile) sortedAlgNames() []string {
	names := make([]string, 0, len(p.Algorithms))
	for name := range p.Algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func portName(pm hypermm.PortModel) string {
	if pm == hypermm.MultiPort {
		return "multi"
	}
	return "one"
}

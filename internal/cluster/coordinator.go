package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hypermm"
	"hypermm/internal/obs"
)

// Typed coordinator errors, mapped to HTTP statuses by internal/server.
var (
	// ErrDraining reports that the coordinator has stopped accepting
	// jobs for shutdown.
	ErrDraining = errors.New("cluster: coordinator draining")
	// ErrNoWorkers reports that no healthy worker is registered (or
	// every one is draining or circuit-broken).
	ErrNoWorkers = errors.New("cluster: no healthy workers")
	// ErrWorkerLost reports that the job's worker died mid-flight and
	// the failover budget ran out before another worker finished it.
	ErrWorkerLost = errors.New("cluster: worker lost mid-job")
)

// Config sizes the coordinator.
type Config struct {
	// Addr is the TCP listen address for worker registrations
	// (e.g. "127.0.0.1:0").
	Addr string

	// ProbeInterval paces per-worker health pings (default 1s); a
	// worker silent for ProbeMisses intervals (default 3) is declared
	// dead and its in-flight jobs fail over.
	ProbeInterval time.Duration
	ProbeMisses   int

	// MaxRetries bounds re-dispatches of one job after worker death or
	// a busy answer (default 3); RetryBackoff is the initial backoff
	// between attempts, doubling each time (default 25ms).
	MaxRetries   int
	RetryBackoff time.Duration

	// BreakerThreshold consecutive abnormal job answers open a
	// worker's circuit for BreakerCooldown before a half-open trial
	// (defaults 3 and 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// MaxFrame bounds one received frame (default DefaultMaxFrame).
	MaxFrame int

	// Log receives worker-lifecycle events as structured records
	// (nil: silent).
	Log *slog.Logger

	// Tracer, when non-nil, records one span per dispatch attempt and
	// ingests the worker-side spans carried home in Result frames, so a
	// trace started at the HTTP handler covers the cross-process hop.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeMisses < 1 {
		c.ProbeMisses = 3
	}
	if c.MaxRetries < 1 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Log == nil {
		c.Log = obs.NopLogger()
	}
	return c
}

// outcome is what a dispatch attempt resolves to: a worker reply (with
// its decoded product) or a transport-level failure.
type outcome struct {
	reply     jobReply
	c         *hypermm.Matrix
	transport error // non-nil: the worker died before answering
}

type pendingJob struct {
	ch chan outcome // buffered(1); resolved exactly once
}

// workerConn is the coordinator's view of one registered worker. The
// coordinator mutex guards every mutable field; frame writes serialize
// on wmu so slow jobs don't block probes.
type workerConn struct {
	id    uint64
	name  string
	hello hello
	conn  net.Conn
	wmu   sync.Mutex

	pending  map[uint64]*pendingJob
	load     int   // dispatched, unanswered jobs
	jobs     int64 // cleanly completed jobs
	draining bool  // sent Goodbye; no new dispatches
	dead     bool
	brk      breaker

	lastSeen atomic.Int64 // unix nanos of the last frame read
}

// Coordinator accepts worker registrations and routes jobs across them.
type Coordinator struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	workers    map[uint64]*workerConn
	nextWorker uint64
	draining   bool
	submits    sync.WaitGroup // Submit calls in flight (for Drain)

	nextJob    atomic.Uint64
	dispatched atomic.Int64 // job frames sent
	completed  atomic.Int64 // jobs answered cleanly
	failovers  atomic.Int64 // re-dispatches after worker death
	busyRetry  atomic.Int64 // re-dispatches after a busy answer

	done      chan struct{} // closed on shutdown
	closeOnce sync.Once
}

// NewCoordinator listens on cfg.Addr and starts accepting workers.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Addr, err)
	}
	c := &Coordinator{
		cfg: cfg, ln: ln,
		workers: map[uint64]*workerConn{},
		done:    make(chan struct{}),
	}
	go c.acceptLoop()
	return c, nil
}

// Addr is the bound registration address workers join.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// WorkerCount reports the live (non-dead, non-draining) worker count.
func (c *Coordinator) WorkerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if !w.dead && !w.draining {
			n++
		}
	}
	return n
}

func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go c.handshake(conn)
	}
}

// handshake validates a worker's Hello and registers it.
func (c *Coordinator) handshake(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	mt, hdr, _, err := readFrame(br, c.cfg.MaxFrame)
	if err != nil || mt != msgHello {
		conn.Close()
		return
	}
	var h hello
	if err := json.Unmarshal(hdr, &h); err != nil {
		conn.Close()
		return
	}
	refuse := func(reason string) {
		_ = writeFrame(conn, msgWelcome, welcome{Version: ProtocolVersion, OK: false, Reason: reason}, nil)
		conn.Close()
		c.cfg.Log.Warn("cluster: worker refused", "worker", h.Name, "reason", reason)
	}
	if h.Version != ProtocolVersion {
		refuse(fmt.Sprintf("protocol version %d, want %d", h.Version, ProtocolVersion))
		return
	}
	if !hasCap(h.Capabilities, CapMatmul) {
		refuse(fmt.Sprintf("missing capability %q", CapMatmul))
		return
	}

	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		refuse("coordinator draining")
		return
	}
	c.nextWorker++
	w := &workerConn{
		id: c.nextWorker, name: h.Name, hello: h, conn: conn,
		pending: map[uint64]*pendingJob{},
		brk:     breaker{threshold: c.cfg.BreakerThreshold, cooldown: c.cfg.BreakerCooldown},
	}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	w.lastSeen.Store(time.Now().UnixNano())
	c.workers[w.id] = w
	c.mu.Unlock()

	if err := writeFrame(conn, msgWelcome, welcome{Version: ProtocolVersion, OK: true, WorkerID: w.id}, nil); err != nil {
		c.markDead(w, err)
		return
	}
	_ = conn.SetDeadline(time.Time{})
	c.cfg.Log.Info("cluster: worker joined", "worker", w.name, "addr", conn.RemoteAddr().String(), "id", w.id)
	go c.readLoop(w, br)
	go c.probeLoop(w)
}

func hasCap(caps []string, want string) bool {
	for _, c := range caps {
		if c == want {
			return true
		}
	}
	return false
}

// readLoop consumes one worker's frames until the connection dies.
func (c *Coordinator) readLoop(w *workerConn, br *bufio.Reader) {
	for {
		mt, hdr, tail, err := readFrame(br, c.cfg.MaxFrame)
		if err != nil {
			c.markDead(w, err)
			return
		}
		w.lastSeen.Store(time.Now().UnixNano())
		switch mt {
		case msgResult:
			var rep jobReply
			if err := json.Unmarshal(hdr, &rep); err != nil {
				c.markDead(w, fmt.Errorf("cluster: bad result header: %w", err))
				return
			}
			c.deliver(w, rep, tail)
		case msgPong:
			// lastSeen already refreshed; the payload is telemetry only.
		case msgGoodbye:
			c.mu.Lock()
			w.draining = true
			c.mu.Unlock()
			c.cfg.Log.Info("cluster: worker draining", "worker", w.name, "reason", "goodbye")
		}
	}
}

// deliver resolves one job reply against its pending waiter and feeds
// the worker's circuit breaker.
func (c *Coordinator) deliver(w *workerConn, rep jobReply, tail []byte) {
	c.mu.Lock()
	p, ok := w.pending[rep.ID]
	if ok {
		delete(w.pending, rep.ID)
		w.load--
	}
	switch rep.ErrKind {
	case kindRun, kindBadJob:
		// The worker answered abnormally: a broken executor, not a
		// property of the request. Feed the breaker.
		w.brk.failure(time.Now())
	case kindBusy:
		// Saturation is load, not sickness; don't poison the breaker,
		// but don't reward it either.
		w.brk.trial = false
	default:
		// Clean results and typed job-level faults (link_down,
		// deadline) mean the worker machinery executed faithfully.
		w.jobs++
		w.brk.success()
	}
	c.mu.Unlock()
	if !ok {
		return // waiter gave up (ctx canceled) or job was failed over
	}
	var C *hypermm.Matrix
	if rep.Err == "" {
		var err error
		if C, _, err = takeMatrix(tail, rep.Rows, rep.Cols); err != nil {
			p.ch <- outcome{transport: fmt.Errorf("cluster: bad result tail from %s: %w", w.name, err)}
			return
		}
	}
	p.ch <- outcome{reply: rep, c: C}
}

// probeLoop pings the worker and declares it dead after too much
// silence; any frame (result, pong) counts as life.
func (c *Coordinator) probeLoop(w *workerConn) {
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-c.done:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		dead := w.dead
		c.mu.Unlock()
		if dead {
			return
		}
		silent := time.Since(time.Unix(0, w.lastSeen.Load()))
		if silent > time.Duration(c.cfg.ProbeMisses)*c.cfg.ProbeInterval {
			c.markDead(w, fmt.Errorf("cluster: no frames for %v", silent.Round(time.Millisecond)))
			return
		}
		seq++
		if err := c.send(w, msgPing, ping{Seq: seq}, nil); err != nil {
			c.markDead(w, err)
			return
		}
	}
}

// markDead removes the worker and fails its in-flight jobs over: each
// pending waiter gets a transport outcome, which its Submit loop turns
// into a re-dispatch on another worker.
func (c *Coordinator) markDead(w *workerConn, cause error) {
	c.mu.Lock()
	if w.dead {
		c.mu.Unlock()
		return
	}
	w.dead = true
	delete(c.workers, w.id)
	orphans := make([]*pendingJob, 0, len(w.pending))
	for id, p := range w.pending {
		delete(w.pending, id)
		orphans = append(orphans, p)
	}
	w.load = 0
	c.mu.Unlock()
	w.conn.Close()
	if len(orphans) > 0 || !isClosedConn(cause) {
		c.cfg.Log.Warn("cluster: worker lost", "worker", w.name, "cause", fmt.Sprint(cause), "failover_jobs", len(orphans))
	}
	for _, p := range orphans {
		p.ch <- outcome{transport: fmt.Errorf("%w: worker %q: %v", ErrWorkerLost, w.name, cause)}
	}
}

func isClosedConn(err error) bool {
	return err == nil || errors.Is(err, net.ErrClosed)
}

// pick selects the least-loaded healthy worker (ties to the oldest
// registration, so routing is deterministic given loads) and registers
// the pending job on it under one lock, so a concurrent markDead can
// never strand the registration. Workers in exclude (already tried for
// this job) are skipped. Closed breakers are preferred; with none, one
// cooldown-expired breaker may admit a half-open trial.
func (c *Coordinator) pick(id uint64, exclude map[uint64]bool) (*workerConn, *pendingJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	candidates := func(trial bool) *workerConn {
		var best *workerConn
		for _, w := range c.workers {
			if w.dead || w.draining || exclude[w.id] {
				continue
			}
			if trial {
				if !w.brk.canTrial(time.Now()) {
					continue
				}
			} else if !w.brk.closed() {
				continue
			}
			if best == nil || w.load < best.load || (w.load == best.load && w.id < best.id) {
				best = w
			}
		}
		return best
	}
	w := candidates(false)
	if w == nil {
		if w = candidates(true); w == nil {
			return nil, nil
		}
		w.brk.beginTrial()
	}
	p := &pendingJob{ch: make(chan outcome, 1)}
	w.pending[id] = p
	w.load++
	return w, p
}

// cancelPending abandons a dispatched job whose waiter gave up; a late
// reply then resolves against no waiter and is dropped.
func (c *Coordinator) cancelPending(w *workerConn, id uint64) {
	c.mu.Lock()
	if _, ok := w.pending[id]; ok {
		delete(w.pending, id)
		w.load--
	}
	c.mu.Unlock()
}

// JobMeta is the QoS attribution a job carries across the wire: the
// admitting tenant, its class name, and the numeric priority (0 most
// important). The zero value means unattributed default work.
type JobMeta struct {
	Tenant   string
	Class    string
	Priority int
}

// Submit routes one multiplication to a worker and returns its result,
// failing over with exponential backoff when the worker dies mid-job
// or answers busy. The result is byte-identical to hypermm.Run of the
// same job: workers run the unmodified emulator, which is deterministic
// in (alg, cfg, A, B) and independent of which process hosts it.
func (c *Coordinator) Submit(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
	return c.SubmitMeta(ctx, JobMeta{}, alg, cfg, A, B)
}

// SubmitMeta is Submit with QoS attribution: the meta rides the job
// frame so the worker can account the run to the right tenant, and the
// retry backoff scales with priority — less important jobs back off
// longer after a busy answer, yielding dispatch slots to interactive
// traffic contending for the same saturated workers.
func (c *Coordinator) SubmitMeta(ctx context.Context, meta JobMeta, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, ErrDraining
	}
	c.submits.Add(1)
	c.mu.Unlock()
	defer c.submits.Done()

	spec := jobSpec{
		Algorithm: alg.Name(), N: A.Rows, P: cfg.P, Ports: int(cfg.Ports),
		Ts: cfg.Ts, Tw: cfg.Tw, Tc: cfg.Tc,
		Deadline: cfg.Deadline, Fault: toWireFault(cfg.Faults),
		Tenant: meta.Tenant, Class: meta.Class, Priority: meta.Priority,
	}
	if A.Rows != A.Cols || B.Rows != A.Rows || B.Cols != A.Rows {
		return nil, fmt.Errorf("cluster: operands must be square and equal-sized, got %dx%d and %dx%d",
			A.Rows, A.Cols, B.Rows, B.Cols)
	}
	tail := appendMatrix(make([]byte, 0, 2*len(A.Data)*8), A)
	tail = appendMatrix(tail, B)

	// Trace context from the submitting request: each dispatch attempt
	// gets its own span (parented under the caller's), and the attempt's
	// context rides the Job frame so the worker parents its execute span
	// under this exact attempt. With no Tracer the caller's context is
	// still forwarded verbatim — a worker running with tracing enabled
	// can then contribute its half even when the coordinator records
	// nothing locally.
	callerSC, _ := obs.FromContext(ctx)

	var exclude map[uint64]bool
	// Priority scales the retry backoff: best-effort (priority 2) waits
	// 3x as long as interactive (priority 0) after each busy answer, so
	// under contention the retry slots skew toward important traffic.
	backoff := c.cfg.RetryBackoff
	if meta.Priority > 0 {
		backoff *= time.Duration(meta.Priority + 1)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if deadline, ok := ctx.Deadline(); ok {
			ms := time.Until(deadline).Milliseconds()
			if ms <= 0 {
				return nil, ctx.Err()
			}
			spec.WallMs = ms
		}
		spec.ID = c.nextJob.Add(1)
		w, p := c.pick(spec.ID, exclude)
		if w == nil && len(exclude) > 0 {
			// Every untried worker is gone; the failed ones may still
			// be the only capacity there is (e.g. a lone busy worker).
			exclude = nil
			w, p = c.pick(spec.ID, nil)
		}
		if w == nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, ErrNoWorkers
		}
		attrs := []obs.Attr{
			obs.Int("attempt", attempt), obs.String("worker", w.name),
			obs.String("algorithm", spec.Algorithm), obs.Int("n", spec.N), obs.Int("p", spec.P),
		}
		if meta.Tenant != "" {
			attrs = append(attrs, obs.String("tenant", meta.Tenant), obs.String("class", meta.Class))
		}
		_, aspan := c.cfg.Tracer.StartSpan(ctx, "cluster.attempt", attrs...)
		if asc := aspan.Context(); asc.Valid() {
			spec.TraceID, spec.SpanID = asc.TraceID, asc.SpanID
		} else if callerSC.Valid() {
			spec.TraceID, spec.SpanID = callerSC.TraceID, callerSC.SpanID
		}
		c.dispatched.Add(1)
		if err := c.send(w, msgJob, spec, tail); err != nil {
			c.markDead(w, err) // flushes p with a transport outcome
		}

		var out outcome
		select {
		case out = <-p.ch:
		case <-ctx.Done():
			c.cancelPending(w, spec.ID)
			aspan.Set(obs.String("outcome", "canceled"))
			aspan.End()
			return nil, ctx.Err()
		case <-c.done:
			c.cancelPending(w, spec.ID)
			aspan.Set(obs.String("outcome", "draining"))
			aspan.End()
			return nil, ErrDraining
		}
		if out.transport == nil {
			c.cfg.Tracer.Ingest(out.reply.Spans)
		}

		switch {
		case out.transport != nil:
			aspan.Set(obs.String("outcome", "worker_lost"))
			aspan.End()
			c.failovers.Add(1)
			lastErr = out.transport
			exclude = mark(exclude, w.id)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		case out.reply.ErrKind == kindBusy:
			aspan.Set(obs.String("outcome", "busy"))
			aspan.End()
			c.busyRetry.Add(1)
			lastErr = fmt.Errorf("%w: %s: %s", ErrBusy, w.name, out.reply.Err)
			exclude = mark(exclude, w.id)
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff *= 2
		case out.reply.Err != "":
			kind := out.reply.ErrKind
			if kind == "" {
				kind = "error"
			}
			aspan.Set(obs.String("outcome", kind))
			aspan.End()
			return nil, remoteError(w.name, out.reply)
		default:
			aspan.Set(obs.String("outcome", "ok"))
			aspan.End()
			c.completed.Add(1)
			c.cfg.Log.Debug("cluster: job done",
				"job", spec.ID, "trace_id", spec.TraceID, "worker", w.name,
				"algorithm", spec.Algorithm, "n", spec.N, "p", spec.P, "attempts", attempt+1)
			return &hypermm.Result{C: out.c, Elapsed: out.reply.Elapsed, Comm: out.reply.Comm}, nil
		}
	}
	return nil, fmt.Errorf("cluster: job failed after %d attempts: %w", c.cfg.MaxRetries+1, lastErr)
}

func mark(m map[uint64]bool, id uint64) map[uint64]bool {
	if m == nil {
		m = map[uint64]bool{}
	}
	m[id] = true
	return m
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// remoteError rebuilds a typed error from the wire so errors.Is keeps
// working across the process boundary.
func remoteError(worker string, rep jobReply) error {
	switch rep.ErrKind {
	case kindLinkDown:
		return fmt.Errorf("%w (worker %s: %s)", hypermm.ErrLinkDown, worker, rep.Err)
	case kindDeadline:
		return fmt.Errorf("%w (worker %s: %s)", hypermm.ErrDeadline, worker, rep.Err)
	case kindCanceled:
		return fmt.Errorf("%w (worker %s: %s)", context.DeadlineExceeded, worker, rep.Err)
	default:
		return fmt.Errorf("cluster: worker %s: %s", worker, rep.Err)
	}
}

func (c *Coordinator) send(w *workerConn, mt byte, header any, tail []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, mt, header, tail)
}

// Drain stops job intake, waits (bounded by ctx) for in-flight
// submissions, then says goodbye to every worker and shuts the
// listener down. Safe to call more than once.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() { c.submits.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		c.shutdown()
		return ctx.Err()
	}
	c.shutdown()
	return nil
}

// Close shuts the coordinator down immediately; in-flight submissions
// fail with ErrDraining.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	c.shutdown()
}

func (c *Coordinator) shutdown() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.ln.Close()
		c.mu.Lock()
		ws := make([]*workerConn, 0, len(c.workers))
		for _, w := range c.workers {
			ws = append(ws, w)
		}
		c.mu.Unlock()
		for _, w := range ws {
			_ = c.send(w, msgGoodbye, struct{}{}, nil)
			w.conn.Close()
		}
	})
}

// WorkerStats is one worker's row in Stats.
type WorkerStats struct {
	ID       uint64 `json:"id"`
	Name     string `json:"name"`
	Jobs     int64  `json:"jobs"`     // cleanly completed
	Inflight int    `json:"inflight"` // dispatched, unanswered
	Breaker  string `json:"breaker"`  // closed | open | half-open
	Draining bool   `json:"draining"`
}

// Stats is a point-in-time snapshot for /metrics and the tests.
type Stats struct {
	Workers     []WorkerStats `json:"workers"`
	Dispatched  int64         `json:"dispatched"`
	Completed   int64         `json:"completed"`
	Failovers   int64         `json:"failovers"`
	BusyRetries int64         `json:"busy_retries"`
	Draining    bool          `json:"draining"`
}

// Stats snapshots the cluster, workers sorted by registration order.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := Stats{
		Dispatched:  c.dispatched.Load(),
		Completed:   c.completed.Load(),
		Failovers:   c.failovers.Load(),
		BusyRetries: c.busyRetry.Load(),
		Draining:    c.draining,
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStats{
			ID: w.id, Name: w.name, Jobs: w.jobs, Inflight: w.load,
			Breaker: w.brk.state(now), Draining: w.draining,
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

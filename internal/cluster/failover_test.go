package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hypermm"
)

// fastCfg keeps failure-path tests snappy: aggressive probes and tiny
// backoffs.
func fastCfg() Config {
	return Config{
		ProbeInterval: 20 * time.Millisecond,
		ProbeMisses:   3,
		RetryBackoff:  time.Millisecond,
	}
}

// TestFailoverOnWorkerDeath is the kill-one-worker-mid-batch drill in
// miniature: the job lands on a worker that dies while holding it, and
// the coordinator must re-dispatch to the survivor and hand the client
// the correct result.
func TestFailoverOnWorkerDeath(t *testing.T) {
	started := make(chan struct{}, 1)
	stuck := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		<-ctx.Done() // never answers; the connection death is the signal
		return nil, ctx.Err()
	}
	coord, workers := testCluster(t, fastCfg(), stuck, LocalExec)

	A := hypermm.RandomMatrix(16, 16, 1)
	B := hypermm.RandomMatrix(16, 16, 2)
	local, err := hypermm.Run(hypermm.Cannon, testCfg, A, B)
	if err != nil {
		t.Fatal(err)
	}

	type answer struct {
		res *hypermm.Result
		err error
	}
	got := make(chan answer, 1)
	go func() {
		res, err := coord.Submit(context.Background(), hypermm.Cannon, testCfg, A, B)
		got <- answer{res, err}
	}()

	// Both workers start at load 0; the tie goes to the first
	// registration — the stuck one. Wait until it holds the job, then
	// kill it.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never reached the stuck worker")
	}
	workers[0].Abort()

	var ans answer
	select {
	case ans = <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("failover never completed")
	}
	if ans.err != nil {
		t.Fatalf("failover submit: %v", ans.err)
	}
	if ans.res.Elapsed != local.Elapsed || ans.res.Comm != local.Comm {
		t.Errorf("failover result diverged: %+v/%g vs local %+v/%g",
			ans.res.Comm, ans.res.Elapsed, local.Comm, local.Elapsed)
	}
	for i := range local.C.Data {
		if ans.res.C.Data[i] != local.C.Data[i] {
			t.Fatalf("failover product word %d differs", i)
		}
	}
	st := coord.Stats()
	if st.Failovers < 1 {
		t.Errorf("no failover recorded: %+v", st)
	}
	if len(st.Workers) != 1 {
		t.Errorf("dead worker still registered: %+v", st.Workers)
	}
}

// TestProbeDetectsSilentWorker kills a worker that holds no job; the
// health probe alone must notice and deregister it.
func TestProbeDetectsSilentWorker(t *testing.T) {
	coord, workers := testCluster(t, fastCfg(), LocalExec, LocalExec)
	workers[1].Abort()
	deadline := time.Now().Add(5 * time.Second)
	for coord.WorkerCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("probe never noticed the dead worker (count %d)", coord.WorkerCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainRefusesNewJobsWhileInflightFinish pins the drain contract:
// once Drain begins, new Submits are refused with ErrDraining, but the
// job already in flight completes normally and Drain waits for it.
func TestDrainRefusesNewJobsWhileInflightFinish(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	gated := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		<-release
		return hypermm.Run(alg, cfg, A, B)
	}
	coord, _ := testCluster(t, fastCfg(), gated)

	A := hypermm.RandomMatrix(8, 8, 1)
	B := hypermm.RandomMatrix(8, 8, 2)
	cfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}

	inflight := make(chan error, 1)
	go func() {
		_, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B)
		inflight <- err
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- coord.Drain(context.Background()) }()

	// Wait for the drain flag, then verify new work is refused.
	deadline := time.Now().Add(5 * time.Second)
	for !coord.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: got %v, want ErrDraining", err)
	}

	select {
	case err := <-drained:
		t.Fatalf("drain finished before the in-flight job did: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight job failed during drain: %v", err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished")
	}
}

// TestDrainRefusesNewWorkers: a draining coordinator refuses fresh
// registrations with a reason.
func TestDrainRefusesNewWorkers(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 1)
	gated := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return hypermm.Run(alg, cfg, A, B)
	}
	coord, _ := testCluster(t, fastCfg(), gated)
	A := hypermm.RandomMatrix(8, 8, 1)
	go coord.Submit(context.Background(), hypermm.Cannon, hypermm.Config{P: 4, Ts: 1, Tw: 1}, A, A)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	go coord.Drain(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for !coord.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain flag never set")
		}
		time.Sleep(time.Millisecond)
	}
	_, err := Join(ctx, coord.Addr().String(), WorkerConfig{Name: "late", Exec: LocalExec})
	if err == nil {
		t.Fatal("draining coordinator accepted a new worker")
	}
}

// TestBreakerOpensSkipsAndRecovers drives one worker's breaker through
// its whole lifecycle: consecutive abnormal answers open it, an open
// breaker removes the worker from routing, and after the cooldown a
// half-open trial with a now-healthy executor closes it again.
func TestBreakerOpensSkipsAndRecovers(t *testing.T) {
	var sick atomic.Bool
	sick.Store(true)
	flaky := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		if sick.Load() {
			return nil, errors.New("executor wedged")
		}
		return hypermm.Run(alg, cfg, A, B)
	}
	cfg := fastCfg()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 60 * time.Millisecond
	coord, _ := testCluster(t, cfg, flaky)

	A := hypermm.RandomMatrix(8, 8, 1)
	B := hypermm.RandomMatrix(8, 8, 2)
	jcfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}

	// Two abnormal answers reach the threshold; each surfaces to the
	// caller as a plain remote error (kindRun is not retryable).
	for i := 0; i < 2; i++ {
		if _, err := coord.Submit(context.Background(), hypermm.Cannon, jcfg, A, B); err == nil {
			t.Fatal("sick worker produced a result")
		}
	}
	if st := coord.Stats(); len(st.Workers) != 1 || st.Workers[0].Breaker != BreakerOpen {
		t.Fatalf("breaker not open after %d failures: %+v", 2, st.Workers)
	}

	// While open (cooldown not yet expired) the worker is unroutable.
	if _, err := coord.Submit(context.Background(), hypermm.Cannon, jcfg, A, B); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("open breaker still routable: %v", err)
	}

	// Past the cooldown, a half-open trial runs on the recovered
	// executor and closes the breaker.
	sick.Store(false)
	time.Sleep(cfg.BreakerCooldown + 20*time.Millisecond)
	res, err := coord.Submit(context.Background(), hypermm.Cannon, jcfg, A, B)
	if err != nil {
		t.Fatalf("half-open trial failed: %v", err)
	}
	local, _ := hypermm.Run(hypermm.Cannon, jcfg, A, B)
	if res.Elapsed != local.Elapsed {
		t.Error("post-recovery result diverged")
	}
	if st := coord.Stats(); st.Workers[0].Breaker != BreakerClosed {
		t.Fatalf("breaker not closed after successful trial: %+v", st.Workers)
	}
}

// TestBreakerShieldsHealthyWorker: with one sick and one healthy
// worker, opening the sick one's breaker must route everything to the
// healthy one.
func TestBreakerShieldsHealthyWorker(t *testing.T) {
	sick := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		return nil, errors.New("executor wedged")
	}
	cfg := fastCfg()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // never half-opens during the test
	coord, _ := testCluster(t, cfg, sick, LocalExec)

	A := hypermm.RandomMatrix(8, 8, 1)
	B := hypermm.RandomMatrix(8, 8, 2)
	jcfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}

	// Serial submits alternate onto the sick worker (ties go to the
	// older registration) until its breaker opens; after that every
	// job must land on the healthy one.
	failures := 0
	for i := 0; i < 10; i++ {
		if _, err := coord.Submit(context.Background(), hypermm.Cannon, jcfg, A, B); err != nil {
			failures++
		}
	}
	if failures == 0 || failures > int(cfg.BreakerThreshold) {
		t.Fatalf("breaker admitted %d failures, want 1..%d", failures, cfg.BreakerThreshold)
	}
	st := coord.Stats()
	if st.Workers[0].Breaker != BreakerOpen {
		t.Errorf("sick worker breaker %q, want open", st.Workers[0].Breaker)
	}
	if st.Workers[1].Jobs < int64(10-failures) {
		t.Errorf("healthy worker completed %d jobs, want %d", st.Workers[1].Jobs, 10-failures)
	}
}

// TestWorkerStopDrains: Worker.Stop finishes the in-flight job, flushes
// its result, and only then hangs up — the caller sees a clean answer,
// not a failover.
func TestWorkerStopDrains(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	gated := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		<-release
		return hypermm.Run(alg, cfg, A, B)
	}
	coord, workers := testCluster(t, fastCfg(), gated)
	A := hypermm.RandomMatrix(8, 8, 1)
	jcfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}

	got := make(chan error, 1)
	go func() {
		_, err := coord.Submit(context.Background(), hypermm.Cannon, jcfg, A, A)
		got <- err
	}()
	<-started

	stopped := make(chan error, 1)
	go func() { stopped <- workers[0].Stop(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let the goodbye land
	close(release)

	if err := <-got; err != nil {
		t.Fatalf("job failed during worker drain: %v", err)
	}
	if err := <-stopped; err != nil {
		t.Fatalf("worker stop: %v", err)
	}
	if st := coord.Stats(); st.Failovers != 0 {
		t.Errorf("graceful worker drain caused %d failovers", st.Failovers)
	}
}

// TestRetryBudgetExhausted: when every worker dies and none return, the
// submit fails with a wrapped ErrWorkerLost after the retry budget.
func TestRetryBudgetExhausted(t *testing.T) {
	started := make(chan struct{}, 4)
	stuck := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	cfg := fastCfg()
	cfg.MaxRetries = 1
	coord, workers := testCluster(t, cfg, stuck)
	A := hypermm.RandomMatrix(8, 8, 1)
	jcfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}

	got := make(chan error, 1)
	go func() {
		_, err := coord.Submit(context.Background(), hypermm.Cannon, jcfg, A, A)
		got <- err
	}()
	<-started
	workers[0].Abort()

	select {
	case err := <-got:
		if !errors.Is(err, ErrWorkerLost) {
			t.Fatalf("got %v, want wrapped ErrWorkerLost", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submit never failed")
	}
	if fmt.Sprint(coord.Stats().Failovers) == "0" {
		t.Error("no failover counted")
	}
}

package cluster

import "time"

// breaker is a per-worker circuit breaker over job execution failures.
// Consecutive failures at or past the threshold open the circuit: the
// router skips the worker for a cooldown, after which exactly one
// trial job is let through (half-open); its outcome closes or re-opens
// the circuit. Transport-level deaths don't need a breaker — a dead
// worker is removed from the registry outright — so the breaker only
// sees jobs the worker answered abnormally (kindRun, kindBadJob).
//
// Not self-synchronized: the coordinator's mutex guards every call.
type breaker struct {
	threshold int           // consecutive failures to open
	cooldown  time.Duration // open duration before a half-open trial
	fails     int           // consecutive failures so far
	openUntil time.Time
	trial     bool // a half-open trial job is in flight
}

// Breaker states as reported by Stats.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// closed reports whether the circuit admits traffic freely.
func (b *breaker) closed() bool { return b.fails < b.threshold }

// canTrial reports whether an open circuit is ready for its half-open
// trial job.
func (b *breaker) canTrial(now time.Time) bool {
	return !b.closed() && !b.trial && !now.Before(b.openUntil)
}

// beginTrial marks the half-open trial as dispatched.
func (b *breaker) beginTrial() { b.trial = true }

// success records a clean job answer and closes the circuit.
func (b *breaker) success() { b.fails = 0; b.trial = false }

// failure records an abnormal job answer; at the threshold the circuit
// (re-)opens for a full cooldown.
func (b *breaker) failure(now time.Time) {
	b.fails++
	b.trial = false
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

// state names the current circuit state for Stats and metrics.
func (b *breaker) state(now time.Time) string {
	switch {
	case b.closed():
		return BreakerClosed
	case b.trial || !now.Before(b.openUntil):
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"hypermm"
	"hypermm/internal/obs"
)

// tracedCluster is testCluster with per-tier tracers: the coordinator
// records into ctracer, worker i into wtracers[i] (nil: untraced).
func tracedCluster(t *testing.T, cfg Config, ctracer *obs.Tracer, wtracers []*obs.Tracer, execs ...ExecFunc) (*Coordinator, []*Worker) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	cfg.Tracer = ctracer
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	workers := make([]*Worker, len(execs))
	for i, exec := range execs {
		var tr *obs.Tracer
		if i < len(wtracers) {
			tr = wtracers[i]
		}
		w, err := Join(context.Background(), coord.Addr().String(), WorkerConfig{
			Name: fmt.Sprintf("w%d", i), Exec: exec, Tracer: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(context.Background())
		t.Cleanup(w.Abort)
		workers[i] = w
	}
	waitWorkers(t, coord, len(execs))
	return coord, workers
}

func spansNamed(td obs.TraceData, name string) []obs.SpanData {
	var out []obs.SpanData
	for _, s := range td.Spans {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// TestTraceContextPropagation pins the cross-process hop: a Submit
// whose context carries a span lands one cluster.attempt span on the
// coordinator and one worker.execute span — recorded in the worker's
// process, shipped home in the Result frame — parented under that
// exact attempt, all sharing the caller's trace ID with monotonic
// nested intervals.
func TestTraceContextPropagation(t *testing.T) {
	ctracer := obs.NewTracer("coord", 8)
	wtracer := obs.NewTracer("worker-0", 8)
	coord, _ := tracedCluster(t, Config{}, ctracer, []*obs.Tracer{wtracer}, LocalExec)

	A := hypermm.RandomMatrix(16, 16, 1)
	B := hypermm.RandomMatrix(16, 16, 2)
	ctx, root := ctracer.StartSpan(context.Background(), "test.root")
	if _, err := coord.Submit(ctx, hypermm.Cannon, testCfg, A, B); err != nil {
		t.Fatal(err)
	}
	root.End()

	td, ok := ctracer.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not in the coordinator ring", root.TraceID())
	}
	attempts := spansNamed(td, "cluster.attempt")
	if len(attempts) != 1 {
		t.Fatalf("want 1 cluster.attempt span, got %d (%+v)", len(attempts), td.Spans)
	}
	att := attempts[0]
	if att.Parent != root.SpanID() {
		t.Errorf("attempt parent %q, want the root span %q", att.Parent, root.SpanID())
	}
	if got := att.Attrs["outcome"]; got != "ok" {
		t.Errorf("attempt outcome %v, want ok", got)
	}
	execs := spansNamed(td, "worker.execute")
	if len(execs) != 1 {
		t.Fatalf("want 1 worker.execute span, got %d (%+v)", len(execs), td.Spans)
	}
	ex := execs[0]
	if ex.TraceID != root.TraceID() {
		t.Errorf("execute span trace %q, want %q", ex.TraceID, root.TraceID())
	}
	if ex.Parent != att.SpanID {
		t.Errorf("execute parent %q, want the attempt span %q", ex.Parent, att.SpanID)
	}
	if ex.Process != "worker-0" {
		t.Errorf("execute process %q, want worker-0", ex.Process)
	}
	// Same-host processes share the system clock, so the worker's
	// interval must nest inside the coordinator's attempt interval.
	if !(att.Start <= ex.Start && ex.Start <= ex.End && ex.End <= att.End) {
		t.Errorf("intervals don't nest: attempt [%d, %d], execute [%d, %d]",
			att.Start, att.End, ex.Start, ex.End)
	}
}

// TestFailoverTraceShowsRetry pins the kill-mid-job acceptance: when
// the job's first worker dies holding it, the reassembled trace must
// contain the failed attempt (outcome worker_lost) AND the successful
// re-dispatch, whose worker.execute span comes from the survivor.
func TestFailoverTraceShowsRetry(t *testing.T) {
	started := make(chan struct{}, 1)
	stuck := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctracer := obs.NewTracer("coord", 8)
	wtr := []*obs.Tracer{obs.NewTracer("w0", 8), obs.NewTracer("w1", 8)}
	coord, workers := tracedCluster(t, fastCfg(), ctracer, wtr, stuck, LocalExec)

	A := hypermm.RandomMatrix(16, 16, 1)
	B := hypermm.RandomMatrix(16, 16, 2)
	ctx, root := ctracer.StartSpan(context.Background(), "test.root")
	errc := make(chan error, 1)
	go func() {
		_, err := coord.Submit(ctx, hypermm.Cannon, testCfg, A, B)
		errc <- err
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never reached the stuck worker")
	}
	workers[0].Abort()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("failover submit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("failover never completed")
	}
	root.End()

	td, ok := ctracer.Trace(root.TraceID())
	if !ok {
		t.Fatalf("trace %s not recorded", root.TraceID())
	}
	attempts := spansNamed(td, "cluster.attempt")
	if len(attempts) < 2 {
		t.Fatalf("want >= 2 attempt spans (failed + retried), got %d", len(attempts))
	}
	var lost, won *obs.SpanData
	for i := range attempts {
		switch attempts[i].Attrs["outcome"] {
		case "worker_lost":
			lost = &attempts[i]
		case "ok":
			won = &attempts[i]
		}
	}
	if lost == nil || won == nil {
		t.Fatalf("attempts missing worker_lost or ok outcome: %+v", attempts)
	}
	if lost.Attrs["worker"] != "w0" || won.Attrs["worker"] != "w1" {
		t.Errorf("attempt workers: lost on %v, won on %v; want w0 then w1",
			lost.Attrs["worker"], won.Attrs["worker"])
	}
	if lost.End > won.Start {
		t.Errorf("failed attempt [%d, %d] overlaps the re-dispatch starting %d",
			lost.Start, lost.End, won.Start)
	}
	execs := spansNamed(td, "worker.execute")
	if len(execs) != 1 || execs[0].Process != "w1" || execs[0].Parent != won.SpanID {
		t.Errorf("want exactly one execute span from w1 under the winning attempt, got %+v", execs)
	}
}

// TestMalformedTraceContextIgnored pins the wire rule: garbage in the
// header's trace fields loses observability, never the job.
func TestMalformedTraceContextIgnored(t *testing.T) {
	cases := []struct {
		name, trace, span string
		want              bool
	}{
		{"empty", "", "", false},
		{"valid", strings.Repeat("ab", 16), strings.Repeat("cd", 8), true},
		{"uppercase", strings.Repeat("AB", 16), strings.Repeat("cd", 8), false},
		{"short", "abc", "cdcd", false},
		{"zero", strings.Repeat("0", 32), strings.Repeat("cd", 8), false},
		{"oversized", strings.Repeat("a", 1<<20), strings.Repeat("cd", 8), false},
		{"span only", "", strings.Repeat("cd", 8), false},
	}
	for _, tc := range cases {
		s := &jobSpec{TraceID: tc.trace, SpanID: tc.span}
		if _, ok := s.spanContext(); ok != tc.want {
			t.Errorf("%s: spanContext ok=%v, want %v", tc.name, ok, tc.want)
		}
	}

	// End to end: a worker receiving bad trace fields still executes.
	ctracer := obs.NewTracer("coord", 8)
	coord, _ := tracedCluster(t, Config{}, nil, []*obs.Tracer{ctracer}, LocalExec)
	A := hypermm.RandomMatrix(8, 8, 1)
	B := hypermm.RandomMatrix(8, 8, 2)
	// The coordinator has no tracer, so spec trace fields come verbatim
	// from the caller's context — including invalid ones.
	ctx := obs.ContextWith(context.Background(), obs.SpanContext{TraceID: "garbage", SpanID: "zz"})
	if _, err := coord.Submit(ctx, hypermm.Cannon, testCfg, A, B); err != nil {
		t.Fatalf("job with malformed trace context failed: %v", err)
	}
	if n := ctracer.Len(); n != 0 {
		t.Errorf("worker recorded %d traces from a malformed context, want 0", n)
	}
}

// FuzzTraceContext hammers the trace-context half of the Job header:
// whatever bytes arrive as trace_id/span_id, parsing must neither
// panic nor accept an invalid pair.
func FuzzTraceContext(f *testing.F) {
	f.Add(`{"trace_id":"`+strings.Repeat("ab", 16)+`","span_id":"`+strings.Repeat("cd", 8)+`"}`, "", "")
	f.Add(`{"id":1}`, strings.Repeat("0", 32), strings.Repeat("f", 16))
	f.Add(`{}`, strings.Repeat("a", 100000), "café-multibyte-ид")
	f.Add(`{"trace_id":7}`, "ABCDEF0123456789abcdef0123456789", "0123456789abcdef")
	f.Fuzz(func(t *testing.T, hdr, traceID, spanID string) {
		var spec jobSpec
		if err := json.Unmarshal([]byte(hdr), &spec); err == nil {
			if sc, ok := spec.spanContext(); ok && !sc.Valid() {
				t.Fatalf("header %q parsed to invalid context %+v", hdr, sc)
			}
		}
		spec = jobSpec{TraceID: traceID, SpanID: spanID}
		sc, ok := spec.spanContext()
		if ok != (obs.ValidTraceID(traceID) && obs.ValidSpanID(spanID)) {
			t.Fatalf("spanContext(%q, %q) ok=%v disagrees with validators", traceID, spanID, ok)
		}
		if ok && (sc.TraceID != traceID || sc.SpanID != spanID) {
			t.Fatalf("accepted context mutated the IDs: %+v", sc)
		}
	})
}

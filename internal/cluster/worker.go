package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"hypermm"
	"hypermm/internal/obs"
)

// ErrBusy is how a worker's Exec hook reports transient saturation
// (bounded queue full, local drain begun): the coordinator retries the
// job on another worker instead of failing the client.
var ErrBusy = errors.New("cluster: worker busy")

// ExecFunc executes one multiplication on behalf of the cluster. It has
// the shape of hypermm.Run plus a context carrying the job's wall-clock
// budget; LocalExec is the direct adapter.
type ExecFunc func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error)

// ExecMetaFunc is ExecFunc plus the job's QoS attribution, for workers
// that account executions per tenant.
type ExecMetaFunc func(ctx context.Context, meta JobMeta, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error)

// LocalExec runs the job in-process on a fresh machine — the reference
// executor the conformance oracle and the tests use.
var LocalExec ExecFunc = func(_ context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
	return hypermm.Run(alg, cfg, A, B)
}

// WorkerConfig configures one worker connection.
type WorkerConfig struct {
	Name string // advertised in the handshake and in coordinator stats

	// Exec executes jobs; required unless ExecMeta is set.
	Exec ExecFunc

	// ExecMeta, when set, takes precedence over Exec and additionally
	// receives the job's QoS attribution from the wire.
	ExecMeta ExecMetaFunc

	// MaxN / MaxP advertise the worker's size limits in the handshake
	// (0: unbounded). The worker also enforces them on incoming jobs.
	MaxN, MaxP int

	// MaxFrame bounds one received frame (default DefaultMaxFrame).
	MaxFrame int

	// Log receives connection-lifecycle events as structured records
	// (nil: silent).
	Log *slog.Logger

	// Tracer, when non-nil, records one worker.execute span per job that
	// arrives carrying a valid trace context; the spans travel back to
	// the coordinator in the Result frame.
	Tracer *obs.Tracer
}

// Worker is the worker side of one coordinator connection: it
// registers via the handshake, then executes the jobs multiplexed down
// the connection, answering each with a Result frame.
type Worker struct {
	cfg  WorkerConfig
	conn net.Conn
	br   *bufio.Reader
	id   uint64

	wmu sync.Mutex // serializes frame writes

	mu       sync.Mutex
	inflight int
	draining bool
	closed   bool
	wg       sync.WaitGroup // in-flight job goroutines
}

// Join dials the coordinator and performs the registration handshake.
// The returned Worker is idle until Serve runs its read loop.
func Join(ctx context.Context, addr string, cfg WorkerConfig) (*Worker, error) {
	if cfg.Exec == nil && cfg.ExecMeta == nil {
		return nil, errors.New("cluster: WorkerConfig.Exec or ExecMeta is required")
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.Log == nil {
		cfg.Log = obs.NopLogger()
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: joining %s: %w", addr, err)
	}
	w := &Worker{cfg: cfg, conn: conn, br: bufio.NewReader(conn)}
	deadline := time.Now().Add(10 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	_ = conn.SetDeadline(deadline)
	h := hello{
		Version: ProtocolVersion, Name: cfg.Name,
		Capabilities: []string{CapMatmul},
		MaxN:         cfg.MaxN, MaxP: cfg.MaxP,
	}
	if err := writeFrame(conn, msgHello, h, nil); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake send: %w", err)
	}
	mt, hdr, _, err := readFrame(w.br, cfg.MaxFrame)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake read: %w", err)
	}
	var wel welcome
	if mt != msgWelcome || json.Unmarshal(hdr, &wel) != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: unexpected handshake reply (type %d)", mt)
	}
	if !wel.OK {
		conn.Close()
		return nil, fmt.Errorf("cluster: coordinator refused registration: %s", wel.Reason)
	}
	_ = conn.SetDeadline(time.Time{})
	w.id = wel.WorkerID
	cfg.Log.Info("cluster: worker registered", "worker", cfg.Name, "coordinator", addr, "id", w.id)
	return w, nil
}

// Serve runs the read loop until the connection closes or ctx is
// canceled (which aborts the connection). A connection that ends after
// a graceful drain — ours via Stop, or the coordinator's via Goodbye —
// returns nil; an unexpected loss returns the read error.
func (w *Worker) Serve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { w.closeConn() })
	defer stop()
	for {
		mt, hdr, tail, err := readFrame(w.br, w.cfg.MaxFrame)
		if err != nil {
			w.mu.Lock()
			clean := w.draining || w.closed
			w.mu.Unlock()
			if clean || ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("cluster: coordinator connection lost: %w", err)
		}
		switch mt {
		case msgJob:
			w.handleJob(hdr, tail)
		case msgPing:
			var pi ping
			_ = json.Unmarshal(hdr, &pi)
			w.mu.Lock()
			inflight := w.inflight
			w.mu.Unlock()
			_ = w.send(msgPong, pong{Seq: pi.Seq, Inflight: inflight}, nil)
		case msgGoodbye:
			// Coordinator drain: finish in-flight jobs, flush their
			// results, then hang up. New Job frames stop arriving once
			// the coordinator has said goodbye.
			w.cfg.Log.Info("cluster: worker draining", "worker", w.cfg.Name, "reason", "coordinator goodbye")
			w.mu.Lock()
			w.draining = true
			w.mu.Unlock()
			go func() {
				w.wg.Wait()
				w.closeConn()
			}()
		}
	}
}

// Stop drains the worker gracefully: it tells the coordinator to stop
// routing jobs here, waits (bounded by ctx) for in-flight jobs to
// finish and their results to flush, then closes the connection.
func (w *Worker) Stop(ctx context.Context) error {
	w.mu.Lock()
	already := w.draining
	w.draining = true
	w.mu.Unlock()
	if !already {
		_ = w.send(msgGoodbye, struct{}{}, nil)
	}
	done := make(chan struct{})
	go func() { w.wg.Wait(); close(done) }()
	select {
	case <-done:
		w.closeConn()
		return nil
	case <-ctx.Done():
		w.closeConn()
		return ctx.Err()
	}
}

// Abort drops the connection immediately, without draining — the
// failover drills use it to stand in for a killed worker process.
func (w *Worker) Abort() { w.closeConn() }

func (w *Worker) closeConn() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.conn.Close()
}

// handleJob validates the spec and executes it on a goroutine, so slow
// jobs never block the read loop (or each other).
func (w *Worker) handleJob(hdr, tail []byte) {
	var spec jobSpec
	if err := json.Unmarshal(hdr, &spec); err != nil {
		_ = w.send(msgResult, jobReply{Err: fmt.Sprintf("bad job header: %v", err), ErrKind: kindBadJob}, nil)
		return
	}
	reject := func(err error, kind string) {
		_ = w.send(msgResult, jobReply{ID: spec.ID, Err: err.Error(), ErrKind: kind}, nil)
	}
	alg, err := hypermm.ParseAlgorithm(spec.Algorithm)
	if err != nil {
		reject(err, kindBadJob)
		return
	}
	if spec.Ports != int(hypermm.OnePort) && spec.Ports != int(hypermm.MultiPort) {
		reject(fmt.Errorf("bad port model %d", spec.Ports), kindBadJob)
		return
	}
	if w.cfg.MaxN > 0 && spec.N > w.cfg.MaxN {
		reject(fmt.Errorf("n=%d exceeds worker limit %d", spec.N, w.cfg.MaxN), kindBadJob)
		return
	}
	if w.cfg.MaxP > 0 && spec.P > w.cfg.MaxP {
		reject(fmt.Errorf("p=%d exceeds worker limit %d", spec.P, w.cfg.MaxP), kindBadJob)
		return
	}
	A, rest, err := takeMatrix(tail, spec.N, spec.N)
	if err != nil {
		reject(err, kindBadJob)
		return
	}
	B, rest, err := takeMatrix(rest, spec.N, spec.N)
	if err != nil || len(rest) != 0 {
		reject(fmt.Errorf("bad operand tail (%d trailing bytes, err %v)", len(rest), err), kindBadJob)
		return
	}
	cfg := hypermm.Config{
		P: spec.P, Ports: hypermm.PortModel(spec.Ports),
		Ts: spec.Ts, Tw: spec.Tw, Tc: spec.Tc,
		Faults: spec.Fault.plan(), Deadline: spec.Deadline,
	}

	w.mu.Lock()
	w.inflight++
	w.wg.Add(1)
	w.mu.Unlock()
	go func() {
		defer func() {
			w.mu.Lock()
			w.inflight--
			w.mu.Unlock()
			w.wg.Done()
		}()
		ctx := context.Background()
		if spec.WallMs > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(spec.WallMs)*time.Millisecond)
			defer cancel()
		}
		// A valid propagated trace context parents this job's execute
		// span under the coordinator's dispatch attempt; the span rides
		// home in the Result frame. A missing or malformed context (or a
		// worker without a tracer) just runs the job untraced.
		var espan *obs.Span
		sc, traced := spec.spanContext()
		if traced && w.cfg.Tracer != nil {
			ctx, espan = w.cfg.Tracer.StartSpan(obs.ContextWith(ctx, sc), "worker.execute",
				obs.String("worker", w.cfg.Name), obs.String("algorithm", spec.Algorithm),
				obs.Int("n", spec.N), obs.Int("p", spec.P))
		}
		// jobSpans closes the execute span and returns this job's spans —
		// the ones parented under this exact dispatch attempt, so retried
		// jobs of the same trace on this worker never ship twice.
		jobSpans := func(outcome string) []obs.SpanData {
			if espan == nil {
				return nil
			}
			espan.Set(obs.String("outcome", outcome))
			espan.End()
			td, ok := w.cfg.Tracer.Trace(sc.TraceID)
			if !ok {
				return nil
			}
			var out []obs.SpanData
			for _, s := range td.Spans {
				if s.Parent == sc.SpanID {
					out = append(out, s)
				}
			}
			return out
		}
		meta := JobMeta{Tenant: spec.Tenant, Class: spec.Class, Priority: spec.Priority}
		res, err := w.exec(ctx, meta, alg, cfg, A, B)
		if err != nil {
			kind := errKindOf(err)
			_ = w.send(msgResult, jobReply{ID: spec.ID, Err: err.Error(), ErrKind: kind, Spans: jobSpans(kind)}, nil)
			return
		}
		reply := jobReply{
			ID: spec.ID, Elapsed: res.Elapsed, Comm: res.Comm,
			Rows: res.C.Rows, Cols: res.C.Cols, Spans: jobSpans("ok"),
		}
		_ = w.send(msgResult, reply, appendMatrix(make([]byte, 0, len(res.C.Data)*8), res.C))
	}()
}

// exec invokes the hook, converting a panic into a job error so one
// poisoned job can't take the whole worker down.
func (w *Worker) exec(ctx context.Context, meta JobMeta, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (res *hypermm.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("cluster: job panicked: %v", r)
		}
	}()
	if w.cfg.ExecMeta != nil {
		return w.cfg.ExecMeta(ctx, meta, alg, cfg, A, B)
	}
	return w.cfg.Exec(ctx, alg, cfg, A, B)
}

// errKindOf buckets an execution error for the wire.
func errKindOf(err error) string {
	switch {
	case errors.Is(err, hypermm.ErrLinkDown):
		return kindLinkDown
	case errors.Is(err, hypermm.ErrDeadline):
		return kindDeadline
	case errors.Is(err, ErrBusy):
		return kindBusy
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return kindCanceled
	default:
		return kindRun
	}
}

func (w *Worker) send(mt byte, header any, tail []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, mt, header, tail)
}

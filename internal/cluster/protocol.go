// Package cluster shards matmul jobs across multiple hmmd worker
// processes: a coordinator accepts TCP connections from workers, routes
// each job to the least-loaded healthy worker, and fails jobs over when
// a worker dies mid-flight. Workers execute jobs with the unmodified
// local machinery (scheduler + warm machine pool), so every result a
// worker returns is byte-identical to a local hypermm.Run — the
// clusterequiv conformance oracle pins exactly that.
//
// The wire protocol is a small length-prefixed RPC framing. One frame:
//
//	offset size
//	0      4    big-endian uint32: length of everything that follows
//	4      1    message type (msgHello, msgWelcome, msgJob, ...)
//	5      4    big-endian uint32: JSON header length hl
//	9      hl   JSON header (per-type struct below)
//	9+hl   ...  binary tail: matrix words as little-endian float64
//
// A connection begins with a handshake — the worker sends Hello
// (protocol version, name, capabilities, size limits) and the
// coordinator answers Welcome (accept or refuse with a reason). After
// that the coordinator multiplexes concurrent Job frames down the
// connection, each carrying a fresh ID; the worker answers with Result
// frames in completion order. Ping/Pong frames double as health probes
// and liveness signals; Goodbye starts a graceful drain from either
// side (no new jobs, in-flight ones finish).
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"hypermm"
	"hypermm/internal/obs"
)

// ProtocolVersion is bumped on any incompatible frame or header change;
// the coordinator refuses workers speaking a different version.
const ProtocolVersion = 1

// CapMatmul is the one capability this protocol revision requires: the
// worker can execute a square matmul job end to end (operands in,
// product + counters out), fault plans and deadlines included.
const CapMatmul = "matmul/v1"

// DefaultMaxFrame bounds one frame (256 MiB fits two 1024x1024 float64
// operands with room to spare); both sides reject bigger frames rather
// than buffer them.
const DefaultMaxFrame = 256 << 20

// Message types.
const (
	msgHello   byte = 1 // worker -> coordinator: registration
	msgWelcome byte = 2 // coordinator -> worker: registration verdict
	msgJob     byte = 3 // coordinator -> worker: one multiplication
	msgResult  byte = 4 // worker -> coordinator: job outcome
	msgPing    byte = 5 // coordinator -> worker: health probe
	msgPong    byte = 6 // worker -> coordinator: probe answer + load
	msgGoodbye byte = 7 // either direction: graceful drain
)

// hello is the worker's registration header.
type hello struct {
	Version      int      `json:"version"`
	Name         string   `json:"name"`
	Capabilities []string `json:"capabilities"`
	MaxN         int      `json:"max_n,omitempty"` // largest accepted matrix size (0: unbounded)
	MaxP         int      `json:"max_p,omitempty"` // largest accepted machine size (0: unbounded)
}

// welcome is the coordinator's registration verdict.
type welcome struct {
	Version  int    `json:"version"`
	OK       bool   `json:"ok"`
	Reason   string `json:"reason,omitempty"`
	WorkerID uint64 `json:"worker_id,omitempty"`
}

// ping and pong carry a sequence number; pong adds the worker's
// in-flight job count as load telemetry.
type ping struct {
	Seq uint64 `json:"seq"`
}

type pong struct {
	Seq      uint64 `json:"seq"`
	Inflight int    `json:"inflight"`
}

// jobSpec is the Job frame header; the frame tail carries the two n x n
// operands back to back (A then B).
type jobSpec struct {
	ID        uint64     `json:"id"`
	Algorithm string     `json:"algorithm"`
	N         int        `json:"n"`
	P         int        `json:"p"`
	Ports     int        `json:"ports"` // 0 one-port, 1 multi-port
	Ts        float64    `json:"ts"`
	Tw        float64    `json:"tw"`
	Tc        float64    `json:"tc"`
	Deadline  float64    `json:"deadline,omitempty"` // simulated-time budget
	WallMs    int64      `json:"wall_ms,omitempty"`  // remaining wall-clock budget
	Fault     *wireFault `json:"fault,omitempty"`

	// QoS attribution: which tenant admitted the job, its class name,
	// and the numeric priority (0 most important). Optional — a plain
	// Submit leaves them zero; workers without QoS configured treat the
	// job as pre-admitted default-tenant work either way.
	Tenant   string `json:"tenant,omitempty"`
	Class    string `json:"class,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// Trace context: the coordinator-side trace this job belongs to and
	// the dispatch span to parent worker spans under. Optional; the
	// worker validates both and silently ignores a malformed or
	// oversized pair (observability is never allowed to fail a job).
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// spanContext validates the spec's propagated trace context. Malformed
// or oversized IDs — a hostile or buggy coordinator — yield ok=false
// and the job simply runs untraced; they are never a job error.
func (s *jobSpec) spanContext() (obs.SpanContext, bool) {
	if s.TraceID == "" && s.SpanID == "" {
		return obs.SpanContext{}, false
	}
	return obs.ParseSpanContext(s.TraceID, s.SpanID)
}

// jobReply is the Result frame header; on success the tail carries the
// n x n product.
type jobReply struct {
	ID      uint64            `json:"id"`
	Err     string            `json:"err,omitempty"`
	ErrKind string            `json:"err_kind,omitempty"`
	Elapsed float64           `json:"elapsed,omitempty"`
	Comm    hypermm.CommStats `json:"comm,omitempty"`
	Rows    int               `json:"rows,omitempty"`
	Cols    int               `json:"cols,omitempty"`

	// Spans carries the worker-side spans of a propagated trace back to
	// the coordinator, which ingests them into its ring so one trace ID
	// resolves to the full cross-process timeline.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

// Remote error kinds, so the coordinator can rebuild typed errors on
// its side of the wire.
const (
	kindLinkDown = "link_down" // hypermm.ErrLinkDown
	kindDeadline = "deadline"  // hypermm.ErrDeadline
	kindBusy     = "busy"      // worker saturated/draining; retry elsewhere
	kindCanceled = "canceled"  // wall-clock budget exhausted on the worker
	kindBadJob   = "bad_job"   // malformed spec; not retryable
	kindRun      = "run"       // any other execution failure
)

// wireFault mirrors hypermm.FaultPlan with JSON-encodable windows:
// hypermm.Forever (+Inf) becomes the farFuture sentinel, which no
// bounded simulated clock approaches, so window membership tests —
// the only thing To feeds — are unchanged.
type wireFault struct {
	Seed       uint64       `json:"seed"`
	Drop       float64      `json:"drop,omitempty"`
	Dup        float64      `json:"dup,omitempty"`
	DelayProb  float64      `json:"delay_prob,omitempty"`
	DelayTime  float64      `json:"delay_time,omitempty"`
	Down       [][4]float64 `json:"down,omitempty"` // [src, dst, from, to]
	MaxRetries int          `json:"max_retries,omitempty"`
	AckTimeout float64      `json:"ack_timeout,omitempty"`
	Backoff    float64      `json:"backoff,omitempty"`
}

const farFuture = 1e18

func toWireFault(fp *hypermm.FaultPlan) *wireFault {
	if fp == nil {
		return nil
	}
	wf := &wireFault{
		Seed: fp.Seed, Drop: fp.Drop, Dup: fp.Dup,
		DelayProb: fp.DelayProb, DelayTime: fp.DelayTime,
		MaxRetries: fp.MaxRetries, AckTimeout: fp.AckTimeout, Backoff: fp.Backoff,
	}
	for _, w := range fp.Down {
		to := w.To
		if math.IsInf(to, 1) {
			to = farFuture
		}
		wf.Down = append(wf.Down, [4]float64{float64(w.Src), float64(w.Dst), w.From, to})
	}
	return wf
}

func (wf *wireFault) plan() *hypermm.FaultPlan {
	if wf == nil {
		return nil
	}
	fp := &hypermm.FaultPlan{
		Seed: wf.Seed, Drop: wf.Drop, Dup: wf.Dup,
		DelayProb: wf.DelayProb, DelayTime: wf.DelayTime,
		MaxRetries: wf.MaxRetries, AckTimeout: wf.AckTimeout, Backoff: wf.Backoff,
	}
	for _, w := range wf.Down {
		fp.Down = append(fp.Down, hypermm.Window{
			Src: int(w[0]), Dst: int(w[1]), From: w[2], To: w[3],
		})
	}
	return fp
}

// writeFrame assembles one frame in a single buffer and writes it with
// one Write call, so concurrent senders only need to serialize the
// call itself.
func writeFrame(w io.Writer, mt byte, header any, tail []byte) error {
	hdr, err := json.Marshal(header)
	if err != nil {
		return fmt.Errorf("cluster: encoding %T: %w", header, err)
	}
	n := 1 + 4 + len(hdr) + len(tail)
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf[0:], uint32(n))
	buf[4] = mt
	binary.BigEndian.PutUint32(buf[5:], uint32(len(hdr)))
	copy(buf[9:], hdr)
	copy(buf[9+len(hdr):], tail)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame, rejecting anything longer than maxFrame.
// The returned header and tail slices are freshly allocated.
func readFrame(r *bufio.Reader, maxFrame int) (mt byte, header, tail []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, nil, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 5 {
		return 0, nil, nil, fmt.Errorf("cluster: short frame (%d bytes)", n)
	}
	if n > maxFrame {
		return 0, nil, nil, fmt.Errorf("cluster: frame of %d bytes exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, nil, nil, err
	}
	mt = body[0]
	hl := int(binary.BigEndian.Uint32(body[1:5]))
	if 5+hl > n {
		return 0, nil, nil, fmt.Errorf("cluster: header length %d overruns %d-byte frame", hl, n)
	}
	return mt, body[5 : 5+hl], body[5+hl:], nil
}

// appendMatrix appends m's words to dst in row-major little-endian
// float64 encoding.
func appendMatrix(dst []byte, m *hypermm.Matrix) []byte {
	for _, v := range m.Data {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// takeMatrix decodes a rows x cols matrix from the front of tail and
// returns the remainder.
func takeMatrix(tail []byte, rows, cols int) (*hypermm.Matrix, []byte, error) {
	need := rows * cols * 8
	if rows < 1 || cols < 1 || len(tail) < need {
		return nil, nil, fmt.Errorf("cluster: matrix tail has %d bytes, need %d for %dx%d", len(tail), need, rows, cols)
	}
	m := hypermm.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(tail[i*8:]))
	}
	return m, tail[need:], nil
}

package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hypermm"
)

// testCluster boots a coordinator plus workers with the given exec
// hooks over loopback TCP and waits for every registration.
func testCluster(t *testing.T, cfg Config, execs ...ExecFunc) (*Coordinator, []*Worker) {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	workers := make([]*Worker, len(execs))
	for i, exec := range execs {
		w, err := Join(context.Background(), coord.Addr().String(), WorkerConfig{
			Name: fmt.Sprintf("w%d", i), Exec: exec,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(context.Background())
		t.Cleanup(w.Abort)
		workers[i] = w
	}
	waitWorkers(t, coord, len(execs))
	return coord, workers
}

func waitWorkers(t *testing.T, coord *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() != n {
		if time.Now().After(deadline) {
			t.Fatalf("worker count stuck at %d, want %d", coord.WorkerCount(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// p=64 suits every algorithm under test: a square (8x8) for Cannon, a
// perfect cube (4^3) for 3D All, and a power of two throughout.
var testCfg = hypermm.Config{P: 64, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5}

// TestSubmitMatchesLocalRun pins the tentpole contract: a job routed
// through the coordinator/worker tier over real TCP returns
// byte-identical C, Elapsed and CommStats to a local hypermm.Run.
func TestSubmitMatchesLocalRun(t *testing.T) {
	coord, _ := testCluster(t, Config{}, LocalExec, LocalExec)
	A := hypermm.RandomMatrix(16, 16, 1)
	B := hypermm.RandomMatrix(16, 16, 2)
	for _, alg := range []hypermm.Algorithm{hypermm.Cannon, hypermm.ThreeAll, hypermm.Simple} {
		local, err := hypermm.Run(alg, testCfg, A, B)
		if err != nil {
			t.Fatalf("%v local: %v", alg, err)
		}
		remote, err := coord.Submit(context.Background(), alg, testCfg, A, B)
		if err != nil {
			t.Fatalf("%v remote: %v", alg, err)
		}
		if remote.Elapsed != local.Elapsed {
			t.Errorf("%v: Elapsed %g != local %g", alg, remote.Elapsed, local.Elapsed)
		}
		if remote.Comm != local.Comm {
			t.Errorf("%v: CommStats %+v != local %+v", alg, remote.Comm, local.Comm)
		}
		for i := range local.C.Data {
			if remote.C.Data[i] != local.C.Data[i] {
				t.Fatalf("%v: product word %d differs: %g != %g", alg, i, remote.C.Data[i], local.C.Data[i])
			}
		}
	}
	st := coord.Stats()
	if st.Completed != 3 || st.Dispatched != 3 || st.Failovers != 0 {
		t.Errorf("stats after 3 clean jobs: %+v", st)
	}
}

// TestFaultPlanPropagates runs a recoverable fault plan through the
// wire: retries must be charged remotely exactly as locally, and a
// hostile plan must surface a typed ErrLinkDown across the boundary.
func TestFaultPlanPropagates(t *testing.T) {
	coord, _ := testCluster(t, Config{}, LocalExec)
	A := hypermm.RandomMatrix(16, 16, 3)
	B := hypermm.RandomMatrix(16, 16, 4)

	cfg := testCfg
	cfg.Faults = &hypermm.FaultPlan{Seed: 5, Drop: 0.1, MaxRetries: 40}
	local, err := hypermm.Run(hypermm.Cannon, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Comm != local.Comm || remote.Elapsed != local.Elapsed {
		t.Errorf("faulted run diverged: remote %+v/%g, local %+v/%g",
			remote.Comm, remote.Elapsed, local.Comm, local.Elapsed)
	}
	if remote.Comm.Retries == 0 {
		t.Error("fault plan did not propagate (no retries charged)")
	}

	cfg.Faults = &hypermm.FaultPlan{Seed: 5, Down: []hypermm.Window{{Src: -1, Dst: -1, From: 0, To: hypermm.Forever}}, MaxRetries: 1}
	if _, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B); !errors.Is(err, hypermm.ErrLinkDown) {
		t.Errorf("hostile plan: got %v, want ErrLinkDown", err)
	}
}

// TestLeastLoadedSpreads floods two workers with concurrent jobs and
// checks both actually execute some.
func TestLeastLoadedSpreads(t *testing.T) {
	var mu sync.Mutex
	counts := map[string]int{}
	slowExec := func(name string) ExecFunc {
		return func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
			mu.Lock()
			counts[name]++
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			return hypermm.Run(alg, cfg, A, B)
		}
	}
	coord, _ := testCluster(t, Config{}, slowExec("w0"), slowExec("w1"))
	A := hypermm.RandomMatrix(8, 8, 1)
	B := hypermm.RandomMatrix(8, 8, 2)
	cfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if counts["w0"] == 0 || counts["w1"] == 0 {
		t.Errorf("least-loaded routing starved a worker: %v", counts)
	}
}

// TestVersionMismatchRefused hand-rolls a registration with the wrong
// protocol version and a registration missing the matmul capability;
// both must be refused with a reason.
func TestVersionMismatchRefused(t *testing.T) {
	coord, err := NewCoordinator(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	refusal := func(h hello) string {
		t.Helper()
		conn, err := net.Dial("tcp", coord.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, msgHello, h, nil); err != nil {
			t.Fatal(err)
		}
		mt, hdr, _, err := readFrame(bufio.NewReader(conn), DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if mt != msgWelcome {
			t.Fatalf("reply type %d", mt)
		}
		var wel welcome
		if err := json.Unmarshal(hdr, &wel); err != nil {
			t.Fatal(err)
		}
		if wel.OK {
			t.Fatal("registration accepted, want refusal")
		}
		return wel.Reason
	}

	if r := refusal(hello{Version: ProtocolVersion + 1, Name: "bad", Capabilities: []string{CapMatmul}}); r == "" {
		t.Error("version refusal has no reason")
	}
	if r := refusal(hello{Version: ProtocolVersion, Name: "bad", Capabilities: []string{"other/v9"}}); r == "" {
		t.Error("capability refusal has no reason")
	}
}

// TestWallDeadlinePropagates gives the job a context deadline shorter
// than its (deliberately slow) execution; the worker-side context must
// expire and the caller must get a deadline error.
func TestWallDeadlinePropagates(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	slow := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-block:
			return nil, errors.New("released without deadline")
		}
	}
	coord, _ := testCluster(t, Config{}, slow)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	A := hypermm.RandomMatrix(4, 4, 1)
	_, err := coord.Submit(ctx, hypermm.Cannon, hypermm.Config{P: 4, Ts: 1, Tw: 1}, A, A)
	if err == nil {
		t.Fatal("deadline ignored")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want a deadline error", err)
	}
}

// TestNoWorkers submits against an empty registry.
func TestNoWorkers(t *testing.T) {
	coord, err := NewCoordinator(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	A := hypermm.RandomMatrix(4, 4, 1)
	if _, err := coord.Submit(context.Background(), hypermm.Cannon, hypermm.Config{P: 4}, A, A); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
}

// TestBusyFailsOverToIdleWorker: the first worker always answers busy;
// the job must land on the second.
func TestBusyFailsOverToIdleWorker(t *testing.T) {
	busy := func(ctx context.Context, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		return nil, fmt.Errorf("%w: queue full", ErrBusy)
	}
	coord, _ := testCluster(t, Config{RetryBackoff: time.Millisecond}, busy, LocalExec)
	A := hypermm.RandomMatrix(8, 8, 1)
	B := hypermm.RandomMatrix(8, 8, 2)
	cfg := hypermm.Config{P: 4, Ports: hypermm.OnePort, Ts: 150, Tw: 3}

	// Run enough jobs that at least one is routed to the busy worker
	// first (both start at load 0, ties go to the older registration —
	// the busy one).
	for i := 0; i < 4; i++ {
		res, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B)
		if err != nil {
			t.Fatal(err)
		}
		local, _ := hypermm.Run(hypermm.Cannon, cfg, A, B)
		if res.Elapsed != local.Elapsed {
			t.Fatal("busy-failover result diverged")
		}
	}
	if st := coord.Stats(); st.BusyRetries == 0 {
		t.Errorf("no busy retries recorded: %+v", st)
	}
}

package cluster

import (
	"context"
	"sync"
	"testing"

	"hypermm"
)

// TestJobMetaPropagates pins the QoS attribution path across the wire:
// the meta handed to SubmitMeta must arrive verbatim at the worker's
// ExecMeta hook, and a plain Submit must arrive as the zero meta.
func TestJobMetaPropagates(t *testing.T) {
	var mu sync.Mutex
	var seen []JobMeta
	execMeta := func(ctx context.Context, meta JobMeta, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
		mu.Lock()
		seen = append(seen, meta)
		mu.Unlock()
		return hypermm.Run(alg, cfg, A, B)
	}

	coord, err := NewCoordinator(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	w, err := Join(context.Background(), coord.Addr().String(), WorkerConfig{
		Name: "meta-worker", ExecMeta: execMeta,
	})
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(context.Background())
	t.Cleanup(w.Abort)
	waitWorkers(t, coord, 1)

	A := hypermm.RandomMatrix(16, 16, 1)
	B := hypermm.RandomMatrix(16, 16, 2)
	meta := JobMeta{Tenant: "acme", Class: "interactive", Priority: 0}
	if _, err := coord.SubmitMeta(context.Background(), meta, hypermm.Cannon, testCfg, A, B); err != nil {
		t.Fatalf("SubmitMeta: %v", err)
	}
	if _, err := coord.Submit(context.Background(), hypermm.Cannon, testCfg, A, B); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("worker executed %d jobs, want 2", len(seen))
	}
	if seen[0] != meta {
		t.Errorf("attributed job meta = %+v, want %+v", seen[0], meta)
	}
	if seen[1] != (JobMeta{}) {
		t.Errorf("plain Submit meta = %+v, want zero", seen[1])
	}
}

// TestJobMetaResultUnchanged pins that attribution is metadata only:
// the same job submitted with and without meta returns byte-identical
// results.
func TestJobMetaResultUnchanged(t *testing.T) {
	coord, _ := testCluster(t, Config{}, LocalExec)
	A := hypermm.RandomMatrix(16, 16, 5)
	B := hypermm.RandomMatrix(16, 16, 6)
	plain, err := coord.Submit(context.Background(), hypermm.ThreeAll, testCfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	attributed, err := coord.SubmitMeta(context.Background(),
		JobMeta{Tenant: "bulk", Class: "best-effort", Priority: 2},
		hypermm.ThreeAll, testCfg, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elapsed != attributed.Elapsed || plain.Comm != attributed.Comm {
		t.Errorf("meta changed the result: %+v vs %+v", plain, attributed)
	}
	for i := range plain.C.Data {
		if plain.C.Data[i] != attributed.C.Data[i] {
			t.Fatalf("product word %d differs: %g != %g", i, plain.C.Data[i], attributed.C.Data[i])
		}
	}
}

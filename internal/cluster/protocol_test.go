package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"hypermm"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	spec := jobSpec{ID: 7, Algorithm: "cannon", N: 4, P: 16, Ts: 150, Tw: 3, Tc: 0.5}
	tail := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(&buf, msgJob, spec, tail); err != nil {
		t.Fatal(err)
	}
	mt, hdr, gotTail, err := readFrame(bufio.NewReader(&buf), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if mt != msgJob {
		t.Fatalf("type = %d, want %d", mt, msgJob)
	}
	var got jobSpec
	if err := json.Unmarshal(hdr, &got); err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("header round trip: got %+v, want %+v", got, spec)
	}
	if !bytes.Equal(gotTail, tail) {
		t.Fatalf("tail round trip: got %v, want %v", gotTail, tail)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgJob, jobSpec{}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := readFrame(bufio.NewReader(&buf), 128); err == nil {
		t.Fatal("oversized frame accepted")
	} else if !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFrameShortAndOverrun(t *testing.T) {
	// A frame whose declared JSON header length overruns the body must
	// be rejected, not sliced out of bounds.
	raw := []byte{0, 0, 0, 6, msgJob, 0, 0, 0, 99, 'x'}
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw)), DefaultMaxFrame); err == nil {
		t.Fatal("header overrun accepted")
	}
	short := []byte{0, 0, 0, 2, msgJob, 0}
	if _, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(short)), DefaultMaxFrame); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestMatrixCodecRoundTrip(t *testing.T) {
	A := hypermm.RandomMatrix(5, 5, 42)
	B := hypermm.RandomMatrix(5, 5, 43)
	tail := appendMatrix(nil, A)
	tail = appendMatrix(tail, B)
	gotA, rest, err := takeMatrix(tail, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := takeMatrix(rest, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	for i := range A.Data {
		if gotA.Data[i] != A.Data[i] || gotB.Data[i] != B.Data[i] {
			t.Fatalf("word %d not bit-identical", i)
		}
	}
	if _, _, err := takeMatrix(tail[:7], 1, 1); err == nil {
		t.Fatal("truncated matrix accepted")
	}
}

func TestWireFaultRoundTrip(t *testing.T) {
	fp := &hypermm.FaultPlan{
		Seed: 9, Drop: 0.1, Dup: 0.05, DelayProb: 0.2, DelayTime: 3,
		MaxRetries: 40, AckTimeout: 10, Backoff: 2,
		Down: []hypermm.Window{
			{Src: 1, Dst: 2, From: 5, To: 50},
			{Src: -1, Dst: -1, From: 0, To: hypermm.Forever},
		},
	}
	got := toWireFault(fp).plan()
	if got.Seed != fp.Seed || got.Drop != fp.Drop || got.MaxRetries != fp.MaxRetries {
		t.Fatalf("scalar fields: got %+v, want %+v", got, fp)
	}
	if got.Down[0] != fp.Down[0] {
		t.Fatalf("finite window: got %+v, want %+v", got.Down[0], fp.Down[0])
	}
	// Forever (+Inf) is not JSON-encodable; the wire substitutes a far
	// future no bounded simulated clock reaches.
	if math.IsInf(got.Down[1].To, 1) || got.Down[1].To != farFuture {
		t.Fatalf("Forever window mapped to %g, want %g", got.Down[1].To, farFuture)
	}
	if _, err := json.Marshal(toWireFault(fp)); err != nil {
		t.Fatalf("wire fault not JSON-encodable: %v", err)
	}
	if toWireFault(nil) != nil || (*wireFault)(nil).plan() != nil {
		t.Fatal("nil plan must stay nil across the wire")
	}
}

package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"hypermm"
)

// benchCluster boots a coordinator plus n LocalExec workers for a
// benchmark and reports round-trip throughput.
func benchCluster(b *testing.B, nWorkers, conc int) {
	coord, err := NewCoordinator(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	for i := 0; i < nWorkers; i++ {
		w, err := Join(context.Background(), coord.Addr().String(), WorkerConfig{
			Name: fmt.Sprintf("bench-w%d", i), Exec: LocalExec,
		})
		if err != nil {
			b.Fatal(err)
		}
		go w.Serve(context.Background())
		defer w.Abort()
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() != nWorkers {
		if time.Now().After(deadline) {
			b.Fatalf("worker count stuck at %d", coord.WorkerCount())
		}
		time.Sleep(time.Millisecond)
	}

	A := hypermm.RandomMatrix(64, 64, 1)
	B := hypermm.RandomMatrix(64, 64, 2)
	cfg := hypermm.Config{P: 16, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5}

	b.ResetTimer()
	var wg sync.WaitGroup
	jobs := make(chan struct{})
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				if _, err := coord.Submit(context.Background(), hypermm.Cannon, cfg, A, B); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < b.N; i++ {
		jobs <- struct{}{}
	}
	close(jobs)
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkCluster_RoundTrip_1Worker measures coordinator round-trip
// throughput (dispatch + TCP + execute + result) against one worker.
func BenchmarkCluster_RoundTrip_1Worker(b *testing.B) { benchCluster(b, 1, 4) }

// BenchmarkCluster_RoundTrip_2Workers measures the same load spread
// least-loaded across two workers.
func BenchmarkCluster_RoundTrip_2Workers(b *testing.B) { benchCluster(b, 2, 4) }

// Package simnet emulates a hypercube multicomputer in pure Go.
//
// Every processor node runs as its own goroutine; messages are real data
// copies delivered through buffered channels; and a deterministic
// logical-clock layer charges each transfer the paper's cost
//
//	hops * (t_s + t_w * words)
//
// under either of the paper's two machine models:
//
//   - OnePort: a node drives at most one outgoing and one incoming
//     transfer at a time (single-port, full-duplex). All of a node's
//     sends serialize through its clock, all receives serialize through
//     a single receive port, and a simultaneous send+receive pair
//     overlaps — which is what makes a Cannon shift step cost
//     t_s + t_w*m rather than twice that, exactly as the paper counts.
//   - MultiPort: a node may drive all log p links concurrently; each
//     cube dimension has its own outgoing and incoming port clock.
//
// Transfers between non-neighbors are routed e-cube (lowest dimension
// first) and charged store-and-forward: hops*(t_s + t_w*words), matching
// the paper's worst-case point-to-point charges. Intermediate nodes are
// not occupied (cut-through buffering); the lockstep algorithms in this
// repository are insensitive to that simplification.
//
// Determinism: receives match on (source, tag); a node's program order
// fixes the order port clocks advance, so simulated times are exactly
// reproducible run to run regardless of goroutine scheduling.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/trace"
)

// PortModel selects the paper's one-port or multi-port machine model.
type PortModel int

const (
	// OnePort allows one send and one receive at a time per node.
	OnePort PortModel = iota
	// MultiPort allows concurrent transfers on every cube dimension.
	MultiPort
)

// String implements fmt.Stringer.
func (pm PortModel) String() string {
	switch pm {
	case OnePort:
		return "one-port"
	case MultiPort:
		return "multi-port"
	default:
		return fmt.Sprintf("PortModel(%d)", int(pm))
	}
}

// Config describes a simulated machine.
type Config struct {
	P     int       // number of processors; must be a power of two
	Ports PortModel // one-port or multi-port
	Ts    float64   // message start-up cost (per hop)
	Tw    float64   // transfer time per word (per hop)
	Tc    float64   // compute time per floating-point operation

	// InboxCap overrides the per-node inbox channel capacity (0 means
	// a generous default). It bounds sender run-ahead, not correctness.
	InboxCap int

	// Trace, when non-nil, records every send, receive and compute
	// span (in simulated time) for Gantt rendering and utilization
	// summaries. Tracing does not perturb the simulated clocks.
	Trace *trace.Log

	// Topology selects the interconnect (default Hypercube). The
	// collective library and most algorithms assume a hypercube; the
	// 2-D torus supports neighbor-structured algorithms like Cannon's.
	Topology Topology

	// Corrupt, when non-nil, is invoked on every message as it is
	// submitted to the network and may mutate the payload — a failure
	// injection hook for testing that end-to-end verification catches
	// corrupted transfers. It must be safe for concurrent use.
	Corrupt func(src, dst int, tag uint64, data []float64)

	// Faults, when non-empty, injects deterministic link failures
	// (drops, duplications, delays, link-down windows) and switches
	// every transfer to the acknowledged retry protocol of fault.go.
	// A nil or empty plan leaves the machine on its exact fault-free
	// path.
	Faults *FaultPlan

	// Deadline, when positive, bounds the simulated time a node program
	// may consume; a node whose clock passes it fails with ErrDeadline
	// at its next send, receive or collective step.
	Deadline float64

	// Persistent keeps one worker goroutine per node alive across runs:
	// the first Run spawns them and subsequent runs hand the next
	// program closure to the parked workers instead of respawning P
	// goroutines. Machine pools use this to amortize setup across a
	// serving workload; a persistent machine must be released with
	// Close or its workers leak. Simulated clocks, counters and results
	// are byte-identical in both modes (the per-run reset is the same).
	Persistent bool
}

// Msg is a delivered message.
type Msg struct {
	Src, Dst   int
	Tag        uint64
	Data       []float64
	Rows, Cols int // optional shape for matrix payloads (0 if raw)

	depart float64 // sender port start time
	delay  float64 // injected extra in-flight latency
	dup    bool    // injected duplicate: payload arrives twice
	hops   int
	inDim  int         // receiver-side port dimension (highest differing bit)
	box    *payloadBox // pooled payload buffer, nil for owned/empty payloads
}

// Words returns the message payload length in words.
func (m *Msg) Words() int { return len(m.Data) }

// Matrix reinterprets the payload as a dense matrix. Panics if the
// message did not carry a shape.
func (m *Msg) Matrix() *matrix.Dense {
	if m.Rows*m.Cols != len(m.Data) {
		panic(fmt.Sprintf("simnet: message %dx%d shape does not cover %d words", m.Rows, m.Cols, len(m.Data)))
	}
	return matrix.FromSlice(m.Rows, m.Cols, m.Data)
}

// Machine is a simulated multicomputer (hypercube by default).
type Machine struct {
	Cfg    Config
	Cube   hypercube.Cube // valid for the Hypercube topology
	torusQ int            // side length for the Torus2D topology
	nodes  []*Node
	bar    *barrier

	// Abort machinery: the first node to fail records its fault and
	// closes down, releasing every node blocked in a receive, a
	// back-pressured send, or the barrier.
	down     chan struct{}
	downOnce sync.Once
	failMu   sync.Mutex
	failErr  error

	// Persistent-worker state (Cfg.Persistent): one goroutine per node
	// parks on its work channel between runs. started/closed are only
	// touched from the run-driving goroutine (RunErr and Close are not
	// safe to call concurrently, same as two overlapping runs never
	// were).
	started bool
	closed  bool
	runWG   sync.WaitGroup
	panics  chan string
}

// NewMachine builds a machine with cfg.P processor nodes.
func NewMachine(cfg Config) *Machine {
	m := &Machine{Cfg: cfg, nodes: make([]*Node, cfg.P), bar: newBarrier(cfg.P), down: make(chan struct{})}
	switch cfg.Topology {
	case Torus2D:
		q := intSqrt(cfg.P)
		if q*q != cfg.P {
			panic(fmt.Sprintf("simnet: torus needs a square node count, got %d", cfg.P))
		}
		m.torusQ = q
	default:
		m.Cube = hypercube.New(cfg.P)
	}
	cap := cfg.InboxCap
	if cap <= 0 {
		cap = 8*m.numPorts() + 64
	}
	for id := range m.nodes {
		m.nodes[id] = &Node{
			ID:       id,
			m:        m,
			inbox:    make(chan *Msg, cap),
			pend:     make(map[pendKey][]*Msg),
			sendPort: make([]float64, m.numPorts()),
			recvPort: make([]float64, m.numPorts()),
			work:     make(chan func(*Node), 1),
		}
	}
	return m
}

// Close releases the machine: parked in-flight message buffers return
// to their pools and, on a persistent machine, the node worker
// goroutines exit. A closed machine cannot run again. Close is
// idempotent; it must not race a run in flight. Non-persistent machines
// need no Close (their per-run goroutines exit on their own), but
// calling it is always safe.
func (m *Machine) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, n := range m.nodes {
		n.releaseParked()
		if m.started {
			close(n.work)
		}
	}
}

// intSqrt returns the integer square root of x.
func intSqrt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// Node returns the node with the given address.
func (m *Machine) Node(id int) *Node { return m.nodes[id] }

// P returns the number of processors.
func (m *Machine) P() int { return m.Cfg.P }

// NodeStats is a snapshot of one node's counters.
type NodeStats struct {
	ID        int
	Clock     float64 // local logical time at program end
	Msgs      int64   // messages sent
	Words     int64   // payload words sent (end to end)
	Startups  int64   // per-hop start-ups charged to this sender
	WordHops  int64   // payload words times hops
	Flops     int64   // floating-point operations executed
	Retries   int64   // lost transmission attempts recovered by retry
	PeakWords int     // largest NoteWords() observation (space accounting)
}

// RunStats aggregates a completed run.
type RunStats struct {
	Elapsed       float64 // max node clock: simulated makespan
	TotalMsgs     int64
	TotalWords    int64
	TotalStartups int64
	TotalWordHops int64
	TotalFlops    int64
	TotalRetries  int64
	TotalPeak     int // sum over nodes of PeakWords: aggregate space
	MaxPeak       int // largest single-node PeakWords
	Nodes         []NodeStats
}

// Run executes program on every node concurrently (SPMD) and returns
// aggregated statistics once all node programs have returned. A node
// panic — including a typed fault — is re-raised on the caller with the
// node id attached. Programs that may run under a fault plan or a
// deadline should call RunErr instead.
func (m *Machine) Run(program func(n *Node)) RunStats {
	rs, err := m.RunErr(program)
	if err != nil {
		panic("simnet: " + err.Error())
	}
	return rs
}

// RunErr executes program on every node concurrently (SPMD) and returns
// aggregated statistics once all node programs have returned. A typed
// fault raised by any node (ErrLinkDown, ErrDeadline) aborts the run:
// every other node is released from its blocking operation, and the
// originating fault is returned as an error that errors.Is can match.
// Any other node panic is re-raised with the node id attached.
func (m *Machine) RunErr(program func(n *Node)) (RunStats, error) {
	if m.closed {
		return RunStats{}, errors.New("simnet: machine is closed")
	}
	// Arm the abort machinery for this run. Node goroutines observe
	// these writes through the happens-before edge of their spawn (or,
	// on a persistent machine, of the work-channel hand-off).
	m.panics = make(chan string, len(m.nodes))
	m.down = make(chan struct{})
	m.downOnce = sync.Once{}
	m.failMu.Lock()
	m.failErr = nil
	m.failMu.Unlock()
	// Re-arm the barrier: a previous aborted run may have left it
	// broken or mid-generation with a nonzero arrival count.
	m.bar.reset()
	// Reset every node before starting any program: a node started
	// early may deliver its first messages to a peer whose reset has
	// not happened yet, and reset drains the inbox — the message would
	// be silently lost and its receiver would block forever (observed
	// as a rare large-p deadlock).
	for _, n := range m.nodes {
		n.reset()
	}
	m.runWG.Add(len(m.nodes))
	if m.Cfg.Persistent {
		// Warm path: hand the program to the parked per-node workers.
		if !m.started {
			m.started = true
			for _, n := range m.nodes {
				go n.workLoop()
			}
		}
		for _, n := range m.nodes {
			n.work <- program
		}
	} else {
		// Cold path: one fresh goroutine per node, per run.
		for _, n := range m.nodes {
			go n.runProgram(program)
		}
	}
	m.runWG.Wait()
	select {
	case p := <-m.panics:
		panic("simnet: " + p)
	default:
	}
	m.failMu.Lock()
	err := m.failErr
	m.failMu.Unlock()
	if err != nil {
		// The abort left in-flight messages parked in inboxes and
		// pending queues; release their pooled buffers now so pool
		// accounting balances without waiting for the next run's reset.
		for _, n := range m.nodes {
			n.releaseParked()
		}
		return RunStats{}, err
	}
	return m.collect(), nil
}

// workLoop is a persistent node worker: it parks on the work channel
// between runs and executes one program closure per hand-off, until
// Close ends it.
func (n *Node) workLoop() {
	for program := range n.work {
		n.runProgram(program)
	}
}

// runProgram executes one run's program on the node, converting a typed
// fault panic into the machine's recorded failure (and any other panic
// into a re-raise on the run's caller), then signals completion.
func (n *Node) runProgram(program func(*Node)) {
	defer n.m.runWG.Done()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if fe, ok := r.(*FaultError); ok {
			n.m.recordFault(fe)
		} else {
			n.m.panics <- fmt.Sprintf("node %d: %v", n.ID, r)
		}
		// Release peers blocked in receives, back-pressured
		// sends, or the barrier so the run's wait terminates.
		n.m.abort()
	}()
	program(n)
}

// abort releases every node blocked in a receive, a back-pressured send
// or the barrier. Idempotent.
func (m *Machine) abort() {
	m.downOnce.Do(func() {
		close(m.down)
		m.bar.abort()
	})
}

// recordFault keeps the most informative fault: an originating failure
// wins over the ErrAborted cascade it triggers on the other nodes, and
// among concurrent originating failures the lowest node ID wins — a
// deterministic tie-break, so the surfaced error does not depend on
// goroutine scheduling when many nodes fail in the same instant.
func (m *Machine) recordFault(fe *FaultError) {
	m.failMu.Lock()
	defer m.failMu.Unlock()
	cur, _ := m.failErr.(*FaultError)
	switch {
	case cur == nil:
		m.failErr = fe
	case errors.Is(cur.Err, ErrAborted) && !errors.Is(fe.Err, ErrAborted):
		m.failErr = fe
	case errors.Is(cur.Err, ErrAborted) == errors.Is(fe.Err, ErrAborted) && fe.Node < cur.Node:
		m.failErr = fe
	}
}

func (m *Machine) collect() RunStats {
	var rs RunStats
	rs.Nodes = make([]NodeStats, len(m.nodes))
	for i, n := range m.nodes {
		s := NodeStats{
			ID: n.ID, Clock: n.now, Msgs: n.msgs, Words: n.words,
			Startups: n.startups, WordHops: n.wordHops, Flops: n.flops,
			Retries: n.retries, PeakWords: n.peakWords,
		}
		rs.Nodes[i] = s
		if s.Clock > rs.Elapsed {
			rs.Elapsed = s.Clock
		}
		rs.TotalMsgs += s.Msgs
		rs.TotalWords += s.Words
		rs.TotalStartups += s.Startups
		rs.TotalWordHops += s.WordHops
		rs.TotalFlops += s.Flops
		rs.TotalRetries += s.Retries
		rs.TotalPeak += s.PeakWords
		if s.PeakWords > rs.MaxPeak {
			rs.MaxPeak = s.PeakWords
		}
	}
	return rs
}

// Node is one simulated processor. Node methods must only be called
// from within the node's own program goroutine.
type Node struct {
	ID int
	m  *Machine

	now      float64   // local logical clock
	sendPort []float64 // per-dimension outgoing port busy-until (multi-port)
	recvPort []float64 // per-dimension incoming port busy-until (multi-port)
	sendBusy float64   // single outgoing port busy-until (one-port)
	recvBusy float64   // single incoming port busy-until (one-port)

	inbox chan *Msg

	// work receives one program closure per run when the machine is
	// persistent (Cfg.Persistent); the node's worker goroutine parks on
	// it between runs. Unused (but allocated) in cold mode.
	work chan func(*Node)

	// pend indexes out-of-order arrivals by (source, tag) so match is
	// O(1) instead of a scan of every parked message. Queues are FIFO
	// per key; emptied queues keep their backing arrays for reuse. The
	// mutex exists for Machine.Diagnose, which reads from a watchdog
	// goroutine — all other access is from the node's own goroutine.
	pendMu  sync.Mutex
	pend    map[pendKey][]*Msg
	pendLen int

	msgs, words, startups, wordHops, flops, retries int64
	peakWords                                       int

	// Diagnostic state, written before blocking in match and read
	// (racily, diagnostics only) by Machine.Diagnose.
	waitSrc atomic.Int64
	waitTag atomic.Uint64
	waiting atomic.Bool
}

func (n *Node) reset() {
	n.now, n.sendBusy, n.recvBusy = 0, 0, 0
	for d := range n.sendPort {
		n.sendPort[d], n.recvPort[d] = 0, 0
	}
	n.releaseParked()
	n.msgs, n.words, n.startups, n.wordHops, n.flops, n.retries = 0, 0, 0, 0, 0, 0
	n.peakWords = 0
}

// releaseParked returns every message stranded in the node's pending
// index or inbox (an aborted run leaves both populated) to the payload
// and header pools. Safe to call from the run-driving goroutine when no
// node program is executing.
func (n *Node) releaseParked() {
	n.pendMu.Lock()
	for k, q := range n.pend {
		for i, msg := range q {
			msg.Release()
			q[i] = nil
		}
		n.pend[k] = q[:0]
	}
	n.pendLen = 0
	n.pendMu.Unlock()
	for {
		select {
		case msg := <-n.inbox:
			msg.Release()
		default:
			return
		}
	}
}

// Machine returns the machine the node belongs to.
func (n *Node) Machine() *Machine { return n.m }

// P returns the machine size.
func (n *Node) P() int { return n.m.Cfg.P }

// Ports returns the machine's port model.
func (n *Node) Ports() PortModel { return n.m.Cfg.Ports }

// CubeDim returns log2(P).
func (n *Node) CubeDim() int { return n.m.Cube.Dim }

// Now returns the node's current logical time.
func (n *Node) Now() float64 { return n.now }

// cost returns the modeled transfer time for a payload over h hops.
//
// One-port: store-and-forward, h*(t_s + t_w*m) — the paper's charge for
// e.g. the 3DD first phase on a one-port machine. Multi-port:
// h*t_s + t_w*m — a multi-port node can pipeline a multi-hop transfer
// over edge-disjoint paths, which is how Table 2 arrives at DNS's
// multi-port coefficient 4 n^2/p^(2/3) and 3DD's 3 n^2/p^(2/3).
func (n *Node) cost(words, hops int) float64 {
	if n.m.Cfg.Ports == MultiPort {
		return float64(hops)*n.m.Cfg.Ts + n.m.Cfg.Tw*float64(words)
	}
	return float64(hops) * (n.m.Cfg.Ts + n.m.Cfg.Tw*float64(words))
}

// Send transmits data (copied) to the destination node with the given
// tag, charging the e-cube store-and-forward cost to the sender's
// outgoing port. Send never blocks on simulated time, only on inbox
// back-pressure. The copy lives in a pooled buffer; a receiver that
// fully consumes the payload may recycle it with Msg.Release.
func (n *Node) Send(dst int, tag uint64, data []float64) {
	n.sendShaped(dst, tag, data, 0, 0)
}

// SendM transmits a dense matrix block (copied), preserving its shape.
func (n *Node) SendM(dst int, tag uint64, blk *matrix.Dense) {
	n.sendShaped(dst, tag, blk.Data, blk.Rows, blk.Cols)
}

// SendOwned transmits data without the defensive copy, transferring
// ownership of the slice to the network: the caller must not read or
// write data after the call. Use it for freshly built buffers the
// sender provably never touches again — the lockstep collectives'
// per-step staging buffers are the canonical case.
func (n *Node) SendOwned(dst int, tag uint64, data []float64) {
	n.sendCore(dst, tag, data, nil, 0, 0)
}

// SendMOwned is SendOwned for a shaped matrix block: blk and its Data
// must not be used by the sender after the call.
func (n *Node) SendMOwned(dst int, tag uint64, blk *matrix.Dense) {
	n.sendCore(dst, tag, blk.Data, nil, blk.Rows, blk.Cols)
}

// sendShaped is the copying path behind Send/SendM: the payload is
// duplicated into a pooled buffer so the caller keeps ownership of its
// slice.
func (n *Node) sendShaped(dst int, tag uint64, data []float64, rows, cols int) {
	box := getPayload(len(data))
	var cp []float64
	if box != nil {
		cp = box.d
		copy(cp, data)
	}
	n.sendCore(dst, tag, cp, box, rows, cols)
}

// sendCore submits a payload the network now owns (pooled copy or
// relinquished caller slice) and charges the transfer.
func (n *Node) sendCore(dst int, tag uint64, data []float64, box *payloadBox, rows, cols int) {
	if dst < 0 || dst >= n.m.Cfg.P {
		panic(fmt.Sprintf("simnet: send to node %d out of range [0,%d)", dst, n.m.Cfg.P))
	}
	if dl := n.m.Cfg.Deadline; dl > 0 && n.now > dl {
		// Inline CheckDeadline that first returns the payload box the
		// copying path already checked out; the raised fault is
		// field-for-field identical.
		if box != nil {
			payloadsInFlight.Add(-1)
			putPayload(box)
		}
		panic(&FaultError{Node: n.ID, Op: "deadline", Src: -1, Dst: -1, Err: ErrDeadline})
	}
	msg := msgPool.Get().(*Msg)
	msgsInFlight.Add(1)
	*msg = Msg{Src: n.ID, Dst: dst, Tag: tag, Data: data, Rows: rows, Cols: cols, box: box}
	if f := n.m.Cfg.Corrupt; f != nil && dst != n.ID {
		f(n.ID, dst, tag, data)
	}
	if dst == n.ID {
		msg.depart = n.now
		n.enqueuePending(msg)
		return
	}
	msg.hops = n.m.hops(n.ID, dst)
	outDim := n.m.outPort(n.ID, dst)
	msg.inDim = n.m.inPort(n.ID, dst)
	c := n.cost(len(data), msg.hops)

	if fp := n.m.Cfg.Faults; fp.active() {
		n.sendReliable(fp, msg, outDim, c)
		return
	}

	var start float64
	switch n.m.Cfg.Ports {
	case OnePort:
		// The single outgoing port serializes through the node clock:
		// the node cannot compute or start another send meanwhile.
		start = maxf(n.now, n.sendBusy)
		n.sendBusy = start + c
		n.now = n.sendBusy
	case MultiPort:
		// Only the dimension's outgoing port is occupied; the node may
		// immediately issue transfers on other dimensions or compute.
		start = maxf(n.now, n.sendPort[outDim])
		n.sendPort[outDim] = start + c
	}
	msg.depart = start
	if tr := n.m.Cfg.Trace; tr != nil {
		tr.Add(trace.Event{Node: n.ID, Kind: trace.Send, Start: start, End: start + c, Peer: dst, Words: len(data), Tag: tag})
	}

	n.msgs++
	n.words += int64(len(data))
	n.startups += int64(msg.hops)
	n.wordHops += int64(len(data) * msg.hops)

	n.deliver(msg)
}

// sendReliable is the acknowledged transfer of the fault-injection
// protocol: every attempt transmits the payload; a lost attempt charges
// the ack timeout plus exponential backoff before the retransmission;
// the delivered attempt charges the one-word ack's return trip. The
// retry budget exhausting raises a typed ErrLinkDown fault.
func (n *Node) sendReliable(fp *FaultPlan, msg *Msg, outDim int, c float64) {
	ackC := n.cost(1, msg.hops)
	maxR := fp.maxRetries()
	for attempt := 0; ; attempt++ {
		var start float64
		if n.m.Cfg.Ports == OnePort {
			start = maxf(n.now, n.sendBusy)
		} else {
			start = maxf(n.now, n.sendPort[outDim])
		}
		drop, dup, delay := fp.decide(n.ID, msg.Dst, msg.Tag, attempt, start)
		// The attempt put the payload on the wire either way.
		n.msgs++
		n.words += int64(len(msg.Data))
		n.startups += int64(msg.hops)
		n.wordHops += int64(len(msg.Data) * msg.hops)
		if tr := n.m.Cfg.Trace; tr != nil {
			tr.Add(trace.Event{Node: n.ID, Kind: trace.Send, Start: start, End: start + c, Peer: msg.Dst, Words: len(msg.Data), Tag: msg.Tag})
		}
		if !drop {
			// Delivered: the sender holds the port until the ack is in
			// hand — data transfer, injected latency, one-word ack back.
			n.occupySend(outDim, start+c+delay+ackC)
			n.msgs++
			n.words++
			n.startups += int64(msg.hops)
			n.wordHops += int64(msg.hops)
			if dup {
				// The network duplicated the payload in flight: count
				// the extra copy here (sender counters are the only
				// goroutine-safe home); the receiver charges its port.
				n.msgs++
				n.words += int64(len(msg.Data))
				n.startups += int64(msg.hops)
				n.wordHops += int64(len(msg.Data) * msg.hops)
			}
			msg.depart = start
			msg.delay = delay
			msg.dup = dup
			n.deliver(msg)
			return
		}
		// Lost: wait out the ack timeout, back off, retransmit.
		n.retries++
		n.occupySend(outDim, start+c+fp.ackTimeout(c+ackC)+fp.backoff(n.m.Cfg.Ts, attempt))
		if attempt >= maxR {
			// The payload never reached an inbox; recycle its buffers
			// before raising the fault (capture the coordinates first —
			// Release recycles the header).
			dst, tag := msg.Dst, msg.Tag
			msg.Release()
			panic(&FaultError{Node: n.ID, Op: "send", Src: n.ID, Dst: dst, Tag: tag, Attempts: attempt + 1, Err: ErrLinkDown})
		}
		if dl := n.m.Cfg.Deadline; dl > 0 && n.now > dl {
			// Inline CheckDeadline with the in-flight message released:
			// the fault (fields included) is identical, but the pooled
			// payload and header are not stranded.
			msg.Release()
			panic(&FaultError{Node: n.ID, Op: "deadline", Src: -1, Dst: -1, Err: ErrDeadline})
		}
	}
}

// occupySend marks the outgoing path busy until t: the node clock for a
// one-port machine, the dimension's port for a multi-port one.
func (n *Node) occupySend(outDim int, t float64) {
	if n.m.Cfg.Ports == OnePort {
		n.sendBusy = t
		n.now = t
	} else {
		n.sendPort[outDim] = t
	}
}

// deliver hands the message to the destination inbox, backing out with a
// typed abort fault if the run is torn down while blocked on
// back-pressure.
func (n *Node) deliver(msg *Msg) {
	// Fast path: the inbox is buffered and almost never full, and a
	// non-blocking send on a single channel skips the general select
	// machinery on the hottest line of the emulator.
	select {
	case n.m.nodes[msg.Dst].inbox <- msg:
		return
	default:
	}
	select {
	case n.m.nodes[msg.Dst].inbox <- msg:
	case <-n.m.down:
		// The message never entered an inbox, so nothing downstream can
		// release it: recycle it here before backing out. Capture the
		// fault coordinates first — Release recycles the header.
		dst, tag := msg.Dst, msg.Tag
		msg.Release()
		panic(n.abortFault("send", n.ID, dst, tag))
	}
}

// Recv blocks until the message with the given source and tag arrives,
// charges the receive-port occupancy, and advances the node clock to
// the arrival time (the data dependency).
func (n *Node) Recv(src int, tag uint64) *Msg {
	n.CheckDeadline()
	msg := n.match(src, tag)
	if msg.Src == n.ID { // self-delivery is free
		if msg.depart > n.now {
			n.now = msg.depart
		}
		return msg
	}
	c := n.cost(len(msg.Data), msg.hops)
	dep := msg.depart + msg.delay // injected latency shifts the arrival
	var arrival float64
	switch n.m.Cfg.Ports {
	case OnePort:
		start := maxf(dep, n.recvBusy)
		arrival = start + c
		n.recvBusy = arrival
		if msg.dup {
			// The duplicate occupies the receive port for a second
			// transfer; the data dependency is met by the first copy.
			n.recvBusy += c
		}
	case MultiPort:
		start := maxf(dep, n.recvPort[msg.inDim])
		arrival = start + c
		n.recvPort[msg.inDim] = arrival
		if msg.dup {
			n.recvPort[msg.inDim] += c
		}
	}
	if tr := n.m.Cfg.Trace; tr != nil {
		tr.Add(trace.Event{Node: n.ID, Kind: trace.Recv, Start: arrival - c, End: arrival, Peer: msg.Src, Words: len(msg.Data), Tag: tag})
	}
	if arrival > n.now {
		n.now = arrival
	}
	return msg
}

// RecvM receives a shaped matrix message.
func (n *Node) RecvM(src int, tag uint64) *matrix.Dense {
	return n.Recv(src, tag).Matrix()
}

// pendKey identifies a receive rendezvous: messages park and match on
// exactly (source, tag).
type pendKey struct {
	src int
	tag uint64
}

// enqueuePending parks a message that no receive is waiting for yet.
func (n *Node) enqueuePending(msg *Msg) {
	key := pendKey{msg.Src, msg.Tag}
	n.pendMu.Lock()
	n.pend[key] = append(n.pend[key], msg)
	n.pendLen++
	n.pendMu.Unlock()
}

// takePending pops the oldest parked message for key, if any. The
// backing array is retained (shifted down) so steady-state matching
// does not allocate.
func (n *Node) takePending(key pendKey) *Msg {
	n.pendMu.Lock()
	defer n.pendMu.Unlock()
	q := n.pend[key]
	if len(q) == 0 {
		return nil
	}
	msg := q[0]
	copy(q, q[1:])
	q[len(q)-1] = nil
	n.pend[key] = q[:len(q)-1]
	n.pendLen--
	return msg
}

// match returns the first pending or incoming message from src with tag.
func (n *Node) match(src int, tag uint64) *Msg {
	key := pendKey{src, tag}
	if msg := n.takePending(key); msg != nil {
		return msg
	}
	n.waitSrc.Store(int64(src))
	n.waitTag.Store(tag)
	n.waiting.Store(true)
	defer n.waiting.Store(false)
	for {
		// Fast path: drain whatever already sits in the inbox with
		// non-blocking receives before paying for the two-case select.
		// Teardown stays responsive — the inbox holds finitely many
		// messages, so a node that never matches falls through to the
		// blocking select below and sees the down signal there.
		select {
		case msg := <-n.inbox:
			if msg.Src == src && msg.Tag == tag {
				return msg
			}
			n.enqueuePending(msg)
			continue
		default:
		}
		select {
		case msg := <-n.inbox:
			if msg.Src == src && msg.Tag == tag {
				return msg
			}
			n.enqueuePending(msg)
		case <-n.m.down:
			// The run is being torn down because a peer failed: back
			// out instead of blocking on a message that will never come.
			panic(n.abortFault("recv", src, n.ID, tag))
		}
	}
}

// Diagnose reports, for every node currently blocked in a receive, the
// (source, tag) it waits for and the (source, tag) pairs parked in its
// pending set (sorted by source then tag for stable output). The
// waiting flags are racy by design — call it from a watchdog while a
// run appears stalled; the pending index itself is read under its lock.
func (m *Machine) Diagnose() string {
	var sb strings.Builder
	for _, n := range m.nodes {
		if !n.waiting.Load() {
			continue
		}
		n.pendMu.Lock()
		keys := make([]pendKey, 0, len(n.pend))
		for k, q := range n.pend {
			if len(q) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].src != keys[j].src {
				return keys[i].src < keys[j].src
			}
			return keys[i].tag < keys[j].tag
		})
		fmt.Fprintf(&sb, "node %d waits on (src=%d tag=%#x); inbox=%d pending=[",
			n.ID, n.waitSrc.Load(), n.waitTag.Load(), len(n.inbox))
		first := true
		for _, k := range keys {
			for range n.pend[k] {
				if !first {
					sb.WriteByte(' ')
				}
				first = false
				fmt.Fprintf(&sb, "(%d,%#x)", k.src, k.tag)
			}
		}
		n.pendMu.Unlock()
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Compute charges flops floating-point operations to the node clock.
func (n *Node) Compute(flops int64) {
	if flops < 0 {
		panic("simnet: negative flop count")
	}
	n.flops += flops
	d := float64(flops) * n.m.Cfg.Tc
	if tr := n.m.Cfg.Trace; tr != nil && d > 0 {
		tr.Add(trace.Event{Node: n.ID, Kind: trace.Compute, Start: n.now, End: n.now + d, Peer: -1, Words: 0})
	}
	n.now += d
}

// MulAdd performs c += a*b locally and charges the flop cost.
func (n *Node) MulAdd(c, a, b *matrix.Dense) {
	matrix.MulAdd(c, a, b)
	n.Compute(matrix.MulFlops(a.Rows, a.Cols, b.Cols))
}

// Mul returns a*b, charging the flop cost.
func (n *Node) Mul(a, b *matrix.Dense) *matrix.Dense {
	c := matrix.Mul(a, b)
	n.Compute(matrix.MulFlops(a.Rows, a.Cols, b.Cols))
	return c
}

// NoteWords records an observation of the node's current live data
// words; the maximum over observations is reported as PeakWords for the
// paper's Table 3 space accounting. Algorithms call it at their peak
// holding points.
func (n *Node) NoteWords(words int) {
	if words > n.peakWords {
		n.peakWords = words
	}
}

// AdvanceTo moves the node clock forward to t if t is later; used by
// collectives to model synchronized phase boundaries. It never moves
// the clock backward.
func (n *Node) AdvanceTo(t float64) {
	if t > n.now {
		n.now = t
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func lowestBit(x int) int {
	if x == 0 {
		panic("simnet: lowestBit(0)")
	}
	d := 0
	for x&1 == 0 {
		x >>= 1
		d++
	}
	return d
}

func highestBit(x int) int {
	if x == 0 {
		panic("simnet: highestBit(0)")
	}
	d := -1
	for x != 0 {
		x >>= 1
		d++
	}
	return d
}

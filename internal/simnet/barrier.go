package simnet

import "sync"

// barrier is a reusable cyclic barrier that also aligns logical clocks:
// every participant leaves with its clock advanced to the maximum over
// all participants at entry. A run that fails part-way breaks the
// barrier (abort) so waiters back out with a typed fault instead of
// blocking forever, and the next run re-arms it (reset) so a dirty
// generation — nonzero arrival count from an aborted run — cannot leak
// into the next one.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     uint64
	maxNow  float64
	release float64
	broken  bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await enters the barrier with the caller's clock and returns the
// aligned (maximum) clock once all parties have arrived. If the barrier
// breaks while waiting — a peer failed and the machine aborted the run —
// await raises a typed ErrAborted fault on the caller.
func (b *barrier) await(node int, now float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		panic(&FaultError{Node: node, Op: "barrier", Src: -1, Dst: -1, Err: ErrAborted})
	}
	if now > b.maxNow {
		b.maxNow = now
	}
	b.count++
	if b.count == b.parties {
		b.release = b.maxNow
		b.maxNow = 0
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.release
	}
	gen := b.gen
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		panic(&FaultError{Node: node, Op: "barrier", Src: -1, Dst: -1, Err: ErrAborted})
	}
	return b.release
}

// abort breaks the barrier, releasing every waiter with a fault.
func (b *barrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset re-arms the barrier for a fresh run, clearing any generation
// state an aborted run left behind. Callers must guarantee no waiter is
// still parked inside (Machine.RunErr does: it resets only after every
// node goroutine of the previous run has returned).
func (b *barrier) reset() {
	b.mu.Lock()
	b.broken = false
	b.count = 0
	b.maxNow = 0
	b.gen++
	b.mu.Unlock()
}

// Barrier synchronizes all nodes of the machine at zero simulated cost
// and aligns every node's clock to the latest participant. Algorithms
// in this repository do not use it — their phases pipeline naturally,
// which is measured honestly — but callers who want the paper's
// strictly sequential phase accounting can insert barriers between
// phases. Every node of the machine must call Barrier the same number
// of times or the program deadlocks. If the run aborts (a peer raised a
// typed fault), Barrier backs out with a typed ErrAborted fault.
func (n *Node) Barrier() {
	n.now = n.m.bar.await(n.ID, n.now)
}

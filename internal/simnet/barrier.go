package simnet

import "sync"

// barrier is a reusable cyclic barrier that also aligns logical clocks:
// every participant leaves with its clock advanced to the maximum over
// all participants at entry.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     uint64
	maxNow  float64
	release float64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await enters the barrier with the caller's clock and returns the
// aligned (maximum) clock once all parties have arrived.
func (b *barrier) await(now float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now > b.maxNow {
		b.maxNow = now
	}
	b.count++
	if b.count == b.parties {
		b.release = b.maxNow
		b.maxNow = 0
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return b.release
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
	return b.release
}

// Barrier synchronizes all nodes of the machine at zero simulated cost
// and aligns every node's clock to the latest participant. Algorithms
// in this repository do not use it — their phases pipeline naturally,
// which is measured honestly — but callers who want the paper's
// strictly sequential phase accounting can insert barriers between
// phases. Every node of the machine must call Barrier the same number
// of times or the program deadlocks.
func (n *Node) Barrier() {
	n.now = n.m.bar.await(n.now)
}

package simnet

import (
	"errors"
	"reflect"
	"testing"
)

// exerciser is a nontrivial SPMD program touching sends, shaped
// receives, self-delivery, compute and the barrier — the surfaces whose
// state a machine reset must scrub.
func exerciser(round uint64) func(n *Node) {
	return func(n *Node) {
		p := n.P()
		right, left := (n.ID+1)%p, (n.ID-1+p)%p
		n.Send(right, round<<8|1, []float64{float64(n.ID), float64(n.ID + 1)})
		n.Send(n.ID, round<<8|2, []float64{42}) // self-delivery
		msg := n.Recv(left, round<<8|1)
		msg.Release()
		n.Barrier()
		n.Compute(100)
		n.Recv(n.ID, round<<8|2).Release()
		n.Send(n.ID^1, round<<8|3, make([]float64, 16))
		n.Recv(n.ID^1, round<<8|3).Release()
	}
}

// TestPersistentRunEquivalence pins the tentpole invariant: a persistent
// machine (parked workers, warm reuse) produces RunStats byte-identical
// to a fresh cold machine, run after run.
func TestPersistentRunEquivalence(t *testing.T) {
	cfg := Config{P: 8, Ports: OnePort, Ts: 10, Tw: 2, Tc: 0.5}
	warmCfg := cfg
	warmCfg.Persistent = true
	warm := NewMachine(warmCfg)
	defer warm.Close()
	for round := uint64(0); round < 5; round++ {
		cold := NewMachine(cfg)
		want := cold.Run(exerciser(round))
		got := warm.Run(exerciser(round))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: persistent run diverged from fresh machine:\nfresh: %+v\nwarm:  %+v", round, want, got)
		}
	}
}

// TestPersistentReuseAfterFault checks a persistent machine survives a
// faulted run and its next clean run is indistinguishable from a fresh
// machine's.
func TestPersistentReuseAfterFault(t *testing.T) {
	cfg := Config{P: 4, Ports: OnePort, Ts: 1, Tw: 1, Persistent: true}
	cfg.Faults = &FaultPlan{Seed: 9, Down: []Window{{Src: -1, Dst: -1, From: 0, To: 1e18}}, MaxRetries: 1}
	m := NewMachine(cfg)
	defer m.Close()
	prog := exerciser(0)
	if _, err := m.RunErr(prog); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("hostile plan: got %v, want ErrLinkDown", err)
	}
	m.Cfg.Faults = nil
	got, err := m.RunErr(prog)
	if err != nil {
		t.Fatalf("clean run after fault: %v", err)
	}
	want := NewMachine(Config{P: 4, Ports: OnePort, Ts: 1, Tw: 1}).Run(prog)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("post-fault reuse diverged:\nfresh: %+v\nwarm:  %+v", want, got)
	}
}

// TestClosedMachine checks Close ends a persistent machine: further runs
// are rejected with an error, and Close is idempotent.
func TestClosedMachine(t *testing.T) {
	m := NewMachine(Config{P: 2, Persistent: true})
	m.Run(func(n *Node) {})
	m.Close()
	m.Close()
	if _, err := m.RunErr(func(n *Node) {}); err == nil {
		t.Fatal("RunErr on a closed machine succeeded")
	}
}

// TestPoolBalanceAfterFaultedRun is the leak regression for the
// abort/error path: a run that dies mid-collective leaves messages
// parked in inboxes and pending queues, and RunErr must return their
// pooled buffers. The program sends messages that are never received
// (remote, self-delivered, and possibly blocked on back-pressure) and
// then fails; the in-flight pool counters must come back to where they
// started.
func TestPoolBalanceAfterFaultedRun(t *testing.T) {
	p0, m0 := PoolInFlight()
	m := mach(4, OnePort, 1, 1, 0)
	_, err := m.RunErr(func(n *Node) {
		if n.ID == 0 {
			for i := 0; i < 16; i++ {
				n.Send(1, uint64(i), make([]float64, 32)) // never received
			}
			n.Send(0, 99, []float64{1}) // self-delivery, never received
		}
		if n.ID == 1 {
			panic(&FaultError{Node: 1, Op: "recv", Src: -1, Dst: -1, Err: ErrLinkDown})
		}
		if n.ID > 1 {
			n.Recv(0, 1000) // never sent: released by the abort
		}
	})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("got %v, want ErrLinkDown", err)
	}
	p1, m1 := PoolInFlight()
	if p1 != p0 || m1 != m0 {
		t.Fatalf("pooled buffers leaked across faulted run: payloads %d -> %d, msgs %d -> %d", p0, p1, m0, m1)
	}
}

// TestPoolBalanceAfterLinkDownSend covers the sendReliable fault paths:
// both the retries-exhausted ErrLinkDown panic and the released payload
// of every lost attempt must leave the pool balanced.
func TestPoolBalanceAfterLinkDownSend(t *testing.T) {
	p0, m0 := PoolInFlight()
	m := NewMachine(Config{
		P: 2, Ts: 1, Tw: 1,
		Faults: &FaultPlan{Seed: 3, Down: []Window{{Src: 0, Dst: 1, From: 0, To: 1e18}}, MaxRetries: 2},
	})
	_, err := m.RunErr(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 5, make([]float64, 8))
		}
		if n.ID == 1 {
			n.Recv(0, 5)
		}
	})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("got %v, want ErrLinkDown", err)
	}
	p1, m1 := PoolInFlight()
	if p1 != p0 || m1 != m0 {
		t.Fatalf("pooled buffers leaked on link-down send: payloads %d -> %d, msgs %d -> %d", p0, p1, m0, m1)
	}
}

// TestPoolBalanceAfterDeadline covers the deadline fault paths: a send
// that trips the deadline after its payload box was checked out must
// hand the box back before raising the fault.
func TestPoolBalanceAfterDeadline(t *testing.T) {
	p0, m0 := PoolInFlight()
	m := NewMachine(Config{P: 2, Ts: 100, Tw: 1, Deadline: 50})
	_, err := m.RunErr(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 4)) // pushes the clock past the deadline
			n.Send(1, 2, make([]float64, 4)) // trips it with a box in hand
		}
		if n.ID == 1 {
			n.Recv(0, 1).Release()
			n.Recv(0, 2).Release()
		}
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	p1, m1 := PoolInFlight()
	if p1 != p0 || m1 != m0 {
		t.Fatalf("pooled buffers leaked on deadline: payloads %d -> %d, msgs %d -> %d", p0, p1, m0, m1)
	}
}

// TestPoolBalanceCleanRun: a program whose receivers release everything
// they consume leaves the counters exactly balanced on the success path
// too (reset releases any message a program legally abandoned).
func TestPoolBalanceCleanRun(t *testing.T) {
	p0, m0 := PoolInFlight()
	m := mach(8, MultiPort, 5, 1, 0)
	m.Run(exerciser(1))
	p1, m1 := PoolInFlight()
	if p1 != p0 || m1 != m0 {
		t.Fatalf("pooled buffers leaked on clean run: payloads %d -> %d, msgs %d -> %d", p0, p1, m0, m1)
	}
}

// Fault injection: a seeded, deterministic plan of link-level failures
// (drops, duplications, extra latency, transient link-down windows) plus
// the acknowledged-transfer protocol that recovers from them.
//
// Every decision is a pure function of (plan seed, src, dst, tag,
// attempt) — plus the attempt's departure time for link-down windows —
// so two runs of the same program under the same plan produce identical
// logical clocks and counters regardless of goroutine scheduling.
//
// When a plan is active every non-self Send becomes an acknowledged
// transfer: each attempt transmits the payload (charged to the clock and
// the traffic counters), a lost attempt additionally charges the ack
// timeout plus exponential backoff before the retransmission, and the
// successful attempt charges the one-word ack's return trip to the
// sender. After MaxRetries lost attempts the send fails with a typed
// ErrLinkDown, which Machine.RunErr converts into an error return after
// releasing every other node. The receive side of the ack (the one-word
// control message occupying the receiver's outgoing port) is not
// modeled; its wire time is folded into the sender's round trip.
package simnet

import (
	"errors"
	"fmt"
)

// Typed failure causes, tested with errors.Is against the error that
// Machine.RunErr returns.
var (
	// ErrLinkDown reports an acknowledged transfer that exhausted its
	// retry budget (persistent drops or a link-down window).
	ErrLinkDown = errors.New("link down: retries exhausted")
	// ErrDeadline reports a node whose logical clock passed the
	// configured simulated-time deadline.
	ErrDeadline = errors.New("deadline exceeded")
	// ErrAborted reports a node that was released from a blocking
	// operation because another node failed first. RunErr returns the
	// originating failure, not ErrAborted, whenever one was recorded.
	ErrAborted = errors.New("aborted: peer failed")
)

// FaultError is the failure a node program raises from inside a send,
// receive or barrier when fault injection (or the deadline) trips. It
// unwraps to one of the typed causes above.
type FaultError struct {
	Node     int    // node whose program failed
	Op       string // "send", "recv", "barrier", "deadline"
	Src, Dst int    // transfer endpoints (-1 when not a transfer)
	Tag      uint64
	Attempts int   // transmission attempts made (sends only)
	Err      error // ErrLinkDown, ErrDeadline or ErrAborted
}

// Error implements error.
func (e *FaultError) Error() string {
	if e.Src >= 0 || e.Dst >= 0 {
		return fmt.Sprintf("simnet: node %d %s (src=%d dst=%d tag=%#x attempts=%d): %v",
			e.Node, e.Op, e.Src, e.Dst, e.Tag, e.Attempts, e.Err)
	}
	return fmt.Sprintf("simnet: node %d %s: %v", e.Node, e.Op, e.Err)
}

// Unwrap implements errors.Is/As support.
func (e *FaultError) Unwrap() error { return e.Err }

// Window is a transient link outage: transfers departing src toward dst
// within [From, To) simulated time are lost. Src or Dst of -1 matches
// every node, so Window{-1, -1, 0, math.Inf(1)} kills the whole network.
type Window struct {
	Src, Dst int
	From, To float64
}

func (w Window) covers(src, dst int, t float64) bool {
	return (w.Src == -1 || w.Src == src) &&
		(w.Dst == -1 || w.Dst == dst) &&
		t >= w.From && t < w.To
}

// FaultPlan is a seeded description of link-level failures together with
// the recovery budget of the acknowledged-transfer protocol. The zero
// plan (or a plan with only a Seed) injects nothing and leaves the
// machine byte-for-byte on its exact fault-free path — no ack traffic,
// no retry charges — so cost-model reconciliation holds whenever the
// plan is empty.
type FaultPlan struct {
	Seed uint64 // decision seed; same seed, same failures

	Drop      float64  // per-attempt drop probability in [0, 1)
	Dup       float64  // probability a delivered payload arrives twice
	DelayProb float64  // probability a delivered payload is delayed
	DelayTime float64  // extra in-flight latency when delayed (simulated time)
	Down      []Window // transient link-down windows

	// MaxRetries bounds retransmissions after the first attempt:
	// 0 means the default of 4, negative means no retries at all.
	MaxRetries int
	// AckTimeout is the simulated time a sender waits on a lost attempt
	// before retransmitting; 0 means twice the attempt's round trip.
	AckTimeout float64
	// Backoff scales the exponential backoff added after the k-th lost
	// attempt (Backoff * 2^k); 0 means the machine's Ts.
	Backoff float64
}

// Empty reports whether the plan injects no faults at all; an empty
// plan leaves the simulation on its exact fault-free path.
func (fp *FaultPlan) Empty() bool { return !fp.active() }

func (fp *FaultPlan) active() bool {
	return fp != nil && (fp.Drop > 0 || fp.Dup > 0 || fp.DelayProb > 0 || len(fp.Down) > 0)
}

func (fp *FaultPlan) maxRetries() int {
	switch {
	case fp.MaxRetries > 0:
		return fp.MaxRetries
	case fp.MaxRetries < 0:
		return 0
	default:
		return 4
	}
}

func (fp *FaultPlan) ackTimeout(roundTrip float64) float64 {
	if fp.AckTimeout > 0 {
		return fp.AckTimeout
	}
	return 2 * roundTrip
}

func (fp *FaultPlan) backoff(ts float64, attempt int) float64 {
	unit := fp.Backoff
	if unit == 0 {
		unit = ts
	}
	if attempt > 30 {
		attempt = 30
	}
	return unit * float64(int64(1)<<uint(attempt))
}

// Decision kinds salt the hash so drop/dup/delay rolls for the same
// attempt are independent.
const (
	kindDrop uint64 = iota + 1
	kindDup
	kindDelay
)

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a uniform [0,1) draw that is a pure function of the plan
// seed and the attempt's identity.
func (fp *FaultPlan) roll(kind uint64, src, dst int, tag uint64, attempt int) float64 {
	h := fp.Seed ^ 0x9e3779b97f4a7c15
	for _, v := range [...]uint64{kind, uint64(src) + 1, uint64(dst) + 1, tag + 1, uint64(attempt) + 1} {
		h = mix64(h ^ v*0x9e3779b97f4a7c15)
	}
	return float64(h>>11) / (1 << 53)
}

// decide resolves the fate of one transmission attempt.
func (fp *FaultPlan) decide(src, dst int, tag uint64, attempt int, depart float64) (drop, dup bool, delay float64) {
	for _, w := range fp.Down {
		if w.covers(src, dst, depart) {
			return true, false, 0
		}
	}
	if fp.Drop > 0 && fp.roll(kindDrop, src, dst, tag, attempt) < fp.Drop {
		return true, false, 0
	}
	if fp.Dup > 0 && fp.roll(kindDup, src, dst, tag, attempt) < fp.Dup {
		dup = true
	}
	if fp.DelayProb > 0 && fp.roll(kindDelay, src, dst, tag, attempt) < fp.DelayProb {
		delay = fp.DelayTime
	}
	return drop, dup, delay
}

// CheckDeadline raises a typed ErrDeadline fault if the node's clock has
// passed the machine's simulated-time deadline. Send and Recv call it on
// entry; collectives call it once per step so a deadline fires between
// steps even when a phase is compute-bound.
func (n *Node) CheckDeadline() {
	if dl := n.m.Cfg.Deadline; dl > 0 && n.now > dl {
		panic(&FaultError{Node: n.ID, Op: "deadline", Src: -1, Dst: -1, Err: ErrDeadline})
	}
}

// abortFault builds the fault a node raises when released by a peer's
// failure.
func (n *Node) abortFault(op string, src, dst int, tag uint64) *FaultError {
	return &FaultError{Node: n.ID, Op: op, Src: src, Dst: dst, Tag: tag, Err: ErrAborted}
}

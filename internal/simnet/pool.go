package simnet

import (
	"sync"
	"sync/atomic"
)

// In-flight pool accounting: payload boxes checked out by sends minus
// boxes returned by Release, and Msg headers likewise. Receivers that
// legally retain a payload never Release it, so the global counters only
// balance for programs that consume (or abort out of) everything they
// send — which is exactly what the leak regression tests construct.
var (
	payloadsInFlight atomic.Int64
	msgsInFlight     atomic.Int64
)

// PoolInFlight reports the current number of pooled payload boxes and
// Msg headers checked out and not yet released. Test instrumentation:
// a program whose receivers release every consumed payload must leave
// both deltas at zero across a run, faulted or not.
func PoolInFlight() (payloads, msgs int64) {
	return payloadsInFlight.Load(), msgsInFlight.Load()
}

// Payload buffer pooling.
//
// Every copying Send allocates its payload from a size-class pool
// instead of the garbage collector. The box travels with the Msg; a
// receiver that has fully consumed a payload calls Msg.Release to
// recycle the buffer for a later send of a similar size. Receivers that
// retain the payload (or sub-slices of it) simply never call Release
// and the buffer falls back to ordinary garbage collection — Release is
// an optimization hook, never an obligation.
//
// Owned sends (SendOwned/SendMOwned) carry no box: their payload is the
// caller's slice, which must never be recycled into the pool, so
// Release on such a message is a no-op. This is what makes Release safe
// to call unconditionally on any fully-consumed message.

// payloadBox owns one pooled payload buffer. class indexes the
// power-of-two size-class pool the buffer returns to; class < 0 marks
// an oversized buffer that is never pooled.
type payloadBox struct {
	d     []float64
	class int
}

// maxPayloadClass bounds pooled buffers at 2^24 words (128 MiB);
// anything larger is allocated directly and left to the GC.
const maxPayloadClass = 24

var payloadPools [maxPayloadClass + 1]sync.Pool

// payloadClass returns the smallest c with 1<<c >= n.
func payloadClass(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// getPayload returns a box whose buffer has length n (capacity rounded
// up to the size class). Returns nil for n == 0: empty payloads carry
// no buffer at all.
func getPayload(n int) *payloadBox {
	if n == 0 {
		return nil
	}
	payloadsInFlight.Add(1)
	c := payloadClass(n)
	if c > maxPayloadClass {
		return &payloadBox{d: make([]float64, n), class: -1}
	}
	if b, _ := payloadPools[c].Get().(*payloadBox); b != nil {
		b.d = b.d[:n]
		return b
	}
	return &payloadBox{d: make([]float64, n, 1<<c), class: c}
}

// putPayload recycles a box into its size-class pool.
func putPayload(b *payloadBox) {
	if b.class < 0 {
		return
	}
	payloadPools[b.class].Put(b)
}

// msgPool recycles Msg headers: sendCore draws from it and Release
// returns to it, so the lockstep fold-and-discard receive paths run
// with no per-message header garbage.
var msgPool = sync.Pool{New: func() any { return new(Msg) }}

// Release recycles the message — its transport-allocated payload
// buffer, if any, and its header. Call it at most once, and only after
// the payload is fully consumed: the buffer, including every sub-slice
// of Data, and the Msg itself are reused by later sends. Messages whose
// payload the receiver retains must never be released. Owned-send
// payloads are left to the garbage collector (the pool must not capture
// a caller's slice); their header is still recycled.
func (m *Msg) Release() {
	if m.box != nil {
		payloadsInFlight.Add(-1)
		putPayload(m.box)
	}
	*m = Msg{}
	msgsInFlight.Add(-1)
	msgPool.Put(m)
}

package simnet

import (
	"strings"
	"testing"
	"time"

	"hypermm/internal/matrix"
)

func mach(p int, ports PortModel, ts, tw, tc float64) *Machine {
	return NewMachine(Config{P: p, Ports: ports, Ts: ts, Tw: tw, Tc: tc})
}

func TestNeighborExchangeCostOnePort(t *testing.T) {
	// Two neighbors exchange m words: full-duplex one-port means the
	// step costs ts + tw*m, exactly the paper's shift cost.
	m := mach(2, OnePort, 10, 2, 0)
	data := make([]float64, 5)
	rs := m.Run(func(n *Node) {
		n.Send(n.ID^1, 1, data)
		n.Recv(n.ID^1, 1)
	})
	want := 10 + 2*5.0
	if rs.Elapsed != want {
		t.Errorf("exchange elapsed = %g, want %g", rs.Elapsed, want)
	}
}

func TestSequentialSendsSerializeOnePort(t *testing.T) {
	// One node sending twice pays two start-ups in sequence.
	m := mach(4, OnePort, 7, 1, 0)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 3))
			n.Send(2, 2, make([]float64, 3))
		}
		if n.ID == 1 {
			n.Recv(0, 1)
		}
		if n.ID == 2 {
			n.Recv(0, 2)
		}
	})
	// Node 0 clock: 2*(7+3). Node 2's message departs at 10 and lands at 20.
	if want := 20.0; rs.Elapsed != want {
		t.Errorf("elapsed = %g, want %g", rs.Elapsed, want)
	}
}

func TestMultiPortSendsOverlap(t *testing.T) {
	// On a multi-port machine, sends on distinct dimensions overlap.
	m := mach(4, MultiPort, 7, 1, 0)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 3)) // dim 0
			n.Send(2, 2, make([]float64, 3)) // dim 1
		}
		if n.ID == 1 {
			n.Recv(0, 1)
		}
		if n.ID == 2 {
			n.Recv(0, 2)
		}
	})
	if want := 10.0; rs.Elapsed != want {
		t.Errorf("elapsed = %g, want %g (overlapped)", rs.Elapsed, want)
	}
}

func TestMultiPortSameDimSerializes(t *testing.T) {
	// Two transfers leaving on the same dimension port must serialize
	// even on a multi-port machine.
	m := mach(2, MultiPort, 7, 1, 0)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 3))
			n.Send(1, 2, make([]float64, 3))
		}
		if n.ID == 1 {
			n.Recv(0, 1)
			n.Recv(0, 2)
		}
	})
	if want := 20.0; rs.Elapsed != want {
		t.Errorf("elapsed = %g, want %g", rs.Elapsed, want)
	}
}

func TestStoreAndForwardHopCharging(t *testing.T) {
	// Nodes 0 and 3 in a 2-cube differ in two bits: 2 hops, each
	// charged ts + tw*m.
	m := mach(4, OnePort, 5, 1, 0)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(3, 1, make([]float64, 10))
		}
		if n.ID == 3 {
			n.Recv(0, 1)
		}
	})
	if want := 2 * (5 + 10.0); rs.Elapsed != want {
		t.Errorf("elapsed = %g, want %g", rs.Elapsed, want)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	m := mach(2, OnePort, 5, 1, 0)
	rs := m.Run(func(n *Node) {
		n.Send(n.ID, 9, []float64{1, 2, 3})
		msg := n.Recv(n.ID, 9)
		if len(msg.Data) != 3 || msg.Data[2] != 3 {
			t.Error("self message corrupted")
		}
	})
	if rs.Elapsed != 0 {
		t.Errorf("self send charged %g", rs.Elapsed)
	}
}

func TestDataIntegrityAndCopy(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 0)
	m.Run(func(n *Node) {
		if n.ID == 0 {
			buf := []float64{1, 2, 3}
			n.Send(1, 1, buf)
			buf[0] = 99 // mutation after send must not leak
		} else {
			msg := n.Recv(0, 1)
			if msg.Data[0] != 1 || msg.Data[1] != 2 || msg.Data[2] != 3 {
				t.Errorf("payload corrupted: %v", msg.Data)
			}
		}
	})
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	m := mach(2, OnePort, 1, 1, 0)
	m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 100, []float64{100})
			n.Send(1, 200, []float64{200})
		} else {
			// Receive in the opposite order of sending.
			if got := n.Recv(0, 200).Data[0]; got != 200 {
				t.Errorf("tag 200 got %g", got)
			}
			if got := n.Recv(0, 100).Data[0]; got != 100 {
				t.Errorf("tag 100 got %g", got)
			}
		}
	})
}

func TestMatrixRoundTrip(t *testing.T) {
	m := mach(2, OnePort, 1, 1, 0)
	a := matrix.Random(4, 6, 42)
	m.Run(func(n *Node) {
		if n.ID == 0 {
			n.SendM(1, 7, a)
		} else {
			got := n.RecvM(0, 7)
			if !matrix.Equal(got, a) {
				t.Error("matrix payload mismatch")
			}
		}
	})
}

func TestComputeCharging(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 0.5)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Compute(100)
		}
	})
	if rs.Elapsed != 50 {
		t.Errorf("compute elapsed = %g", rs.Elapsed)
	}
	if rs.TotalFlops != 100 {
		t.Errorf("flops = %d", rs.TotalFlops)
	}
}

func TestMulAddCharges(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 1)
	a := matrix.Random(4, 4, 1)
	b := matrix.Random(4, 4, 2)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			c := matrix.New(4, 4)
			n.MulAdd(c, a, b)
			if matrix.MaxAbsDiff(c, matrix.Mul(a, b)) > 1e-12 {
				t.Error("MulAdd result wrong")
			}
		}
	})
	if rs.TotalFlops != 2*4*4*4 {
		t.Errorf("flops = %d", rs.TotalFlops)
	}
}

func TestRecvAdvancesPastCompute(t *testing.T) {
	// A receiver busy computing picks up a message at
	// max(its clock, arrival).
	m := mach(2, OnePort, 5, 1, 1)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 5))
		} else {
			n.Compute(1000)
			n.Recv(0, 1)
		}
	})
	if rs.Elapsed != 1000 {
		t.Errorf("elapsed = %g, want 1000 (message absorbed during compute)", rs.Elapsed)
	}
}

func TestStatsCounters(t *testing.T) {
	m := mach(4, OnePort, 1, 1, 0)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(3, 1, make([]float64, 10)) // 2 hops
		}
		if n.ID == 3 {
			n.Recv(0, 1)
		}
	})
	if rs.TotalMsgs != 1 || rs.TotalWords != 10 || rs.TotalStartups != 2 || rs.TotalWordHops != 20 {
		t.Errorf("stats = %+v", rs)
	}
}

func TestNoteWordsPeak(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 0)
	rs := m.Run(func(n *Node) {
		n.NoteWords(10)
		n.NoteWords(50)
		n.NoteWords(20)
	})
	if rs.MaxPeak != 50 || rs.TotalPeak != 100 {
		t.Errorf("peaks = %d/%d", rs.MaxPeak, rs.TotalPeak)
	}
}

func TestDeterministicTiming(t *testing.T) {
	prog := func(n *Node) {
		p := n.P()
		for d := 0; d < n.CubeDim(); d++ {
			partner := n.ID ^ (1 << d)
			n.Send(partner, uint64(d), make([]float64, 8))
			n.Recv(partner, uint64(d))
		}
		_ = p
	}
	var first RunStats
	for trial := 0; trial < 5; trial++ {
		m := mach(16, OnePort, 3, 2, 0)
		rs := m.Run(prog)
		if trial == 0 {
			first = rs
			continue
		}
		if rs.Elapsed != first.Elapsed {
			t.Fatalf("trial %d elapsed %g != %g", trial, rs.Elapsed, first.Elapsed)
		}
		for i := range rs.Nodes {
			if rs.Nodes[i].Clock != first.Nodes[i].Clock {
				t.Fatalf("trial %d node %d clock differs", trial, i)
			}
		}
	}
}

func TestNodePanicPropagates(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("node panic not propagated")
		}
	}()
	m.Run(func(n *Node) {
		if n.ID == 1 {
			panic("boom")
		}
	})
}

func TestMachineReuse(t *testing.T) {
	m := mach(4, OnePort, 1, 1, 0)
	prog := func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 4))
		}
		if n.ID == 1 {
			n.Recv(0, 1)
		}
	}
	a := m.Run(prog)
	b := m.Run(prog)
	if a.Elapsed != b.Elapsed || b.TotalMsgs != 1 {
		t.Errorf("machine state leaked across runs: %+v vs %+v", a, b)
	}
}

func TestPortModelString(t *testing.T) {
	if OnePort.String() != "one-port" || MultiPort.String() != "multi-port" {
		t.Error("PortModel strings wrong")
	}
}

// TestNoEarlySendLossRegression guards the spawn/reset race: an
// early-spawned node's first message must never be drained by a peer's
// later reset. Many quick rounds on a wide machine make the old bug
// (reset interleaved with spawning) overwhelmingly likely to hang.
func TestNoEarlySendLossRegression(t *testing.T) {
	m := mach(256, OnePort, 0, 0, 0)
	for round := 0; round < 50; round++ {
		m.Run(func(n *Node) {
			dst := (n.ID + 1) % n.P()
			n.Send(dst, uint64(round), []float64{float64(n.ID)})
			src := (n.ID - 1 + n.P()) % n.P()
			if got := n.Recv(src, uint64(round)).Data[0]; got != float64(src) {
				t.Errorf("round %d: node %d got %g, want %d", round, n.ID, got, src)
			}
		})
	}
}

func TestDiagnoseShowsBlockedNodes(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 0)
	started := make(chan struct{})
	finish := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(func(n *Node) {
			if n.ID == 1 {
				close(started)
				n.Recv(0, 42).Release() // blocks until node 0 sends
			} else {
				<-finish
				n.Send(1, 42, []float64{1})
			}
		})
	}()
	// Join the run before returning: its final send otherwise checks a
	// payload box out of the pool concurrently with the next test, which
	// under -shuffle=on can be a pool-balance snapshot.
	defer func() { <-done }()
	defer close(finish)
	<-started
	// Give node 1 a moment to block in match().
	for i := 0; i < 100; i++ {
		if s := m.Diagnose(); s != "" {
			if !strings.Contains(s, "waits on (src=0 tag=0x2a)") {
				t.Errorf("diagnose output unexpected: %q", s)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Error("Diagnose never reported the blocked node")
}

func TestBarrierAlignsClocks(t *testing.T) {
	m := mach(8, OnePort, 0, 0, 1)
	rs := m.Run(func(n *Node) {
		n.Compute(int64(100 * (n.ID + 1))) // staggered work
		n.Barrier()
		if n.Now() != 800 {
			t.Errorf("node %d clock after barrier = %g, want 800", n.ID, n.Now())
		}
		// A second phase re-staggers and a second barrier re-aligns.
		n.Compute(int64(10 * n.ID))
		n.Barrier()
		if n.Now() != 870 {
			t.Errorf("node %d clock after 2nd barrier = %g, want 870", n.ID, n.Now())
		}
	})
	if rs.Elapsed != 870 {
		t.Errorf("elapsed = %g", rs.Elapsed)
	}
}

func TestBarrierZeroCost(t *testing.T) {
	m := mach(4, OnePort, 5, 5, 0)
	rs := m.Run(func(n *Node) {
		for i := 0; i < 10; i++ {
			n.Barrier()
		}
	})
	if rs.Elapsed != 0 {
		t.Errorf("barriers charged time: %g", rs.Elapsed)
	}
}

func TestFaultInjection(t *testing.T) {
	// A fault hook can corrupt payloads in flight; the receiver sees
	// the corruption (this is how the end-to-end verification tests
	// prove they would catch a broken transport).
	cfg := Config{P: 2, Ports: OnePort, Ts: 1, Tw: 1}
	cfg.Corrupt = func(src, dst int, tag uint64, data []float64) {
		if len(data) > 0 {
			data[0] += 1000
		}
	}
	m := NewMachine(cfg)
	m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, []float64{1, 2})
		} else {
			got := n.Recv(0, 1).Data
			if got[0] != 1001 {
				t.Errorf("fault not applied: %v", got)
			}
		}
	})
}

func TestFaultNotAppliedToSelfSends(t *testing.T) {
	cfg := Config{P: 2, Ports: OnePort}
	cfg.Corrupt = func(src, dst int, tag uint64, data []float64) { data[0] = -1 }
	m := NewMachine(cfg)
	m.Run(func(n *Node) {
		n.Send(n.ID, 1, []float64{7})
		if got := n.Recv(n.ID, 1).Data[0]; got != 7 {
			t.Errorf("self-send corrupted: %g", got)
		}
	})
}

func TestTorusHopsAndPorts(t *testing.T) {
	m := NewMachine(Config{P: 16, Ports: OnePort, Topology: Torus2D})
	// q = 4; node = i*4 + j.
	cases := []struct {
		src, dst, hops int
	}{
		{0, 1, 1},  // east neighbor
		{0, 3, 1},  // west wrap
		{0, 12, 1}, // north wrap
		{0, 5, 2},  // diagonal
		{0, 10, 4}, // opposite corner: 2+2
		{5, 5, 0},  // self
	}
	for _, c := range cases {
		if got := m.hops(c.src, c.dst); got != c.hops {
			t.Errorf("hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.hops)
		}
	}
	// Wrap-shortest neighbor costs one hop end to end.
	m2 := NewMachine(Config{P: 16, Ports: OnePort, Ts: 5, Tw: 1, Topology: Torus2D})
	rs := m2.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(3, 1, make([]float64, 4)) // west wrap: 1 hop
		}
		if n.ID == 3 {
			n.Recv(0, 1)
		}
	})
	if want := 5 + 4.0; rs.Elapsed != want {
		t.Errorf("torus wrap neighbor elapsed = %g, want %g", rs.Elapsed, want)
	}
}

func TestTorusMultiPortDirections(t *testing.T) {
	// Sends in the four directions overlap on a multi-port torus node.
	m := NewMachine(Config{P: 16, Ports: MultiPort, Ts: 5, Tw: 1, Topology: Torus2D})
	rs := m.Run(func(n *Node) {
		if n.ID == 5 { // center-ish node (1,1)
			n.Send(6, 1, make([]float64, 4)) // +x
			n.Send(4, 2, make([]float64, 4)) // -x
			n.Send(9, 3, make([]float64, 4)) // +y
			n.Send(1, 4, make([]float64, 4)) // -y
		}
		switch n.ID {
		case 6:
			n.Recv(5, 1)
		case 4:
			n.Recv(5, 2)
		case 9:
			n.Recv(5, 3)
		case 1:
			n.Recv(5, 4)
		}
	})
	if want := 9.0; rs.Elapsed != want {
		t.Errorf("four-direction torus sends elapsed = %g, want %g (overlapped)", rs.Elapsed, want)
	}
}

func TestTorusRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square torus accepted")
		}
	}()
	NewMachine(Config{P: 8, Topology: Torus2D})
}

func TestTopologyString(t *testing.T) {
	if Hypercube.String() != "hypercube" || Torus2D.String() != "2-D torus" {
		t.Error("topology names wrong")
	}
}

func TestMultiPortRecvSameDimSerializes(t *testing.T) {
	// Two incoming transfers on the same dimension port serialize at
	// the receiver even on a multi-port machine.
	m := mach(2, MultiPort, 7, 1, 0)
	rs := m.Run(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 3))
			n.Send(1, 2, make([]float64, 3))
		} else {
			n.Recv(0, 1)
			n.Recv(0, 2)
		}
	})
	if want := 20.0; rs.Elapsed != want {
		t.Errorf("elapsed = %g, want %g", rs.Elapsed, want)
	}
}

func TestInboxCapOverride(t *testing.T) {
	m := NewMachine(Config{P: 2, Ports: OnePort, InboxCap: 1})
	// With capacity 1, a sender run-ahead of 3 messages must still
	// complete because the receiver drains.
	m.Run(func(n *Node) {
		if n.ID == 0 {
			for k := 0; k < 3; k++ {
				n.Send(1, uint64(k), []float64{float64(k)})
			}
		} else {
			for k := 2; k >= 0; k-- { // reverse order forces pending use
				if got := n.Recv(0, uint64(k)).Data[0]; got != float64(k) {
					t.Errorf("tag %d got %g", k, got)
				}
			}
		}
	})
}

func TestNodeAccessorsAndHelpers(t *testing.T) {
	m := mach(4, MultiPort, 1, 1, 1)
	if m.Node(2).ID != 2 || m.P() != 4 {
		t.Error("machine accessors wrong")
	}
	m.Run(func(n *Node) {
		if n.Machine() != m || n.P() != 4 || n.Ports() != MultiPort || n.CubeDim() != 2 {
			t.Error("node accessors wrong")
		}
		if n.ID == 0 {
			a := matrix.Random(3, 4, 1)
			b := matrix.Random(4, 2, 2)
			c := n.Mul(a, b)
			if matrix.MaxAbsDiff(c, matrix.Mul(a, b)) > 1e-12 {
				t.Error("node Mul wrong")
			}
			before := n.Now()
			n.AdvanceTo(before - 5) // never backward
			if n.Now() != before {
				t.Error("AdvanceTo moved backward")
			}
			n.AdvanceTo(before + 5)
			if n.Now() != before+5 {
				t.Error("AdvanceTo did not move forward")
			}
		}
	})
}

func TestMsgHelpers(t *testing.T) {
	m := mach(2, OnePort, 0, 0, 0)
	m.Run(func(n *Node) {
		if n.ID == 0 {
			n.SendM(1, 1, matrix.Random(2, 3, 1))
			n.Send(1, 2, []float64{1, 2})
		} else {
			msg := n.Recv(0, 1)
			if msg.Words() != 6 || msg.Matrix().Rows != 2 {
				t.Error("message helpers wrong")
			}
			raw := n.Recv(0, 2)
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Matrix() on raw payload did not panic")
					}
				}()
				raw.Matrix()
			}()
		}
	})
}

func TestTorusNodeWraps(t *testing.T) {
	if TorusNode(-1, -1, 4) != TorusNode(3, 3, 4) {
		t.Error("negative wrap wrong")
	}
	if TorusNode(5, 4, 4) != TorusNode(1, 0, 4) {
		t.Error("overflow wrap wrong")
	}
	i, j := TorusCoords(TorusNode(2, 3, 4), 4)
	if i != 2 || j != 3 {
		t.Error("coords round trip wrong")
	}
}

package simnet

import (
	"errors"
	"math"
	"testing"
)

// pingPong is a minimal SPMD program: every node exchanges a block with
// its dimension-0 neighbor a few times.
func pingPong(rounds, words int) func(n *Node) {
	return func(n *Node) {
		peer := n.ID ^ 1
		buf := make([]float64, words)
		for i := range buf {
			buf[i] = float64(n.ID*1000 + i)
		}
		for r := 0; r < rounds; r++ {
			n.Send(peer, uint64(r), buf)
			msg := n.Recv(peer, uint64(r))
			if len(msg.Data) != words {
				panic("payload length changed in flight")
			}
		}
	}
}

func TestFaultPlanEmptyIsInert(t *testing.T) {
	run := func(fp *FaultPlan) RunStats {
		m := NewMachine(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Faults: fp})
		rs, err := m.RunErr(pingPong(3, 16))
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	base := run(nil)
	seeded := run(&FaultPlan{Seed: 99}) // no probabilities: empty
	if base.Elapsed != seeded.Elapsed {
		t.Fatalf("empty plan perturbed the run: %v vs %v", base.Elapsed, seeded.Elapsed)
	}
	if base.TotalMsgs != seeded.TotalMsgs || base.TotalWords != seeded.TotalWords {
		t.Fatalf("empty plan perturbed counters: %+v vs %+v", base, seeded)
	}
	if seeded.TotalRetries != 0 {
		t.Fatalf("empty plan retried: %d", seeded.TotalRetries)
	}
}

func TestFaultRetryRecovers(t *testing.T) {
	fp := &FaultPlan{Seed: 7, Drop: 0.3, MaxRetries: 25}
	m := NewMachine(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Faults: fp})
	rs, err := m.RunErr(pingPong(8, 16))
	if err != nil {
		t.Fatalf("retry protocol failed to recover: %v", err)
	}
	if rs.TotalRetries == 0 {
		t.Fatal("30% drop over 8*8 transfers never exercised the retry path")
	}
	// Reliable mode charges acks and retransmissions: strictly more
	// traffic and time than the clean run.
	clean, err := NewMachine(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1}).RunErr(pingPong(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Elapsed <= clean.Elapsed || rs.TotalMsgs <= clean.TotalMsgs {
		t.Fatalf("faulty run not charged: elapsed %g vs %g, msgs %d vs %d",
			rs.Elapsed, clean.Elapsed, rs.TotalMsgs, clean.TotalMsgs)
	}
}

func TestFaultExhaustedRetriesReturnsLinkDown(t *testing.T) {
	// The whole network is down forever: the first send exhausts its
	// budget and the run must return (not hang, not panic) with a typed
	// error.
	fp := &FaultPlan{
		Seed:       1,
		Down:       []Window{{Src: -1, Dst: -1, From: 0, To: math.Inf(1)}},
		MaxRetries: 2,
	}
	m := NewMachine(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Faults: fp})
	_, err := m.RunErr(pingPong(2, 8))
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("err = %v, want ErrLinkDown", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Attempts != 3 {
		t.Fatalf("fault detail = %+v, want 3 attempts", fe)
	}
}

func TestFaultWindowDropsOnlyInsideWindow(t *testing.T) {
	// A window that covers only the start of the run: early transfers
	// retry past it, later ones sail through; the run succeeds.
	fp := &FaultPlan{
		Seed:       3,
		Down:       []Window{{Src: -1, Dst: -1, From: 0, To: 50}},
		MaxRetries: 10,
	}
	m := NewMachine(Config{P: 4, Ports: OnePort, Ts: 10, Tw: 1, Faults: fp})
	rs, err := m.RunErr(pingPong(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalRetries == 0 {
		t.Fatal("transfers departing inside the window were not retried")
	}
}

func TestDeadlineReturnsTypedError(t *testing.T) {
	m := NewMachine(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Deadline: 40})
	_, err := m.RunErr(pingPong(50, 64))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func TestDeterministicClocksUnderFaults(t *testing.T) {
	fp := &FaultPlan{Seed: 42, Drop: 0.15, Dup: 0.1, DelayProb: 0.2, DelayTime: 7, MaxRetries: 20}
	type sig struct {
		elapsed                        float64
		msgs, words, hops, wh, retries int64
	}
	sigOf := func(rs RunStats) sig {
		return sig{rs.Elapsed, rs.TotalMsgs, rs.TotalWords, rs.TotalStartups, rs.TotalWordHops, rs.TotalRetries}
	}
	var first sig
	for i := 0; i < 3; i++ {
		m := NewMachine(Config{P: 16, Ports: MultiPort, Ts: 10, Tw: 1, Faults: fp})
		rs, err := m.RunErr(pingPong(6, 24))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sigOf(rs)
		} else if sigOf(rs) != first {
			t.Fatalf("run %d diverged: %+v vs %+v", i, sigOf(rs), first)
		}
	}
	// A different seed must (with these probabilities) chart a
	// different course.
	m := NewMachine(Config{P: 16, Ports: MultiPort, Ts: 10, Tw: 1,
		Faults: &FaultPlan{Seed: 43, Drop: 0.15, Dup: 0.1, DelayProb: 0.2, DelayTime: 7, MaxRetries: 20}})
	rs, err := m.RunErr(pingPong(6, 24))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Elapsed == first.elapsed && rs.TotalRetries == first.retries {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestBarrierReleasedOnAbortAndReusable(t *testing.T) {
	// Run 1: node 0 fails its send while every other node parks in the
	// barrier. The abort must release them and return the originating
	// fault, not ErrAborted.
	fp := &FaultPlan{Seed: 1, Down: []Window{{-1, -1, 0, math.Inf(1)}}, MaxRetries: 1}
	m := NewMachine(Config{P: 8, Ports: OnePort, Ts: 10, Tw: 1, Faults: fp})
	_, err := m.RunErr(func(n *Node) {
		if n.ID == 0 {
			n.Send(1, 1, make([]float64, 4))
		}
		n.Barrier()
	})
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("aborted barrier run: err = %v, want ErrLinkDown", err)
	}
	// Run 2 on the same machine: the barrier must have been re-armed —
	// no leaked generation count from the seven waiters of run 1.
	m.Cfg.Faults = nil
	rs, err := m.RunErr(func(n *Node) {
		n.Barrier()
		n.Compute(int64(n.ID))
		n.Barrier()
	})
	if err != nil {
		t.Fatalf("barrier not reusable after abort: %v", err)
	}
	if rs.Elapsed != 0 {
		t.Fatalf("Tc=0 run elapsed %g, want 0", rs.Elapsed)
	}
}

func TestRunPanicsStillPropagateNonFaults(t *testing.T) {
	m := NewMachine(Config{P: 4, Ports: OnePort, Ts: 1, Tw: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("programming panic swallowed")
		}
	}()
	m.Run(func(n *Node) {
		if n.ID == 2 {
			panic("bug in node program")
		}
		// Other nodes block: the abort must still release them so the
		// panic can propagate instead of deadlocking.
		n.Recv(2, 99)
	})
}

func TestTorusFaultAbortAndReuse(t *testing.T) {
	// The fault machinery must work on the torus topology too: a hostile
	// plan surfaces a typed error with peers parked in recv and the
	// barrier, and the same machine re-runs clean afterward.
	ring := func(n *Node) {
		// 3x3 torus: everyone passes a block to the right neighbor.
		q := 3
		i, j := TorusCoords(n.ID, q)
		n.Send(TorusNode(i, j+1, q), 1, make([]float64, 8))
		n.Recv(TorusNode(i, j-1, q), 1)
		n.Barrier()
	}
	m := NewMachine(Config{
		P: 9, Topology: Torus2D, Ports: OnePort, Ts: 10, Tw: 1,
		Faults: &FaultPlan{
			Seed:       4,
			Down:       []Window{{Src: 0, Dst: -1, From: 0, To: math.Inf(1)}},
			MaxRetries: 2,
		},
	})
	_, err := m.RunErr(ring)
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("torus fault run: err = %v, want ErrLinkDown", err)
	}
	m.Cfg.Faults = nil
	if _, err := m.RunErr(ring); err != nil {
		t.Fatalf("torus machine not reusable after abort: %v", err)
	}
}

func TestDupChargesReceiverPort(t *testing.T) {
	// With Dup=1 every delivery arrives twice: the receive port is busy
	// for two transfer times, which must show up in the clock relative
	// to a dup-free plan with identical other settings.
	run := func(dup float64) float64 {
		fp := &FaultPlan{Seed: 5, Dup: dup, MaxRetries: 5}
		if dup == 0 {
			// Keep the plan active so both runs use reliable mode.
			fp.DelayProb = 1e-300
		}
		m := NewMachine(Config{P: 4, Ports: OnePort, Ts: 10, Tw: 1, Faults: fp})
		rs, err := m.RunErr(func(n *Node) {
			peer := n.ID ^ 1
			// Two back-to-back transfers so port occupancy matters.
			n.Send(peer, 1, make([]float64, 32))
			n.Send(peer, 2, make([]float64, 32))
			n.Recv(peer, 1)
			n.Recv(peer, 2)
		})
		if err != nil {
			t.Fatal(err)
		}
		return rs.Elapsed
	}
	if withDup, without := run(1), run(0); withDup <= without {
		t.Fatalf("duplication free of charge: %g <= %g", withDup, without)
	}
}

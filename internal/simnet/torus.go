package simnet

import "fmt"

// Topology selects the machine's interconnect. The paper's analysis is
// hypercube-centric, but Section 3.2 observes that Cannon's
// shift-multiply-add phase "has the same performance on 2-D tori and
// hypercubes"; the torus topology makes that comparison runnable.
type Topology int

const (
	// Hypercube is the paper's 2-ary n-cube (the default).
	Hypercube Topology = iota
	// Torus2D is a Q x Q wraparound mesh with P = Q^2 nodes addressed
	// row-major (node = i*Q + j). Each node has four links (+x, -x,
	// +y, -y); a multi-port node drives all four at once. Multi-hop
	// transfers route x-first with shortest wrap direction.
	Torus2D
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Hypercube:
		return "hypercube"
	case Torus2D:
		return "2-D torus"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Torus direction port indices.
const (
	torusXPlus = iota
	torusXMinus
	torusYPlus
	torusYMinus
	torusPorts
)

// TorusCoords splits a row-major torus address into (i, j).
func TorusCoords(node, q int) (i, j int) { return node / q, node % q }

// TorusNode builds a row-major torus address from (i, j), wrapping
// negative or overflowing coordinates.
func TorusNode(i, j, q int) int {
	i, j = ((i%q)+q)%q, ((j%q)+q)%q
	return i*q + j
}

// torusDelta returns the signed shortest displacement from a to b on a
// ring of q positions (positive = increasing coordinate).
func torusDelta(a, b, q int) int {
	d := ((b-a)%q + q) % q
	if d > q/2 {
		d -= q
	}
	return d
}

// torusHops returns the wrap-shortest Manhattan distance.
func (m *Machine) torusHops(src, dst int) int {
	si, sj := TorusCoords(src, m.torusQ)
	di, dj := TorusCoords(dst, m.torusQ)
	return abs(torusDelta(si, di, m.torusQ)) + abs(torusDelta(sj, dj, m.torusQ))
}

// torusOutPort returns the first-hop direction of the x-first route.
func (m *Machine) torusOutPort(src, dst int) int {
	si, sj := TorusCoords(src, m.torusQ)
	di, dj := TorusCoords(dst, m.torusQ)
	if d := torusDelta(sj, dj, m.torusQ); d != 0 { // x leg first (column coordinate)
		if d > 0 {
			return torusXPlus
		}
		return torusXMinus
	}
	if d := torusDelta(si, di, m.torusQ); d > 0 {
		return torusYPlus
	}
	return torusYMinus
}

// torusInPort returns the last-hop direction (the y leg if any).
func (m *Machine) torusInPort(src, dst int) int {
	si, sj := TorusCoords(src, m.torusQ)
	di, dj := TorusCoords(dst, m.torusQ)
	if d := torusDelta(si, di, m.torusQ); d != 0 {
		if d > 0 {
			return torusYPlus
		}
		return torusYMinus
	}
	if d := torusDelta(sj, dj, m.torusQ); d > 0 {
		return torusXPlus
	}
	return torusXMinus
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// hops returns the routing distance between two nodes under the
// machine's topology.
func (m *Machine) hops(src, dst int) int {
	if m.Cfg.Topology == Torus2D {
		return m.torusHops(src, dst)
	}
	return m.Cube.Hops(src, dst)
}

// outPort returns the sender-side port index of a transfer.
func (m *Machine) outPort(src, dst int) int {
	if m.Cfg.Topology == Torus2D {
		return m.torusOutPort(src, dst)
	}
	return lowestBit(src ^ dst)
}

// inPort returns the receiver-side port index of a transfer.
func (m *Machine) inPort(src, dst int) int {
	if m.Cfg.Topology == Torus2D {
		return m.torusInPort(src, dst)
	}
	return highestBit(src ^ dst)
}

// numPorts returns the number of per-node link ports.
func (m *Machine) numPorts() int {
	if m.Cfg.Topology == Torus2D {
		return torusPorts
	}
	return m.Cube.Dim
}

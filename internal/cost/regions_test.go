package cost

import (
	"math"
	"strings"
	"testing"

	"hypermm/internal/simnet"
)

func stdMap(pm simnet.PortModel, ts, tw float64) *RegionMap {
	return NewRegionMap(pm, ts, tw, DefaultCandidates(pm), 5, 13, 33, 3, 18, 31)
}

// TestFig13ThreeAllRegion reproduces the headline shape of Figure 13:
// on one-port hypercubes 3D All wins everywhere it applies
// (p <= n^1.5, p >= 8), for all four (t_s, t_w) panels.
func TestFig13ThreeAllRegion(t *testing.T) {
	for _, panel := range []struct{ ts, tw float64 }{{150, 3}, {50, 3}, {10, 3}, {2, 3}} {
		rm := stdMap(simnet.OnePort, panel.ts, panel.tw)
		for pi, lp := range rm.LogP {
			for ni, ln := range rm.LogN {
				n, p := math.Exp2(ln), math.Exp2(lp)
				if p >= 8 && Applicable(ThreeAll, n, p) {
					if w, ok := rm.At(pi, ni); !ok || w != ThreeAll {
						t.Errorf("ts=%g: at n=2^%.1f p=2^%.1f winner=%v, want 3D All", panel.ts, ln, lp, w)
					}
				}
			}
		}
	}
}

// TestFig13ThreeDiagOnlyBeyondN2 reproduces: "The 3DD is the only
// algorithm applicable in the region n^3 >= p > n^2."
func TestFig13ThreeDiagOnlyBeyondN2(t *testing.T) {
	rm := stdMap(simnet.OnePort, 150, 3)
	found := false
	for pi, lp := range rm.LogP {
		for ni, ln := range rm.LogN {
			n, p := math.Exp2(ln), math.Exp2(lp)
			if p > n*n && p <= n*n*n {
				w, ok := rm.At(pi, ni)
				if !ok || w != ThreeDiag {
					t.Errorf("at n=2^%.1f p=2^%.1f: winner=%v ok=%v, want 3DD only", ln, lp, w, ok)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("grid contains no points with n^2 < p <= n^3")
	}
}

// TestFig13MiddleRegionDependsOnTs reproduces the paper's observation
// for n^1.5 < p <= n^2: with t_s=150, t_w=3 3DD wins the whole region;
// with very small t_s Cannon takes most of it.
func TestFig13MiddleRegionDependsOnTs(t *testing.T) {
	count := func(ts, tw float64) (dd, cannon, total int) {
		rm := stdMap(simnet.OnePort, ts, tw)
		for pi, lp := range rm.LogP {
			for ni, ln := range rm.LogN {
				n, p := math.Exp2(ln), math.Exp2(lp)
				if p > math.Pow(n, 1.5) && p <= n*n {
					total++
					switch w, _ := rm.At(pi, ni); w {
					case ThreeDiag:
						dd++
					case Cannon:
						cannon++
					}
				}
			}
		}
		return
	}
	dd, _, total := count(150, 3)
	if total == 0 {
		t.Fatal("no middle-region points")
	}
	if float64(dd)/float64(total) < 0.95 {
		t.Errorf("ts=150: 3DD wins only %d/%d of the middle region", dd, total)
	}
	_, cannon, total2 := count(0.5, 3)
	if float64(cannon)/float64(total2) < 0.5 {
		t.Errorf("tiny ts: Cannon wins only %d/%d of the middle region", cannon, total2)
	}
}

// TestFig14ThreeAllRegion reproduces Figure 14's headline: on
// multi-port hypercubes 3D All, wherever applicable, performs best
// among the candidate set (for p above small sizes).
func TestFig14ThreeAllRegion(t *testing.T) {
	for _, panel := range []struct{ ts, tw float64 }{{150, 3}, {50, 3}, {10, 3}, {2, 3}} {
		rm := stdMap(simnet.MultiPort, panel.ts, panel.tw)
		for pi, lp := range rm.LogP {
			for ni, ln := range rm.LogN {
				n, p := math.Exp2(ln), math.Exp2(lp)
				if p >= 64 && Applicable(ThreeAll, n, p) {
					if w, ok := rm.At(pi, ni); !ok || w != ThreeAll {
						t.Errorf("ts=%g: at n=2^%.1f p=2^%.1f winner=%v, want 3D All", panel.ts, ln, lp, w)
					}
				}
			}
		}
	}
}

func TestRegionMapRender(t *testing.T) {
	rm := stdMap(simnet.OnePort, 150, 3)
	s := rm.Render()
	for _, want := range []string{"Best algorithm regions", "legend:", "A=3D All", "D=3DD"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if len(strings.Split(s, "\n")) < len(rm.LogP) {
		t.Error("render too short")
	}
}

func TestRegionMapShare(t *testing.T) {
	rm := stdMap(simnet.OnePort, 150, 3)
	var sum float64
	for _, a := range rm.Algs {
		sum += rm.Share(a)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %g", sum)
	}
	if rm.Share(ThreeAll) <= 0 {
		t.Error("3D All wins nothing")
	}
}

func TestRegionMapInapplicableCorner(t *testing.T) {
	// Tiny n, huge p: nothing applies (p > n^3).
	rm := NewRegionMap(simnet.OnePort, 150, 3, DefaultCandidates(simnet.OnePort), 1, 2, 4, 14, 16, 4)
	if _, ok := rm.At(len(rm.LogP)-1, 0); ok {
		t.Error("winner reported where p > n^3")
	}
}

func TestDefaultCandidates(t *testing.T) {
	one := DefaultCandidates(simnet.OnePort)
	multi := DefaultCandidates(simnet.MultiPort)
	if len(multi) != len(one)+1 {
		t.Errorf("multi-port set should add HJE: %v vs %v", multi, one)
	}
	hasHJE := false
	for _, a := range multi {
		if a == HJE {
			hasHJE = true
		}
	}
	if !hasHJE {
		t.Error("multi-port candidates missing HJE")
	}
}

func TestCrossoverP(t *testing.T) {
	// At moderate t_s, Cannon beats 3DD at small p but 3DD's start-up
	// advantage wins as p grows: there is a crossover in between.
	n := 512.0
	const ts, tw = 20.0, 3.0
	p, ok := CrossoverP(Cannon, ThreeDiag, n, ts, tw, simnet.OnePort, 8, math.Pow(n, 1.9))
	if !ok {
		t.Fatal("no crossover found")
	}
	tc, _ := Time(Cannon, n, p*1.1, ts, tw, simnet.OnePort)
	td, _ := Time(ThreeDiag, n, p*1.1, ts, tw, simnet.OnePort)
	if td > tc {
		t.Errorf("3DD not cheaper just above the crossover: %g vs %g", td, tc)
	}
	tc2, _ := Time(Cannon, n, p/1.5, ts, tw, simnet.OnePort)
	td2, _ := Time(ThreeDiag, n, p/1.5, ts, tw, simnet.OnePort)
	if td2 < tc2 {
		t.Errorf("3DD already cheaper well below the crossover: %g vs %g", td2, tc2)
	}
	// With tiny t_s there is no crossover up to the bracket's edge —
	// the paper's "for very small t_s Cannon performs better over most
	// of the region".
	if _, ok := CrossoverP(Cannon, ThreeDiag, n, 0.5, tw, simnet.OnePort, 8, math.Pow(n, 1.9)); ok {
		t.Error("unexpected crossover at tiny t_s")
	}
	// 3D All dominates Cannon everywhere applicable: crossover at the
	// left edge.
	p2, ok := CrossoverP(Cannon, ThreeAll, n, 150, 3, simnet.OnePort, 8, math.Pow(n, 1.4))
	if !ok || p2 != 8 {
		t.Errorf("3D All crossover = (%g,%v), want immediate dominance", p2, ok)
	}
	// No crossover bracket: comparing an algorithm against itself.
	if _, ok := CrossoverP(Cannon, Cannon, n, 1, 1, simnet.OnePort, 8, 1024); ok {
		// equal times count as "at least as cheap" at pLo
		_ = ok
	}
}

// TestRegionMapParallelDeterministic pins the determinism contract of
// the sharded grid evaluation: the assembled winner grid matches a
// serial cell-by-cell scan exactly, and repeated builds render to
// identical bytes regardless of worker scheduling.
func TestRegionMapParallelDeterministic(t *testing.T) {
	algs := DefaultCandidates(simnet.OnePort)
	rm := NewRegionMap(simnet.OnePort, 150, 3, algs, 5, 14, 48, 3, 20, 24)
	for pi, lp := range rm.LogP {
		for ni, ln := range rm.LogN {
			if want := rm.winnerAt(pow2(ln), pow2(lp)); rm.Winner[pi][ni] != want {
				t.Fatalf("cell (%d,%d): parallel winner %d, serial %d", pi, ni, rm.Winner[pi][ni], want)
			}
		}
	}
	ref := rm.Render()
	for trial := 0; trial < 3; trial++ {
		got := NewRegionMap(simnet.OnePort, 150, 3, algs, 5, 14, 48, 3, 20, 24).Render()
		if got != ref {
			t.Fatalf("trial %d: render differs from first build", trial)
		}
	}
}

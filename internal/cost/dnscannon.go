package cost

import (
	"math"

	"hypermm/internal/simnet"
)

// OverheadDNSCannon returns the communication-overhead coefficients
// (a, b) of the DNS+Cannon combination algorithm of Section 3.5 with s
// supernodes (each a p/s-processor Cannon mesh) on p processors.
//
// Phases: two point-to-point lifts along z (not overlapped), two fused
// one-to-all broadcasts among cbrt(s) supernodes, Cannon's algorithm on
// the sqrt(r) x sqrt(r) mesh, and an all-to-one reduction along z. The
// sub-block size is m = n^2/(s^(2/3) r).
func OverheadDNSCannon(n, p, s float64, pm simnet.PortModel) (a, b float64, ok bool) {
	if n < 1 || p < 1 || s < 1 || p < s {
		return 0, 0, false
	}
	r := p / s
	cbs := math.Cbrt(s)
	sqr := math.Sqrt(r)
	// Applicability: one matrix element per processor at the finest.
	if cbs*sqr > n*(1+applicEps) {
		return 0, 0, false
	}
	if p <= 1 {
		return 0, 0, true
	}
	m := n * n / (math.Pow(s, 2.0/3) * r)
	logcbs := lg(cbs)
	logsqr := lg(sqr)

	switch pm {
	case simnet.OnePort:
		a = 2*logcbs + 2*logcbs + 2*logsqr + 2*(sqr-1) + logcbs
		b = m * (2*logcbs + 2*logcbs + 2*logsqr + 2*(sqr-1) + logcbs)
		return a, b, true
	case simnet.MultiPort:
		// Lifts pipeline per hop; the two broadcasts overlap; Cannon's
		// A/B transfers overlap; the reduction uses all ports.
		a = 2*logcbs + logcbs + logsqr + (sqr - 1) + logcbs
		b = m * (2 + 1 + logsqr + (sqr - 1) + 1)
		return a, b, true
	default:
		return 0, 0, false
	}
}

package cost

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"hypermm/internal/simnet"
)

func TestRegionMapImage(t *testing.T) {
	rm := stdMap(simnet.OnePort, 150, 3)
	img := rm.Image(3)
	wantW, wantH := len(rm.LogN)*3, len(rm.LogP)*3
	if img.Bounds().Dx() != wantW || img.Bounds().Dy() != wantH {
		t.Fatalf("image %dx%d, want %dx%d", img.Bounds().Dx(), img.Bounds().Dy(), wantW, wantH)
	}
	// Bottom-left cell: smallest p, smallest n — 3D All territory.
	c := img.RGBAAt(1, img.Bounds().Dy()-2)
	if c != ThreeAll.Color() {
		t.Errorf("bottom-left color %v, want 3D All %v", c, ThreeAll.Color())
	}
	// Top-left: huge p, small n — inapplicable.
	if got := img.RGBAAt(1, 1); got != inapplicableColor {
		t.Errorf("top-left color %v, want inapplicable", got)
	}
}

func TestRegionMapImageOrientation(t *testing.T) {
	// The 3DD band must sit *above* the 3D All band (larger p).
	rm := stdMap(simnet.OnePort, 150, 3)
	img := rm.Image(1)
	// Find, in a middle column, the transition from A (bottom) to D.
	x := img.Bounds().Dx() / 2
	sawAll, sawDD := false, false
	for y := img.Bounds().Dy() - 1; y >= 0; y-- {
		switch img.RGBAAt(x, y) {
		case ThreeAll.Color():
			if sawDD {
				t.Fatal("3D All above 3DD: orientation flipped")
			}
			sawAll = true
		case ThreeDiag.Color():
			sawDD = true
		}
	}
	if !sawAll || !sawDD {
		t.Fatal("expected both 3D All and 3DD bands in the middle column")
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	rm := stdMap(simnet.MultiPort, 150, 3)
	var buf bytes.Buffer
	if err := rm.WritePNG(&buf, 2); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != len(rm.LogN)*2 {
		t.Error("decoded width wrong")
	}
}

func TestAlgColorsDistinct(t *testing.T) {
	seen := map[[4]uint8]Alg{}
	for _, a := range Algorithms {
		c := a.Color()
		key := [4]uint8{c.R, c.G, c.B, c.A}
		if prev, dup := seen[key]; dup {
			t.Errorf("%v and %v share a color", a, prev)
		}
		seen[key] = a
		// Distinguishable from the inapplicable background.
		if math.Abs(float64(c.R)-float64(inapplicableColor.R)) < 16 &&
			math.Abs(float64(c.G)-float64(inapplicableColor.G)) < 16 &&
			math.Abs(float64(c.B)-float64(inapplicableColor.B)) < 16 {
			t.Errorf("%v color too close to background", a)
		}
	}
	if Alg(99).Color().A != 0xff {
		t.Error("unknown Alg color not opaque")
	}
}

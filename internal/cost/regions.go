package cost

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"hypermm/internal/simnet"
)

// RegionMap is the paper's Figure 13/14 artifact: for every point of an
// (n, p) grid, the algorithm with the least communication overhead
// under given (t_s, t_w) and port model.
type RegionMap struct {
	PM     simnet.PortModel
	Ts, Tw float64
	LogN   []float64 // column coordinates (log2 n, ascending)
	LogP   []float64 // row coordinates (log2 p, ascending)
	Algs   []Alg     // candidate set
	Winner [][]int   // [pi][ni]: index into Algs, or -1 if none applicable
}

// DefaultCandidates returns the algorithm set the paper compares in its
// Section 5 analysis: Cannon, Berntsen, 3DD and 3D All on a one-port
// machine, plus Ho-Johnsson-Edelman on a multi-port machine (Simple is
// excluded for its space inefficiency; DNS and 3D All_Trans are
// dominated by 3DD and 3D All respectively).
func DefaultCandidates(pm simnet.PortModel) []Alg {
	if pm == simnet.MultiPort {
		return []Alg{Cannon, HJE, Berntsen, ThreeDiag, ThreeAll}
	}
	return []Alg{Cannon, Berntsen, ThreeDiag, ThreeAll}
}

// NewRegionMap evaluates the winner grid over
// logN in [logNMin, logNMax] and logP in [logPMin, logPMax] with the
// given number of steps per axis.
func NewRegionMap(pm simnet.PortModel, ts, tw float64, algs []Alg,
	logNMin, logNMax float64, nSteps int,
	logPMin, logPMax float64, pSteps int) *RegionMap {
	if nSteps < 2 || pSteps < 2 {
		panic("cost: region map needs at least 2 steps per axis")
	}
	rm := &RegionMap{PM: pm, Ts: ts, Tw: tw, Algs: algs}
	for i := 0; i < nSteps; i++ {
		rm.LogN = append(rm.LogN, logNMin+(logNMax-logNMin)*float64(i)/float64(nSteps-1))
	}
	for i := 0; i < pSteps; i++ {
		rm.LogP = append(rm.LogP, logPMin+(logPMax-logPMin)*float64(i)/float64(pSteps-1))
	}
	rm.Winner = make([][]int, pSteps)
	for pi := range rm.Winner {
		rm.Winner[pi] = make([]int, nSteps)
	}
	// Each cell is an independent pure evaluation writing its own
	// Winner slot, so rows can be sharded over a worker pool with no
	// coordination; the assembled grid is identical to the serial scan
	// byte for byte regardless of worker count or scheduling.
	workers := runtime.GOMAXPROCS(0)
	if workers > pSteps {
		workers = pSteps
	}
	if workers <= 1 {
		for pi, lp := range rm.LogP {
			rm.fillRow(pi, lp)
		}
		return rm
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pi := range rows {
				rm.fillRow(pi, rm.LogP[pi])
			}
		}()
	}
	for pi := range rm.LogP {
		rows <- pi
	}
	close(rows)
	wg.Wait()
	return rm
}

// fillRow evaluates every cell of row pi.
func (rm *RegionMap) fillRow(pi int, lp float64) {
	for ni, ln := range rm.LogN {
		rm.Winner[pi][ni] = rm.winnerAt(pow2(ln), pow2(lp))
	}
}

func pow2(x float64) float64 { return math.Exp2(x) }

// winnerAt returns the index of the cheapest applicable algorithm.
func (rm *RegionMap) winnerAt(n, p float64) int {
	best, bestT := -1, 0.0
	for idx, alg := range rm.Algs {
		t, ok := Time(alg, n, p, rm.Ts, rm.Tw, rm.PM)
		if !ok {
			continue
		}
		if best == -1 || t < bestT {
			best, bestT = idx, t
		}
	}
	return best
}

// At returns the winning algorithm at grid cell (pi, ni) and whether
// any algorithm applies there.
func (rm *RegionMap) At(pi, ni int) (Alg, bool) {
	w := rm.Winner[pi][ni]
	if w < 0 {
		return 0, false
	}
	return rm.Algs[w], true
}

// Render draws the map as ASCII art: rows are log2 p descending, columns
// log2 n ascending; each cell is the winner's letter, '.' where no
// algorithm applies.
func (rm *RegionMap) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Best algorithm regions (%v, t_s=%g, t_w=%g)\n", rm.PM, rm.Ts, rm.Tw)
	fmt.Fprintf(&sb, "rows: log2 p in [%g,%g] (top=large p); cols: log2 n in [%g,%g]\n",
		rm.LogP[0], rm.LogP[len(rm.LogP)-1], rm.LogN[0], rm.LogN[len(rm.LogN)-1])
	for pi := len(rm.LogP) - 1; pi >= 0; pi-- {
		fmt.Fprintf(&sb, "p=2^%-5.1f |", rm.LogP[pi])
		for ni := range rm.LogN {
			if alg, ok := rm.At(pi, ni); ok {
				sb.WriteByte(alg.Letter())
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("          +")
	sb.WriteString(strings.Repeat("-", len(rm.LogN)))
	sb.WriteByte('\n')
	sb.WriteString("           ")
	label := make([]byte, len(rm.LogN))
	for i := range label {
		label[i] = ' '
	}
	for ni := 0; ni < len(rm.LogN); ni += 8 {
		mark := fmt.Sprintf("^%.0f", rm.LogN[ni])
		for k := 0; k < len(mark) && ni+k < len(label); k++ {
			label[ni+k] = mark[k]
		}
	}
	sb.Write(label)
	sb.WriteByte('\n')
	sb.WriteString(rm.Legend())
	return sb.String()
}

// Legend describes the letters used in Render.
func (rm *RegionMap) Legend() string {
	var parts []string
	for _, a := range rm.Algs {
		parts = append(parts, fmt.Sprintf("%c=%v", a.Letter(), a))
	}
	parts = append(parts, ".=none applicable")
	return "legend: " + strings.Join(parts, ", ") + "\n"
}

// Share returns the fraction of applicable grid cells won by alg.
func (rm *RegionMap) Share(alg Alg) float64 {
	won, applicable := 0, 0
	for pi := range rm.Winner {
		for ni := range rm.Winner[pi] {
			if w, ok := rm.At(pi, ni); ok {
				applicable++
				if w == alg {
					won++
				}
			}
		}
	}
	if applicable == 0 {
		return 0
	}
	return float64(won) / float64(applicable)
}

// CrossoverP finds, by bisection over machine size, the smallest p in
// [pLo, pHi] at which algorithm b becomes at least as cheap as
// algorithm a (communication time, both applicable). ok is false if no
// crossover exists in the bracket.
func CrossoverP(a, b Alg, n, ts, tw float64, pm simnet.PortModel, pLo, pHi float64) (float64, bool) {
	cheaperB := func(p float64) (bool, bool) {
		ta, oka := Time(a, n, p, ts, tw, pm)
		tb, okb := Time(b, n, p, ts, tw, pm)
		if !oka || !okb {
			return false, false
		}
		return tb <= ta, true
	}
	lo, okLo := cheaperB(pLo)
	hi, okHi := cheaperB(pHi)
	if !okLo || !okHi || lo || !hi {
		// Either endpoints invalid, b already cheaper at pLo (no
		// crossover inside), or b never becomes cheaper.
		if okLo && lo {
			return pLo, true
		}
		return 0, false
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(pLo * pHi) // geometric bisection
		if c, okc := cheaperB(mid); okc && c {
			pHi = mid
		} else {
			pLo = mid
		}
	}
	return pHi, true
}

package cost

import "hypermm/internal/simnet"

// CalibratedModel wraps the analytic Table 2 model with empirically
// fitted corrections: global scale factors on the machine parameters
// (effective t_s and t_w relative to their nominal values) and a
// multiplicative per-algorithm residual factor absorbing whatever the
// closed forms miss (pipelining undercutting the sequential phase
// bounds, ragged multi-port slices, ...). A nil *CalibratedModel is the
// identity — every method falls back to the uncalibrated analytic
// model — so callers can thread one pointer through unconditionally.
type CalibratedModel struct {
	// TsScale and TwScale map nominal machine parameters to effective
	// ones: effective t_s = TsScale * t_s. Both 1 for a perfect model.
	TsScale, TwScale float64
	// Corr is the per-algorithm multiplicative residual on the
	// communication time; algorithms not present use 1.
	Corr map[Alg]float64
}

// correction returns the residual factor for alg (1 when absent).
func (m *CalibratedModel) correction(alg Alg) float64 {
	if m == nil {
		return 1
	}
	if c, ok := m.Corr[alg]; ok && c > 0 {
		return c
	}
	return 1
}

// Time is the calibrated communication time
// Corr[alg] * (t_s*TsScale*a + t_w*TwScale*b); applicability is
// unchanged from the analytic model.
func (m *CalibratedModel) Time(alg Alg, n, p, ts, tw float64, pm simnet.PortModel) (float64, bool) {
	if m == nil {
		return Time(alg, n, p, ts, tw, pm)
	}
	t, ok := Time(alg, n, p, ts*m.TsScale, tw*m.TwScale, pm)
	if !ok {
		return 0, false
	}
	return m.correction(alg) * t, true
}

// TotalTime is the calibrated communication time plus the (uncorrected)
// perfectly parallel computation time.
func (m *CalibratedModel) TotalTime(alg Alg, n, p, ts, tw, tc float64, pm simnet.PortModel) (float64, bool) {
	c, ok := m.Time(alg, n, p, ts, tw, pm)
	if !ok {
		return 0, false
	}
	return c + ComputeTime(n, p, tc), true
}

// Best returns the candidate with the least calibrated communication
// time at (n, p), or ok=false if none applies.
func (m *CalibratedModel) Best(n, p, ts, tw float64, pm simnet.PortModel, algs []Alg) (Alg, bool) {
	best, bestT, found := Alg(0), 0.0, false
	for _, alg := range algs {
		t, ok := m.Time(alg, n, p, ts, tw, pm)
		if !ok {
			continue
		}
		if !found || t < bestT {
			best, bestT, found = alg, t, true
		}
	}
	return best, found
}

package cost

import (
	"math"

	"hypermm/internal/simnet"
)

// OverheadThreeAllGrid returns the communication-overhead coefficients
// (a, b) of the generalized 3-D All algorithm on a Q x qy x Q grid with
// p = Q^2*qy (the paper's Section 4.2.2 closing extension; see
// internal/core.ThreeAllGrid). With qy = cbrt(p) it equals the Table 2
// row for 3D All.
//
// Phase structure: an all-to-all personalized exchange among qy nodes
// of n^2/(p*qy)-word pieces, two fused all-to-all broadcasts among Q
// nodes of n^2/p-word blocks, and an all-to-all reduction among qy
// nodes of n^2/p-word pieces.
func OverheadThreeAllGrid(n, p, qy float64, pm simnet.PortModel) (a, b float64, ok bool) {
	if n < 1 || p < 1 || qy < 1 || p < qy {
		return 0, 0, false
	}
	q2 := p / qy
	Q := math.Sqrt(q2)
	// Applicability: the x-y plane holds Q*qy column groups of A, each
	// at least one column wide, and the row groups need Q <= n.
	if Q*qy > n*(1+applicEps) || Q > n*(1+applicEps) {
		return 0, 0, false
	}
	if p <= 1 {
		return 0, 0, true
	}
	m := n * n / p
	logQ, logqy := lg(Q), lg(qy)

	// Zero-extent chains contribute nothing.
	safeDiv := func(x, l float64) float64 {
		if l <= 0 {
			return 0
		}
		return x / l
	}

	switch pm {
	case simnet.OnePort:
		a = logqy + 2*logQ + logqy
		b = m * (logqy/2 + 2*(Q-1) + (qy - 1))
		return a, b, true
	case simnet.MultiPort:
		a = logqy + logQ + logqy // the two broadcasts overlap
		b = m * (0.5*boolTo(logqy > 0) + safeDiv(Q-1, logQ) + safeDiv(qy-1, logqy))
		return a, b, true
	default:
		return 0, 0, false
	}
}

func boolTo(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BestGridQy returns the qy (a power of two dividing p with p/qy a
// square power of two) minimizing the grid 3-D All communication time
// at (n, p), and whether any shape is feasible.
func BestGridQy(n, p, ts, tw float64, pm simnet.PortModel) (qy float64, ok bool) {
	best, bestT := 0.0, math.Inf(1)
	for cand := 1.0; cand <= p; cand *= 2 {
		q2 := p / cand
		lg2 := lg(q2)
		if lg2 != math.Trunc(lg2) || int(lg2)%2 != 0 {
			continue
		}
		a, b, feasible := OverheadThreeAllGrid(n, p, cand, pm)
		if !feasible {
			continue
		}
		if t := ts*a + tw*b; t < bestT {
			best, bestT = cand, t
		}
	}
	return best, best > 0
}

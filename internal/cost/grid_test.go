package cost

import (
	"math"
	"testing"

	"hypermm/internal/algorithms"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func TestGridOverheadMatchesCube(t *testing.T) {
	// qy = cbrt(p) must reproduce the Table 2 row for 3D All exactly,
	// in both port models (multi-port in the full-bandwidth regime).
	n, p := 1024.0, 512.0
	for _, pm := range bothPorts {
		ga, gb, ok := OverheadThreeAllGrid(n, p, 8, pm)
		if !ok {
			t.Fatalf("%v: cube shape infeasible", pm)
		}
		ca, cb, ok := Overhead(ThreeAll, n, p, pm)
		if !ok {
			t.Fatal("3D All inapplicable")
		}
		if math.Abs(ga-ca) > 1e-9 || math.Abs(gb-cb) > 1e-9*cb {
			t.Errorf("%v: grid (%g,%g) != Table 2 (%g,%g)", pm, ga, gb, ca, cb)
		}
	}
}

func TestGridExtendsApplicability(t *testing.T) {
	// p = 2 n^2 / 4 ... a point beyond p = n^1.5 where the cube fails
	// but a flat grid works.
	n := 64.0
	p := 2048.0 // n^1.5 = 512 < p < n^2/2 = 2048
	if Applicable(ThreeAll, n, p) {
		t.Fatal("test point should be beyond the cube's limit")
	}
	if _, _, ok := OverheadThreeAllGrid(n, p, 2, simnet.OnePort); !ok {
		t.Error("flat grid (qy=2) should be feasible at p = n^2/2")
	}
	if _, _, ok := OverheadThreeAllGrid(n, 2*p, 2, simnet.OnePort); ok {
		t.Error("grid feasible beyond Q*qy = n")
	}
}

func TestGridInfeasibleShapes(t *testing.T) {
	if _, _, ok := OverheadThreeAllGrid(0, 64, 4, simnet.OnePort); ok {
		t.Error("accepted n=0")
	}
	if _, _, ok := OverheadThreeAllGrid(64, 8, 16, simnet.OnePort); ok {
		t.Error("accepted qy > p")
	}
}

func TestGridTrivial(t *testing.T) {
	a, b, ok := OverheadThreeAllGrid(64, 1, 1, simnet.OnePort)
	if !ok || a != 0 || b != 0 {
		t.Errorf("p=1 grid overhead = (%g,%g,%v)", a, b, ok)
	}
}

func TestBestGridQy(t *testing.T) {
	// In the cube's region the best shape should be close to the cube
	// (it matches Table 2's optimum); far beyond it, only flat shapes
	// are feasible, so the best qy must be small.
	qy, ok := BestGridQy(1024, 512, 150, 3, simnet.OnePort)
	if !ok {
		t.Fatal("no feasible shape at (1024, 512)")
	}
	if qy < 2 || qy > 32 {
		t.Errorf("best qy at cube point = %g, expected near cbrt(p)=8", qy)
	}
	qy2, ok := BestGridQy(64, 2048, 150, 3, simnet.OnePort)
	if !ok || qy2 != 2 {
		t.Errorf("best qy at flat point = %g (ok=%v), want 2", qy2, ok)
	}
	if _, ok := BestGridQy(4, 1<<20, 150, 3, simnet.OnePort); ok {
		t.Error("found a shape where none fits")
	}
}

// TestGridMatchesMeasured cross-validates the grid formula against the
// emulator at a rectangular shape.
func TestGridMatchesMeasured(t *testing.T) {
	const p, n, qy = 32, 32, 2 // Q = 4
	for _, pm := range bothPorts {
		aA, bA, ok := OverheadThreeAllGrid(n, p, qy, pm)
		if !ok {
			t.Fatal("shape infeasible")
		}
		aM, bM := measuredGrid(t, p, n, qy, pm)
		if aM > aA*1.05+1e-9 || aM < aA*0.45 {
			t.Errorf("%v: measured a=%g vs analytic %g", pm, aM, aA)
		}
		if bM > bA*1.05+1e-9 || bM < bA*0.45 {
			t.Errorf("%v: measured b=%g vs analytic %g", pm, bM, bA)
		}
	}
}

func TestDNSCannonOverhead(t *testing.T) {
	// Degenerate shapes reduce to the pure algorithms.
	n, p := 256.0, 512.0
	aC, bC, ok := OverheadDNSCannon(n, p, p, simnet.OnePort) // r=1: pure DNS
	if !ok {
		t.Fatal("s=p infeasible")
	}
	aD, bD, ok := Overhead(DNS, n, p, simnet.OnePort)
	if !ok {
		t.Fatal("DNS inapplicable")
	}
	if math.Abs(aC-aD) > 1e-9 || math.Abs(bC-bD) > 1e-9*bD {
		t.Errorf("s=p combination (%g,%g) != DNS (%g,%g)", aC, bC, aD, bD)
	}
	// s=1: pure Cannon (the skew charge differs by the alignment term;
	// compare the dominant shift terms only loosely).
	aK, bK, ok := OverheadDNSCannon(n, 64, 1, simnet.OnePort)
	if !ok {
		t.Fatal("s=1 infeasible")
	}
	aCan, bCan, _ := Overhead(Cannon, n, 64, simnet.OnePort)
	if aK > aCan+1e-9 || bK > bCan+1e-9 {
		t.Errorf("s=1 combination (%g,%g) above Cannon (%g,%g)", aK, bK, aCan, bCan)
	}
	// The paper's argument: 3DD dominates the combination in start-ups.
	a3, _, _ := Overhead(ThreeDiag, n, p, simnet.OnePort)
	aMix, _, _ := OverheadDNSCannon(n, p, 64, simnet.OnePort)
	if a3 >= aMix {
		t.Errorf("3DD a=%g not below combination a=%g", a3, aMix)
	}
}

// TestMeasuredDNSCannon cross-validates the combination formula.
func TestMeasuredDNSCannon(t *testing.T) {
	const p, n, s = 32, 32, 8
	for _, pm := range bothPorts {
		aA, bA, ok := OverheadDNSCannon(n, p, s, pm)
		if !ok {
			t.Fatal("shape infeasible")
		}
		A := matrix.Random(n, n, 51)
		B := matrix.Random(n, n, 52)
		var aM, bM float64
		for i, cfg := range []struct{ ts, tw float64 }{{1, 0}, {0, 1}} {
			m := simnet.NewMachine(simnet.Config{P: p, Ports: pm, Ts: cfg.ts, Tw: cfg.tw})
			_, rs, err := algorithms.DNSCannon(m, A, B, s)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				aM = rs.Elapsed
			} else {
				bM = rs.Elapsed
			}
		}
		if aM > aA*1.05+1e-9 || aM < aA*0.4 {
			t.Errorf("%v: measured a=%g vs analytic %g", pm, aM, aA)
		}
		if bM > bA*1.05+1e-9 || bM < bA*0.4 {
			t.Errorf("%v: measured b=%g vs analytic %g", pm, bM, bA)
		}
	}
}

package cost

import (
	"math"

	"hypermm/internal/simnet"
)

// Scalability analysis in the style of Gupta & Kumar, "Scalability of
// Parallel Algorithms for Matrix Multiplication" (the paper's
// reference [5]): parallel efficiency and numeric isoefficiency — the
// problem size an algorithm needs to sustain a target efficiency as
// the machine grows. Lower isoefficiency growth means a more scalable
// algorithm; 3D All's reduced communication overhead shows up directly
// here.

// Efficiency returns E = T_serial / (p * T_parallel) for the algorithm
// at (n, p), where T_serial = 2 n^3 t_c and T_parallel adds the
// Table 2 communication time to the perfectly parallel compute time.
// ok is false where the algorithm is inapplicable or the efficiency is
// undefined (t_c = 0).
func Efficiency(alg Alg, n, p, ts, tw, tc float64, pm simnet.PortModel) (float64, bool) {
	if tc <= 0 || n < 1 || p < 1 {
		return 0, false
	}
	tpar, ok := TotalTime(alg, n, p, ts, tw, tc, pm)
	if !ok || tpar <= 0 {
		if p == 1 {
			return 1, true
		}
		return 0, false
	}
	return 2 * n * n * n * tc / (p * tpar), true
}

// IsoefficiencyN returns the smallest matrix size n at which the
// algorithm reaches the target efficiency on p processors (continuous
// n, bisection), or ok=false if no n up to the search cap achieves it.
// Note the applicability limits work in the algorithm's favor here:
// larger n only relaxes them.
func IsoefficiencyN(alg Alg, p, target, ts, tw, tc float64, pm simnet.PortModel) (float64, bool) {
	if target <= 0 || target >= 1 || tc <= 0 || p < 1 {
		return 0, false
	}
	const nCap = 1 << 30
	lo, hi := 1.0, 0.0
	// Exponential search for an upper bracket.
	for n := 2.0; n <= nCap; n *= 2 {
		if e, ok := Efficiency(alg, n, p, ts, tw, tc, pm); ok && e >= target {
			hi = n
			break
		}
		lo = n
	}
	if hi == 0 {
		return 0, false
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if e, ok := Efficiency(alg, mid, p, ts, tw, tc, pm); ok && e >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// IsoefficiencyCurve evaluates IsoefficiencyN over a set of machine
// sizes; entries are NaN where the target is unreachable.
func IsoefficiencyCurve(alg Alg, ps []float64, target, ts, tw, tc float64, pm simnet.PortModel) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		if n, ok := IsoefficiencyN(alg, p, target, ts, tw, tc, pm); ok {
			out[i] = n
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

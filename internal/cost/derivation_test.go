package cost

import (
	"math"
	"testing"

	"hypermm/internal/simnet"
)

// These tests re-derive Table 2 rows from Table 1 collective costs,
// phase by phase, exactly as the paper's Sections 3 and 4 do — an
// executable version of the derivations. Any inconsistency between
// CollectiveCost and Overhead fails here.

func addPhase(aAcc, bAcc *float64, c Collective, N, M float64, pm simnet.PortModel) {
	a, b := CollectiveCost(c, N, M, pm)
	*aAcc += a
	*bAcc += b
}

func closeTo(t *testing.T, name string, gotA, gotB, wantA, wantB float64) {
	t.Helper()
	if math.Abs(gotA-wantA) > 1e-9*(1+wantA) || math.Abs(gotB-wantB) > 1e-9*(1+wantB) {
		t.Errorf("%s: derived (%g,%g) != Table 2 (%g,%g)", name, gotA, gotB, wantA, wantB)
	}
}

func TestDeriveSimple(t *testing.T) {
	// Two all-to-all broadcasts of n^2/p blocks among sqrt(p) nodes.
	n, p := 240.0, 64.0
	sq := math.Sqrt(p)
	m := n * n / p
	for _, pm := range bothPorts {
		var a, b float64
		addPhase(&a, &b, AllToAllBcast, sq, m, pm)
		if pm == simnet.OnePort {
			// Serialized phases: double both.
			a, b = 2*a, 2*b
		}
		// Multi-port: the two phases overlap fully (disjoint dims), so
		// a single phase's cost stands.
		wantA, wantB, ok := Overhead(Simple, n, p, pm)
		if !ok {
			t.Fatal("Simple inapplicable")
		}
		closeTo(t, "Simple/"+pm.String(), a, b, wantA, wantB)
	}
}

func TestDeriveDNSOnePort(t *testing.T) {
	// Phase 1: two point-to-point lifts over log cbrt(p) hops; phase 2:
	// two one-to-all broadcasts; phase 3: one reduction. All of
	// n^2/p^(2/3)-word blocks among cbrt(p) nodes.
	n, p := 240.0, 64.0
	cb := math.Cbrt(p)
	m := n * n / math.Pow(p, 2.0/3)
	var a, b float64
	// point-to-point store-and-forward = same cost as a broadcast's
	// t_s and t_w structure: log cbrt(p) * (t_s + t_w m) each.
	a += 2 * lg(cb)
	b += 2 * lg(cb) * m
	addPhase(&a, &b, OneToAllBcast, cb, m, simnet.OnePort)
	addPhase(&a, &b, OneToAllBcast, cb, m, simnet.OnePort)
	addPhase(&a, &b, AllToOneReduce, cb, m, simnet.OnePort)
	wantA, wantB, _ := Overhead(DNS, n, p, simnet.OnePort)
	closeTo(t, "DNS/one-port", a, b, wantA, wantB)
}

func TestDeriveThreeDiagOnePort(t *testing.T) {
	// Phase 1: one point-to-point lift; phase 2: two broadcasts;
	// phase 3: one reduction.
	n, p := 240.0, 64.0
	cb := math.Cbrt(p)
	m := n * n / math.Pow(p, 2.0/3)
	a := lg(cb)
	b := lg(cb) * m
	addPhase(&a, &b, OneToAllBcast, cb, m, simnet.OnePort)
	addPhase(&a, &b, OneToAllBcast, cb, m, simnet.OnePort)
	addPhase(&a, &b, AllToOneReduce, cb, m, simnet.OnePort)
	wantA, wantB, _ := Overhead(ThreeDiag, n, p, simnet.OnePort)
	closeTo(t, "3DD/one-port", a, b, wantA, wantB)
}

func TestDeriveAllTransOnePort(t *testing.T) {
	// Gather of n^2/p pieces + (bcast of n^2/p^(2/3) + all-gather of
	// n^2/p) + all-to-all reduction of n^2/p pieces, all among cbrt(p).
	n, p := 240.0, 64.0
	cb := math.Cbrt(p)
	small := n * n / p
	big := n * n / math.Pow(p, 2.0/3)
	var a, b float64
	// All-to-one gather = inverse of the personalized broadcast.
	addPhase(&a, &b, OneToAllPersonalized, cb, small, simnet.OnePort)
	addPhase(&a, &b, OneToAllBcast, cb, big, simnet.OnePort)
	addPhase(&a, &b, AllToAllBcast, cb, small, simnet.OnePort)
	addPhase(&a, &b, AllToAllReduce, cb, small, simnet.OnePort)
	wantA, wantB, _ := Overhead(AllTrans, n, p, simnet.OnePort)
	closeTo(t, "All_Trans/one-port", a, b, wantA, wantB)
}

func TestDeriveThreeAllOnePort(t *testing.T) {
	// AAPC of n^2/(p*cbrt(p)) pieces + two all-gathers of n^2/p +
	// all-to-all reduction of n^2/p, all among cbrt(p) nodes.
	n, p := 240.0, 64.0
	cb := math.Cbrt(p)
	piece := n * n / (p * cb)
	m := n * n / p
	var a, b float64
	addPhase(&a, &b, AllToAllPersonalized, cb, piece, simnet.OnePort)
	addPhase(&a, &b, AllToAllBcast, cb, m, simnet.OnePort)
	addPhase(&a, &b, AllToAllBcast, cb, m, simnet.OnePort)
	addPhase(&a, &b, AllToAllReduce, cb, m, simnet.OnePort)
	wantA, wantB, _ := Overhead(ThreeAll, n, p, simnet.OnePort)
	closeTo(t, "3D All/one-port", a, b, wantA, wantB)
}

func TestDeriveThreeAllMultiPort(t *testing.T) {
	// Multi-port, full-bandwidth regime: the two all-gathers overlap
	// (one term), everything uses Table 1's multi-port column.
	n, p := 1024.0, 512.0 // n^2 >= p^(4/3) log cbrt(p)
	cb := math.Cbrt(p)
	piece := n * n / (p * cb)
	m := n * n / p
	var a, b float64
	addPhase(&a, &b, AllToAllPersonalized, cb, piece, simnet.MultiPort)
	addPhase(&a, &b, AllToAllBcast, cb, m, simnet.MultiPort) // fused pair counts once
	addPhase(&a, &b, AllToAllReduce, cb, m, simnet.MultiPort)
	wantA, wantB, _ := Overhead(ThreeAll, n, p, simnet.MultiPort)
	closeTo(t, "3D All/multi-port", a, b, wantA, wantB)
}

func TestDeriveBerntsenOnePort(t *testing.T) {
	// Cannon on p^(2/3) processors over rectangular blocks, then an
	// all-to-all reduction among cbrt(p) corresponding processors.
	n, p := 240.0, 64.0
	cb := math.Cbrt(p)
	m := n * n / math.Pow(p, 2.0/3) // Cannon block words: (n/cb)*(n/cb^2)... per processor of the subcube
	// Each subcube processor holds A piece (n/cb x n/cb^2) and B piece
	// (n/cb^2 x n/cb): each of n^2/p words.
	mm := n * n / p
	var a, b float64
	// Skew: two e-cube transfers of up to log cb hops each.
	a += 2 * lg(cb)
	b += 2 * lg(cb) * mm
	// cb-1 shift steps, two transfers each.
	a += 2 * (cb - 1)
	b += 2 * (cb - 1) * mm
	// All-to-all reduction of n^2/p pieces among cb processors.
	addPhase(&a, &b, AllToAllReduce, cb, mm, simnet.OnePort)
	wantA, wantB, _ := Overhead(Berntsen, n, p, simnet.OnePort)
	closeTo(t, "Berntsen/one-port", a, b, wantA, wantB)
	_ = m
}

package cost

import (
	"testing"

	"hypermm/internal/algorithms"
	"hypermm/internal/core"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// This file cross-validates the analytic Table 2 model against the
// channel-level emulation: for every algorithm, the measured (a, b)
// communication coefficients — obtained by running the real SPMD
// program with (t_s,t_w) = (1,0) and (0,1) — must not exceed the
// analytic expressions (which charge phases as sequential worst cases)
// and must lie within a reasonable factor of them.

type runner func(*simnet.Machine, *matrix.Dense, *matrix.Dense) (*matrix.Dense, simnet.RunStats, error)

func measured(t *testing.T, run runner, p, n int, pm simnet.PortModel) (a, b float64) {
	t.Helper()
	A := matrix.Random(n, n, 21)
	B := matrix.Random(n, n, 22)
	for i, cfg := range []struct{ ts, tw float64 }{{1, 0}, {0, 1}} {
		m := simnet.NewMachine(simnet.Config{P: p, Ports: pm, Ts: cfg.ts, Tw: cfg.tw})
		_, rs, err := run(m, A, B)
		if err != nil {
			t.Fatalf("p=%d n=%d: %v", p, n, err)
		}
		if i == 0 {
			a = rs.Elapsed
		} else {
			b = rs.Elapsed
		}
	}
	return a, b
}

func TestMeasuredWithinAnalytic(t *testing.T) {
	const slackHi = 1.05 // measured may not exceed analytic (ragged multi-port slices cost a few %)
	const slackLo = 0.45 // pipelining may undercut the sequential bound
	cases := []struct {
		alg  Alg
		run  runner
		p, n int
	}{
		{Simple, algorithms.Simple, 64, 48},
		{Cannon, algorithms.Cannon, 64, 48},
		{Berntsen, algorithms.Berntsen, 64, 48},
		{DNS, algorithms.DNS, 64, 48},
		{ThreeDiag, core.ThreeDiag, 64, 48},
		{AllTrans, core.AllTrans, 64, 48},
		{ThreeAll, core.ThreeAll, 64, 48},
	}
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, tc := range cases {
			aA, bA, ok := Overhead(tc.alg, float64(tc.n), float64(tc.p), pm)
			if !ok {
				t.Fatalf("%v: analytic model says inapplicable at p=%d n=%d", tc.alg, tc.p, tc.n)
			}
			aM, bM := measured(t, tc.run, tc.p, tc.n, pm)
			if aM > aA*slackHi+1e-9 || aM < aA*slackLo {
				t.Errorf("%v %v: measured a=%g vs analytic %g", tc.alg, pm, aM, aA)
			}
			if bM > bA*slackHi+1e-9 || bM < bA*slackLo {
				t.Errorf("%v %v: measured b=%g vs analytic %g", tc.alg, pm, bM, bA)
			}
		}
	}
}

// TestMeasuredHJEMultiPort: HJE only appears in Table 2's multi-port
// column; validate it there.
func TestMeasuredHJEMultiPort(t *testing.T) {
	const p, n = 64, 48
	aA, bA, ok := Overhead(HJE, n, p, simnet.MultiPort)
	if !ok {
		t.Fatal("HJE inapplicable")
	}
	aM, bM := measured(t, algorithms.HJE, p, n, simnet.MultiPort)
	if aM > aA*1.01+1e-9 || aM < aA*0.45 {
		t.Errorf("HJE measured a=%g vs analytic %g", aM, aA)
	}
	if bM > bA*1.05+1e-9 || bM < bA*0.45 {
		t.Errorf("HJE measured b=%g vs analytic %g", bM, bA)
	}
}

// TestMeasuredOrderingMatchesAnalytic: at a representative point the
// *ranking* of algorithms by measured communication time matches the
// analytic ranking — the property the region maps rely on.
func TestMeasuredOrderingMatchesAnalytic(t *testing.T) {
	const p, n = 64, 48
	const ts, tw = 30.0, 1.0
	A := matrix.Random(n, n, 31)
	B := matrix.Random(n, n, 32)
	algs := []struct {
		alg Alg
		run runner
	}{
		{Cannon, algorithms.Cannon},
		{Berntsen, algorithms.Berntsen},
		{ThreeDiag, core.ThreeDiag},
		{ThreeAll, core.ThreeAll},
	}
	type res struct {
		alg                Alg
		measured, analytic float64
	}
	var rs []res
	for _, a := range algs {
		m := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: ts, Tw: tw})
		_, st, err := a.run(m, A, B)
		if err != nil {
			t.Fatal(err)
		}
		an, _ := Time(a.alg, n, p, ts, tw, simnet.OnePort)
		rs = append(rs, res{a.alg, st.Elapsed, an})
	}
	// The analytic winner (3D All) must also win the measurement.
	bestM, bestA := 0, 0
	for i := range rs {
		if rs[i].measured < rs[bestM].measured {
			bestM = i
		}
		if rs[i].analytic < rs[bestA].analytic {
			bestA = i
		}
	}
	if rs[bestA].alg != ThreeAll {
		t.Errorf("analytic winner = %v, want 3D All", rs[bestA].alg)
	}
	if rs[bestM].alg != rs[bestA].alg {
		t.Errorf("measured winner %v != analytic winner %v", rs[bestM].alg, rs[bestA].alg)
	}
}

// measuredGrid runs the grid 3-D All variant with unit cost vectors.
func measuredGrid(t *testing.T, p, n, qy int, pm simnet.PortModel) (a, b float64) {
	t.Helper()
	A := matrix.Random(n, n, 41)
	B := matrix.Random(n, n, 42)
	for i, cfg := range []struct{ ts, tw float64 }{{1, 0}, {0, 1}} {
		m := simnet.NewMachine(simnet.Config{P: p, Ports: pm, Ts: cfg.ts, Tw: cfg.tw})
		_, rs, err := core.ThreeAllGrid(m, A, B, qy)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			a = rs.Elapsed
		} else {
			b = rs.Elapsed
		}
	}
	return a, b
}

// TestMeasuredFox cross-validates the Fox-Otto-Hey extension baseline.
func TestMeasuredFox(t *testing.T) {
	const p, n = 16, 32
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		aA, bA, ok := Overhead(Fox, n, p, pm)
		if !ok {
			t.Fatal("Fox inapplicable")
		}
		aM, bM := measured(t, algorithms.Fox, p, n, pm)
		if aM > aA*1.05+1e-9 || aM < aA*0.45 {
			t.Errorf("Fox %v: measured a=%g vs analytic %g", pm, aM, aA)
		}
		if bM > bA*1.05+1e-9 || bM < bA*0.45 {
			t.Errorf("Fox %v: measured b=%g vs analytic %g", pm, bM, bA)
		}
	}
}

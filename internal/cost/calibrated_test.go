package cost

import (
	"math"
	"testing"

	"hypermm/internal/simnet"
)

func TestCalibratedNilIsAnalytic(t *testing.T) {
	var m *CalibratedModel
	for _, pm := range bothPorts {
		for _, alg := range Algorithms {
			got, gok := m.Time(alg, 64, 16, 150, 3, pm)
			want, wok := Time(alg, 64, 16, 150, 3, pm)
			if gok != wok || got != want {
				t.Errorf("%v %v: nil model %g/%v, analytic %g/%v", pm, alg, got, gok, want, wok)
			}
		}
	}
}

func TestCalibratedScalingAndCorrection(t *testing.T) {
	m := &CalibratedModel{TsScale: 2, TwScale: 0.5, Corr: map[Alg]float64{Cannon: 1.25}}
	n, p := 64.0, 16.0
	for _, alg := range []Alg{Cannon, Berntsen} {
		scaled, ok := Time(alg, n, p, 2*150, 0.5*3, simnet.OnePort)
		if !ok {
			t.Fatalf("%v inapplicable at n=%g p=%g", alg, n, p)
		}
		want := scaled
		if alg == Cannon {
			want *= 1.25
		}
		got, ok := m.Time(alg, n, p, 150, 3, simnet.OnePort)
		if !ok {
			t.Fatalf("calibrated %v inapplicable", alg)
		}
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%v: calibrated time %g, want %g", alg, got, want)
		}
	}
}

func TestCalibratedTotalTimeAddsCompute(t *testing.T) {
	m := &CalibratedModel{TsScale: 1, TwScale: 1}
	comm, ok := m.Time(Cannon, 64, 16, 150, 3, simnet.OnePort)
	if !ok {
		t.Fatal("cannon inapplicable")
	}
	total, ok := m.TotalTime(Cannon, 64, 16, 150, 3, 0.5, simnet.OnePort)
	if !ok {
		t.Fatal("cannon total inapplicable")
	}
	if want := comm + ComputeTime(64, 16, 0.5); math.Abs(total-want) > 1e-9*want {
		t.Errorf("total %g, want %g", total, want)
	}
}

func TestCalibratedInapplicableStaysInapplicable(t *testing.T) {
	m := &CalibratedModel{TsScale: 1, TwScale: 1}
	// One-port 3dall is inapplicable at p=4096, n=16 (analytic Table 3);
	// calibration must not resurrect it.
	if _, ok := m.Time(ThreeAll, 16, 4096, 150, 3, simnet.OnePort); ok {
		t.Error("calibrated model made an inapplicable algorithm applicable")
	}
}

// TestCalibratedBestRespectsCorrection builds a correction large enough
// to flip the winner: whatever the analytic best is, penalizing it 100x
// must dethrone it.
func TestCalibratedBestRespectsCorrection(t *testing.T) {
	cands := DefaultCandidates(simnet.OnePort)
	var nilModel *CalibratedModel
	ana, ok := nilModel.Best(64, 16, 150, 3, simnet.OnePort, cands)
	if !ok {
		t.Fatal("no analytic best at n=64 p=16")
	}
	m := &CalibratedModel{TsScale: 1, TwScale: 1, Corr: map[Alg]float64{ana: 100}}
	cal, ok := m.Best(64, 16, 150, 3, simnet.OnePort, cands)
	if !ok {
		t.Fatal("no calibrated best at n=64 p=16")
	}
	if cal == ana {
		t.Errorf("100x penalty on %v did not change the winner", ana)
	}
}

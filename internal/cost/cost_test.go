package cost

import (
	"math"
	"testing"
	"testing/quick"

	"hypermm/internal/simnet"
)

var bothPorts = []simnet.PortModel{simnet.OnePort, simnet.MultiPort}

// sampleNP draws a plausible (n, p) point from fuzz bytes.
func sampleNP(nb, pb uint8) (n, p float64) {
	n = math.Exp2(4 + float64(nb%10))  // n in [16, 8192]
	p = math.Exp2(3 + 3*float64(pb%5)) // p in {8, 64, 512, 4096, 32768}
	return
}

func TestApplicableLimits(t *testing.T) {
	// Table 3 conditions at the boundaries.
	if !Applicable(Cannon, 100, 100*100) || Applicable(Cannon, 100, 100*100+1) {
		t.Error("Cannon applicability boundary p <= n^2 wrong")
	}
	if !Applicable(ThreeAll, 100, 1000) || Applicable(ThreeAll, 100, 1001) {
		t.Error("3D All applicability boundary p <= n^1.5 wrong")
	}
	if !Applicable(ThreeDiag, 10, 1000) || Applicable(ThreeDiag, 10, 1001) {
		t.Error("3DD applicability boundary p <= n^3 wrong")
	}
}

func TestOverheadInapplicable(t *testing.T) {
	if _, _, ok := Overhead(ThreeAll, 16, 4096, simnet.OnePort); ok {
		t.Error("3D All overhead returned for p > n^1.5")
	}
	if _, _, ok := Overhead(Cannon, 8, 128, simnet.OnePort); ok {
		t.Error("Cannon overhead returned for p > n^2")
	}
}

func TestOverheadTrivialP(t *testing.T) {
	for _, alg := range Algorithms {
		a, b, ok := Overhead(alg, 64, 1, simnet.OnePort)
		if !ok || a != 0 || b != 0 {
			t.Errorf("%v: p=1 overhead = (%g,%g,%v), want zero", alg, a, b, ok)
		}
	}
}

// TestThreeAllDominates is the paper's Section 5.1 claim: on one-port
// hypercubes 3D All beats 3DD, Berntsen and Cannon for all p >= 8,
// irrespective of n, t_s, t_w, wherever 3D All is applicable.
func TestThreeAllDominates(t *testing.T) {
	f := func(nb, pb uint8, tsb, twb uint8) bool {
		n, p := sampleNP(nb, pb)
		if !Applicable(ThreeAll, n, p) || p < 8 {
			return true
		}
		ts := float64(tsb)
		tw := 0.1 + float64(twb)/16
		tAll, _ := Time(ThreeAll, n, p, ts, tw, simnet.OnePort)
		for _, rival := range []Alg{ThreeDiag, Berntsen, Cannon} {
			if tr, ok := Time(rival, n, p, ts, tw, simnet.OnePort); ok && tAll > tr+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestThreeDiagDominatesDNS: 3DD is at least as good as DNS for both
// architectures, irrespective of n, p, t_s, t_w (Section 5).
func TestThreeDiagDominatesDNS(t *testing.T) {
	f := func(nb, pb, tsb, twb uint8) bool {
		n, p := sampleNP(nb, pb)
		ts, tw := float64(tsb), 0.1+float64(twb)/16
		for _, pm := range bothPorts {
			td, ok1 := Time(ThreeDiag, n, p, ts, tw, pm)
			tn, ok2 := Time(DNS, n, p, ts, tw, pm)
			if ok1 && ok2 && td > tn+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestThreeAllDominatesAllTrans: 3D All is at least as good as
// 3D All_Trans for both architectures (Section 5).
func TestThreeAllDominatesAllTrans(t *testing.T) {
	f := func(nb, pb, tsb, twb uint8) bool {
		n, p := sampleNP(nb, pb)
		ts, tw := float64(tsb), 0.1+float64(twb)/16
		for _, pm := range bothPorts {
			ta, ok1 := Time(ThreeAll, n, p, ts, tw, pm)
			tt, ok2 := Time(AllTrans, n, p, ts, tw, pm)
			if ok1 && ok2 && ta > tt+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHJEBeatsCannonMultiPort: wherever HJE's full-bandwidth condition
// holds, it beats Cannon on a multi-port machine (Section 5.2).
func TestHJEBeatsCannonMultiPort(t *testing.T) {
	f := func(nb, pb, twb uint8) bool {
		n, p := sampleNP(nb, pb)
		if !Applicable(HJE, n, p) || !FullBandwidth(HJE, n, p) || p < 4 {
			return true
		}
		tw := 0.1 + float64(twb)/16
		th, _ := Time(HJE, n, p, 0, tw, simnet.MultiPort)
		tc, _ := Time(Cannon, n, p, 0, tw, simnet.MultiPort)
		return th <= tc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMultiPortNeverWorse: for every algorithm the multi-port overhead
// is never above the one-port overhead (a node can always idle ports).
func TestMultiPortNeverWorse(t *testing.T) {
	f := func(ai, nb, pb, tsb, twb uint8) bool {
		alg := Algorithms[int(ai)%len(Algorithms)]
		n, p := sampleNP(nb, pb)
		ts, tw := float64(tsb), 0.1+float64(twb)/16
		t1, ok1 := Time(alg, n, p, ts, tw, simnet.OnePort)
		tm, ok2 := Time(alg, n, p, ts, tw, simnet.MultiPort)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || tm <= t1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestCollectiveCostTable1(t *testing.T) {
	const N, M = 8.0, 96.0
	logN := 3.0
	type want struct {
		c    Collective
		pm   simnet.PortModel
		a, b float64
	}
	cases := []want{
		{OneToAllBcast, simnet.OnePort, logN, M * logN},
		{OneToAllBcast, simnet.MultiPort, logN, M},
		{OneToAllPersonalized, simnet.OnePort, logN, (N - 1) * M},
		{OneToAllPersonalized, simnet.MultiPort, logN, (N - 1) * M / logN},
		{AllToAllBcast, simnet.OnePort, logN, (N - 1) * M},
		{AllToAllBcast, simnet.MultiPort, logN, (N - 1) * M / logN},
		{AllToAllPersonalized, simnet.OnePort, logN, N * M * logN / 2},
		{AllToAllPersonalized, simnet.MultiPort, logN, N * M / 2},
		{AllToOneReduce, simnet.OnePort, logN, M * logN},
		{AllToAllReduce, simnet.OnePort, logN, (N - 1) * M},
	}
	for _, w := range cases {
		a, b := CollectiveCost(w.c, N, M, w.pm)
		if a != w.a || b != w.b {
			t.Errorf("%v %v: got (%g,%g), want (%g,%g)", w.c, w.pm, a, b, w.a, w.b)
		}
	}
	if a, b := CollectiveCost(OneToAllBcast, 1, M, simnet.OnePort); a != 0 || b != 0 {
		t.Error("single-node collective should be free")
	}
}

func TestSpaceTable3(t *testing.T) {
	n, p := 128.0, 64.0
	cases := []struct {
		alg  Alg
		want float64
	}{
		{Simple, 2 * n * n * 8},
		{Cannon, 3 * n * n},
		{HJE, 3 * n * n},
		{Berntsen, 2*n*n + n*n*4},
		{DNS, 2 * n * n * 4},
		{ThreeDiag, 2 * n * n * 4},
		{AllTrans, 2 * n * n * 4},
		{ThreeAll, 2 * n * n * 4},
	}
	for _, c := range cases {
		got, ok := Space(c.alg, n, p)
		if !ok || got != c.want {
			t.Errorf("Space(%v) = (%g,%v), want %g", c.alg, got, ok, c.want)
		}
	}
	if _, ok := Space(ThreeAll, 8, 4096); ok {
		t.Error("Space returned for inapplicable point")
	}
}

func TestComputeTimeSharedByAll(t *testing.T) {
	if got := ComputeTime(64, 8, 0.5); got != 2*64*64*64*0.5/8 {
		t.Errorf("ComputeTime = %g", got)
	}
}

func TestStringsAndLetters(t *testing.T) {
	seen := map[byte]bool{}
	for _, a := range Algorithms {
		if a.String() == "" {
			t.Errorf("empty name for %d", int(a))
		}
		l := a.Letter()
		if seen[l] {
			t.Errorf("duplicate region letter %c", l)
		}
		seen[l] = true
	}
	if ThreeAll.String() != "3D All" || ThreeDiag.Letter() != 'D' {
		t.Error("canonical names wrong")
	}
}

func TestFullBandwidthConditions(t *testing.T) {
	// Table 2 conditions: 3D All needs n^2 >= p^(4/3) log cbrt(p) for
	// its first phase to fill ports; below that it degrades.
	a1, b1, ok1 := Overhead(ThreeAll, 1024, 512, simnet.MultiPort) // n^2 >= p^(4/3) log cbrt(p): full bandwidth
	a2, b2, ok2 := Overhead(ThreeAll, 100, 512, simnet.MultiPort)  // intermediate regime
	if !ok1 || !ok2 {
		t.Fatal("test points not applicable")
	}
	if a1 != a2 {
		t.Errorf("3D All multi-port a changed across regimes: %g vs %g", a1, a2)
	}
	// The intermediate regime has a relatively larger t_w coefficient
	// (normalized by n^2).
	if b1/(1024*1024) >= b2/(100*100) {
		t.Errorf("3D All regimes not ordered: %g vs %g", b1/(1024*1024), b2/(100*100))
	}
	// Note: within 3D All's applicability region p <= n^1.5, the
	// intermediate condition n^2 >= p log cbrt(p) always holds (since
	// n^2 >= p^(4/3) >= p log cbrt(p)), so the full one-port fallback is
	// unreachable for 3D All. DNS, by contrast, can fall back: p <= n^3
	// admits points whose messages cannot fill the ports.
	aop, bop, _ := Overhead(DNS, 10, 512, simnet.OnePort)
	amp, bmp, _ := Overhead(DNS, 10, 512, simnet.MultiPort)
	if aop != amp || bop != bmp {
		t.Error("DNS below full-bandwidth condition should equal one-port")
	}
}

func TestNamesAndLettersComplete(t *testing.T) {
	// Every enum value — including TwoDiag, which is not in Algorithms —
	// has a distinct name and region letter; unknown values degrade
	// gracefully.
	all := append([]Alg{TwoDiag}, Algorithms...)
	names := map[string]bool{}
	letters := map[byte]bool{}
	for _, a := range all {
		if n := a.String(); n == "" || names[n] {
			t.Errorf("bad or duplicate name %q", n)
		} else {
			names[n] = true
		}
		if l := a.Letter(); l == '?' || letters[l] {
			t.Errorf("bad or duplicate letter %c", l)
		} else {
			letters[l] = true
		}
	}
	if Alg(99).Letter() != '?' || Alg(99).String() == "" {
		t.Error("unknown Alg not handled")
	}
	for _, c := range Collectives {
		if c.String() == "" {
			t.Errorf("collective %d unnamed", int(c))
		}
	}
	if Collective(99).String() == "" {
		t.Error("unknown collective unnamed")
	}
}

func TestApplicabilityAndSpaceAllAlgs(t *testing.T) {
	// Exercise every branch of Applicable/FullBandwidth/Space,
	// including TwoDiag and the degenerate inputs.
	n, p := 240.0, 64.0
	all := append([]Alg{TwoDiag}, Algorithms...)
	for _, a := range all {
		if !Applicable(a, n, p) {
			t.Errorf("%v inapplicable at comfortable point", a)
		}
		if Applicable(a, 0.5, p) {
			t.Errorf("%v applicable at n<1", a)
		}
		_ = FullBandwidth(a, n, p)
		if s, ok := Space(a, n, p); !ok || s <= 0 {
			t.Errorf("%v space = (%g,%v)", a, s, ok)
		}
	}
	if Applicable(Alg(99), n, p) || FullBandwidth(Alg(99), n, p) {
		t.Error("unknown Alg applicable")
	}
	if _, ok := Space(Alg(99), n, p); ok {
		t.Error("unknown Alg has space")
	}
}

func TestTwoDiagOverheadBothPorts(t *testing.T) {
	for _, pm := range bothPorts {
		a, b, ok := Overhead(TwoDiag, 240, 64, pm)
		if !ok || a <= 0 || b <= 0 {
			t.Errorf("TwoDiag %v overhead = (%g,%g,%v)", pm, a, b, ok)
		}
	}
}

func TestDNSCannonOverheadEdges(t *testing.T) {
	if _, _, ok := OverheadDNSCannon(16, 8, 16, simnet.OnePort); ok {
		t.Error("accepted s > p")
	}
	if _, _, ok := OverheadDNSCannon(2, 512, 8, simnet.OnePort); ok {
		t.Error("accepted finer-than-element partition")
	}
	if a, b, ok := OverheadDNSCannon(64, 1, 1, simnet.OnePort); !ok || a != 0 || b != 0 {
		t.Errorf("p=1 combination = (%g,%g,%v)", a, b, ok)
	}
	// Multi-port at a regular point.
	a, b, ok := OverheadDNSCannon(64, 512, 8, simnet.MultiPort)
	if !ok || a <= 0 || b <= 0 {
		t.Errorf("multi-port combination = (%g,%g,%v)", a, b, ok)
	}
}

package cost

import (
	"math"
	"testing"

	"hypermm/internal/simnet"
)

func TestEfficiencyBasics(t *testing.T) {
	// Efficiency lies in (0, 1], improves with n, degrades with p.
	e1, ok := Efficiency(ThreeAll, 256, 64, 150, 3, 0.5, simnet.OnePort)
	if !ok || e1 <= 0 || e1 > 1 {
		t.Fatalf("efficiency = %g ok=%v", e1, ok)
	}
	e2, _ := Efficiency(ThreeAll, 512, 64, 150, 3, 0.5, simnet.OnePort)
	if e2 <= e1 {
		t.Errorf("efficiency did not improve with n: %g -> %g", e1, e2)
	}
	e3, _ := Efficiency(ThreeAll, 256, 512, 150, 3, 0.5, simnet.OnePort)
	if e3 >= e1 {
		t.Errorf("efficiency did not degrade with p: %g -> %g", e1, e3)
	}
	if _, ok := Efficiency(ThreeAll, 256, 64, 150, 3, 0, simnet.OnePort); ok {
		t.Error("efficiency defined with tc=0")
	}
	if e, ok := Efficiency(Cannon, 64, 1, 1, 1, 1, simnet.OnePort); !ok || e != 1 {
		t.Errorf("p=1 efficiency = %g", e)
	}
}

func TestIsoefficiencyMonotoneInP(t *testing.T) {
	// Sustaining fixed efficiency on more processors needs a larger
	// problem.
	var prev float64
	for _, p := range []float64{8, 64, 512, 4096} {
		n, ok := IsoefficiencyN(ThreeAll, p, 0.5, 150, 3, 0.5, simnet.OnePort)
		if !ok {
			t.Fatalf("no isoefficiency point at p=%g", p)
		}
		if n <= prev {
			t.Errorf("p=%g: isoefficiency n=%g not above %g", p, n, prev)
		}
		prev = n
	}
}

func TestIsoefficiencyAchievesTarget(t *testing.T) {
	const p, target = 512.0, 0.6
	n, ok := IsoefficiencyN(ThreeDiag, p, target, 150, 3, 0.5, simnet.OnePort)
	if !ok {
		t.Fatal("no point found")
	}
	e, ok := Efficiency(ThreeDiag, n, p, 150, 3, 0.5, simnet.OnePort)
	if !ok || e < target-1e-6 {
		t.Errorf("efficiency at returned n = %g < %g", e, target)
	}
	// Just below n the target must not be met (minimality).
	if e2, ok := Efficiency(ThreeDiag, n*0.99, p, 150, 3, 0.5, simnet.OnePort); ok && e2 >= target {
		t.Errorf("n not minimal: efficiency at 0.99n = %g", e2)
	}
}

// TestThreeAllMostScalable: 3D All needs the smallest problem of the
// paper's candidates to sustain 50% efficiency — the scalability
// consequence of its lower communication overhead.
func TestThreeAllMostScalable(t *testing.T) {
	const p = 4096.0
	nAll, ok := IsoefficiencyN(ThreeAll, p, 0.5, 150, 3, 0.5, simnet.OnePort)
	if !ok {
		t.Fatal("3D All unreachable")
	}
	for _, rival := range []Alg{Cannon, Berntsen, ThreeDiag, DNS} {
		nr, ok := IsoefficiencyN(rival, p, 0.5, 150, 3, 0.5, simnet.OnePort)
		if ok && nr < nAll {
			t.Errorf("%v isoefficiency n=%g below 3D All's %g", rival, nr, nAll)
		}
	}
}

func TestIsoefficiencyCurve(t *testing.T) {
	ps := []float64{8, 64, 512}
	curve := IsoefficiencyCurve(ThreeAll, ps, 0.5, 150, 3, 0.5, simnet.OnePort)
	if len(curve) != 3 {
		t.Fatal("curve length wrong")
	}
	for i, v := range curve {
		if math.IsNaN(v) {
			t.Errorf("curve[%d] is NaN", i)
		}
	}
	if bad := IsoefficiencyCurve(ThreeAll, []float64{8}, 1.5, 150, 3, 0.5, simnet.OnePort); !math.IsNaN(bad[0]) {
		t.Error("impossible target should yield NaN")
	}
}

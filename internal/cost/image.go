package cost

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// Colors for the region-map algorithms, chosen to stay distinguishable
// in grayscale reproduction too.
var algColors = map[Alg]color.RGBA{
	Simple:    {R: 0x88, G: 0x88, B: 0x88, A: 0xff},
	Cannon:    {R: 0xd6, G: 0x60, B: 0x4f, A: 0xff}, // red-ish
	HJE:       {R: 0xe8, G: 0xa8, B: 0x3c, A: 0xff}, // amber
	Berntsen:  {R: 0x7b, G: 0x5c, B: 0xa8, A: 0xff}, // violet
	DNS:       {R: 0x4f, G: 0x8f, B: 0x8f, A: 0xff}, // teal
	Fox:       {R: 0xa0, G: 0x52, B: 0x2d, A: 0xff}, // sienna
	TwoDiag:   {R: 0xc0, G: 0xc0, B: 0x60, A: 0xff},
	ThreeDiag: {R: 0x3a, G: 0x6e, B: 0xc0, A: 0xff}, // blue
	AllTrans:  {R: 0x5f, G: 0xb0, B: 0x6a, A: 0xff}, // light green
	ThreeAll:  {R: 0x1f, G: 0x7a, B: 0x33, A: 0xff}, // green
}

var inapplicableColor = color.RGBA{R: 0xf2, G: 0xf2, B: 0xf2, A: 0xff}

// Color returns the algorithm's region-map color.
func (a Alg) Color() color.RGBA {
	if c, ok := algColors[a]; ok {
		return c
	}
	return color.RGBA{A: 0xff}
}

// Image renders the region map as a raster image with the given pixel
// cell size: columns are log2 n ascending left to right, rows log2 p
// ascending bottom to top (matching the paper's figure orientation).
func (rm *RegionMap) Image(cell int) *image.RGBA {
	if cell < 1 {
		cell = 1
	}
	w, h := len(rm.LogN)*cell, len(rm.LogP)*cell
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for pi := range rm.LogP {
		for ni := range rm.LogN {
			var c color.RGBA
			if alg, ok := rm.At(pi, ni); ok {
				c = alg.Color()
			} else {
				c = inapplicableColor
			}
			// Row 0 (smallest p) at the bottom of the image.
			y0 := (len(rm.LogP) - 1 - pi) * cell
			x0 := ni * cell
			for y := y0; y < y0+cell; y++ {
				for x := x0; x < x0+cell; x++ {
					img.SetRGBA(x, y, c)
				}
			}
		}
	}
	return img
}

// WritePNG encodes the region map as a PNG.
func (rm *RegionMap) WritePNG(w io.Writer, cell int) error {
	if err := png.Encode(w, rm.Image(cell)); err != nil {
		return fmt.Errorf("cost: encoding region map: %w", err)
	}
	return nil
}

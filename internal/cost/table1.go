package cost

import (
	"fmt"

	"hypermm/internal/simnet"
)

// Collective identifies a collective communication pattern of Table 1.
type Collective int

// The collective patterns of Table 1 (plus the reductions, which the
// paper notes are the communication inverses of the broadcasts).
const (
	OneToAllBcast Collective = iota
	OneToAllPersonalized
	AllToAllBcast
	AllToAllPersonalized
	AllToOneReduce
	AllToAllReduce
)

// String implements fmt.Stringer with the paper's names.
func (c Collective) String() string {
	switch c {
	case OneToAllBcast:
		return "One-to-All Broadcast"
	case OneToAllPersonalized:
		return "One-to-All Personalized Broadcast"
	case AllToAllBcast:
		return "All-to-All Broadcast"
	case AllToAllPersonalized:
		return "All-to-All Personalized Broadcast"
	case AllToOneReduce:
		return "All-to-One Reduction"
	case AllToAllReduce:
		return "All-to-All Reduction"
	default:
		return fmt.Sprintf("Collective(%d)", int(c))
	}
}

// Collectives lists the Table 1 rows in order.
var Collectives = []Collective{
	OneToAllBcast, OneToAllPersonalized, AllToAllBcast, AllToAllPersonalized,
	AllToOneReduce, AllToAllReduce,
}

// CollectiveCost returns Table 1's optimal cost coefficients (a, b) —
// time = t_s*a + t_w*b — for the pattern on an N-processor hypercube
// with messages of M words. Multi-port figures assume M >= log N
// (enough words to fill all ports).
func CollectiveCost(c Collective, N, M float64, pm simnet.PortModel) (a, b float64) {
	logN := lg(N)
	if N <= 1 {
		return 0, 0
	}
	multi := pm == simnet.MultiPort
	switch c {
	case OneToAllBcast, AllToOneReduce:
		if multi {
			return logN, M
		}
		return logN, M * logN
	case OneToAllPersonalized, AllToAllBcast, AllToAllReduce:
		if multi {
			return logN, (N - 1) * M / logN
		}
		return logN, (N - 1) * M
	case AllToAllPersonalized:
		if multi {
			return logN, N * M / 2
		}
		return logN, N * M * logN / 2
	default:
		panic(fmt.Sprintf("cost: unknown collective %d", int(c)))
	}
}

package collective

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
)

// BcastOp is a one-to-all broadcast along a chain: the node at rootPos
// holds a block that every chain node ends up with.
//
// One-port: spanning binomial tree, log q steps of the full message:
// t_s log q + t_w M log q (Table 1). Multi-port: the message is cut
// into d slices, slice l following the binomial schedule over the
// dimension order rotated by l, so every step moves all slices on
// distinct ports: t_s log q + t_w M.
type BcastOp struct {
	c          Comm
	phase      uint64
	rel        int // rank relative to the root
	rows, cols int
	w          int
	data       []float64
	recvStep   []int // per slice: step at which this node receives (-1 if root)
}

// NewBcast prepares a broadcast. Every participant must pass the block
// shape (rows, cols); only the root passes blk (others nil).
func (c Comm) NewBcast(phase uint64, rootPos, rows, cols int, blk *matrix.Dense) *BcastOp {
	rootRank := hypercube.Gray(rootPos)
	op := &BcastOp{
		c: c, phase: phase, rel: c.rank ^ rootRank,
		rows: rows, cols: cols, w: rows * cols,
	}
	if op.rel == 0 {
		if blk == nil || blk.Rows != rows || blk.Cols != cols {
			panic(fmt.Sprintf("collective: Bcast root block mismatch (want %dx%d)", rows, cols))
		}
		op.data = blk.Data
	} else {
		op.data = make([]float64, op.w)
	}
	op.recvStep = make([]int, op.c.g)
	for l := range op.recvStep {
		op.recvStep[l] = op.relRecvStep(l)
	}
	return op
}

// relRecvStep returns the step at which this node first holds slice l:
// the largest order-position among the set bits of rel (-1 for the root).
func (op *BcastOp) relRecvStep(l int) int {
	if op.rel == 0 {
		return -1
	}
	step := -1
	for b := 0; b < op.c.d; b++ {
		if op.rel&(1<<b) != 0 {
			// position of chain bit b in slice l's rotated order
			s := (b - l + op.c.d) % op.c.d
			if s > step {
				step = s
			}
		}
	}
	return step
}

// Steps implements Op.
func (op *BcastOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *BcastOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.recvStep[l] >= s {
			continue // nothing to send, or not yet a holder
		}
		b := op.c.bit(l, s)
		op.c.N.Send(op.c.partner(b), tag(op.phase, s, l), op.data[lo:hi])
	}
}

// RecvStep implements Op.
func (op *BcastOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.recvStep[l] != s {
			continue
		}
		b := op.c.bit(l, s)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		if len(msg.Data) != hi-lo {
			panic(fmt.Sprintf("collective: Bcast slice %d got %d words want %d", l, len(msg.Data), hi-lo))
		}
		copy(op.data[lo:hi], msg.Data)
		msg.Release() // payload fully copied into the local block
	}
}

// Result returns the broadcast block (valid after Run).
func (op *BcastOp) Result() *matrix.Dense {
	return matrix.FromSlice(op.rows, op.cols, op.data)
}

// Bcast runs a one-to-all broadcast and returns the block on every node.
func (c Comm) Bcast(phase uint64, rootPos, rows, cols int, blk *matrix.Dense) *matrix.Dense {
	if c.d == 0 {
		return blk
	}
	op := c.NewBcast(phase, rootPos, rows, cols, blk)
	Run(op)
	return op.Result()
}

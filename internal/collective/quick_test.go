package collective

import (
	"testing"
	"testing/quick"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Property-based checks: for random chain sizes, message shapes, roots
// and port models, every collective must deliver exactly the data a
// naive reference computes.

type shape struct {
	q          int // chain length
	rows, cols int // block shape
	root       int
	pm         simnet.PortModel
}

// Payload pools are deliberately dominated by odd and non-power-of-two
// sizes: rows*cols is then rarely divisible by the slice count, so the
// multi-port slicing (sliceBounds) exercises its remainder handling and
// empty-slice paths, and message lengths never line up with the pooled
// buffer classes the transport recycles.
var (
	quickRows = []int{1, 2, 3, 5, 7, 9, 13, 17}
	quickCols = []int{1, 3, 4, 5, 7, 11, 19, 23}
)

func shapeFrom(qb, rb, cb, rootb, pmb uint8) shape {
	q := 1 << (int(qb) % 5) // 1..16
	return shape{
		q:    q,
		rows: quickRows[int(rb)%len(quickRows)],
		cols: quickCols[int(cb)%len(quickCols)],
		root: int(rootb) % q,
		pm:   simnet.PortModel(int(pmb) % 2),
	}
}

// refBlock builds deterministic content for (origin, salt).
func refBlock(rows, cols, origin, salt int) *matrix.Dense {
	b := matrix.New(rows, cols)
	for i := range b.Data {
		b.Data[i] = float64(origin*7919 + salt*104729 + i)
	}
	return b
}

func runOnChain(s shape, prog func(c Comm, fail func(string))) (failMsg string) {
	m := simnet.NewMachine(simnet.Config{P: s.q, Ports: s.pm, Ts: 1, Tw: 1})
	ch := chainOf(s.q)
	var msg string
	m.Run(func(n *simnet.Node) {
		prog(On(n, ch), func(s string) { msg = s })
	})
	return msg
}

func TestQuickBcast(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		want := refBlock(s.rows, s.cols, s.root, 1)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			var blk *matrix.Dense
			if c.Pos() == s.root {
				blk = want
			}
			if got := c.Bcast(1, s.root, s.rows, s.cols, blk); !matrix.Equal(got, want) {
				fail("content")
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickScatter(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			var blocks []*matrix.Dense
			if c.Pos() == s.root {
				blocks = make([]*matrix.Dense, s.q)
				for j := range blocks {
					blocks[j] = refBlock(s.rows, s.cols, j, 2)
				}
			}
			got := c.Scatter(1, s.root, s.rows, s.cols, blocks)
			if !matrix.Equal(got, refBlock(s.rows, s.cols, c.Pos(), 2)) {
				fail("content")
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickGather(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			got := c.Gather(1, s.root, refBlock(s.rows, s.cols, c.Pos(), 3))
			if c.Pos() == s.root {
				for j := range got {
					if !matrix.Equal(got[j], refBlock(s.rows, s.cols, j, 3)) {
						fail("content")
					}
				}
			} else if got != nil {
				fail("non-root result")
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllGather(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			got := c.AllGather(1, refBlock(s.rows, s.cols, c.Pos(), 4))
			for j := range got {
				if !matrix.Equal(got[j], refBlock(s.rows, s.cols, j, 4)) {
					fail("content")
				}
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickReduce(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		want := matrix.New(s.rows, s.cols)
		for j := 0; j < s.q; j++ {
			want.AddInto(refBlock(s.rows, s.cols, j, 5))
		}
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			got := c.Reduce(1, s.root, refBlock(s.rows, s.cols, c.Pos(), 5))
			if c.Pos() == s.root {
				if matrix.MaxAbsDiff(got, want) > 1e-6 {
					fail("sum")
				}
			} else if got != nil {
				fail("non-root result")
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickReduceScatter(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			blocks := make([]*matrix.Dense, s.q)
			for j := range blocks {
				blocks[j] = refBlock(s.rows, s.cols, 100*c.Pos()+j, 6)
			}
			got := c.ReduceScatter(1, blocks)
			want := matrix.New(s.rows, s.cols)
			for o := 0; o < s.q; o++ {
				want.AddInto(refBlock(s.rows, s.cols, 100*o+c.Pos(), 6))
			}
			if matrix.MaxAbsDiff(got, want) > 1e-6 {
				fail("sum")
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickAllToAll(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			blocks := make([]*matrix.Dense, s.q)
			for j := range blocks {
				blocks[j] = refBlock(s.rows, s.cols, 100*c.Pos()+j, 7)
			}
			got := c.AllToAll(1, blocks)
			for o := range got {
				if !matrix.Equal(got[o], refBlock(s.rows, s.cols, 100*o+c.Pos(), 7)) {
					fail("content")
				}
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickScatterGatherInverse: gather(scatter(x)) == x for random
// shapes — the paper's "inverse" relationship between the personalized
// collectives.
func TestQuickScatterGatherInverse(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			var blocks []*matrix.Dense
			if c.Pos() == s.root {
				blocks = make([]*matrix.Dense, s.q)
				for j := range blocks {
					blocks[j] = refBlock(s.rows, s.cols, j, 8)
				}
			}
			mine := c.Scatter(1, s.root, s.rows, s.cols, blocks)
			back := c.Gather(2, s.root, mine)
			if c.Pos() == s.root {
				for j := range back {
					if !matrix.Equal(back[j], refBlock(s.rows, s.cols, j, 8)) {
						fail("roundtrip")
					}
				}
			}
		})
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickTimingDeterminism: simulated cost of a random collective is
// identical across repeated runs.
func TestQuickTimingDeterminism(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		run := func() float64 {
			m := simnet.NewMachine(simnet.Config{P: s.q, Ports: s.pm, Ts: 3, Tw: 2})
			ch := chainOf(s.q)
			rs := m.Run(func(n *simnet.Node) {
				c := On(n, ch)
				c.AllGather(1, refBlock(s.rows, s.cols, c.Pos(), 9))
			})
			return rs.Elapsed
		}
		first := run()
		for i := 0; i < 2; i++ {
			if run() != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickPooledBuffersNoAlias: results handed back by a collective
// must be fully owned by the caller. The transport pools message
// buffers (SendOwned hands slices to the network; Release recycles
// them), so if a collective ever returned matrices aliasing a pooled
// buffer, the next collective on the same machine would scribble over
// them. Run several pool-churning collectives after the one under test
// and require the retained results to still match a snapshot.
func TestQuickPooledBuffersNoAlias(t *testing.T) {
	f := func(qb, rb, cb, rootb, pmb uint8) bool {
		s := shapeFrom(qb, rb, cb, rootb, pmb)
		if s.q == 1 {
			return true // no traffic, nothing pooled
		}
		fail := runOnChain(s, func(c Comm, fail func(string)) {
			got := c.AllGather(1, refBlock(s.rows, s.cols, c.Pos(), 11))
			snap := make([][]float64, len(got))
			for j := range got {
				snap[j] = append([]float64(nil), got[j].Data...)
			}

			// Churn the buffer pool with fresh traffic of the same and
			// of different shapes.
			blocks := make([]*matrix.Dense, s.q)
			for j := range blocks {
				blocks[j] = refBlock(s.rows, s.cols, 100*c.Pos()+j, 12)
			}
			c.AllToAll(2, blocks)
			c.Reduce(3, s.root, refBlock(s.rows, s.cols, c.Pos(), 13))
			var root *matrix.Dense
			if c.Pos() == s.root {
				root = refBlock(s.rows+1, s.cols, s.root, 14)
			}
			c.Bcast(4, s.root, s.rows+1, s.cols, root)

			for j := range got {
				want := refBlock(s.rows, s.cols, j, 11)
				if !matrix.Equal(got[j], want) {
					fail("retained result corrupted by later traffic")
					return
				}
				for i, v := range got[j].Data {
					if v != snap[j][i] {
						fail("retained result diverged from snapshot")
						return
					}
				}
			}
		})
		if fail != "" {
			t.Logf("shape %+v: %s", s, fail)
		}
		return fail == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMixedChainDims exercises chains over non-contiguous physical
// dimensions (as Berntsen's cross-subcube reduction uses).
func TestMixedChainDims(t *testing.T) {
	const p = 64
	m := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 1, Tw: 1})
	ch := hypercube.NewChain(0b010100, []int{0, 3, 5}) // scattered dims
	m.Run(func(n *simnet.Node) {
		if !ch.Contains(n.ID) {
			return
		}
		c := On(n, ch)
		got := c.AllGather(1, refBlock(2, 2, c.Pos(), 10))
		for j := range got {
			if !matrix.Equal(got[j], refBlock(2, 2, j, 10)) {
				t.Errorf("pos %d: block %d wrong", c.Pos(), j)
			}
		}
	})
}

package collective

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
)

// AllToAllOp is an all-to-all personalized communication along a chain:
// every node holds one block per destination position; node j ends with
// the q blocks addressed to it, indexed by origin position.
//
// The schedule is the classic pairwise hypercube exchange: at the step
// using chain bit b, a node forwards every held piece whose destination
// disagrees with it on bit b. Each step carries q/2 pieces, so the
// one-port cost is t_s log q + t_w q M log q / 2 (Table 1); the
// multi-port sliced variant divides the t_w term by log q.
type AllToAllOp struct {
	c          Comm
	phase      uint64
	rows, cols int
	w          int
	held       []map[pieceKey][]float64
}

type pieceKey struct {
	origin, dest int // absolute chain ranks
}

// NewAllToAll prepares an all-to-all personalized exchange; blocks are
// indexed by destination position and must be uniform.
func (c Comm) NewAllToAll(phase uint64, blocks []*matrix.Dense) *AllToAllOp {
	if len(blocks) != c.q {
		panic(fmt.Sprintf("collective: AllToAll has %d blocks want %d", len(blocks), c.q))
	}
	rows, cols := checkUniform("AllToAll", blocks)
	op := &AllToAllOp{c: c, phase: phase, rows: rows, cols: cols, w: rows * cols}
	op.held = make([]map[pieceKey][]float64, c.g)
	for l := range op.held {
		op.held[l] = make(map[pieceKey][]float64, c.q)
		lo, hi := sliceBounds(op.w, c.g, l)
		for pos, b := range blocks {
			op.held[l][pieceKey{c.rank, hypercube.Gray(pos)}] = b.Data[lo:hi]
		}
	}
	return op
}

// Steps implements Op.
func (op *AllToAllOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *AllToAllOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		b := op.c.bit(l, s)
		myBit := op.c.rank & (1 << b)
		keys := make([]pieceKey, 0, len(op.held[l])/2)
		for k := range op.held[l] {
			if k.dest&(1<<b) != myBit {
				keys = append(keys, k)
			}
		}
		sortKeys(keys)
		buf := make([]float64, 0, len(keys)*(hi-lo))
		for _, k := range keys {
			buf = append(buf, op.held[l][k]...)
			delete(op.held[l], k)
		}
		// buf is freshly assembled and never touched again: hand the
		// slice to the network instead of paying a transport copy.
		op.c.N.SendOwned(op.c.partner(b), tag(op.phase, s, l), buf)
	}
}

// RecvStep implements Op.
func (op *AllToAllOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		b := op.c.bit(l, s)
		partnerRank := op.c.rank ^ (1 << b)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		// Incoming pieces: destinations agree with us on the processed
		// bits and on bit b; origins agree with the partner off the
		// processed bits. Both sides enumerate in (dest, origin) order.
		dests := subsets(op.c.rank, op.c.futureBits(l, s))
		origins := subsets(partnerRank, op.c.pastBits(l, s))
		sz := hi - lo
		if len(msg.Data) != len(dests)*len(origins)*sz {
			panic(fmt.Sprintf("collective: AllToAll slice %d got %d words want %d", l, len(msg.Data), len(dests)*len(origins)*sz))
		}
		i := 0
		for _, x := range dests {
			for _, o := range origins {
				op.held[l][pieceKey{o, x}] = msg.Data[i*sz : (i+1)*sz]
				i++
			}
		}
	}
}

// sortKeys orders piece keys by (dest, origin) ascending, matching the
// receiver's enumeration order.
func sortKeys(a []pieceKey) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && (a[j].dest > v.dest || (a[j].dest == v.dest && a[j].origin > v.origin)) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Result returns the blocks addressed to this node, indexed by origin
// position (valid after Run). The blocks are carved from one batch
// allocation.
func (op *AllToAllOp) Result() []*matrix.Dense {
	out := matrix.NewBatch(op.c.q, op.rows, op.cols)
	for pos, blk := range out {
		o := hypercube.Gray(pos)
		for l := 0; l < op.c.g; l++ {
			lo, hi := sliceBounds(op.w, op.c.g, l)
			if lo == hi {
				continue
			}
			piece, ok := op.held[l][pieceKey{o, op.c.rank}]
			if !ok {
				panic(fmt.Sprintf("collective: AllToAll missing piece origin=%d slice=%d", pos, l))
			}
			copy(blk.Data[lo:hi], piece)
		}
	}
	return out
}

// AllToAll runs an all-to-all personalized exchange: blocks indexed by
// destination position in, blocks indexed by origin position out.
func (c Comm) AllToAll(phase uint64, blocks []*matrix.Dense) []*matrix.Dense {
	if c.d == 0 {
		return []*matrix.Dense{blocks[0]}
	}
	op := c.NewAllToAll(phase, blocks)
	Run(op)
	return op.Result()
}

package collective

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
)

// ReduceOp is an all-to-one reduction by addition: the root ends with
// the element-wise sum of every node's block. It is the inverse of the
// one-to-all broadcast with respect to communication (Section 2), so it
// costs the same: one-port t_s log q + t_w M log q, multi-port
// t_s log q + t_w M.
type ReduceOp struct {
	c          Comm
	phase      uint64
	rel        int
	rows, cols int
	w          int
	acc        []float64
	sendStep   []int
}

// NewReduce prepares a reduction of blk toward rootPos.
func (c Comm) NewReduce(phase uint64, rootPos int, blk *matrix.Dense) *ReduceOp {
	rootRank := hypercube.Gray(rootPos)
	op := &ReduceOp{
		c: c, phase: phase, rel: c.rank ^ rootRank,
		rows: blk.Rows, cols: blk.Cols, w: blk.Rows * blk.Cols,
	}
	op.acc = make([]float64, op.w)
	copy(op.acc, blk.Data)
	op.sendStep = make([]int, c.g)
	for l := range op.sendStep {
		op.sendStep[l] = relStepMin(op.rel, l, c.d)
	}
	return op
}

// Steps implements Op.
func (op *ReduceOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *ReduceOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.sendStep[l] != s {
			continue
		}
		b := op.c.bit(l, s)
		op.c.N.Send(op.c.partner(b), tag(op.phase, s, l), op.acc[lo:hi])
	}
}

// RecvStep implements Op.
func (op *ReduceOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.sendStep[l] <= s {
			continue
		}
		b := op.c.bit(l, s)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		if len(msg.Data) != hi-lo {
			panic(fmt.Sprintf("collective: Reduce slice %d got %d words want %d", l, len(msg.Data), hi-lo))
		}
		dst := op.acc[lo:hi]
		for i, v := range msg.Data {
			dst[i] += v
		}
		msg.Release() // payload fully folded into acc
		op.c.N.Compute(int64(hi - lo))
	}
}

// Result returns the summed block on the root, nil elsewhere.
func (op *ReduceOp) Result() *matrix.Dense {
	if op.rel != 0 {
		return nil
	}
	return matrix.FromSlice(op.rows, op.cols, op.acc)
}

// Reduce sums every node's block at rootPos; the root returns the sum,
// other nodes return nil.
func (c Comm) Reduce(phase uint64, rootPos int, blk *matrix.Dense) *matrix.Dense {
	if c.d == 0 {
		return blk
	}
	op := c.NewReduce(phase, rootPos, blk)
	Run(op)
	return op.Result()
}

// ReduceScatterOp is an all-to-all reduction: every node contributes a
// block per chain position; node at position j ends with the sum over
// contributors of the blocks destined for position j. It is the inverse
// of the all-to-all broadcast: one-port t_s log q + t_w (q-1)M,
// multi-port t_s log q + t_w (q-1)M / log q (Table 1).
type ReduceScatterOp struct {
	c          Comm
	phase      uint64
	rows, cols int
	w          int
	held       []map[int][]float64 // per slice: dest rank -> accumulating slice
}

// NewReduceScatter prepares an all-to-all reduction; blocks are indexed
// by destination position and must be uniform.
func (c Comm) NewReduceScatter(phase uint64, blocks []*matrix.Dense) *ReduceScatterOp {
	if len(blocks) != c.q {
		panic(fmt.Sprintf("collective: ReduceScatter has %d blocks want %d", len(blocks), c.q))
	}
	rows, cols := checkUniform("ReduceScatter", blocks)
	op := &ReduceScatterOp{c: c, phase: phase, rows: rows, cols: cols, w: rows * cols}
	op.held = make([]map[int][]float64, c.g)
	for l := range op.held {
		op.held[l] = make(map[int][]float64, c.q)
		lo, hi := sliceBounds(op.w, c.g, l)
		sz := hi - lo
		// One slab for all q accumulating copies of this slice.
		slab := make([]float64, c.q*sz)
		for pos, b := range blocks {
			cp := slab[pos*sz : (pos+1)*sz : (pos+1)*sz]
			copy(cp, b.Data[lo:hi])
			op.held[l][hypercube.Gray(pos)] = cp
		}
	}
	return op
}

// Steps implements Op.
func (op *ReduceScatterOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *ReduceScatterOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		b := op.c.bit(l, s)
		myBit := op.c.rank & (1 << b)
		keys := make([]int, 0, len(op.held[l])/2)
		for x := range op.held[l] {
			if x&(1<<b) != myBit {
				keys = append(keys, x)
			}
		}
		sortInts(keys)
		buf := make([]float64, 0, len(keys)*(hi-lo))
		for _, x := range keys {
			buf = append(buf, op.held[l][x]...)
			delete(op.held[l], x)
		}
		// buf is freshly assembled and never touched again: hand the
		// slice to the network instead of paying a transport copy.
		op.c.N.SendOwned(op.c.partner(b), tag(op.phase, s, l), buf)
	}
}

// RecvStep implements Op.
func (op *ReduceScatterOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		b := op.c.bit(l, s)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		kept := subsets(op.c.rank, op.c.futureBits(l, s))
		sz := hi - lo
		if len(msg.Data) != len(kept)*sz {
			panic(fmt.Sprintf("collective: ReduceScatter slice %d got %d words want %d", l, len(msg.Data), len(kept)*sz))
		}
		for i, x := range kept {
			dst := op.held[l][x]
			src := msg.Data[i*sz : (i+1)*sz]
			for k, v := range src {
				dst[k] += v
			}
		}
		words := len(msg.Data)
		msg.Release() // payload fully folded into held slices
		op.c.N.Compute(int64(words))
	}
}

// Result returns the node's own summed block (valid after Run).
func (op *ReduceScatterOp) Result() *matrix.Dense {
	out := matrix.New(op.rows, op.cols)
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		piece, ok := op.held[l][op.c.rank]
		if !ok {
			panic(fmt.Sprintf("collective: ReduceScatter missing own slice %d", l))
		}
		copy(out.Data[lo:hi], piece)
	}
	return out
}

// ReduceScatter runs an all-to-all reduction: blocks are indexed by
// destination position; every node returns the sum of the blocks
// destined for its own position.
func (c Comm) ReduceScatter(phase uint64, blocks []*matrix.Dense) *matrix.Dense {
	if c.d == 0 {
		return blocks[0]
	}
	op := c.NewReduceScatter(phase, blocks)
	Run(op)
	return op.Result()
}

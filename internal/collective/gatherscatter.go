package collective

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
)

// ScatterOp is a one-to-all personalized broadcast: the root holds one
// block per chain position and each node ends with its own block.
//
// One-port: binomial halving, t_s log q + t_w (q-1)M (Table 1).
// Multi-port: d rotated slices, t_s log q + t_w (q-1)M / log q.
type ScatterOp struct {
	c          Comm
	phase      uint64
	rel        int
	rows, cols int
	w          int
	held       []map[int][]float64 // per slice: relative dest rank -> slice words
	recvStep   []int
}

// NewScatter prepares a scatter. Every participant passes the piece
// shape; only the root passes blocks (indexed by position, length q).
func (c Comm) NewScatter(phase uint64, rootPos, rows, cols int, blocks []*matrix.Dense) *ScatterOp {
	rootRank := hypercube.Gray(rootPos)
	op := &ScatterOp{
		c: c, phase: phase, rel: c.rank ^ rootRank,
		rows: rows, cols: cols, w: rows * cols,
	}
	op.held = make([]map[int][]float64, c.g)
	for l := range op.held {
		op.held[l] = make(map[int][]float64)
	}
	if op.rel == 0 {
		if len(blocks) != c.q {
			panic(fmt.Sprintf("collective: Scatter root has %d blocks want %d", len(blocks), c.q))
		}
		for pos, b := range blocks {
			if b.Rows != rows || b.Cols != cols {
				panic(fmt.Sprintf("collective: Scatter block %d is %dx%d want %dx%d", pos, b.Rows, b.Cols, rows, cols))
			}
			xrel := hypercube.Gray(pos) ^ rootRank
			for l := 0; l < c.g; l++ {
				lo, hi := sliceBounds(op.w, c.g, l)
				op.held[l][xrel] = b.Data[lo:hi]
			}
		}
	}
	op.recvStep = make([]int, c.g)
	for l := range op.recvStep {
		op.recvStep[l] = relStepMax(op.rel, l, c.d)
	}
	return op
}

// relStepMax returns the largest rotated-order position among the set
// bits of rel (-1 if rel == 0): the step at which a binomial broadcast
// or scatter first reaches this node for slice l.
func relStepMax(rel, l, d int) int {
	step := -1
	for b := 0; b < d; b++ {
		if rel&(1<<b) != 0 {
			if s := (b - l + d) % d; s > step {
				step = s
			}
		}
	}
	return step
}

// relStepMin returns the smallest rotated-order position among the set
// bits of rel (d if rel == 0): the step at which a binomial gather or
// reduction sends from this node for slice l.
func relStepMin(rel, l, d int) int {
	step := d
	for b := 0; b < d; b++ {
		if rel&(1<<b) != 0 {
			if s := (b - l + d) % d; s < step {
				step = s
			}
		}
	}
	return step
}

// futureBits returns the chain bits slice l uses at steps s+1 .. d-1.
func (c Comm) futureBits(l, s int) []int {
	bits := make([]int, 0, c.d-s-1)
	for t := s + 1; t < c.d; t++ {
		bits = append(bits, c.bit(l, t))
	}
	return bits
}

// pastBits returns the chain bits slice l used at steps 0 .. s-1.
func (c Comm) pastBits(l, s int) []int {
	bits := make([]int, 0, s)
	for t := 0; t < s; t++ {
		bits = append(bits, c.bit(l, t))
	}
	return bits
}

// Steps implements Op.
func (op *ScatterOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *ScatterOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.recvStep[l] >= s {
			continue
		}
		b := op.c.bit(l, s)
		keys := make([]int, 0, len(op.held[l]))
		for x := range op.held[l] {
			if x&(1<<b) != 0 {
				keys = append(keys, x)
			}
		}
		sortInts(keys)
		buf := make([]float64, 0, len(keys)*(hi-lo))
		for _, x := range keys {
			buf = append(buf, op.held[l][x]...)
			delete(op.held[l], x)
		}
		// buf is freshly assembled and never touched again: hand the
		// slice to the network instead of paying a transport copy.
		op.c.N.SendOwned(op.c.partner(b), tag(op.phase, s, l), buf)
	}
}

// RecvStep implements Op.
func (op *ScatterOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.recvStep[l] != s {
			continue
		}
		b := op.c.bit(l, s)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		incoming := subsets(op.rel, op.c.futureBits(l, s))
		sz := hi - lo
		if len(msg.Data) != len(incoming)*sz {
			panic(fmt.Sprintf("collective: Scatter slice %d got %d words want %d", l, len(msg.Data), len(incoming)*sz))
		}
		for i, x := range incoming {
			op.held[l][x] = msg.Data[i*sz : (i+1)*sz]
		}
	}
}

// Result returns the node's own piece (valid after Run).
func (op *ScatterOp) Result() *matrix.Dense {
	out := matrix.New(op.rows, op.cols)
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		piece, ok := op.held[l][op.rel]
		if !ok {
			panic(fmt.Sprintf("collective: Scatter missing own slice %d", l))
		}
		copy(out.Data[lo:hi], piece)
	}
	return out
}

// Scatter runs a one-to-all personalized broadcast; blocks (root only)
// are indexed by chain position. Every node returns its own block.
func (c Comm) Scatter(phase uint64, rootPos, rows, cols int, blocks []*matrix.Dense) *matrix.Dense {
	if c.d == 0 {
		return blocks[0]
	}
	op := c.NewScatter(phase, rootPos, rows, cols, blocks)
	Run(op)
	return op.Result()
}

// GatherOp is the inverse of scatter: every node contributes one block
// and the root ends with all q blocks. Cost mirrors ScatterOp.
type GatherOp struct {
	c          Comm
	phase      uint64
	rel        int
	rootRank   int
	rows, cols int
	w          int
	held       []map[int][]float64 // per slice: relative origin rank -> slice words
	sendStep   []int
}

// NewGather prepares a gather of blk toward rootPos.
func (c Comm) NewGather(phase uint64, rootPos int, blk *matrix.Dense) *GatherOp {
	rootRank := hypercube.Gray(rootPos)
	op := &GatherOp{
		c: c, phase: phase, rel: c.rank ^ rootRank, rootRank: rootRank,
		rows: blk.Rows, cols: blk.Cols, w: blk.Rows * blk.Cols,
	}
	op.held = make([]map[int][]float64, c.g)
	op.sendStep = make([]int, c.g)
	for l := range op.held {
		lo, hi := sliceBounds(op.w, c.g, l)
		op.held[l] = map[int][]float64{op.rel: blk.Data[lo:hi]}
		op.sendStep[l] = relStepMin(op.rel, l, c.d)
	}
	return op
}

// Steps implements Op.
func (op *GatherOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *GatherOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.sendStep[l] != s {
			continue
		}
		b := op.c.bit(l, s)
		keys := make([]int, 0, len(op.held[l]))
		for x := range op.held[l] {
			keys = append(keys, x)
		}
		sortInts(keys)
		buf := make([]float64, 0, len(keys)*(hi-lo))
		for _, x := range keys {
			buf = append(buf, op.held[l][x]...)
		}
		op.held[l] = nil
		// buf is freshly assembled and never touched again: hand the
		// slice to the network instead of paying a transport copy.
		op.c.N.SendOwned(op.c.partner(b), tag(op.phase, s, l), buf)
	}
}

// RecvStep implements Op.
func (op *GatherOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi || op.sendStep[l] <= s {
			continue
		}
		b := op.c.bit(l, s)
		prel := op.rel ^ (1 << b)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		incoming := subsets(prel, op.c.pastBits(l, s))
		sz := hi - lo
		if len(msg.Data) != len(incoming)*sz {
			panic(fmt.Sprintf("collective: Gather slice %d got %d words want %d", l, len(msg.Data), len(incoming)*sz))
		}
		for i, x := range incoming {
			op.held[l][x] = msg.Data[i*sz : (i+1)*sz]
		}
	}
}

// Result returns the gathered blocks indexed by position on the root,
// nil elsewhere (valid after Run).
func (op *GatherOp) Result() []*matrix.Dense {
	if op.rel != 0 {
		return nil
	}
	out := make([]*matrix.Dense, op.c.q)
	for pos := range out {
		xrel := hypercube.Gray(pos) ^ op.rootRank
		blk := matrix.New(op.rows, op.cols)
		for l := 0; l < op.c.g; l++ {
			lo, hi := sliceBounds(op.w, op.c.g, l)
			if lo == hi {
				continue
			}
			piece, ok := op.held[l][xrel]
			if !ok {
				panic(fmt.Sprintf("collective: Gather missing piece pos=%d slice=%d", pos, l))
			}
			copy(blk.Data[lo:hi], piece)
		}
		out[pos] = blk
	}
	return out
}

// Gather collects every node's block at rootPos; the root returns the
// blocks indexed by position, all other nodes return nil.
func (c Comm) Gather(phase uint64, rootPos int, blk *matrix.Dense) []*matrix.Dense {
	if c.d == 0 {
		return []*matrix.Dense{blk}
	}
	op := c.NewGather(phase, rootPos, blk)
	Run(op)
	return op.Result()
}

package collective

import (
	"fmt"
	"testing"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// chainOf returns a full-machine chain (all cube dimensions).
func chainOf(p int) hypercube.Chain {
	d := hypercube.Log2(p)
	dims := make([]int, d)
	for i := range dims {
		dims[i] = i
	}
	return hypercube.NewChain(0, dims)
}

func newMach(p int, ports simnet.PortModel, ts, tw float64) *simnet.Machine {
	return simnet.NewMachine(simnet.Config{P: p, Ports: ports, Ts: ts, Tw: tw, Tc: 0})
}

// posBlock builds a recognizable block for a position.
func posBlock(rows, cols, pos, salt int) *matrix.Dense {
	b := matrix.New(rows, cols)
	for i := range b.Data {
		b.Data[i] = float64(pos*1000 + salt*100000 + i)
	}
	return b
}

var portModels = []simnet.PortModel{simnet.OnePort, simnet.MultiPort}

func TestBcastContent(t *testing.T) {
	for _, pm := range portModels {
		for _, q := range []int{1, 2, 4, 8, 16} {
			for root := 0; root < q; root += max(1, q/3) {
				m := newMach(q, pm, 1, 1)
				ch := chainOf(q)
				want := posBlock(3, 5, root, 1)
				m.Run(func(n *simnet.Node) {
					c := On(n, ch)
					var blk *matrix.Dense
					if c.Pos() == root {
						blk = want
					}
					got := c.Bcast(1, root, 3, 5, blk)
					if !matrix.Equal(got, want) {
						t.Errorf("%v q=%d root=%d pos=%d: bcast content wrong", pm, q, root, c.Pos())
					}
				})
			}
		}
	}
}

func TestScatterGatherContent(t *testing.T) {
	for _, pm := range portModels {
		for _, q := range []int{2, 4, 8} {
			for root := 0; root < q; root += max(1, q/2) {
				m := newMach(q, pm, 1, 1)
				ch := chainOf(q)
				blocks := make([]*matrix.Dense, q)
				for j := range blocks {
					blocks[j] = posBlock(2, 4, j, 2)
				}
				m.Run(func(n *simnet.Node) {
					c := On(n, ch)
					var in []*matrix.Dense
					if c.Pos() == root {
						in = blocks
					}
					mine := c.Scatter(2, root, 2, 4, in)
					if !matrix.Equal(mine, blocks[c.Pos()]) {
						t.Errorf("%v q=%d root=%d pos=%d: scatter wrong", pm, q, root, c.Pos())
					}
					// Round-trip: gather the scattered pieces back.
					back := c.Gather(3, root, mine)
					if c.Pos() == root {
						for j := range back {
							if !matrix.Equal(back[j], blocks[j]) {
								t.Errorf("%v q=%d: gather block %d wrong", pm, q, j)
							}
						}
					} else if back != nil {
						t.Errorf("non-root returned gather result")
					}
				})
			}
		}
	}
}

func TestAllGatherContent(t *testing.T) {
	for _, pm := range portModels {
		for _, q := range []int{1, 2, 4, 8, 16} {
			m := newMach(q, pm, 1, 1)
			ch := chainOf(q)
			m.Run(func(n *simnet.Node) {
				c := On(n, ch)
				all := c.AllGather(4, posBlock(3, 3, c.Pos(), 3))
				if len(all) != q {
					t.Errorf("allgather returned %d blocks", len(all))
				}
				for j := range all {
					if !matrix.Equal(all[j], posBlock(3, 3, j, 3)) {
						t.Errorf("%v q=%d pos=%d: allgather block %d wrong", pm, q, c.Pos(), j)
					}
				}
			})
		}
	}
}

func TestReduceContent(t *testing.T) {
	for _, pm := range portModels {
		for _, q := range []int{2, 4, 8} {
			for root := 0; root < q; root += max(1, q-1) {
				m := newMach(q, pm, 1, 1)
				ch := chainOf(q)
				want := matrix.New(2, 3)
				for j := 0; j < q; j++ {
					want.AddInto(posBlock(2, 3, j, 4))
				}
				m.Run(func(n *simnet.Node) {
					c := On(n, ch)
					got := c.Reduce(5, root, posBlock(2, 3, c.Pos(), 4))
					if c.Pos() == root {
						if matrix.MaxAbsDiff(got, want) > 1e-9 {
							t.Errorf("%v q=%d root=%d: reduce sum wrong", pm, q, root)
						}
					} else if got != nil {
						t.Errorf("non-root got reduce result")
					}
				})
			}
		}
	}
}

func TestReduceScatterContent(t *testing.T) {
	for _, pm := range portModels {
		for _, q := range []int{2, 4, 8} {
			m := newMach(q, pm, 1, 1)
			ch := chainOf(q)
			m.Run(func(n *simnet.Node) {
				c := On(n, ch)
				blocks := make([]*matrix.Dense, q)
				for j := range blocks {
					blocks[j] = posBlock(2, 2, 10*c.Pos()+j, 0)
				}
				got := c.ReduceScatter(6, blocks)
				want := matrix.New(2, 2)
				for o := 0; o < q; o++ {
					want.AddInto(posBlock(2, 2, 10*o+c.Pos(), 0))
				}
				if matrix.MaxAbsDiff(got, want) > 1e-9 {
					t.Errorf("%v q=%d pos=%d: reduce-scatter wrong", pm, q, c.Pos())
				}
			})
		}
	}
}

func TestAllToAllContent(t *testing.T) {
	for _, pm := range portModels {
		for _, q := range []int{2, 4, 8, 16} {
			m := newMach(q, pm, 1, 1)
			ch := chainOf(q)
			m.Run(func(n *simnet.Node) {
				c := On(n, ch)
				blocks := make([]*matrix.Dense, q)
				for j := range blocks {
					blocks[j] = posBlock(2, 2, 100*c.Pos()+j, 0)
				}
				got := c.AllToAll(7, blocks)
				for o := 0; o < q; o++ {
					want := posBlock(2, 2, 100*o+c.Pos(), 0)
					if !matrix.Equal(got[o], want) {
						t.Errorf("%v q=%d pos=%d: piece from %d wrong", pm, q, c.Pos(), o)
					}
				}
			})
		}
	}
}

// measure runs a collective with (ts=1,tw=0) and (ts=0,tw=1) and returns
// the elapsed times: the measured (a, b) cost coefficients.
func measure(t *testing.T, q int, pm simnet.PortModel, prog func(c Comm)) (a, b float64) {
	t.Helper()
	ch := chainOf(q)
	for i, cfg := range []struct{ ts, tw float64 }{{1, 0}, {0, 1}} {
		m := newMach(q, pm, cfg.ts, cfg.tw)
		rs := m.Run(func(n *simnet.Node) { prog(On(n, ch)) })
		if i == 0 {
			a = rs.Elapsed
		} else {
			b = rs.Elapsed
		}
	}
	return a, b
}

func approxEq(x, y float64) bool {
	d := x - y
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+y)
}

// Table 1 cost checks: each collective's measured (t_s, t_w)
// coefficients must match the paper's optimal expressions.
func TestTable1Costs(t *testing.T) {
	const q, M = 8, 96 // M divisible by log q so multi-port slices are even
	logq := 3.0
	cases := []struct {
		name  string
		pm    simnet.PortModel
		wantA float64
		wantB float64
		run   func(c Comm)
	}{
		{"Bcast/one-port", simnet.OnePort, logq, float64(M) * logq, func(c Comm) {
			var blk *matrix.Dense
			if c.Pos() == 0 {
				blk = posBlock(8, 12, 0, 0)
			}
			c.Bcast(1, 0, 8, 12, blk)
		}},
		{"Bcast/multi-port", simnet.MultiPort, logq, float64(M), func(c Comm) {
			var blk *matrix.Dense
			if c.Pos() == 0 {
				blk = posBlock(8, 12, 0, 0)
			}
			c.Bcast(1, 0, 8, 12, blk)
		}},
		{"Scatter/one-port", simnet.OnePort, logq, float64((q - 1) * M), func(c Comm) {
			var in []*matrix.Dense
			if c.Pos() == 0 {
				in = make([]*matrix.Dense, q)
				for j := range in {
					in[j] = posBlock(8, 12, j, 0)
				}
			}
			c.Scatter(1, 0, 8, 12, in)
		}},
		{"Scatter/multi-port", simnet.MultiPort, logq, float64((q-1)*M) / logq, func(c Comm) {
			var in []*matrix.Dense
			if c.Pos() == 0 {
				in = make([]*matrix.Dense, q)
				for j := range in {
					in[j] = posBlock(8, 12, j, 0)
				}
			}
			c.Scatter(1, 0, 8, 12, in)
		}},
		{"AllGather/one-port", simnet.OnePort, logq, float64((q - 1) * M), func(c Comm) {
			c.AllGather(1, posBlock(8, 12, c.Pos(), 0))
		}},
		{"AllGather/multi-port", simnet.MultiPort, logq, float64((q-1)*M) / logq, func(c Comm) {
			c.AllGather(1, posBlock(8, 12, c.Pos(), 0))
		}},
		{"Reduce/one-port", simnet.OnePort, logq, float64(M) * logq, func(c Comm) {
			c.Reduce(1, 0, posBlock(8, 12, c.Pos(), 0))
		}},
		{"Reduce/multi-port", simnet.MultiPort, logq, float64(M), func(c Comm) {
			c.Reduce(1, 0, posBlock(8, 12, c.Pos(), 0))
		}},
		{"ReduceScatter/one-port", simnet.OnePort, logq, float64((q - 1) * M), func(c Comm) {
			blocks := make([]*matrix.Dense, q)
			for j := range blocks {
				blocks[j] = posBlock(8, 12, j, c.Pos())
			}
			c.ReduceScatter(1, blocks)
		}},
		{"ReduceScatter/multi-port", simnet.MultiPort, logq, float64((q-1)*M) / logq, func(c Comm) {
			blocks := make([]*matrix.Dense, q)
			for j := range blocks {
				blocks[j] = posBlock(8, 12, j, c.Pos())
			}
			c.ReduceScatter(1, blocks)
		}},
		{"AllToAll/one-port", simnet.OnePort, logq, float64(q*M) * logq / 2, func(c Comm) {
			blocks := make([]*matrix.Dense, q)
			for j := range blocks {
				blocks[j] = posBlock(8, 12, j, c.Pos())
			}
			c.AllToAll(1, blocks)
		}},
		{"AllToAll/multi-port", simnet.MultiPort, logq, float64(q*M) / 2, func(c Comm) {
			blocks := make([]*matrix.Dense, q)
			for j := range blocks {
				blocks[j] = posBlock(8, 12, j, c.Pos())
			}
			c.AllToAll(1, blocks)
		}},
		{"Gather/one-port", simnet.OnePort, logq, float64((q - 1) * M), func(c Comm) {
			c.Gather(1, 0, posBlock(8, 12, c.Pos(), 0))
		}},
		{"Gather/multi-port", simnet.MultiPort, logq, float64((q-1)*M) / logq, func(c Comm) {
			c.Gather(1, 0, posBlock(8, 12, c.Pos(), 0))
		}},
	}
	for _, tc := range cases {
		a, b := measure(t, q, tc.pm, tc.run)
		if !approxEq(a, tc.wantA) || !approxEq(b, tc.wantB) {
			t.Errorf("%s: measured (a,b)=(%g,%g), Table 1 says (%g,%g)", tc.name, a, b, tc.wantA, tc.wantB)
		}
	}
}

// TestFusedOverlap checks that two collectives on disjoint grid
// dimensions overlap on a multi-port machine and serialize on a
// one-port machine — the paper's "the two broadcasts can occur in
// parallel".
func TestFusedOverlap(t *testing.T) {
	const q = 4
	p := q * q
	g := hypercube.NewGrid2D(p)
	blkFor := func(pos int) *matrix.Dense { return posBlock(4, 8, pos, 0) }
	run := func(pm simnet.PortModel, ts, tw float64) float64 {
		m := newMach(p, pm, ts, tw)
		rs := m.Run(func(n *simnet.Node) {
			i, j := g.Coords(n.ID)
			rowC := On(n, g.RowChain(i))
			colC := On(n, g.ColChain(j))
			opA := rowC.NewAllGather(1, blkFor(j))
			opB := colC.NewAllGather(2, blkFor(i))
			Run(opA, opB)
			ra, rb := opA.Result(), opB.Result()
			for x := 0; x < q; x++ {
				if !matrix.Equal(ra[x], blkFor(x)) || !matrix.Equal(rb[x], blkFor(x)) {
					t.Errorf("fused allgather content wrong at (%d,%d)", i, j)
				}
			}
		})
		return rs.Elapsed
	}
	const M = 32
	logq := 2.0
	// One-port: the two all-gathers serialize: b = 2*(q-1)*M.
	if b := run(simnet.OnePort, 0, 1); !approxEq(b, 2*float64((q-1)*M)) {
		t.Errorf("one-port fused b = %g, want %g", b, 2*float64((q-1)*M))
	}
	// Multi-port: they overlap fully: b = (q-1)*M/logq.
	if b := run(simnet.MultiPort, 0, 1); !approxEq(b, float64((q-1)*M)/logq) {
		t.Errorf("multi-port fused b = %g, want %g", b, float64((q-1)*M)/logq)
	}
}

// TestSmallMessageMultiPort exercises ragged/empty slices: messages
// smaller than log q words must still be delivered correctly.
func TestSmallMessageMultiPort(t *testing.T) {
	const q = 16 // d = 4 slices of a 2-word message: two slices empty
	m := newMach(q, simnet.MultiPort, 1, 1)
	ch := chainOf(q)
	m.Run(func(n *simnet.Node) {
		c := On(n, ch)
		all := c.AllGather(9, posBlock(1, 2, c.Pos(), 5))
		for j := range all {
			if !matrix.Equal(all[j], posBlock(1, 2, j, 5)) {
				t.Errorf("small-message allgather block %d wrong at pos %d", j, c.Pos())
			}
		}
	})
}

func TestCommAccessors(t *testing.T) {
	m := newMach(8, simnet.OnePort, 1, 1)
	ch := chainOf(8)
	m.Run(func(n *simnet.Node) {
		c := On(n, ch)
		if c.Q() != 8 {
			t.Errorf("Q = %d", c.Q())
		}
		if c.Rank() != hypercube.Gray(c.Pos()) {
			t.Errorf("rank/pos inconsistent")
		}
	})
}

func TestSubsetsSorted(t *testing.T) {
	got := subsets(0b100, []int{0, 1})
	want := []int{0b100, 0b101, 0b110, 0b111}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("subsets = %v, want %v", got, want)
	}
	if len(subsets(5, nil)) != 1 {
		t.Error("subsets with no bits should be singleton")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCollectiveValidationPanics(t *testing.T) {
	m := newMach(4, simnet.OnePort, 1, 1)
	ch := chainOf(4)
	mustPanic := func(name string, f func(c Comm)) {
		m.Run(func(n *simnet.Node) {
			if n.ID != 0 {
				return
			}
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f(On(n, ch))
		})
	}
	mustPanic("Bcast root without block", func(c Comm) {
		c.NewBcast(1, 0, 2, 2, nil)
	})
	mustPanic("Scatter wrong count", func(c Comm) {
		c.NewScatter(1, 0, 2, 2, []*matrix.Dense{posBlock(2, 2, 0, 0)})
	})
	mustPanic("Scatter wrong shape", func(c Comm) {
		blocks := []*matrix.Dense{posBlock(3, 3, 0, 0), posBlock(3, 3, 1, 0), posBlock(3, 3, 2, 0), posBlock(3, 3, 3, 0)}
		c.NewScatter(1, 0, 2, 2, blocks)
	})
	mustPanic("ReduceScatter wrong count", func(c Comm) {
		c.NewReduceScatter(1, []*matrix.Dense{posBlock(2, 2, 0, 0)})
	})
	mustPanic("ReduceScatter non-uniform", func(c Comm) {
		c.NewReduceScatter(1, []*matrix.Dense{posBlock(2, 2, 0, 0), posBlock(3, 3, 1, 0), posBlock(2, 2, 2, 0), posBlock(2, 2, 3, 0)})
	})
	mustPanic("AllToAll wrong count", func(c Comm) {
		c.NewAllToAll(1, []*matrix.Dense{posBlock(2, 2, 0, 0)})
	})
	mustPanic("checkUniform all nil", func(c Comm) {
		c.NewReduceScatter(1, make([]*matrix.Dense, 4))
	})
}

// Package collective implements the hypercube collective communication
// operations of the paper's Table 1 on subcube chains: one-to-all
// broadcast, one-to-all personalized broadcast (scatter) and its inverse
// (gather), all-to-all broadcast (all-gather), all-to-one reduction,
// all-to-all reduction (reduce-scatter), and all-to-all personalized
// communication.
//
// Every operation has two executions selected by the machine's port
// model:
//
//   - One-port: the classical spanning-binomial-tree / recursive
//     doubling algorithms, matching Table 1's one-port column.
//   - Multi-port: the message is split into d = log q slices and slice
//     l runs the same schedule over the chain's dimension order rotated
//     by l, so at every step all d ports carry a distinct slice. This
//     reproduces the t_w terms of Table 1's multi-port column (the
//     "log N trees concurrently" technique of Ho and Johnsson) whenever
//     the message has at least log q words.
//
// Operations are built as step machines (Op) so that two collectives on
// disjoint grid dimensions can be fused with Run(op1, op2): their steps
// interleave and, on a multi-port machine, overlap — the paper's "the
// two broadcasts can occur in parallel".
//
// Blocks are indexed by grid *position* (Gray-embedded); internally all
// schedules run in subcube rank space.
package collective

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Comm is one node's view of a chain: the node, the chain, and the
// node's rank/position on it.
type Comm struct {
	N  *simnet.Node
	Ch hypercube.Chain

	rank, pos int
	d, q      int
	g         int // slice count: 1 for one-port, max(d,1) for multi-port
}

// On binds a node to a chain it lies on.
func On(n *simnet.Node, ch hypercube.Chain) Comm {
	rank := ch.RankOf(n.ID)
	c := Comm{
		N: n, Ch: ch,
		rank: rank, pos: hypercube.GrayRank(rank),
		d: ch.Dim(), q: ch.Q(),
	}
	c.g = 1
	if n.Ports() == simnet.MultiPort && c.d > 1 {
		c.g = c.d
	}
	return c
}

// Pos returns the node's grid position on the chain.
func (c Comm) Pos() int { return c.pos }

// Rank returns the node's subcube rank on the chain.
func (c Comm) Rank() int { return c.rank }

// Q returns the chain length.
func (c Comm) Q() int { return c.q }

// check enforces the machine's simulated-time deadline at collective
// step granularity: every op calls it on entering a send step, so a
// collective whose node has run out of simulated-time budget fails with
// a typed ErrDeadline fault between steps even when the overrun came
// from compute (Send and Recv check again internally for the
// communication-bound case).
func (c Comm) check() { c.N.CheckDeadline() }

// bit returns the chain-local bit index used by slice l at step s:
// the rotated dimension order that lets all slices use distinct
// physical ports at every step.
func (c Comm) bit(l, s int) int { return (l + s) % c.d }

// partner returns the physical node across chain bit b.
func (c Comm) partner(b int) int {
	return c.Ch.NodeAtRank(c.rank ^ (1 << b))
}

// tag composes a message tag from the caller's phase id plus the
// collective-internal step and slice numbers. Algorithms must use
// distinct phase ids for collectives that could be in flight between
// the same pair of nodes at the same time.
func tag(phase uint64, step, slice int) uint64 {
	return phase<<16 | uint64(step)<<8 | uint64(slice)
}

// sliceBounds returns the [lo, hi) word range of slice l when a block
// of w words is cut into g nearly equal slices.
func sliceBounds(w, g, l int) (lo, hi int) {
	return l * w / g, (l + 1) * w / g
}

// subsets returns, in ascending order, every rank of the form
// base XOR (subset of the given chain bits).
func subsets(base int, bits []int) []int {
	out := make([]int, 0, 1<<len(bits))
	out = append(out, base)
	for _, b := range bits {
		for _, r := range out[:len(out):len(out)] {
			out = append(out, r^(1<<b))
		}
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	// insertion sort: these slices are short (<= chain length).
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Op is a collective compiled to a lockstep step machine. At each step
// an Op first issues all its sends, then completes all its receives
// (plus any local combining). Run drives one or more Ops together.
type Op interface {
	Steps() int
	SendStep(s int)
	RecvStep(s int)
}

// Run drives one or more collective step machines in lockstep. Fusing
// two collectives that live on disjoint grid dimensions makes their
// transfers overlap on a multi-port machine; on a one-port machine they
// serialize through the node's ports exactly as the paper charges.
func Run(ops ...Op) {
	steps := 0
	for _, op := range ops {
		if s := op.Steps(); s > steps {
			steps = s
		}
	}
	for s := 0; s < steps; s++ {
		for _, op := range ops {
			if s < op.Steps() {
				op.SendStep(s)
			}
		}
		for _, op := range ops {
			if s < op.Steps() {
				op.RecvStep(s)
			}
		}
	}
}

// checkUniform validates that all non-nil blocks share one shape and
// returns it.
func checkUniform(op string, blocks []*matrix.Dense) (rows, cols int) {
	rows, cols = -1, -1
	for _, b := range blocks {
		if b == nil {
			continue
		}
		if rows == -1 {
			rows, cols = b.Rows, b.Cols
		} else if b.Rows != rows || b.Cols != cols {
			panic(fmt.Sprintf("collective: %s blocks not uniform: %dx%d vs %dx%d", op, b.Rows, b.Cols, rows, cols))
		}
	}
	if rows == -1 {
		panic(fmt.Sprintf("collective: %s received no blocks", op))
	}
	return rows, cols
}

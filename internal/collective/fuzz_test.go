package collective

import (
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// The fuzz targets drive the collectives over arbitrary payload shapes
// and chain lengths on both port models: whatever the block geometry,
// every node must end with exactly the blocks the pattern promises.
// Multi-port slicing is the interesting surface — blocks with fewer
// words than log q force empty slices at some steps.

func fuzzPorts(b uint8) simnet.PortModel {
	if b%2 == 0 {
		return simnet.OnePort
	}
	return simnet.MultiPort
}

func FuzzAllGatherShapes(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(3), uint8(1), int64(7))
	f.Add(uint8(3), uint8(1), uint8(1), uint8(0), int64(1)) // 1x1 blocks on q=8: slices go empty
	f.Fuzz(func(t *testing.T, dB, rB, cB, pmB uint8, seed int64) {
		q := 1 << (int(dB) % 4)
		rows, cols := 1+int(rB)%5, 1+int(cB)%7
		m := newMach(q, fuzzPorts(pmB), 1, 1)
		ch := chainOf(q)
		m.Run(func(n *simnet.Node) {
			c := On(n, ch)
			all := c.AllGather(1, matrix.Random(rows, cols, seed+int64(c.Pos())))
			if len(all) != q {
				t.Errorf("pos %d: got %d blocks, want %d", c.Pos(), len(all), q)
				return
			}
			for j := range all {
				if !matrix.Equal(all[j], matrix.Random(rows, cols, seed+int64(j))) {
					t.Errorf("pos %d: block %d corrupted", c.Pos(), j)
				}
			}
		})
	})
}

func FuzzAllToAllShapes(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(4), uint8(1), int64(11))
	f.Fuzz(func(t *testing.T, dB, rB, cB, pmB uint8, seed int64) {
		q := 1 << (int(dB) % 4)
		rows, cols := 1+int(rB)%4, 1+int(cB)%6
		// blockFor(src, dst): the block src sends to dst, reconstructible
		// at the receiver for verification.
		blockFor := func(src, dst int) *matrix.Dense {
			return matrix.Random(rows, cols, seed+int64(src*64+dst))
		}
		m := newMach(q, fuzzPorts(pmB), 1, 1)
		ch := chainOf(q)
		m.Run(func(n *simnet.Node) {
			c := On(n, ch)
			out := make([]*matrix.Dense, q)
			for dst := range out {
				out[dst] = blockFor(c.Pos(), dst)
			}
			in := c.AllToAll(1, out)
			for src := range in {
				if !matrix.Equal(in[src], blockFor(src, c.Pos())) {
					t.Errorf("pos %d: block from %d corrupted", c.Pos(), src)
				}
			}
		})
	})
}

func FuzzReduceShapes(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(2), uint8(0), uint8(1), int64(5))
	f.Fuzz(func(t *testing.T, dB, rB, cB, rootB, pmB uint8, seed int64) {
		q := 1 << (1 + int(dB)%3)
		rows, cols := 1+int(rB)%4, 1+int(cB)%5
		root := int(rootB) % q
		want := matrix.New(rows, cols)
		for j := 0; j < q; j++ {
			want.AddInto(matrix.Random(rows, cols, seed+int64(j)))
		}
		m := newMach(q, fuzzPorts(pmB), 1, 1)
		ch := chainOf(q)
		m.Run(func(n *simnet.Node) {
			c := On(n, ch)
			got := c.Reduce(1, root, matrix.Random(rows, cols, seed+int64(c.Pos())))
			if c.Pos() == root {
				if matrix.MaxAbsDiff(got, want) > 1e-9 {
					t.Errorf("root %d: reduced sum wrong", root)
				}
			} else if got != nil {
				t.Errorf("pos %d: non-root received a reduction result", c.Pos())
			}
		})
	})
}

func FuzzReduceScatterShapes(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3), uint8(1), int64(9))
	f.Fuzz(func(t *testing.T, dB, rB, cB, pmB uint8, seed int64) {
		q := 1 << (1 + int(dB)%3)
		rows, cols := 1+int(rB)%4, 1+int(cB)%5
		// contribFor(src, slot): src's contribution to slot's result.
		contribFor := func(src, slot int) *matrix.Dense {
			return matrix.Random(rows, cols, seed+int64(src*64+slot))
		}
		m := newMach(q, fuzzPorts(pmB), 1, 1)
		ch := chainOf(q)
		m.Run(func(n *simnet.Node) {
			c := On(n, ch)
			blocks := make([]*matrix.Dense, q)
			for slot := range blocks {
				blocks[slot] = contribFor(c.Pos(), slot)
			}
			got := c.ReduceScatter(1, blocks)
			want := matrix.New(rows, cols)
			for src := 0; src < q; src++ {
				want.AddInto(contribFor(src, c.Pos()))
			}
			if matrix.MaxAbsDiff(got, want) > 1e-9 {
				t.Errorf("pos %d: reduce-scatter slot wrong", c.Pos())
			}
		})
	})
}

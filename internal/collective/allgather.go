package collective

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
)

// AllGatherOp is an all-to-all broadcast along a chain: every node
// contributes one block and every node ends with all q blocks.
//
// One-port: recursive doubling, t_s log q + t_w (q-1)M (Table 1).
// Multi-port: d rotated slices, t_s log q + t_w (q-1)M / log q.
type AllGatherOp struct {
	c          Comm
	phase      uint64
	rows, cols int
	w          int
	held       []map[int][]float64 // per slice: absolute rank -> slice words
}

// NewAllGather prepares an all-gather of blk.
func (c Comm) NewAllGather(phase uint64, blk *matrix.Dense) *AllGatherOp {
	op := &AllGatherOp{
		c: c, phase: phase,
		rows: blk.Rows, cols: blk.Cols, w: blk.Rows * blk.Cols,
	}
	op.held = make([]map[int][]float64, c.g)
	for l := range op.held {
		lo, hi := sliceBounds(op.w, c.g, l)
		op.held[l] = map[int][]float64{c.rank: blk.Data[lo:hi]}
	}
	return op
}

// Steps implements Op.
func (op *AllGatherOp) Steps() int { return op.c.d }

// SendStep implements Op.
func (op *AllGatherOp) SendStep(s int) {
	op.c.check()
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		b := op.c.bit(l, s)
		keys := make([]int, 0, len(op.held[l]))
		for r := range op.held[l] {
			keys = append(keys, r)
		}
		sortInts(keys)
		buf := make([]float64, 0, len(keys)*(hi-lo))
		for _, r := range keys {
			buf = append(buf, op.held[l][r]...)
		}
		// buf is freshly assembled and never touched again: hand the
		// slice to the network instead of paying a transport copy.
		op.c.N.SendOwned(op.c.partner(b), tag(op.phase, s, l), buf)
	}
}

// RecvStep implements Op.
func (op *AllGatherOp) RecvStep(s int) {
	for l := 0; l < op.c.g; l++ {
		lo, hi := sliceBounds(op.w, op.c.g, l)
		if lo == hi {
			continue
		}
		b := op.c.bit(l, s)
		msg := op.c.N.Recv(op.c.partner(b), tag(op.phase, s, l))
		incoming := subsets(op.c.rank^(1<<b), op.c.pastBits(l, s))
		sz := hi - lo
		if len(msg.Data) != len(incoming)*sz {
			panic(fmt.Sprintf("collective: AllGather slice %d got %d words want %d", l, len(msg.Data), len(incoming)*sz))
		}
		for i, r := range incoming {
			op.held[l][r] = msg.Data[i*sz : (i+1)*sz]
		}
	}
}

// Result returns all q blocks indexed by chain position (valid after
// Run). The blocks are carved from one batch allocation.
func (op *AllGatherOp) Result() []*matrix.Dense {
	out := matrix.NewBatch(op.c.q, op.rows, op.cols)
	for pos, blk := range out {
		r := hypercube.Gray(pos)
		for l := 0; l < op.c.g; l++ {
			lo, hi := sliceBounds(op.w, op.c.g, l)
			if lo == hi {
				continue
			}
			piece, ok := op.held[l][r]
			if !ok {
				panic(fmt.Sprintf("collective: AllGather missing piece pos=%d slice=%d", pos, l))
			}
			copy(blk.Data[lo:hi], piece)
		}
	}
	return out
}

// AllGather runs an all-to-all broadcast and returns the q blocks
// indexed by chain position on every node.
func (c Comm) AllGather(phase uint64, blk *matrix.Dense) []*matrix.Dense {
	if c.d == 0 {
		return []*matrix.Dense{blk}
	}
	op := c.NewAllGather(phase, blk)
	Run(op)
	return op.Result()
}

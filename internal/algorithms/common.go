// Package algorithms implements the previously published distributed
// matrix-multiplication algorithms the paper compares against (its
// Section 3): Simple, Cannon, Ho-Johnsson-Edelman, Berntsen, and DNS.
// Each runs as an SPMD program on a simulated hypercube (internal/simnet)
// and returns the assembled product together with the run statistics.
//
// Every algorithm here — and the paper's own algorithms in
// internal/core — shares the same contract:
//
//	C, stats, err := algorithms.Cannon(m, A, B)
//
// where the initial distribution of A and B is materialized for free
// (the paper assumes the operands already distributed), the algorithm's
// communication and computation are charged to the simulated clock, and
// C is collected for free afterwards and verified by the caller.
package algorithms

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// CheckSquareOperands validates that A and B are n x n with equal n.
func CheckSquareOperands(A, B *matrix.Dense) (int, error) {
	if A.Rows != A.Cols || B.Rows != B.Cols || A.Rows != B.Rows {
		return 0, fmt.Errorf("algorithms: operands must be equal square matrices, got %dx%d and %dx%d",
			A.Rows, A.Cols, B.Rows, B.Cols)
	}
	return A.Rows, nil
}

// Grid2DFor returns the 2-D embedding for machine m, checking that p is
// an even power of two and that q divides n.
func Grid2DFor(m *simnet.Machine, n int) (hypercube.Grid2D, error) {
	p := m.P()
	d := hypercube.Log2(p)
	if d%2 != 0 {
		return hypercube.Grid2D{}, fmt.Errorf("algorithms: p=%d is not a perfect square power of two", p)
	}
	g := hypercube.NewGrid2D(p)
	if n%g.Q != 0 {
		return hypercube.Grid2D{}, fmt.Errorf("algorithms: n=%d not divisible by sqrt(p)=%d", n, g.Q)
	}
	return g, nil
}

// Grid3DFor returns the 3-D embedding for machine m, checking that p is
// a power of eight and that q^2 divides n (the finest partition any of
// the 3-D algorithms uses).
func Grid3DFor(m *simnet.Machine, n int, needQ2 bool) (hypercube.Grid3D, error) {
	p := m.P()
	d := hypercube.Log2(p)
	if d%3 != 0 {
		return hypercube.Grid3D{}, fmt.Errorf("algorithms: p=%d is not a perfect cube power of two", p)
	}
	g := hypercube.NewGrid3D(p)
	div := g.Q
	if needQ2 {
		div = g.Q * g.Q
	}
	if n%div != 0 {
		return hypercube.Grid3D{}, fmt.Errorf("algorithms: n=%d not divisible by %d (cbrt(p)=%d)", n, div, g.Q)
	}
	return g, nil
}

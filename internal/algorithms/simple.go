package algorithms

import (
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Simple is the paper's Algorithm Simple (Section 3.1): on a
// sqrt(p) x sqrt(p) virtual mesh with A and B block-partitioned, every
// mesh row all-to-all broadcasts its A blocks and every mesh column its
// B blocks, after which each processor owns a full block row of A and
// block column of B and multiplies locally.
//
// Communication: two all-to-all broadcasts of n^2/p-word blocks among
// sqrt(p) processors. On a multi-port hypercube the two phases overlap
// (they use disjoint grid dimensions); on a one-port machine they
// serialize — both cases fall out of running the phases fused.
// The price is space: each node ends up holding 2 n^2/sqrt(p) words.
func Simple(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := Grid2DFor(m, n)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q

	// Initial distribution (free): p_{i,j} holds A_ij and B_ij.
	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			id := g.Node(i, j)
			aIn[id] = A.GridBlock(q, q, i, j)
			bIn[id] = B.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := g.Coords(nd.ID)
		rowC := collective.On(nd, g.RowChain(i))
		colC := collective.On(nd, g.ColChain(j))

		// Phase 1+2 fused: row-wise all-gather of A, column-wise
		// all-gather of B.
		agA := rowC.NewAllGather(1, aIn[nd.ID])
		agB := colC.NewAllGather(2, bIn[nd.ID])
		collective.Run(agA, agB)
		arow, bcol := agA.Result(), agB.Result()

		blk := n / q
		held := 0
		for k := 0; k < q; k++ {
			held += arow[k].Words() + bcol[k].Words()
		}
		nd.NoteWords(held + blk*blk)

		// Local compute: C_ij = sum_k A_ik * B_kj.
		c := matrix.New(blk, blk)
		for k := 0; k < q; k++ {
			nd.MulAdd(c, arow[k], bcol[k])
		}
		out[nd.ID] = c
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			C.SetGridBlock(q, q, i, j, out[g.Node(i, j)])
		}
	}
	return C, stats, nil
}

package algorithms

import (
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func torusM(p int, pm simnet.PortModel, ts, tw float64) *simnet.Machine {
	return simnet.NewMachine(simnet.Config{P: p, Ports: pm, Ts: ts, Tw: tw, Topology: simnet.Torus2D})
}

func TestCannonTorusCorrect(t *testing.T) {
	cases := []struct{ p, n int }{
		{4, 8}, {16, 16}, {64, 32},
		{9, 9}, {25, 20}, // non-power-of-two tori, impossible on the hypercube
	}
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range cases {
			A := matrix.Random(c.n, c.n, int64(c.p))
			B := matrix.Random(c.n, c.n, int64(c.p+1))
			C, _, err := CannonTorus(torusM(c.p, pm, 10, 1), A, B)
			if err != nil {
				t.Fatalf("p=%d n=%d %v: %v", c.p, c.n, pm, err)
			}
			if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
				t.Fatalf("p=%d n=%d %v: off by %g", c.p, c.n, pm, d)
			}
		}
	}
}

func TestCannonTorusRejectsHypercubeMachine(t *testing.T) {
	A := matrix.New(8, 8)
	if _, _, err := CannonTorus(newM(16, simnet.OnePort), A, A); err == nil {
		t.Error("accepted a hypercube machine")
	}
	if _, _, err := CannonTorus(torusM(16, simnet.OnePort, 1, 1), matrix.New(6, 6), matrix.New(6, 6)); err == nil {
		t.Error("accepted n not divisible by q")
	}
}

// TestShiftPhaseEqualAcrossTopologies reproduces the paper's Section
// 3.2 sentence: Cannon's shift-multiply-add phase costs the same on a
// 2-D torus as on a hypercube (rings are physical neighbors on both).
// Measured: total time minus the skew phase must agree exactly. We
// isolate the shift phase by choosing operands already aligned (i=0 or
// j=0 skews are free only for the top row/column; instead compare total
// times and subtract the analytically known skew terms).
func TestShiftPhaseEqualAcrossTopologies(t *testing.T) {
	const p, n = 16, 16
	const ts, tw = 5.0, 1.0
	q := 4
	blkWords := float64(n * n / p)
	A := matrix.Random(n, n, 1)
	B := matrix.Random(n, n, 2)

	_, hyper, err := Cannon(simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: ts, Tw: tw}), A, B)
	if err != nil {
		t.Fatal(err)
	}
	_, torus, err := CannonTorus(torusM(p, simnet.OnePort, ts, tw), A, B)
	if err != nil {
		t.Fatal(err)
	}

	// Shift phase (identical on both): 2(q-1) transfers of blk words.
	shift := 2 * float64(q-1) * (ts + tw*blkWords)
	// Skew worst cases: hypercube <= 2 log q hops; torus <= 2*(q/2).
	skewHyper := 2 * 2 * (ts + tw*blkWords)            // 2 transfers x log q hops
	skewTorus := 2 * float64(q/2) * (ts + tw*blkWords) // wrap-shortest

	if got, want := hyper.Elapsed, shift+skewHyper; got != want {
		t.Errorf("hypercube Cannon elapsed = %g, want shift+skew = %g", got, want)
	}
	if got, want := torus.Elapsed, shift+skewTorus; got != want {
		t.Errorf("torus Cannon elapsed = %g, want shift+skew = %g", got, want)
	}
	// The difference is exactly the skew difference: the shift phase is
	// topology-independent, as the paper states.
	if (torus.Elapsed - hyper.Elapsed) != (skewTorus - skewHyper) {
		t.Errorf("shift phases differ across topologies: torus %g vs hypercube %g",
			torus.Elapsed-skewTorus, hyper.Elapsed-skewHyper)
	}
}

func TestTorusMultiPortOverlap(t *testing.T) {
	// The A and B shifts use x and y links; a multi-port torus node
	// overlaps them, halving the shift phase like the hypercube.
	const p, n = 16, 16
	A := matrix.Random(n, n, 3)
	B := matrix.Random(n, n, 4)
	_, one, err := CannonTorus(torusM(p, simnet.OnePort, 0, 1), A, B)
	if err != nil {
		t.Fatal(err)
	}
	_, multi, err := CannonTorus(torusM(p, simnet.MultiPort, 0, 1), A, B)
	if err != nil {
		t.Fatal(err)
	}
	// q=4, 16-word blocks: one-port = skew 2x2 hops x 16 + shift
	// 2x3x16 = 64+96 = 160; multi-port = skew overlapped and pipelined
	// (16) + shift overlapped (48) = 64.
	if one.Elapsed != 160 {
		t.Errorf("one-port torus elapsed = %g, want 160", one.Elapsed)
	}
	if multi.Elapsed != 64 {
		t.Errorf("multi-port torus elapsed = %g, want 64", multi.Elapsed)
	}
}

package algorithms

import (
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func TestDNSCannonCorrect(t *testing.T) {
	cases := []struct{ p, s, n int }{
		{32, 8, 16},  // 2x2x2 supernodes of 2x2 meshes
		{32, 8, 32},  // larger blocks
		{128, 8, 32}, // 2x2x2 supernodes of 4x4 meshes
		{512, 8, 32}, // 2x2x2 supernodes of 8x8 meshes
		{8, 8, 8},    // degenerate r=1: pure DNS
		{4, 1, 8},    // degenerate s=1: pure Cannon
	}
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range cases {
			A := matrix.Random(c.n, c.n, int64(c.p+c.n))
			B := matrix.Random(c.n, c.n, int64(c.p+c.n+1))
			m := newM(c.p, pm)
			C, stats, err := DNSCannon(m, A, B, c.s)
			if err != nil {
				t.Fatalf("p=%d s=%d n=%d %v: %v", c.p, c.s, c.n, pm, err)
			}
			if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
				t.Fatalf("p=%d s=%d n=%d %v: off by %g", c.p, c.s, c.n, pm, d)
			}
			if c.p > 1 && stats.Elapsed <= 0 {
				t.Error("no time elapsed")
			}
		}
	}
}

// TestDNSCannonSavesSpace: the point of the combination (Section 3.5)
// is space: aggregate storage scales with cbrt(s), not cbrt(p).
func TestDNSCannonSavesSpace(t *testing.T) {
	const n = 32
	A := matrix.Random(n, n, 1)
	B := matrix.Random(n, n, 2)
	_, dns, err := DNS(newM(512, simnet.OnePort), A, B)
	if err != nil {
		t.Fatal(err)
	}
	_, combo, err := DNSCannon(newM(512, simnet.OnePort), A, B, 8)
	if err != nil {
		t.Fatal(err)
	}
	if combo.TotalPeak >= dns.TotalPeak {
		t.Errorf("combination space %d not below DNS %d", combo.TotalPeak, dns.TotalPeak)
	}
}

// TestDNSCannonDominatedBy3DAll supports the paper's argument for not
// presenting the combination: the new algorithms beat it. Compare
// measured communication times at a point where both run.
func TestDNSCannonDominatedBy3DAll(t *testing.T) {
	const p, n = 512, 64
	A := matrix.Random(n, n, 3)
	B := matrix.Random(n, n, 4)
	mc := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 150, Tw: 3})
	_, combo, err := DNSCannon(mc, A, B, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = combo
	// 3D All measured on the same machine/problem (via its package
	// would be an import cycle; compare against DNS and Cannon instead,
	// both of which the combination should sit between).
	mdns := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 150, Tw: 3})
	_, dns, err := DNS(mdns, A, B)
	if err != nil {
		t.Fatal(err)
	}
	if combo.Elapsed >= dns.Elapsed {
		t.Errorf("combination (%g) not below plain DNS (%g)", combo.Elapsed, dns.Elapsed)
	}
}

func TestDNSCannonRejectsBadShapes(t *testing.T) {
	A := matrix.New(16, 16)
	if _, _, err := DNSCannon(newM(32, simnet.OnePort), A, A, 16); err == nil {
		t.Error("accepted non-cube s")
	}
	if _, _, err := DNSCannon(newM(64, simnet.OnePort), A, A, 8); err == nil {
		t.Error("accepted r not a square (64/8=8)")
	}
	if _, _, err := DNSCannon(newM(32, simnet.OnePort), A, A, 5); err == nil {
		t.Error("accepted s not dividing p")
	}
	if _, _, err := DNSCannon(newM(32, simnet.OnePort), matrix.New(6, 6), matrix.New(6, 6), 8); err == nil {
		t.Error("accepted bad divisibility")
	}
}

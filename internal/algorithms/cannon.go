package algorithms

import (
	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Cannon is Cannon's algorithm (Section 3.2) on a sqrt(p) x sqrt(p)
// virtual mesh embedded in the hypercube.
//
// Phase 1 skews the operands into alignment: A_ij moves to
// p_{i,(j-i) mod q} and B_ij to p_{(i-j) mod q, j}, so p_{i,j} holds
// A_{i,i+j} and B_{i+j,j} (the paper's prose states the opposite shift
// direction, which does not align the inner indices; we implement the
// standard correct skew, which has identical cost). Each skew transfer
// is routed e-cube, at most log sqrt(p) hops. Phase 2 is sqrt(p)
// shift-multiply-add steps around the Gray-code rings. Cannon's
// advantage is constant storage: three blocks per node.
func Cannon(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := Grid2DFor(m, n)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			id := g.Node(i, j)
			aIn[id] = A.GridBlock(q, q, i, j)
			bIn[id] = B.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := g.Coords(nd.ID)
		out[nd.ID] = CannonRun(nd, g.RowChain(i), g.ColChain(j), i, j, q, aIn[nd.ID], bIn[nd.ID], 1)
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			C.SetGridBlock(q, q, i, j, out[g.Node(i, j)])
		}
	}
	return C, stats, nil
}

// CannonRun executes Cannon's algorithm from the point of view of the
// node at mesh position (i, j) on a q x q grid whose rows and columns
// are the given chains. It returns the node's C block. Blocks may be
// rectangular (Berntsen reuses this on outer-product slabs, and the
// supernode combinations in internal/core call it for their inner
// products); the inner dimensions of a and b must agree after
// alignment, i.e. a is (r x s) and b is (s x c) for every block.
// The phase parameter namespaces the message tags.
func CannonRun(nd *simnet.Node, rowCh, colCh hypercube.Chain, i, j, q int, a, b *matrix.Dense, phase uint64) *matrix.Dense {
	tg := func(step, kind int) uint64 { return phase<<20 | uint64(step)<<4 | uint64(kind) }

	// Phase 1: skew. A_ij -> p_{i,(j-i) mod q}; B_ij -> p_{(i-j) mod q, j}.
	// The skewed-away blocks are never read again on this node, so the
	// sends transfer ownership instead of copying.
	if q > 1 {
		nd.SendMOwned(rowCh.NodeAt(((j-i)%q+q)%q), tg(0, 0), a)
		nd.SendMOwned(colCh.NodeAt(((i-j)%q+q)%q), tg(0, 1), b)
		a = nd.RecvM(rowCh.NodeAt((j+i)%q), tg(0, 0))
		b = nd.RecvM(colCh.NodeAt((i+j)%q), tg(0, 1))
	}

	// Phase 2: sqrt(p)-step shift-multiply-add around the rings.
	c := matrix.New(a.Rows, b.Cols)
	nd.NoteWords(a.Words() + b.Words() + c.Words())
	for t := 0; t < q; t++ {
		nd.MulAdd(c, a, b)
		if t == q-1 {
			break
		}
		// Shift A one position left along the row ring and B one
		// position up along the column ring. On a multi-port machine
		// the two transfers overlap (row and column dimensions are
		// disjoint); on a one-port machine they serialize. Each block
		// is immediately replaced by the incoming one, so the shifts
		// relay the payload without copying.
		nd.SendMOwned(rowCh.NodeAt(((j-1)%q+q)%q), tg(t+1, 0), a)
		nd.SendMOwned(colCh.NodeAt(((i-1)%q+q)%q), tg(t+1, 1), b)
		a = nd.RecvM(rowCh.NodeAt((j+1)%q), tg(t+1, 0))
		b = nd.RecvM(colCh.NodeAt((i+1)%q), tg(t+1, 1))
	}
	return c
}

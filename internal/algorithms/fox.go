package algorithms

import (
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Fox is the Fox-Otto-Hey broadcast-multiply-roll algorithm (the
// paper's reference [4], "Matrix algorithms on a hypercube I"),
// included as an additional baseline beyond the paper's Table 2. On a
// sqrt(p) x sqrt(p) mesh with the natural block distribution, step t
// has each row broadcast its diagonal-offset block A_{i,(i+t) mod q}
// across the row, every processor multiply it with its current B block,
// and B roll one position up its column ring.
//
// Against Cannon it trades the one-time skew for a one-to-all broadcast
// in every step, so its start-up term is Theta(sqrt(p) log sqrt(p)) —
// strictly worse on hypercubes, which is why the paper's comparison
// set omits it; it is here for completeness of the historical lineage.
func Fox(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := Grid2DFor(m, n)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q
	blk := n / q

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			id := g.Node(i, j)
			aIn[id] = A.GridBlock(q, q, i, j)
			bIn[id] = B.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := g.Coords(nd.ID)
		rowC := collective.On(nd, g.RowChain(i))
		colCh := g.ColChain(j)

		a, b := aIn[nd.ID], bIn[nd.ID]
		c := matrix.New(blk, blk)
		nd.NoteWords(3*blk*blk + blk*blk)
		for t := 0; t < q; t++ {
			// Broadcast A_{i,(i+t) mod q} across row i.
			root := (i + t) % q
			var mine *matrix.Dense
			if j == root {
				mine = a
			}
			abc := rowC.Bcast(uint64(1000+t), root, blk, blk, mine)
			nd.MulAdd(c, abc, b)
			if t == q-1 {
				break
			}
			// Roll B one position up the column ring; b is immediately
			// replaced by the incoming block, so the send relays the
			// payload without copying.
			nd.SendMOwned(colCh.NodeAt(((i-1)%q+q)%q), uint64(2000+t), b)
			b = nd.RecvM(colCh.NodeAt((i+1)%q), uint64(2000+t))
		}
		out[nd.ID] = c
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			C.SetGridBlock(q, q, i, j, out[g.Node(i, j)])
		}
	}
	return C, stats, nil
}

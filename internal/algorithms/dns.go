package algorithms

import (
	"hypermm/internal/collective"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// DNS is the generalized Dekel-Nassimi-Sahni algorithm (Section 3.5) on
// a cbrt(p)^3 virtual grid, usable for p <= n^3. A and B start
// block-partitioned on the z=0 plane. Phase 1 lifts A_ij to p_{i,j,j}
// and B_ij to p_{i,j,i} (point-to-point along z; the two transfers both
// use z dimensions, so they do not overlap even on a multi-port machine
// — as the paper observes). Phase 2 broadcasts A along y and B along x
// (overlapping on multi-port). Every processor multiplies A_ik * B_kj,
// and phase 3 reduces along z back to the z=0 plane.
func DNS(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := Grid3DFor(m, n, false)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q
	blk := n / q

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			id := g.Node(i, j, 0)
			aIn[id] = A.GridBlock(q, q, i, j)
			bIn[id] = B.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j, k := g.Coords(nd.ID)

		// Phase 1: point-to-point lifts along z.
		if k == 0 {
			nd.SendM(g.Node(i, j, j), 1, aIn[nd.ID])
			nd.SendM(g.Node(i, j, i), 2, bIn[nd.ID])
		}
		var aRoot, bRoot *matrix.Dense
		if k == j {
			aRoot = nd.RecvM(g.Node(i, j, 0), 1)
		}
		if k == i {
			bRoot = nd.RecvM(g.Node(i, j, 0), 2)
		}

		// Phase 2: A broadcast along y from p_{i,k,k}; B along x from
		// p_{k,j,k}. Fused so a multi-port machine overlaps them.
		opA := collective.On(nd, g.YChain(i, k)).NewBcast(3, k, blk, blk, aRoot)
		opB := collective.On(nd, g.XChain(j, k)).NewBcast(4, k, blk, blk, bRoot)
		collective.Run(opA, opB)
		a, b := opA.Result(), opB.Result() // A_{ik}, B_{kj}

		nd.NoteWords(2 * a.Words())

		// Multiply and phase 3: reduce along z to the z=0 plane.
		i3 := nd.Mul(a, b)
		c := collective.On(nd, g.ZChain(i, j)).Reduce(5, 0, i3)
		if k == 0 {
			out[nd.ID] = c
		}
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			C.SetGridBlock(q, q, i, j, out[g.Node(i, j, 0)])
		}
	}
	return C, stats, nil
}

package algorithms

import (
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Transpose2D transposes a matrix distributed block-wise over the
// sqrt(p) x sqrt(p) mesh (the paper's Figure 1 layout): node p_{i,j}
// sends its transposed block to p_{j,i}. This is the "first form the
// transpose of matrix B" preprocessing step the paper mentions in
// Section 4.1.1 as the obvious fix for mismatched initial
// distributions, priced here: one point-to-point transfer of n^2/p
// words per node over at most log p hops (the mirror node differs in
// up to all address bits).
func Transpose2D(m *simnet.Machine, X *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(X, X)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g, err := Grid2DFor(m, n)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g.Q

	in := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			in[g.Node(i, j)] = X.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := g.Coords(nd.ID)
		nd.SendM(g.Node(j, i), 1, in[nd.ID].Transpose())
		out[nd.ID] = nd.RecvM(g.Node(j, i), 1)
	})
	if err != nil {
		return nil, stats, err
	}

	T := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			T.SetGridBlock(q, q, i, j, out[g.Node(i, j)])
		}
	}
	return T, stats, nil
}

package algorithms

import (
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Algo is the common algorithm signature under test.
type Algo func(*simnet.Machine, *matrix.Dense, *matrix.Dense) (*matrix.Dense, simnet.RunStats, error)

func newM(p int, pm simnet.PortModel) *simnet.Machine {
	return simnet.NewMachine(simnet.Config{P: p, Ports: pm, Ts: 10, Tw: 1, Tc: 0.1})
}

func checkProduct(t *testing.T, name string, alg Algo, p, n int, pm simnet.PortModel) simnet.RunStats {
	t.Helper()
	A := matrix.Random(n, n, int64(n)+1)
	B := matrix.Random(n, n, int64(n)+2)
	m := newM(p, pm)
	C, stats, err := alg(m, A, B)
	if err != nil {
		t.Fatalf("%s p=%d n=%d %v: %v", name, p, n, pm, err)
	}
	want := matrix.Mul(A, B)
	if d := matrix.MaxAbsDiff(C, want); d > 1e-9 {
		t.Fatalf("%s p=%d n=%d %v: result off by %g", name, p, n, pm, d)
	}
	if stats.Elapsed <= 0 {
		t.Errorf("%s p=%d n=%d: no time elapsed", name, p, n)
	}
	return stats
}

var squareCases = []struct{ p, n int }{
	{4, 8}, {4, 12}, {16, 16}, {16, 32}, {64, 32}, {64, 48},
}

var cubeCases = []struct{ p, n int }{
	{8, 8}, {8, 16}, {64, 16}, {64, 32}, {512, 64},
}

func TestSimpleCorrect(t *testing.T) {
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range squareCases {
			checkProduct(t, "Simple", Simple, c.p, c.n, pm)
		}
	}
}

func TestCannonCorrect(t *testing.T) {
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range squareCases {
			checkProduct(t, "Cannon", Cannon, c.p, c.n, pm)
		}
	}
}

func TestHJECorrect(t *testing.T) {
	// HJE needs log sqrt(p) | n/sqrt(p).
	cases := []struct{ p, n int }{{4, 8}, {16, 16}, {16, 32}, {64, 24}, {64, 48}, {256, 64}}
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range cases {
			checkProduct(t, "HJE", HJE, c.p, c.n, pm)
		}
	}
}

func TestBerntsenCorrect(t *testing.T) {
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range cubeCases {
			checkProduct(t, "Berntsen", Berntsen, c.p, c.n, pm)
		}
	}
}

func TestDNSCorrect(t *testing.T) {
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range cubeCases {
			checkProduct(t, "DNS", DNS, c.p, c.n, pm)
		}
	}
}

func TestTrivialMachine(t *testing.T) {
	// p=1: every algorithm degenerates to a local multiply.
	for name, alg := range map[string]Algo{"Simple": Simple, "Cannon": Cannon, "HJE": HJE, "Berntsen": Berntsen, "DNS": DNS} {
		A := matrix.Random(6, 6, 1)
		B := matrix.Random(6, 6, 2)
		m := newM(1, simnet.OnePort)
		C, _, err := alg(m, A, B)
		if err != nil {
			t.Fatalf("%s on p=1: %v", name, err)
		}
		if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-10 {
			t.Errorf("%s wrong on p=1", name)
		}
	}
}

func TestIdentityOperand(t *testing.T) {
	A := matrix.Random(16, 16, 7)
	m := newM(16, simnet.OnePort)
	C, _, err := Cannon(m, A, matrix.Identity(16))
	if err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(C, A) > 1e-12 {
		t.Error("A*I != A under Cannon")
	}
}

func TestErrorsOnBadShapes(t *testing.T) {
	m := newM(16, simnet.OnePort)
	rect := matrix.New(8, 9)
	if _, _, err := Cannon(m, rect, rect); err == nil {
		t.Error("Cannon accepted non-square operands")
	}
	a8 := matrix.New(8, 8)
	b9 := matrix.New(9, 9)
	if _, _, err := Cannon(m, a8, b9); err == nil {
		t.Error("Cannon accepted mismatched operands")
	}
	odd := matrix.New(6, 6) // 6 not divisible by sqrt(16)=4
	if _, _, err := Cannon(m, odd, odd); err == nil {
		t.Error("Cannon accepted n not divisible by sqrt(p)")
	}
	m8 := newM(8, simnet.OnePort) // not a square
	sq := matrix.New(8, 8)
	if _, _, err := Cannon(m8, sq, sq); err == nil {
		t.Error("Cannon accepted non-square p")
	}
	m4 := newM(4, simnet.OnePort) // not a cube
	if _, _, err := DNS(m4, sq, sq); err == nil {
		t.Error("DNS accepted non-cube p")
	}
	if _, _, err := Berntsen(newM(8, simnet.OnePort), matrix.New(6, 6), matrix.New(6, 6)); err == nil {
		t.Error("Berntsen accepted n not divisible by cbrt(p)^2")
	}
	if _, _, err := HJE(newM(64, simnet.OnePort), matrix.New(16, 16), matrix.New(16, 16)); err == nil {
		t.Error("HJE accepted block edge not divisible by log sqrt(p)")
	}
}

// TestCannonCostShape verifies the measured one-port communication cost
// has the Table 2 structure: a = 2(sqrt p - 1) + log p start-ups and
// b = (n^2/sqrt p)(2 - 2/sqrt p + log p/sqrt p) words on the critical
// path.
func TestCannonCostShape(t *testing.T) {
	const p, n = 16, 32
	q := 4
	blk := float64(n * n / p)
	// t_s coefficient.
	mts := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 1, Tw: 0, Tc: 0})
	_, sa, err := Cannon(mts, matrix.Random(n, n, 1), matrix.Random(n, n, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantA := float64(2*(q-1) + 2*2) // 2(sqrt p -1) + log p
	if sa.Elapsed > wantA || sa.Elapsed < wantA-4 {
		t.Errorf("Cannon a = %g, Table 2 worst case %g", sa.Elapsed, wantA)
	}
	// t_w coefficient.
	mtw := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 0, Tw: 1, Tc: 0})
	_, sb, err := Cannon(mtw, matrix.Random(n, n, 1), matrix.Random(n, n, 2))
	if err != nil {
		t.Fatal(err)
	}
	wantB := blk * float64(2*(q-1)+2*2)
	if sb.Elapsed > wantB || sb.Elapsed < wantB-4*blk {
		t.Errorf("Cannon b = %g, Table 2 worst case %g", sb.Elapsed, wantB)
	}
}

// TestSimpleCostMatchesTable2 checks Simple's one-port overhead exactly:
// (log p, 2 n^2/sqrt(p) (1 - 1/sqrt(p))).
func TestSimpleCostMatchesTable2(t *testing.T) {
	const p, n = 16, 32
	q := 4.0
	mts := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 1, Tw: 0, Tc: 0})
	_, sa, _ := Simple(mts, matrix.Random(n, n, 1), matrix.Random(n, n, 2))
	if want := 4.0; sa.Elapsed != want { // log p
		t.Errorf("Simple a = %g, want %g", sa.Elapsed, want)
	}
	mtw := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 0, Tw: 1, Tc: 0})
	_, sb, _ := Simple(mtw, matrix.Random(n, n, 1), matrix.Random(n, n, 2))
	if want := 2 * float64(n*n) / q * (1 - 1/q); sb.Elapsed != want {
		t.Errorf("Simple b = %g, want %g", sb.Elapsed, want)
	}
	// Multi-port: the phases overlap and each is log sqrt(p) times cheaper.
	mmp := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.MultiPort, Ts: 0, Tw: 1, Tc: 0})
	_, sm, _ := Simple(mmp, matrix.Random(n, n, 1), matrix.Random(n, n, 2))
	if want := float64(n*n) / q * (1 - 1/q) / 2; sm.Elapsed != want { // / log sqrt(p)
		t.Errorf("Simple multi-port b = %g, want %g", sm.Elapsed, want)
	}
}

// TestSpaceAccounting checks the Table 3 shape: Simple uses ~2 n^2
// sqrt(p) aggregate words, Cannon ~3 n^2.
func TestSpaceAccounting(t *testing.T) {
	const p, n = 16, 32
	A := matrix.Random(n, n, 1)
	B := matrix.Random(n, n, 2)
	_, ss, _ := Simple(newM(p, simnet.OnePort), A, B)
	if lo, hi := 2*n*n*4, 3*n*n*4; ss.TotalPeak < lo || ss.TotalPeak > hi {
		t.Errorf("Simple aggregate space %d outside [%d,%d]", ss.TotalPeak, lo, hi)
	}
	_, cs, _ := Cannon(newM(p, simnet.OnePort), A, B)
	if lo, hi := 3*n*n, 4*n*n; cs.TotalPeak < lo || cs.TotalPeak > hi {
		t.Errorf("Cannon aggregate space %d outside [%d,%d]", cs.TotalPeak, lo, hi)
	}
}

func TestDeterministicStats(t *testing.T) {
	A := matrix.Random(16, 16, 3)
	B := matrix.Random(16, 16, 4)
	var last simnet.RunStats
	for trial := 0; trial < 3; trial++ {
		_, rs, err := DNS(newM(8, simnet.OnePort), A, B)
		if err != nil {
			t.Fatal(err)
		}
		if trial > 0 && (rs.Elapsed != last.Elapsed || rs.TotalWords != last.TotalWords) {
			t.Fatalf("nondeterministic stats: %+v vs %+v", rs, last)
		}
		last = rs
	}
}

func TestFoxCorrect(t *testing.T) {
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range squareCases {
			checkProduct(t, "Fox", Fox, c.p, c.n, pm)
		}
	}
}

// TestFoxWorseThanCannonStartups: Fox's per-step broadcast costs
// Theta(sqrt(p) log sqrt(p)) start-ups versus Cannon's Theta(sqrt(p)) —
// the reason the paper's comparison omits it.
func TestFoxWorseThanCannonStartups(t *testing.T) {
	const p, n = 64, 32
	mts := func(alg Algo) float64 {
		m := simnet.NewMachine(simnet.Config{P: p, Ports: simnet.OnePort, Ts: 1, Tw: 0})
		_, rs, err := alg(m, matrix.Random(n, n, 1), matrix.Random(n, n, 2))
		if err != nil {
			t.Fatal(err)
		}
		return rs.Elapsed
	}
	if fox, cannon := mts(Fox), mts(Cannon); fox <= cannon {
		t.Errorf("Fox a=%g not above Cannon a=%g", fox, cannon)
	}
}

func TestTranspose2D(t *testing.T) {
	for _, pm := range []simnet.PortModel{simnet.OnePort, simnet.MultiPort} {
		for _, c := range []struct{ p, n int }{{4, 8}, {16, 16}, {64, 32}} {
			X := matrix.Random(c.n, c.n, int64(c.p))
			T, stats, err := Transpose2D(newM(c.p, pm), X)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(T, X.Transpose()) {
				t.Fatalf("p=%d n=%d %v: transpose wrong", c.p, c.n, pm)
			}
			if c.p > 1 && stats.TotalMsgs == 0 {
				t.Error("no messages moved")
			}
		}
	}
}

func TestTranspose2DDiagonalFree(t *testing.T) {
	// Diagonal nodes transpose locally: their messages are self-sends
	// and cost nothing; on p=4 the worst node pays one 2-hop transfer.
	X := matrix.Random(8, 8, 1)
	m := simnet.NewMachine(simnet.Config{P: 4, Ports: simnet.OnePort, Ts: 1, Tw: 0})
	_, rs, err := Transpose2D(m, X)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Elapsed != 2 { // nodes (0,1)<->(1,0): Hamming distance 2
		t.Errorf("transpose elapsed = %g, want 2", rs.Elapsed)
	}
}

// TestTransposeEnablesAllTrans demonstrates Section 4.1.1's remedy: a
// transpose preprocessing step converts identical initial distributions
// into the mismatched pair All_Trans needs. (The 3-D All algorithm
// exists precisely to avoid this extra step; here we price it.)
func TestTransposeEnablesAllTrans(t *testing.T) {
	// Functional equivalent on the 2-D mesh: C = A * (B^T)^T — i.e.
	// transpose twice through the network and multiply.
	const p, n = 16, 16
	A := matrix.Random(n, n, 1)
	B := matrix.Random(n, n, 2)
	Bt, _, err := Transpose2D(newM(p, simnet.OnePort), B)
	if err != nil {
		t.Fatal(err)
	}
	Btt, _, err := Transpose2D(newM(p, simnet.OnePort), Bt)
	if err != nil {
		t.Fatal(err)
	}
	C, _, err := Cannon(newM(p, simnet.OnePort), A, Btt)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-9 {
		t.Error("double-transpose round trip broke the product")
	}
}

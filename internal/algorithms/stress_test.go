package algorithms

import (
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// TestCannonStressLargeMachine repeatedly runs Cannon on a 1024-node
// machine. This shook out the spawn/reset message-loss race in simnet
// (early-spawned nodes' first sends being drained by later resets) and
// guards against its return.
func TestCannonStressLargeMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("large-machine stress skipped in -short mode")
	}
	A := matrix.Random(128, 128, 1)
	B := matrix.Random(128, 128, 2)
	want := matrix.Mul(A, B)
	for trial := 0; trial < 4; trial++ {
		m := simnet.NewMachine(simnet.Config{P: 1024, Ports: simnet.OnePort, Ts: 150, Tw: 3})
		C, _, err := Cannon(m, A, B)
		if err != nil {
			t.Fatal(err)
		}
		if matrix.MaxAbsDiff(C, want) > 1e-8 {
			t.Fatal("wrong result")
		}
	}
}

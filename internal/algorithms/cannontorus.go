package algorithms

import (
	"fmt"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// CannonTorus is Cannon's algorithm on a native 2-D torus machine
// (simnet.Torus2D) rather than a torus embedded in a hypercube. Ring
// neighbors are physical links, so the shift-multiply-add phase costs
// exactly what it costs on the hypercube — the paper's Section 3.2
// observation, "the second phase of Cannon's algorithm has the same
// performance on 2-D tori and hypercubes". The skew phase differs: a
// rotation by i positions is i wrap-shortest hops on the torus versus
// at most log sqrt(p) hops on the hypercube.
//
// Unlike the hypercube algorithms, the torus does not require a
// power-of-two side: any q x q machine with q | n works.
func CannonTorus(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	if m.Cfg.Topology != simnet.Torus2D {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: CannonTorus needs a Torus2D machine")
	}
	q := intSqrt(m.P())
	if q*q != m.P() {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: torus machine size %d is not square", m.P())
	}
	if n%q != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: n=%d not divisible by q=%d", n, q)
	}

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			id := simnet.TorusNode(i, j, q)
			aIn[id] = A.GridBlock(q, q, i, j)
			bIn[id] = B.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := simnet.TorusCoords(nd.ID, q)
		a, b := aIn[nd.ID], bIn[nd.ID]
		tg := func(step, kind int) uint64 { return 1<<20 | uint64(step)<<4 | uint64(kind) }

		// Skew: A_ij -> p_{i,(j-i) mod q}; B_ij -> p_{(i-j) mod q, j}.
		// As in CannonRun, every sent block is immediately replaced by
		// the incoming one, so the sends transfer ownership.
		if q > 1 {
			nd.SendMOwned(simnet.TorusNode(i, j-i, q), tg(0, 0), a)
			nd.SendMOwned(simnet.TorusNode(i-j, j, q), tg(0, 1), b)
			a = nd.RecvM(simnet.TorusNode(i, j+i, q), tg(0, 0))
			b = nd.RecvM(simnet.TorusNode(i+j, j, q), tg(0, 1))
		}

		c := matrix.New(a.Rows, b.Cols)
		nd.NoteWords(a.Words() + b.Words() + c.Words())
		for t := 0; t < q; t++ {
			nd.MulAdd(c, a, b)
			if t == q-1 {
				break
			}
			nd.SendMOwned(simnet.TorusNode(i, j-1, q), tg(t+1, 0), a)
			nd.SendMOwned(simnet.TorusNode(i-1, j, q), tg(t+1, 1), b)
			a = nd.RecvM(simnet.TorusNode(i, j+1, q), tg(t+1, 0))
			b = nd.RecvM(simnet.TorusNode(i+1, j, q), tg(t+1, 1))
		}
		out[nd.ID] = c
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			C.SetGridBlock(q, q, i, j, out[simnet.TorusNode(i, j, q)])
		}
	}
	return C, stats, nil
}

func intSqrt(x int) int {
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

package algorithms

import (
	"errors"
	"testing"

	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Machine-reuse error paths: the fault plan and deadline live in
// Machine.Cfg and are consulted per run, so a machine whose run just
// failed with a typed fault must be reusable — clear the fault source
// in Cfg, run the same algorithm again on the same machine, and the
// product must come out right with fresh (zeroed) counters.

// errorPathAlgs pairs each runner with a shape it accepts. n=24 is
// divisible by every embedding used here; the 2-D algorithms run on
// p=16 (even d), the 3-D ones on p=8 (d divisible by 3).
var errorPathAlgs = []struct {
	name string
	alg  Algo
	p    int
}{
	{"Simple", Simple, 16},
	{"Cannon", Cannon, 16},
	{"Fox", Fox, 16},
	{"HJE", HJE, 16},
	{"Berntsen", Berntsen, 8},
	{"DNS", DNS, 8},
}

func TestMachineReusableAfterLinkDown(t *testing.T) {
	for _, tc := range errorPathAlgs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const n = 24
			A := matrix.Random(n, n, 31)
			B := matrix.Random(n, n, 32)
			m := simnet.NewMachine(simnet.Config{
				P: tc.p, Ports: simnet.OnePort, Ts: 1, Tw: 1, Tc: 0.1,
				Faults: &simnet.FaultPlan{
					Down:       []simnet.Window{{Src: -1, Dst: -1, From: 0, To: 1e18}},
					MaxRetries: 1,
				},
			})
			C, _, err := tc.alg(m, A, B)
			if !errors.Is(err, simnet.ErrLinkDown) {
				t.Fatalf("total outage: got %v, want ErrLinkDown", err)
			}
			if C != nil {
				t.Fatal("partial product returned alongside the fault")
			}

			// Same machine, fault plan cleared: must now succeed.
			m.Cfg.Faults = nil
			C, rs, err := tc.alg(m, A, B)
			if err != nil {
				t.Fatalf("reused machine failed: %v", err)
			}
			if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
				t.Fatalf("reused machine product off by %g", d)
			}
			if rs.TotalRetries != 0 {
				t.Errorf("clean run on reused machine charged %d retries", rs.TotalRetries)
			}
			if rs.Elapsed <= 0 {
				t.Error("reused machine reported no elapsed time")
			}
		})
	}
}

func TestMachineReusableAfterDeadline(t *testing.T) {
	for _, tc := range errorPathAlgs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const n = 24
			A := matrix.Random(n, n, 41)
			B := matrix.Random(n, n, 42)
			m := simnet.NewMachine(simnet.Config{
				P: tc.p, Ports: simnet.OnePort, Ts: 1, Tw: 1, Tc: 0.1,
				Deadline: 0.5,
			})
			C, _, err := tc.alg(m, A, B)
			if !errors.Is(err, simnet.ErrDeadline) {
				t.Fatalf("deadline 0.5: got %v, want ErrDeadline", err)
			}
			if C != nil {
				t.Fatal("partial product returned alongside the deadline fault")
			}

			// Lift the deadline and rerun on the same machine. Elapsed
			// must be the clean makespan, not a continuation of the
			// aborted clocks.
			m.Cfg.Deadline = 0
			C, rs, err := tc.alg(m, A, B)
			if err != nil {
				t.Fatalf("reused machine failed: %v", err)
			}
			if d := matrix.MaxAbsDiff(C, matrix.Mul(A, B)); d > 1e-9 {
				t.Fatalf("reused machine product off by %g", d)
			}
			fresh := simnet.NewMachine(simnet.Config{P: tc.p, Ports: simnet.OnePort, Ts: 1, Tw: 1, Tc: 0.1})
			_, freshRs, err := tc.alg(fresh, A, B)
			if err != nil {
				t.Fatalf("fresh machine failed: %v", err)
			}
			if rs.Elapsed != freshRs.Elapsed {
				t.Errorf("reused machine makespan %g differs from fresh machine %g",
					rs.Elapsed, freshRs.Elapsed)
			}
		})
	}
}

package algorithms

import (
	"fmt"

	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// HJE is the Ho-Johnsson-Edelman algorithm (Section 3.3, Algorithm 1):
// Cannon's shift-multiply-add restructured so that a multi-port
// hypercube's full bandwidth is used. The operands are first skewed by
// bitwise XOR (A_ij -> p_{i, j^i}, B_ij -> p_{i^j, j}), which aligns
// the inner block indices at i^j. Then, over sqrt(p) steps, the local
// A block is kept split into log sqrt(p) column groups (B into row
// groups); at every step, group l is exchanged across the subcube
// dimension given by the Gray-code transition sequence left-rotated by
// l, so all 2 log sqrt(p) links of a node carry a distinct group
// simultaneously. The composite local product A~ x B~ accumulates
// exactly the contributions of Cannon's algorithm.
//
// Because every movement is an XOR, HJE uses the direct binary
// embedding of the mesh (processor (i,j) at address i*q+j) rather than
// the Gray-code embedding — every partner is then a physical neighbor.
//
// Requires log sqrt(p) to divide the block edge n/sqrt(p) (the paper's
// applicability condition n >= sqrt(p) log sqrt(p)).
func HJE(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	p := m.P()
	cd := hypercube.Log2(p)
	if cd%2 != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: HJE needs p a perfect square power of two, got %d", p)
	}
	dd := cd / 2
	q := 1 << dd
	if n%q != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: n=%d not divisible by sqrt(p)=%d", n, q)
	}
	w := n / q
	if dd > 0 && w%dd != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: HJE needs log sqrt(p)=%d to divide the block edge n/sqrt(p)=%d (n >= sqrt(p) log sqrt(p))", dd, w)
	}

	node := func(i, j int) int { return i<<dd | j }
	aIn := make([]*matrix.Dense, p)
	bIn := make([]*matrix.Dense, p)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			aIn[node(i, j)] = A.GridBlock(q, q, i, j)
			bIn[node(i, j)] = B.GridBlock(q, q, i, j)
		}
	}

	out := make([]*matrix.Dense, p)
	stats, err := m.RunErr(func(nd *simnet.Node) {
		i, j := nd.ID>>dd, nd.ID&(q-1)
		a, b := aIn[nd.ID], bIn[nd.ID]
		tg := func(phase, step, kind int) uint64 {
			return uint64(phase)<<28 | uint64(step)<<8 | uint64(kind)
		}

		// Skew by XOR, one bit at a time. Partners share the governing
		// coordinate, so exchanges pair up symmetrically; the A and B
		// exchanges of a bit use disjoint dimensions, so issuing both
		// sends before the receives lets a multi-port node overlap them.
		for d := 0; d < dd; d++ {
			moveA := hypercube.Bit(i, d) == 1 // A moves along the row: j -> j^2^d
			moveB := hypercube.Bit(j, d) == 1 // B moves along the column: i -> i^2^d
			if moveA {
				nd.SendM(nd.ID^(1<<d), tg(1, d, 0), a)
			}
			if moveB {
				nd.SendM(nd.ID^(1<<(dd+d)), tg(1, d, 1), b)
			}
			if moveA {
				a = nd.RecvM(nd.ID^(1<<d), tg(1, d, 0))
			}
			if moveB {
				b = nd.RecvM(nd.ID^(1<<(dd+d)), tg(1, d, 1))
			}
		}

		c := matrix.New(w, w)
		nd.NoteWords(a.Words() + b.Words() + c.Words())

		if q == 1 {
			nd.MulAdd(c, a, b)
			out[nd.ID] = c
			return
		}

		// Shift-multiply-add over the rotated Gray tours.
		for t := 0; t < q; t++ {
			nd.MulAdd(c, a, b)
			if t == q-1 {
				break
			}
			base := hypercube.GrayStepBit(t) // transition Gray(t) -> Gray(t+1)
			// Issue all 2*dd group exchanges; each uses a distinct
			// physical dimension, so a multi-port node drives them all
			// at once.
			for l := 0; l < dd; l++ {
				bl := (base + l) % dd
				nd.SendM(nd.ID^(1<<bl), tg(2, t, l), a.ColGroup(dd, l))
				nd.SendM(nd.ID^(1<<(dd+bl)), tg(3, t, l), b.RowGroup(dd, l))
			}
			for l := 0; l < dd; l++ {
				bl := (base + l) % dd
				ag := nd.RecvM(nd.ID^(1<<bl), tg(2, t, l))
				bg := nd.RecvM(nd.ID^(1<<(dd+bl)), tg(3, t, l))
				a.SetBlock(0, l*w/dd, ag)
				b.SetBlock(l*w/dd, 0, bg)
			}
		}
		out[nd.ID] = c
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			C.SetGridBlock(q, q, i, j, out[node(i, j)])
		}
	}
	return C, stats, nil
}

package algorithms

import (
	"fmt"

	"hypermm/internal/collective"
	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// DNSCannon is the combination algorithm sketched at the end of the
// paper's Section 3.5: the hypercube is viewed as a
// cbrt(s) x cbrt(s) x cbrt(s) grid of *supernodes*, each supernode
// being a sqrt(r) x sqrt(r) Cannon mesh (p = s*r processors). The DNS
// phases — lift A and B along z, broadcast along y and x, reduce along
// z — run at supernode granularity with every mesh processor handling
// its own sub-block, and the per-supernode block product is computed
// by Cannon's algorithm, which is what saves DNS's factor-cbrt(p)
// space blow-up.
//
// The paper does not present this algorithm because 3DD and 3D All
// dominate it; it is implemented here so the dominated baseline is
// reproducible too. s must be a power of eight, r a power of four.
//
// Address layout: the low log r dimensions hold the intra-supernode
// mesh (Gray-embedded rows and columns), the high 3*log cbrt(s)
// dimensions the supernode grid, so all DNS-phase chains and all
// Cannon rings are subcubes.
func DNSCannon(m *simnet.Machine, A, B *matrix.Dense, s int) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	p := m.P()
	if s <= 0 || p%s != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: supernode count %d does not divide p=%d", s, p)
	}
	r := p / s
	if !hypercube.IsPow2(s) || hypercube.Log2(s)%3 != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: s=%d is not a perfect cube power of two", s)
	}
	if !hypercube.IsPow2(r) || hypercube.Log2(r)%2 != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: r=p/s=%d is not a perfect square power of two", r)
	}
	qs := 1 << (hypercube.Log2(s) / 3) // supernodes per grid axis
	qr := 1 << (hypercube.Log2(r) / 2) // mesh processors per supernode axis
	if n%(qs*qr) != 0 {
		return nil, simnet.RunStats{}, fmt.Errorf("algorithms: n=%d not divisible by cbrt(s)*sqrt(r)=%d", n, qs*qr)
	}
	dr := hypercube.Log2(r)
	ds := hypercube.Log2(qs)

	// Physical address: [super x | super y | super z | intra i | intra j].
	intra := func(i, j int) int { return hypercube.Gray(i)<<(dr/2) | hypercube.Gray(j) }
	node := func(I, J, K, i, j int) int {
		return hypercube.Gray(I)<<(2*ds+dr) | hypercube.Gray(J)<<(ds+dr) | hypercube.Gray(K)<<dr | intra(i, j)
	}
	coords := func(id int) (I, J, K, i, j int) {
		mi := 1<<(dr/2) - 1
		ms := 1<<ds - 1
		return hypercube.GrayRank(id >> (2*ds + dr) & ms),
			hypercube.GrayRank(id >> (ds + dr) & ms),
			hypercube.GrayRank(id >> dr & ms),
			hypercube.GrayRank(id >> (dr / 2) & mi),
			hypercube.GrayRank(id & mi)
	}

	// Initial distribution: supernode (I,J,0) holds blocks A_IJ and
	// B_IJ of the cbrt(s) x cbrt(s) partition, themselves distributed
	// qr x qr over the supernode's mesh.
	aIn := make([]*matrix.Dense, p)
	bIn := make([]*matrix.Dense, p)
	for I := 0; I < qs; I++ {
		for J := 0; J < qs; J++ {
			aBlk := A.GridBlock(qs, qs, I, J)
			bBlk := B.GridBlock(qs, qs, I, J)
			for i := 0; i < qr; i++ {
				for j := 0; j < qr; j++ {
					id := node(I, J, 0, i, j)
					aIn[id] = aBlk.GridBlock(qr, qr, i, j)
					bIn[id] = bBlk.GridBlock(qr, qr, i, j)
				}
			}
		}
	}

	blk := n / (qs * qr) // sub-block edge per mesh processor

	out := make([]*matrix.Dense, p)
	stats, err := m.RunErr(func(nd *simnet.Node) {
		I, J, K, i, j := coords(nd.ID)
		io := intra(i, j)

		// Supernode-axis chains through this processor's mesh offset.
		xCh := hypercube.NewChain(hypercube.Gray(J)<<(ds+dr)|hypercube.Gray(K)<<dr|io, dims(2*ds+dr, ds))
		yCh := hypercube.NewChain(hypercube.Gray(I)<<(2*ds+dr)|hypercube.Gray(K)<<dr|io, dims(ds+dr, ds))
		zCh := hypercube.NewChain(hypercube.Gray(I)<<(2*ds+dr)|hypercube.Gray(J)<<(ds+dr)|io, dims(dr, ds))

		// Phase 1: lift the sub-blocks along z, supernode-wise.
		if K == 0 {
			nd.SendM(node(I, J, J, i, j), 1, aIn[nd.ID])
			nd.SendM(node(I, J, I, i, j), 2, bIn[nd.ID])
		}
		var aRoot, bRoot *matrix.Dense
		if K == J {
			aRoot = nd.RecvM(node(I, J, 0, i, j), 1)
		}
		if K == I {
			bRoot = nd.RecvM(node(I, J, 0, i, j), 2)
		}

		// Phase 2: broadcast A along y (root supernode J=K) and B along
		// x (root supernode I=K), fused for multi-port overlap.
		opA := collective.On(nd, yCh).NewBcast(3, K, blk, blk, aRoot)
		opB := collective.On(nd, xCh).NewBcast(4, K, blk, blk, bRoot)
		collective.Run(opA, opB)
		a, b := opA.Result(), opB.Result() // sub-blocks of A_{IK}, B_{KJ}

		nd.NoteWords(3 * blk * blk)

		// Phase 3: per-supernode block product by Cannon on the mesh.
		// The row chain varies the low intra bits (j), the column chain
		// the next intra bits (i); everything else is fixed context.
		rowCh := hypercube.NewChain(nd.ID&^(1<<(dr/2)-1), dims(0, dr/2))
		colCh := hypercube.NewChain(nd.ID&^((1<<(dr/2)-1)<<(dr/2)), dims(dr/2, dr/2))
		c := CannonRun(nd, rowCh, colCh, i, j, qr, a, b, 5)

		// Phase 4: reduce along z back to the K=0 plane.
		red := collective.On(nd, zCh).Reduce(6, 0, c)
		if K == 0 {
			out[nd.ID] = red
		}
	})
	if err != nil {
		return nil, stats, err
	}

	C := matrix.New(n, n)
	for I := 0; I < qs; I++ {
		for J := 0; J < qs; J++ {
			cBlk := matrix.New(n/qs, n/qs)
			for i := 0; i < qr; i++ {
				for j := 0; j < qr; j++ {
					cBlk.SetGridBlock(qr, qr, i, j, out[node(I, J, 0, i, j)])
				}
			}
			C.SetGridBlock(qs, qs, I, J, cBlk)
		}
	}
	return C, stats, nil
}

package algorithms

import (
	"hypermm/internal/collective"
	"hypermm/internal/hypercube"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

// Berntsen is Berntsen's algorithm (Section 3.4): the hypercube is cut
// into cbrt(p) subcubes of p^(2/3) processors each; subcube m computes
// the outer product of the m-th column group of A and the m-th row
// group of B with Cannon's algorithm on its internal
// cbrt(p) x cbrt(p) mesh; and an all-to-all reduction among
// corresponding processors across subcubes sums the cbrt(p) outer
// products into C. Applicable for p <= n^(3/2).
//
// The result is left distributed differently from the operands (each
// processor holds a 1/cbrt(p) column slice of a C block) — the paper
// notes this drawback; the collection phase reassembles it.
func Berntsen(m *simnet.Machine, A, B *matrix.Dense) (*matrix.Dense, simnet.RunStats, error) {
	n, err := CheckSquareOperands(A, B)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	g3, err := Grid3DFor(m, n, true)
	if err != nil {
		return nil, simnet.RunStats{}, err
	}
	q := g3.Q
	dd := hypercube.Log2(q)

	// Subcube m occupies the addresses with Gray(m) in the top dd bits;
	// inside, a q x q Cannon mesh over the low 2*dd dimensions.
	node := func(sub, i, j int) int {
		return hypercube.Gray(sub)<<(2*dd) | hypercube.Gray(i)<<dd | hypercube.Gray(j)
	}
	coords := func(id int) (sub, i, j int) {
		mask := 1<<dd - 1
		return hypercube.GrayRank(id >> (2 * dd)),
			hypercube.GrayRank((id >> dd) & mask),
			hypercube.GrayRank(id & mask)
	}

	aIn := make([]*matrix.Dense, m.P())
	bIn := make([]*matrix.Dense, m.P())
	for sub := 0; sub < q; sub++ {
		aSlab := A.ColGroup(q, sub) // n x n/q
		bSlab := B.RowGroup(q, sub) // n/q x n
		for i := 0; i < q; i++ {
			for j := 0; j < q; j++ {
				id := node(sub, i, j)
				aIn[id] = aSlab.GridBlock(q, q, i, j) // (n/q) x (n/q^2)
				bIn[id] = bSlab.GridBlock(q, q, i, j) // (n/q^2) x (n/q)
			}
		}
	}

	out := make([]*matrix.Dense, m.P())
	stats, err := m.RunErr(func(nd *simnet.Node) {
		sub, i, j := coords(nd.ID)
		base := hypercube.Gray(sub) << (2 * dd)
		rowCh := hypercube.NewChain(base|hypercube.Gray(i)<<dd, dims(0, dd))
		colCh := hypercube.NewChain(base|hypercube.Gray(j), dims(dd, dd))

		// Outer product O_sub = A_.sub x B_sub. via Cannon on the subcube.
		o := CannonRun(nd, rowCh, colCh, i, j, q, aIn[nd.ID], bIn[nd.ID], 1)

		// All-to-all reduction among the q corresponding processors of
		// the subcubes: node (sub,i,j) keeps column group sub of the
		// summed block C_ij.
		crossCh := hypercube.NewChain(hypercube.Gray(i)<<dd|hypercube.Gray(j), dims(2*dd, dd))
		cross := collective.On(nd, crossCh)
		pieces := make([]*matrix.Dense, q)
		for l := 0; l < q; l++ {
			pieces[l] = o.ColGroup(q, l)
		}
		nd.NoteWords(aIn[nd.ID].Words() + bIn[nd.ID].Words() + o.Words())
		out[nd.ID] = cross.ReduceScatter(2, pieces)
	})
	if err != nil {
		return nil, stats, err
	}

	// Collection: C block (i,j) is spread across the subcubes as column
	// groups.
	C := matrix.New(n, n)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			cols := make([]*matrix.Dense, q)
			for sub := 0; sub < q; sub++ {
				cols[sub] = out[node(sub, i, j)]
			}
			C.SetGridBlock(q, q, i, j, matrix.ConcatCols(cols...))
		}
	}
	return C, stats, nil
}

// dims returns the physical dimensions lo..lo+n-1.
func dims(lo, n int) []int {
	ds := make([]int, n)
	for s := range ds {
		ds[s] = lo + s
	}
	return ds
}

// Command regionmap regenerates the paper's Figures 13 and 14: ASCII
// maps of the (n, p) parameter space marking, in each cell, the
// algorithm with the least analytic communication overhead.
//
// Usage:
//
//	regionmap -model oneport              # Figure 13, four (t_s,t_w) panels
//	regionmap -model multiport -ts 150    # one Figure 14 panel
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"hypermm"
	"hypermm/internal/cost"
	"hypermm/internal/simnet"
)

func main() {
	var (
		model   = flag.String("model", "oneport", "machine model: oneport (Fig 13) or multiport (Fig 14)")
		ts      = flag.Float64("ts", -1, "start-up cost t_s; negative means the paper's four panels")
		tw      = flag.Float64("tw", 3, "per-word cost t_w")
		logNMin = flag.Float64("lognmin", 5, "smallest log2 n")
		logNMax = flag.Float64("lognmax", 14, "largest log2 n")
		logPMin = flag.Float64("logpmin", 3, "smallest log2 p")
		logPMax = flag.Float64("logpmax", 20, "largest log2 p")
		nSteps  = flag.Int("nsteps", 64, "columns")
		pSteps  = flag.Int("psteps", 32, "rows")
		pngPath = flag.String("png", "", "also write PNG panels to <prefix>_<panel>.png")
		cell    = flag.Int("cell", 8, "PNG pixels per grid cell")
	)
	flag.Parse()

	var pm hypermm.PortModel
	switch *model {
	case "oneport", "one", "one-port":
		pm = hypermm.OnePort
	case "multiport", "multi", "multi-port":
		pm = hypermm.MultiPort
	default:
		fmt.Fprintf(os.Stderr, "regionmap: unknown model %q\n", *model)
		os.Exit(1)
	}

	fig := "Figure 13"
	if pm == hypermm.MultiPort {
		fig = "Figure 14"
	}
	panels := []float64{150, 50, 10, 2}
	if *ts >= 0 {
		panels = []float64{*ts}
	}
	spm := simnet.OnePort
	if pm == hypermm.MultiPort {
		spm = simnet.MultiPort
	}
	// Render every panel concurrently (each is an independent grid
	// evaluation), then print in panel order for byte-identical output.
	texts := make([]string, len(panels))
	var wg sync.WaitGroup
	for i, t := range panels {
		wg.Add(1)
		go func(i int, t float64) {
			defer wg.Done()
			texts[i] = hypermm.RegionMap(pm, t, *tw, *logNMin, *logNMax, *nSteps, *logPMin, *logPMax, *pSteps)
		}(i, t)
	}
	wg.Wait()
	for i, t := range panels {
		fmt.Printf("%s(%c): t_s=%g, t_w=%g\n", fig, 'a'+i, t, *tw)
		fmt.Print(texts[i])
		fmt.Println()
		if *pngPath != "" {
			rm := cost.NewRegionMap(spm, t, *tw, cost.DefaultCandidates(spm),
				*logNMin, *logNMax, *nSteps, *logPMin, *logPMax, *pSteps)
			name := fmt.Sprintf("%s_%c.png", *pngPath, 'a'+i)
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "regionmap:", err)
				os.Exit(1)
			}
			if err := rm.WritePNG(f, *cell); err != nil {
				fmt.Fprintln(os.Stderr, "regionmap:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n", name)
		}
	}
}

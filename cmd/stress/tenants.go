package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// tenantSpec is one entry of the -tenants flag: name:class:rps. An rps
// of 0 floods (fires as fast as -c clients allow); a positive rps paces
// a single client at that rate.
type tenantSpec struct {
	name, class string
	rps         float64
}

func parseTenants(s string) ([]tenantSpec, error) {
	var specs []tenantSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 || fields[0] == "" {
			return nil, fmt.Errorf("bad tenant %q, want name:class:rps", part)
		}
		rps, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || rps < 0 {
			return nil, fmt.Errorf("bad tenant %q rps: %v", part, fields[2])
		}
		specs = append(specs, tenantSpec{name: fields[0], class: fields[1], rps: rps})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -tenants spec")
	}
	return specs, nil
}

// parseAssert parses -assert-success name:frac.
func parseAssert(s string) (string, float64, error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 {
		return "", 0, fmt.Errorf("bad -assert-success %q, want name:frac", s)
	}
	frac, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil || frac < 0 || frac > 1 {
		return "", 0, fmt.Errorf("bad -assert-success fraction %q", s[i+1:])
	}
	return s[:i], frac, nil
}

// tenantResult accumulates one tenant's outcomes.
type tenantResult struct {
	statuses  map[int]int
	latencies []time.Duration
	netErrs   int
}

func (r *tenantResult) successRate(total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(r.statuses[200]) / float64(total)
}

// tenantLoad drives hmmd with one traffic stream per tenant — paced
// tenants at their configured rate, flooding tenants as fast as -c
// concurrent clients can go — and reports per-tenant status counts,
// success rate and latency quantiles. Returns the process exit code.
func tenantLoad(client *http.Client, base string, o loadOpts) int {
	specs, err := parseTenants(o.tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		return 2
	}
	var assertName string
	var assertFrac float64
	if o.assertSuccess != "" {
		assertName, assertFrac, err = parseAssert(o.assertSuccess)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress:", err)
			return 2
		}
	}

	results := make(map[string]*tenantResult, len(specs))
	for _, spec := range specs {
		results[spec.name] = &tenantResult{statuses: map[int]int{}}
	}

	var mu sync.Mutex
	fire := func(spec tenantSpec) {
		body := fmt.Sprintf(`{"n": %d, "p": %d, "algorithm": %q, "class": %q}`,
			o.n, o.p, o.alg, spec.class)
		req, err := http.NewRequest("POST", base+"/v1/matmul", strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", spec.name)
		t0 := time.Now()
		resp, err := client.Do(req)
		lat := time.Since(t0)
		mu.Lock()
		defer mu.Unlock()
		r := results[spec.name]
		r.latencies = append(r.latencies, lat)
		if err != nil {
			r.netErrs++
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.statuses[resp.StatusCode]++
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, spec := range specs {
		spec := spec
		if spec.rps > 0 {
			// Paced: one well-behaved client at a fixed rate.
			wg.Add(1)
			go func() {
				defer wg.Done()
				interval := time.Duration(float64(time.Second) / spec.rps)
				for i := 0; i < o.requests; i++ {
					if i > 0 {
						time.Sleep(interval)
					}
					fire(spec)
				}
			}()
			continue
		}
		// Flood: -c concurrent clients, no pacing.
		work := make(chan struct{})
		for w := 0; w < o.conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					fire(spec)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < o.requests; i++ {
				work <- struct{}{}
			}
			close(work)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%d requests per tenant to %s (n=%d p=%d alg=%s, %d flood clients) in %v\n",
		o.requests, base, o.n, o.p, o.alg, o.conc, elapsed.Round(time.Millisecond))
	for _, spec := range specs {
		r := results[spec.name]
		mode := "flood"
		if spec.rps > 0 {
			mode = fmt.Sprintf("%.1f req/s", spec.rps)
		}
		sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
		quant := func(q float64) time.Duration {
			if len(r.latencies) == 0 {
				return 0
			}
			return r.latencies[int(q*float64(len(r.latencies)-1))]
		}
		fmt.Printf("tenant %s (%s, %s): success %.1f%%\n",
			spec.name, spec.class, mode, 100*r.successRate(o.requests))
		codes := make([]int, 0, len(r.statuses))
		for c := range r.statuses {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Printf("  status %3d  x%d\n", c, r.statuses[c])
		}
		if r.netErrs > 0 {
			fmt.Printf("  network errors x%d\n", r.netErrs)
		}
		fmt.Printf("  latency p50 %v  p99 %v\n", quant(0.5), quant(0.99))
	}

	if o.smoke {
		data, code := scrapeMetrics(client, base)
		if code != 0 {
			return code
		}
		// The per-tenant QoS family must be live; in particular the shed
		// counter, so the fairness run is observable.
		for _, want := range []string{"hmmd_jobs_total", "hmmd_qos_sheds_total", "hmmd_qos_queue_depth"} {
			if !strings.Contains(data, want) {
				fmt.Fprintf(os.Stderr, "stress: /metrics scrape missing %s\n", want)
				return 1
			}
		}
		fmt.Printf("  /metrics ok (%d bytes, hmmd_qos_* present)\n", len(data))
	}

	if assertName != "" {
		r, ok := results[assertName]
		if !ok {
			fmt.Fprintf(os.Stderr, "stress: -assert-success tenant %q not in -tenants\n", assertName)
			return 2
		}
		if rate := r.successRate(o.requests); rate < assertFrac {
			fmt.Fprintf(os.Stderr, "stress: tenant %s success %.1f%% < required %.1f%%\n",
				assertName, 100*rate, 100*assertFrac)
			return 1
		}
		fmt.Printf("  assert ok: %s success >= %.0f%%\n", assertName, 100*assertFrac)
	}
	return 0
}

// Command stress has two modes.
//
// Emulator mode (default): hammers one algorithm repeatedly on a large
// simulated machine with a stall watchdog, printing simnet deadlock
// diagnostics if a run wedges. A development tool for shaking out
// message-matching bugs.
//
// Load-generator mode (-url): drives a running hmmd daemon with
// concurrent POST /v1/matmul requests and reports status counts and
// latency quantiles; -smoke additionally scrapes /metrics and fails
// unless the scrape is non-empty. The serve-smoke make target uses it.
//
//	stress -url http://127.0.0.1:8080 -requests 64 -c 8 -n 64 -p 64
//
// Multi-tenant mode (-tenants on top of -url) fires one traffic stream
// per tenant — "paced:interactive:20,flood:best-effort:0" runs a paced
// interactive tenant at 20 req/s against an unpaced best-effort flood —
// with X-Tenant headers, and reports per-tenant status counts, success
// rate and latency quantiles; -assert-success paced:0.95 turns the
// report into a fairness gate. The qos-smoke make target uses it.
//
// Cluster mode (-cluster N on top of -url) drives a coordinator: it
// waits for N registered workers, pins one response byte-identical to a
// local run, and — with -kill-after K -kill-pid PID — SIGKILLs a worker
// process mid-batch, then requires every request to still return 200,
// at least one failover, and the worker gauge to drop to N-1. The
// cluster-smoke make target uses it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"hypermm"
	"hypermm/internal/algorithms"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func main() {
	var (
		p      = flag.Int("p", 1024, "processors (emulator mode) or machine size (load mode)")
		n      = flag.Int("n", 256, "matrix size")
		trials = flag.Int("trials", 20, "repetitions (emulator mode)")
		stall  = flag.Duration("stall", 20*time.Second, "watchdog timeout per trial (emulator mode)")

		url      = flag.String("url", "", "hmmd base URL; switches to load-generator mode")
		requests = flag.Int("requests", 16, "total requests to fire (load mode)")
		conc     = flag.Int("c", 4, "concurrent clients (load mode)")
		alg      = flag.String("alg", "auto", "algorithm to request (load mode)")
		verify   = flag.Bool("verify", true, "ask the server to verify results (load mode)")
		smoke    = flag.Bool("smoke", false, "smoke mode: wait for the server, fire requests, assert 200s and a non-empty /metrics")
		wait     = flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up (load mode)")

		clusterN  = flag.Int("cluster", 0, "expect this many cluster workers before the batch (cluster mode)")
		killAfter = flag.Int("kill-after", 0, "SIGKILL -kill-pid after this many 200 responses (cluster mode)")
		killPid   = flag.Int("kill-pid", 0, "worker process to kill mid-batch (cluster mode)")

		traceOut   = flag.String("trace-out", "", "fire one traced request, fetch its merged Chrome trace from /v1/trace/{id} and write it to this file (load mode)")
		pprofCheck = flag.Bool("pprof-check", false, "assert GET /debug/pprof/cmdline answers 200 (load mode; server must run with -pprof)")

		tenants       = flag.String("tenants", "", "multi-tenant mode: comma-separated name:class:rps streams (rps 0 floods); sends X-Tenant headers, reports per-tenant success and latency")
		assertSuccess = flag.String("assert-success", "", "name:frac — exit 1 unless that tenant's success rate is at least frac (tenants mode)")
	)
	flag.Parse()

	if *url != "" {
		os.Exit(loadGenerate(loadOpts{
			base: *url, requests: *requests, conc: *conc, n: *n, p: *p,
			alg: *alg, verify: *verify, smoke: *smoke, wait: *wait,
			cluster: *clusterN, killAfter: *killAfter, killPid: *killPid,
			traceOut: *traceOut, pprofCheck: *pprofCheck,
			tenants: *tenants, assertSuccess: *assertSuccess,
		}))
	}

	A := matrix.Random(*n, *n, 1)
	B := matrix.Random(*n, *n, 2)
	for trial := 0; trial < *trials; trial++ {
		m := simnet.NewMachine(simnet.Config{P: *p, Ports: simnet.OnePort, Ts: 150, Tw: 3})
		done := make(chan struct{})
		go func() {
			select {
			case <-done:
			case <-time.After(*stall):
				fmt.Printf("trial %d STALLED; diagnostics:\n%s\n", trial, m.Diagnose())
				os.Exit(2)
			}
		}()
		C, _, err := algorithms.Cannon(m, A, B)
		close(done)
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(1)
		}
		if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-8 {
			fmt.Println("WRONG RESULT at trial", trial)
			os.Exit(1)
		}
		fmt.Printf("trial %d ok\n", trial)
	}
}

// loadOpts parameterizes one load-generator run.
type loadOpts struct {
	base           string
	requests, conc int
	n, p           int
	alg            string
	verify, smoke  bool
	wait           time.Duration

	cluster   int // expected worker count; 0 disables cluster checks
	killAfter int // SIGKILL killPid after this many 200s (0: never)
	killPid   int

	traceOut   string // write one request's Chrome trace here ("": skip)
	pprofCheck bool   // assert the pprof endpoints are mounted

	tenants       string // name:class:rps streams; "" keeps single-tenant mode
	assertSuccess string // name:frac success-rate floor (tenants mode)
}

// loadGenerate drives hmmd and returns the process exit code.
func loadGenerate(o loadOpts) int {
	base := strings.TrimRight(o.base, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	// Wait for the daemon to accept connections (smoke boots it fresh).
	deadline := time.Now().Add(o.wait)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "stress: server at %s never came up: %v\n", base, err)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}

	if o.cluster > 0 {
		if code := clusterPreflight(client, base, o); code != 0 {
			return code
		}
	}

	// Multi-tenant mode replaces the single batch with one traffic
	// stream per tenant; fairness, not universal success, is the check.
	if o.tenants != "" {
		return tenantLoad(client, base, o)
	}

	body := fmt.Sprintf(`{"n": %d, "p": %d, "algorithm": %q, "verify": %v}`, o.n, o.p, o.alg, o.verify)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		statuses  = map[int]int{}
		oks       int
		noTrace   int // responses missing the X-Trace-Id header
		killed    bool
	)
	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/matmul", "application/json", strings.NewReader(body))
				lat := time.Since(t0)
				code := -1
				traced := false
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
					traced = resp.Header.Get("X-Trace-Id") != ""
				}
				mu.Lock()
				latencies = append(latencies, lat)
				statuses[code]++
				if code != -1 && !traced {
					noTrace++
				}
				if code == 200 {
					oks++
					// Mid-batch worker kill: once enough requests have
					// succeeded the victim certainly holds in-flight
					// jobs from the remaining batch, so the coordinator
					// must fail them over, invisibly to the clients.
					if o.killAfter > 0 && o.killPid > 0 && !killed && oks >= o.killAfter {
						killed = true
						fmt.Printf("  killing worker pid %d after %d responses\n", o.killPid, oks)
						if err := syscall.Kill(o.killPid, syscall.SIGKILL); err != nil {
							fmt.Fprintln(os.Stderr, "stress: kill:", err)
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < o.requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("%d requests to %s (n=%d p=%d alg=%s, %d clients)\n", o.requests, base, o.n, o.p, o.alg, o.conc)
	codes := make([]int, 0, len(statuses))
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  status %3d  x%d\n", c, statuses[c])
	}
	fmt.Printf("  latency p50 %v  p95 %v  p99 %v\n", quant(0.5), quant(0.95), quant(0.99))
	fmt.Printf("  steady-state %.1f req/s (%d requests in %v)\n",
		float64(o.requests)/elapsed.Seconds(), o.requests, elapsed.Round(time.Millisecond))
	if noTrace > 0 {
		fmt.Fprintf(os.Stderr, "stress: %d response(s) missing the X-Trace-Id header\n", noTrace)
		return 1
	}

	ok := statuses[200] == o.requests
	if o.smoke {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress: /metrics:", err)
			return 1
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(data) == 0 || !strings.Contains(string(data), "hmmd_jobs_total") {
			fmt.Fprintf(os.Stderr, "stress: /metrics scrape bad (status %d, %d bytes)\n", resp.StatusCode, len(data))
			return 1
		}
		fmt.Printf("  /metrics ok (%d bytes)\n", len(data))
	}
	if o.cluster > 0 && killed {
		if code := clusterPostKill(client, base, o); code != 0 {
			return code
		}
	}
	if o.traceOut != "" {
		if code := traceFetch(client, base, o); code != 0 {
			return code
		}
	}
	if o.pprofCheck {
		resp, err := client.Get(base + "/debug/pprof/cmdline")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress: /debug/pprof/cmdline:", err)
			return 1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			fmt.Fprintf(os.Stderr, "stress: /debug/pprof/cmdline status %d (is the server running with -pprof?)\n", resp.StatusCode)
			return 1
		}
		fmt.Println("  /debug/pprof ok")
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "stress: not every request returned 200")
		return 1
	}
	return 0
}

// traceFetch fires one traced request, follows its X-Trace-Id to
// GET /v1/trace/{id}, validates the Chrome trace-event shape (a
// traceEvents array holding at least the handler's complete event and
// the simulated timeline) and writes the JSON to o.traceOut.
func traceFetch(client *http.Client, base string, o loadOpts) int {
	body := fmt.Sprintf(`{"n": %d, "p": %d, "algorithm": %q, "trace": true}`, o.n, o.p, o.alg)
	resp, err := client.Post(base+"/v1/matmul", "application/json", strings.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress: traced request:", err)
		return 1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if resp.StatusCode != 200 || id == "" {
		fmt.Fprintf(os.Stderr, "stress: traced request status %d, trace id %q\n", resp.StatusCode, id)
		return 1
	}
	tr, err := client.Get(base + "/v1/trace/" + id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress: /v1/trace:", err)
		return 1
	}
	defer tr.Body.Close()
	raw, _ := io.ReadAll(tr.Body)
	if tr.StatusCode != 200 {
		fmt.Fprintf(os.Stderr, "stress: /v1/trace/%s status %d\n", id, tr.StatusCode)
		return 1
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		fmt.Fprintln(os.Stderr, "stress: trace is not Chrome trace-event JSON:", err)
		return 1
	}
	spans, sims := 0, 0
	root := false
	for _, ev := range chrome.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		if ev.Name == "http.matmul" {
			root = true
		}
		if ev.Cat == "sim" {
			sims++
		}
	}
	if chrome.DisplayTimeUnit == "" || !root || spans < 2 {
		fmt.Fprintf(os.Stderr, "stress: trace %s malformed (unit %q, root=%v, %d complete events)\n",
			id, chrome.DisplayTimeUnit, root, spans)
		return 1
	}
	if err := os.WriteFile(o.traceOut, raw, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stress: writing trace:", err)
		return 1
	}
	fmt.Printf("  trace %s ok (%d events, %d simulated; written to %s)\n", id, spans, sims, o.traceOut)
	return 0
}

// clusterPreflight waits for the expected worker count and pins one
// coordinator-routed response byte-identical to a local hypermm.Run of
// the same seeded job (the server builds operands from seed, seed+1).
func clusterPreflight(client *http.Client, base string, o loadOpts) int {
	deadline := time.Now().Add(o.wait)
	want := fmt.Sprintf("hmmd_cluster_workers %d", o.cluster)
	for {
		data, code := scrapeMetrics(client, base)
		if code != 0 {
			return code
		}
		if strings.Contains(data, want) {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "stress: never saw %q in /metrics\n", want)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("  cluster ready (%d workers)\n", o.cluster)

	const seed = 7
	body := fmt.Sprintf(`{"n": %d, "p": %d, "algorithm": "cannon", "seed": %d, "return_matrix": true}`, o.n, o.p, seed)
	resp, err := client.Post(base+"/v1/matmul", "application/json", strings.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress: identity probe:", err)
		return 1
	}
	defer resp.Body.Close()
	var mr struct {
		Simulated struct {
			Elapsed float64 `json:"elapsed"`
		} `json:"simulated"`
		C []float64 `json:"c"`
	}
	if resp.StatusCode != 200 || json.NewDecoder(resp.Body).Decode(&mr) != nil {
		fmt.Fprintf(os.Stderr, "stress: identity probe status %d\n", resp.StatusCode)
		return 1
	}
	local, err := hypermm.Run(hypermm.Cannon,
		hypermm.Config{P: o.p, Ports: hypermm.OnePort, Ts: 150, Tw: 3, Tc: 0.5},
		hypermm.RandomMatrix(o.n, o.n, seed), hypermm.RandomMatrix(o.n, o.n, seed+1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress: identity probe local run:", err)
		return 1
	}
	if mr.Simulated.Elapsed != local.Elapsed {
		fmt.Fprintf(os.Stderr, "stress: cluster Elapsed %g != local %g\n", mr.Simulated.Elapsed, local.Elapsed)
		return 1
	}
	if len(mr.C) != len(local.C.Data) {
		fmt.Fprintf(os.Stderr, "stress: cluster product has %d words, want %d\n", len(mr.C), len(local.C.Data))
		return 1
	}
	for i := range local.C.Data {
		if mr.C[i] != local.C.Data[i] {
			fmt.Fprintf(os.Stderr, "stress: cluster product word %d differs from local run\n", i)
			return 1
		}
	}
	fmt.Println("  cluster result byte-identical to local run")
	return 0
}

// clusterPostKill verifies the coordinator noticed the killed worker:
// the worker gauge drops to cluster-1 (the probe takes a moment) and at
// least one failover was recorded.
func clusterPostKill(client *http.Client, base string, o loadOpts) int {
	want := fmt.Sprintf("hmmd_cluster_workers %d", o.cluster-1)
	deadline := time.Now().Add(o.wait)
	var data string
	for {
		var code int
		data, code = scrapeMetrics(client, base)
		if code != 0 {
			return code
		}
		if strings.Contains(data, want) {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "stress: never saw %q after the kill\n", want)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}
	var failovers int
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(line, "hmmd_cluster_failovers_total ") {
			fmt.Sscanf(line, "hmmd_cluster_failovers_total %d", &failovers)
		}
	}
	if failovers < 1 {
		fmt.Fprintln(os.Stderr, "stress: worker killed mid-batch but no failover recorded")
		return 1
	}
	fmt.Printf("  kill drill ok: %d worker(s) left, %d failover(s)\n", o.cluster-1, failovers)
	return 0
}

func scrapeMetrics(client *http.Client, base string) (string, int) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress: /metrics:", err)
		return "", 1
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		fmt.Fprintf(os.Stderr, "stress: /metrics status %d\n", resp.StatusCode)
		return "", 1
	}
	return string(data), 0
}

// Command stress hammers one algorithm repeatedly on a large machine
// with a stall watchdog, printing simnet deadlock diagnostics if a run
// wedges. A development tool for shaking out message-matching bugs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hypermm/internal/algorithms"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func main() {
	var (
		p      = flag.Int("p", 1024, "processors")
		n      = flag.Int("n", 256, "matrix size")
		trials = flag.Int("trials", 20, "repetitions")
		stall  = flag.Duration("stall", 20*time.Second, "watchdog timeout per trial")
	)
	flag.Parse()
	A := matrix.Random(*n, *n, 1)
	B := matrix.Random(*n, *n, 2)
	for trial := 0; trial < *trials; trial++ {
		m := simnet.NewMachine(simnet.Config{P: *p, Ports: simnet.OnePort, Ts: 150, Tw: 3})
		done := make(chan struct{})
		go func() {
			select {
			case <-done:
			case <-time.After(*stall):
				fmt.Printf("trial %d STALLED; diagnostics:\n%s\n", trial, m.Diagnose())
				os.Exit(2)
			}
		}()
		C, _, err := algorithms.Cannon(m, A, B)
		close(done)
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(1)
		}
		if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-8 {
			fmt.Println("WRONG RESULT at trial", trial)
			os.Exit(1)
		}
		fmt.Printf("trial %d ok\n", trial)
	}
}

// Command stress has two modes.
//
// Emulator mode (default): hammers one algorithm repeatedly on a large
// simulated machine with a stall watchdog, printing simnet deadlock
// diagnostics if a run wedges. A development tool for shaking out
// message-matching bugs.
//
// Load-generator mode (-url): drives a running hmmd daemon with
// concurrent POST /v1/matmul requests and reports status counts and
// latency quantiles; -smoke additionally scrapes /metrics and fails
// unless the scrape is non-empty. The serve-smoke make target uses it.
//
//	stress -url http://127.0.0.1:8080 -requests 64 -c 8 -n 64 -p 64
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"hypermm/internal/algorithms"
	"hypermm/internal/matrix"
	"hypermm/internal/simnet"
)

func main() {
	var (
		p      = flag.Int("p", 1024, "processors (emulator mode) or machine size (load mode)")
		n      = flag.Int("n", 256, "matrix size")
		trials = flag.Int("trials", 20, "repetitions (emulator mode)")
		stall  = flag.Duration("stall", 20*time.Second, "watchdog timeout per trial (emulator mode)")

		url      = flag.String("url", "", "hmmd base URL; switches to load-generator mode")
		requests = flag.Int("requests", 16, "total requests to fire (load mode)")
		conc     = flag.Int("c", 4, "concurrent clients (load mode)")
		alg      = flag.String("alg", "auto", "algorithm to request (load mode)")
		verify   = flag.Bool("verify", true, "ask the server to verify results (load mode)")
		smoke    = flag.Bool("smoke", false, "smoke mode: wait for the server, fire requests, assert 200s and a non-empty /metrics")
		wait     = flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up (load mode)")
	)
	flag.Parse()

	if *url != "" {
		os.Exit(loadGenerate(*url, *requests, *conc, *n, *p, *alg, *verify, *smoke, *wait))
	}

	A := matrix.Random(*n, *n, 1)
	B := matrix.Random(*n, *n, 2)
	for trial := 0; trial < *trials; trial++ {
		m := simnet.NewMachine(simnet.Config{P: *p, Ports: simnet.OnePort, Ts: 150, Tw: 3})
		done := make(chan struct{})
		go func() {
			select {
			case <-done:
			case <-time.After(*stall):
				fmt.Printf("trial %d STALLED; diagnostics:\n%s\n", trial, m.Diagnose())
				os.Exit(2)
			}
		}()
		C, _, err := algorithms.Cannon(m, A, B)
		close(done)
		if err != nil {
			fmt.Println("error:", err)
			os.Exit(1)
		}
		if matrix.MaxAbsDiff(C, matrix.Mul(A, B)) > 1e-8 {
			fmt.Println("WRONG RESULT at trial", trial)
			os.Exit(1)
		}
		fmt.Printf("trial %d ok\n", trial)
	}
}

// loadGenerate drives hmmd and returns the process exit code.
func loadGenerate(base string, requests, conc, n, p int, alg string, verify, smoke bool, wait time.Duration) int {
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	// Wait for the daemon to accept connections (smoke boots it fresh).
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "stress: server at %s never came up: %v\n", base, err)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}

	body := fmt.Sprintf(`{"n": %d, "p": %d, "algorithm": %q, "verify": %v}`, n, p, alg, verify)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		statuses  = map[int]int{}
	)
	start := time.Now()
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/matmul", "application/json", strings.NewReader(body))
				lat := time.Since(t0)
				code := -1
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					code = resp.StatusCode
				}
				mu.Lock()
				latencies = append(latencies, lat)
				statuses[code]++
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	quant := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("%d requests to %s (n=%d p=%d alg=%s, %d clients)\n", requests, base, n, p, alg, conc)
	codes := make([]int, 0, len(statuses))
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Printf("  status %3d  x%d\n", c, statuses[c])
	}
	fmt.Printf("  latency p50 %v  p99 %v\n", quant(0.5), quant(0.99))
	fmt.Printf("  steady-state %.1f req/s (%d requests in %v)\n",
		float64(requests)/elapsed.Seconds(), requests, elapsed.Round(time.Millisecond))

	ok := statuses[200] == requests
	if smoke {
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stress: /metrics:", err)
			return 1
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(data) == 0 || !strings.Contains(string(data), "hmmd_jobs_total") {
			fmt.Fprintf(os.Stderr, "stress: /metrics scrape bad (status %d, %d bytes)\n", resp.StatusCode, len(data))
			return 1
		}
		fmt.Printf("  /metrics ok (%d bytes)\n", len(data))
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "stress: not every request returned 200")
		return 1
	}
	return 0
}

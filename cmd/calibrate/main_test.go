package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hypermm/internal/calibrate"
	"hypermm/internal/trace"
)

// smallArgs is a fast grid that still covers 2D and 3D algorithms.
func smallArgs(extra ...string) []string {
	return append([]string{"-ns", "16,32", "-ps", "4,16,64"}, extra...)
}

func TestEndToEndProducesValidDeterministicProfile(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) string {
		var stdout, stderr bytes.Buffer
		if code := run(smallArgs("-o", path), &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
		for _, want := range []string{"sweep:", "algorithm", "words/proc", "disagreement", "wrote profile"} {
			if !strings.Contains(stdout.String(), want) {
				t.Errorf("stdout lacks %q:\n%s", want, stdout.String())
			}
		}
		return stdout.String()
	}
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	out1 := runOnce(p1)
	out2 := runOnce(p2)

	d1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Error("two identical runs wrote different profiles")
	}
	norm := func(s, path string) string { return strings.ReplaceAll(s, path, "OUT") }
	if norm(out1, p1) != norm(out2, p2) {
		t.Error("two identical runs printed different reports")
	}

	profile, err := calibrate.Parse(d1)
	if err != nil {
		t.Fatalf("written profile does not validate: %v", err)
	}
	if _, err := profile.Model(); err != nil {
		t.Fatalf("written profile does not build a model: %v", err)
	}
}

func TestAssertionsFailLoudly(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// An impossibly tight error bound must trip the assertion.
	code := run(smallArgs("-o", "-", "-assert-maxerr", "1e-12"), &stdout, &stderr)
	if code != 1 {
		t.Errorf("exit %d with impossible -assert-maxerr, want 1", code)
	}
	if !strings.Contains(stderr.String(), "exceeds bound") {
		t.Errorf("stderr lacks assertion message: %s", stderr.String())
	}
}

func TestTraceFlagWritesChromeTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-ns", "16,32", "-ps", "4", "-o", filepath.Join(dir, "p.json"), "-trace", tracePath},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := trace.ParseChromeJSON(data)
	if err != nil {
		t.Fatalf("trace is not Chrome JSON: %v", err)
	}
	if len(evs) == 0 {
		t.Error("trace has no events")
	}
}

func TestBadFlagValues(t *testing.T) {
	for _, args := range [][]string{
		{"-ports", "warp"},
		{"-ns", "zebra"},
		{"-ps", ""},
		{"-diff", "150"},
		{"-diff", "a:b"},
	} {
		var out bytes.Buffer
		if code := run(args, &out, &out); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}

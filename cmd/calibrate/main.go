// Command calibrate runs the empirical calibration pipeline end to
// end: a deterministic measurement sweep over (algorithm, n, p) on the
// emulator, a least-squares fit of effective (t_s, t_w) and
// per-algorithm correction factors, prediction-error and
// communication-volume reports, empirical-vs-analytic region-map
// diffs, and a versioned JSON calibration profile that hmmd loads with
// -calibration.
//
// Usage:
//
//	calibrate -o profile.json                         # default grid, one-port
//	calibrate -ports multi -ns 16,32,48 -ps 4,16,64
//	calibrate -assert-maxerr 0.5                      # exit 1 if the fit is worse
//	calibrate -trace run.json                         # Chrome trace of one sweep cell
//
// The same flags always produce byte-identical output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"hypermm"
	"hypermm/internal/calibrate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ports     = fs.String("ports", "one", "machine model: one or multi")
		nsFlag    = fs.String("ns", "16,32,48,64", "comma-separated matrix sizes")
		psFlag    = fs.String("ps", "4,8,16,64,256", "comma-separated machine sizes (powers of two)")
		ts        = fs.Float64("ts", 150, "reference start-up cost t_s")
		tw        = fs.Float64("tw", 3, "reference per-word cost t_w")
		out       = fs.String("o", "calibration.json", "profile output path ('-' for stdout)")
		diffs     = fs.String("diff", "150:3,10:3", "region-map diff settings as ts:tw pairs ('' to skip)")
		assertErr = fs.Float64("assert-maxerr", 0, "exit 1 if the calibrated max relative error exceeds this (0: no assertion)")
		maxDiff   = fs.Float64("assert-maxdiff", 0, "exit 1 if any region-map disagreement fraction exceeds this (0: no assertion)")
		tracePath = fs.String("trace", "", "write a Chrome trace (chrome://tracing) of the largest sweep cell")
		workers   = fs.Int("workers", 0, "concurrent cell emulations (0: GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	pm, err := hypermm.ParsePortModel(*ports)
	if err != nil {
		fmt.Fprintln(stderr, "calibrate:", err)
		return 2
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		fmt.Fprintln(stderr, "calibrate: -ns:", err)
		return 2
	}
	ps, err := parseInts(*psFlag)
	if err != nil {
		fmt.Fprintln(stderr, "calibrate: -ps:", err)
		return 2
	}
	settings, err := parseSettings(*diffs)
	if err != nil {
		fmt.Fprintln(stderr, "calibrate: -diff:", err)
		return 2
	}

	sweep, err := calibrate.Run(calibrate.Spec{Ports: pm, Ns: ns, Ps: ps, Workers: *workers})
	if err != nil {
		fmt.Fprintln(stderr, "calibrate:", err)
		return 1
	}
	fmt.Fprintf(stdout, "sweep: %d cells measured (%v, n in %v, p in %v)\n\n",
		len(sweep.Cells), pm, ns, ps)

	profile, err := calibrate.Fit(sweep, *ts, *tw)
	if err != nil {
		fmt.Fprintln(stderr, "calibrate:", err)
		return 1
	}
	fmt.Fprint(stdout, calibrate.ErrorReport(profile))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, calibrate.VolumeReport(sweep))
	fmt.Fprintln(stdout)

	code := 0
	for _, s := range settings {
		d := calibrate.NewMapDiff(sweep, s[0], s[1])
		fmt.Fprint(stdout, d.Render())
		fmt.Fprintln(stdout)
		if *maxDiff > 0 && d.Fraction() > *maxDiff {
			fmt.Fprintf(stderr, "calibrate: region-map disagreement %.1f%% at t_s=%g t_w=%g exceeds bound %.1f%%\n",
				100*d.Fraction(), s[0], s[1], 100**maxDiff)
			code = 1
		}
	}

	if *assertErr > 0 && profile.MaxRelErr() > *assertErr {
		fmt.Fprintf(stderr, "calibrate: calibrated max relative error %.1f%% exceeds bound %.1f%%\n",
			100*profile.MaxRelErr(), 100**assertErr)
		code = 1
	}

	data, err := profile.Marshal()
	if err != nil {
		fmt.Fprintln(stderr, "calibrate:", err)
		return 1
	}
	if *out == "-" {
		stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "calibrate:", err)
		return 1
	} else {
		fmt.Fprintf(stdout, "wrote profile to %s (max calibrated rel err %.1f%%)\n", *out, 100*profile.MaxRelErr())
	}

	if *tracePath != "" {
		if err := writeTrace(sweep, *ts, *tw, *tracePath); err != nil {
			fmt.Fprintln(stderr, "calibrate:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote Chrome trace to %s\n", *tracePath)
	}
	return code
}

// writeTrace re-runs the sweep's largest measured cell with tracing on
// and exports the timeline for chrome://tracing.
func writeTrace(s *calibrate.Sweep, ts, tw float64, path string) error {
	if len(s.Cells) == 0 {
		return fmt.Errorf("no cells to trace")
	}
	best := s.Cells[0]
	for _, m := range s.Cells {
		if m.N > best.N || (m.N == best.N && m.P > best.P) {
			best = m
		}
	}
	A := hypermm.RandomMatrix(best.N, best.N, 7)
	B := hypermm.RandomMatrix(best.N, best.N, 8)
	_, tr, err := hypermm.RunTraced(best.Alg, hypermm.Config{
		P: best.P, Ports: s.Spec.Ports, Ts: ts, Tw: tw, Tc: 0.5,
	}, A, B)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.ChromeJSON(f)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseSettings parses "150:3,10:3" into (ts, tw) pairs.
func parseSettings(s string) ([][2]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out [][2]float64
	for _, part := range strings.Split(s, ",") {
		halves := strings.Split(strings.TrimSpace(part), ":")
		if len(halves) != 2 {
			return nil, fmt.Errorf("bad setting %q, want ts:tw", part)
		}
		tsv, err1 := strconv.ParseFloat(halves[0], 64)
		twv, err2 := strconv.ParseFloat(halves[1], 64)
		if err1 != nil || err2 != nil || tsv < 0 || twv < 0 {
			return nil, fmt.Errorf("bad setting %q, want nonnegative ts:tw", part)
		}
		out = append(out, [2]float64{tsv, twv})
	}
	return out, nil
}

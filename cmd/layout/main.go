// Command layout prints the block-ownership maps of an algorithm's
// operand and result distributions — which processor owns which block —
// and whether the result is aligned with the operands (the paper's
// chaining property).
//
// Usage:
//
//	layout -alg 3dall -p 64
package main

import (
	"flag"
	"fmt"
	"os"

	"hypermm/internal/layout"
)

func main() {
	var (
		alg = flag.String("alg", "3dall", "algorithm: simple, cannon, hje, fox, dns, 2dd, 3dd, alltrans, 3dall, berntsen")
		p   = flag.Int("p", 64, "processors")
	)
	flag.Parse()

	d, err := layout.For(*alg, *p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layout:", err)
		os.Exit(1)
	}
	fmt.Printf("%s on %d processors\n\n", d.Algorithm, *p)
	fmt.Println("A:")
	fmt.Print(d.A.Render())
	fmt.Println("\nB:")
	fmt.Print(d.B.Render())
	fmt.Println("\nC:")
	fmt.Print(d.C.Render())
	fmt.Println()
	if d.Aligned() {
		fmt.Println("result ALIGNED with operands: multiplications chain with zero redistribution")
	} else {
		fmt.Println("result NOT aligned with operands: chaining requires redistribution")
	}
}

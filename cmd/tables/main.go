// Command tables regenerates the paper's Tables 1, 2 and 3, printing
// the analytic expressions evaluated at a chosen (n, p) next to the
// values measured on the channel-level hypercube emulator.
//
// Usage:
//
//	tables -table all -n 256 -p 64 -N 8 -M 96
package main

import (
	"flag"
	"fmt"
	"os"

	"hypermm"
)

func main() {
	var (
		which = flag.String("table", "all", "which table to print: 1, 2, 3, iso or all")
		n     = flag.Int("n", 240, "matrix size for Tables 2 and 3 (240 is divisible by cbrt(64)^2 and by sqrt(64)*log sqrt(64), so every algorithm runs)")
		p     = flag.Int("p", 64, "processors for Tables 2 and 3 (power of 8 recommended)")
		bigN  = flag.Int("N", 8, "hypercube size for Table 1")
		bigM  = flag.Int("M", 96, "message words for Table 1")
	)
	flag.Parse()

	switch *which {
	case "1":
		table1(*bigN, *bigM)
	case "2":
		table2(*n, *p)
	case "3":
		table3(*n, *p)
	case "iso":
		tableIso()
	case "all":
		table1(*bigN, *bigM)
		fmt.Println()
		table2(*n, *p)
		fmt.Println()
		table3(*n, *p)
		fmt.Println()
		tableIso()
	default:
		fmt.Fprintf(os.Stderr, "tables: unknown table %q\n", *which)
		os.Exit(1)
	}
}

func table1(N, M int) {
	fmt.Printf("Table 1: optimal collective costs on an N=%d hypercube, M=%d words\n", N, M)
	fmt.Printf("  (time = t_s*a + t_w*b; analytic vs measured on the emulator)\n")
	fmt.Printf("%-36s %10s %10s %10s | %10s %10s %10s\n",
		"", "a", "b 1-port", "b m-port", "a meas", "b 1p meas", "b mp meas")
	for _, c := range hypermm.Collectives {
		a1, b1 := hypermm.CollectiveCost(c, float64(N), float64(M), hypermm.OnePort)
		_, bm := hypermm.CollectiveCost(c, float64(N), float64(M), hypermm.MultiPort)
		ma, mb1, err := hypermm.MeasuredCollective(c, N, M, hypermm.OnePort)
		if err != nil {
			fail(err)
		}
		_, mbm, err := hypermm.MeasuredCollective(c, N, M, hypermm.MultiPort)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-36s %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n",
			c, a1, b1, bm, ma, mb1, mbm)
	}
}

func table2(n, p int) {
	fmt.Printf("Table 2: communication overheads at n=%d, p=%d\n", n, p)
	fmt.Printf("  (time = t_s*a + t_w*b; analytic charges phases sequentially, the\n")
	fmt.Printf("   emulator pipelines them, so measured b <= analytic on one-port;\n")
	fmt.Printf("   HJE's unpipelined broadcasts cost extra start-ups — see DESIGN.md §7)\n")
	for _, pm := range []hypermm.PortModel{hypermm.OnePort, hypermm.MultiPort} {
		fmt.Printf("-- %v --\n", pm)
		fmt.Printf("%-22s %12s %14s %12s %14s\n", "algorithm", "a analytic", "b analytic", "a measured", "b measured")
		for _, alg := range hypermm.Algorithms {
			if alg == hypermm.TwoDiag {
				continue // stepping stone; not a Table 2 row
			}
			aA, bA, ok := hypermm.Overhead(alg, float64(n), float64(p), pm)
			if !ok {
				fmt.Printf("%-22s %12s\n", alg, "n/a")
				continue
			}
			aM, bM, err := hypermm.MeasuredOverhead(alg, p, n, pm)
			if err != nil {
				fmt.Printf("%-22s %12.1f %14.1f   (not runnable here: %v)\n", alg, aA, bA, err)
				continue
			}
			fmt.Printf("%-22s %12.1f %14.1f %12.1f %14.1f\n", alg, aA, bA, aM, bM)
		}
	}
}

func table3(n, p int) {
	fmt.Printf("Table 3: applicability and aggregate space at n=%d, p=%d\n", n, p)
	fmt.Printf("%-22s %12s %16s %16s\n", "algorithm", "applicable", "space analytic", "space measured")
	A := hypermm.RandomMatrix(n, n, 7)
	B := hypermm.RandomMatrix(n, n, 8)
	for _, alg := range hypermm.Algorithms {
		if alg == hypermm.TwoDiag {
			continue
		}
		app := hypermm.Applicable(alg, float64(n), float64(p))
		spA, _ := hypermm.Space(alg, float64(n), float64(p))
		var measured string
		if res, err := hypermm.Run(alg, hypermm.Config{P: p, Ports: hypermm.OnePort, Ts: 1, Tw: 1, Tc: 0}, A, B); err == nil {
			measured = fmt.Sprintf("%16d", res.Comm.PeakWordsTotal)
		} else {
			measured = fmt.Sprintf("%16s", "-")
		}
		fmt.Printf("%-22s %12v %16.0f %s\n", alg, app, spA, measured)
	}
}

// tableIso prints the isoefficiency view (extension; Gupta-Kumar [5]):
// the matrix size each algorithm needs to sustain 50% efficiency.
func tableIso() {
	const ts, tw, tc, target = 150.0, 3.0, 0.5, 0.5
	fmt.Printf("Isoefficiency (extension): n for %.0f%% efficiency (t_s=%g t_w=%g t_c=%g, one-port)\n",
		100*target, ts, tw, tc)
	algs := []hypermm.Algorithm{hypermm.Cannon, hypermm.Berntsen, hypermm.DNS, hypermm.ThreeDiag, hypermm.ThreeAll}
	fmt.Printf("%-10s", "p")
	for _, a := range algs {
		fmt.Printf(" %10s", a.Name())
	}
	fmt.Println()
	for _, p := range []float64{8, 64, 512, 4096, 32768} {
		fmt.Printf("%-10.0f", p)
		for _, a := range algs {
			if n, ok := hypermm.IsoefficiencyN(a, p, target, ts, tw, tc, hypermm.OnePort); ok {
				fmt.Printf(" %10.0f", n)
			} else {
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}

// Command soak drives the property-based conformance engine
// (internal/conformance) as a standing soak test: it generates seeded
// random scenarios — matrix shapes and contents, machine
// configurations, fault plans — checks every applicable metamorphic
// oracle on each, shrinks any failure to a minimal counterexample, and
// persists it as a replayable JSON repro (plus a Chrome trace of the
// offending schedule) for the repro corpus.
//
// Determinism contract: for a fixed -seed and -iters the entire run —
// cases, verdicts, transcript — is byte-identical across invocations;
// CI diffs two runs to enforce it. With -budget the engine instead runs
// chunk after chunk until the wall-clock budget is spent; each chunk is
// still a pure function of (seed, iteration index), only the number of
// chunks varies with machine speed.
//
// Exit codes: 0 every case passed, 1 failures were found (repros
// written), 2 usage or I/O error.
//
// Usage:
//
//	soak -seed 1 -iters 32
//	soak -seed $(date +%Y%m%d) -budget 15m -repros soak-artifacts
//	soak -replay internal/conformance/testdata/repros/<file>.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hypermm/internal/conformance"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed    = flag.Int64("seed", 1, "master seed; same seed and -iters, same transcript and verdict")
		iters   = flag.Int("iters", 32, "generated cases (ignored when -budget is set)")
		budget  = flag.Duration("budget", 0, "wall-clock budget; run chunks of cases until it is spent")
		repros  = flag.String("repros", "internal/conformance/testdata/repros", "directory for minimized failure repros")
		oracles = flag.String("oracles", "", "comma-separated oracle subset (default: all); see -list")
		list    = flag.Bool("list", false, "print the oracle catalogue and exit")
		replay  = flag.String("replay", "", "replay one repro JSON file and exit")
		trace   = flag.Bool("trace", true, "write a Chrome trace next to each failing repro")
		maxFail = flag.Int("max-failures", 4, "stop after this many failing iterations")
		quiet   = flag.Bool("q", false, "suppress the per-iteration transcript")
	)
	flag.Parse()

	if *list {
		for _, o := range conformance.Oracles() {
			fmt.Printf("%-12s %s\n", o.Name, o.Doc)
		}
		return 0
	}
	if *replay != "" {
		r, err := conformance.Load(*replay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			return 2
		}
		fmt.Printf("replaying %s: oracle=%s case %v\n", *replay, r.Oracle, r.Case)
		if err := r.Replay(); err != nil {
			fmt.Printf("soak: repro still FAILS: %v\n", err)
			return 1
		}
		fmt.Println("soak: repro passes")
		return 0
	}

	opt := conformance.Options{
		Seed:        *seed,
		ReproDir:    *repros,
		MaxFailures: *maxFail,
	}
	if !*quiet {
		opt.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	}
	if *oracles != "" {
		for _, name := range strings.Split(*oracles, ",") {
			o, ok := conformance.OracleByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "soak: unknown oracle %q (try -list)\n", name)
				return 2
			}
			opt.Oracles = append(opt.Oracles, o)
		}
	}
	if *trace {
		opt.OnFailure = func(f *conformance.Failure) {
			if f.ReproPath == "" {
				return
			}
			path := strings.TrimSuffix(f.ReproPath, ".json") + ".trace.json"
			w, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "soak: trace: %v\n", err)
				return
			}
			defer w.Close()
			if err := conformance.WriteTrace(f.Case, w); err != nil {
				fmt.Fprintf(os.Stderr, "soak: trace: %v\n", err)
				return
			}
			fmt.Printf("iter %d: trace %s\n", f.Iter, path)
		}
	}

	var total conformance.Summary
	if *budget > 0 {
		// Time-bounded: fixed-size chunks, absolute iteration numbering,
		// until the budget is spent or the failure cap is hit.
		const chunk = 8
		start := time.Now()
		next := 0
		for time.Since(start) < *budget && len(total.Failures) < *maxFail {
			opt.StartIter = next
			opt.Iters = chunk
			opt.MaxFailures = *maxFail - len(total.Failures)
			sum, err := conformance.Run(opt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "soak: %v\n", err)
				return 2
			}
			accumulate(&total, sum)
			next += chunk
		}
	} else {
		opt.Iters = *iters
		sum, err := conformance.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			return 2
		}
		total = sum
	}

	if len(total.Failures) > 0 {
		fmt.Printf("soak: FAIL (%d failures over %d iters, %d checks; repros in %s)\n",
			len(total.Failures), total.Iters, total.Checks, *repros)
		return 1
	}
	fmt.Printf("soak: PASS (%d iters, %d checks, %d skipped, %d retries recovered)\n",
		total.Iters, total.Checks, total.Skipped, total.Retries)
	return 0
}

func accumulate(total *conformance.Summary, s conformance.Summary) {
	total.Iters += s.Iters
	total.Checks += s.Checks
	total.Skipped += s.Skipped
	total.Retries += s.Retries
	total.Failures = append(total.Failures, s.Failures...)
}

// Command chaos is the differential verification harness: it samples
// random (n, p, port model, fault plan) tuples from a fixed seed, runs
// every applicable algorithm on each, cross-checks the products against
// the serial kernel and against each other, and — on clean cases —
// reconciles the measured communication counters with the paper's
// Table 2 analytic model.
//
// All sampling and all simulated clocks derive from -seed, so two
// invocations with the same flags print byte-identical transcripts and
// verdicts. The sampled mix always includes at least one clean case, one
// light plan that the retry protocol must recover from, and one hostile
// plan (a permanent outage with a tiny retry budget) that must surface a
// typed ErrLinkDown — never a hang, panic, or wrong product.
//
// Usage:
//
//	chaos -seed 1 -cases 12
//
// Exits 0 when every case passes, 1 otherwise.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"hypermm"
	"hypermm/internal/verify"
)

// plan kinds cycled through the sampled cases.
const (
	planClean = iota
	planLight
	planMessy
	planHostile
	planKinds
)

func samplePlan(kind int, rng *rand.Rand) *hypermm.FaultPlan {
	switch kind {
	case planLight:
		// Low drop rate, generous budget: every algorithm must recover.
		return &hypermm.FaultPlan{
			Seed:       rng.Uint64(),
			Drop:       0.03 + 0.09*rng.Float64(),
			MaxRetries: 40,
		}
	case planMessy:
		// Drops, duplicates and delays together.
		return &hypermm.FaultPlan{
			Seed:       rng.Uint64(),
			Drop:       0.05 + 0.05*rng.Float64(),
			Dup:        0.1 * rng.Float64(),
			DelayProb:  0.2 * rng.Float64(),
			DelayTime:  1 + 50*rng.Float64(),
			MaxRetries: 40,
		}
	case planHostile:
		// Permanent total outage with a tiny budget: the first transfer
		// must exhaust its retries and surface ErrLinkDown.
		return &hypermm.FaultPlan{
			Seed:       rng.Uint64(),
			Down:       []hypermm.Window{{Src: -1, Dst: -1, From: 0, To: hypermm.Forever}},
			MaxRetries: 1 + rng.Intn(2),
		}
	default:
		return nil
	}
}

func sampleCase(i int, rng *rand.Rand) verify.Case {
	ps := []int{4, 8, 16, 64}
	ns := []int{16, 24, 32, 48}
	c := verify.Case{
		N:     ns[rng.Intn(len(ns))],
		P:     ps[rng.Intn(len(ps))],
		Ports: hypermm.PortModel(rng.Intn(2)),
		Seed:  int64(rng.Intn(1 << 16)),
		Ts:    150, Tw: 3, Tc: 0.5,
		Plan: samplePlan(i%planKinds, rng),
	}
	if len(verify.Algorithms(c.N, c.P)) == 0 {
		// 3-D-only cube sizes demand finer divisibility; n=48 always works.
		c.N = 48
	}
	return c
}

func main() {
	var (
		seed  = flag.Int64("seed", 1, "master seed; same seed, same transcript and verdict")
		cases = flag.Int("cases", 8, "number of sampled cases (cycled through clean/light/messy/hostile plans)")
	)
	flag.Parse()
	if *cases < planKinds {
		fmt.Fprintf(os.Stderr, "chaos: -cases %d too small, need at least %d to cover every plan kind\n", *cases, planKinds)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(*seed))
	fail := 0
	recovered := false // some run retried a lost attempt and still passed
	faulted := false   // some hostile run surfaced a typed ErrLinkDown

	for i := 0; i < *cases; i++ {
		c := sampleCase(i, rng)
		r := verify.Check(c)
		fmt.Print(r)
		if !r.OK {
			fail++
		}
		for _, o := range r.Outcomes {
			if o.Status == verify.OK && o.Retries > 0 {
				recovered = true
			}
			if o.Status == verify.Faulted && errors.Is(o.Err, hypermm.ErrLinkDown) {
				faulted = true
			}
		}
	}

	// The mix must have exercised both halves of the fault machinery.
	if !recovered {
		fmt.Println("chaos: no case recovered through the retry path")
		fail++
	}
	if !faulted {
		fmt.Println("chaos: no hostile case surfaced ErrLinkDown")
		fail++
	}
	if fail > 0 {
		fmt.Printf("chaos: FAIL (%d)\n", fail)
		os.Exit(1)
	}
	fmt.Printf("chaos: PASS (%d cases)\n", *cases)
}

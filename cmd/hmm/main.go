// Command hmm multiplies two random matrices on a simulated hypercube
// multicomputer with a chosen algorithm and reports the simulated time,
// communication counters, and verification against the serial product.
//
// Usage:
//
//	hmm -alg 3dall -n 256 -p 64 -ports one -ts 150 -tw 3 -tc 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"hypermm"
)

func main() {
	var (
		algName = flag.String("alg", "3dall", "algorithm: simple, cannon, hje, berntsen, dns, fox, 2dd, 3dd, alltrans, 3dall, 3dgrid (with -qy), dnscannon (with -s), 3ddcannon (with -s), cannontorus")
		n       = flag.Int("n", 256, "matrix size n (n x n operands)")
		p       = flag.Int("p", 64, "number of processors (power of two)")
		ports   = flag.String("ports", "one", "port model: one or multi")
		ts      = flag.Float64("ts", 150, "message start-up time t_s")
		tw      = flag.Float64("tw", 3, "per-word transfer time t_w")
		tc      = flag.Float64("tc", 0.5, "per-flop compute time t_c")
		seed    = flag.Int64("seed", 1, "random seed for the operands")
		verify  = flag.Bool("verify", true, "check the result against the serial product")
		showTr  = flag.Bool("trace", false, "print a per-node timeline and utilization summary (small p recommended)")
		qy      = flag.Int("qy", 0, "y extent for -alg 3dgrid (the rectangular 3-D All variant)")
		sn      = flag.Int("s", 0, "supernode count for -alg dnscannon")
	)
	flag.Parse()

	pm, err := hypermm.ParsePortModel(*ports)
	if err != nil {
		fatal(err)
	}

	A := hypermm.RandomMatrix(*n, *n, *seed)
	B := hypermm.RandomMatrix(*n, *n, *seed+1)
	cfg := hypermm.Config{P: *p, Ports: pm, Ts: *ts, Tw: *tw, Tc: *tc}

	var res *hypermm.Result
	var tr *hypermm.Trace
	var label string
	switch *algName {
	case "3dgrid":
		if *qy <= 0 {
			fatal(fmt.Errorf("-alg 3dgrid needs -qy"))
		}
		label = fmt.Sprintf("3D All (grid, qy=%d)", *qy)
		res, err = hypermm.RunThreeAllGrid(cfg, A, B, *qy)
	case "dnscannon":
		if *sn <= 0 {
			fatal(fmt.Errorf("-alg dnscannon needs -s"))
		}
		label = fmt.Sprintf("DNS+Cannon (s=%d)", *sn)
		res, err = hypermm.RunDNSCannon(cfg, A, B, *sn)
	case "3ddcannon":
		if *sn <= 0 {
			fatal(fmt.Errorf("-alg 3ddcannon needs -s"))
		}
		label = fmt.Sprintf("3DD+Cannon (s=%d)", *sn)
		res, err = hypermm.RunThreeDiagCannon(cfg, A, B, *sn)
	case "cannontorus":
		label = "Cannon (2-D torus)"
		res, err = hypermm.RunCannonTorus(cfg, A, B)
	default:
		var alg hypermm.Algorithm
		alg, err = hypermm.ParseAlgorithm(*algName)
		if err != nil {
			fatal(err)
		}
		label = alg.String()
		if *showTr {
			res, tr, err = hypermm.RunTraced(alg, cfg, A, B)
		} else {
			res, err = hypermm.Run(alg, cfg, A, B)
		}
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on a %d-processor %v machine, n=%d (t_s=%g t_w=%g t_c=%g)\n",
		label, *p, pm, *n, *ts, *tw, *tc)
	fmt.Printf("  simulated time      %12.1f\n", res.Elapsed)
	if alg, perr := hypermm.ParseAlgorithm(*algName); perr == nil {
		if t, ok := hypermm.TotalTime(alg, float64(*n), float64(*p), *ts, *tw, *tc, pm); ok {
			fmt.Printf("  analytic (Table 2)  %12.1f\n", t)
		}
	}
	fmt.Printf("  messages            %12d\n", res.Comm.Msgs)
	fmt.Printf("  words moved         %12d\n", res.Comm.Words)
	fmt.Printf("  start-ups (hops)    %12d\n", res.Comm.Startups)
	fmt.Printf("  flops               %12d\n", res.Comm.Flops)
	fmt.Printf("  peak space (total)  %12d words\n", res.Comm.PeakWordsTotal)

	if tr != nil {
		fmt.Println()
		fmt.Print(tr.Gantt(100))
		fmt.Println()
		fmt.Print(tr.Summary())
	}

	if *verify {
		if err := hypermm.Verify(A, B, res.C, 1e-8*float64(*n)); err != nil {
			fatal(err)
		}
		fmt.Println("  verification        OK (matches serial product)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hmm:", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// daemon boots one run() loop and returns its ready-channel messages.
type daemon struct {
	stdout, stderr *bytes.Buffer
	mu             *sync.Mutex
	exited         chan int
}

func startDaemon(t *testing.T, args ...string) (*daemon, chan string) {
	t.Helper()
	d := &daemon{
		stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{},
		mu: &sync.Mutex{}, exited: make(chan int, 1),
	}
	ready := make(chan string, 2) // coordinator sends cluster addr then HTTP addr
	go func() {
		d.exited <- run(args, lockedWriter{d.mu, d.stdout}, lockedWriter{d.mu, d.stderr}, ready)
	}()
	return d, ready
}

func awaitReady(t *testing.T, ready chan string) string {
	t.Helper()
	select {
	case s := <-ready:
		return s
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
		return ""
	}
}

// TestClusterRolesE2E boots a coordinator and two workers through the
// real daemon entrypoint, runs matmuls over HTTP (sharded across the
// workers), checks the coordinator's cluster metrics, then SIGTERMs the
// whole process group and requires every role to drain cleanly.
//
// All three daemons share this test process, so one SIGTERM (caught by
// each run loop's signal.NotifyContext) drains them all at once — the
// separate-process version of this drill is `make cluster-smoke`.
func TestClusterRolesE2E(t *testing.T) {
	coordD, coordReady := startDaemon(t, "-role", "coordinator",
		"-addr", "127.0.0.1:0", "-cluster-addr", "127.0.0.1:0")
	clusterAddr := awaitReady(t, coordReady)
	if !strings.HasPrefix(clusterAddr, "cluster=") {
		t.Fatalf("first ready message %q, want cluster=<addr>", clusterAddr)
	}
	clusterAddr = strings.TrimPrefix(clusterAddr, "cluster=")
	httpAddr := awaitReady(t, coordReady)
	base := "http://" + httpAddr

	w1, w1Ready := startDaemon(t, "-role", "worker", "-join", clusterAddr,
		"-addr", "127.0.0.1:0", "-name", "w1", "-workers", "2")
	awaitReady(t, w1Ready)
	w2, w2Ready := startDaemon(t, "-role", "worker", "-join", clusterAddr,
		"-addr", "127.0.0.1:0", "-name", "w2", "-workers", "2")
	awaitReady(t, w2Ready)

	// Wait until both workers registered.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered")
		}
		if strings.Contains(metricsText(t, base), "hmmd_cluster_workers 2") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A small sharded batch; every response must verify.
	for i := 0; i < 6; i++ {
		resp, err := http.Post(base+"/v1/matmul", "application/json",
			strings.NewReader(`{"n": 64, "p": 16, "algorithm": "cannon", "verify": true}`))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
		}
		var mr struct {
			Verified *bool `json:"verified"`
		}
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Verified == nil || !*mr.Verified {
			t.Fatalf("request %d did not verify", i)
		}
	}
	mtext := metricsText(t, base)
	if !strings.Contains(mtext, "hmmd_cluster_completed_total 6") {
		t.Errorf("metrics missing completed jobs:\n%s", clusterLines(mtext))
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, d := range map[string]*daemon{"coordinator": coordD, "w1": w1, "w2": w2} {
		select {
		case code := <-d.exited:
			if code != 0 {
				d.mu.Lock()
				t.Errorf("%s exited %d\nstdout: %s\nstderr: %s", name, code, d.stdout.String(), d.stderr.String())
				d.mu.Unlock()
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("%s did not exit after SIGTERM", name)
		}
	}
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func clusterLines(metrics string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "hmmd_cluster_") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

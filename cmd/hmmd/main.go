// Command hmmd serves distributed matrix multiplications over
// HTTP/JSON: a cost-model planner picks the paper's cheapest algorithm
// per request, a bounded scheduler with admission control executes jobs
// on the simulated hypercube, and /metrics exposes Prometheus counters
// including the simulated-vs-predicted time ratio.
//
// Usage:
//
//	hmmd -addr :8080 -workers 4 -queue 16
//	hmmd -calibration profile.json   # plan with a cmd/calibrate profile
//
// Endpoints:
//
//	POST /v1/matmul      run a multiplication ("algorithm": "auto" picks the winner)
//	GET  /v1/plan        cost-model plan without running anything
//	GET  /v1/regionmap   Figure 13/14-style best-algorithm map (text)
//	GET  /v1/calibration the loaded calibration profile (404 without one)
//	GET  /healthz        ok, or 503 while draining
//	GET  /metrics        Prometheus text exposition
//
// With -calibration, plans are marked "calibrated": true and predicted
// times come from the measurement-fitted model instead of the raw
// Table 2 expressions.
//
// SIGTERM or SIGINT begins a graceful shutdown: intake stops (503),
// in-flight and queued jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hypermm/internal/calibrate"
	"hypermm/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main's testable body; ready (when non-nil) receives the bound
// listen address once the server accepts connections.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("hmmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 4, "scheduler worker pool size")
		queue   = fs.Int("queue", 0, "scheduler queue depth (0: 2x workers)")
		pool    = fs.Int("pool", 0, "warm machine pool capacity (0: 2x workers, negative: disable pooling)")
		cache   = fs.Int("cache", 1024, "planner LRU cache entries")
		maxN    = fs.Int("maxn", 1024, "largest accepted matrix size")
		maxP    = fs.Int("maxp", 4096, "largest accepted machine size")
		drain   = fs.Duration("drain", 30*time.Second, "shutdown drain budget")
		calib   = fs.String("calibration", "", "calibration profile JSON (from cmd/calibrate); empty: raw Table 2 model")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var profile *calibrate.Profile
	if *calib != "" {
		p, err := calibrate.Load(*calib)
		if err != nil {
			fmt.Fprintln(stderr, "hmmd:", err)
			return 1
		}
		profile = p
		fmt.Fprintf(stdout, "hmmd: calibration profile %s loaded (%s-port, t_s eff %.4g, t_w eff %.4g, max rel err %.1f%%)\n",
			*calib, profile.PortModel, profile.TsEff, profile.TwEff, 100*profile.MaxRelErr())
	}

	srv, err := server.New(server.Config{
		Workers: *workers, QueueDepth: *queue, PoolSize: *pool, CacheSize: *cache,
		MaxN: *maxN, MaxP: *maxP, Calibration: profile,
	})
	if err != nil {
		fmt.Fprintln(stderr, "hmmd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hmmd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "hmmd listening on %s (workers=%d queue=%d)\n",
		ln.Addr(), *workers, *queue)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "hmmd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections and wait for
	// in-flight HTTP requests, then drain the scheduler's jobs.
	fmt.Fprintln(stdout, "hmmd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "hmmd: http shutdown:", err)
		code = 1
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "hmmd: scheduler drain:", err)
		code = 1
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "hmmd:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "hmmd: drained, exiting")
	return code
}

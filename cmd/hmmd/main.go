// Command hmmd serves distributed matrix multiplications over
// HTTP/JSON: a cost-model planner picks the paper's cheapest algorithm
// per request, a bounded scheduler with admission control executes jobs
// on the simulated hypercube, and /metrics exposes Prometheus counters
// including the simulated-vs-predicted time ratio.
//
// Usage:
//
//	hmmd -addr :8080 -workers 4 -queue 16
//	hmmd -calibration profile.json   # plan with a cmd/calibrate profile
//	hmmd -qos qos.json               # multi-tenant weighted-fair QoS
//
//	hmmd -role coordinator -addr :8080 -cluster-addr :9000
//	hmmd -role worker -join host:9000 -addr :8081
//
//	hmmd -log-format text -log-level debug -pprof   # human logs, profiling on
//	hmmd -version                                   # build info and exit
//
// Endpoints:
//
//	POST /v1/matmul      run a multiplication ("algorithm": "auto" picks the winner)
//	GET  /v1/plan        cost-model plan without running anything
//	GET  /v1/regionmap   Figure 13/14-style best-algorithm map (text)
//	GET  /v1/calibration the loaded calibration profile (404 without one)
//	GET  /v1/qos         the loaded QoS policy + live per-tenant stats
//	                     (404 without one)
//	GET  /v1/trace/{id}  a recent request's trace: Chrome trace-event JSON
//	                     (default; merged with the simulated timeline for
//	                     "trace": true jobs) or raw spans (?format=spans)
//	GET  /v1/version     build identity from the binary's embedded info
//	GET  /debug/pprof/*  net/http/pprof profiling (only with -pprof)
//	GET  /healthz        ok, or 503 while draining
//	GET  /metrics        Prometheus text exposition
//
// Every /v1/matmul response carries an X-Trace-Id header naming its
// trace; -trace-ring bounds how many recent traces are kept (-1
// disables tracing). Logs are structured log/slog lines (-log-level,
// -log-format) sharing the same trace IDs. In cluster roles the trace
// context rides the job RPC, so a coordinator's /v1/trace/{id} shows
// dispatch attempts and the workers' execute spans in one timeline.
//
// With -calibration, plans are marked "calibrated": true and predicted
// times come from the measurement-fitted model instead of the raw
// Table 2 expressions.
//
// With -qos, requests resolve to tenants by X-API-Key or X-Tenant
// header, the scheduler queue becomes a weighted-fair priority queue
// (interactive > batch > best-effort, per-tenant virtual-time WFQ
// within a class, EDF within a tenant), token buckets meter each
// tenant's admission by the planner's predicted cost (429 +
// Retry-After when exhausted, 504 when a deadline is predicted
// infeasible), best-effort work is shed first under overload, and
// /metrics gains per-tenant hmmd_qos_* series.
//
// With -role coordinator, a second TCP listener (-cluster-addr) accepts
// worker registrations and every non-trace job is sharded least-loaded
// across them, with health probes, circuit breakers and mid-job
// failover. With -role worker, the process registers at -join and
// executes jobs for the coordinator through its own scheduler and warm
// machine pool; its HTTP endpoints stay available for local inspection.
//
// SIGTERM or SIGINT begins a graceful shutdown: intake stops (503),
// in-flight and queued jobs drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"hypermm"
	"hypermm/internal/calibrate"
	"hypermm/internal/cluster"
	"hypermm/internal/obs"
	"hypermm/internal/qos"
	"hypermm/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// newHTTPServer wraps the handler in an http.Server with hardened
// listener timeouts: slow-header clients are cut off and idle
// keep-alive connections reclaimed, while in-flight requests (jobs can
// legitimately run long) stay unbounded and drain on shutdown.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// run is main's testable body; ready (when non-nil) receives the bound
// cluster address first (coordinator role only, as "cluster=<addr>")
// and then the bound HTTP listen address once the server accepts
// connections.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("hmmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8080", "HTTP listen address")
		workers = fs.Int("workers", 4, "scheduler worker pool size")
		queue   = fs.Int("queue", 0, "scheduler queue depth (0: 2x workers)")
		pool    = fs.Int("pool", 0, "warm machine pool capacity (0: 2x workers, negative: disable pooling)")
		cache   = fs.Int("cache", 1024, "planner LRU cache entries")
		maxN    = fs.Int("maxn", 1024, "largest accepted matrix size")
		maxP    = fs.Int("maxp", 4096, "largest accepted machine size")
		drain   = fs.Duration("drain", 30*time.Second, "shutdown drain budget")
		calib   = fs.String("calibration", "", "calibration profile JSON (from cmd/calibrate); empty: raw Table 2 model")
		qosPath = fs.String("qos", "", "multi-tenant QoS policy JSON (tenants, weights, classes, quotas); empty: single-tenant FIFO")

		role        = fs.String("role", "", `cluster role: "" standalone, "coordinator", or "worker"`)
		clusterAddr = fs.String("cluster-addr", ":9000", "coordinator: TCP listen address for worker registrations")
		join        = fs.String("join", "", "worker: coordinator cluster address to register with")
		joinWait    = fs.Duration("join-wait", 10*time.Second, "worker: how long to keep retrying registration")
		name        = fs.String("name", "", "worker: advertised name (default host:pid)")

		logLevel  = fs.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat = fs.String("log-format", "json", "log format: json or text")
		pprofOn   = fs.Bool("pprof", false, "mount /debug/pprof/* profiling endpoints (opt-in)")
		traceRing = fs.Int("trace-ring", 0, "recent request traces kept for GET /v1/trace/{id} (0: 256, negative: disable tracing)")
		version   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		v := server.ReadVersion()
		fmt.Fprintf(stdout, "hmmd %s %s (built with %s", v.Module, v.Version, v.GoVersion)
		if v.Revision != "" {
			fmt.Fprintf(stdout, ", revision %s", v.Revision)
			if v.Modified {
				fmt.Fprint(stdout, " dirty")
			}
		}
		fmt.Fprintln(stdout, ")")
		return 0
	}
	logger, err := obs.NewLogger(stdout, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(stderr, "hmmd:", err)
		return 2
	}
	switch *role {
	case "", "coordinator", "worker":
	default:
		fmt.Fprintf(stderr, "hmmd: unknown -role %q (want coordinator or worker)\n", *role)
		return 2
	}
	if *role == "worker" && *join == "" {
		fmt.Fprintln(stderr, "hmmd: -role worker requires -join <coordinator cluster address>")
		return 2
	}

	// Worker identity and the tracer's process label are settled before
	// anything starts: the label stamps every span this process records,
	// and the merged cross-process trace tells the tiers apart by it.
	wname := *name
	if wname == "" {
		host, _ := os.Hostname()
		wname = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	proc := "hmmd"
	switch *role {
	case "coordinator":
		proc = "hmmd-coordinator"
	case "worker":
		proc = "hmmd-worker/" + wname
	}
	var tracer *obs.Tracer
	if *traceRing >= 0 {
		ring := *traceRing
		if ring == 0 {
			ring = 256
		}
		tracer = obs.NewTracer(proc, ring)
	}

	v := server.ReadVersion()
	logger.Info("hmmd: starting",
		"version", v.Version, "go", v.GoVersion, "revision", v.Revision,
		"role", orStandalone(*role), "pprof", *pprofOn)

	var profile *calibrate.Profile
	if *calib != "" {
		p, err := calibrate.Load(*calib)
		if err != nil {
			fmt.Fprintln(stderr, "hmmd:", err)
			return 1
		}
		profile = p
		logger.Info("hmmd: calibration profile loaded",
			"path", *calib, "ports", string(profile.PortModel),
			"ts_eff", profile.TsEff, "tw_eff", profile.TwEff,
			"max_rel_err", profile.MaxRelErr())
	}

	var qosCfg *qos.Config
	if *qosPath != "" {
		c, err := qos.Load(*qosPath)
		if err != nil {
			fmt.Fprintln(stderr, "hmmd:", err)
			return 1
		}
		qosCfg = c
		names := make([]string, 0, len(c.Tenants))
		for n := range c.Tenants {
			names = append(names, n)
		}
		sort.Strings(names)
		logger.Info("hmmd: qos policy loaded",
			"path", *qosPath, "tenants", strings.Join(names, ","), "default", c.Default != nil)
	}

	var coord *cluster.Coordinator
	if *role == "coordinator" {
		var err error
		coord, err = cluster.NewCoordinator(cluster.Config{
			Addr: *clusterAddr, Log: logger, Tracer: tracer,
		})
		if err != nil {
			fmt.Fprintln(stderr, "hmmd:", err)
			return 1
		}
		defer coord.Close()
		logger.Info("hmmd: coordinator accepting workers", "addr", coord.Addr().String())
		if ready != nil {
			ready <- "cluster=" + coord.Addr().String()
		}
	}

	srv, err := server.New(server.Config{
		Workers: *workers, QueueDepth: *queue, PoolSize: *pool, CacheSize: *cache,
		MaxN: *maxN, MaxP: *maxP, Calibration: profile, Cluster: coord, QoS: qosCfg,
		TraceRing: *traceRing, Tracer: tracer, Log: logger, Pprof: *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(stderr, "hmmd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "hmmd:", err)
		return 1
	}
	logger.Info("hmmd: listening", "addr", ln.Addr().String(), "workers", *workers, "queue", *queue)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// Worker role: register with the coordinator (retrying while it
	// comes up) and execute its jobs through this process's scheduler,
	// mapping local admission-control refusals to a busy answer the
	// coordinator retries elsewhere.
	var wk *cluster.Worker
	workerErr := make(chan error, 1)
	if *role == "worker" {
		exec := func(ctx context.Context, meta cluster.JobMeta, alg hypermm.Algorithm, cfg hypermm.Config, A, B *hypermm.Matrix) (*hypermm.Result, error) {
			res, err := srv.ExecuteMeta(ctx, meta, alg, cfg, A, B)
			if errors.Is(err, server.ErrSaturated) || errors.Is(err, server.ErrDraining) {
				return nil, fmt.Errorf("%w: %v", cluster.ErrBusy, err)
			}
			return res, err
		}
		deadline := time.Now().Add(*joinWait)
		for {
			wk, err = cluster.Join(context.Background(), *join, cluster.WorkerConfig{
				Name: wname, ExecMeta: exec, MaxN: *maxN, MaxP: *maxP,
				Log: logger, Tracer: tracer,
			})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintln(stderr, "hmmd:", err)
				return 1
			}
			time.Sleep(100 * time.Millisecond)
		}
		go func() { workerErr <- wk.Serve(context.Background()) }()
	}

	httpSrv := newHTTPServer(srv.Handler())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "hmmd:", err)
		return 1
	case err := <-workerErr:
		// The coordinator hung up (drain or death): finish local work
		// and exit cleanly so a supervisor can rejoin a fresh one.
		if err != nil {
			fmt.Fprintln(stderr, "hmmd:", err)
		}
	case <-ctx.Done():
	}

	// Graceful shutdown. A worker first drains its coordinator
	// connection (stop intake, flush in-flight results); a coordinator
	// drains HTTP intake first, then the cluster, so every admitted job
	// still reaches a worker before the goodbyes go out.
	logger.Info("hmmd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if wk != nil {
		if err := wk.Stop(dctx); err != nil {
			fmt.Fprintln(stderr, "hmmd: worker drain:", err)
			code = 1
		}
	}
	if err := httpSrv.Shutdown(dctx); err != nil {
		fmt.Fprintln(stderr, "hmmd: http shutdown:", err)
		code = 1
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(stderr, "hmmd: scheduler drain:", err)
		code = 1
	}
	if coord != nil {
		if err := coord.Drain(dctx); err != nil {
			fmt.Fprintln(stderr, "hmmd: cluster drain:", err)
			code = 1
		}
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "hmmd:", err)
		code = 1
	}
	logger.Info("hmmd: drained, exiting")
	return code
}

// orStandalone names the empty role for the startup log.
func orStandalone(role string) string {
	if role == "" {
		return "standalone"
	}
	return role
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hypermm/internal/obs"
)

// TestTraceE2EAcrossProcesses pins the headline observability
// acceptance: a matmul POSTed to a coordinator fronting two workers
// yields ONE retrievable trace that covers handler → dispatch →
// worker-execute across the tiers — the worker's span recorded under
// its own process label, shipped home in the job reply, nested inside
// the coordinator's attempt on the shared clock.
func TestTraceE2EAcrossProcesses(t *testing.T) {
	_, coordReady := startDaemon(t, "-role", "coordinator",
		"-addr", "127.0.0.1:0", "-cluster-addr", "127.0.0.1:0")
	clusterAddr := strings.TrimPrefix(awaitReady(t, coordReady), "cluster=")
	base := "http://" + awaitReady(t, coordReady)

	for _, w := range []string{"tw1", "tw2"} {
		_, wReady := startDaemon(t, "-role", "worker", "-join", clusterAddr,
			"-addr", "127.0.0.1:0", "-name", w, "-workers", "2")
		awaitReady(t, wReady)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(metricsText(t, base), "hmmd_cluster_workers 2") {
		if time.Now().After(deadline) {
			t.Fatal("workers never registered")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/matmul", "application/json",
		strings.NewReader(`{"n": 32, "p": 16, "algorithm": "cannon"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matmul status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Trace-Id")
	if !obs.ValidTraceID(id) {
		t.Fatalf("X-Trace-Id %q is not a valid trace ID", id)
	}

	tresp, err := http.Get(base + "/v1/trace/" + id + "?format=spans")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace status %d: %s", tresp.StatusCode, tbody)
	}
	var td obs.TraceData
	if err := json.Unmarshal(tbody, &td); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.SpanData{}
	for _, s := range td.Spans {
		if s.TraceID != id {
			t.Errorf("span %s carries trace %q, want the shared ID %q", s.Name, s.TraceID, id)
		}
		byName[s.Name] = s
	}
	for _, name := range []string{"http.matmul", "cluster.dispatch", "cluster.attempt", "worker.execute"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing span %q, got %+v", name, td.Spans)
		}
	}
	handler := byName["http.matmul"]
	dispatch := byName["cluster.dispatch"]
	attempt := byName["cluster.attempt"]
	execute := byName["worker.execute"]
	if handler.Process != "hmmd-coordinator" {
		t.Errorf("handler span process %q, want hmmd-coordinator", handler.Process)
	}
	if !strings.HasPrefix(execute.Process, "hmmd-worker/tw") {
		t.Errorf("execute span process %q, want hmmd-worker/tw1 or tw2", execute.Process)
	}
	// The cross-process hop: dispatch parents the attempt, the attempt
	// parents the worker's execute span recorded in the other "process".
	if attempt.Parent != dispatch.SpanID || execute.Parent != attempt.SpanID {
		t.Errorf("span parentage broken: attempt parent %q (dispatch %q), execute parent %q (attempt %q)",
			attempt.Parent, dispatch.SpanID, execute.Parent, attempt.SpanID)
	}
	// Monotonic, non-overlapping nesting on the shared host clock.
	chain := []obs.SpanData{handler, dispatch, attempt, execute}
	for i := 1; i < len(chain); i++ {
		out, in := chain[i-1], chain[i]
		if !(out.Start <= in.Start && in.Start <= in.End && in.End <= out.End) {
			t.Errorf("span %s [%d, %d] does not nest in %s [%d, %d]",
				in.Name, in.Start, in.End, out.Name, out.Start, out.End)
		}
	}
	if got := attempt.Attrs["outcome"]; got != "ok" {
		t.Errorf("attempt outcome %v, want ok", got)
	}
}

// TestVersionFlag pins `hmmd -version`: exit 0, build info on stdout,
// before any listener or logger comes up.
func TestVersionFlag(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-version"}, &out, &errb, nil); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "hmmd ") || !strings.Contains(out.String(), "go1.") {
		t.Errorf("-version output %q, want hmmd <module> <version> (built with go1...)", out.String())
	}
}

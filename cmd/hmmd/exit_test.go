package main

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestHTTPServerHardening pins the listener timeouts: without a header
// read timeout one slow-loris client holds a connection goroutine
// forever, and without an idle timeout keep-alive connections are never
// reclaimed.
func TestHTTPServerHardening(t *testing.T) {
	s := newHTTPServer(http.NewServeMux())
	if s.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout = %v, want 10s", s.ReadHeaderTimeout)
	}
	if s.IdleTimeout != 120*time.Second {
		t.Errorf("IdleTimeout = %v, want 120s", s.IdleTimeout)
	}
	if s.Handler == nil {
		t.Error("handler not wired")
	}
}

// TestBadCalibrationProfile: an unreadable or invalid -calibration file
// must refuse to start with exit 1, not serve with a half-loaded model.
func TestBadCalibrationProfile(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-calibration", "/nonexistent/profile.json"}, &out, &out, nil); code != 1 {
		t.Errorf("missing profile exit = %d, want 1", code)
	}
	if out.Len() == 0 {
		t.Error("no error output for missing profile")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"not": "a profile"`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-calibration", bad}, &out, &out, nil); code != 1 {
		t.Errorf("corrupt profile exit = %d, want 1", code)
	}
}

// TestListenOccupied binds a port first and starts hmmd on it: exit 1
// with the bind error reported.
func TestListenOccupied(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var out bytes.Buffer
	if code := run([]string{"-addr", ln.Addr().String()}, &out, &out, nil); code != 1 {
		t.Errorf("occupied port exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "address already in use") {
		t.Errorf("bind error not reported:\n%s", out.String())
	}
}

// TestBadRole: an unknown -role is a usage error (exit 2), as is a
// worker without a coordinator to join.
func TestBadRole(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-role", "manager"}, &out, &out, nil); code != 2 {
		t.Errorf("unknown role exit = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "-role") {
		t.Errorf("role error not reported:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-role", "worker"}, &out, &out, nil); code != 2 {
		t.Errorf("worker without -join exit = %d, want 2", code)
	}
	if !strings.Contains(out.String(), "-join") {
		t.Errorf("join error not reported:\n%s", out.String())
	}
}

// TestWorkerJoinFailure: a worker whose coordinator never appears gives
// up after the retry window with exit 1.
func TestWorkerJoinFailure(t *testing.T) {
	// A listener that accepts and immediately closes: never a valid
	// handshake, so every join attempt fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	var out bytes.Buffer
	ready := make(chan string, 2)
	if code := run([]string{"-role", "worker", "-join", ln.Addr().String(),
		"-join-wait", "300ms", "-addr", "127.0.0.1:0"},
		&out, &out, ready); code != 1 {
		t.Errorf("unjoinable worker exit = %d, want 1", code)
	}
}
